// metrics_dump: print the unified metrics registry in Prometheus text
// exposition format — the exact bytes a metrics endpoint would serve.
//
//   metrics_dump                    # the registry of a fresh process
//   metrics_dump --sql "..."        # execute statements first (repeatable),
//                                   # so kernel/statement metrics are live
//   metrics_dump --open DIR         # attach a database directory first
//   metrics_dump --names            # metric names only (catalog listing)
//
// Scripts use --names to diff the metric catalog against
// docs/observability.md, and --sql to sanity-check counter attribution.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/obs/metrics.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--open DIR] [--sql STMTS]... [--names]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string open_dir;
  std::vector<std::string> sql;
  bool names_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--open") == 0 && i + 1 < argc) {
      open_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--sql") == 0 && i + 1 < argc) {
      sql.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--names") == 0) {
      names_only = true;
    } else {
      return Usage(argv[0]);
    }
  }

  sciql::engine::Database db;
  if (!open_dir.empty()) {
    auto st = db.Open(open_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "open %s: %s\n", open_dir.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& s : sql) {
    auto rs = db.Execute(s);
    if (!rs.ok()) {
      std::fprintf(stderr, "sql: %s\n", rs.status().ToString().c_str());
      return 1;
    }
  }

  std::string text = sciql::obs::RenderPrometheus();
  if (!names_only) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  // --names: every distinct family name, from the # TYPE headers.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# TYPE ", 0) != 0) continue;
    size_t sp = line.find(' ', 7);
    std::printf("%s\n", line.substr(7, sp - 7).c_str());
  }
  return 0;
}
