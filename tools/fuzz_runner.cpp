// Command-line driver for the differential fuzzer (src/fuzz/,
// docs/fuzzing.md).
//
//   fuzz_runner --seed 42 --count 200          # sweep: generate + diff
//   fuzz_runner --seed 42 --shrink-out DIR     # also write repro files
//   fuzz_runner --replay tests/fuzz/corpus/x.sql [more.sql ...]
//
// Exit status: 0 when every query agreed across every path, 1 on any diff,
// 2 on usage / I/O errors. The seed is always echoed so a CI log line is
// enough to reproduce a failure locally.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/fuzz/fuzz.h"

namespace {

using sciql::fuzz::CaseResult;
using sciql::fuzz::DefaultPaths;
using sciql::fuzz::FuzzCase;
using sciql::fuzz::LoadCorpus;
using sciql::fuzz::RunCase;
using sciql::fuzz::RunSweep;
using sciql::fuzz::SweepOptions;
using sciql::fuzz::SweepReport;

void PrintTelemetry(const SweepReport& rep) {
  std::printf("path coverage (summed kernel telemetry):\n");
  for (const auto& kv : rep.telemetry) {
    const auto& t = kv.second;
    std::printf(
        "  %-14s joins hash=%llu probe=%llu merge=%llu | firstn "
        "window=%llu heap=%llu sort=%llu | minmax_idx=%llu | ordidx "
        "built=%llu loaded=%llu reused=%llu\n",
        kv.first.c_str(), (unsigned long long)t.joins_hash,
        (unsigned long long)t.joins_indexed_probe,
        (unsigned long long)t.joins_merge,
        (unsigned long long)t.firstn_index_window,
        (unsigned long long)t.firstn_heap,
        (unsigned long long)t.firstn_sort_fallback,
        (unsigned long long)t.minmax_index,
        (unsigned long long)t.order_index_built,
        (unsigned long long)t.order_index_loaded,
        (unsigned long long)t.order_index_reused);
  }
}

int Replay(const std::vector<std::string>& files) {
  int failures = 0;
  for (const std::string& f : files) {
    FuzzCase fc;
    std::string err;
    if (!LoadCorpus(f, &fc, &err)) {
      std::fprintf(stderr, "fuzz_runner: %s\n", err.c_str());
      return 2;
    }
    CaseResult r = RunCase(fc, DefaultPaths());
    if (r.diffs.empty()) {
      std::printf("OK   %s (%zu queries, all paths agree)\n", f.c_str(),
                  r.queries_run);
    } else {
      ++failures;
      std::printf("FAIL %s\n", f.c_str());
      for (const auto& d : r.diffs) {
        std::printf("  stmt %zu [%s]: %s\n", d.stmt_index, d.path.c_str(),
                    d.detail.c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

// Run one case by its *case seed* (the per-case seed a failing sweep
// prints), unshrunk, and dump every diff — the raw view for triage.
int RunOneCase(uint64_t case_seed, const SweepOptions& opts, bool dump_only) {
  FuzzCase fc = sciql::fuzz::GenerateCase(case_seed, opts.gen);
  if (dump_only) {
    for (const auto& st : fc.stmts) std::printf("%s;\n", st.sql.c_str());
    return 0;
  }
  CaseResult r = RunCase(fc, DefaultPaths());
  if (r.diffs.empty()) {
    std::printf("OK   case %llu (%zu queries, all paths agree)\n",
                (unsigned long long)case_seed, r.queries_run);
    return 0;
  }
  std::printf("FAIL case %llu\n", (unsigned long long)case_seed);
  for (const auto& d : r.diffs) {
    std::printf("  stmt %zu [%s] (%s): %s\n", d.stmt_index, d.path.c_str(),
                d.kind.c_str(), d.detail.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  bool have_case_seed = false;
  bool dump_only = false;
  uint64_t case_seed = 0;
  SweepOptions opts;
  std::string shrink_out;
  std::vector<std::string> replay_files;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_runner: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (a == "--count") {
      opts.query_target = std::strtoull(need("--count"), nullptr, 10);
    } else if (a == "--queries-per-case") {
      opts.gen.queries_per_case =
          std::strtoull(need("--queries-per-case"), nullptr, 10);
    } else if (a == "--max-rows") {
      opts.gen.max_rows = std::strtoull(need("--max-rows"), nullptr, 10);
    } else if (a == "--no-arrays") {
      opts.gen.arrays = false;
    } else if (a == "--case-seed") {
      have_case_seed = true;
      case_seed = std::strtoull(need("--case-seed"), nullptr, 10);
    } else if (a == "--dump") {
      dump_only = true;
    } else if (a == "--shrink-out") {
      shrink_out = need("--shrink-out");
    } else if (a == "--replay") {
      for (++i; i < argc; ++i) replay_files.push_back(argv[i]);
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: fuzz_runner [--seed N] [--count QUERIES] "
          "[--queries-per-case N] [--max-rows N] [--no-arrays] "
          "[--shrink-out DIR] | --case-seed N [--dump] | --replay FILE...\n");
      return 0;
    } else {
      std::fprintf(stderr, "fuzz_runner: unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }

  if (!replay_files.empty()) return Replay(replay_files);
  if (have_case_seed) return RunOneCase(case_seed, opts, dump_only);

  std::printf("fuzz_runner: seed=%llu target=%zu queries\n",
              (unsigned long long)seed, opts.query_target);
  SweepReport rep = RunSweep(seed, opts, DefaultPaths());
  std::printf("swept %zu cases, %zu queries\n", rep.cases, rep.queries);
  PrintTelemetry(rep);
  if (rep.failing_seeds.empty()) {
    std::printf("all paths agree: no diffs\n");
    return 0;
  }
  std::printf("%zu failing case seed(s):", rep.failing_seeds.size());
  for (uint64_t s : rep.failing_seeds) {
    std::printf(" %llu", (unsigned long long)s);
  }
  std::printf("\n");
  for (size_t i = 0; i < rep.repros.size(); ++i) {
    std::printf("---- shrunken repro %zu ----\n%s\n", i, rep.repros[i].c_str());
    if (!shrink_out.empty()) {
      std::filesystem::create_directories(shrink_out);
      std::string path =
          shrink_out + "/repro_" + std::to_string(rep.failing_seeds[i]) + ".sql";
      std::ofstream out(path);
      out << rep.repros[i];
      std::printf("(written to %s)\n", path.c_str());
    }
  }
  return 1;
}
