// Quickstart: the paper's running example (Figure 1) end to end.
//
// Creates the 4x4 matrix, applies the guarded update, the INSERT/DELETE
// array semantics, the 2x2 tiling query with HAVING, and the dimension
// expansion — printing each intermediate state as the paper's figures do.

#include <cstdio>

#include "src/engine/database.h"

using sciql::engine::Database;
using sciql::engine::ResultSet;

namespace {

void Show(Database* db, const char* title) {
  std::printf("--- %s ---\n", title);
  auto rs = db->Query("SELECT [x], [y], v FROM matrix");
  if (!rs.ok()) {
    std::printf("error: %s\n", rs.status().ToString().c_str());
    return;
  }
  auto grid = rs->ToGrid();
  std::printf("%s\n", grid.ok() ? grid->c_str() : grid.status().ToString().c_str());
}

bool Run(Database* db, const char* sql) {
  std::printf("sciql> %s\n", sql);
  auto st = db->Run(sql);
  if (!st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  Database db;

  // Figure 1(a): array creation; all cells exist, defaulted to 0.
  if (!Run(&db,
           "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], "
           "y INT DIMENSION[0:1:4], v INT DEFAULT 0)")) {
    return 1;
  }
  Show(&db, "Figure 1(a): after creation");

  // Figure 1(b): guarded update over the dimension variables.
  Run(&db,
      "UPDATE matrix SET v = CASE WHEN x > y THEN x + y "
      "WHEN x < y THEN x - y ELSE 0 END");
  Show(&db, "Figure 1(b): after guarded UPDATE");

  // Figure 1(c): INSERT overwrites cells, DELETE punches holes.
  Run(&db, "INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y");
  Run(&db, "DELETE FROM matrix WHERE x > y");
  Show(&db, "Figure 1(c): after INSERT/DELETE");

  // Figures 1(d)/(e): 2x2 tiling with anchor filtering.
  std::printf("sciql> SELECT [x], [y], AVG(v) FROM matrix\n"
              "       GROUP BY matrix[x:x+2][y:y+2]\n"
              "       HAVING x MOD 2 = 1 AND y MOD 2 = 1;\n");
  auto tiles = db.Query(
      "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
  if (tiles.ok()) {
    std::printf("%s", tiles->ToString().c_str());
    auto grid = tiles->ToGrid();
    if (grid.ok()) {
      std::printf("--- Figure 1(e): tiling result as an array ---\n%s\n",
                  grid->c_str());
    }
  }

  // Figure 1(f): dimension expansion.
  Run(&db, "ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]");
  Run(&db, "ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5]");
  Show(&db, "Figure 1(f): after dimension expansion");

  // A peek at the engine: the MAL program of the tiling query.
  auto mal = db.ExplainText(
      "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
  if (mal.ok()) {
    std::printf("--- optimized MAL plan of the tiling query ---\n%s\n",
                mal->c_str());
  }
  return 0;
}
