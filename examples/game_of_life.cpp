// Demo Scenario I: Conway's Game of Life, all rules as SciQL queries.
//
// Usage: game_of_life [pattern] [board-size] [generations]
//   pattern: blinker | glider | rpentomino | random (default glider)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/engine/database.h"
#include "src/life/life.h"

using sciql::engine::Database;
using sciql::life::LifeBoard;
using sciql::life::Pattern;

int main(int argc, char** argv) {
  const char* pattern_name = argc > 1 ? argv[1] : "glider";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 12;
  int generations = argc > 3 ? std::atoi(argv[3]) : 8;

  Pattern pattern = Pattern::kGlider;
  if (std::strcmp(pattern_name, "blinker") == 0) pattern = Pattern::kBlinker;
  if (std::strcmp(pattern_name, "rpentomino") == 0) {
    pattern = Pattern::kRPentomino;
  }
  if (std::strcmp(pattern_name, "random") == 0) pattern = Pattern::kRandom;

  Database db;
  auto board = LifeBoard::Create(&db, "life", n);
  if (!board.ok()) {
    std::fprintf(stderr, "%s\n", board.status().ToString().c_str());
    return 1;
  }
  auto st = board->Seed(pattern, 1, 1);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("The generation step, as a single SciQL query:\n"
              "  INSERT INTO life (\n"
              "    SELECT [x], [y],\n"
              "           CASE WHEN SUM(v) - v = 3 THEN 1\n"
              "                WHEN v = 1 AND SUM(v) - v = 2 THEN 1\n"
              "                ELSE 0 END\n"
              "    FROM life GROUP BY life[x-1:x+2][y-1:y+2]);\n\n");

  for (int gen = 0; gen <= generations; ++gen) {
    auto pop = board->Population();
    auto text = board->Render();
    if (!text.ok() || !pop.ok()) {
      std::fprintf(stderr, "render failed\n");
      return 1;
    }
    std::printf("generation %d (population %lld)\n%s\n", gen,
                static_cast<long long>(*pop), text->c_str());
    if (gen < generations) {
      auto step = board->StepSciql();
      if (!step.ok()) {
        std::fprintf(stderr, "%s\n", step.ToString().c_str());
        return 1;
      }
    }
  }
  return 0;
}
