// Concurrent sessions: N readers querying a shared DatabaseCore while one
// writer keeps committing, plus an explicitly pinned snapshot that stays
// frozen through it all.
//
// Demonstrates the core/session split (docs/architecture.md): every session
// reads an immutable catalog version — there are no torn reads and readers
// never wait for the writer — and PinSnapshot() holds one version across
// statements for repeatable reads.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/database.h"

using sciql::engine::Database;
using sciql::engine::Session;

int main() {
  Database db;
  if (!db.Run("CREATE TABLE readings (id INT, temp_x10 INT)").ok() ||
      !db.Run("INSERT INTO readings VALUES (0, 0)").ok()) {
    std::printf("setup failed\n");
    return 1;
  }

  // A session pinned before any concurrent writes: its view never changes.
  std::unique_ptr<Session> pinned = db.core().CreateSession();
  pinned->PinSnapshot();
  std::printf("pinned session at catalog version %llu\n",
              static_cast<unsigned long long>(pinned->SnapshotVersionId()));

  constexpr int kReaders = 3;
  constexpr int kWrites = 50;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &stop, &torn, &reads] {
      std::unique_ptr<Session> s = db.core().CreateSession();
      while (!stop.load(std::memory_order_acquire)) {
        auto rs = s->Query("SELECT id, temp_x10 FROM readings");
        if (!rs.ok()) {
          torn.fetch_add(1);
          continue;
        }
        // Every committed version keeps temp_x10 == 10 * id; a snapshot
        // read can therefore never observe anything else.
        for (size_t i = 0; i < rs->NumRows(); ++i) {
          if (rs->Value(i, 1).AsInt64() != 10 * rs->Value(i, 0).AsInt64()) {
            torn.fetch_add(1);
          }
        }
        reads.fetch_add(1);
      }
    });
  }

  for (int k = 1; k <= kWrites; ++k) {
    std::string sql = "INSERT INTO readings VALUES (" + std::to_string(k) +
                      ", " + std::to_string(10 * k) + ")";
    if (!db.Run(sql).ok()) {
      std::printf("write %d failed\n", k);
      stop.store(true, std::memory_order_release);
      for (auto& th : readers) th.join();
      return 1;
    }
  }
  // Let every reader observe the final state before stopping the clock.
  while (reads.load(std::memory_order_acquire) < kReaders * 4u) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  auto frozen = pinned->Query("SELECT id FROM readings");
  auto live = db.Query("SELECT id FROM readings");
  std::printf(
      "%d writers-side commits, %llu snapshot reads across %d sessions, "
      "%d inconsistencies\n",
      kWrites, static_cast<unsigned long long>(reads.load()), kReaders,
      torn.load());
  std::printf("pinned session still sees %zu row(s); live view has %zu\n",
              frozen.ok() ? frozen->NumRows() : 0,
              live.ok() ? live->NumRows() : 0);
  std::printf("core gauges: %d active sessions, %llu created, version %llu\n",
              db.core().ActiveSessions(),
              static_cast<unsigned long long>(db.core().SessionsCreated()),
              static_cast<unsigned long long>(db.core().CatalogVersionId()));
  return torn.load() == 0 ? 0 : 1;
}
