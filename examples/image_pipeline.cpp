// Demo Scenario II (grey-scale image): load a synthetic "building" image
// into the database as a 2-D array, then run the six operations of the
// demo's first thumbnail column — load, invert, edge detection, smoothing,
// resolution reduction, rotation — all as SciQL queries.
//
// Usage: image_pipeline [size] [output-dir]
// Writes the results as PGM files when an output dir is given.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/engine/database.h"
#include "src/img/ops.h"
#include "src/vault/synth.h"
#include "src/vault/vault.h"

using sciql::Status;
using sciql::engine::Database;

namespace {

void MaybeWrite(Database* db, const std::string& array,
                const std::string& dir) {
  if (dir.empty()) return;
  std::string path = dir + "/" + array + ".pgm";
  Status st = sciql::vault::StorePgmFile(db, array, path);
  if (st.ok()) {
    std::printf("  wrote %s\n", path.c_str());
  } else {
    std::printf("  (skipped write: %s)\n", st.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t size = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 96;
  std::string outdir = argc > 2 ? argv[2] : "";

  Database db;
  sciql::vault::Image building = sciql::vault::MakeBuildingImage(size, size);

  std::printf("[1/6] Load: image -> 2-D array (x,y dims, INT v)\n");
  Status st = sciql::vault::LoadImage(&db, "img", building);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  MaybeWrite(&db, "img", outdir);

  std::printf("[2/6] Invert: SELECT [x], [y], 255 - v FROM img\n");
  st = sciql::img::Invert(&db, "img", "inverted");
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());
  MaybeWrite(&db, "inverted", outdir);

  std::printf(
      "[3/6] EdgeDetection: ABS(img[x][y]-img[x-1][y]) + "
      "ABS(img[x][y]-img[x][y-1])\n");
  st = sciql::img::EdgeDetect(&db, "img", "edges");
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());
  MaybeWrite(&db, "edges", outdir);

  std::printf("[4/6] Smooth: AVG over GROUP BY img[x-1:x+2][y-1:y+2]\n");
  st = sciql::img::Smooth(&db, "img", "smoothed");
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());
  MaybeWrite(&db, "smoothed", outdir);

  std::printf(
      "[5/6] Resolution reduction: 2x2 tiles, HAVING x MOD 2 = 0 ...\n");
  st = sciql::img::Reduce2x(&db, "img", "reduced");
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());
  MaybeWrite(&db, "reduced", outdir);

  std::printf("[6/6] Rotate 90 degrees: dimension reindexing\n");
  st = sciql::img::Rotate90(&db, "img", "rotated");
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());
  MaybeWrite(&db, "rotated", outdir);

  // Show the catalogued arrays, side by side with any tables.
  std::printf("\narrays in the catalog:");
  for (const auto& name : db.catalog()->ArrayNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // A sample of the data, as the demo GUI's raw-result box would show it.
  auto rs = db.Query(
      "SELECT x, y, v FROM edges WHERE v IS NOT NULL ORDER BY v DESC LIMIT 8");
  if (rs.ok()) {
    std::printf("\nstrongest edges:\n%s", rs->ToString().c_str());
  }
  return 0;
}
