// Demo Scenario II (remote sensing image): the second thumbnail column —
// load, water filtering, intensity histogram, zoom, brightening, and
// AreasOfInterest through an array-table join.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/engine/database.h"
#include "src/img/ops.h"
#include "src/vault/synth.h"
#include "src/vault/vault.h"

using sciql::Status;
using sciql::engine::Database;

int main(int argc, char** argv) {
  size_t size = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 96;
  std::string outdir = argc > 2 ? argv[2] : "";

  Database db;
  sciql::vault::Image earth =
      sciql::vault::MakeTerrainImage(size, size, /*water_level=*/60);

  std::printf("[1/6] Load remote sensing image (%zux%zu)\n", size, size);
  Status st = sciql::vault::LoadImage(&db, "earth", earth);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("[2/6] Filter out water areas (v < 60 -> 0)\n");
  st = sciql::img::FilterWater(&db, "earth", "land", 60);
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());

  std::printf("[3/6] Intensity histogram (GROUP BY v)\n");
  auto hist = sciql::img::Histogram(&db, "earth");
  if (hist.ok()) {
    // Print a compressed 8-bucket view.
    int64_t buckets[8] = {0};
    for (const auto& [v, c] : *hist) buckets[std::min(7, v / 32)] += c;
    for (int b = 0; b < 8; ++b) {
      std::printf("  [%3d..%3d] %6lld ", b * 32, b * 32 + 31,
                  static_cast<long long>(buckets[b]));
      for (int64_t bar = 0; bar < buckets[b] * 40 / (int64_t)(size * size);
           ++bar) {
        std::printf("#");
      }
      std::printf("\n");
    }
  }

  std::printf("[4/6] Zoom into the centre quarter (2x)\n");
  st = sciql::img::Zoom2x(&db, "earth", "zoomed", size / 4, size / 4,
                          size / 4, size / 4);
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());

  std::printf("[5/6] Brighten (+40, saturating)\n");
  st = sciql::img::Brighten(&db, "earth", "brighter", 40);
  if (!st.ok()) std::fprintf(stderr, "  %s\n", st.ToString().c_str());

  std::printf("[6/6] AreasOfInterest via array-table join\n");
  std::vector<sciql::img::Box> boxes = {
      {static_cast<int64_t>(size / 8), static_cast<int64_t>(size / 4),
       static_cast<int64_t>(size / 8), static_cast<int64_t>(size / 4)},
      {static_cast<int64_t>(size / 2), static_cast<int64_t>(size / 2 + 8),
       static_cast<int64_t>(size / 2), static_cast<int64_t>(size / 2 + 8)},
  };
  auto roi = sciql::img::AreasOfInterest(&db, "earth", boxes);
  if (roi.ok()) {
    std::printf("  selected %zu of %zu pixels (%.1f%%) — only this region\n"
                "  leaves the database, instead of the whole image\n",
                roi->NumRows(), size * size,
                100.0 * static_cast<double>(roi->NumRows()) /
                    static_cast<double>(size * size));
    std::printf("%s", roi->ToString(6).c_str());
  } else {
    std::fprintf(stderr, "  %s\n", roi.status().ToString().c_str());
  }

  if (!outdir.empty()) {
    for (const char* name : {"earth", "land", "zoomed", "brighter"}) {
      std::string path = outdir + "/" + name + ".pgm";
      if (sciql::vault::StorePgmFile(&db, name, path).ok()) {
        std::printf("wrote %s\n", path.c_str());
      }
    }
  }
  return 0;
}
