// Interactive SciQL shell: the "audience has full control" part of the demo.
// Reads ';'-terminated statements from stdin, prints results or errors.
// EXPLAIN <stmt> shows the optimized MAL program.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/engine/database.h"
#include "src/obs/metrics.h"

int main() {
  sciql::engine::Database db;
  std::printf(
      "monetlite SciQL shell — arrays as first-class citizens.\n"
      "Example:\n"
      "  CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], "
      "v INT DEFAULT 0);\n"
      "  SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2];\n"
      ".threads N sets the kernel thread count (now %d).\n"
      ".open DIR [none|flush|fsync] attaches a durable database directory\n"
      "(the optional level decides how hard each statement's WAL record is\n"
      "pushed toward disk; default fsync), .checkpoint flushes dirty\n"
      "objects, .close checkpoints and detaches, .metrics (alias .iostats)\n"
      "prints every engine metric in Prometheus exposition format,\n"
      ".timer on|off prints per-statement latency.\n"
      "EXPLAIN ANALYZE <stmt> shows the executed plan with actual rows,\n"
      "timings and chosen physical paths. Ctrl-D to quit.\n",
      sciql::engine::Database::ExecutionThreads());

  bool timer = false;
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "sciql> " : "  ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && line.rfind(".threads", 0) == 0) {
      int n = std::atoi(line.c_str() + 8);
      if (n > 0) sciql::engine::Database::SetExecutionThreads(n);
      std::printf("threads: %d\n",
                  sciql::engine::Database::ExecutionThreads());
      continue;
    }
    if (buffer.empty() && line.rfind(".open", 0) == 0) {
      std::string dir = line.substr(5);
      while (!dir.empty() && dir.front() == ' ') dir.erase(dir.begin());
      sciql::storage::OpenOptions options;
      size_t space = dir.find(' ');
      if (space != std::string::npos) {
        std::string level = dir.substr(space + 1);
        dir.resize(space);
        if (!sciql::storage::ParseDurabilityLevel(level,
                                                  &options.durability)) {
          std::printf("unknown durability level '%s' (none|flush|fsync)\n",
                      level.c_str());
          continue;
        }
      }
      if (dir.empty()) {
        std::printf("usage: .open DIR [none|flush|fsync]\n");
        continue;
      }
      auto st = db.Open(dir, options);
      if (st.ok()) {
        std::printf("opened %s (durability: %s, WAL records replayed: %llu)\n",
                    dir.c_str(),
                    sciql::storage::DurabilityLevelName(
                        db.storage_engine()->durability()),
                    static_cast<unsigned long long>(
                        db.storage_engine()->stats().wal_replayed));
      } else {
        std::printf("!! %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (buffer.empty() && (line.rfind(".metrics", 0) == 0 ||
                           line.rfind(".iostats", 0) == 0)) {
      // The full unified registry: kernel telemetry, storage I/O counters,
      // per-core gauges, statement histograms — the same text a metrics
      // endpoint would serve. .iostats is a legacy alias.
      std::printf("%s", sciql::obs::RenderPrometheus().c_str());
      continue;
    }
    if (buffer.empty() && line.rfind(".timer", 0) == 0) {
      std::string arg = line.substr(6);
      while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
      if (arg == "on") timer = true;
      else if (arg == "off") timer = false;
      else if (!arg.empty()) {
        std::printf("usage: .timer on|off\n");
        continue;
      }
      std::printf("timer: %s\n", timer ? "on" : "off");
      continue;
    }
    if (buffer.empty() && line.rfind(".checkpoint", 0) == 0) {
      auto st = db.Checkpoint();
      if (st.ok()) {
        auto& s = db.storage_engine()->stats();
        std::printf("checkpoint: %llu columns written, %llu clean\n",
                    static_cast<unsigned long long>(
                        s.checkpoint_columns_written),
                    static_cast<unsigned long long>(
                        s.checkpoint_columns_clean));
      } else {
        std::printf("!! %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (buffer.empty() && line.rfind(".close", 0) == 0) {
      auto st = db.Close();
      if (st.ok()) {
        std::printf("closed\n");
      } else {
        std::printf("!! %s\n", st.ToString().c_str());
      }
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (buffer.find(';') == std::string::npos) continue;

    auto started = std::chrono::steady_clock::now();
    auto rs = db.Execute(buffer);
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    buffer.clear();
    if (!rs.ok()) {
      std::printf("!! %s\n", rs.status().ToString().c_str());
      if (timer) std::printf("Time: %.3f ms\n", elapsed_ms);
      continue;
    }
    if (rs->NumColumns() > 0) {
      std::printf("%s", rs->ToString().c_str());
      if (rs->IsArrayResult()) {
        auto grid = rs->ToGrid();
        if (grid.ok()) std::printf("\nas array:\n%s", grid->c_str());
      }
    } else {
      std::printf("ok\n");
    }
    if (timer) std::printf("Time: %.3f ms\n", elapsed_ms);
  }
  std::printf("\n");
  return 0;
}
