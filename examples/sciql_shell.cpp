// Interactive SciQL shell: the "audience has full control" part of the demo.
// Reads ';'-terminated statements from stdin, prints results or errors.
// EXPLAIN <stmt> shows the optimized MAL program.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/engine/database.h"

int main() {
  sciql::engine::Database db;
  std::printf(
      "monetlite SciQL shell — arrays as first-class citizens.\n"
      "Example:\n"
      "  CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], "
      "v INT DEFAULT 0);\n"
      "  SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2];\n"
      ".threads N sets the kernel thread count (now %d).\n"
      ".open DIR attaches a durable database directory, .checkpoint flushes\n"
      "dirty objects, .close checkpoints and detaches. Ctrl-D to quit.\n",
      sciql::engine::Database::ExecutionThreads());

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "sciql> " : "  ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && line.rfind(".threads", 0) == 0) {
      int n = std::atoi(line.c_str() + 8);
      if (n > 0) sciql::engine::Database::SetExecutionThreads(n);
      std::printf("threads: %d\n",
                  sciql::engine::Database::ExecutionThreads());
      continue;
    }
    if (buffer.empty() && line.rfind(".open", 0) == 0) {
      std::string dir = line.substr(5);
      while (!dir.empty() && dir.front() == ' ') dir.erase(dir.begin());
      if (dir.empty()) {
        std::printf("usage: .open DIR\n");
        continue;
      }
      auto st = db.Open(dir);
      if (st.ok()) {
        std::printf("opened %s (WAL records replayed: %llu)\n", dir.c_str(),
                    static_cast<unsigned long long>(
                        db.storage_engine()->stats().wal_replayed));
      } else {
        std::printf("!! %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (buffer.empty() && line.rfind(".checkpoint", 0) == 0) {
      auto st = db.Checkpoint();
      if (st.ok()) {
        auto& s = db.storage_engine()->stats();
        std::printf("checkpoint: %llu columns written, %llu clean\n",
                    static_cast<unsigned long long>(
                        s.checkpoint_columns_written),
                    static_cast<unsigned long long>(
                        s.checkpoint_columns_clean));
      } else {
        std::printf("!! %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (buffer.empty() && line.rfind(".close", 0) == 0) {
      auto st = db.Close();
      if (st.ok()) {
        std::printf("closed\n");
      } else {
        std::printf("!! %s\n", st.ToString().c_str());
      }
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (buffer.find(';') == std::string::npos) continue;

    auto rs = db.Execute(buffer);
    buffer.clear();
    if (!rs.ok()) {
      std::printf("!! %s\n", rs.status().ToString().c_str());
      continue;
    }
    if (rs->NumColumns() > 0) {
      std::printf("%s", rs->ToString().c_str());
      if (rs->IsArrayResult()) {
        auto grid = rs->ToGrid();
        if (grid.ok()) std::printf("\nas array:\n%s", grid->c_str());
      }
    } else {
      std::printf("ok\n");
    }
  }
  std::printf("\n");
  return 0;
}
