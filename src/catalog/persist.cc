#include "src/catalog/persist.h"

#include <fstream>
#include <sstream>

#include "src/catalog/schema_io.h"
#include "src/common/codec.h"
#include "src/common/string_util.h"

namespace sciql {
namespace catalog {

namespace {

using gdk::BAT;
using gdk::BATPtr;
using gdk::PhysType;
using gdk::ScalarValue;

constexpr uint32_t kMagic = 0x53514C31;  // "SQL1"
// Version 2 adds a whole-image checksum after the version word. Version 1
// images (no checksum) are still read; new images are always written as v2.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

// ---------------------------------------------------------------------------
// BATs
// ---------------------------------------------------------------------------

void PutBat(ByteWriter* w, const BAT& b) {
  w->PutU32(static_cast<uint32_t>(b.type()));
  w->PutU64(b.Count());
  if (b.type() == PhysType::kStr) {
    // Strings serialize by value; offsets are heap-local.
    for (size_t i = 0; i < b.Count(); ++i) {
      if (b.IsNullAt(i)) {
        w->PutU32(1);
      } else {
        w->PutU32(0);
        w->PutStr(b.GetStr(i));
      }
    }
  } else {
    w->PutBytes(b.TailData(), b.TailByteSize());
  }
}

Result<BATPtr> GetBat(ByteReader* r) {
  SCIQL_ASSIGN_OR_RETURN(uint32_t type, r->U32());
  SCIQL_ASSIGN_OR_RETURN(uint64_t count, r->U64());
  if (type > static_cast<uint32_t>(PhysType::kStr)) {
    return Status::IOError("bad BAT type in catalog image");
  }
  PhysType t = static_cast<PhysType>(type);
  if (t == PhysType::kStr) {
    auto b = BAT::Make(t);
    b->Reserve(std::min<uint64_t>(count, r->remaining()));
    for (uint64_t i = 0; i < count; ++i) {
      SCIQL_ASSIGN_OR_RETURN(uint32_t null_flag, r->U32());
      if (null_flag != 0) {
        SCIQL_RETURN_NOT_OK(b->Append(ScalarValue::Null(PhysType::kStr)));
      } else {
        SCIQL_ASSIGN_OR_RETURN(std::string s, r->Str());
        SCIQL_RETURN_NOT_OK(b->Append(ScalarValue::Str(std::move(s))));
      }
    }
    return b;
  }
  size_t width = t == PhysType::kBit ? 1 : t == PhysType::kInt ? 4 : 8;
  if (count > r->remaining() / width) {
    return Status::IOError("truncated catalog image: BAT payload");
  }
  SCIQL_ASSIGN_OR_RETURN(std::string_view payload, r->Bytes(count * width));
  return BAT::ImportTail(t, payload, count);
}

// Overflow-safe dimension extent (DimRange::Size computes stop - start in
// int64, which a hostile range can overflow). False means the range itself
// is malformed.
bool CheckedDimSize(const array::DimDesc& d, uint64_t* out) {
  int64_t step = d.range.step;
  if (step == 0) return false;
  uint64_t span, ustep;
  if (step > 0) {
    if (d.range.stop <= d.range.start) {
      *out = 0;
      return true;
    }
    span = static_cast<uint64_t>(d.range.stop) -
           static_cast<uint64_t>(d.range.start);  // exact: wraps mod 2^64
    ustep = static_cast<uint64_t>(step);
  } else {
    if (d.range.stop >= d.range.start) {
      *out = 0;
      return true;
    }
    span = static_cast<uint64_t>(d.range.start) -
           static_cast<uint64_t>(d.range.stop);
    ustep = ~static_cast<uint64_t>(step) + 1;  // -step without INT64_MIN UB
  }
  *out = span / ustep + (span % ustep != 0 ? 1 : 0);
  return true;
}

// Hard plausibility cap on imported array geometry: materializing the
// dimension BATs of a deserialized array allocates ncells values per
// dimension, so an (unchecksummed v1) image with a bit-flipped range could
// otherwise demand terabytes and die on bad_alloc instead of returning a
// Status. Any image this large could not have been produced by a catalog
// that fit in memory.
constexpr uint64_t kMaxImportCells = 1ull << 28;

}  // namespace

Result<std::string> SerializeCatalog(const Catalog& cat) {
  std::string payload;
  ByteWriter w(&payload);

  std::vector<std::string> tables = cat.TableNames();
  std::vector<std::string> arrays = cat.ArrayNames();
  w.PutU64(tables.size());
  w.PutU64(arrays.size());

  for (const std::string& name : tables) {
    SCIQL_ASSIGN_OR_RETURN(auto tab, cat.GetTable(name));
    w.PutStr(tab->name);
    w.PutU64(tab->columns.size());
    for (const auto& c : tab->columns) PutAttrDesc(&w, c);
    for (const auto& b : tab->bats) PutBat(&w, *b);
  }
  for (const std::string& name : arrays) {
    SCIQL_ASSIGN_OR_RETURN(auto arr, cat.GetArray(name));
    w.PutStr(arr->name);
    w.PutU64(arr->desc.ndims());
    for (const auto& d : arr->desc.dims()) PutDimDesc(&w, d);
    w.PutU64(arr->desc.nattrs());
    for (const auto& a : arr->desc.attrs()) PutAttrDesc(&w, a);
    // Only attribute BATs are stored; dimension BATs rematerialize.
    for (const auto& b : arr->attr_bats) PutBat(&w, *b);
  }

  std::string out;
  ByteWriter h(&out);
  h.PutU32(kMagic);
  h.PutU32(kVersion);
  h.PutU64(Checksum64(payload));
  out += payload;
  return out;
}

Status DeserializeCatalog(Catalog* cat, const std::string& bytes) {
  if (!cat->TableNames().empty() || !cat->ArrayNames().empty()) {
    return Status::InvalidArgument("target catalog is not empty");
  }
  ByteReader r(bytes);
  SCIQL_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) return Status::IOError("not a sciql catalog image");
  SCIQL_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version < kMinVersion || version > kVersion) {
    return Status::IOError(
        StrFormat("unsupported catalog version %u", version));
  }
  if (version >= 2) {
    SCIQL_ASSIGN_OR_RETURN(uint64_t checksum, r.U64());
    std::string_view payload(bytes.data() + r.pos(), bytes.size() - r.pos());
    if (Checksum64(payload) != checksum) {
      return Status::IOError("catalog image checksum mismatch");
    }
  }
  SCIQL_ASSIGN_OR_RETURN(uint64_t ntables, r.U64());
  SCIQL_ASSIGN_OR_RETURN(uint64_t narrays, r.U64());

  for (uint64_t t = 0; t < ntables; ++t) {
    SCIQL_ASSIGN_OR_RETURN(std::string name, r.Str());
    SCIQL_ASSIGN_OR_RETURN(uint64_t ncols, r.U64());
    if (ncols > r.remaining()) {
      return Status::IOError("truncated catalog image: column count");
    }
    std::vector<array::AttrDesc> cols;
    for (uint64_t c = 0; c < ncols; ++c) {
      SCIQL_ASSIGN_OR_RETURN(array::AttrDesc a, GetAttrDesc(&r));
      cols.push_back(std::move(a));
    }
    SCIQL_RETURN_NOT_OK(cat->CreateTable(name, cols));
    SCIQL_ASSIGN_OR_RETURN(auto tab, cat->GetTable(name));
    size_t nrows = 0;
    for (uint64_t c = 0; c < ncols; ++c) {
      SCIQL_ASSIGN_OR_RETURN(BATPtr b, GetBat(&r));
      if (b->type() != tab->columns[c].type) {
        return Status::IOError("column type mismatch in catalog image");
      }
      if (c == 0) {
        nrows = b->Count();
      } else if (b->Count() != nrows) {
        return Status::IOError("column length mismatch in catalog image");
      }
      tab->bats[c] = b;
    }
  }
  for (uint64_t a = 0; a < narrays; ++a) {
    SCIQL_ASSIGN_OR_RETURN(std::string name, r.Str());
    SCIQL_ASSIGN_OR_RETURN(uint64_t ndims, r.U64());
    if (ndims > r.remaining()) {
      return Status::IOError("truncated catalog image: dimension count");
    }
    std::vector<array::DimDesc> dims;
    for (uint64_t d = 0; d < ndims; ++d) {
      SCIQL_ASSIGN_OR_RETURN(array::DimDesc dim, GetDimDesc(&r));
      dims.push_back(std::move(dim));
    }
    SCIQL_ASSIGN_OR_RETURN(uint64_t nattrs, r.U64());
    if (nattrs > r.remaining()) {
      return Status::IOError("truncated catalog image: attribute count");
    }
    std::vector<array::AttrDesc> attrs;
    for (uint64_t c = 0; c < nattrs; ++c) {
      SCIQL_ASSIGN_OR_RETURN(array::AttrDesc ad, GetAttrDesc(&r));
      attrs.push_back(std::move(ad));
    }
    // Geometry plausibility: CreateArray materializes ncells values per
    // dimension, so validate the (overflow-safe) cell count before letting a
    // corrupt range turn into a giant allocation.
    uint64_t ncells = 1;
    for (const array::DimDesc& d : dims) {
      uint64_t sz;
      if (!CheckedDimSize(d, &sz)) {
        return Status::IOError("malformed dimension range in catalog image");
      }
      if (sz != 0 && ncells > kMaxImportCells / sz) {
        return Status::IOError("implausible array geometry in catalog image");
      }
      ncells *= sz;
    }
    if (nattrs > 0 && ncells > r.remaining()) {
      // Each attribute row costs at least one payload byte, so a cell count
      // beyond the remaining bytes cannot be backed by real data.
      return Status::IOError("array larger than its catalog image");
    }
    SCIQL_RETURN_NOT_OK(cat->CreateArray(
        name, array::ArrayDesc(std::move(dims), std::move(attrs))));
    SCIQL_ASSIGN_OR_RETURN(auto arr, cat->GetArray(name));
    for (uint64_t c = 0; c < nattrs; ++c) {
      SCIQL_ASSIGN_OR_RETURN(BATPtr b, GetBat(&r));
      if (b->Count() != arr->CellCount()) {
        return Status::IOError("attribute size mismatch in catalog image");
      }
      arr->attr_bats[c] = b;
    }
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes in catalog image");
  }
  return Status::OK();
}

Status SaveCatalog(const Catalog& cat, const std::string& path) {
  SCIQL_ASSIGN_OR_RETURN(std::string bytes, SerializeCatalog(cat));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError(StrFormat("cannot write %s", path.c_str()));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError(StrFormat("short write to %s", path.c_str()));
  return Status::OK();
}

Status LoadCatalog(Catalog* cat, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  std::ostringstream ss;
  ss << in.rdbuf();
  return DeserializeCatalog(cat, ss.str());
}

}  // namespace catalog
}  // namespace sciql
