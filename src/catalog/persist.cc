#include "src/catalog/persist.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace sciql {
namespace catalog {

namespace {

using gdk::BAT;
using gdk::BATPtr;
using gdk::PhysType;
using gdk::ScalarValue;

constexpr uint32_t kMagic = 0x53514C31;  // "SQL1"
constexpr uint32_t kVersion = 1;

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

struct Reader {
  const std::string& data;
  size_t pos = 0;

  Status Need(size_t n) {
    if (pos + n > data.size()) {
      return Status::IOError("truncated catalog image");
    }
    return Status::OK();
  }
  Result<uint32_t> U32() {
    SCIQL_RETURN_NOT_OK(Need(4));
    uint32_t v;
    std::memcpy(&v, data.data() + pos, 4);
    pos += 4;
    return v;
  }
  Result<uint64_t> U64() {
    SCIQL_RETURN_NOT_OK(Need(8));
    uint64_t v;
    std::memcpy(&v, data.data() + pos, 8);
    pos += 8;
    return v;
  }
  Result<int64_t> I64() {
    SCIQL_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  Result<double> F64() {
    SCIQL_RETURN_NOT_OK(Need(8));
    double v;
    std::memcpy(&v, data.data() + pos, 8);
    pos += 8;
    return v;
  }
  Result<std::string> Str() {
    SCIQL_ASSIGN_OR_RETURN(uint64_t n, U64());
    SCIQL_RETURN_NOT_OK(Need(n));
    std::string s = data.substr(pos, n);
    pos += n;
    return s;
  }
};

// ---------------------------------------------------------------------------
// Scalars, BATs, schemas
// ---------------------------------------------------------------------------

void PutScalar(std::string* out, const ScalarValue& v) {
  PutU32(out, static_cast<uint32_t>(v.type));
  PutU32(out, v.is_null ? 1 : 0);
  if (v.is_null) return;
  switch (v.type) {
    case PhysType::kDbl:
      PutF64(out, v.d);
      break;
    case PhysType::kStr:
      PutStr(out, v.s);
      break;
    default:
      PutI64(out, v.i);
      break;
  }
}

Result<ScalarValue> GetScalar(Reader* r) {
  SCIQL_ASSIGN_OR_RETURN(uint32_t type, r->U32());
  SCIQL_ASSIGN_OR_RETURN(uint32_t null_flag, r->U32());
  if (type > static_cast<uint32_t>(PhysType::kStr)) {
    return Status::IOError("bad scalar type in catalog image");
  }
  PhysType t = static_cast<PhysType>(type);
  if (null_flag != 0) return ScalarValue::Null(t);
  ScalarValue v;
  v.type = t;
  v.is_null = false;
  switch (t) {
    case PhysType::kDbl: {
      SCIQL_ASSIGN_OR_RETURN(v.d, r->F64());
      return v;
    }
    case PhysType::kStr: {
      SCIQL_ASSIGN_OR_RETURN(v.s, r->Str());
      return v;
    }
    default: {
      SCIQL_ASSIGN_OR_RETURN(v.i, r->I64());
      return v;
    }
  }
}

void PutBat(std::string* out, const BAT& b) {
  PutU32(out, static_cast<uint32_t>(b.type()));
  PutU64(out, b.Count());
  switch (b.type()) {
    case PhysType::kBit:
      out->append(reinterpret_cast<const char*>(b.bits().data()),
                  b.Count() * sizeof(uint8_t));
      break;
    case PhysType::kInt:
      out->append(reinterpret_cast<const char*>(b.ints().data()),
                  b.Count() * sizeof(int32_t));
      break;
    case PhysType::kLng:
      out->append(reinterpret_cast<const char*>(b.lngs().data()),
                  b.Count() * sizeof(int64_t));
      break;
    case PhysType::kDbl:
      out->append(reinterpret_cast<const char*>(b.dbls().data()),
                  b.Count() * sizeof(double));
      break;
    case PhysType::kOid:
      out->append(reinterpret_cast<const char*>(b.oids().data()),
                  b.Count() * sizeof(uint64_t));
      break;
    case PhysType::kStr:
      // Strings serialize by value; offsets are heap-local.
      for (size_t i = 0; i < b.Count(); ++i) {
        if (b.IsNullAt(i)) {
          PutU32(out, 1);
        } else {
          PutU32(out, 0);
          PutStr(out, std::string(b.GetStr(i)));
        }
      }
      break;
  }
}

Result<BATPtr> GetBat(Reader* r) {
  SCIQL_ASSIGN_OR_RETURN(uint32_t type, r->U32());
  SCIQL_ASSIGN_OR_RETURN(uint64_t count, r->U64());
  if (type > static_cast<uint32_t>(PhysType::kStr)) {
    return Status::IOError("bad BAT type in catalog image");
  }
  PhysType t = static_cast<PhysType>(type);
  auto b = BAT::Make(t);
  auto fill = [&](auto& vec) -> Status {
    using T = std::decay_t<decltype(vec[0])>;
    SCIQL_RETURN_NOT_OK(r->Need(count * sizeof(T)));
    vec.resize(count);
    std::memcpy(vec.data(), r->data.data() + r->pos, count * sizeof(T));
    r->pos += count * sizeof(T);
    return Status::OK();
  };
  switch (t) {
    case PhysType::kBit:
      SCIQL_RETURN_NOT_OK(fill(b->bits()));
      break;
    case PhysType::kInt:
      SCIQL_RETURN_NOT_OK(fill(b->ints()));
      break;
    case PhysType::kLng:
      SCIQL_RETURN_NOT_OK(fill(b->lngs()));
      break;
    case PhysType::kDbl:
      SCIQL_RETURN_NOT_OK(fill(b->dbls()));
      break;
    case PhysType::kOid:
      SCIQL_RETURN_NOT_OK(fill(b->oids()));
      break;
    case PhysType::kStr:
      for (uint64_t i = 0; i < count; ++i) {
        SCIQL_ASSIGN_OR_RETURN(uint32_t null_flag, r->U32());
        if (null_flag != 0) {
          SCIQL_RETURN_NOT_OK(b->Append(ScalarValue::Null(PhysType::kStr)));
        } else {
          SCIQL_ASSIGN_OR_RETURN(std::string s, r->Str());
          SCIQL_RETURN_NOT_OK(b->Append(ScalarValue::Str(std::move(s))));
        }
      }
      break;
  }
  return b;
}

void PutAttrDesc(std::string* out, const array::AttrDesc& a) {
  PutStr(out, a.name);
  PutU32(out, static_cast<uint32_t>(a.type));
  PutScalar(out, a.default_value);
}

Result<array::AttrDesc> GetAttrDesc(Reader* r) {
  array::AttrDesc a;
  SCIQL_ASSIGN_OR_RETURN(a.name, r->Str());
  SCIQL_ASSIGN_OR_RETURN(uint32_t t, r->U32());
  a.type = static_cast<PhysType>(t);
  SCIQL_ASSIGN_OR_RETURN(a.default_value, GetScalar(r));
  return a;
}

}  // namespace

Result<std::string> SerializeCatalog(const Catalog& cat) {
  std::string out;
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);

  std::vector<std::string> tables = cat.TableNames();
  std::vector<std::string> arrays = cat.ArrayNames();
  PutU64(&out, tables.size());
  PutU64(&out, arrays.size());

  for (const std::string& name : tables) {
    SCIQL_ASSIGN_OR_RETURN(auto tab, cat.GetTable(name));
    PutStr(&out, tab->name);
    PutU64(&out, tab->columns.size());
    for (const auto& c : tab->columns) PutAttrDesc(&out, c);
    for (const auto& b : tab->bats) PutBat(&out, *b);
  }
  for (const std::string& name : arrays) {
    SCIQL_ASSIGN_OR_RETURN(auto arr, cat.GetArray(name));
    PutStr(&out, arr->name);
    PutU64(&out, arr->desc.ndims());
    for (const auto& d : arr->desc.dims()) {
      PutStr(&out, d.name);
      PutI64(&out, d.range.start);
      PutI64(&out, d.range.step);
      PutI64(&out, d.range.stop);
      PutU32(&out, d.unbounded ? 1 : 0);
    }
    PutU64(&out, arr->desc.nattrs());
    for (const auto& a : arr->desc.attrs()) PutAttrDesc(&out, a);
    // Only attribute BATs are stored; dimension BATs rematerialize.
    for (const auto& b : arr->attr_bats) PutBat(&out, *b);
  }
  return out;
}

Status DeserializeCatalog(Catalog* cat, const std::string& bytes) {
  if (!cat->TableNames().empty() || !cat->ArrayNames().empty()) {
    return Status::InvalidArgument("target catalog is not empty");
  }
  Reader r{bytes};
  SCIQL_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) return Status::IOError("not a sciql catalog image");
  SCIQL_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kVersion) {
    return Status::IOError(
        StrFormat("unsupported catalog version %u", version));
  }
  SCIQL_ASSIGN_OR_RETURN(uint64_t ntables, r.U64());
  SCIQL_ASSIGN_OR_RETURN(uint64_t narrays, r.U64());

  for (uint64_t t = 0; t < ntables; ++t) {
    SCIQL_ASSIGN_OR_RETURN(std::string name, r.Str());
    SCIQL_ASSIGN_OR_RETURN(uint64_t ncols, r.U64());
    std::vector<array::AttrDesc> cols;
    for (uint64_t c = 0; c < ncols; ++c) {
      SCIQL_ASSIGN_OR_RETURN(array::AttrDesc a, GetAttrDesc(&r));
      cols.push_back(std::move(a));
    }
    SCIQL_RETURN_NOT_OK(cat->CreateTable(name, cols));
    SCIQL_ASSIGN_OR_RETURN(auto tab, cat->GetTable(name));
    for (uint64_t c = 0; c < ncols; ++c) {
      SCIQL_ASSIGN_OR_RETURN(BATPtr b, GetBat(&r));
      if (b->type() != tab->columns[c].type) {
        return Status::IOError("column type mismatch in catalog image");
      }
      tab->bats[c] = b;
    }
  }
  for (uint64_t a = 0; a < narrays; ++a) {
    SCIQL_ASSIGN_OR_RETURN(std::string name, r.Str());
    SCIQL_ASSIGN_OR_RETURN(uint64_t ndims, r.U64());
    std::vector<array::DimDesc> dims;
    for (uint64_t d = 0; d < ndims; ++d) {
      array::DimDesc dim;
      SCIQL_ASSIGN_OR_RETURN(dim.name, r.Str());
      SCIQL_ASSIGN_OR_RETURN(dim.range.start, r.I64());
      SCIQL_ASSIGN_OR_RETURN(dim.range.step, r.I64());
      SCIQL_ASSIGN_OR_RETURN(dim.range.stop, r.I64());
      SCIQL_ASSIGN_OR_RETURN(uint32_t unbounded, r.U32());
      dim.unbounded = unbounded != 0;
      dims.push_back(std::move(dim));
    }
    SCIQL_ASSIGN_OR_RETURN(uint64_t nattrs, r.U64());
    std::vector<array::AttrDesc> attrs;
    for (uint64_t c = 0; c < nattrs; ++c) {
      SCIQL_ASSIGN_OR_RETURN(array::AttrDesc ad, GetAttrDesc(&r));
      attrs.push_back(std::move(ad));
    }
    SCIQL_RETURN_NOT_OK(cat->CreateArray(
        name, array::ArrayDesc(std::move(dims), std::move(attrs))));
    SCIQL_ASSIGN_OR_RETURN(auto arr, cat->GetArray(name));
    for (uint64_t c = 0; c < nattrs; ++c) {
      SCIQL_ASSIGN_OR_RETURN(BATPtr b, GetBat(&r));
      if (b->Count() != arr->CellCount()) {
        return Status::IOError("attribute size mismatch in catalog image");
      }
      arr->attr_bats[c] = b;
    }
  }
  if (r.pos != bytes.size()) {
    return Status::IOError("trailing bytes in catalog image");
  }
  return Status::OK();
}

Status SaveCatalog(const Catalog& cat, const std::string& path) {
  SCIQL_ASSIGN_OR_RETURN(std::string bytes, SerializeCatalog(cat));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError(StrFormat("cannot write %s", path.c_str()));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError(StrFormat("short write to %s", path.c_str()));
  return Status::OK();
}

Status LoadCatalog(Catalog* cat, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  std::ostringstream ss;
  ss << in.rdbuf();
  return DeserializeCatalog(cat, ss.str());
}

}  // namespace catalog
}  // namespace sciql
