// The SQL/SciQL catalog: tables and arrays as first-class, side-by-side
// persistent objects (paper Sec. 1: "store arrays directly in an RDBMS
// side-by-side with the SQL tables").
//
// Adopting the vertically decomposed storage model, each table stores one
// BAT per column; each array stores one BAT per dimension and one BAT per
// non-dimensional attribute (paper Sec. 3, "Array Storage & Creation").
// Fixed arrays are materialised before first use via array.series /
// array.filler.
//
// Versioning (docs/architecture.md, "Core, sessions and snapshots"): the
// catalog is copy-on-write-versioned. Its state at any instant is an
// immutable CatalogVersion snapshot — a map of shared_ptr objects plus a
// monotonically increasing id. Readers Pin() the current version (one brief
// mutex acquisition) and then bind, plan and execute against it with zero
// further locks. Mutations go through BeginWrite()/the Create*/Drop
// mutators, which publish a *new* version; a pinned snapshot never changes
// underneath its reader. Whether a mutation clones the target object (COW)
// or edits it in place while excluding new pins is an internal choice made
// per statement — see BeginWrite.
#ifndef SCIQL_CATALOG_CATALOG_H_
#define SCIQL_CATALOG_CATALOG_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/array/coerce.h"
#include "src/array/descriptor.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/gdk/bat.h"

namespace sciql {
namespace catalog {

/// \brief Lazy-load bookkeeping embedded in every catalog object.
///
/// An object declared from a manifest starts `pending`; the first
/// GetTable/GetArray access runs the storage loader under `mu`, so two
/// sessions racing to the same cold object materialise it exactly once
/// (the loser blocks, then sees `pending == false` and returns). `loading`
/// lets the loader itself re-enter GetTable/GetArray on the object it is
/// filling without deadlocking on `mu`.
struct LoadState {
  std::atomic<bool> pending{false};
  /// Serialises the load of this one object. Sits between the writer mutex
  /// and the catalog mutex in the documented lock order (the loader body
  /// takes Catalog::mu_ to re-check identity); being per-object, that
  /// cross-instance relation is not expressible as an ACQUIRED_AFTER
  /// attribute — Catalog::EnsureLoaded is the single place the nesting
  /// happens.
  common::Mutex mu;
  std::atomic<std::thread::id> loading{std::thread::id()};
};

/// \brief A relational table: a set of tuples, vertically decomposed.
///
/// Identity matters (versions share objects by shared_ptr; LoadState owns a
/// mutex), so table objects are never copied — COW clones are built
/// explicitly by Catalog.
struct TableObject {
  TableObject() = default;
  TableObject(const TableObject&) = delete;
  TableObject& operator=(const TableObject&) = delete;

  std::string name;
  std::vector<array::AttrDesc> columns;
  std::vector<gdk::BATPtr> bats;
  LoadState load;

  size_t RowCount() const { return bats.empty() ? 0 : bats[0]->Count(); }
  int ColumnIndex(const std::string& col) const;

  /// \brief Append one row (values aligned with columns).
  Status AppendRow(const std::vector<gdk::ScalarValue>& row);

  /// \brief Remove the rows at `positions` (compacting; row ids shift).
  Status DeleteRows(const gdk::BAT& positions);
};

/// \brief A SciQL array: an indexed collection of cells; all cells covered by
/// the dimensions always exist. Never copied (see TableObject).
struct ArrayObject {
  ArrayObject() = default;
  ArrayObject(const ArrayObject&) = delete;
  ArrayObject& operator=(const ArrayObject&) = delete;

  std::string name;
  array::ArrayDesc desc;
  std::vector<gdk::BATPtr> dim_bats;
  std::vector<gdk::BATPtr> attr_bats;
  LoadState load;

  size_t CellCount() const { return desc.CellCount(); }

  /// \brief (Re-)materialise all dimension BATs and reset attribute BATs to
  /// their defaults — the array creation step of paper Sec. 3 / Figure 3.
  Status Materialize();

  /// \brief (Re-)materialise only the dimension BATs, leaving attr_bats
  /// untouched. The storage engine uses this on lazy load: dimensions always
  /// rematerialize from the descriptor while attributes stream in from disk.
  Status MaterializeDims();

  /// \brief ALTER ARRAY ... ALTER DIMENSION d SET RANGE r: cells present in
  /// both the old and new geometry keep their values (including holes), new
  /// cells take the attribute defaults (paper Fig. 1(f)).
  Status AlterDimension(size_t dim_idx, const array::DimRange& new_range);
};

class Catalog;

/// \brief An immutable snapshot of the catalog at one version.
///
/// Holds shared ownership of its objects, so a pinned version keeps serving
/// consistent data even after later versions drop or replace the objects.
/// All methods are const and lock-free except the lazy-load hook inside
/// GetTable/GetArray (which synchronises per object through the owning
/// Catalog). A version must not outlive the Catalog that published it.
class CatalogVersion {
 public:
  /// Monotonically increasing; every committed mutation advances it.
  uint64_t id() const { return id_; }

  /// True if `name` refers to a table or an array.
  bool Exists(const std::string& name) const;
  bool IsArray(const std::string& name) const;

  Result<std::shared_ptr<TableObject>> GetTable(const std::string& name) const;
  Result<std::shared_ptr<ArrayObject>> GetArray(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ArrayNames() const;

 private:
  friend class Catalog;
  const Catalog* owner_ = nullptr;
  uint64_t id_ = 0;
  std::map<std::string, std::shared_ptr<TableObject>> tables_;
  std::map<std::string, std::shared_ptr<ArrayObject>> arrays_;
};

using CatalogVersionPtr = std::shared_ptr<const CatalogVersion>;

/// \brief Name -> object registry, versioned. Object names are
/// case-insensitive.
///
/// Lazy loading: a storage engine may declare objects whose column data still
/// lives on disk and register a loader. GetTable/GetArray materialise such an
/// object on first access, so reopening a database costs only the objects a
/// query actually touches (see docs/storage.md).
///
/// Concurrency contract: any number of reader threads may Pin() and read
/// concurrently with ONE mutating thread (the engine serialises mutations
/// behind DatabaseCore's writer mutex). The catalog itself never blocks
/// readers for the duration of a mutation in shared mode — writers clone the
/// object they touch and publish the result as a new version.
class Catalog {
 public:
  /// Fills the named object's BATs from durable storage. Invoked at most once
  /// per object, on first GetTable/GetArray access.
  using Loader = std::function<Status(const std::string& name)>;

  Catalog();
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // ---------------------------------------------------------------------
  // Versioning
  // ---------------------------------------------------------------------

  /// \brief Pin the current version: one brief lock, then lock-free reads.
  CatalogVersionPtr Pin() const;

  /// \brief The id of the current version (telemetry gauge).
  uint64_t CurrentVersionId() const;

  /// \brief Enter shared (multi-session) mode: every mutation from now on
  /// copies the object it touches instead of editing it in place, so result
  /// sets and snapshots handed out earlier are never written through. Sticky
  /// — once a core has had two sessions, cheap in-place mutation is gone for
  /// good (its safety argument needs a single sequential owner).
  void SetSharedMode();
  bool shared_mode() const;

  /// \brief A handle on one object opened for mutation. Obtained from
  /// BeginWrite; mutate through table()/array(), then Commit() to publish a
  /// new catalog version. Destroying an uncommitted handle abandons a COW
  /// clone entirely (clean rollback); on the in-place path it simply
  /// releases the pin-exclusion lock, leaving whatever was already applied
  /// — the same partial-failure semantics the engine always had.
  class WriteHandle {
   public:
    WriteHandle() = default;
    WriteHandle(WriteHandle&&) = default;
    WriteHandle& operator=(WriteHandle&&) = default;
    WriteHandle(const WriteHandle&) = delete;
    WriteHandle& operator=(const WriteHandle&) = delete;

    bool is_array() const { return arr_ != nullptr; }
    TableObject* table() const { return tab_.get(); }
    ArrayObject* array() const { return arr_.get(); }

    /// \brief Publish the mutation as a new catalog version.
    ///
    /// Analysis-exempt: on the in-place path mu_ arrives held inside the
    /// movable `lock_` (taken by BeginWrite, possibly on another statement
    /// boundary), a transfer the thread-safety analysis cannot track.
    Status Commit() NO_THREAD_SAFETY_ANALYSIS;

   private:
    friend class Catalog;
    Catalog* cat_ = nullptr;
    std::string key_;
    std::shared_ptr<TableObject> tab_;
    std::shared_ptr<ArrayObject> arr_;
    bool cow_ = false;
    // Held across the whole mutation on the in-place path: excludes new
    // Pin()s (there are no existing ones, or we would have cloned).
    std::unique_lock<common::Mutex> lock_;
  };

  /// \brief Open the named object for mutation. Ensures it is loaded, then
  /// either deep-clones it (shared mode, or somebody holds a pinned
  /// version) or locks out new pins and hands back the live object (the
  /// single-session fast path — repeated single-row INSERTs stay O(1), not
  /// O(rows) per statement).
  ///
  /// Analysis-exempt: the in-place branch returns with mu_ still held,
  /// moved into the handle's `lock_` — a conditional ownership transfer
  /// the thread-safety analysis cannot express (WriteHandle::Commit is the
  /// matching release).
  Result<WriteHandle> BeginWrite(const std::string& name)
      NO_THREAD_SAFETY_ANALYSIS;

  // ---------------------------------------------------------------------
  // Mutators (each publishes a new version)
  // ---------------------------------------------------------------------

  Status CreateTable(const std::string& name,
                     std::vector<array::AttrDesc> columns);
  Status CreateArray(const std::string& name, array::ArrayDesc desc);
  /// \brief Register an array schema WITHOUT materialising its cells (used
  /// for lazily loaded arrays; pair with MarkUnloaded + a loader).
  Status DeclareArray(const std::string& name, array::ArrayDesc desc);
  /// \brief Register an already-materialised array (CREATE ARRAY AS SELECT).
  Status AdoptArray(const std::string& name, array::MaterializedArray arr);
  /// \brief Register a fully built table object (CREATE TABLE AS SELECT).
  Status AdoptTable(const std::string& name, std::shared_ptr<TableObject> t);
  Status DropObject(const std::string& name);

  /// \brief Drop every object (and pending lazy loads); used when a Database
  /// switches its attached storage directory.
  void Clear();

  // ---------------------------------------------------------------------
  // Lazy loading
  // ---------------------------------------------------------------------

  /// \brief Install (or clear, with nullptr) the lazy-load callback.
  void SetLoader(Loader loader);

  /// \brief Flag `name` (already registered) as not yet loaded from storage.
  void MarkUnloaded(const std::string& name);

  /// \brief True if `name` is declared but its data has not been loaded yet.
  bool IsUnloaded(const std::string& name) const;

  // ---------------------------------------------------------------------
  // Convenience reads (pin + forward; prefer holding a Pin() for multi-call
  // consistency)
  // ---------------------------------------------------------------------

  bool Exists(const std::string& name) const;
  Result<std::shared_ptr<TableObject>> GetTable(const std::string& name) const;
  Result<std::shared_ptr<ArrayObject>> GetArray(const std::string& name) const;
  bool IsArray(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  std::vector<std::string> ArrayNames() const;

 private:
  friend class CatalogVersion;

  /// Run the loader for the object `obj` (registered under `key`) if still
  /// pending. Serialised per object on obj->load.mu; re-entrant from the
  /// loader's own thread. `obj` must still be the object registered under
  /// `key` in the *current* version — a snapshot holding a dropped/replaced
  /// cold object gets a clean error instead of someone else's data.
  template <typename Obj>
  Status EnsureLoaded(const std::string& key, Obj* obj) const;

  /// Build version id+1 from `current_` with `mutate` applied to the maps.
  template <typename Fn>
  void PublishLocked(Fn mutate) REQUIRES(mu_);

  /// Deep clones for COW: every BAT is cloned; string columns re-intern into
  /// a private heap so the clone never shares a mutable arena with the
  /// published object (StrHeap::Put reallocates — see gdk/strheap.h).
  static std::shared_ptr<TableObject> CloneTable(const TableObject& src);
  static std::shared_ptr<ArrayObject> CloneArray(const ArrayObject& src);

  /// Innermost of the catalog's own locks: taken after the writer mutex
  /// and after a per-object load mutex, never the other way around
  /// (docs/architecture.md lock order).
  mutable common::Mutex mu_;
  CatalogVersionPtr current_ GUARDED_BY(mu_);  // never null
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  /// Outstanding Pin() handles across all versions; > 0 forces COW writes.
  mutable std::atomic<int64_t> pins_{0};
  Loader loader_ GUARDED_BY(mu_);
  bool shared_mode_ GUARDED_BY(mu_) = false;
};

}  // namespace catalog
}  // namespace sciql

#endif  // SCIQL_CATALOG_CATALOG_H_
