// The SQL/SciQL catalog: tables and arrays as first-class, side-by-side
// persistent objects (paper Sec. 1: "store arrays directly in an RDBMS
// side-by-side with the SQL tables").
//
// Adopting the vertically decomposed storage model, each table stores one
// BAT per column; each array stores one BAT per dimension and one BAT per
// non-dimensional attribute (paper Sec. 3, "Array Storage & Creation").
// Fixed arrays are materialised before first use via array.series /
// array.filler.

#ifndef SCIQL_CATALOG_CATALOG_H_
#define SCIQL_CATALOG_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/array/coerce.h"
#include "src/array/descriptor.h"
#include "src/common/result.h"
#include "src/gdk/bat.h"

namespace sciql {
namespace catalog {

/// \brief A relational table: a set of tuples, vertically decomposed.
struct TableObject {
  std::string name;
  std::vector<array::AttrDesc> columns;
  std::vector<gdk::BATPtr> bats;

  size_t RowCount() const { return bats.empty() ? 0 : bats[0]->Count(); }
  int ColumnIndex(const std::string& col) const;

  /// \brief Append one row (values aligned with columns).
  Status AppendRow(const std::vector<gdk::ScalarValue>& row);

  /// \brief Remove the rows at `positions` (compacting; row ids shift).
  Status DeleteRows(const gdk::BAT& positions);
};

/// \brief A SciQL array: an indexed collection of cells; all cells covered by
/// the dimensions always exist.
struct ArrayObject {
  std::string name;
  array::ArrayDesc desc;
  std::vector<gdk::BATPtr> dim_bats;
  std::vector<gdk::BATPtr> attr_bats;

  size_t CellCount() const { return desc.CellCount(); }

  /// \brief (Re-)materialise all dimension BATs and reset attribute BATs to
  /// their defaults — the array creation step of paper Sec. 3 / Figure 3.
  Status Materialize();

  /// \brief (Re-)materialise only the dimension BATs, leaving attr_bats
  /// untouched. The storage engine uses this on lazy load: dimensions always
  /// rematerialize from the descriptor while attributes stream in from disk.
  Status MaterializeDims();

  /// \brief ALTER ARRAY ... ALTER DIMENSION d SET RANGE r: cells present in
  /// both the old and new geometry keep their values (including holes), new
  /// cells take the attribute defaults (paper Fig. 1(f)).
  Status AlterDimension(size_t dim_idx, const array::DimRange& new_range);
};

/// \brief Name -> object registry. Object names are case-insensitive.
///
/// Lazy loading: a storage engine may declare objects whose column data still
/// lives on disk and register a loader. GetTable/GetArray materialise such an
/// object on first access, so reopening a database costs only the objects a
/// query actually touches (see docs/storage.md).
class Catalog {
 public:
  /// Fills the named object's BATs from durable storage. Invoked at most once
  /// per object, on first GetTable/GetArray access.
  using Loader = std::function<Status(const std::string& name)>;

  Status CreateTable(const std::string& name,
                     std::vector<array::AttrDesc> columns);
  Status CreateArray(const std::string& name, array::ArrayDesc desc);
  /// \brief Register an array schema WITHOUT materialising its cells (used
  /// for lazily loaded arrays; pair with MarkUnloaded + a loader).
  Status DeclareArray(const std::string& name, array::ArrayDesc desc);
  /// \brief Register an already-materialised array (CREATE ARRAY AS SELECT).
  Status AdoptArray(const std::string& name, array::MaterializedArray arr);
  Status DropObject(const std::string& name);

  /// \brief Drop every object (and pending lazy loads); used when a Database
  /// switches its attached storage directory.
  void Clear();

  /// \brief Install (or clear, with nullptr) the lazy-load callback.
  void SetLoader(Loader loader) { loader_ = std::move(loader); }

  /// \brief Flag `name` (already registered) as not yet loaded from storage.
  void MarkUnloaded(const std::string& name);

  /// \brief True if `name` is declared but its data has not been loaded yet.
  bool IsUnloaded(const std::string& name) const;

  /// True if `name` refers to a table or an array.
  bool Exists(const std::string& name) const;

  Result<std::shared_ptr<TableObject>> GetTable(const std::string& name) const;
  Result<std::shared_ptr<ArrayObject>> GetArray(const std::string& name) const;
  bool IsArray(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ArrayNames() const;

 private:
  /// Run the loader for `key` if it is still pending. The pending mark is
  /// cleared before the loader runs so the loader itself may call
  /// GetTable/GetArray on the same object; it is restored on failure so a
  /// later access retries (and reports) the same clean error.
  Status EnsureLoaded(const std::string& key) const;

  std::map<std::string, std::shared_ptr<TableObject>> tables_;
  std::map<std::string, std::shared_ptr<ArrayObject>> arrays_;
  Loader loader_;
  mutable std::set<std::string> unloaded_;
};

}  // namespace catalog
}  // namespace sciql

#endif  // SCIQL_CATALOG_CATALOG_H_
