// The SQL/SciQL catalog: tables and arrays as first-class, side-by-side
// persistent objects (paper Sec. 1: "store arrays directly in an RDBMS
// side-by-side with the SQL tables").
//
// Adopting the vertically decomposed storage model, each table stores one
// BAT per column; each array stores one BAT per dimension and one BAT per
// non-dimensional attribute (paper Sec. 3, "Array Storage & Creation").
// Fixed arrays are materialised before first use via array.series /
// array.filler.

#ifndef SCIQL_CATALOG_CATALOG_H_
#define SCIQL_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/array/coerce.h"
#include "src/array/descriptor.h"
#include "src/common/result.h"
#include "src/gdk/bat.h"

namespace sciql {
namespace catalog {

/// \brief A relational table: a set of tuples, vertically decomposed.
struct TableObject {
  std::string name;
  std::vector<array::AttrDesc> columns;
  std::vector<gdk::BATPtr> bats;

  size_t RowCount() const { return bats.empty() ? 0 : bats[0]->Count(); }
  int ColumnIndex(const std::string& col) const;

  /// \brief Append one row (values aligned with columns).
  Status AppendRow(const std::vector<gdk::ScalarValue>& row);

  /// \brief Remove the rows at `positions` (compacting; row ids shift).
  Status DeleteRows(const gdk::BAT& positions);
};

/// \brief A SciQL array: an indexed collection of cells; all cells covered by
/// the dimensions always exist.
struct ArrayObject {
  std::string name;
  array::ArrayDesc desc;
  std::vector<gdk::BATPtr> dim_bats;
  std::vector<gdk::BATPtr> attr_bats;

  size_t CellCount() const { return desc.CellCount(); }

  /// \brief (Re-)materialise all dimension BATs and reset attribute BATs to
  /// their defaults — the array creation step of paper Sec. 3 / Figure 3.
  Status Materialize();

  /// \brief ALTER ARRAY ... ALTER DIMENSION d SET RANGE r: cells present in
  /// both the old and new geometry keep their values (including holes), new
  /// cells take the attribute defaults (paper Fig. 1(f)).
  Status AlterDimension(size_t dim_idx, const array::DimRange& new_range);
};

/// \brief Name -> object registry. Object names are case-insensitive.
class Catalog {
 public:
  Status CreateTable(const std::string& name,
                     std::vector<array::AttrDesc> columns);
  Status CreateArray(const std::string& name, array::ArrayDesc desc);
  /// \brief Register an already-materialised array (CREATE ARRAY AS SELECT).
  Status AdoptArray(const std::string& name, array::MaterializedArray arr);
  Status DropObject(const std::string& name);

  /// True if `name` refers to a table or an array.
  bool Exists(const std::string& name) const;

  Result<std::shared_ptr<TableObject>> GetTable(const std::string& name) const;
  Result<std::shared_ptr<ArrayObject>> GetArray(const std::string& name) const;
  bool IsArray(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ArrayNames() const;

 private:
  std::map<std::string, std::shared_ptr<TableObject>> tables_;
  std::map<std::string, std::shared_ptr<ArrayObject>> arrays_;
};

}  // namespace catalog
}  // namespace sciql

#endif  // SCIQL_CATALOG_CATALOG_H_
