#include "src/catalog/catalog.h"

#include <algorithm>
#include <utility>

#include "src/array/series.h"
#include "src/common/string_util.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace catalog {

using gdk::BAT;
using gdk::BATPtr;
using gdk::ScalarValue;

int TableObject::ColumnIndex(const std::string& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col)) return static_cast<int>(i);
  }
  return -1;
}

Status TableObject::AppendRow(const std::vector<ScalarValue>& row) {
  if (row.size() != columns.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table %s has %zu columns", row.size(),
                  name.c_str(), columns.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    SCIQL_RETURN_NOT_OK(bats[i]->Append(row[i]));
  }
  return Status::OK();
}

Status TableObject::DeleteRows(const gdk::BAT& positions) {
  if (positions.type() != gdk::PhysType::kOid) {
    return Status::TypeMismatch("DeleteRows expects oid positions");
  }
  size_t n = RowCount();
  std::vector<bool> dead(n, false);
  for (gdk::oid_t p : positions.oids()) {
    if (p != gdk::kOidNil && p < n) dead[p] = true;
  }
  // Keep-list, then gather each column.
  auto keep = BAT::Make(gdk::PhysType::kOid);
  for (size_t i = 0; i < n; ++i) {
    if (!dead[i]) keep->oids().push_back(i);
  }
  for (auto& b : bats) {
    SCIQL_ASSIGN_OR_RETURN(BATPtr nb, gdk::Project(*b, *keep));
    b = nb;
  }
  return Status::OK();
}

Status ArrayObject::MaterializeDims() {
  for (const auto& d : desc.dims()) {
    SCIQL_RETURN_NOT_OK(d.range.Validate());
  }
  dim_bats.clear();
  for (size_t d = 0; d < desc.ndims(); ++d) {
    dim_bats.push_back(array::MaterializeDim(desc, d));
  }
  return Status::OK();
}

Status ArrayObject::Materialize() {
  SCIQL_RETURN_NOT_OK(MaterializeDims());
  size_t ncells = desc.CellCount();
  attr_bats.clear();
  for (const auto& a : desc.attrs()) {
    ScalarValue def = a.default_value;
    if (def.is_null) {
      def = ScalarValue::Null(a.type);
    } else if (def.type != a.type) {
      SCIQL_ASSIGN_OR_RETURN(def, gdk::CastScalar(def, a.type));
    }
    attr_bats.push_back(array::Filler(ncells, def));
  }
  return Status::OK();
}

Status ArrayObject::AlterDimension(size_t dim_idx,
                                   const array::DimRange& new_range) {
  if (dim_idx >= desc.ndims()) {
    return Status::OutOfRange("no such dimension");
  }
  SCIQL_RETURN_NOT_OK(new_range.Validate());

  array::ArrayDesc new_desc = desc;
  (*new_desc.mutable_dims())[dim_idx].range = new_range;

  ArrayObject rebuilt;
  rebuilt.name = name;
  rebuilt.desc = new_desc;
  SCIQL_RETURN_NOT_OK(rebuilt.Materialize());

  // Copy cells present in both geometries (values *and* holes survive;
  // only genuinely new cells take the defaults — paper Fig. 1(f)).
  size_t old_cells = desc.CellCount();
  std::vector<size_t> old_sizes(desc.ndims());
  for (size_t d = 0; d < desc.ndims(); ++d) {
    old_sizes[d] = desc.dims()[d].range.Size();
  }
  std::vector<size_t> coord(desc.ndims(), 0);
  for (size_t pos = 0; pos < old_cells; ++pos) {
    // Dimension values of this old cell; locate in the new geometry.
    int64_t new_pos = 0;
    bool inside = true;
    std::vector<size_t> new_strides = new_desc.Strides();
    for (size_t d = 0; d < desc.ndims(); ++d) {
      int64_t value = desc.dims()[d].range.ValueAt(coord[d]);
      int64_t idx = new_desc.dims()[d].range.IndexOfOrNeg(value);
      if (idx < 0) {
        inside = false;
        break;
      }
      new_pos += idx * static_cast<int64_t>(new_strides[d]);
    }
    if (inside) {
      for (size_t a = 0; a < attr_bats.size(); ++a) {
        SCIQL_RETURN_NOT_OK(rebuilt.attr_bats[a]->Set(
            static_cast<size_t>(new_pos), attr_bats[a]->GetScalar(pos)));
      }
    }
    for (size_t d = desc.ndims(); d-- > 0;) {
      if (++coord[d] < old_sizes[d]) break;
      coord[d] = 0;
    }
  }

  desc = std::move(rebuilt.desc);
  dim_bats = std::move(rebuilt.dim_bats);
  attr_bats = std::move(rebuilt.attr_bats);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CatalogVersion
// ---------------------------------------------------------------------------

bool CatalogVersion::Exists(const std::string& name) const {
  std::string key = ToLower(name);
  return tables_.count(key) > 0 || arrays_.count(key) > 0;
}

bool CatalogVersion::IsArray(const std::string& name) const {
  return arrays_.count(ToLower(name)) > 0;
}

Result<std::shared_ptr<TableObject>> CatalogVersion::GetTable(
    const std::string& name) const {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("no such table: %s", name.c_str()));
  }
  SCIQL_RETURN_NOT_OK(owner_->EnsureLoaded(key, it->second.get()));
  return it->second;
}

Result<std::shared_ptr<ArrayObject>> CatalogVersion::GetArray(
    const std::string& name) const {
  std::string key = ToLower(name);
  auto it = arrays_.find(key);
  if (it == arrays_.end()) {
    return Status::NotFound(StrFormat("no such array: %s", name.c_str()));
  }
  SCIQL_RETURN_NOT_OK(owner_->EnsureLoaded(key, it->second.get()));
  return it->second;
}

std::vector<std::string> CatalogVersion::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : tables_) out.push_back(k);
  return out;
}

std::vector<std::string> CatalogVersion::ArrayNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : arrays_) out.push_back(k);
  return out;
}

// ---------------------------------------------------------------------------
// Catalog: versioning machinery
// ---------------------------------------------------------------------------

Catalog::Catalog() {
  auto v = std::make_shared<CatalogVersion>();
  v->owner_ = this;
  v->id_ = 0;
  current_ = std::move(v);
}

CatalogVersionPtr Catalog::Pin() const {
  common::MutexLock lk(&mu_);
  pins_.fetch_add(1, std::memory_order_relaxed);
  CatalogVersionPtr keep = current_;
  const CatalogVersion* raw = keep.get();
  // Custom-deleter alias: when the last copy of this pin drops, the pin
  // count goes down (without touching mu_) and the version may be freed.
  return CatalogVersionPtr(raw,
                           [this, keep](const CatalogVersion*) mutable {
                             keep.reset();
                             pins_.fetch_sub(1, std::memory_order_release);
                           });
}

uint64_t Catalog::CurrentVersionId() const {
  common::MutexLock lk(&mu_);
  return current_->id_;
}

void Catalog::SetSharedMode() {
  common::MutexLock lk(&mu_);
  shared_mode_ = true;
}

bool Catalog::shared_mode() const {
  common::MutexLock lk(&mu_);
  return shared_mode_;
}

template <typename Fn>
void Catalog::PublishLocked(Fn mutate) {
  auto next = std::make_shared<CatalogVersion>();
  next->owner_ = this;
  next->id_ = next_id_++;
  next->tables_ = current_->tables_;
  next->arrays_ = current_->arrays_;
  mutate(next.get());
  current_ = std::move(next);
}

std::shared_ptr<TableObject> Catalog::CloneTable(const TableObject& src) {
  auto t = std::make_shared<TableObject>();
  t->name = src.name;
  t->columns = src.columns;
  t->bats.reserve(src.bats.size());
  for (const auto& b : src.bats) t->bats.push_back(b->CloneDataPrivate());
  return t;
}

std::shared_ptr<ArrayObject> Catalog::CloneArray(const ArrayObject& src) {
  auto a = std::make_shared<ArrayObject>();
  a->name = src.name;
  a->desc = src.desc;
  a->dim_bats.reserve(src.dim_bats.size());
  for (const auto& b : src.dim_bats) a->dim_bats.push_back(b->CloneDataPrivate());
  a->attr_bats.reserve(src.attr_bats.size());
  for (const auto& b : src.attr_bats) {
    a->attr_bats.push_back(b->CloneDataPrivate());
  }
  return a;
}

Result<Catalog::WriteHandle> Catalog::BeginWrite(const std::string& name) {
  std::string key = ToLower(name);
  // Load the object (and learn its kind) through a short-lived pin, before
  // taking any decision lock — the loader may do real I/O.
  bool is_array = false;
  {
    CatalogVersionPtr v = Pin();
    if (v->arrays_.count(key) > 0) {
      is_array = true;
      auto r = v->GetArray(key);
      if (!r.ok()) return r.status();
    } else if (v->tables_.count(key) > 0) {
      auto r = v->GetTable(key);
      if (!r.ok()) return r.status();
    } else {
      return Status::NotFound(StrFormat("no such object: %s", name.c_str()));
    }
  }

  WriteHandle h;
  h.cat_ = this;
  h.key_ = key;
  std::unique_lock<common::Mutex> lk(mu_);
  // COW whenever a snapshot is pinned anywhere or the core ever went
  // multi-session; otherwise mutate the live object in place while holding
  // mu_, which excludes new pins for the duration of the statement. The
  // in-place safety argument needs the "no pins" half too: result sets may
  // alias catalog heaps, and only a single sequential session guarantees
  // nobody reads them concurrently with this mutation.
  bool cow = shared_mode_ || pins_.load(std::memory_order_acquire) > 0;
  if (is_array) {
    auto it = current_->arrays_.find(key);
    if (it == current_->arrays_.end()) {
      return Status::NotFound(StrFormat("no such object: %s", name.c_str()));
    }
    if (cow) {
      std::shared_ptr<ArrayObject> src = it->second;
      lk.unlock();
      h.arr_ = CloneArray(*src);
      h.cow_ = true;
    } else {
      h.arr_ = it->second;
      h.lock_ = std::move(lk);
    }
  } else {
    auto it = current_->tables_.find(key);
    if (it == current_->tables_.end()) {
      return Status::NotFound(StrFormat("no such object: %s", name.c_str()));
    }
    if (cow) {
      std::shared_ptr<TableObject> src = it->second;
      lk.unlock();
      h.tab_ = CloneTable(*src);
      h.cow_ = true;
    } else {
      h.tab_ = it->second;
      h.lock_ = std::move(lk);
    }
  }
  return h;
}

Status Catalog::WriteHandle::Commit() {
  if (cat_ == nullptr) {
    return Status::Internal("Commit on an empty or already-committed handle");
  }
  if (cow_) {
    common::MutexLock lk(&cat_->mu_);
    cat_->PublishLocked([this](CatalogVersion* v) {
      if (tab_ != nullptr) {
        v->tables_[key_] = tab_;
      } else {
        v->arrays_[key_] = arr_;
      }
    });
  } else {
    // lock_ is already held on cat_->mu_; the maps already reference the
    // mutated object — publishing still advances the version id so every
    // committed mutation is observable on the gauge.
    cat_->PublishLocked([](CatalogVersion*) {});
    lock_.unlock();
  }
  cat_ = nullptr;
  tab_.reset();
  arr_.reset();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Catalog: mutators
// ---------------------------------------------------------------------------

Status Catalog::CreateTable(const std::string& name,
                            std::vector<array::AttrDesc> columns) {
  std::string key = ToLower(name);
  if (columns.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  auto t = std::make_shared<TableObject>();
  t->name = key;
  t->columns = std::move(columns);
  for (const auto& c : t->columns) {
    t->bats.push_back(BAT::Make(c.type));
  }
  common::MutexLock lk(&mu_);
  if (current_->Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  PublishLocked([&](CatalogVersion* v) { v->tables_[key] = std::move(t); });
  return Status::OK();
}

Status Catalog::CreateArray(const std::string& name, array::ArrayDesc desc) {
  std::string key = ToLower(name);
  if (desc.ndims() == 0) {
    return Status::InvalidArgument("an array needs at least one dimension");
  }
  auto a = std::make_shared<ArrayObject>();
  a->name = key;
  a->desc = std::move(desc);
  SCIQL_RETURN_NOT_OK(a->Materialize());
  common::MutexLock lk(&mu_);
  if (current_->Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  PublishLocked([&](CatalogVersion* v) { v->arrays_[key] = std::move(a); });
  return Status::OK();
}

Status Catalog::DeclareArray(const std::string& name, array::ArrayDesc desc) {
  std::string key = ToLower(name);
  if (desc.ndims() == 0) {
    return Status::InvalidArgument("an array needs at least one dimension");
  }
  auto a = std::make_shared<ArrayObject>();
  a->name = key;
  a->desc = std::move(desc);
  common::MutexLock lk(&mu_);
  if (current_->Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  PublishLocked([&](CatalogVersion* v) { v->arrays_[key] = std::move(a); });
  return Status::OK();
}

Status Catalog::AdoptArray(const std::string& name,
                           array::MaterializedArray arr) {
  std::string key = ToLower(name);
  auto a = std::make_shared<ArrayObject>();
  a->name = key;
  a->desc = std::move(arr.desc);
  a->dim_bats = std::move(arr.dim_bats);
  a->attr_bats = std::move(arr.attr_bats);
  common::MutexLock lk(&mu_);
  if (current_->Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  PublishLocked([&](CatalogVersion* v) { v->arrays_[key] = std::move(a); });
  return Status::OK();
}

Status Catalog::AdoptTable(const std::string& name,
                           std::shared_ptr<TableObject> t) {
  std::string key = ToLower(name);
  t->name = key;
  common::MutexLock lk(&mu_);
  if (current_->Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  PublishLocked([&](CatalogVersion* v) { v->tables_[key] = std::move(t); });
  return Status::OK();
}

Status Catalog::DropObject(const std::string& name) {
  std::string key = ToLower(name);
  common::MutexLock lk(&mu_);
  if (current_->tables_.count(key) > 0) {
    PublishLocked([&](CatalogVersion* v) { v->tables_.erase(key); });
    return Status::OK();
  }
  if (current_->arrays_.count(key) > 0) {
    PublishLocked([&](CatalogVersion* v) { v->arrays_.erase(key); });
    return Status::OK();
  }
  return Status::NotFound(StrFormat("no such object: %s", name.c_str()));
}

void Catalog::Clear() {
  common::MutexLock lk(&mu_);
  PublishLocked([](CatalogVersion* v) {
    v->tables_.clear();
    v->arrays_.clear();
  });
}

// ---------------------------------------------------------------------------
// Catalog: lazy loading
// ---------------------------------------------------------------------------

void Catalog::SetLoader(Loader loader) {
  common::MutexLock lk(&mu_);
  loader_ = std::move(loader);
}

void Catalog::MarkUnloaded(const std::string& name) {
  std::string key = ToLower(name);
  common::MutexLock lk(&mu_);
  auto ti = current_->tables_.find(key);
  if (ti != current_->tables_.end()) {
    ti->second->load.pending.store(true, std::memory_order_release);
    return;
  }
  auto ai = current_->arrays_.find(key);
  if (ai != current_->arrays_.end()) {
    ai->second->load.pending.store(true, std::memory_order_release);
  }
}

bool Catalog::IsUnloaded(const std::string& name) const {
  std::string key = ToLower(name);
  common::MutexLock lk(&mu_);
  auto ti = current_->tables_.find(key);
  if (ti != current_->tables_.end()) {
    return ti->second->load.pending.load(std::memory_order_acquire);
  }
  auto ai = current_->arrays_.find(key);
  if (ai != current_->arrays_.end()) {
    return ai->second->load.pending.load(std::memory_order_acquire);
  }
  return false;
}

template <typename Obj>
Status Catalog::EnsureLoaded(const std::string& key, Obj* obj) const {
  if (!obj->load.pending.load(std::memory_order_acquire)) return Status::OK();
  if (obj->load.loading.load(std::memory_order_acquire) ==
      std::this_thread::get_id()) {
    // The loader re-reading the object it is currently filling.
    return Status::OK();
  }
  common::MutexLock lk(&obj->load.mu);
  if (!obj->load.pending.load(std::memory_order_acquire)) {
    return Status::OK();  // a racing session loaded it while we waited
  }
  Loader loader;
  {
    common::MutexLock cl(&mu_);
    loader = loader_;
    // The loader fills whatever is registered under `key` *now*. If this
    // snapshot's object has since been dropped or replaced, running it
    // would hand the snapshot someone else's data — fail cleanly instead.
    const void* live = nullptr;
    auto ti = current_->tables_.find(key);
    if (ti != current_->tables_.end()) {
      live = ti->second.get();
    } else {
      auto ai = current_->arrays_.find(key);
      if (ai != current_->arrays_.end()) live = ai->second.get();
    }
    if (live != static_cast<const void*>(obj)) {
      return Status::NotFound(StrFormat(
          "object %s was dropped or replaced before its data was loaded; "
          "this snapshot can no longer load it", key.c_str()));
    }
  }
  if (!loader) {
    return Status::Internal(StrFormat(
        "object %s is unloaded but no loader is attached", key.c_str()));
  }
  obj->load.loading.store(std::this_thread::get_id(),
                          std::memory_order_release);
  Status st = loader(key);
  obj->load.loading.store(std::thread::id(), std::memory_order_release);
  // On failure the object stays pending, so a later access retries (and
  // reports) the same clean error.
  if (st.ok()) obj->load.pending.store(false, std::memory_order_release);
  return st;
}

// ---------------------------------------------------------------------------
// Catalog: convenience reads
// ---------------------------------------------------------------------------

bool Catalog::Exists(const std::string& name) const {
  return Pin()->Exists(name);
}

Result<std::shared_ptr<TableObject>> Catalog::GetTable(
    const std::string& name) const {
  return Pin()->GetTable(name);
}

Result<std::shared_ptr<ArrayObject>> Catalog::GetArray(
    const std::string& name) const {
  return Pin()->GetArray(name);
}

bool Catalog::IsArray(const std::string& name) const {
  return Pin()->IsArray(name);
}

std::vector<std::string> Catalog::TableNames() const {
  return Pin()->TableNames();
}

std::vector<std::string> Catalog::ArrayNames() const {
  return Pin()->ArrayNames();
}

}  // namespace catalog
}  // namespace sciql
