#include "src/catalog/catalog.h"

#include <algorithm>

#include "src/array/series.h"
#include "src/common/string_util.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace catalog {

using gdk::BAT;
using gdk::BATPtr;
using gdk::ScalarValue;

int TableObject::ColumnIndex(const std::string& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col)) return static_cast<int>(i);
  }
  return -1;
}

Status TableObject::AppendRow(const std::vector<ScalarValue>& row) {
  if (row.size() != columns.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table %s has %zu columns", row.size(),
                  name.c_str(), columns.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    SCIQL_RETURN_NOT_OK(bats[i]->Append(row[i]));
  }
  return Status::OK();
}

Status TableObject::DeleteRows(const gdk::BAT& positions) {
  if (positions.type() != gdk::PhysType::kOid) {
    return Status::TypeMismatch("DeleteRows expects oid positions");
  }
  size_t n = RowCount();
  std::vector<bool> dead(n, false);
  for (gdk::oid_t p : positions.oids()) {
    if (p != gdk::kOidNil && p < n) dead[p] = true;
  }
  // Keep-list, then gather each column.
  auto keep = BAT::Make(gdk::PhysType::kOid);
  for (size_t i = 0; i < n; ++i) {
    if (!dead[i]) keep->oids().push_back(i);
  }
  for (auto& b : bats) {
    SCIQL_ASSIGN_OR_RETURN(BATPtr nb, gdk::Project(*b, *keep));
    b = nb;
  }
  return Status::OK();
}

Status ArrayObject::MaterializeDims() {
  for (const auto& d : desc.dims()) {
    SCIQL_RETURN_NOT_OK(d.range.Validate());
  }
  dim_bats.clear();
  for (size_t d = 0; d < desc.ndims(); ++d) {
    dim_bats.push_back(array::MaterializeDim(desc, d));
  }
  return Status::OK();
}

Status ArrayObject::Materialize() {
  SCIQL_RETURN_NOT_OK(MaterializeDims());
  size_t ncells = desc.CellCount();
  attr_bats.clear();
  for (const auto& a : desc.attrs()) {
    ScalarValue def = a.default_value;
    if (def.is_null) {
      def = ScalarValue::Null(a.type);
    } else if (def.type != a.type) {
      SCIQL_ASSIGN_OR_RETURN(def, gdk::CastScalar(def, a.type));
    }
    attr_bats.push_back(array::Filler(ncells, def));
  }
  return Status::OK();
}

Status ArrayObject::AlterDimension(size_t dim_idx,
                                   const array::DimRange& new_range) {
  if (dim_idx >= desc.ndims()) {
    return Status::OutOfRange("no such dimension");
  }
  SCIQL_RETURN_NOT_OK(new_range.Validate());

  array::ArrayDesc new_desc = desc;
  (*new_desc.mutable_dims())[dim_idx].range = new_range;

  ArrayObject rebuilt;
  rebuilt.name = name;
  rebuilt.desc = new_desc;
  SCIQL_RETURN_NOT_OK(rebuilt.Materialize());

  // Copy cells present in both geometries (values *and* holes survive;
  // only genuinely new cells take the defaults — paper Fig. 1(f)).
  size_t old_cells = desc.CellCount();
  std::vector<size_t> old_sizes(desc.ndims());
  for (size_t d = 0; d < desc.ndims(); ++d) {
    old_sizes[d] = desc.dims()[d].range.Size();
  }
  std::vector<size_t> coord(desc.ndims(), 0);
  for (size_t pos = 0; pos < old_cells; ++pos) {
    // Dimension values of this old cell; locate in the new geometry.
    int64_t new_pos = 0;
    bool inside = true;
    std::vector<size_t> new_strides = new_desc.Strides();
    for (size_t d = 0; d < desc.ndims(); ++d) {
      int64_t value = desc.dims()[d].range.ValueAt(coord[d]);
      int64_t idx = new_desc.dims()[d].range.IndexOfOrNeg(value);
      if (idx < 0) {
        inside = false;
        break;
      }
      new_pos += idx * static_cast<int64_t>(new_strides[d]);
    }
    if (inside) {
      for (size_t a = 0; a < attr_bats.size(); ++a) {
        SCIQL_RETURN_NOT_OK(rebuilt.attr_bats[a]->Set(
            static_cast<size_t>(new_pos), attr_bats[a]->GetScalar(pos)));
      }
    }
    for (size_t d = desc.ndims(); d-- > 0;) {
      if (++coord[d] < old_sizes[d]) break;
      coord[d] = 0;
    }
  }

  desc = std::move(rebuilt.desc);
  dim_bats = std::move(rebuilt.dim_bats);
  attr_bats = std::move(rebuilt.attr_bats);
  return Status::OK();
}

Status Catalog::CreateTable(const std::string& name,
                            std::vector<array::AttrDesc> columns) {
  std::string key = ToLower(name);
  if (Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  if (columns.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  auto t = std::make_shared<TableObject>();
  t->name = key;
  t->columns = std::move(columns);
  for (const auto& c : t->columns) {
    t->bats.push_back(BAT::Make(c.type));
  }
  tables_[key] = std::move(t);
  return Status::OK();
}

Status Catalog::CreateArray(const std::string& name, array::ArrayDesc desc) {
  std::string key = ToLower(name);
  if (Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  if (desc.ndims() == 0) {
    return Status::InvalidArgument("an array needs at least one dimension");
  }
  auto a = std::make_shared<ArrayObject>();
  a->name = key;
  a->desc = std::move(desc);
  SCIQL_RETURN_NOT_OK(a->Materialize());
  arrays_[key] = std::move(a);
  return Status::OK();
}

Status Catalog::DeclareArray(const std::string& name, array::ArrayDesc desc) {
  std::string key = ToLower(name);
  if (Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  if (desc.ndims() == 0) {
    return Status::InvalidArgument("an array needs at least one dimension");
  }
  auto a = std::make_shared<ArrayObject>();
  a->name = key;
  a->desc = std::move(desc);
  arrays_[key] = std::move(a);
  return Status::OK();
}

Status Catalog::AdoptArray(const std::string& name,
                           array::MaterializedArray arr) {
  std::string key = ToLower(name);
  if (Exists(key)) {
    return Status::AlreadyExists(StrFormat("object %s exists", name.c_str()));
  }
  auto a = std::make_shared<ArrayObject>();
  a->name = key;
  a->desc = std::move(arr.desc);
  a->dim_bats = std::move(arr.dim_bats);
  a->attr_bats = std::move(arr.attr_bats);
  arrays_[key] = std::move(a);
  return Status::OK();
}

Status Catalog::DropObject(const std::string& name) {
  std::string key = ToLower(name);
  unloaded_.erase(key);
  if (tables_.erase(key) > 0) return Status::OK();
  if (arrays_.erase(key) > 0) return Status::OK();
  return Status::NotFound(StrFormat("no such object: %s", name.c_str()));
}

void Catalog::Clear() {
  tables_.clear();
  arrays_.clear();
  unloaded_.clear();
}

void Catalog::MarkUnloaded(const std::string& name) {
  unloaded_.insert(ToLower(name));
}

bool Catalog::IsUnloaded(const std::string& name) const {
  return unloaded_.count(ToLower(name)) > 0;
}

Status Catalog::EnsureLoaded(const std::string& key) const {
  auto it = unloaded_.find(key);
  if (it == unloaded_.end()) return Status::OK();
  if (!loader_) {
    return Status::Internal(
        StrFormat("object %s is unloaded but no loader is attached",
                  key.c_str()));
  }
  unloaded_.erase(it);
  Status st = loader_(key);
  if (!st.ok()) unloaded_.insert(key);
  return st;
}

bool Catalog::Exists(const std::string& name) const {
  std::string key = ToLower(name);
  return tables_.count(key) > 0 || arrays_.count(key) > 0;
}

Result<std::shared_ptr<TableObject>> Catalog::GetTable(
    const std::string& name) const {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("no such table: %s", name.c_str()));
  }
  SCIQL_RETURN_NOT_OK(EnsureLoaded(key));
  return it->second;
}

Result<std::shared_ptr<ArrayObject>> Catalog::GetArray(
    const std::string& name) const {
  std::string key = ToLower(name);
  auto it = arrays_.find(key);
  if (it == arrays_.end()) {
    return Status::NotFound(StrFormat("no such array: %s", name.c_str()));
  }
  SCIQL_RETURN_NOT_OK(EnsureLoaded(key));
  return it->second;
}

bool Catalog::IsArray(const std::string& name) const {
  return arrays_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : tables_) out.push_back(k);
  return out;
}

std::vector<std::string> Catalog::ArrayNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : arrays_) out.push_back(k);
  return out;
}

}  // namespace catalog
}  // namespace sciql
