// Legacy whole-catalog image: one binary file holding every object's schema
// and column BATs (versioned header + whole-image checksum; strings stored
// length-prefixed and re-interned on load).
//
// This is a read-only import/export path. The engine's durable persistence
// lives in src/storage/ (per-column heap files, write-ahead log, lazy
// manifest-driven open — see docs/storage.md); use engine::Database::Open.
// Deserialization here is hardened against corrupt input: bounds- and
// overflow-checked reads (common/codec.h), a v2 checksum (v1 images still
// load), and plausibility caps on array geometry.

#ifndef SCIQL_CATALOG_PERSIST_H_
#define SCIQL_CATALOG_PERSIST_H_

#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"

namespace sciql {
namespace catalog {

/// \brief Serialize the whole catalog (schemas + data) to `path`.
Status SaveCatalog(const Catalog& cat, const std::string& path);

/// \brief Load a catalog previously written by SaveCatalog. The target
/// catalog must be empty.
Status LoadCatalog(Catalog* cat, const std::string& path);

/// \brief In-memory round trip (used by tests and the shell's dump command).
Result<std::string> SerializeCatalog(const Catalog& cat);
Status DeserializeCatalog(Catalog* cat, const std::string& bytes);

}  // namespace catalog
}  // namespace sciql

#endif  // SCIQL_CATALOG_PERSIST_H_
