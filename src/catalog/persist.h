// Catalog persistence: arrays and tables as *persistent* first-class
// database objects (paper Sec. 3, "the creation of persistent database
// objects has been extended to implement array creation").
//
// The on-disk layout is one binary file per database: a versioned header,
// then each object's schema followed by its column BATs. Strings are stored
// length-prefixed and re-interned on load.

#ifndef SCIQL_CATALOG_PERSIST_H_
#define SCIQL_CATALOG_PERSIST_H_

#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"

namespace sciql {
namespace catalog {

/// \brief Serialize the whole catalog (schemas + data) to `path`.
Status SaveCatalog(const Catalog& cat, const std::string& path);

/// \brief Load a catalog previously written by SaveCatalog. The target
/// catalog must be empty.
Status LoadCatalog(Catalog* cat, const std::string& path);

/// \brief In-memory round trip (used by tests and the shell's dump command).
Result<std::string> SerializeCatalog(const Catalog& cat);
Status DeserializeCatalog(Catalog* cat, const std::string& bytes);

}  // namespace catalog
}  // namespace sciql

#endif  // SCIQL_CATALOG_PERSIST_H_
