#include "src/catalog/schema_io.h"

namespace sciql {
namespace catalog {

using gdk::PhysType;
using gdk::ScalarValue;

void PutScalar(ByteWriter* w, const ScalarValue& v) {
  w->PutU32(static_cast<uint32_t>(v.type));
  w->PutU32(v.is_null ? 1 : 0);
  if (v.is_null) return;
  switch (v.type) {
    case PhysType::kDbl:
      w->PutF64(v.d);
      break;
    case PhysType::kStr:
      w->PutStr(v.s);
      break;
    default:
      w->PutI64(v.i);
      break;
  }
}

Result<ScalarValue> GetScalar(ByteReader* r) {
  SCIQL_ASSIGN_OR_RETURN(uint32_t type, r->U32());
  SCIQL_ASSIGN_OR_RETURN(uint32_t null_flag, r->U32());
  if (type > static_cast<uint32_t>(PhysType::kStr)) {
    return Status::IOError("bad scalar type in catalog image");
  }
  PhysType t = static_cast<PhysType>(type);
  if (null_flag != 0) return ScalarValue::Null(t);
  ScalarValue v;
  v.type = t;
  v.is_null = false;
  switch (t) {
    case PhysType::kDbl: {
      SCIQL_ASSIGN_OR_RETURN(v.d, r->F64());
      return v;
    }
    case PhysType::kStr: {
      SCIQL_ASSIGN_OR_RETURN(v.s, r->Str());
      return v;
    }
    default: {
      SCIQL_ASSIGN_OR_RETURN(v.i, r->I64());
      return v;
    }
  }
}

void PutAttrDesc(ByteWriter* w, const array::AttrDesc& a) {
  w->PutStr(a.name);
  w->PutU32(static_cast<uint32_t>(a.type));
  PutScalar(w, a.default_value);
}

Result<array::AttrDesc> GetAttrDesc(ByteReader* r) {
  array::AttrDesc a;
  SCIQL_ASSIGN_OR_RETURN(a.name, r->Str());
  SCIQL_ASSIGN_OR_RETURN(uint32_t t, r->U32());
  if (t > static_cast<uint32_t>(PhysType::kStr)) {
    return Status::IOError("bad attribute type in catalog image");
  }
  a.type = static_cast<PhysType>(t);
  SCIQL_ASSIGN_OR_RETURN(a.default_value, GetScalar(r));
  return a;
}

void PutDimDesc(ByteWriter* w, const array::DimDesc& d) {
  w->PutStr(d.name);
  w->PutI64(d.range.start);
  w->PutI64(d.range.step);
  w->PutI64(d.range.stop);
  w->PutU32(d.unbounded ? 1 : 0);
}

Result<array::DimDesc> GetDimDesc(ByteReader* r) {
  array::DimDesc dim;
  SCIQL_ASSIGN_OR_RETURN(dim.name, r->Str());
  SCIQL_ASSIGN_OR_RETURN(dim.range.start, r->I64());
  SCIQL_ASSIGN_OR_RETURN(dim.range.step, r->I64());
  SCIQL_ASSIGN_OR_RETURN(dim.range.stop, r->I64());
  SCIQL_ASSIGN_OR_RETURN(uint32_t unbounded, r->U32());
  dim.unbounded = unbounded != 0;
  return dim;
}

}  // namespace catalog
}  // namespace sciql
