// Binary encoding of schema elements (scalars, attribute and dimension
// descriptors) shared by the legacy single-file catalog image
// (src/catalog/persist.cc) and the storage-engine manifest
// (src/storage/manifest.cc). One codec, so the two formats cannot drift in
// how they spell a default value or a dimension range.

#ifndef SCIQL_CATALOG_SCHEMA_IO_H_
#define SCIQL_CATALOG_SCHEMA_IO_H_

#include "src/array/descriptor.h"
#include "src/common/codec.h"
#include "src/common/result.h"
#include "src/gdk/types.h"

namespace sciql {
namespace catalog {

void PutScalar(ByteWriter* w, const gdk::ScalarValue& v);
Result<gdk::ScalarValue> GetScalar(ByteReader* r);

void PutAttrDesc(ByteWriter* w, const array::AttrDesc& a);
Result<array::AttrDesc> GetAttrDesc(ByteReader* r);

void PutDimDesc(ByteWriter* w, const array::DimDesc& d);
Result<array::DimDesc> GetDimDesc(ByteReader* r);

}  // namespace catalog
}  // namespace sciql

#endif  // SCIQL_CATALOG_SCHEMA_IO_H_
