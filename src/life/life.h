// Conway's Game of Life implemented on top of SciQL (demo Scenario I).
//
// All play rules are expressed as SciQL queries: board creation is a CREATE
// ARRAY, seeding is INSERT, clearing is UPDATE, resizing is ALTER ARRAY, and
// the generation step is one structural-grouping query over 3x3 tiles. For
// the paper's comparison ("In SQL, such query would require an eight-way
// self-join"), a pure-SQL table-based step is provided, plus a native C++
// step as ground truth and performance floor.

#ifndef SCIQL_LIFE_LIFE_H_
#define SCIQL_LIFE_LIFE_H_

#include <string>
#include <vector>

#include "src/engine/database.h"

namespace sciql {
namespace life {

/// \brief Well-known seed patterns.
enum class Pattern { kBlinker, kGlider, kBlock, kRPentomino, kRandom };

/// \brief A Game of Life board stored as a SciQL array (or, for the SQL
/// baseline, a relational table of cell tuples).
class LifeBoard {
 public:
  /// \brief Create board array `name` of size n x n in `db`, all cells dead.
  static Result<LifeBoard> Create(engine::Database* db, const std::string& name,
                                  size_t n);

  /// \brief Seed a pattern; `ox`,`oy` position its upper-left corner.
  Status Seed(Pattern p, int64_t ox, int64_t oy, double density = 0.25,
              uint64_t seed = 1);

  /// \brief Set one cell alive (1) or dead (0) via SciQL UPDATE.
  Status SetCell(int64_t x, int64_t y, int alive);

  /// \brief All play rules in one SciQL query: 3x3 structural grouping,
  /// neighbour count = SUM(tile) - v, INSERT overwrites the board.
  Status StepSciql();

  /// \brief Alternative SciQL formulation: the eight neighbours as an
  /// explicit cell-list tile (the anchor is *not* part of the tile, so no
  /// SUM(v) - v correction is needed).
  Status StepSciqlNeighborTile();

  /// \brief The paper's counterfactual: the same generation computed in
  /// plain SQL over a `cells(x, y, v)` table using an eight-way self-join.
  Status StepSqlSelfJoin();

  /// \brief Native in-memory step (ground truth / performance floor).
  Status StepNative();

  /// \brief Clear the board (all cells dead) — UPDATE in SciQL.
  Status Clear();

  /// \brief Resize the board via ALTER ARRAY; new cells are dead.
  Status Resize(size_t n);

  /// \brief Current board as 0/1 values, row-major (y*n + x).
  Result<std::vector<int>> Snapshot() const;

  /// \brief Number of living cells (SELECT SUM(v)).
  Result<int64_t> Population() const;

  /// \brief ASCII rendering ('#' alive, '.' dead), highest y first.
  Result<std::string> Render() const;

  size_t size() const { return n_; }
  const std::string& name() const { return name_; }

 private:
  LifeBoard(engine::Database* db, std::string name, size_t n)
      : db_(db), name_(std::move(name)), n_(n) {}

  /// Mirror the array into the relational `cells` table (for the SQL step).
  Status SyncToTable();
  Status SyncFromTable();

  engine::Database* db_;
  std::string name_;
  size_t n_;
};

}  // namespace life
}  // namespace sciql

#endif  // SCIQL_LIFE_LIFE_H_
