#include "src/life/life.h"

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace sciql {
namespace life {

using engine::ResultSet;

Result<LifeBoard> LifeBoard::Create(engine::Database* db,
                                    const std::string& name, size_t n) {
  if (n < 3) return Status::InvalidArgument("board must be at least 3x3");
  SCIQL_RETURN_NOT_OK(db->Run(StrFormat(
      "CREATE ARRAY %s (x INT DIMENSION[0:1:%zu], y INT DIMENSION[0:1:%zu], "
      "v INT DEFAULT 0)",
      name.c_str(), n, n)));
  return LifeBoard(db, name, n);
}

Status LifeBoard::SetCell(int64_t x, int64_t y, int alive) {
  return db_->Run(StrFormat("UPDATE %s SET v = %d WHERE x = %lld AND y = %lld",
                            name_.c_str(), alive, static_cast<long long>(x),
                            static_cast<long long>(y)));
}

Status LifeBoard::Seed(Pattern p, int64_t ox, int64_t oy, double density,
                       uint64_t seed) {
  auto insert_cells =
      [&](const std::vector<std::pair<int64_t, int64_t>>& cells) -> Status {
    std::vector<std::string> rows;
    for (const auto& [dx, dy] : cells) {
      rows.push_back(StrFormat("(%lld, %lld, 1)",
                               static_cast<long long>(ox + dx),
                               static_cast<long long>(oy + dy)));
    }
    return db_->Run(StrFormat("INSERT INTO %s (x, y, v) VALUES %s",
                              name_.c_str(), Join(rows, ", ").c_str()));
  };
  switch (p) {
    case Pattern::kBlinker:
      return insert_cells({{0, 1}, {1, 1}, {2, 1}});
    case Pattern::kGlider:
      return insert_cells({{1, 0}, {2, 1}, {0, 2}, {1, 2}, {2, 2}});
    case Pattern::kBlock:
      return insert_cells({{0, 0}, {1, 0}, {0, 1}, {1, 1}});
    case Pattern::kRPentomino:
      return insert_cells({{1, 0}, {2, 0}, {0, 1}, {1, 1}, {1, 2}});
    case Pattern::kRandom: {
      // Bulk random fill through the storage layer (vault-style ingestion);
      // SciQL INSERT VALUES would need n^2 literals.
      SCIQL_ASSIGN_OR_RETURN(auto arr, db_->catalog()->GetArray(name_));
      Rng rng(seed);
      auto& v = arr->attr_bats[0]->ints();
      for (auto& cell : v) cell = rng.Chance(density) ? 1 : 0;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable pattern");
}

Status LifeBoard::StepSciql() {
  // All play rules in one structural-grouping query: the 3x3 tile sum minus
  // the anchor value is the number of living neighbours.
  return db_->Run(StrFormat(
      "INSERT INTO %s ("
      "SELECT [x], [y], "
      "CASE WHEN SUM(v) - v = 3 THEN 1 "
      "     WHEN v = 1 AND SUM(v) - v = 2 THEN 1 "
      "     ELSE 0 END "
      "FROM %s GROUP BY %s[x-1:x+2][y-1:y+2])",
      name_.c_str(), name_.c_str(), name_.c_str()));
}

Status LifeBoard::StepSciqlNeighborTile() {
  // The tile lists exactly the eight neighbours; the anchor value v is
  // still accessible because non-aggregated attributes refer to the anchor
  // cell, which need not be part of the tile.
  const char* n = name_.c_str();
  return db_->Run(StrFormat(
      "INSERT INTO %s ("
      "SELECT [x], [y], "
      "CASE WHEN SUM(v) = 3 THEN 1 "
      "     WHEN v = 1 AND SUM(v) = 2 THEN 1 "
      "     ELSE 0 END "
      "FROM %s GROUP BY "
      "%s[x-1][y-1], %s[x][y-1], %s[x+1][y-1], "
      "%s[x-1][y],                %s[x+1][y], "
      "%s[x-1][y+1], %s[x][y+1], %s[x+1][y+1])",
      n, n, n, n, n, n, n, n, n, n));
}

Status LifeBoard::SyncToTable() {
  // The relational counterfactual stores one tuple per cell, padded with a
  // ring of dead cells so that every interior cell has all eight neighbours
  // under inner joins.
  (void)db_->Run("DROP TABLE cells");
  SCIQL_RETURN_NOT_OK(db_->Run("CREATE TABLE cells (x INT, y INT, v INT)"));
  SCIQL_ASSIGN_OR_RETURN(auto arr, db_->catalog()->GetArray(name_));
  SCIQL_ASSIGN_OR_RETURN(auto tab, db_->catalog()->GetTable("cells"));
  const auto& v = arr->attr_bats[0]->ints();
  int64_t n = static_cast<int64_t>(n_);
  auto& tx = tab->bats[0]->ints();
  auto& ty = tab->bats[1]->ints();
  auto& tv = tab->bats[2]->ints();
  size_t padded = static_cast<size_t>((n + 2) * (n + 2));
  tx.reserve(padded);
  ty.reserve(padded);
  tv.reserve(padded);
  for (int64_t x = -1; x <= n; ++x) {
    for (int64_t y = -1; y <= n; ++y) {
      tx.push_back(static_cast<int32_t>(x));
      ty.push_back(static_cast<int32_t>(y));
      bool inside = x >= 0 && x < n && y >= 0 && y < n;
      tv.push_back(inside ? v[static_cast<size_t>(x * n + y)] : 0);
    }
  }
  return Status::OK();
}

Status LifeBoard::SyncFromTable() {
  SCIQL_ASSIGN_OR_RETURN(auto arr, db_->catalog()->GetArray(name_));
  SCIQL_ASSIGN_OR_RETURN(auto tab, db_->catalog()->GetTable("cells"));
  const auto& tx = tab->bats[0]->ints();
  const auto& ty = tab->bats[1]->ints();
  const auto& tv = tab->bats[2]->ints();
  auto& v = arr->attr_bats[0]->ints();
  int64_t n = static_cast<int64_t>(n_);
  for (size_t i = 0; i < tx.size(); ++i) {
    int64_t x = tx[i], y = ty[i];
    if (x < 0 || x >= n || y < 0 || y >= n) continue;
    v[static_cast<size_t>(x * n + y)] = tv[i];
  }
  return Status::OK();
}

Status LifeBoard::StepSqlSelfJoin() {
  SCIQL_RETURN_NOT_OK(SyncToTable());
  // The eight-way self-join the paper cites as the relational formulation:
  // each neighbour is a separate join partner.
  std::string sql =
      "SELECT c.x AS x, c.y AS y, "
      "CASE WHEN n1.v + n2.v + n3.v + n4.v + n5.v + n6.v + n7.v + n8.v = 3 "
      "     THEN 1 "
      "     WHEN c.v = 1 AND "
      "          n1.v + n2.v + n3.v + n4.v + n5.v + n6.v + n7.v + n8.v = 2 "
      "     THEN 1 "
      "     ELSE 0 END AS v "
      "FROM cells c";
  static const int kOffsets[8][2] = {{-1, -1}, {0, -1}, {1, -1}, {-1, 0},
                                     {1, 0},   {-1, 1}, {0, 1},  {1, 1}};
  for (int i = 0; i < 8; ++i) {
    sql += StrFormat(
        " JOIN cells n%d ON n%d.x = c.x + %d AND n%d.y = c.y + %d", i + 1,
        i + 1, kOffsets[i][0], i + 1, kOffsets[i][1]);
  }
  sql += StrFormat(
      " WHERE c.x >= 0 AND c.x < %zu AND c.y >= 0 AND c.y < %zu", n_, n_);
  SCIQL_ASSIGN_OR_RETURN(ResultSet next, db_->Query(sql));

  // Apply the generation to the board.
  SCIQL_ASSIGN_OR_RETURN(auto arr, db_->catalog()->GetArray(name_));
  auto& v = arr->attr_bats[0]->ints();
  int xs = next.ColumnIndex("x");
  int ys = next.ColumnIndex("y");
  int vs = next.ColumnIndex("v");
  if (xs < 0 || ys < 0 || vs < 0) {
    return Status::Internal("self-join step lost its columns");
  }
  int64_t n = static_cast<int64_t>(n_);
  for (size_t r = 0; r < next.NumRows(); ++r) {
    int64_t x = next.Value(r, static_cast<size_t>(xs)).AsInt64();
    int64_t y = next.Value(r, static_cast<size_t>(ys)).AsInt64();
    int64_t nv = next.Value(r, static_cast<size_t>(vs)).AsInt64();
    v[static_cast<size_t>(x * n + y)] = static_cast<int32_t>(nv);
  }
  return Status::OK();
}

Status LifeBoard::StepNative() {
  SCIQL_ASSIGN_OR_RETURN(auto arr, db_->catalog()->GetArray(name_));
  auto& v = arr->attr_bats[0]->ints();
  int64_t n = static_cast<int64_t>(n_);
  std::vector<int32_t> next(v.size());
  for (int64_t x = 0; x < n; ++x) {
    for (int64_t y = 0; y < n; ++y) {
      int neighbours = 0;
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          if (dx == 0 && dy == 0) continue;
          int64_t cx = x + dx;
          int64_t cy = y + dy;
          if (cx < 0 || cx >= n || cy < 0 || cy >= n) continue;
          neighbours += v[static_cast<size_t>(cx * n + cy)];
        }
      }
      int32_t cur = v[static_cast<size_t>(x * n + y)];
      next[static_cast<size_t>(x * n + y)] =
          neighbours == 3 || (cur == 1 && neighbours == 2) ? 1 : 0;
    }
  }
  v = std::move(next);
  return Status::OK();
}

Status LifeBoard::Clear() {
  return db_->Run(StrFormat("UPDATE %s SET v = 0", name_.c_str()));
}

Status LifeBoard::Resize(size_t n) {
  SCIQL_RETURN_NOT_OK(db_->Run(
      StrFormat("ALTER ARRAY %s ALTER DIMENSION x SET RANGE [0:1:%zu]",
                name_.c_str(), n)));
  SCIQL_RETURN_NOT_OK(db_->Run(
      StrFormat("ALTER ARRAY %s ALTER DIMENSION y SET RANGE [0:1:%zu]",
                name_.c_str(), n)));
  n_ = n;
  return Status::OK();
}

Result<std::vector<int>> LifeBoard::Snapshot() const {
  SCIQL_ASSIGN_OR_RETURN(auto arr, db_->catalog()->GetArray(name_));
  const auto& v = arr->attr_bats[0]->ints();
  std::vector<int> out(n_ * n_, 0);
  for (size_t x = 0; x < n_; ++x) {
    for (size_t y = 0; y < n_; ++y) {
      int32_t cell = v[x * n_ + y];
      out[y * n_ + x] = cell == 1 ? 1 : 0;
    }
  }
  return out;
}

Result<int64_t> LifeBoard::Population() const {
  SCIQL_ASSIGN_OR_RETURN(
      ResultSet rs,
      db_->Query(StrFormat("SELECT SUM(v) AS pop FROM %s", name_.c_str())));
  if (rs.NumRows() != 1) return Status::Internal("population query shape");
  gdk::ScalarValue v = rs.Value(0, 0);
  return v.is_null ? 0 : v.AsInt64();
}

Result<std::string> LifeBoard::Render() const {
  SCIQL_ASSIGN_OR_RETURN(std::vector<int> cells, Snapshot());
  std::string out;
  for (size_t row = n_; row-- > 0;) {
    for (size_t x = 0; x < n_; ++x) {
      out += cells[row * n_ + x] ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

}  // namespace life
}  // namespace sciql
