#include "src/sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <unordered_set>

#include "src/common/string_util.h"

namespace sciql {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kw = new std::unordered_set<std::string>{
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
      "DESC", "LIMIT", "AS", "CREATE", "TABLE", "ARRAY", "DIMENSION",
      "DEFAULT", "INT", "INTEGER", "BIGINT", "SMALLINT", "LONG", "DOUBLE",
      "FLOAT", "REAL", "BOOLEAN", "BOOL", "VARCHAR", "STRING", "TEXT", "CHAR",
      "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "DROP", "ALTER",
      "RANGE", "CASE", "WHEN", "THEN", "ELSE", "END", "NULL", "IS", "NOT",
      "IN", "BETWEEN", "AND", "OR", "MOD", "DISTINCT", "COUNT", "SUM", "AVG",
      "MIN", "MAX", "ABS", "JOIN", "INNER", "ON", "TRUE", "FALSE", "EXPLAIN",
      "ANALYZE",
  };
  return *kw;
}

}  // namespace

bool IsReservedKeyword(const std::string& upper) {
  return Keywords().count(upper) > 0;
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

std::string Token::Describe() const {
  switch (type) {
    case TokenType::kEof:
      return "end of input";
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kKeyword:
      return "keyword " + text;
    case TokenType::kIntLiteral:
    case TokenType::kFloatLiteral:
      return "number '" + text + "'";
    case TokenType::kStrLiteral:
      return "string literal";
    case TokenType::kOperator:
      return "'" + text + "'";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  size_t line = 1;
  size_t line_start = 0;
  auto col = [&](size_t pos) { return pos - line_start + 1; };

  while (i < sql.size()) {
    char c = sql[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }

    Token t;
    t.line = line;
    t.col = col(i);
    t.offset = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      out.push_back(std::move(t));
      continue;
    }

    if (c == '"') {
      // Quoted identifier.
      size_t start = ++i;
      while (i < sql.size() && sql[i] != '"') ++i;
      if (i >= sql.size()) {
        return Status::ParseError(
            StrFormat("unterminated quoted identifier at line %zu", line));
      }
      t.type = TokenType::kIdentifier;
      t.text = sql.substr(start, i - start);
      ++i;
      out.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) {
        ++i;
      }
      if (i < sql.size() && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < sql.size() &&
               std::isdigit(static_cast<unsigned char>(sql[i]))) {
          ++i;
        }
      }
      if (i < sql.size() && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < sql.size() && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          is_float = true;
          while (i < sql.size() &&
                 std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        } else {
          i = save;  // not an exponent; leave 'e' for the next token
        }
      }
      t.text = sql.substr(start, i - start);
      if (is_float) {
        t.type = TokenType::kFloatLiteral;
        t.float_val = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.type = TokenType::kIntLiteral;
        // The digits are lexed unsigned (a leading '-' is the unary-minus
        // operator), so parse the magnitude and range-check it explicitly —
        // strtoll would silently saturate out-of-range literals to
        // INT64_MAX. The magnitude 2^63 is one past INT64_MAX but exactly
        // -INT64_MIN: it is tagged rather than rejected so the parser can
        // accept it under unary minus (-9223372036854775808 round-trips to
        // INT64_MIN) and reject it everywhere else.
        constexpr unsigned long long kMinMagnitude = 9223372036854775808ULL;
        errno = 0;
        unsigned long long mag = std::strtoull(t.text.c_str(), nullptr, 10);
        if (errno == ERANGE || mag > kMinMagnitude) {
          return Status::ParseError(StrFormat(
              "integer literal '%s' is out of range at line %zu column %zu",
              t.text.c_str(), line, t.col));
        }
        if (mag == kMinMagnitude) {
          t.int_min_magnitude = true;
          t.int_val = std::numeric_limits<int64_t>::min();
        } else {
          t.int_val = static_cast<int64_t>(mag);
        }
      }
      out.push_back(std::move(t));
      continue;
    }

    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            value.push_back('\'');  // '' escape
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at line %zu", line));
      }
      t.type = TokenType::kStrLiteral;
      t.text = std::move(value);
      out.push_back(std::move(t));
      continue;
    }

    // Multi-char operators first.
    auto two = i + 1 < sql.size() ? sql.substr(i, 2) : std::string();
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
      t.type = TokenType::kOperator;
      t.text = two == "<>" ? "!=" : two;
      i += 2;
      out.push_back(std::move(t));
      continue;
    }
    static const std::string kSingles = "+-*/%=<>()[],;.:";
    if (kSingles.find(c) != std::string::npos) {
      t.type = TokenType::kOperator;
      t.text = std::string(1, c);
      ++i;
      out.push_back(std::move(t));
      continue;
    }
    return Status::ParseError(StrFormat(
        "unexpected character '%c' at line %zu column %zu", c, line, col(i)));
  }

  Token eof;
  eof.type = TokenType::kEof;
  eof.line = line;
  eof.col = col(i);
  eof.offset = i;
  out.push_back(eof);
  return out;
}

}  // namespace sql
}  // namespace sciql
