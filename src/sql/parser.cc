#include "src/sql/parser.h"

#include "src/common/string_util.h"
#include "src/sql/lexer.h"

namespace sciql {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<StatementPtr>> ParseStatements(const std::string& text) {
    std::vector<StatementPtr> out;
    while (!AtEof()) {
      if (AcceptOp(";")) continue;
      size_t begin = Cur().offset;
      SCIQL_ASSIGN_OR_RETURN(StatementPtr s, ParseStatement());
      // Cur() is now the terminating ';' (or eof), so [begin, Cur().offset)
      // spans exactly this statement's text.
      s->source = Trim(text.substr(begin, Cur().offset - begin));
      out.push_back(std::move(s));
      if (!AtEof()) {
        SCIQL_RETURN_NOT_OK(ExpectOp(";"));
      }
    }
    return out;
  }

 private:
  bool AtEof() const { return Cur().type == TokenType::kEof; }

  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t p = pos_ + ahead;
    if (p >= tokens_.size()) p = tokens_.size() - 1;
    return tokens_[p];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(StrFormat("%s at line %zu column %zu (near %s)",
                                        msg.c_str(), Cur().line, Cur().col,
                                        Cur().Describe().c_str()));
  }

  bool AcceptOp(const char* op) {
    if (Cur().IsOp(op)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKw(const char* kw) {
    if (Cur().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectOp(const char* op) {
    if (!AcceptOp(op)) return Err(StrFormat("expected '%s'", op));
    return Status::OK();
  }
  Status ExpectKw(const char* kw) {
    if (!AcceptKw(kw)) return Err(StrFormat("expected %s", kw));
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Cur().type != TokenType::kIdentifier) {
      return Err("expected an identifier");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // -------------------------------------------------------------------------
  // Statements
  // -------------------------------------------------------------------------

  Result<StatementPtr> ParseStatement() {
    if (Cur().IsKeyword("EXPLAIN")) {
      Advance();
      auto st = std::make_unique<Statement>();
      st->kind = Statement::Kind::kExplain;
      st->analyze = AcceptKw("ANALYZE");
      SCIQL_ASSIGN_OR_RETURN(st->inner, ParseStatement());
      return st;
    }
    if (Cur().IsKeyword("SELECT")) {
      auto st = std::make_unique<Statement>();
      st->kind = Statement::Kind::kSelect;
      SCIQL_ASSIGN_OR_RETURN(st->select, ParseSelect());
      return st;
    }
    if (Cur().IsKeyword("CREATE")) return ParseCreate();
    if (Cur().IsKeyword("DROP")) return ParseDrop();
    if (Cur().IsKeyword("ALTER")) return ParseAlter();
    if (Cur().IsKeyword("INSERT")) return ParseInsert();
    if (Cur().IsKeyword("UPDATE")) return ParseUpdate();
    if (Cur().IsKeyword("DELETE")) return ParseDelete();
    return Err("expected a statement");
  }

  Result<StatementPtr> ParseCreate() {
    SCIQL_RETURN_NOT_OK(ExpectKw("CREATE"));
    bool is_array;
    if (AcceptKw("ARRAY")) {
      is_array = true;
    } else if (AcceptKw("TABLE")) {
      is_array = false;
    } else {
      return Err("expected TABLE or ARRAY after CREATE");
    }
    auto st = std::make_unique<Statement>();
    st->kind = is_array ? Statement::Kind::kCreateArray
                        : Statement::Kind::kCreateTable;
    SCIQL_ASSIGN_OR_RETURN(st->object_name, ExpectIdent());
    if (AcceptKw("AS")) {
      if (!Cur().IsKeyword("SELECT")) {
        return Err("expected SELECT after AS");
      }
      SCIQL_ASSIGN_OR_RETURN(st->select, ParseSelect());
      return st;
    }
    SCIQL_RETURN_NOT_OK(ExpectOp("("));
    while (true) {
      SCIQL_ASSIGN_OR_RETURN(ColumnDef col, ParseColumnDef());
      st->columns.push_back(std::move(col));
      if (AcceptOp(",")) continue;
      break;
    }
    SCIQL_RETURN_NOT_OK(ExpectOp(")"));
    return st;
  }

  Result<ColumnDef> ParseColumnDef() {
    ColumnDef col;
    SCIQL_ASSIGN_OR_RETURN(col.name, ExpectIdent());
    SCIQL_ASSIGN_OR_RETURN(col.type, ParseType());
    while (true) {
      if (AcceptKw("DIMENSION")) {
        col.is_dimension = true;
        if (Cur().IsOp("[")) {
          SCIQL_ASSIGN_OR_RETURN(col.range, ParseRangeLiteral());
          col.has_range = true;
        }
        continue;
      }
      if (AcceptKw("DEFAULT")) {
        SCIQL_ASSIGN_OR_RETURN(col.default_value, ParseLiteralValue());
        col.has_default = true;
        continue;
      }
      break;
    }
    return col;
  }

  Result<StatementPtr> ParseDrop() {
    SCIQL_RETURN_NOT_OK(ExpectKw("DROP"));
    auto st = std::make_unique<Statement>();
    st->kind = Statement::Kind::kDrop;
    if (AcceptKw("ARRAY")) {
      st->drop_is_array = true;
    } else if (!AcceptKw("TABLE")) {
      return Err("expected TABLE or ARRAY after DROP");
    }
    SCIQL_ASSIGN_OR_RETURN(st->object_name, ExpectIdent());
    return st;
  }

  Result<StatementPtr> ParseAlter() {
    SCIQL_RETURN_NOT_OK(ExpectKw("ALTER"));
    SCIQL_RETURN_NOT_OK(ExpectKw("ARRAY"));
    auto st = std::make_unique<Statement>();
    st->kind = Statement::Kind::kAlterArray;
    SCIQL_ASSIGN_OR_RETURN(st->object_name, ExpectIdent());
    SCIQL_RETURN_NOT_OK(ExpectKw("ALTER"));
    SCIQL_RETURN_NOT_OK(ExpectKw("DIMENSION"));
    SCIQL_ASSIGN_OR_RETURN(st->dim_name, ExpectIdent());
    SCIQL_RETURN_NOT_OK(ExpectKw("SET"));
    SCIQL_RETURN_NOT_OK(ExpectKw("RANGE"));
    SCIQL_ASSIGN_OR_RETURN(st->new_range, ParseRangeLiteral());
    return st;
  }

  Result<StatementPtr> ParseInsert() {
    SCIQL_RETURN_NOT_OK(ExpectKw("INSERT"));
    SCIQL_RETURN_NOT_OK(ExpectKw("INTO"));
    auto st = std::make_unique<Statement>();
    st->kind = Statement::Kind::kInsert;
    SCIQL_ASSIGN_OR_RETURN(st->object_name, ExpectIdent());
    // Optional column list. Disambiguate from INSERT INTO t (SELECT ...).
    if (Cur().IsOp("(") && !Peek().IsKeyword("SELECT")) {
      Advance();
      while (true) {
        SCIQL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        st->insert_columns.push_back(std::move(col));
        if (AcceptOp(",")) continue;
        break;
      }
      SCIQL_RETURN_NOT_OK(ExpectOp(")"));
    }
    if (AcceptKw("VALUES")) {
      while (true) {
        SCIQL_RETURN_NOT_OK(ExpectOp("("));
        std::vector<ExprPtr> row;
        while (true) {
          SCIQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
          if (AcceptOp(",")) continue;
          break;
        }
        SCIQL_RETURN_NOT_OK(ExpectOp(")"));
        st->insert_values.push_back(std::move(row));
        if (AcceptOp(",")) continue;
        break;
      }
      return st;
    }
    bool paren = AcceptOp("(");
    if (!Cur().IsKeyword("SELECT")) {
      return Err("expected VALUES or SELECT in INSERT");
    }
    SCIQL_ASSIGN_OR_RETURN(st->select, ParseSelect());
    if (paren) SCIQL_RETURN_NOT_OK(ExpectOp(")"));
    return st;
  }

  Result<StatementPtr> ParseUpdate() {
    SCIQL_RETURN_NOT_OK(ExpectKw("UPDATE"));
    auto st = std::make_unique<Statement>();
    st->kind = Statement::Kind::kUpdate;
    SCIQL_ASSIGN_OR_RETURN(st->object_name, ExpectIdent());
    SCIQL_RETURN_NOT_OK(ExpectKw("SET"));
    while (true) {
      SCIQL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      SCIQL_RETURN_NOT_OK(ExpectOp("="));
      SCIQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      st->set_clauses.emplace_back(std::move(col), std::move(e));
      if (AcceptOp(",")) continue;
      break;
    }
    if (AcceptKw("WHERE")) {
      SCIQL_ASSIGN_OR_RETURN(st->where, ParseExpr());
    }
    return st;
  }

  Result<StatementPtr> ParseDelete() {
    SCIQL_RETURN_NOT_OK(ExpectKw("DELETE"));
    SCIQL_RETURN_NOT_OK(ExpectKw("FROM"));
    auto st = std::make_unique<Statement>();
    st->kind = Statement::Kind::kDelete;
    SCIQL_ASSIGN_OR_RETURN(st->object_name, ExpectIdent());
    if (AcceptKw("WHERE")) {
      SCIQL_ASSIGN_OR_RETURN(st->where, ParseExpr());
    }
    return st;
  }

  // -------------------------------------------------------------------------
  // SELECT
  // -------------------------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    SCIQL_RETURN_NOT_OK(ExpectKw("SELECT"));
    auto sel = std::make_unique<SelectStmt>();
    if (AcceptKw("DISTINCT")) sel->distinct = true;
    while (true) {
      SelectItem item;
      if (Cur().IsOp("*")) {
        Advance();
        item.is_star = true;
      } else if (Cur().IsOp("[")) {
        Advance();
        SCIQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        SCIQL_RETURN_NOT_OK(ExpectOp("]"));
        item.is_dim = true;
      } else {
        SCIQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (AcceptKw("AS")) {
        SCIQL_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Cur().type == TokenType::kIdentifier) {
        item.alias = Cur().text;
        Advance();
      }
      sel->items.push_back(std::move(item));
      if (AcceptOp(",")) continue;
      break;
    }

    if (AcceptKw("FROM")) {
      SCIQL_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
      sel->from.push_back(std::move(first));
      while (true) {
        if (AcceptOp(",")) {
          SCIQL_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
          sel->from.push_back(std::move(ref));
          continue;
        }
        if (AcceptKw("INNER") || Cur().IsKeyword("JOIN")) {
          SCIQL_RETURN_NOT_OK(ExpectKw("JOIN"));
          SCIQL_ASSIGN_OR_RETURN(TableRef ref2, ParseTableRef());
          sel->from.push_back(std::move(ref2));
          SCIQL_RETURN_NOT_OK(ExpectKw("ON"));
          SCIQL_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
          // JOIN ... ON desugars to a where conjunct.
          if (sel->where == nullptr) {
            sel->where = std::move(on);
          } else {
            sel->where = Expr::Bin(gdk::BinOp::kAnd, std::move(sel->where),
                                   std::move(on));
          }
          continue;
        }
        break;
      }
    }

    if (AcceptKw("WHERE")) {
      SCIQL_ASSIGN_OR_RETURN(ExprPtr w, ParseExpr());
      if (sel->where == nullptr) {
        sel->where = std::move(w);
      } else {
        sel->where =
            Expr::Bin(gdk::BinOp::kAnd, std::move(sel->where), std::move(w));
      }
    }

    if (AcceptKw("GROUP")) {
      SCIQL_RETURN_NOT_OK(ExpectKw("BY"));
      GroupBy gb;
      // Structural grouping: identifier immediately followed by '['.
      if (Cur().type == TokenType::kIdentifier && Peek().IsOp("[")) {
        gb.structural = true;
        while (true) {
          TilePattern pat;
          SCIQL_ASSIGN_OR_RETURN(pat.array, ExpectIdent());
          while (Cur().IsOp("[")) {
            Advance();
            TileDim td;
            SCIQL_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
            if (AcceptOp(":")) {
              td.is_range = true;
              td.lo = std::move(first);
              SCIQL_ASSIGN_OR_RETURN(td.hi, ParseExpr());
            } else {
              td.single = std::move(first);
            }
            SCIQL_RETURN_NOT_OK(ExpectOp("]"));
            pat.dims.push_back(std::move(td));
          }
          if (pat.dims.empty()) {
            return Err("tile pattern needs at least one [..] group");
          }
          gb.patterns.push_back(std::move(pat));
          if (AcceptOp(",")) continue;
          break;
        }
      } else {
        while (true) {
          SCIQL_ASSIGN_OR_RETURN(ExprPtr k, ParseExpr());
          gb.keys.push_back(std::move(k));
          if (AcceptOp(",")) continue;
          break;
        }
      }
      sel->group_by = std::move(gb);
    }

    if (AcceptKw("HAVING")) {
      SCIQL_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }

    if (AcceptKw("ORDER")) {
      SCIQL_RETURN_NOT_OK(ExpectKw("BY"));
      while (true) {
        OrderItem oi;
        SCIQL_ASSIGN_OR_RETURN(oi.expr, ParseExpr());
        if (AcceptKw("DESC")) {
          oi.desc = true;
        } else {
          AcceptKw("ASC");
        }
        sel->order_by.push_back(std::move(oi));
        if (AcceptOp(",")) continue;
        break;
      }
    }

    if (AcceptKw("LIMIT")) {
      if (Cur().type != TokenType::kIntLiteral) {
        return Err("expected an integer after LIMIT");
      }
      // The lexer clamps overflowing literals to INT64_MAX (strtoll), and
      // the planner folds the limit into slice/firstn row counts; cap it
      // well below the clamp so an out-of-range literal is a parse error
      // with a real message instead of a silently saturated bound.
      constexpr int64_t kMaxLimit = int64_t{1} << 62;
      if (Cur().int_val < 0 || Cur().int_val > kMaxLimit) {
        return Err(StrFormat("LIMIT value %s is out of range (0 .. 2^62)",
                             Cur().text.c_str()));
      }
      sel->limit = Cur().int_val;
      Advance();
    }
    return sel;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (AcceptOp("(")) {
      SCIQL_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
      SCIQL_RETURN_NOT_OK(ExpectOp(")"));
    } else {
      SCIQL_ASSIGN_OR_RETURN(ref.name, ExpectIdent());
    }
    if (AcceptKw("AS")) {
      SCIQL_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    } else if (Cur().type == TokenType::kIdentifier) {
      ref.alias = Cur().text;
      Advance();
    }
    if (ref.subquery != nullptr && ref.alias.empty()) {
      return Err("a subquery in FROM requires an alias");
    }
    return ref;
  }

  // -------------------------------------------------------------------------
  // Expressions (precedence climbing)
  // -------------------------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SCIQL_ASSIGN_OR_RETURN(ExprPtr l, ParseAnd());
    while (AcceptKw("OR")) {
      SCIQL_ASSIGN_OR_RETURN(ExprPtr r, ParseAnd());
      l = Expr::Bin(gdk::BinOp::kOr, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseAnd() {
    SCIQL_ASSIGN_OR_RETURN(ExprPtr l, ParseNot());
    while (Cur().IsKeyword("AND")) {
      Advance();
      SCIQL_ASSIGN_OR_RETURN(ExprPtr r, ParseNot());
      l = Expr::Bin(gdk::BinOp::kAnd, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKw("NOT")) {
      SCIQL_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kUnary;
      out->un_op = gdk::UnOp::kNot;
      out->children.push_back(std::move(e));
      return out;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SCIQL_ASSIGN_OR_RETURN(ExprPtr l, ParseAdditive());
    if (Cur().IsOp("=") || Cur().IsOp("!=") || Cur().IsOp("<") ||
        Cur().IsOp("<=") || Cur().IsOp(">") || Cur().IsOp(">=")) {
      gdk::BinOp op;
      if (Cur().IsOp("=")) op = gdk::BinOp::kEq;
      else if (Cur().IsOp("!=")) op = gdk::BinOp::kNe;
      else if (Cur().IsOp("<")) op = gdk::BinOp::kLt;
      else if (Cur().IsOp("<=")) op = gdk::BinOp::kLe;
      else if (Cur().IsOp(">")) op = gdk::BinOp::kGt;
      else op = gdk::BinOp::kGe;
      Advance();
      SCIQL_ASSIGN_OR_RETURN(ExprPtr r, ParseAdditive());
      return Expr::Bin(op, std::move(l), std::move(r));
    }
    if (Cur().IsKeyword("IS")) {
      Advance();
      bool negated = AcceptKw("NOT");
      SCIQL_RETURN_NOT_OK(ExpectKw("NULL"));
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kIsNull;
      out->negated = negated;
      out->children.push_back(std::move(l));
      return out;
    }
    bool negated = false;
    if (Cur().IsKeyword("NOT") &&
        (Peek().IsKeyword("BETWEEN") || Peek().IsKeyword("IN"))) {
      negated = true;
      Advance();
    }
    if (AcceptKw("BETWEEN")) {
      SCIQL_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      SCIQL_RETURN_NOT_OK(ExpectKw("AND"));
      SCIQL_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kBetween;
      out->negated = negated;
      out->children.push_back(std::move(l));
      out->children.push_back(std::move(lo));
      out->children.push_back(std::move(hi));
      return out;
    }
    if (AcceptKw("IN")) {
      SCIQL_RETURN_NOT_OK(ExpectOp("("));
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kIn;
      out->negated = negated;
      out->children.push_back(std::move(l));
      while (true) {
        SCIQL_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        out->children.push_back(std::move(item));
        if (AcceptOp(",")) continue;
        break;
      }
      SCIQL_RETURN_NOT_OK(ExpectOp(")"));
      return out;
    }
    return l;
  }

  Result<ExprPtr> ParseAdditive() {
    SCIQL_ASSIGN_OR_RETURN(ExprPtr l, ParseMultiplicative());
    while (Cur().IsOp("+") || Cur().IsOp("-")) {
      gdk::BinOp op = Cur().IsOp("+") ? gdk::BinOp::kAdd : gdk::BinOp::kSub;
      Advance();
      SCIQL_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
      l = Expr::Bin(op, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SCIQL_ASSIGN_OR_RETURN(ExprPtr l, ParseUnaryExpr());
    while (Cur().IsOp("*") || Cur().IsOp("/") || Cur().IsOp("%") ||
           Cur().IsKeyword("MOD")) {
      gdk::BinOp op;
      if (Cur().IsOp("*")) op = gdk::BinOp::kMul;
      else if (Cur().IsOp("/")) op = gdk::BinOp::kDiv;
      else op = gdk::BinOp::kMod;
      Advance();
      SCIQL_ASSIGN_OR_RETURN(ExprPtr r, ParseUnaryExpr());
      l = Expr::Bin(op, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseUnaryExpr() {
    if (AcceptOp("-")) {
      // -9223372036854775808: the magnitude-2^63 literal is only legal here,
      // where the pair folds to INT64_MIN (the lexer already stored it).
      if (Cur().type == TokenType::kIntLiteral && Cur().int_min_magnitude) {
        int64_t v = Cur().int_val;
        Advance();
        return Expr::Lit(gdk::ScalarValue::Lng(v));
      }
      SCIQL_ASSIGN_OR_RETURN(ExprPtr e, ParseUnaryExpr());
      // Fold negation of numeric literals immediately.
      if (e->kind == Expr::Kind::kLiteral && !e->literal.is_null) {
        if (e->literal.type == gdk::PhysType::kDbl) {
          e->literal.d = -e->literal.d;
          return e;
        }
        if (e->literal.type == gdk::PhysType::kInt ||
            e->literal.type == gdk::PhysType::kLng) {
          // -(-9223372036854775808) would be 2^63, one past INT64_MAX.
          if (e->literal.i == std::numeric_limits<int64_t>::min()) {
            return Err("negated integer literal is out of range");
          }
          e->literal.i = -e->literal.i;
          return e;
        }
      }
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kUnary;
      out->un_op = gdk::UnOp::kNeg;
      out->children.push_back(std::move(e));
      return out;
    }
    if (AcceptOp("+")) return ParseUnaryExpr();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.type) {
      case TokenType::kIntLiteral: {
        if (t.int_min_magnitude) {
          // 2^63 without a directly preceding unary minus does not fit.
          return Err(StrFormat("integer literal '%s' is out of range",
                               t.text.c_str()));
        }
        int64_t v = t.int_val;
        Advance();
        if (v >= std::numeric_limits<int32_t>::min() &&
            v <= std::numeric_limits<int32_t>::max()) {
          return Expr::Lit(gdk::ScalarValue::Int(static_cast<int32_t>(v)));
        }
        return Expr::Lit(gdk::ScalarValue::Lng(v));
      }
      case TokenType::kFloatLiteral: {
        double v = t.float_val;
        Advance();
        return Expr::Lit(gdk::ScalarValue::Dbl(v));
      }
      case TokenType::kStrLiteral: {
        std::string v = t.text;
        Advance();
        return Expr::Lit(gdk::ScalarValue::Str(std::move(v)));
      }
      default:
        break;
    }

    if (AcceptKw("NULL")) {
      return Expr::Lit(gdk::ScalarValue::Null(gdk::PhysType::kInt));
    }
    if (AcceptKw("TRUE")) return Expr::Lit(gdk::ScalarValue::Bit(true));
    if (AcceptKw("FALSE")) return Expr::Lit(gdk::ScalarValue::Bit(false));

    if (Cur().IsKeyword("CASE")) return ParseCase();

    // Aggregates and ABS are keywords.
    if (Cur().IsKeyword("COUNT") || Cur().IsKeyword("SUM") ||
        Cur().IsKeyword("AVG") || Cur().IsKeyword("MIN") ||
        Cur().IsKeyword("MAX")) {
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kAggregate;
      if (Cur().IsKeyword("COUNT")) out->agg_op = gdk::AggOp::kCount;
      else if (Cur().IsKeyword("SUM")) out->agg_op = gdk::AggOp::kSum;
      else if (Cur().IsKeyword("AVG")) out->agg_op = gdk::AggOp::kAvg;
      else if (Cur().IsKeyword("MIN")) out->agg_op = gdk::AggOp::kMin;
      else out->agg_op = gdk::AggOp::kMax;
      Advance();
      SCIQL_RETURN_NOT_OK(ExpectOp("("));
      if (Cur().IsOp("*")) {
        if (out->agg_op != gdk::AggOp::kCount) {
          return Err("only COUNT can take *");
        }
        out->agg_op = gdk::AggOp::kCountStar;
        out->star = true;
        Advance();
      } else {
        SCIQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        out->children.push_back(std::move(arg));
      }
      SCIQL_RETURN_NOT_OK(ExpectOp(")"));
      return out;
    }
    if (Cur().IsKeyword("ABS")) {
      Advance();
      SCIQL_RETURN_NOT_OK(ExpectOp("("));
      SCIQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      SCIQL_RETURN_NOT_OK(ExpectOp(")"));
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kUnary;
      out->un_op = gdk::UnOp::kAbs;
      out->children.push_back(std::move(arg));
      return out;
    }

    if (AcceptOp("(")) {
      SCIQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      SCIQL_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }

    if (Cur().type == TokenType::kIdentifier) {
      std::string name = Cur().text;
      Advance();
      // Cell reference: name[expr][expr]...(.attr)?
      if (Cur().IsOp("[")) {
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kCellRef;
        out->array_name = name;
        while (AcceptOp("[")) {
          SCIQL_ASSIGN_OR_RETURN(ExprPtr idx, ParseExpr());
          out->children.push_back(std::move(idx));
          SCIQL_RETURN_NOT_OK(ExpectOp("]"));
        }
        if (AcceptOp(".")) {
          SCIQL_ASSIGN_OR_RETURN(out->attr_name, ExpectIdent());
        }
        return out;
      }
      // Scalar function call: name(args).
      if (Cur().IsOp("(")) {
        Advance();
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kFunc;
        out->func_name = ToLower(name);
        if (!Cur().IsOp(")")) {
          while (true) {
            SCIQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            out->children.push_back(std::move(arg));
            if (AcceptOp(",")) continue;
            break;
          }
        }
        SCIQL_RETURN_NOT_OK(ExpectOp(")"));
        return out;
      }
      // Qualified column: table.column.
      if (AcceptOp(".")) {
        SCIQL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return Expr::Col(name, col);
      }
      return Expr::Col("", name);
    }

    return Err("expected an expression");
  }

  Result<ExprPtr> ParseCase() {
    SCIQL_RETURN_NOT_OK(ExpectKw("CASE"));
    auto out = std::make_unique<Expr>();
    out->kind = Expr::Kind::kCase;
    if (!Cur().IsKeyword("WHEN")) {
      return Err("only searched CASE (CASE WHEN ...) is supported");
    }
    while (AcceptKw("WHEN")) {
      SCIQL_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      SCIQL_RETURN_NOT_OK(ExpectKw("THEN"));
      SCIQL_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
      out->children.push_back(std::move(cond));
      out->children.push_back(std::move(val));
    }
    if (AcceptKw("ELSE")) {
      SCIQL_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
      out->children.push_back(std::move(val));
      out->has_else = true;
    }
    SCIQL_RETURN_NOT_OK(ExpectKw("END"));
    return out;
  }

  // -------------------------------------------------------------------------
  // Shared helpers
  // -------------------------------------------------------------------------

  Result<gdk::PhysType> ParseType() {
    auto match = [&](std::initializer_list<const char*> kws,
                     gdk::PhysType t) -> std::optional<gdk::PhysType> {
      for (const char* kw : kws) {
        if (AcceptKw(kw)) return t;
      }
      return std::nullopt;
    };
    if (auto t = match({"INT", "INTEGER", "SMALLINT"}, gdk::PhysType::kInt)) {
      return *t;
    }
    if (auto t = match({"BIGINT", "LONG"}, gdk::PhysType::kLng)) return *t;
    if (auto t = match({"DOUBLE", "FLOAT", "REAL"}, gdk::PhysType::kDbl)) {
      return *t;
    }
    if (auto t = match({"BOOLEAN", "BOOL"}, gdk::PhysType::kBit)) return *t;
    if (auto t = match({"VARCHAR", "STRING", "TEXT", "CHAR"},
                       gdk::PhysType::kStr)) {
      // Optional length, ignored: VARCHAR(32).
      if (AcceptOp("(")) {
        if (Cur().type == TokenType::kIntLiteral) Advance();
        SCIQL_RETURN_NOT_OK(ExpectOp(")"));
      }
      return *t;
    }
    return Err("expected a type name");
  }

  Result<int64_t> ParseSignedInt() {
    bool neg = AcceptOp("-");
    if (Cur().type != TokenType::kIntLiteral) {
      return Err("expected an integer");
    }
    if (Cur().int_min_magnitude) {
      // int_val already holds INT64_MIN; legal only under the minus.
      if (!neg) {
        return Err(StrFormat("integer literal '%s' is out of range",
                             Cur().text.c_str()));
      }
      int64_t v = Cur().int_val;
      Advance();
      return v;
    }
    int64_t v = Cur().int_val;
    Advance();
    return neg ? -v : v;
  }

  Result<array::DimRange> ParseRangeLiteral() {
    SCIQL_RETURN_NOT_OK(ExpectOp("["));
    array::DimRange r;
    SCIQL_ASSIGN_OR_RETURN(r.start, ParseSignedInt());
    SCIQL_RETURN_NOT_OK(ExpectOp(":"));
    SCIQL_ASSIGN_OR_RETURN(r.step, ParseSignedInt());
    SCIQL_RETURN_NOT_OK(ExpectOp(":"));
    SCIQL_ASSIGN_OR_RETURN(r.stop, ParseSignedInt());
    SCIQL_RETURN_NOT_OK(ExpectOp("]"));
    SCIQL_RETURN_NOT_OK(r.Validate());
    return r;
  }

  Result<gdk::ScalarValue> ParseLiteralValue() {
    bool neg = AcceptOp("-");
    const Token& t = Cur();
    if (t.type == TokenType::kIntLiteral) {
      if (t.int_min_magnitude && !neg) {
        return Err(StrFormat("integer literal '%s' is out of range",
                             t.text.c_str()));
      }
      int64_t v = t.int_min_magnitude ? t.int_val : (neg ? -t.int_val : t.int_val);
      Advance();
      if (v >= std::numeric_limits<int32_t>::min() &&
          v <= std::numeric_limits<int32_t>::max()) {
        return gdk::ScalarValue::Int(static_cast<int32_t>(v));
      }
      return gdk::ScalarValue::Lng(v);
    }
    if (t.type == TokenType::kFloatLiteral) {
      double v = neg ? -t.float_val : t.float_val;
      Advance();
      return gdk::ScalarValue::Dbl(v);
    }
    if (neg) return Err("expected a number after '-'");
    if (t.type == TokenType::kStrLiteral) {
      std::string v = t.text;
      Advance();
      return gdk::ScalarValue::Str(std::move(v));
    }
    if (AcceptKw("NULL")) return gdk::ScalarValue::Null(gdk::PhysType::kInt);
    if (AcceptKw("TRUE")) return gdk::ScalarValue::Bit(true);
    if (AcceptKw("FALSE")) return gdk::ScalarValue::Bit(false);
    return Err("expected a literal value");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<StatementPtr>> Parse(const std::string& text) {
  SCIQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatements(text);
}

Result<StatementPtr> ParseOne(const std::string& text) {
  SCIQL_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, Parse(text));
  if (stmts.size() != 1) {
    return Status::ParseError(
        StrFormat("expected exactly one statement, got %zu", stmts.size()));
  }
  return std::move(stmts[0]);
}

}  // namespace sql
}  // namespace sciql
