#include "src/sql/ast.h"

#include "src/common/string_util.h"

namespace sciql {
namespace sql {

namespace {

// SQL-source spelling of a binary operator (the kernel spells equality
// "==", SQL spells it "=").
const char* SqlBinOpName(gdk::BinOp op) {
  switch (op) {
    case gdk::BinOp::kEq:
      return "=";
    case gdk::BinOp::kNe:
      return "<>";
    case gdk::BinOp::kAnd:
      return "AND";
    case gdk::BinOp::kOr:
      return "OR";
    default:
      return gdk::BinOpName(op);
  }
}

// SQL-source spelling of a column type.
const char* SqlTypeName(gdk::PhysType t) {
  switch (t) {
    case gdk::PhysType::kBit:
      return "BOOLEAN";
    case gdk::PhysType::kInt:
      return "INT";
    case gdk::PhysType::kLng:
      return "BIGINT";
    case gdk::PhysType::kDbl:
      return "DOUBLE";
    case gdk::PhysType::kStr:
      return "VARCHAR";
    case gdk::PhysType::kOid:
      return "BIGINT";
  }
  return "INT";
}

}  // namespace

ExprPtr Expr::Lit(gdk::ScalarValue v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Col(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::Bin(gdk::BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bin_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->column = column;
  e->bin_op = bin_op;
  e->un_op = un_op;
  e->func_name = func_name;
  e->agg_op = agg_op;
  e->star = star;
  e->negated = negated;
  e->has_else = has_else;
  e->array_name = array_name;
  e->attr_name = attr_name;
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumn:
      return table.empty() ? column : table + "." + column;
    case Kind::kStar:
      return "*";
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + SqlBinOpName(bin_op) +
             " " + children[1]->ToString() + ")";
    case Kind::kUnary:
      return std::string(gdk::UnOpName(un_op)) + "(" +
             children[0]->ToString() + ")";
    case Kind::kFunc: {
      std::vector<std::string> args;
      for (const auto& c : children) args.push_back(c->ToString());
      return func_name + "(" + Join(args, ", ") + ")";
    }
    case Kind::kAggregate:
      if (star) return "COUNT(*)";
      return ToUpper(gdk::AggOpName(agg_op)) + "(" +
             children[0]->ToString() + ")";
    case Kind::kCase: {
      std::string out = "CASE";
      size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString() + " THEN " +
               children[2 * i + 1]->ToString();
      }
      if (has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case Kind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kBetween:
      return children[0]->ToString() + (negated ? " NOT" : "") + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case Kind::kIn: {
      std::vector<std::string> args;
      for (size_t i = 1; i < children.size(); ++i) {
        args.push_back(children[i]->ToString());
      }
      return children[0]->ToString() + (negated ? " NOT" : "") + " IN (" +
             Join(args, ", ") + ")";
    }
    case Kind::kCellRef: {
      std::string out = array_name;
      for (const auto& c : children) out += "[" + c->ToString() + "]";
      if (!attr_name.empty()) out += "." + attr_name;
      return out;
    }
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> cols;
  for (const auto& item : items) {
    std::string s;
    if (item.is_star) {
      s = "*";
    } else if (item.is_dim) {
      s = "[" + item.expr->ToString() + "]";
    } else {
      s = item.expr->ToString();
    }
    if (!item.alias.empty()) s += " AS " + item.alias;
    cols.push_back(std::move(s));
  }
  out += Join(cols, ", ");
  if (!from.empty()) {
    out += " FROM ";
    std::vector<std::string> refs;
    for (const auto& t : from) {
      std::string s =
          t.subquery != nullptr ? "(" + t.subquery->ToString() + ")" : t.name;
      if (!t.alias.empty()) s += " AS " + t.alias;
      refs.push_back(std::move(s));
    }
    out += Join(refs, ", ");
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (group_by.has_value()) {
    out += " GROUP BY ";
    if (group_by->structural) {
      std::vector<std::string> pats;
      for (const auto& p : group_by->patterns) {
        std::string s = p.array;
        for (const auto& d : p.dims) {
          if (d.is_range) {
            s += "[" + d.lo->ToString() + ":" + d.hi->ToString() + "]";
          } else {
            s += "[" + d.single->ToString() + "]";
          }
        }
        pats.push_back(std::move(s));
      }
      out += Join(pats, ", ");
    } else {
      std::vector<std::string> keys;
      for (const auto& k : group_by->keys) keys.push_back(k->ToString());
      out += Join(keys, ", ");
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    std::vector<std::string> keys;
    for (const auto& o : order_by) {
      keys.push_back(o.expr->ToString() + (o.desc ? " DESC" : ""));
    }
    out += Join(keys, ", ");
  }
  if (limit >= 0) out += StrFormat(" LIMIT %lld", static_cast<long long>(limit));
  return out;
}

std::string Statement::ToString() const {
  switch (kind) {
    case Kind::kSelect:
      return select->ToString();
    case Kind::kCreateTable:
    case Kind::kCreateArray: {
      std::string out = "CREATE ";
      out += kind == Kind::kCreateArray ? "ARRAY " : "TABLE ";
      out += object_name;
      if (select != nullptr) return out + " AS " + select->ToString();
      std::vector<std::string> cols;
      for (const auto& c : columns) {
        std::string s = c.name;
        s += " ";
        s += SqlTypeName(c.type);
        if (c.is_dimension) {
          s += " DIMENSION";
          if (c.has_range) s += c.range.ToString();
        }
        if (c.has_default) s += " DEFAULT " + c.default_value.ToString();
        cols.push_back(std::move(s));
      }
      return out + " (" + Join(cols, ", ") + ")";
    }
    case Kind::kDrop:
      return std::string("DROP ") + (drop_is_array ? "ARRAY " : "TABLE ") +
             object_name;
    case Kind::kAlterArray:
      return "ALTER ARRAY " + object_name + " ALTER DIMENSION " + dim_name +
             " SET RANGE " + new_range.ToString();
    case Kind::kInsert: {
      std::string out = "INSERT INTO " + object_name;
      if (!insert_columns.empty()) {
        out += " (" + Join(insert_columns, ", ") + ")";
      }
      if (select != nullptr) return out + " " + select->ToString();
      out += " VALUES ";
      std::vector<std::string> rows;
      for (const auto& row : insert_values) {
        std::vector<std::string> vals;
        for (const auto& v : row) vals.push_back(v->ToString());
        rows.push_back("(" + Join(vals, ", ") + ")");
      }
      return out + Join(rows, ", ");
    }
    case Kind::kUpdate: {
      std::string out = "UPDATE " + object_name + " SET ";
      std::vector<std::string> sets;
      for (const auto& [col, e] : set_clauses) {
        sets.push_back(col + " = " + e->ToString());
      }
      out += Join(sets, ", ");
      if (where != nullptr) out += " WHERE " + where->ToString();
      return out;
    }
    case Kind::kDelete: {
      std::string out = "DELETE FROM " + object_name;
      if (where != nullptr) out += " WHERE " + where->ToString();
      return out;
    }
    case Kind::kExplain:
      return "EXPLAIN " + inner->ToString();
  }
  return "?";
}

}  // namespace sql
}  // namespace sciql
