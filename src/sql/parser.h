// Recursive-descent parser for the SQL/SciQL dialect.

#ifndef SCIQL_SQL_PARSER_H_
#define SCIQL_SQL_PARSER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"

namespace sciql {
namespace sql {

/// \brief Parse a (possibly multi-statement, ';'-separated) SQL/SciQL text.
Result<std::vector<StatementPtr>> Parse(const std::string& text);

/// \brief Parse exactly one statement.
Result<StatementPtr> ParseOne(const std::string& text);

}  // namespace sql
}  // namespace sciql

#endif  // SCIQL_SQL_PARSER_H_
