// Abstract syntax tree for the SQL/SciQL dialect.
//
// SciQL-specific nodes: dimension projections ([x] in a select list),
// relative cell references (img[x-1][y]), tile patterns in GROUP BY
// (matrix[x:x+2][y:y+2]), CREATE ARRAY with DIMENSION range constraints and
// ALTER ARRAY ... SET RANGE.

#ifndef SCIQL_SQL_AST_H_
#define SCIQL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/array/dimension.h"
#include "src/gdk/kernels.h"
#include "src/gdk/types.h"

namespace sciql {
namespace sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief One expression node; `kind` selects which members are meaningful.
struct Expr {
  enum class Kind {
    kLiteral,    ///< literal (ScalarValue)
    kColumn,     ///< [table.]column
    kStar,       ///< * (inside COUNT(*))
    kBinary,     ///< children[0] op children[1]
    kUnary,      ///< op children[0]
    kFunc,       ///< func_name(children...)  (scalar functions, e.g. ABS)
    kAggregate,  ///< agg_op(children[0]) or COUNT(*)
    kCase,       ///< WHEN/THEN pairs in children, optional ELSE last
    kIsNull,     ///< children[0] IS [NOT] NULL
    kBetween,    ///< children[0] [NOT] BETWEEN children[1] AND children[2]
    kIn,         ///< children[0] [NOT] IN (children[1..])
    kCellRef,    ///< array[e1][e2]...[ek](.attr)? relative cell access
  };

  Kind kind = Kind::kLiteral;

  gdk::ScalarValue literal;                 // kLiteral
  std::string table;                        // kColumn qualifier (may be "")
  std::string column;                       // kColumn
  gdk::BinOp bin_op = gdk::BinOp::kAdd;     // kBinary
  gdk::UnOp un_op = gdk::UnOp::kNeg;        // kUnary
  std::string func_name;                    // kFunc
  gdk::AggOp agg_op = gdk::AggOp::kCount;   // kAggregate
  bool star = false;                        // kAggregate: COUNT(*)
  bool negated = false;                     // IS NOT NULL / NOT BETWEEN / NOT IN
  bool has_else = false;                    // kCase
  std::string array_name;                   // kCellRef
  std::string attr_name;                    // kCellRef (may be "")
  std::vector<ExprPtr> children;

  std::string ToString() const;
  ExprPtr Clone() const;

  static ExprPtr Lit(gdk::ScalarValue v);
  static ExprPtr Col(std::string table, std::string column);
  static ExprPtr Bin(gdk::BinOp op, ExprPtr l, ExprPtr r);
};

/// \brief One item of a SELECT list. `is_dim` marks a dimension projection
/// `[expr]` (the SciQL table->array coercion qualifier).
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool is_dim = false;
  bool is_star = false;  ///< bare `*`
};

struct SelectStmt;

/// \brief FROM item: a named object or a parenthesised subquery.
struct TableRef {
  std::string name;
  std::string alias;
  std::unique_ptr<SelectStmt> subquery;
};

/// \brief One `[...]` group inside a tile pattern: a single cell expression
/// or a right-open range `lo:hi`.
struct TileDim {
  bool is_range = false;
  ExprPtr single;
  ExprPtr lo;
  ExprPtr hi;
};

/// \brief A tile pattern `array[d1][d2]...` in a structural GROUP BY.
struct TilePattern {
  std::string array;
  std::vector<TileDim> dims;
};

/// \brief GROUP BY clause: value-based keys or structural tile patterns.
struct GroupBy {
  bool structural = false;
  std::vector<ExprPtr> keys;           // value-based
  std::vector<TilePattern> patterns;   // structural
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;
  std::optional<GroupBy> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;

  std::string ToString() const;
};

/// \brief Column or dimension definition in CREATE TABLE / CREATE ARRAY.
struct ColumnDef {
  std::string name;
  gdk::PhysType type = gdk::PhysType::kInt;
  bool is_dimension = false;
  bool has_range = false;
  array::DimRange range;
  bool has_default = false;
  gdk::ScalarValue default_value;
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateArray,
    kDrop,
    kAlterArray,
    kInsert,
    kUpdate,
    kDelete,
    kExplain,
  };

  Kind kind = Kind::kSelect;

  // kSelect / AS SELECT bodies / INSERT ... SELECT
  std::unique_ptr<SelectStmt> select;

  // kCreateTable / kCreateArray
  std::string object_name;
  std::vector<ColumnDef> columns;

  // kDrop
  bool drop_is_array = false;

  // kAlterArray
  std::string dim_name;
  array::DimRange new_range;

  // kInsert
  std::vector<std::string> insert_columns;            // optional
  std::vector<std::vector<ExprPtr>> insert_values;    // VALUES rows

  // kUpdate
  std::vector<std::pair<std::string, ExprPtr>> set_clauses;

  // kUpdate / kDelete
  ExprPtr where;

  // kExplain
  StatementPtr inner;
  /// EXPLAIN ANALYZE: execute `inner` and annotate the plan with actual
  /// rows, per-instruction timings and chosen-path telemetry.
  bool analyze = false;

  /// The statement's own SQL text (trimmed, no trailing ';'), recovered from
  /// the parsed input's token spans. The engine's write-ahead log records
  /// exactly this text for replay on reopen (see docs/storage.md).
  std::string source;

  std::string ToString() const;
};

}  // namespace sql
}  // namespace sciql

#endif  // SCIQL_SQL_AST_H_
