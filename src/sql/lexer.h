// SQL/SciQL lexer. Keywords are case-insensitive; SciQL adds the bracket
// tokens used for dimension projections, cell references and tile patterns.

#ifndef SCIQL_SQL_LEXER_H_
#define SCIQL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace sciql {
namespace sql {

enum class TokenType {
  kEof,
  kIdentifier,   // foo, "quoted"
  kKeyword,      // normalized upper-case text in Token::text
  kIntLiteral,   // 123
  kFloatLiteral, // 1.5, 2e3
  kStrLiteral,   // 'abc' (text holds the unescaped value)
  kOperator,     // + - * / % = <> != < <= > >= ( ) [ ] , ; . :
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // keyword/operator spelled text; identifier as written
  int64_t int_val = 0;
  // True for the literal 9223372036854775808 (magnitude 2^63): one past
  // INT64_MAX, but exactly -INT64_MIN. int_val then holds INT64_MIN and the
  // parser only accepts the token directly under unary minus.
  bool int_min_magnitude = false;
  double float_val = 0.0;
  size_t line = 1;
  size_t col = 1;
  size_t offset = 0;  ///< byte offset of the token's first character

  bool IsKeyword(const char* kw) const;
  bool IsOp(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
  std::string Describe() const;
};

/// \brief Tokenize `sql`; fails with ParseError on malformed input
/// (unterminated strings, stray characters).
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// \brief True if `word` (upper-cased) is a reserved SQL/SciQL keyword.
bool IsReservedKeyword(const std::string& upper);

}  // namespace sql
}  // namespace sciql

#endif  // SCIQL_SQL_LEXER_H_
