#include "src/engine/mal_gen.h"

#include "src/common/string_util.h"
#include "src/engine/planner.h"

namespace sciql {
namespace engine {

using gdk::ScalarValue;

Result<CompiledStatement> StatementCompiler::Compile(
    const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      return CompileSelect(stmt);
    case sql::Statement::Kind::kInsert:
      return CompileInsert(stmt);
    case sql::Statement::Kind::kUpdate:
      return CompileUpdate(stmt);
    case sql::Statement::Kind::kDelete:
      return CompileDelete(stmt);
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateArray: {
      if (stmt.select == nullptr) {
        return Status::Internal(
            "plain DDL is executed by Database, not compiled");
      }
      CompiledStatement cs;
      cs.action = stmt.kind == sql::Statement::Kind::kCreateArray
                      ? CompiledStatement::Action::kCreateArrayAs
                      : CompiledStatement::Action::kCreateTableAs;
      cs.target = ToLower(stmt.object_name);
      if (cat_->Exists(cs.target)) {
        return Status::AlreadyExists(
            StrFormat("object %s exists", cs.target.c_str()));
      }
      SelectCompiler sc(&cs.prog, cat_);
      SCIQL_ASSIGN_OR_RETURN(Env out, sc.Compile(*stmt.select));
      for (const EnvCol& c : out.cols) {
        cs.prog.AddResult(c.name, c.reg, c.is_dim);
      }
      return cs;
    }
    default:
      return Status::Internal("unsupported statement for compilation");
  }
}

Result<CompiledStatement> StatementCompiler::CompileSelect(
    const sql::Statement& stmt) {
  CompiledStatement cs;
  cs.action = CompiledStatement::Action::kQuery;
  SelectCompiler sc(&cs.prog, cat_);
  SCIQL_ASSIGN_OR_RETURN(Env out, sc.Compile(*stmt.select));
  for (const EnvCol& c : out.cols) {
    cs.prog.AddResult(c.name, c.reg, c.is_dim);
  }
  return cs;
}

Result<CompiledStatement> StatementCompiler::CompileInsert(
    const sql::Statement& stmt) {
  CompiledStatement cs;
  cs.action = CompiledStatement::Action::kInsert;
  cs.target = ToLower(stmt.object_name);
  cs.insert_columns = stmt.insert_columns;
  if (!cat_->Exists(cs.target)) {
    return Status::NotFound(
        StrFormat("no such table or array: %s", cs.target.c_str()));
  }

  if (stmt.select != nullptr) {
    SelectCompiler sc(&cs.prog, cat_);
    SCIQL_ASSIGN_OR_RETURN(Env out, sc.Compile(*stmt.select));
    for (const EnvCol& c : out.cols) {
      cs.prog.AddResult(c.name, c.reg, c.is_dim);
    }
    return cs;
  }

  // VALUES rows: one bat.pack per column.
  if (stmt.insert_values.empty()) {
    return Status::InvalidArgument("INSERT without VALUES or SELECT");
  }
  size_t ncols = stmt.insert_values[0].size();
  for (const auto& row : stmt.insert_values) {
    if (row.size() != ncols) {
      return Status::InvalidArgument("VALUES rows of differing arity");
    }
  }
  Env empty;
  ExprCompiler comp(&cs.prog, cat_, &empty);
  // regs[r][c]
  std::vector<std::vector<int>> regs;
  for (const auto& row : stmt.insert_values) {
    std::vector<int> rowregs;
    for (const auto& e : row) {
      if (!ExprCompiler::IsScalarExpr(*e)) {
        return Status::BindError(
            "VALUES expressions must be constant scalars");
      }
      SCIQL_ASSIGN_OR_RETURN(int r, comp.Compile(*e));
      rowregs.push_back(r);
    }
    regs.push_back(std::move(rowregs));
  }
  for (size_t c = 0; c < ncols; ++c) {
    std::vector<int> args;
    for (size_t r = 0; r < regs.size(); ++r) args.push_back(regs[r][c]);
    int col = cs.prog.EmitR("bat", "pack", args, StrFormat("v%zu", c));
    cs.prog.AddResult(StrFormat("col%zu", c + 1), col, false);
  }
  return cs;
}

Result<CompiledStatement> StatementCompiler::CompileUpdate(
    const sql::Statement& stmt) {
  CompiledStatement cs;
  cs.action = CompiledStatement::Action::kUpdate;
  cs.target = ToLower(stmt.object_name);

  // Reject SET on dimensions: "array dimension manipulations must be done
  // using ALTER ARRAY statements" (paper Sec. 2).
  if (cat_->IsArray(cs.target)) {
    SCIQL_ASSIGN_OR_RETURN(auto arr, cat_->GetArray(cs.target));
    for (const auto& [col, e] : stmt.set_clauses) {
      if (arr->desc.DimIndex(col) >= 0) {
        return Status::InvalidArgument(
            StrFormat("cannot UPDATE dimension %s; use ALTER ARRAY",
                      col.c_str()));
      }
      if (arr->desc.AttrIndex(col) < 0) {
        return Status::BindError(
            StrFormat("array %s has no attribute %s", cs.target.c_str(),
                      col.c_str()));
      }
    }
  } else {
    SCIQL_ASSIGN_OR_RETURN(auto tab, cat_->GetTable(cs.target));
    for (const auto& [col, e] : stmt.set_clauses) {
      if (tab->ColumnIndex(col) < 0) {
        return Status::BindError(StrFormat("table %s has no column %s",
                                           cs.target.c_str(), col.c_str()));
      }
    }
  }

  SelectCompiler sc(&cs.prog, cat_);
  SCIQL_ASSIGN_OR_RETURN(Env env, sc.ScanObject(cs.target, ""));

  int pos;
  if (stmt.where != nullptr) {
    ExprCompiler comp(&cs.prog, cat_, &env);
    SCIQL_ASSIGN_OR_RETURN(int bits, comp.Compile(*stmt.where));
    if (ExprCompiler::IsScalarExpr(*stmt.where)) {
      SCIQL_ASSIGN_OR_RETURN(int any, env.AnyReg());
      int cnt = cs.prog.EmitR("bat", "count", {any}, "n");
      bits = cs.prog.EmitR("batcalc", "const", {bits, cnt}, "p");
    }
    pos = cs.prog.EmitR("algebra", "select", {bits}, "pos");
    for (EnvCol& c : env.cols) {
      c.reg = cs.prog.EmitR("algebra", "project", {c.reg, pos}, c.name);
    }
  } else {
    int cnt = cs.prog.EmitR(
        "sql", "count", {cs.prog.Const(ScalarValue::Str(cs.target))}, "n");
    pos = cs.prog.EmitR("bat", "dense", {cnt}, "pos");
  }
  cs.prog.AddResult("__pos", pos, false);

  ExprCompiler comp(&cs.prog, cat_, &env);
  for (const auto& [col, e] : stmt.set_clauses) {
    SCIQL_ASSIGN_OR_RETURN(int v, comp.Compile(*e));
    cs.prog.AddResult("__set_" + ToLower(col), v, false);
    cs.set_columns.push_back(ToLower(col));
  }
  return cs;
}

Result<CompiledStatement> StatementCompiler::CompileDelete(
    const sql::Statement& stmt) {
  CompiledStatement cs;
  cs.action = CompiledStatement::Action::kDelete;
  cs.target = ToLower(stmt.object_name);
  if (!cat_->Exists(cs.target)) {
    return Status::NotFound(
        StrFormat("no such table or array: %s", cs.target.c_str()));
  }

  SelectCompiler sc(&cs.prog, cat_);
  SCIQL_ASSIGN_OR_RETURN(Env env, sc.ScanObject(cs.target, ""));
  int pos;
  if (stmt.where != nullptr) {
    ExprCompiler comp(&cs.prog, cat_, &env);
    SCIQL_ASSIGN_OR_RETURN(int bits, comp.Compile(*stmt.where));
    if (ExprCompiler::IsScalarExpr(*stmt.where)) {
      SCIQL_ASSIGN_OR_RETURN(int any, env.AnyReg());
      int cnt = cs.prog.EmitR("bat", "count", {any}, "n");
      bits = cs.prog.EmitR("batcalc", "const", {bits, cnt}, "p");
    }
    pos = cs.prog.EmitR("algebra", "select", {bits}, "pos");
  } else {
    int cnt = cs.prog.EmitR(
        "sql", "count", {cs.prog.Const(ScalarValue::Str(cs.target))}, "n");
    pos = cs.prog.EmitR("bat", "dense", {cnt}, "pos");
  }
  cs.prog.AddResult("__pos", pos, false);
  return cs;
}

Result<CompiledStatement> StatementCompiler::CompileDdlDisplay(
    const sql::Statement& stmt) {
  CompiledStatement cs;
  cs.action = CompiledStatement::Action::kDdlDisplay;
  if (stmt.kind != sql::Statement::Kind::kCreateArray ||
      stmt.select != nullptr) {
    // Other DDL has no interesting MAL body; show a catalog call.
    cs.prog.Emit("sql", "ddl", {},
                 {cs.prog.Const(ScalarValue::Str(stmt.ToString()))});
    return cs;
  }
  // The Figure 3 materialisation program: one array.series per dimension,
  // one array.filler per attribute.
  std::vector<const sql::ColumnDef*> dims, attrs;
  for (const auto& c : stmt.columns) {
    (c.is_dimension ? dims : attrs).push_back(&c);
  }
  size_t ncells = 1;
  std::vector<size_t> sizes;
  for (const auto* d : dims) {
    sizes.push_back(d->range.Size());
    ncells *= d->range.Size();
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    size_t rep_each = 1, rep_group = 1;
    for (size_t j = i + 1; j < dims.size(); ++j) rep_each *= sizes[j];
    for (size_t j = 0; j < i; ++j) rep_group *= sizes[j];
    int reg = cs.prog.NewReg(ToLower(dims[i]->name));
    cs.prog.Emit("array", "series", {reg},
                 {cs.prog.Const(ScalarValue::Lng(dims[i]->range.start)),
                  cs.prog.Const(ScalarValue::Lng(dims[i]->range.step)),
                  cs.prog.Const(ScalarValue::Lng(dims[i]->range.stop)),
                  cs.prog.Const(ScalarValue::Lng(static_cast<int64_t>(rep_each))),
                  cs.prog.Const(ScalarValue::Lng(static_cast<int64_t>(rep_group)))});
  }
  for (const auto* a : attrs) {
    int reg = cs.prog.NewReg(ToLower(a->name));
    ScalarValue def =
        a->has_default ? a->default_value : ScalarValue::Null(a->type);
    cs.prog.Emit("array", "filler", {reg},
                 {cs.prog.Const(ScalarValue::Lng(static_cast<int64_t>(ncells))),
                  cs.prog.Const(def)});
  }
  return cs;
}

}  // namespace engine
}  // namespace sciql
