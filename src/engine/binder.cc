#include "src/engine/binder.h"

#include "src/common/string_util.h"

namespace sciql {
namespace engine {

using gdk::ScalarValue;

Result<int> Env::Resolve(const std::string& qual,
                         const std::string& name) const {
  int found = -1;
  for (size_t i = 0; i < cols.size(); ++i) {
    const EnvCol& c = cols[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qual.empty() && !EqualsIgnoreCase(c.qual, qual)) continue;
    if (found >= 0) {
      return Status::BindError(
          StrFormat("ambiguous column reference: %s", name.c_str()));
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    std::string full = qual.empty() ? name : qual + "." + name;
    return Status::BindError(StrFormat("unknown column: %s", full.c_str()));
  }
  return found;
}

bool Env::CanResolve(const std::string& qual, const std::string& name) const {
  return Resolve(qual, name).ok();
}

Result<int> Env::AnyReg() const {
  if (cols.empty()) {
    return Status::BindError("expression requires a FROM clause");
  }
  return cols[0].reg;
}

void SplitConjuncts(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == sql::Expr::Kind::kBinary && e->bin_op == gdk::BinOp::kAnd) {
    SplitConjuncts(e->children[0].get(), out);
    SplitConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

void ExprCompiler::CollectAggregates(const sql::Expr& e,
                                     std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::Expr::Kind::kAggregate) {
    out->push_back(&e);
    return;  // aggregates do not nest
  }
  for (const auto& c : e.children) CollectAggregates(*c, out);
}

bool ExprCompiler::ContainsAggregate(const sql::Expr& e) {
  std::vector<const sql::Expr*> aggs;
  CollectAggregates(e, &aggs);
  return !aggs.empty();
}

bool ExprCompiler::IsScalarExpr(const sql::Expr& e) {
  switch (e.kind) {
    case sql::Expr::Kind::kColumn:
    case sql::Expr::Kind::kCellRef:
    case sql::Expr::Kind::kAggregate:
    case sql::Expr::Kind::kStar:
      return false;
    default:
      break;
  }
  for (const auto& c : e.children) {
    if (!IsScalarExpr(*c)) return false;
  }
  return true;
}

void ExprCompiler::CollectColumns(
    const sql::Expr& e,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (e.kind == sql::Expr::Kind::kColumn) {
    out->emplace_back(e.table, e.column);
  }
  for (const auto& c : e.children) CollectColumns(*c, out);
}

Result<int> ExprCompiler::BroadcastToEnv(int scalar_reg) {
  SCIQL_ASSIGN_OR_RETURN(int any, env_->AnyReg());
  int cnt = prog_->EmitR("bat", "count", {any}, "n");
  return prog_->EmitR("batcalc", "const", {scalar_reg, cnt}, "bcast");
}

Result<int> ExprCompiler::Compile(const sql::Expr& e) {
  switch (e.kind) {
    case sql::Expr::Kind::kLiteral:
      return prog_->Const(e.literal);

    case sql::Expr::Kind::kColumn: {
      SCIQL_ASSIGN_OR_RETURN(int idx, env_->Resolve(e.table, e.column));
      return env_->cols[static_cast<size_t>(idx)].reg;
    }

    case sql::Expr::Kind::kStar:
      return Status::BindError("* is only valid inside COUNT(*)");

    case sql::Expr::Kind::kBinary: {
      SCIQL_ASSIGN_OR_RETURN(int l, Compile(*e.children[0]));
      SCIQL_ASSIGN_OR_RETURN(int r, Compile(*e.children[1]));
      return prog_->EmitR("batcalc", gdk::BinOpName(e.bin_op), {l, r}, "e");
    }

    case sql::Expr::Kind::kUnary: {
      SCIQL_ASSIGN_OR_RETURN(int c, Compile(*e.children[0]));
      const char* fn = "not";
      switch (e.un_op) {
        case gdk::UnOp::kNot:
          fn = "not";
          break;
        case gdk::UnOp::kNeg:
          fn = "neg";
          break;
        case gdk::UnOp::kAbs:
          fn = "abs";
          break;
        case gdk::UnOp::kIsNull:
          fn = "isnil";
          break;
      }
      return prog_->EmitR("batcalc", fn, {c}, "e");
    }

    case sql::Expr::Kind::kFunc: {
      if (e.func_name == "abs" && e.children.size() == 1) {
        SCIQL_ASSIGN_OR_RETURN(int c, Compile(*e.children[0]));
        return prog_->EmitR("batcalc", "abs", {c}, "e");
      }
      if (e.func_name == "mod" && e.children.size() == 2) {
        SCIQL_ASSIGN_OR_RETURN(int l, Compile(*e.children[0]));
        SCIQL_ASSIGN_OR_RETURN(int r, Compile(*e.children[1]));
        return prog_->EmitR("batcalc", "%", {l, r}, "e");
      }
      return Status::BindError(
          StrFormat("unknown function: %s", e.func_name.c_str()));
    }

    case sql::Expr::Kind::kAggregate: {
      if (agg_map_ != nullptr) {
        auto it = agg_map_->find(&e);
        if (it != agg_map_->end()) return it->second;
      }
      return Status::BindError(
          "aggregate function used outside GROUP BY / aggregation context");
    }

    case sql::Expr::Kind::kCase:
      return CompileCase(e);

    case sql::Expr::Kind::kIsNull: {
      SCIQL_ASSIGN_OR_RETURN(int c, Compile(*e.children[0]));
      int r = prog_->EmitR("batcalc", "isnil", {c}, "e");
      if (e.negated) r = prog_->EmitR("batcalc", "not", {r}, "e");
      return r;
    }

    case sql::Expr::Kind::kBetween: {
      SCIQL_ASSIGN_OR_RETURN(int v, Compile(*e.children[0]));
      SCIQL_ASSIGN_OR_RETURN(int lo, Compile(*e.children[1]));
      SCIQL_ASSIGN_OR_RETURN(int hi, Compile(*e.children[2]));
      int ge = prog_->EmitR("batcalc", ">=", {v, lo}, "e");
      int le = prog_->EmitR("batcalc", "<=", {v, hi}, "e");
      int r = prog_->EmitR("batcalc", "and", {ge, le}, "e");
      if (e.negated) r = prog_->EmitR("batcalc", "not", {r}, "e");
      return r;
    }

    case sql::Expr::Kind::kIn: {
      SCIQL_ASSIGN_OR_RETURN(int v, Compile(*e.children[0]));
      int acc = -1;
      for (size_t i = 1; i < e.children.size(); ++i) {
        SCIQL_ASSIGN_OR_RETURN(int item, Compile(*e.children[i]));
        int eq = prog_->EmitR("batcalc", "==", {v, item}, "e");
        acc = acc < 0 ? eq : prog_->EmitR("batcalc", "or", {acc, eq}, "e");
      }
      if (acc < 0) return Status::BindError("empty IN list");
      if (e.negated) acc = prog_->EmitR("batcalc", "not", {acc}, "e");
      return acc;
    }

    case sql::Expr::Kind::kCellRef:
      return CompileCellRef(e);
  }
  return Status::Internal("unreachable expression kind");
}

Result<int> ExprCompiler::CompileCase(const sql::Expr& e) {
  // CASE WHEN c1 THEN v1 WHEN c2 THEN v2 ELSE d END compiles to nested
  // ifthenelse from the last arm inward; a missing ELSE yields NULL.
  size_t pairs = (e.children.size() - (e.has_else ? 1 : 0)) / 2;
  int else_reg;
  if (e.has_else) {
    SCIQL_ASSIGN_OR_RETURN(else_reg, Compile(*e.children.back()));
  } else {
    else_reg = prog_->Const(ScalarValue::Null(gdk::PhysType::kInt));
  }
  int acc = else_reg;
  for (size_t i = pairs; i-- > 0;) {
    SCIQL_ASSIGN_OR_RETURN(int cond, Compile(*e.children[2 * i]));
    SCIQL_ASSIGN_OR_RETURN(int val, Compile(*e.children[2 * i + 1]));
    acc = prog_->EmitR("batcalc", "ifthenelse", {cond, val, acc}, "case");
  }
  return acc;
}

Result<int> ExprCompiler::CompileCellRef(const sql::Expr& e) {
  SCIQL_ASSIGN_OR_RETURN(auto arr, cat_->GetArray(e.array_name));
  const array::ArrayDesc& desc = arr->desc;
  if (e.children.size() != desc.ndims()) {
    return Status::BindError(
        StrFormat("array %s has %zu dimensions but %zu index expressions",
                  e.array_name.c_str(), desc.ndims(), e.children.size()));
  }
  std::string attr = e.attr_name;
  if (attr.empty()) {
    if (desc.nattrs() != 1) {
      return Status::BindError(
          StrFormat("array %s has %zu attributes; qualify the cell access",
                    e.array_name.c_str(), desc.nattrs()));
    }
    attr = desc.attrs()[0].name;
  } else if (desc.AttrIndex(attr) < 0) {
    return Status::BindError(StrFormat("array %s has no attribute %s",
                                       e.array_name.c_str(), attr.c_str()));
  }

  // Index expressions, broadcast to the environment's row alignment.
  std::vector<int> idx_regs;
  bool any_bat = false;
  std::vector<bool> scalar(e.children.size());
  for (size_t d = 0; d < e.children.size(); ++d) {
    scalar[d] = IsScalarExpr(*e.children[d]);
    any_bat = any_bat || !scalar[d];
  }
  for (size_t d = 0; d < e.children.size(); ++d) {
    SCIQL_ASSIGN_OR_RETURN(int r, Compile(*e.children[d]));
    if (scalar[d] && (any_bat || !env_->cols.empty())) {
      SCIQL_ASSIGN_OR_RETURN(r, BroadcastToEnv(r));
    }
    idx_regs.push_back(r);
  }

  auto desc_obj = std::make_shared<array::ArrayDesc>(desc);
  int desc_reg = prog_->Obj(desc_obj, "arraydesc", "@" + ToLower(e.array_name));
  std::vector<int> args = {desc_reg};
  for (int r : idx_regs) args.push_back(r);
  int pos = prog_->EmitR("array", "cellpos", args, "pos");

  int attr_bind = prog_->EmitR(
      "sql", "bind",
      {prog_->Const(ScalarValue::Str(ToLower(e.array_name))),
       prog_->Const(ScalarValue::Str(ToLower(attr)))},
      "a");
  return prog_->EmitR("algebra", "project", {attr_bind, pos}, "cell");
}

}  // namespace engine
}  // namespace sciql
