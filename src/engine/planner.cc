#include "src/engine/planner.h"

#include <algorithm>

#include "src/array/tiling.h"
#include "src/common/string_util.h"

namespace sciql {
namespace engine {

using gdk::ScalarValue;
using sql::Expr;

PlannerControls& GetPlannerControls() {
  static PlannerControls c;
  return c;
}

namespace {

// Output column name for an unaliased select item.
std::string DeriveName(const Expr& e, size_t index) {
  if (e.kind == Expr::Kind::kColumn) return ToLower(e.column);
  if (e.kind == Expr::Kind::kAggregate) {
    std::string arg = e.star ? "*" : e.children[0]->ToString();
    return ToLower(std::string(gdk::AggOpName(e.agg_op)) + "_" + arg);
  }
  return StrFormat("col%zu", index + 1);
}

// True if every column referenced by `e` resolves within `env`.
bool BindsWithin(const Expr& e, const Env& env) {
  std::vector<std::pair<std::string, std::string>> cols;
  ExprCompiler::CollectColumns(e, &cols);
  if (cols.empty()) return false;  // constant: not anchored to either side
  for (const auto& [qual, name] : cols) {
    if (!env.CanResolve(qual, name)) return false;
  }
  return true;
}

// Extract the anchor-relative offset of a tile index expression, which must
// be the dimension variable itself or dimvar +/- <integer literal>.
Result<int64_t> AnchorOffset(const Expr& e, const std::string& dim_name) {
  if (e.kind == Expr::Kind::kColumn) {
    if (!EqualsIgnoreCase(e.column, dim_name)) {
      return Status::BindError(
          StrFormat("tile slice over dimension %s must use variable %s",
                    dim_name.c_str(), dim_name.c_str()));
    }
    return int64_t{0};
  }
  if (e.kind == Expr::Kind::kBinary &&
      (e.bin_op == gdk::BinOp::kAdd || e.bin_op == gdk::BinOp::kSub)) {
    const Expr& l = *e.children[0];
    const Expr& r = *e.children[1];
    if (l.kind == Expr::Kind::kColumn && r.kind == Expr::Kind::kLiteral &&
        !r.literal.is_null && EqualsIgnoreCase(l.column, dim_name)) {
      int64_t off = r.literal.AsInt64();
      return e.bin_op == gdk::BinOp::kAdd ? off : -off;
    }
  }
  return Status::BindError(StrFormat(
      "tile cell denotation must be '%s' plus/minus an integer literal, got %s",
      dim_name.c_str(), e.ToString().c_str()));
}

}  // namespace

Result<Env> SelectCompiler::ScanObject(const std::string& name,
                                       const std::string& alias) {
  std::string qual = ToLower(alias.empty() ? name : alias);
  Env env;
  auto bind_col = [&](const std::string& col, bool is_dim) {
    int reg = prog_->EmitR(
        "sql", "bind",
        {prog_->Const(ScalarValue::Str(ToLower(name))),
         prog_->Const(ScalarValue::Str(ToLower(col)))},
        ToLower(col));
    env.cols.push_back(EnvCol{qual, ToLower(col), is_dim, reg});
  };
  if (cat_->IsArray(name)) {
    SCIQL_ASSIGN_OR_RETURN(auto arr, cat_->GetArray(name));
    for (const auto& d : arr->desc.dims()) bind_col(d.name, true);
    for (const auto& a : arr->desc.attrs()) bind_col(a.name, false);
    return env;
  }
  SCIQL_ASSIGN_OR_RETURN(auto tab, cat_->GetTable(name));
  for (const auto& c : tab->columns) bind_col(c.name, false);
  return env;
}

Status SelectCompiler::ApplyFilter(Env* env, int bits_reg, bool bits_scalar,
                                   std::vector<int>* extra_aligned) {
  int bits = bits_reg;
  if (bits_scalar) {
    // Broadcast a constant predicate over the current row set.
    SCIQL_ASSIGN_OR_RETURN(int any, env->AnyReg());
    int cnt = prog_->EmitR("bat", "count", {any}, "n");
    bits = prog_->EmitR("batcalc", "const", {bits, cnt}, "p");
  }
  int cands = prog_->EmitR("algebra", "select", {bits}, "cand");
  for (EnvCol& c : env->cols) {
    c.reg = prog_->EmitR("algebra", "project", {c.reg, cands}, c.name);
  }
  if (extra_aligned != nullptr) {
    for (int& r : *extra_aligned) {
      r = prog_->EmitR("algebra", "project", {r, cands}, "agg");
    }
  }
  return Status::OK();
}

Result<Env> SelectCompiler::CompileFrom(const sql::SelectStmt& sel,
                                        std::vector<const sql::Expr*>* residual) {
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(sel.where.get(), &conjuncts);

  Env acc;
  bool first = true;
  for (const sql::TableRef& ref : sel.from) {
    Env next;
    if (ref.subquery != nullptr) {
      SelectCompiler sub(prog_, cat_);
      SCIQL_ASSIGN_OR_RETURN(next, sub.Compile(*ref.subquery));
      for (EnvCol& c : next.cols) c.qual = ToLower(ref.alias);
    } else {
      SCIQL_ASSIGN_OR_RETURN(next, ScanObject(ref.name, ref.alias));
    }
    if (first) {
      acc = std::move(next);
      first = false;
      continue;
    }

    // Find equi-join conjuncts separable across acc/next.
    std::vector<size_t> used;
    std::vector<const Expr*> lexprs, rexprs;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      const Expr* c = conjuncts[i];
      if (c == nullptr || c->kind != Expr::Kind::kBinary ||
          c->bin_op != gdk::BinOp::kEq) {
        continue;
      }
      const Expr* l = c->children[0].get();
      const Expr* r = c->children[1].get();
      if (ExprCompiler::ContainsAggregate(*l) ||
          ExprCompiler::ContainsAggregate(*r)) {
        continue;
      }
      if (BindsWithin(*l, acc) && BindsWithin(*r, next)) {
        lexprs.push_back(l);
        rexprs.push_back(r);
        used.push_back(i);
      } else if (BindsWithin(*r, acc) && BindsWithin(*l, next)) {
        lexprs.push_back(r);
        rexprs.push_back(l);
        used.push_back(i);
      }
    }

    int lo, ro;
    if (!lexprs.empty()) {
      ExprCompiler lcomp(prog_, cat_, &acc);
      ExprCompiler rcomp(prog_, cat_, &next);
      std::vector<int> args = {
          prog_->Const(ScalarValue::Lng(static_cast<int64_t>(lexprs.size())))};
      for (const Expr* e : lexprs) {
        SCIQL_ASSIGN_OR_RETURN(int r, lcomp.Compile(*e));
        args.push_back(r);
      }
      for (const Expr* e : rexprs) {
        SCIQL_ASSIGN_OR_RETURN(int r, rcomp.Compile(*e));
        args.push_back(r);
      }
      lo = prog_->NewReg("lo");
      ro = prog_->NewReg("ro");
      prog_->Emit("algebra", "njoin", {lo, ro}, args);
      for (size_t i : used) conjuncts[i] = nullptr;
    } else {
      SCIQL_ASSIGN_OR_RETURN(int lreg, acc.AnyReg());
      SCIQL_ASSIGN_OR_RETURN(int rreg, next.AnyReg());
      int ln = prog_->EmitR("bat", "count", {lreg}, "nl");
      int rn = prog_->EmitR("bat", "count", {rreg}, "nr");
      lo = prog_->NewReg("lo");
      ro = prog_->NewReg("ro");
      prog_->Emit("algebra", "crossjoin", {lo, ro}, {ln, rn});
    }

    Env merged;
    for (const EnvCol& c : acc.cols) {
      int r = prog_->EmitR("algebra", "project", {c.reg, lo}, c.name);
      merged.cols.push_back(EnvCol{c.qual, c.name, c.is_dim, r});
    }
    for (const EnvCol& c : next.cols) {
      int r = prog_->EmitR("algebra", "project", {c.reg, ro}, c.name);
      merged.cols.push_back(EnvCol{c.qual, c.name, c.is_dim, r});
    }
    acc = std::move(merged);
  }

  for (const Expr* c : conjuncts) {
    if (c != nullptr) residual->push_back(c);
  }
  return acc;
}

Status SelectCompiler::CompileTiling(const sql::SelectStmt& sel,
                                     const Env& env,
                                     const std::vector<const Expr*>& aggs,
                                     std::map<const Expr*, int>* agg_map) {
  const sql::GroupBy& gb = *sel.group_by;
  if (sel.from.size() != 1 || sel.from[0].subquery != nullptr) {
    return Status::BindError(
        "structural grouping requires a single array in FROM");
  }
  const std::string base_name = ToLower(sel.from[0].name);
  if (!cat_->IsArray(base_name)) {
    return Status::BindError(
        StrFormat("structural grouping target %s is not an array",
                  base_name.c_str()));
  }
  SCIQL_ASSIGN_OR_RETURN(auto arr, cat_->GetArray(base_name));
  const array::ArrayDesc& desc = arr->desc;
  const std::string qual =
      ToLower(sel.from[0].alias.empty() ? sel.from[0].name : sel.from[0].alias);

  // Build the tile spec from the patterns (offsets in index space).
  bool single_full_range =
      gb.patterns.size() == 1 &&
      std::all_of(gb.patterns[0].dims.begin(), gb.patterns[0].dims.end(),
                  [](const sql::TileDim& d) { return d.is_range; });
  array::TileSpec spec;
  if (single_full_range) {
    const sql::TilePattern& pat = gb.patterns[0];
    if (pat.dims.size() != desc.ndims()) {
      return Status::BindError("tile pattern dimensionality mismatch");
    }
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (size_t d = 0; d < pat.dims.size(); ++d) {
      const std::string& dname = desc.dims()[d].name;
      int64_t step = desc.dims()[d].range.step;
      SCIQL_ASSIGN_OR_RETURN(int64_t lo, AnchorOffset(*pat.dims[d].lo, dname));
      SCIQL_ASSIGN_OR_RETURN(int64_t hi, AnchorOffset(*pat.dims[d].hi, dname));
      if (lo % step != 0 || hi % step != 0) {
        return Status::BindError(
            "tile offsets must be multiples of the dimension step");
      }
      ranges.emplace_back(lo / step, hi / step);
    }
    SCIQL_ASSIGN_OR_RETURN(spec, array::TileSpec::FromRanges(ranges));
  } else {
    // Union of explicit cells (ranges within a pattern expand).
    std::vector<std::vector<int64_t>> cells;
    for (const sql::TilePattern& pat : gb.patterns) {
      if (!EqualsIgnoreCase(pat.array, base_name) &&
          !EqualsIgnoreCase(pat.array, qual)) {
        return Status::BindError(
            StrFormat("tile pattern over %s but FROM binds %s",
                      pat.array.c_str(), base_name.c_str()));
      }
      if (pat.dims.size() != desc.ndims()) {
        return Status::BindError("tile pattern dimensionality mismatch");
      }
      std::vector<std::vector<int64_t>> axes;  // per-dim candidate offsets
      for (size_t d = 0; d < pat.dims.size(); ++d) {
        const std::string& dname = desc.dims()[d].name;
        int64_t step = desc.dims()[d].range.step;
        std::vector<int64_t> offs;
        if (pat.dims[d].is_range) {
          SCIQL_ASSIGN_OR_RETURN(int64_t lo,
                                 AnchorOffset(*pat.dims[d].lo, dname));
          SCIQL_ASSIGN_OR_RETURN(int64_t hi,
                                 AnchorOffset(*pat.dims[d].hi, dname));
          if (lo % step != 0 || hi % step != 0) {
            return Status::BindError(
                "tile offsets must be multiples of the dimension step");
          }
          for (int64_t o = lo / step; o < hi / step; ++o) offs.push_back(o);
        } else {
          SCIQL_ASSIGN_OR_RETURN(int64_t o,
                                 AnchorOffset(*pat.dims[d].single, dname));
          if (o % step != 0) {
            return Status::BindError(
                "tile offsets must be multiples of the dimension step");
          }
          offs.push_back(o / step);
        }
        axes.push_back(std::move(offs));
      }
      // Cartesian product of the axes.
      std::vector<std::vector<int64_t>> expanded{{}};
      for (const auto& axis : axes) {
        std::vector<std::vector<int64_t>> next;
        for (const auto& prefix : expanded) {
          for (int64_t o : axis) {
            auto cell = prefix;
            cell.push_back(o);
            next.push_back(std::move(cell));
          }
        }
        expanded = std::move(next);
      }
      for (auto& c : expanded) cells.push_back(std::move(c));
    }
    SCIQL_ASSIGN_OR_RETURN(spec, array::TileSpec::FromCells(std::move(cells)));
  }

  auto desc_obj = std::make_shared<array::ArrayDesc>(desc);
  auto spec_obj = std::make_shared<array::TileSpec>(spec);
  int desc_reg = prog_->Obj(desc_obj, "arraydesc", "@" + base_name);
  int spec_reg =
      prog_->Obj(spec_obj, "tilespec", base_name + spec.ToString(desc));

  ExprCompiler comp(prog_, cat_, &env);
  for (const Expr* agg : aggs) {
    int vals;
    if (agg->star) {
      // COUNT(*) over a tile counts its non-hole cells: use the first
      // attribute as the existence witness.
      if (desc.nattrs() == 0) {
        return Status::BindError("COUNT(*) over an array without attributes");
      }
      SCIQL_ASSIGN_OR_RETURN(int idx, env.Resolve(qual, desc.attrs()[0].name));
      vals = env.cols[static_cast<size_t>(idx)].reg;
    } else {
      SCIQL_ASSIGN_OR_RETURN(vals, comp.Compile(*agg->children[0]));
    }
    std::string opname = agg->star ? "count" : gdk::AggOpName(agg->agg_op);
    int out = prog_->EmitR("array", "tileagg",
                           {desc_reg, spec_reg,
                            prog_->Const(ScalarValue::Str(opname)), vals},
                           "tile");
    (*agg_map)[agg] = out;
  }
  return Status::OK();
}

Result<Env> SelectCompiler::Compile(const sql::SelectStmt& sel) {
  if (sel.items.empty()) return Status::BindError("empty select list");

  // Collect aggregates from select items and HAVING.
  std::vector<const Expr*> aggs;
  for (const auto& item : sel.items) {
    if (item.expr != nullptr) ExprCompiler::CollectAggregates(*item.expr, &aggs);
  }
  if (sel.having != nullptr) ExprCompiler::CollectAggregates(*sel.having, &aggs);
  for (const auto& o : sel.order_by) {
    ExprCompiler::CollectAggregates(*o.expr, &aggs);
  }

  bool structural = sel.group_by.has_value() && sel.group_by->structural;
  bool value_group = sel.group_by.has_value() && !sel.group_by->structural;

  std::vector<const Expr*> residual;
  Env env;
  if (!sel.from.empty()) {
    SCIQL_ASSIGN_OR_RETURN(env, CompileFrom(sel, &residual));
  } else if (sel.where != nullptr) {
    return Status::BindError("WHERE requires a FROM clause");
  }

  std::map<const Expr*, int> agg_map;
  std::vector<int> agg_regs;  // aligned with env rows (tiling) for filtering

  if (structural) {
    // Tiles see the full array; WHERE then filters anchors (below).
    SCIQL_RETURN_NOT_OK(CompileTiling(sel, env, aggs, &agg_map));
    for (const Expr* a : aggs) agg_regs.push_back(agg_map[a]);

    // WHERE as anchor filter.
    if (!residual.empty()) {
      ExprCompiler comp(prog_, cat_, &env);
      comp.set_agg_map(&agg_map);
      int acc = -1;
      bool acc_scalar = true;
      for (const Expr* c : residual) {
        SCIQL_ASSIGN_OR_RETURN(int r, comp.Compile(*c));
        acc = acc < 0 ? r : prog_->EmitR("batcalc", "and", {acc, r}, "p");
        acc_scalar = acc_scalar && ExprCompiler::IsScalarExpr(*c);
      }
      SCIQL_RETURN_NOT_OK(ApplyFilter(&env, acc, acc_scalar, &agg_regs));
      for (size_t i = 0; i < aggs.size(); ++i) agg_map[aggs[i]] = agg_regs[i];
    }
  } else {
    // Plain WHERE filter.
    if (!residual.empty()) {
      ExprCompiler comp(prog_, cat_, &env);
      int acc = -1;
      bool acc_scalar = true;
      for (const Expr* c : residual) {
        if (ExprCompiler::ContainsAggregate(*c)) {
          return Status::BindError("aggregates are not allowed in WHERE");
        }
        SCIQL_ASSIGN_OR_RETURN(int r, comp.Compile(*c));
        acc = acc < 0 ? r : prog_->EmitR("batcalc", "and", {acc, r}, "p");
        acc_scalar = acc_scalar && ExprCompiler::IsScalarExpr(*c);
      }
      SCIQL_RETURN_NOT_OK(ApplyFilter(&env, acc, acc_scalar, nullptr));
    }

    if (value_group) {
      const auto& keys = sel.group_by->keys;
      if (keys.empty()) return Status::BindError("empty GROUP BY");
      ExprCompiler comp(prog_, cat_, &env);
      // Grouping chain.
      int groups = -1, extents = -1, ngroups = -1;
      std::vector<int> key_regs;
      for (size_t k = 0; k < keys.size(); ++k) {
        SCIQL_ASSIGN_OR_RETURN(int kr, comp.Compile(*keys[k]));
        key_regs.push_back(kr);
        int g = prog_->NewReg("groups");
        int x = prog_->NewReg("extents");
        int n = prog_->NewReg("ngroups");
        if (groups < 0) {
          prog_->Emit("group", "group", {g, x, n}, {kr});
        } else {
          prog_->Emit("group", "subgroup", {g, x, n}, {kr, groups, ngroups});
        }
        groups = g;
        extents = x;
        ngroups = n;
      }
      // Aggregates over the pre-group environment.
      for (const Expr* agg : aggs) {
        int out;
        if (agg->star) {
          out = prog_->EmitR("aggr", "count_star", {groups, ngroups}, "agg");
        } else {
          SCIQL_ASSIGN_OR_RETURN(int arg, comp.Compile(*agg->children[0]));
          out = prog_->EmitR("aggr", gdk::AggOpName(agg->agg_op),
                             {arg, groups, ngroups}, "agg");
        }
        agg_map[agg] = out;
      }
      // New environment: group keys projected through the extents.
      Env genv;
      for (size_t k = 0; k < keys.size(); ++k) {
        int kout = prog_->EmitR("algebra", "project",
                                {key_regs[k], extents}, "key");
        std::string name = keys[k]->kind == Expr::Kind::kColumn
                               ? ToLower(keys[k]->column)
                               : ToLower(keys[k]->ToString());
        std::string qual = keys[k]->kind == Expr::Kind::kColumn
                               ? ToLower(keys[k]->table)
                               : "";
        bool is_dim = false;
        if (keys[k]->kind == Expr::Kind::kColumn) {
          auto idx = env.Resolve(keys[k]->table, keys[k]->column);
          if (idx.ok()) is_dim = env.cols[static_cast<size_t>(*idx)].is_dim;
        }
        genv.cols.push_back(EnvCol{qual, name, is_dim, kout});
      }
      env = std::move(genv);
    } else if (!aggs.empty()) {
      // Whole-input aggregation (no GROUP BY): scalar aggregates.
      ExprCompiler comp(prog_, cat_, &env);
      for (const Expr* agg : aggs) {
        int out;
        if (agg->star) {
          SCIQL_ASSIGN_OR_RETURN(int any, env.AnyReg());
          out = prog_->EmitR("bat", "count", {any}, "agg");
        } else {
          SCIQL_ASSIGN_OR_RETURN(int arg, comp.Compile(*agg->children[0]));
          out = prog_->EmitR("aggr",
                             std::string(gdk::AggOpName(agg->agg_op)) + "_all",
                             {arg}, "agg");
        }
        agg_map[agg] = out;
      }
      env = Env{};  // non-grouped columns are out of scope
    }
  }

  // HAVING: filter groups/anchors.
  if (sel.having != nullptr) {
    if (!sel.group_by.has_value()) {
      return Status::NotSupported("HAVING requires a GROUP BY clause");
    }
    ExprCompiler comp(prog_, cat_, &env);
    comp.set_agg_map(&agg_map);
    SCIQL_ASSIGN_OR_RETURN(int bits, comp.Compile(*sel.having));
    bool scalar = ExprCompiler::IsScalarExpr(*sel.having);
    if (!env.cols.empty() || !agg_regs.empty()) {
      std::vector<int> aligned;
      for (const Expr* a : aggs) aligned.push_back(agg_map[a]);
      // In the value-group case agg outputs are aligned with groups (the
      // current env); in the tiling case with anchors (also the env).
      SCIQL_RETURN_NOT_OK(ApplyFilter(&env, bits, scalar, &aligned));
      for (size_t i = 0; i < aggs.size(); ++i) agg_map[aggs[i]] = aligned[i];
    }
  }

  // Select items.
  Env out;
  ExprCompiler comp(prog_, cat_, &env);
  comp.set_agg_map(&agg_map);
  for (size_t i = 0; i < sel.items.size(); ++i) {
    const sql::SelectItem& item = sel.items[i];
    if (item.is_star) {
      for (const EnvCol& c : env.cols) {
        out.cols.push_back(EnvCol{"", c.name, c.is_dim, c.reg});
      }
      continue;
    }
    // A select item that syntactically matches a GROUP BY key expression
    // refers to the key's (projected) register.
    int reg = -1;
    if (item.expr->kind != Expr::Kind::kColumn) {
      std::string repr = ToLower(item.expr->ToString());
      for (const EnvCol& c : env.cols) {
        if (c.name == repr) {
          reg = c.reg;
          break;
        }
      }
    }
    if (reg < 0) {
      SCIQL_ASSIGN_OR_RETURN(reg, comp.Compile(*item.expr));
    }
    std::string name =
        item.alias.empty() ? DeriveName(*item.expr, i) : ToLower(item.alias);
    // A constant item (SELECT 14 AS c0 FROM t) compiles to a scalar
    // register; broadcast it against any row-aligned column so the output
    // has one value per row and ORDER BY/LIMIT over the alias works. With
    // no row source (SELECT 14, or whole-input aggregation) the scalar is
    // already the single-row answer.
    if (ExprCompiler::IsScalarExpr(*item.expr)) {
      if (auto ref = env.AnyReg(); ref.ok()) {
        reg = prog_->EmitR("bat", "broadcast", {reg, *ref}, name);
      }
    }
    out.cols.push_back(EnvCol{"", name, item.is_dim, reg});
  }

  // DISTINCT: group over all output columns, keep one representative row.
  if (sel.distinct) {
    if (out.cols.empty()) {
      return Status::BindError("DISTINCT over an empty select list");
    }
    int groups = -1, extents = -1, ngroups = -1;
    for (const EnvCol& c : out.cols) {
      int g = prog_->NewReg("dgroups");
      int x = prog_->NewReg("dextents");
      int n = prog_->NewReg("dn");
      if (groups < 0) {
        prog_->Emit("group", "group", {g, x, n}, {c.reg});
      } else {
        prog_->Emit("group", "subgroup", {g, x, n}, {c.reg, groups, ngroups});
      }
      groups = g;
      extents = x;
      ngroups = n;
    }
    for (EnvCol& c : out.cols) {
      c.reg = prog_->EmitR("algebra", "project", {c.reg, extents}, c.name);
    }
  }

  // ORDER BY over output aliases or the post-group environment.
  if (!sel.order_by.empty()) {
    std::vector<int> sort_args;
    for (const auto& oi : sel.order_by) {
      int key = -1;
      if (oi.expr->kind == Expr::Kind::kColumn && oi.expr->table.empty()) {
        for (const EnvCol& c : out.cols) {
          if (EqualsIgnoreCase(c.name, oi.expr->column)) {
            key = c.reg;
            break;
          }
        }
      }
      if (key < 0) {
        if (sel.distinct) {
          // After DISTINCT only the output columns are row-aligned.
          return Status::BindError(
              "ORDER BY with DISTINCT must reference select-list columns");
        }
        SCIQL_ASSIGN_OR_RETURN(key, comp.Compile(*oi.expr));
      }
      sort_args.push_back(key);
      sort_args.push_back(prog_->Const(ScalarValue::Lng(oi.desc ? 1 : 0)));
    }
    int idx;
    const bool fuse_firstn = sel.limit >= 0 && GetPlannerControls().fuse_firstn;
    if (fuse_firstn) {
      // ORDER BY + LIMIT fuses into top-k: algebra.firstn computes only the
      // first k index entries (bounded per-morsel heaps; an existing order
      // index short-circuits to an O(k) window copy), so the sort + slice
      // pair below never materializes the full permutation.
      std::vector<int> args = {prog_->Const(ScalarValue::Lng(sel.limit))};
      args.insert(args.end(), sort_args.begin(), sort_args.end());
      idx = prog_->EmitR("algebra", "firstn", args, "topk");
    } else {
      // Every ORDER BY without LIMIT orders through the keyed persistent
      // index cache (algebra.orderidx): single or multi-key, either
      // direction. The canonical (primary-ascending) index is built once
      // and cached on the first key column; the exact spec reuses it and
      // the negated spec (e.g. ORDER BY x DESC after ORDER BY x) is served
      // by run reversal — never a second sort.
      idx = prog_->EmitR("algebra", "orderidx", sort_args, "ord");
    }
    for (EnvCol& c : out.cols) {
      c.reg = prog_->EmitR("algebra", "project", {c.reg, idx}, c.name);
    }
    if (sel.limit >= 0 && !fuse_firstn) {
      // Fusion disabled (differential testing): materialize the full sort
      // and slice its prefix — the pipeline algebra.firstn must match
      // bit-for-bit.
      int lo = prog_->Const(ScalarValue::Lng(0));
      int hi = prog_->Const(ScalarValue::Lng(sel.limit));
      for (EnvCol& c : out.cols) {
        c.reg = prog_->EmitR("algebra", "slice", {c.reg, lo, hi}, c.name);
      }
    }
  } else if (sel.limit >= 0) {
    // LIMIT without ORDER BY keeps the row-order prefix: a plain slice.
    int lo = prog_->Const(ScalarValue::Lng(0));
    int hi = prog_->Const(ScalarValue::Lng(sel.limit));
    for (EnvCol& c : out.cols) {
      c.reg = prog_->EmitR("algebra", "slice", {c.reg, lo, hi}, c.name);
    }
  }
  return out;
}

}  // namespace engine
}  // namespace sciql
