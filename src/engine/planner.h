// Compilation of SELECT statements into MAL pipelines: scans and joins over
// the FROM items, WHERE filtering, value-based or structural (tiling)
// grouping, HAVING, projection, ORDER BY and LIMIT.

#ifndef SCIQL_ENGINE_PLANNER_H_
#define SCIQL_ENGINE_PLANNER_H_

#include "src/engine/binder.h"

namespace sciql {
namespace engine {

/// \brief Process-wide planner switches for differential testing. The
/// fuzzer's oracle runner (src/fuzz/) flips these so one logical query
/// compiles down redundant pipelines whose results must agree bit-for-bit.
struct PlannerControls {
  /// When false, ORDER BY + LIMIT compiles to the explicit
  /// orderidx + project + slice pipeline instead of fusing into
  /// algebra.firstn — the redundant pair the top-k kernel is pinned against.
  bool fuse_firstn = true;

  void Reset() { *this = PlannerControls{}; }
};

/// \brief The process-wide planner controls.
PlannerControls& GetPlannerControls();

/// \brief Compiles one SELECT (possibly nested) into an existing MalProgram.
class SelectCompiler {
 public:
  SelectCompiler(mal::MalProgram* prog, const catalog::CatalogVersion* cat)
      : prog_(prog), cat_(cat) {}

  /// \brief Compile the full pipeline; the returned environment holds the
  /// output columns (name, is_dim, register) in select-list order.
  Result<Env> Compile(const sql::SelectStmt& sel);

  /// \brief Bind all columns of a table or array into a fresh environment
  /// (dimensions first for arrays). Also used by the DML compilers.
  Result<Env> ScanObject(const std::string& name, const std::string& alias);

 private:
  /// FROM: scans and joins; returns the base environment and the conjuncts
  /// of WHERE not consumed by equi-joins.
  Result<Env> CompileFrom(const sql::SelectStmt& sel,
                          std::vector<const sql::Expr*>* residual);

  /// Filter `env` in place by a predicate (bit BAT -> candidates ->
  /// projection of every column).
  Status ApplyFilter(Env* env, int bits_reg, bool bits_scalar,
                     std::vector<int>* extra_aligned);

  /// Structural grouping: compute tile aggregates (cell-aligned).
  Status CompileTiling(const sql::SelectStmt& sel, const Env& env,
                       const std::vector<const sql::Expr*>& aggs,
                       std::map<const sql::Expr*, int>* agg_map);

  mal::MalProgram* prog_;
  const catalog::CatalogVersion* cat_;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_PLANNER_H_
