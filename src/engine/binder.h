// Name resolution (environments of bound columns) and compilation of scalar
// expressions into vectorized MAL instruction sequences.

#ifndef SCIQL_ENGINE_BINDER_H_
#define SCIQL_ENGINE_BINDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/mal/program.h"
#include "src/sql/ast.h"

namespace sciql {
namespace engine {

/// \brief One column visible to expressions: qualifier (table alias), name,
/// dimension flag and the MAL register holding its (row-aligned) BAT.
struct EnvCol {
  std::string qual;
  std::string name;
  bool is_dim = false;
  int reg = -1;
};

/// \brief The set of columns in scope, all aligned to the same row set.
struct Env {
  std::vector<EnvCol> cols;

  /// \brief Resolve [qual.]name; unqualified names must be unambiguous.
  Result<int> Resolve(const std::string& qual, const std::string& name) const;

  /// \brief True if [qual.]name resolves (without ambiguity).
  bool CanResolve(const std::string& qual, const std::string& name) const;

  /// \brief The register of the first column (used for row counts).
  Result<int> AnyReg() const;
};

/// \brief Compiles expressions to MAL over an environment.
///
/// Aggregate nodes are not compiled here: the planner precomputes them and
/// provides their registers through `agg_map` (keyed by AST node).
class ExprCompiler {
 public:
  ExprCompiler(mal::MalProgram* prog, const catalog::CatalogVersion* cat,
               const Env* env)
      : prog_(prog), cat_(cat), env_(env) {}

  void set_agg_map(const std::map<const sql::Expr*, int>* m) { agg_map_ = m; }

  /// \brief Compile `e`; returns the register holding its value (a BAT
  /// aligned with the environment, or a scalar constant for
  /// column-free expressions).
  Result<int> Compile(const sql::Expr& e);

  /// \brief All aggregate nodes in `e` (not recursing into their arguments).
  static void CollectAggregates(const sql::Expr& e,
                                std::vector<const sql::Expr*>* out);
  static bool ContainsAggregate(const sql::Expr& e);

  /// \brief True if `e` references no columns, cell accesses or aggregates
  /// (its value is a scalar constant).
  static bool IsScalarExpr(const sql::Expr& e);

  /// \brief Collect all column references (qual, name) in `e`.
  static void CollectColumns(const sql::Expr& e,
                             std::vector<std::pair<std::string, std::string>>* out);

 private:
  Result<int> CompileCellRef(const sql::Expr& e);
  Result<int> CompileCase(const sql::Expr& e);
  /// Broadcast a scalar register to a BAT aligned with the environment.
  Result<int> BroadcastToEnv(int scalar_reg);

  mal::MalProgram* prog_;
  const catalog::CatalogVersion* cat_;
  const Env* env_;
  const std::map<const sql::Expr*, int>* agg_map_ = nullptr;
};

/// \brief Decompose an AND tree into conjuncts.
void SplitConjuncts(const sql::Expr* e, std::vector<const sql::Expr*>* out);

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_BINDER_H_
