#include "src/engine/database.h"

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/engine/executor.h"
#include "src/engine/mal_gen.h"
#include "src/mal/optimizer.h"
#include "src/sql/parser.h"

namespace sciql {
namespace engine {

using gdk::ScalarValue;

Result<ResultSet> Database::Execute(const std::string& text) {
  SCIQL_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                         sql::Parse(text));
  if (stmts.empty()) {
    return Status::InvalidArgument("no statement to execute");
  }
  ResultSet last;
  for (const auto& stmt : stmts) {
    SCIQL_ASSIGN_OR_RETURN(last, ExecuteStatement(*stmt));
  }
  return last;
}

Status Database::Run(const std::string& text) {
  SCIQL_ASSIGN_OR_RETURN([[maybe_unused]] ResultSet rs, Execute(text));
  return Status::OK();
}

void Database::SetExecutionThreads(int n) {
  ThreadPool::Get().SetThreadCount(n);
}

int Database::ExecutionThreads() { return ThreadPool::Get().thread_count(); }

Status Database::Open(const std::string& dir,
                      const storage::OpenOptions& options) {
  if (storage_ != nullptr) {
    Status parted = storage_->Checkpoint();
    if (!parted.ok()) {
      // The old directory keeps its last consistent state; whatever was not
      // checkpointed is still covered by its WAL. Detach and report rather
      // than staying attached to an engine mid-way through a failed commit.
      DetachStorageAfterFailure();
      return Status::IOError(StrFormat(
          "checkpoint of the previously attached storage failed (%s); it was "
          "detached at its last consistent state and no new directory was "
          "opened — the session continues in-memory",
          parted.ToString().c_str()));
    }
    storage_.reset();
  }
  cat_.Clear();
  // During WAL replay storage_ is still null, so replayed statements run
  // through the normal path without being re-logged.
  auto replay = [this](const std::string& sql) -> Status {
    SCIQL_ASSIGN_OR_RETURN([[maybe_unused]] ResultSet rs, Execute(sql));
    return Status::OK();
  };
  auto opened = storage::StorageEngine::Open(dir, &cat_, replay, options);
  if (!opened.ok()) {
    // A failed open may have declared objects it can no longer load; drop
    // them so the session is a clean in-memory database again.
    cat_.Clear();
    return opened.status();
  }
  storage_ = std::move(*opened);
  return Status::OK();
}

Status Database::Checkpoint() {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("no storage attached; use Open(dir) first");
  }
  Status st = storage_->Checkpoint();
  if (!st.ok()) {
    // A failed checkpoint may have written some new-epoch files, but the
    // manifest rename never committed them: on disk the directory is still
    // exactly its last consistent state (old manifest + logged WAL prefix).
    // The engine's in-memory dirty tracking is mid-transition though, so
    // retrying could mis-track; detach instead, explicitly.
    DetachStorageAfterFailure();
    return Status::IOError(StrFormat(
        "checkpoint failed (%s); storage detached — the session continues "
        "in-memory only and the database directory keeps its last "
        "consistent state", st.ToString().c_str()));
  }
  return st;
}

void Database::DetachStorageAfterFailure() {
  if (storage_ == nullptr) return;
  storage_->LoadAllForDetach();
  storage_.reset();
}

Status Database::Close() {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("no storage attached; use Open(dir) first");
  }
  Status st = storage_->Checkpoint();
  if (!st.ok()) {
    // Everything committed is already WAL-logged, so closing without the
    // checkpoint is still consistent: the next open replays the log.
    storage_.reset();
    cat_.Clear();
    return Status::IOError(StrFormat(
        "close could not checkpoint (%s); the directory keeps its last "
        "consistent state and the next open replays its WAL",
        st.ToString().c_str()));
  }
  storage_.reset();  // detaches the catalog loader
  cat_.Clear();
  return Status::OK();
}

namespace {

bool IsMutatingStatement(sql::Statement::Kind kind) {
  switch (kind) {
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateArray:
    case sql::Statement::Kind::kDrop:
    case sql::Statement::Kind::kAlterArray:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kUpdate:
    case sql::Statement::Kind::kDelete:
      return true;
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kExplain:
      return false;
  }
  return false;
}

}  // namespace

Result<ResultSet> Database::ExecuteStatement(const sql::Statement& stmt) {
  SCIQL_ASSIGN_OR_RETURN(ResultSet rs, ExecuteStatementNoLog(stmt));
  // The statement committed (applied to the in-memory catalog); with storage
  // attached it becomes durable by logging its source text to the WAL. The
  // next checkpoint folds it into the heap files and resets the log.
  if (storage_ != nullptr && IsMutatingStatement(stmt.kind) &&
      !stmt.source.empty()) {
    Status logged = storage_->LogStatement(stmt.source);
    if (!logged.ok()) {
      // The mutation is applied in memory but cannot be made durable, and a
      // retry would double-apply it. Detach the storage so the divergence is
      // explicit: the session keeps working in-memory, the directory stays
      // at its last consistent state (checkpoint + logged prefix).
      DetachStorageAfterFailure();
      return Status::IOError(StrFormat(
          "statement applied in memory but could not be logged for "
          "durability (%s); storage detached — the session continues "
          "in-memory only and the database directory keeps its last "
          "consistent state", logged.ToString().c_str()));
    }
  }
  return rs;
}

Result<ResultSet> Database::ExecuteStatementNoLog(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kExplain: {
      SCIQL_ASSIGN_OR_RETURN(std::string text, BuildExplain(*stmt.inner));
      ResultSet rs;
      auto col = gdk::BAT::Make(gdk::PhysType::kStr);
      for (const std::string& line : Split(text, '\n')) {
        if (line.empty()) continue;
        SCIQL_RETURN_NOT_OK(col->Append(ScalarValue::Str(line)));
      }
      rs.AddColumn("mal", false, std::move(col));
      return rs;
    }
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateArray:
      if (stmt.select == nullptr) return ExecuteDdl(stmt);
      break;  // AS SELECT goes through the compiler
    case sql::Statement::Kind::kDrop:
    case sql::Statement::Kind::kAlterArray:
      return ExecuteDdl(stmt);
    default:
      break;
  }

  StatementCompiler compiler(&cat_);
  SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs, compiler.Compile(stmt));
  SCIQL_RETURN_NOT_OK(mal::Optimize(&cs.prog));
  Executor exec(&cat_);
  return exec.Execute(cs);
}

Result<ResultSet> Database::ExecuteDdl(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable: {
      std::vector<array::AttrDesc> cols;
      for (const auto& c : stmt.columns) {
        if (c.is_dimension) {
          return Status::InvalidArgument(
              "DIMENSION columns belong to arrays, not tables");
        }
        array::AttrDesc ad;
        ad.name = ToLower(c.name);
        ad.type = c.type;
        ad.default_value =
            c.has_default ? c.default_value : ScalarValue::Null(c.type);
        cols.push_back(std::move(ad));
      }
      SCIQL_RETURN_NOT_OK(cat_.CreateTable(stmt.object_name, std::move(cols)));
      return ResultSet();
    }
    case sql::Statement::Kind::kCreateArray: {
      std::vector<array::DimDesc> dims;
      std::vector<array::AttrDesc> attrs;
      for (const auto& c : stmt.columns) {
        if (c.is_dimension) {
          if (c.type != gdk::PhysType::kInt &&
              c.type != gdk::PhysType::kLng) {
            return Status::NotSupported(
                "only integer dimensions are supported");
          }
          if (!c.has_range) {
            return Status::NotSupported(
                "unbounded dimensions arise from coercions; CREATE ARRAY "
                "requires fixed dimension ranges");
          }
          dims.push_back(array::DimDesc{ToLower(c.name), c.range, false});
        } else {
          array::AttrDesc ad;
          ad.name = ToLower(c.name);
          ad.type = c.type;
          ad.default_value =
              c.has_default ? c.default_value : ScalarValue::Null(c.type);
          attrs.push_back(std::move(ad));
        }
      }
      if (dims.empty()) {
        return Status::InvalidArgument(
            "an array needs at least one DIMENSION column");
      }
      SCIQL_RETURN_NOT_OK(cat_.CreateArray(
          stmt.object_name,
          array::ArrayDesc(std::move(dims), std::move(attrs))));
      return ResultSet();
    }
    case sql::Statement::Kind::kDrop: {
      bool is_array = cat_.IsArray(stmt.object_name);
      if (cat_.Exists(stmt.object_name) && is_array != stmt.drop_is_array) {
        return Status::InvalidArgument(
            StrFormat("%s is a%s; use DROP %s", stmt.object_name.c_str(),
                      is_array ? "n array" : " table",
                      is_array ? "ARRAY" : "TABLE"));
      }
      SCIQL_RETURN_NOT_OK(cat_.DropObject(stmt.object_name));
      return ResultSet();
    }
    case sql::Statement::Kind::kAlterArray: {
      SCIQL_ASSIGN_OR_RETURN(auto arr, cat_.GetArray(stmt.object_name));
      int d = arr->desc.DimIndex(stmt.dim_name);
      if (d < 0) {
        return Status::NotFound(StrFormat("array %s has no dimension %s",
                                          stmt.object_name.c_str(),
                                          stmt.dim_name.c_str()));
      }
      SCIQL_RETURN_NOT_OK(
          arr->AlterDimension(static_cast<size_t>(d), stmt.new_range));
      return ResultSet();
    }
    default:
      return Status::Internal("not a DDL statement");
  }
}

Result<std::string> Database::BuildExplain(const sql::Statement& stmt) {
  StatementCompiler compiler(&cat_);
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateArray:
      if (stmt.select == nullptr) {
        SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs,
                               compiler.CompileDdlDisplay(stmt));
        // DDL display programs are exempt from optimization: their results
        // are the materialised BATs themselves.
        return cs.prog.ToString();
      }
      break;
    case sql::Statement::Kind::kDrop:
    case sql::Statement::Kind::kAlterArray: {
      SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs,
                             compiler.CompileDdlDisplay(stmt));
      return cs.prog.ToString();
    }
    case sql::Statement::Kind::kExplain:
      return Status::InvalidArgument("cannot EXPLAIN an EXPLAIN");
    default:
      break;
  }
  SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs, compiler.Compile(stmt));
  SCIQL_RETURN_NOT_OK(mal::Optimize(&cs.prog));
  return cs.prog.ToString();
}

Result<std::string> Database::ExplainText(const std::string& text) {
  SCIQL_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseOne(text));
  const sql::Statement* target = stmt.get();
  if (stmt->kind == sql::Statement::Kind::kExplain) target = stmt->inner.get();
  return BuildExplain(*target);
}

}  // namespace engine
}  // namespace sciql
