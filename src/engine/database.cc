#include "src/engine/database.h"

#include "src/common/thread_pool.h"

namespace sciql {
namespace engine {

void Database::SetExecutionThreads(int n) {
  ThreadPool::Get().SetThreadCount(n);
}

int Database::ExecutionThreads() { return ThreadPool::Get().thread_count(); }

}  // namespace engine
}  // namespace sciql
