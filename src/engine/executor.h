// Execution of compiled statements: runs the MAL program against a pinned
// catalog version, assembles the result set, and applies DML/CREATE-AS
// actions through the catalog's write interface.

#ifndef SCIQL_ENGINE_EXECUTOR_H_
#define SCIQL_ENGINE_EXECUTOR_H_

#include <utility>

#include "src/engine/mal_gen.h"
#include "src/engine/result_set.h"
#include "src/mal/interpreter.h"

namespace sciql {
namespace engine {

class Executor {
 public:
  /// `cat` is the write side (BeginWrite/Adopt*; may be null for read-only
  /// statements); `version` is the pinned snapshot the MAL program reads.
  /// The executor releases the pin after the read pipeline and before
  /// applying writes, so a single-session write is not forced onto the
  /// copy-on-write path by its own pin.
  Executor(catalog::Catalog* cat, catalog::CatalogVersionPtr version)
      : cat_(cat), version_(std::move(version)) {}

  /// \brief Run the statement. Queries return their rows; DML returns a
  /// single-row result with the affected row count.
  Result<ResultSet> Execute(const CompiledStatement& cs);

  /// \brief Attach a statement trace: the MAL run records one sample per
  /// instruction and the assembled row count is reported into the trace.
  void SetTrace(obs::StatementTrace* trace) { trace_ = trace; }

 private:
  /// Assemble aligned result columns (scalars broadcast to the row count).
  Result<ResultSet> AssembleResult(const CompiledStatement& cs,
                                   mal::MalContext* ctx);

  Status ApplyInsert(const CompiledStatement& cs, const ResultSet& rows);
  Status ApplyUpdate(const CompiledStatement& cs, const ResultSet& rows);
  Status ApplyDelete(const CompiledStatement& cs, const ResultSet& rows);
  Status ApplyCreateAs(const CompiledStatement& cs, const ResultSet& rows);

  catalog::Catalog* cat_;
  catalog::CatalogVersionPtr version_;
  obs::StatementTrace* trace_ = nullptr;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_EXECUTOR_H_
