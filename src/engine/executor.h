// Execution of compiled statements: runs the MAL program, assembles the
// result set, and applies DML/CREATE-AS actions to the catalog.

#ifndef SCIQL_ENGINE_EXECUTOR_H_
#define SCIQL_ENGINE_EXECUTOR_H_

#include "src/engine/mal_gen.h"
#include "src/engine/result_set.h"
#include "src/mal/interpreter.h"

namespace sciql {
namespace engine {

class Executor {
 public:
  explicit Executor(catalog::Catalog* cat) : cat_(cat) {}

  /// \brief Run the statement. Queries return their rows; DML returns a
  /// single-row result with the affected row count.
  Result<ResultSet> Execute(const CompiledStatement& cs);

 private:
  /// Assemble aligned result columns (scalars broadcast to the row count).
  Result<ResultSet> AssembleResult(const CompiledStatement& cs,
                                   mal::MalContext* ctx);

  Status ApplyInsert(const CompiledStatement& cs, const ResultSet& rows);
  Status ApplyUpdate(const CompiledStatement& cs, const ResultSet& rows);
  Status ApplyDelete(const CompiledStatement& cs, const ResultSet& rows);
  Status ApplyCreateAs(const CompiledStatement& cs, const ResultSet& rows);

  catalog::Catalog* cat_;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_EXECUTOR_H_
