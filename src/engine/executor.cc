#include "src/engine/executor.h"

#include "src/array/coerce.h"
#include "src/array/series.h"
#include "src/common/string_util.h"
#include "src/gdk/kernels.h"
#include "src/mal/interpreter.h"
#include "src/obs/trace.h"

namespace sciql {
namespace engine {

using gdk::BAT;
using gdk::BATPtr;
using gdk::ScalarValue;

namespace {

ResultSet SingleCount(int64_t n) {
  ResultSet rs;
  auto b = BAT::Make(gdk::PhysType::kLng);
  (void)b->Append(ScalarValue::Lng(n));
  rs.AddColumn("rows", false, std::move(b));
  return rs;
}

}  // namespace

Result<ResultSet> Executor::AssembleResult(const CompiledStatement& cs,
                                           mal::MalContext* ctx) {
  // Row count: BAT results fix it (and must agree); all-scalar results
  // produce a single row.
  size_t nrows = 1;
  bool any_bat = false;
  for (const auto& rc : cs.prog.results()) {
    const mal::MalValue& v = ctx->Reg(rc.reg);
    if (!v.IsBat()) continue;
    if (!any_bat) {
      nrows = v.bat->Count();
      any_bat = true;
    } else if (v.bat->Count() != nrows) {
      return Status::Internal(
          StrFormat("result column %s has %zu rows, expected %zu",
                    rc.name.c_str(), v.bat->Count(), nrows));
    }
  }

  ResultSet rs;
  for (const auto& rc : cs.prog.results()) {
    const mal::MalValue& v = ctx->Reg(rc.reg);
    if (v.IsBat()) {
      // Results must not alias mutable catalog storage. A register that is
      // the sole owner of its BAT holds a value freshly computed by this
      // program (catalog columns are co-owned by their object, which the
      // pinned version keeps alive), so it can be adopted without the deep
      // copy — sorted/projected columns of large results move instead of
      // cloning.
      rs.AddColumn(rc.name, rc.is_dim,
                   v.bat.use_count() == 1 ? v.bat : v.bat->CloneData());
    } else if (v.IsScalar()) {
      rs.AddColumn(rc.name, rc.is_dim, BAT::MakeConst(v.scalar, nrows));
    } else {
      return Status::Internal(
          StrFormat("result column %s has no value", rc.name.c_str()));
    }
  }
  return rs;
}

Result<ResultSet> Executor::Execute(const CompiledStatement& cs) {
  if (cs.action == CompiledStatement::Action::kDdlDisplay) {
    return Status::Internal("DDL display programs are not executable");
  }
  ResultSet rows;
  {
    mal::MalContext ctx(version_.get());
    ctx.trace = trace_;
    SCIQL_RETURN_NOT_OK(mal::MalEngine::Global().Run(cs.prog, &ctx));
    SCIQL_ASSIGN_OR_RETURN(rows, AssembleResult(cs, &ctx));
  }
  if (trace_ != nullptr) {
    trace_->SetRowsReturned(static_cast<uint64_t>(rows.NumRows()));
  }
  if (cs.action == CompiledStatement::Action::kQuery) return rows;

  // Write actions: drop our own pin first — any outstanding pin (including
  // this one) forces the catalog onto the copy-on-write path, and the read
  // pipeline is done with the snapshot.
  version_.reset();
  if (cat_ == nullptr) {
    return Status::Internal("mutating statement executed without a catalog");
  }

  switch (cs.action) {
    case CompiledStatement::Action::kInsert:
      SCIQL_RETURN_NOT_OK(ApplyInsert(cs, rows));
      return SingleCount(static_cast<int64_t>(rows.NumRows()));
    case CompiledStatement::Action::kUpdate:
      SCIQL_RETURN_NOT_OK(ApplyUpdate(cs, rows));
      return SingleCount(static_cast<int64_t>(rows.NumRows()));
    case CompiledStatement::Action::kDelete:
      SCIQL_RETURN_NOT_OK(ApplyDelete(cs, rows));
      return SingleCount(static_cast<int64_t>(rows.NumRows()));
    case CompiledStatement::Action::kCreateTableAs:
    case CompiledStatement::Action::kCreateArrayAs:
      SCIQL_RETURN_NOT_OK(ApplyCreateAs(cs, rows));
      return SingleCount(static_cast<int64_t>(rows.NumRows()));
    default:
      break;
  }
  return Status::Internal("unreachable executor action");
}

Status Executor::ApplyInsert(const CompiledStatement& cs,
                             const ResultSet& rows) {
  SCIQL_ASSIGN_OR_RETURN(catalog::Catalog::WriteHandle h,
                         cat_->BeginWrite(cs.target));
  if (h.is_array()) {
    catalog::ArrayObject* arr = h.array();
    const array::ArrayDesc& desc = arr->desc;
    // Map result columns onto dimensions and attributes.
    std::vector<int> dim_src(desc.ndims(), -1);
    std::vector<std::pair<int, int>> attr_src;  // (result col, attr idx)
    if (!cs.insert_columns.empty()) {
      if (cs.insert_columns.size() != rows.NumColumns()) {
        return Status::InvalidArgument(
            "INSERT column list arity differs from the row source");
      }
      for (size_t i = 0; i < cs.insert_columns.size(); ++i) {
        const std::string& col = cs.insert_columns[i];
        int d = desc.DimIndex(col);
        if (d >= 0) {
          dim_src[static_cast<size_t>(d)] = static_cast<int>(i);
          continue;
        }
        int a = desc.AttrIndex(col);
        if (a < 0) {
          return Status::BindError(StrFormat("array %s has no column %s",
                                             cs.target.c_str(), col.c_str()));
        }
        attr_src.emplace_back(static_cast<int>(i), a);
      }
    } else {
      // Positional: dimension-flagged result columns feed the dimensions in
      // order; the rest feed the attributes in order.
      std::vector<size_t> dims_found, attrs_found;
      for (size_t i = 0; i < rows.NumColumns(); ++i) {
        if (rows.column(i).is_dim) {
          dims_found.push_back(i);
        } else {
          attrs_found.push_back(i);
        }
      }
      if (dims_found.empty() && rows.NumColumns() >= desc.ndims()) {
        // No [dim] markers: the leading columns are the dimensions.
        for (size_t d = 0; d < desc.ndims(); ++d) dims_found.push_back(d);
        attrs_found.clear();
        for (size_t i = desc.ndims(); i < rows.NumColumns(); ++i) {
          attrs_found.push_back(i);
        }
      }
      if (dims_found.size() != desc.ndims()) {
        return Status::InvalidArgument(
            StrFormat("INSERT into array %s needs %zu dimension columns",
                      cs.target.c_str(), desc.ndims()));
      }
      for (size_t d = 0; d < desc.ndims(); ++d) {
        dim_src[d] = static_cast<int>(dims_found[d]);
      }
      if (attrs_found.size() > desc.nattrs()) {
        return Status::InvalidArgument("too many attribute columns in INSERT");
      }
      for (size_t a = 0; a < attrs_found.size(); ++a) {
        attr_src.emplace_back(static_cast<int>(attrs_found[a]),
                              static_cast<int>(a));
      }
    }

    std::vector<BATPtr> dim_casts;
    std::vector<const BAT*> dim_vals;
    for (size_t d = 0; d < desc.ndims(); ++d) {
      if (dim_src[d] < 0) {
        return Status::InvalidArgument(
            StrFormat("INSERT misses dimension %s", desc.dims()[d].name.c_str()));
      }
      const BATPtr& b = rows.column(static_cast<size_t>(dim_src[d])).data;
      if (b->type() != gdk::PhysType::kInt &&
          b->type() != gdk::PhysType::kLng) {
        SCIQL_ASSIGN_OR_RETURN(BATPtr c,
                               gdk::CastBat(*b, gdk::PhysType::kLng));
        dim_casts.push_back(c);
        dim_vals.push_back(dim_casts.back().get());
      } else {
        dim_vals.push_back(b.get());
      }
    }
    SCIQL_ASSIGN_OR_RETURN(BATPtr pos, array::CellPositions(desc, dim_vals));
    for (const auto& [src, attr] : attr_src) {
      SCIQL_RETURN_NOT_OK(array::ScatterIntoAttr(
          arr->attr_bats[static_cast<size_t>(attr)].get(), *pos,
          *rows.column(static_cast<size_t>(src)).data));
    }
    return h.Commit();
  }

  // Table insert.
  catalog::TableObject* tab = h.table();
  size_t nrows = rows.NumRows();
  std::vector<int> src(tab->columns.size(), -1);
  if (!cs.insert_columns.empty()) {
    if (cs.insert_columns.size() != rows.NumColumns()) {
      return Status::InvalidArgument(
          "INSERT column list arity differs from the row source");
    }
    for (size_t i = 0; i < cs.insert_columns.size(); ++i) {
      int c = tab->ColumnIndex(cs.insert_columns[i]);
      if (c < 0) {
        return Status::BindError(
            StrFormat("table %s has no column %s", cs.target.c_str(),
                      cs.insert_columns[i].c_str()));
      }
      src[static_cast<size_t>(c)] = static_cast<int>(i);
    }
  } else {
    if (rows.NumColumns() != tab->columns.size()) {
      return Status::InvalidArgument(StrFormat(
          "INSERT provides %zu columns, table %s has %zu",
          rows.NumColumns(), cs.target.c_str(), tab->columns.size()));
    }
    for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<int>(i);
  }
  for (size_t c = 0; c < tab->columns.size(); ++c) {
    BAT* target = tab->bats[c].get();
    if (src[c] < 0) {
      // Unlisted columns take their default (NULL when unspecified).
      ScalarValue def = tab->columns[c].default_value;
      if (def.is_null) def = ScalarValue::Null(tab->columns[c].type);
      for (size_t r = 0; r < nrows; ++r) {
        SCIQL_RETURN_NOT_OK(target->Append(def));
      }
      continue;
    }
    const BATPtr& vals = rows.column(static_cast<size_t>(src[c])).data;
    if (vals->type() == target->type()) {
      SCIQL_RETURN_NOT_OK(target->AppendBat(*vals));
    } else {
      for (size_t r = 0; r < nrows; ++r) {
        SCIQL_RETURN_NOT_OK(target->Append(vals->GetScalar(r)));
      }
    }
  }
  return h.Commit();
}

Status Executor::ApplyUpdate(const CompiledStatement& cs,
                             const ResultSet& rows) {
  int pos_col = rows.ColumnIndex("__pos");
  if (pos_col < 0) return Status::Internal("UPDATE result lacks __pos");
  const BATPtr& pos = rows.column(static_cast<size_t>(pos_col)).data;

  SCIQL_ASSIGN_OR_RETURN(catalog::Catalog::WriteHandle h,
                         cat_->BeginWrite(cs.target));
  if (h.is_array()) {
    catalog::ArrayObject* arr = h.array();
    for (const std::string& col : cs.set_columns) {
      int vcol = rows.ColumnIndex("__set_" + col);
      if (vcol < 0) return Status::Internal("missing UPDATE value column");
      int a = arr->desc.AttrIndex(col);
      SCIQL_RETURN_NOT_OK(array::ScatterIntoAttr(
          arr->attr_bats[static_cast<size_t>(a)].get(), *pos,
          *rows.column(static_cast<size_t>(vcol)).data));
    }
    return h.Commit();
  }

  catalog::TableObject* tab = h.table();
  for (const std::string& col : cs.set_columns) {
    int vcol = rows.ColumnIndex("__set_" + col);
    if (vcol < 0) return Status::Internal("missing UPDATE value column");
    int c = tab->ColumnIndex(col);
    BAT* target = tab->bats[static_cast<size_t>(c)].get();
    const BATPtr& vals = rows.column(static_cast<size_t>(vcol)).data;
    for (size_t i = 0; i < pos->Count(); ++i) {
      gdk::oid_t p = pos->oids()[i];
      if (p == gdk::kOidNil) continue;
      SCIQL_RETURN_NOT_OK(target->Set(p, vals->GetScalar(i)));
    }
  }
  return h.Commit();
}

Status Executor::ApplyDelete(const CompiledStatement& cs,
                             const ResultSet& rows) {
  int pos_col = rows.ColumnIndex("__pos");
  if (pos_col < 0) return Status::Internal("DELETE result lacks __pos");
  const BATPtr& pos = rows.column(static_cast<size_t>(pos_col)).data;

  SCIQL_ASSIGN_OR_RETURN(catalog::Catalog::WriteHandle h,
                         cat_->BeginWrite(cs.target));
  if (h.is_array()) {
    // DELETE on arrays punches holes: all attributes become NULL
    // (paper Sec. 2: "The DELETE statement creates holes").
    catalog::ArrayObject* arr = h.array();
    for (size_t a = 0; a < arr->attr_bats.size(); ++a) {
      SCIQL_RETURN_NOT_OK(array::ScatterConstIntoAttr(
          arr->attr_bats[a].get(), *pos,
          ScalarValue::Null(arr->desc.attrs()[a].type)));
    }
    return h.Commit();
  }
  SCIQL_RETURN_NOT_OK(h.table()->DeleteRows(*pos));
  return h.Commit();
}

Status Executor::ApplyCreateAs(const CompiledStatement& cs,
                               const ResultSet& rows) {
  if (cs.action == CompiledStatement::Action::kCreateTableAs) {
    // Build the table privately, then publish it in one step: snapshots
    // never observe a half-filled object, and the fresh BATs re-intern
    // string values into their own heaps.
    auto t = std::make_shared<catalog::TableObject>();
    for (size_t i = 0; i < rows.NumColumns(); ++i) {
      array::AttrDesc ad;
      ad.name = rows.column(i).name;
      ad.type = rows.column(i).data->type();
      ad.default_value = ScalarValue::Null(ad.type);
      t->columns.push_back(std::move(ad));
      t->bats.push_back(BAT::Make(rows.column(i).data->type()));
      SCIQL_RETURN_NOT_OK(t->bats[i]->AppendBat(*rows.column(i).data));
    }
    if (t->columns.empty()) {
      return Status::InvalidArgument("CREATE TABLE AS needs at least one column");
    }
    return cat_->AdoptTable(cs.target, std::move(t));
  }

  // CREATE ARRAY AS SELECT: coerce the rows to an array; the dimension
  // columns are the [dim]-flagged projections.
  std::vector<const BAT*> dim_cols;
  std::vector<std::string> dim_names;
  std::vector<const BAT*> attr_cols;
  std::vector<std::string> attr_names;
  std::vector<ScalarValue> attr_defaults;
  for (size_t i = 0; i < rows.NumColumns(); ++i) {
    const auto& c = rows.column(i);
    if (c.is_dim) {
      dim_cols.push_back(c.data.get());
      dim_names.push_back(c.name);
    } else {
      attr_cols.push_back(c.data.get());
      attr_names.push_back(c.name);
      attr_defaults.push_back(ScalarValue::Null(c.data->type()));
    }
  }
  if (dim_cols.empty()) {
    return Status::InvalidArgument(
        "CREATE ARRAY AS SELECT requires [dim] projections in the select "
        "list");
  }
  // Dimension columns must be integral.
  std::vector<BATPtr> casts;
  for (auto& b : dim_cols) {
    if (b->type() != gdk::PhysType::kInt && b->type() != gdk::PhysType::kLng) {
      SCIQL_ASSIGN_OR_RETURN(BATPtr c, gdk::CastBat(*b, gdk::PhysType::kLng));
      casts.push_back(c);
      b = casts.back().get();
    }
  }
  SCIQL_ASSIGN_OR_RETURN(
      array::MaterializedArray arr,
      array::TableToArray(dim_cols, dim_names, attr_cols, attr_names,
                          attr_defaults));
  return cat_->AdoptArray(cs.target, std::move(arr));
}

}  // namespace engine
}  // namespace sciql
