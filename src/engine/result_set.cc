#include "src/engine/result_set.h"

#include <algorithm>
#include <map>

#include "src/common/string_util.h"

namespace sciql {
namespace engine {

void ResultSet::AddColumn(std::string name, bool is_dim, gdk::BATPtr data) {
  cols_.push_back(Column{std::move(name), is_dim, std::move(data)});
}

int ResultSet::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (EqualsIgnoreCase(cols_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

bool ResultSet::IsArrayResult() const {
  for (const auto& c : cols_) {
    if (c.is_dim) return true;
  }
  return false;
}

std::string ResultSet::ToString(size_t max_rows) const {
  if (cols_.empty()) return "(empty result)\n";
  size_t rows = NumRows();
  size_t shown = std::min(rows, max_rows);

  std::vector<std::vector<std::string>> cells(shown + 1);
  for (const auto& c : cols_) {
    cells[0].push_back(c.is_dim ? "[" + c.name + "]" : c.name);
  }
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      gdk::ScalarValue v = Value(r, c);
      std::string s = v.ToString();
      if (v.type == gdk::PhysType::kStr && !v.is_null) s = v.s;  // unquoted
      cells[r + 1].push_back(std::move(s));
    }
  }
  std::vector<size_t> width(cols_.size(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      if (c > 0) out += " | ";
      std::string& s = cells[r][c];
      out += std::string(width[c] - s.size(), ' ') + s;
    }
    out += "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < width.size(); ++c) {
        total += width[c] + (c > 0 ? 3 : 0);
      }
      out += std::string(total, '-') + "\n";
    }
  }
  if (shown < rows) {
    out += StrFormat("... (%zu rows total)\n", rows);
  }
  return out;
}

Result<std::string> ResultSet::ToGrid(int value_col) const {
  std::vector<size_t> dim_cols;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].is_dim) dim_cols.push_back(i);
  }
  if (dim_cols.size() != 2) {
    return Status::InvalidArgument(
        "ToGrid requires exactly two dimension columns");
  }
  size_t vcol = 0;
  if (value_col >= 0) {
    vcol = static_cast<size_t>(value_col);
  } else {
    bool found = false;
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (!cols_[i].is_dim) {
        vcol = i;
        found = true;
        break;
      }
    }
    if (!found) return Status::InvalidArgument("no value column");
  }

  std::map<std::pair<int64_t, int64_t>, std::string> grid;
  std::vector<int64_t> xs, ys;
  for (size_t r = 0; r < NumRows(); ++r) {
    gdk::ScalarValue xv = Value(r, dim_cols[0]);
    gdk::ScalarValue yv = Value(r, dim_cols[1]);
    if (xv.is_null || yv.is_null) continue;
    int64_t x = xv.AsInt64();
    int64_t y = yv.AsInt64();
    xs.push_back(x);
    ys.push_back(y);
    gdk::ScalarValue v = Value(r, vcol);
    grid[{x, y}] = v.is_null ? "null"
                   : v.type == gdk::PhysType::kDbl
                       ? FormatDouble(v.d)
                       : v.ToString();
  }
  if (xs.empty()) return std::string("(empty grid)\n");
  auto [xmin_it, xmax_it] = std::minmax_element(xs.begin(), xs.end());
  auto [ymin_it, ymax_it] = std::minmax_element(ys.begin(), ys.end());
  size_t width = 4;
  for (const auto& [k, s] : grid) width = std::max(width, s.size());

  std::string out;
  for (int64_t y = *ymax_it; y >= *ymin_it; --y) {
    for (int64_t x = *xmin_it; x <= *xmax_it; ++x) {
      auto it = grid.find({x, y});
      std::string s = it == grid.end() ? "null" : it->second;
      out += std::string(width - s.size() + (x > *xmin_it ? 1 : 0), ' ') + s;
    }
    out += "\n";
  }
  return out;
}

}  // namespace engine
}  // namespace sciql
