// The public entry point of monetlite/SciQL: an embedded database that
// parses, compiles, optimizes and executes SQL/SciQL statements.
//
// Typical use:
//
//   sciql::engine::Database db;
//   auto st = db.Run(
//       "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], "
//       "y INT DIMENSION[0:1:4], v INT DEFAULT 0)");
//   auto rs = db.Query("SELECT [x], [y], AVG(v) FROM matrix "
//                      "GROUP BY matrix[x:x+2][y:y+2] "
//                      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");

#ifndef SCIQL_ENGINE_DATABASE_H_
#define SCIQL_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/result_set.h"
#include "src/sql/ast.h"
#include "src/storage/storage_engine.h"

namespace sciql {
namespace engine {

/// \brief An embedded monetlite database instance with SciQL support.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// \brief Execute one or more ';'-separated statements; returns the result
  /// of the last one. DML returns a one-row `rows` count; EXPLAIN returns
  /// the optimized MAL program text.
  Result<ResultSet> Execute(const std::string& sql);

  /// \brief Alias of Execute for read-only use.
  Result<ResultSet> Query(const std::string& sql) { return Execute(sql); }

  /// \brief Execute and discard the result (DDL/DML convenience).
  Status Run(const std::string& sql);

  /// \brief The optimized MAL program for a statement, as text.
  Result<std::string> ExplainText(const std::string& sql);

  // -------------------------------------------------------------------------
  // Durable storage (see docs/storage.md)
  // -------------------------------------------------------------------------

  /// \brief Attach the database to the storage directory `dir` (created on
  /// first open). Replaces the current session state: attached storage is
  /// checkpointed and detached, the in-memory catalog is cleared, then the
  /// directory's manifest is loaded (columns lazily) and its write-ahead log
  /// replayed. After Open, every committed mutating statement is WAL-logged
  /// and pushed toward disk per `options.durability` (default: fsync per
  /// statement). `options.env` injects a filesystem seam for fault testing.
  Status Open(const std::string& dir, const storage::OpenOptions& options = {});

  /// \brief Write dirty objects and a new manifest, then reset the WAL.
  /// On failure the storage is detached (after best-effort loading of every
  /// object, so the in-memory session keeps serving them) and the directory
  /// is left at its last committed manifest + logged WAL prefix — never a
  /// hybrid referencing partially-written files.
  Status Checkpoint();

  /// \brief Checkpoint, detach from storage and clear the in-memory catalog,
  /// returning the Database to a fresh empty session.
  Status Close();

  bool HasStorage() const { return storage_ != nullptr; }
  /// The attached storage engine (nullptr when in-memory only); exposed for
  /// tests and tooling that inspect storage statistics.
  storage::StorageEngine* storage_engine() { return storage_.get(); }

  /// \brief Process-wide storage I/O counters (WAL appends/fsyncs, atomic
  /// writes, and best-effort directory fsyncs that failed and were swallowed
  /// — `dir_fsync_failed` makes those visible instead of silent).
  static const storage::IoStats& IoTelemetry() { return storage::GetIoStats(); }

  /// \brief Set the kernel thread count shared by every Database in this
  /// process (morsel-parallel GDK kernels; see docs/execution.md). The
  /// default comes from SCIQL_THREADS or the hardware concurrency.
  static void SetExecutionThreads(int n);
  /// \brief The current kernel thread count.
  static int ExecutionThreads();

  catalog::Catalog* catalog() { return &cat_; }

 private:
  /// Best-effort load of every object, then drop the storage engine: the
  /// shared failure path that keeps the in-memory session fully queryable
  /// while the directory stays at its last consistent state.
  void DetachStorageAfterFailure();

  Result<ResultSet> ExecuteStatement(const sql::Statement& stmt);
  Result<ResultSet> ExecuteStatementNoLog(const sql::Statement& stmt);
  Result<ResultSet> ExecuteDdl(const sql::Statement& stmt);
  Result<std::string> BuildExplain(const sql::Statement& stmt);

  // Declaration order matters: storage_ is destroyed before cat_, and its
  // destructor detaches the lazy loader that captures the engine pointer.
  catalog::Catalog cat_;
  std::unique_ptr<storage::StorageEngine> storage_;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_DATABASE_H_
