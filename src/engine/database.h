// The public entry point of monetlite/SciQL: an embedded database that
// parses, compiles, optimizes and executes SQL/SciQL statements.
//
// Typical use:
//
//   sciql::engine::Database db;
//   auto st = db.Run(
//       "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], "
//       "y INT DIMENSION[0:1:4], v INT DEFAULT 0)");
//   auto rs = db.Query("SELECT [x], [y], AVG(v) FROM matrix "
//                      "GROUP BY matrix[x:x+2][y:y+2] "
//                      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
//
// Database is a thin facade: a DatabaseCore (versioned catalog + storage +
// writer mutex) plus one default Session. Multi-user access goes through
// `core().CreateSession()` — each session reads its own pinned catalog
// snapshot while at most one writer commits at a time. See
// docs/architecture.md, "Core, sessions and snapshots".

#ifndef SCIQL_ENGINE_DATABASE_H_
#define SCIQL_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/database_core.h"
#include "src/engine/result_set.h"
#include "src/engine/session.h"
#include "src/storage/storage_engine.h"

namespace sciql {
namespace engine {

/// \brief An embedded monetlite database instance with SciQL support:
/// a DatabaseCore plus its default session, presented as one object.
class Database {
 public:
  Database() : session_(core_.CreateSession()) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// \brief Execute one or more ';'-separated statements; returns the result
  /// of the last one. DML returns a one-row `rows` count; EXPLAIN returns
  /// the optimized MAL program text.
  Result<ResultSet> Execute(const std::string& sql) {
    return session_->Execute(sql);
  }

  /// \brief Alias of Execute for read-only use.
  Result<ResultSet> Query(const std::string& sql) { return Execute(sql); }

  /// \brief Execute and discard the result (DDL/DML convenience).
  Status Run(const std::string& sql) { return session_->Run(sql); }

  /// \brief The optimized MAL program for a statement, as text.
  Result<std::string> ExplainText(const std::string& sql) {
    return session_->ExplainText(sql);
  }

  // -------------------------------------------------------------------------
  // Durable storage (see docs/storage.md)
  // -------------------------------------------------------------------------

  /// \brief Attach the database to the storage directory `dir` (created on
  /// first open). Replaces the current session state: attached storage is
  /// checkpointed and detached, the in-memory catalog is cleared, then the
  /// directory's manifest is loaded (columns lazily) and its write-ahead log
  /// replayed. After Open, every committed mutating statement is WAL-logged
  /// and pushed toward disk per `options.durability` (default: fsync per
  /// statement). `options.env` injects a filesystem seam for fault testing.
  Status Open(const std::string& dir,
              const storage::OpenOptions& options = {}) {
    return core_.Open(dir, options);
  }

  /// \brief Write dirty objects and a new manifest, then reset the WAL.
  /// On failure the storage is detached (after best-effort loading of every
  /// object, so the in-memory session keeps serving them) and the directory
  /// is left at its last committed manifest + logged WAL prefix — never a
  /// hybrid referencing partially-written files.
  Status Checkpoint() { return core_.Checkpoint(); }

  /// \brief Checkpoint, detach from storage and clear the in-memory catalog,
  /// returning the Database to a fresh empty session.
  Status Close() { return core_.Close(); }

  bool HasStorage() const { return core_.HasStorage(); }
  /// The attached storage engine (nullptr when in-memory only); exposed for
  /// tests and tooling that inspect storage statistics.
  storage::StorageEngine* storage_engine() { return core_.storage_engine(); }

  /// \brief Process-wide storage I/O counters (WAL appends/fsyncs, atomic
  /// writes, and best-effort directory fsyncs that failed and were swallowed
  /// — `dir_fsync_failed` makes those visible instead of silent).
  static const storage::IoStats& IoTelemetry() { return storage::GetIoStats(); }

  /// \brief Set the kernel thread count shared by every Database in this
  /// process (morsel-parallel GDK kernels; see docs/execution.md). The
  /// default comes from SCIQL_THREADS or the hardware concurrency.
  static void SetExecutionThreads(int n);
  /// \brief The current kernel thread count.
  static int ExecutionThreads();

  catalog::Catalog* catalog() { return core_.catalog(); }

  /// \brief The shared core behind this facade: create further sessions with
  /// `core().CreateSession()` to read/write concurrently with this one.
  DatabaseCore& core() { return core_; }

  /// \brief The facade's own default session (for snapshot pinning etc.).
  Session& session() { return *session_; }

 private:
  // Declaration order matters: the default session is destroyed before the
  // core it points into.
  DatabaseCore core_;
  std::unique_ptr<Session> session_;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_DATABASE_H_
