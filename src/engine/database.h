// The public entry point of monetlite/SciQL: an embedded database that
// parses, compiles, optimizes and executes SQL/SciQL statements.
//
// Typical use:
//
//   sciql::engine::Database db;
//   auto st = db.Run(
//       "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], "
//       "y INT DIMENSION[0:1:4], v INT DEFAULT 0)");
//   auto rs = db.Query("SELECT [x], [y], AVG(v) FROM matrix "
//                      "GROUP BY matrix[x:x+2][y:y+2] "
//                      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");

#ifndef SCIQL_ENGINE_DATABASE_H_
#define SCIQL_ENGINE_DATABASE_H_

#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/result_set.h"
#include "src/sql/ast.h"

namespace sciql {
namespace engine {

/// \brief An embedded monetlite database instance with SciQL support.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// \brief Execute one or more ';'-separated statements; returns the result
  /// of the last one. DML returns a one-row `rows` count; EXPLAIN returns
  /// the optimized MAL program text.
  Result<ResultSet> Execute(const std::string& sql);

  /// \brief Alias of Execute for read-only use.
  Result<ResultSet> Query(const std::string& sql) { return Execute(sql); }

  /// \brief Execute and discard the result (DDL/DML convenience).
  Status Run(const std::string& sql);

  /// \brief The optimized MAL program for a statement, as text.
  Result<std::string> ExplainText(const std::string& sql);

  /// \brief Set the kernel thread count shared by every Database in this
  /// process (morsel-parallel GDK kernels; see docs/execution.md). The
  /// default comes from SCIQL_THREADS or the hardware concurrency.
  static void SetExecutionThreads(int n);
  /// \brief The current kernel thread count.
  static int ExecutionThreads();

  catalog::Catalog* catalog() { return &cat_; }

 private:
  Result<ResultSet> ExecuteStatement(const sql::Statement& stmt);
  Result<ResultSet> ExecuteDdl(const sql::Statement& stmt);
  Result<std::string> BuildExplain(const sql::Statement& stmt);

  catalog::Catalog cat_;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_DATABASE_H_
