// Session: a per-user handle on a shared DatabaseCore.
//
// Reads pin an immutable catalog version at statement start (or hold one
// across statements via PinSnapshot) and execute with zero locks; mutating
// statements serialise on the core's writer mutex and publish a new catalog
// version. Any number of sessions may read while one writes — see
// docs/architecture.md, "Core, sessions and snapshots".

#ifndef SCIQL_ENGINE_SESSION_H_
#define SCIQL_ENGINE_SESSION_H_

#include <cstdint>
#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/result_set.h"
#include "src/sql/ast.h"

namespace sciql {
namespace mal {
class MalProgram;
}  // namespace mal
namespace obs {
class StatementTrace;
}  // namespace obs

namespace engine {

class DatabaseCore;

/// \brief One user's handle: the Execute/Query/Run/ExplainText surface.
///
/// A session is NOT itself thread-safe — each session belongs to one thread
/// (or is externally serialised); concurrency comes from running many
/// sessions of the same core in parallel. Sessions must not outlive their
/// DatabaseCore.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// \brief Execute one or more ';'-separated statements; returns the result
  /// of the last one. DML returns a one-row `rows` count; EXPLAIN returns
  /// the optimized MAL program text.
  Result<ResultSet> Execute(const std::string& sql);

  /// \brief Alias of Execute for read-only use.
  Result<ResultSet> Query(const std::string& sql) { return Execute(sql); }

  /// \brief Execute and discard the result (DDL/DML convenience).
  Status Run(const std::string& sql);

  /// \brief The optimized MAL program for a statement, as text.
  Result<std::string> ExplainText(const std::string& sql);

  // -------------------------------------------------------------------------
  // Explicit snapshot pinning
  // -------------------------------------------------------------------------

  /// \brief Pin the current catalog version: every read until Unpin() sees
  /// exactly this version, bit-identically, no matter what writers publish
  /// meanwhile. Mutating statements are refused while pinned.
  void PinSnapshot();

  /// \brief Release the pinned snapshot; reads return to pin-per-statement.
  void Unpin();

  bool IsPinned() const { return pinned_ != nullptr; }

  /// \brief The pinned version id, or the current version id when unpinned.
  uint64_t SnapshotVersionId() const;

  /// \brief Stable id of this session on its core (1, 2, ...; 0 for the
  /// internal WAL replay session). Appears in the slow-query log.
  uint64_t id() const { return id_; }

 private:
  friend class DatabaseCore;

  /// `counted` sessions appear in the core's gauges and flip the catalog
  /// into shared (always-COW) mode when a second one is created; the WAL
  /// replay session is uncounted and runs without the writer lock (Open
  /// already holds it).
  Session(DatabaseCore* core, bool counted, bool replay, uint64_t id);

  /// The per-statement wrapper: latency/rows histograms, executed/failed
  /// counters, and — when the core's slow-query log is enabled — a
  /// StatementTrace feeding its threshold check.
  Result<ResultSet> ExecuteStatement(const sql::Statement& stmt);
  /// The pre-observability dispatch: read path vs writer-lock + WAL path.
  Result<ResultSet> DispatchStatement(const sql::Statement& stmt);
  Result<ResultSet> ExecuteStatementNoLog(const sql::Statement& stmt);
  Result<ResultSet> ExecuteDdl(const sql::Statement& stmt);
  Result<std::string> BuildExplain(const sql::Statement& stmt);

  /// Pin, compile, optimize and run `stmt`, timing the bind/optimize/
  /// execute spans into `trace` (may be null) and attaching it to the MAL
  /// run. `prog_out`, if non-null, receives the optimized program for
  /// rendering after execution.
  Result<ResultSet> CompileAndRun(const sql::Statement& stmt,
                                  obs::StatementTrace* trace,
                                  mal::MalProgram* prog_out);

  /// EXPLAIN ANALYZE: execute the (SELECT-only) statement with a trace and
  /// return the annotated plan as a one-column result set.
  Result<ResultSet> AnalyzeStatement(const sql::Statement& stmt);

  DatabaseCore* core_;
  bool counted_;
  bool replay_;
  uint64_t id_ = 0;
  catalog::CatalogVersionPtr pinned_;
  /// Trace of the statement currently dispatching (slow-query logging);
  /// null when the slow log is off. Set/cleared by ExecuteStatement.
  obs::StatementTrace* cur_trace_ = nullptr;
  /// Wall time of the last sql::Parse() in Execute(), attributed as the
  /// parse span of each statement of that batch.
  uint64_t last_parse_micros_ = 0;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_SESSION_H_
