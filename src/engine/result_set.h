// Columnar query results with table- and array-shaped rendering.

#ifndef SCIQL_ENGINE_RESULT_SET_H_
#define SCIQL_ENGINE_RESULT_SET_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/gdk/bat.h"

namespace sciql {
namespace engine {

/// \brief A query result: named, aligned columns. Columns flagged `is_dim`
/// came from dimension projections ([x]); they carry the array
/// interpretation of the result (paper Sec. 2: "producing an array if the
/// projection list contains dimensional expressions").
class ResultSet {
 public:
  struct Column {
    std::string name;
    bool is_dim = false;
    gdk::BATPtr data;
  };

  ResultSet() = default;

  void AddColumn(std::string name, bool is_dim, gdk::BATPtr data);

  size_t NumColumns() const { return cols_.size(); }
  size_t NumRows() const { return cols_.empty() ? 0 : cols_[0].data->Count(); }
  const Column& column(size_t i) const { return cols_[i]; }
  int ColumnIndex(const std::string& name) const;

  /// \brief Cell accessor (row-major).
  gdk::ScalarValue Value(size_t row, size_t col) const {
    return cols_[col].data->GetScalar(row);
  }

  /// \brief True if any column is a dimension projection.
  bool IsArrayResult() const;

  /// \brief Pretty-print as an aligned text table (the demo GUI's raw
  /// result box).
  std::string ToString(size_t max_rows = 64) const;

  /// \brief Render a 2-dimensional array result as a value grid, the way the
  /// paper's Figure 1 draws matrices: first dimension as columns (x), second
  /// as rows (y), highest y first. `value_col` selects the payload column
  /// (-1: first non-dim column). Cells without a row print as "null".
  Result<std::string> ToGrid(int value_col = -1) const;

 private:
  std::vector<Column> cols_;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_RESULT_SET_H_
