// DatabaseCore: the shared heart of an embedded SciQL database — the
// versioned catalog, the attached storage engine (WAL + heap files), and
// the single-writer mutex. Users talk to it through Session handles
// (CreateSession); the legacy single-user surface lives on the Database
// facade (database.h). See docs/architecture.md.

#ifndef SCIQL_ENGINE_DATABASE_CORE_H_
#define SCIQL_ENGINE_DATABASE_CORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/engine/session.h"
#include "src/storage/env.h"
#include "src/storage/storage_engine.h"

namespace sciql {
namespace engine {

/// \brief Owns catalog + storage + write serialisation for any number of
/// concurrent sessions. Lifecycle operations (Open/Checkpoint/Close) take
/// the writer mutex like any mutation; reader sessions pinned to older
/// catalog versions keep serving them untouched.
class DatabaseCore {
 public:
  /// Construction registers this core's gauges (active sessions, catalog
  /// version, ...) with obs::Metrics() under a `core="<id>"` label;
  /// destruction unregisters them.
  DatabaseCore();
  ~DatabaseCore();
  DatabaseCore(const DatabaseCore&) = delete;
  DatabaseCore& operator=(const DatabaseCore&) = delete;

  /// \brief A new session handle. The second session ever created flips the
  /// catalog into shared mode (every write copies-on-write from then on);
  /// a core that only ever had one session keeps the cheaper in-place write
  /// path. Sessions must be destroyed before the core.
  std::unique_ptr<Session> CreateSession();

  // -------------------------------------------------------------------------
  // Durable storage lifecycle (see docs/storage.md); serialised with writes.
  // -------------------------------------------------------------------------

  /// \brief Attach to storage directory `dir` (created on first open),
  /// replacing current state: attached storage is checkpointed and
  /// detached, the catalog cleared, the manifest loaded (columns lazily)
  /// and the WAL replayed. Must not run concurrently with active statements
  /// on other sessions of this core.
  Status Open(const std::string& dir, const storage::OpenOptions& options = {})
      EXCLUDES(writer_mu_);

  /// \brief Write dirty objects and a new manifest, then reset the WAL.
  /// On failure the storage is detached at its last consistent state.
  Status Checkpoint() EXCLUDES(writer_mu_);

  /// \brief Checkpoint, detach and clear — back to a fresh empty core.
  Status Close() EXCLUDES(writer_mu_);

  bool HasStorage() const EXCLUDES(writer_mu_) {
    common::MutexLock lock(&writer_mu_);
    return storage_ != nullptr;
  }
  /// The returned engine is only safe to use while no Open/Checkpoint/Close
  /// runs concurrently (single-user tooling); only the pointer read itself
  /// is protected here.
  storage::StorageEngine* storage_engine() EXCLUDES(writer_mu_) {
    common::MutexLock lock(&writer_mu_);
    return storage_.get();
  }

  catalog::Catalog* catalog() { return &cat_; }

  // -------------------------------------------------------------------------
  // Telemetry gauges
  // -------------------------------------------------------------------------

  /// \brief Counted sessions currently alive.
  int ActiveSessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }
  /// \brief Counted sessions ever created on this core.
  uint64_t SessionsCreated() const {
    return sessions_created_.load(std::memory_order_relaxed);
  }
  /// \brief The current catalog version id (advances with every commit).
  uint64_t CatalogVersionId() const { return cat_.CurrentVersionId(); }

  /// \brief Process-unique id of this core, the `core` label of its gauges.
  uint64_t core_id() const { return core_id_; }

  // -------------------------------------------------------------------------
  // Slow-query log (see docs/observability.md)
  // -------------------------------------------------------------------------

  struct SlowQueryLogOptions {
    std::string path;  ///< file the JSON lines are appended to
    /// Statements whose total traced time is >= this are logged. 0 logs
    /// every statement (useful for tests and full audit traces).
    uint64_t threshold_micros = 0;
    storage::Env* env = nullptr;  ///< defaults to storage::Env::Default()
  };

  /// \brief Open `path` for append through the Env seam and start logging
  /// one structured JSON line per statement at/above the threshold, from
  /// every session of this core.
  Status EnableSlowQueryLog(const SlowQueryLogOptions& options);

  /// \brief Stop logging and close the file.
  void DisableSlowQueryLog();

  /// \brief The active threshold, or -1 when the log is disabled. Sessions
  /// read this on every statement to decide whether to trace.
  int64_t SlowQueryThresholdMicros() const {
    return slowlog_threshold_.load(std::memory_order_relaxed);
  }

  /// \brief Append one line (newline added here). Best-effort: failures
  /// bump sciql.slowlog.write_failed and disable nothing — the statement
  /// itself already succeeded.
  void AppendSlowQueryLine(const std::string& line);

 private:
  friend class Session;

  /// Best-effort load of every object, then drop the storage engine: the
  /// shared failure path that keeps the in-memory core fully queryable
  /// while the directory stays at its last consistent state.
  void DetachStorageAfterFailure() REQUIRES(writer_mu_);

  /// Append a committed statement's source text to the WAL (no-op without
  /// storage or during replay, when storage_ is still null). On failure the
  /// storage is detached and the durability error returned.
  Status LogCommittedStatement(const std::string& source)
      REQUIRES(writer_mu_);

  // Declaration order matters: storage_ is destroyed before cat_, and its
  // destructor detaches the lazy loader that captures the engine pointer.
  catalog::Catalog cat_;
  std::unique_ptr<storage::StorageEngine> storage_ GUARDED_BY(writer_mu_);
  /// Serialises mutating statements, checkpoints and open/close across all
  /// sessions. Readers never take it. Outermost in the documented lock
  /// order (docs/architecture.md: writer → per-object load → catalog →
  /// storage state → BAT order-index), hence before every other mutex of
  /// this class too.
  mutable common::Mutex writer_mu_ ACQUIRED_BEFORE(slowlog_mu_);
  std::atomic<int> active_sessions_{0};
  std::atomic<uint64_t> sessions_created_{0};

  uint64_t core_id_ = 0;
  /// Serialises slow-query-log appends across sessions.
  common::Mutex slowlog_mu_;
  std::unique_ptr<storage::WritableFile> slowlog_file_
      GUARDED_BY(slowlog_mu_);
  std::atomic<int64_t> slowlog_threshold_{-1};
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_DATABASE_CORE_H_
