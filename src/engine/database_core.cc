#include "src/engine/database_core.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/obs/metrics.h"

namespace sciql {
namespace engine {

namespace {

uint64_t NextCoreId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

DatabaseCore::DatabaseCore() : core_id_(NextCoreId()) {
  std::string label = StrFormat("core=\"%llu\"",
                                static_cast<unsigned long long>(core_id_));
  obs::Metrics().RegisterGauge(
      "sciql.core.active_sessions", "counted sessions currently alive",
      [this]() { return static_cast<uint64_t>(ActiveSessions()); }, label);
  obs::Metrics().RegisterGauge(
      "sciql.core.sessions_created", "counted sessions ever created",
      [this]() { return SessionsCreated(); }, label);
  obs::Metrics().RegisterGauge(
      "sciql.core.catalog_version",
      "current catalog version id (advances with every commit)",
      [this]() { return CatalogVersionId(); }, label);
}

DatabaseCore::~DatabaseCore() {
  // Drop the gauges before any member dies: Unregister blocks until a
  // concurrent scrape finishes, after which no closure can run again.
  std::string label = StrFormat("core=\"%llu\"",
                                static_cast<unsigned long long>(core_id_));
  obs::Metrics().Unregister("sciql.core.active_sessions", label);
  obs::Metrics().Unregister("sciql.core.sessions_created", label);
  obs::Metrics().Unregister("sciql.core.catalog_version", label);
  DisableSlowQueryLog();
}

Status DatabaseCore::EnableSlowQueryLog(const SlowQueryLogOptions& options) {
  storage::Env* env =
      options.env != nullptr ? options.env : storage::Env::Default();
  auto file =
      env->NewWritableFile(options.path, storage::Env::WriteMode::kAppend);
  SCIQL_RETURN_NOT_OK(file.status());
  common::MutexLock lk(&slowlog_mu_);
  slowlog_file_ = std::move(*file);
  slowlog_threshold_.store(static_cast<int64_t>(options.threshold_micros),
                           std::memory_order_relaxed);
  return Status::OK();
}

void DatabaseCore::DisableSlowQueryLog() {
  common::MutexLock lk(&slowlog_mu_);
  slowlog_threshold_.store(-1, std::memory_order_relaxed);
  if (slowlog_file_ != nullptr) {
    (void)slowlog_file_->Close();
    slowlog_file_.reset();
  }
}

void DatabaseCore::AppendSlowQueryLine(const std::string& line) {
  common::MutexLock lk(&slowlog_mu_);
  if (slowlog_file_ == nullptr) return;
  Status st = slowlog_file_->Append(line);
  if (st.ok()) st = slowlog_file_->Append("\n");
  if (st.ok()) st = slowlog_file_->Flush();
  if (st.ok()) {
    obs::Counters().slow_queries_logged.fetch_add(1,
                                                  std::memory_order_relaxed);
  } else {
    obs::Counters().slow_query_log_write_failed.fetch_add(
        1, std::memory_order_relaxed);
  }
}

std::unique_ptr<Session> DatabaseCore::CreateSession() {
  uint64_t created =
      sessions_created_.fetch_add(1, std::memory_order_relaxed) + 1;
  active_sessions_.fetch_add(1, std::memory_order_relaxed);
  if (created >= 2) {
    // Two sessions have existed on this core: from now on every mutation
    // copies-on-write, so result sets and snapshots handed to any session
    // (even one already destroyed) are never written through. Sticky by
    // design — see Catalog::SetSharedMode.
    cat_.SetSharedMode();
  }
  return std::unique_ptr<Session>(
      new Session(this, /*counted=*/true, /*replay=*/false, /*id=*/created));
}

Status DatabaseCore::Open(const std::string& dir,
                          const storage::OpenOptions& options) {
  common::MutexLock lk(&writer_mu_);
  if (storage_ != nullptr) {
    Status parted = storage_->Checkpoint();
    if (!parted.ok()) {
      // The old directory keeps its last consistent state; whatever was not
      // checkpointed is still covered by its WAL. Detach and report rather
      // than staying attached to an engine mid-way through a failed commit.
      DetachStorageAfterFailure();
      return Status::IOError(StrFormat(
          "checkpoint of the previously attached storage failed (%s); it was "
          "detached at its last consistent state and no new directory was "
          "opened — the session continues in-memory",
          parted.ToString().c_str()));
    }
    storage_.reset();
  }
  cat_.Clear();
  // WAL replay runs through an uncounted session: storage_ is still null,
  // so replayed statements are not re-logged, and the session skips the
  // writer mutex (we hold it).
  Session replayer(this, /*counted=*/false, /*replay=*/true, /*id=*/0);
  auto replay = [&replayer](const std::string& sql) -> Status {
    SCIQL_ASSIGN_OR_RETURN([[maybe_unused]] ResultSet rs,
                           replayer.Execute(sql));
    return Status::OK();
  };
  auto opened = storage::StorageEngine::Open(dir, &cat_, replay, options);
  if (!opened.ok()) {
    // A failed open may have declared objects it can no longer load; drop
    // them so the core is a clean in-memory database again.
    cat_.Clear();
    return opened.status();
  }
  storage_ = std::move(*opened);
  return Status::OK();
}

Status DatabaseCore::Checkpoint() {
  common::MutexLock lk(&writer_mu_);
  if (storage_ == nullptr) {
    return Status::InvalidArgument("no storage attached; use Open(dir) first");
  }
  Status st = storage_->Checkpoint();
  if (!st.ok()) {
    // A failed checkpoint may have written some new-epoch files, but the
    // manifest rename never committed them: on disk the directory is still
    // exactly its last consistent state (old manifest + logged WAL prefix).
    // The engine's in-memory dirty tracking is mid-transition though, so
    // retrying could mis-track; detach instead, explicitly.
    DetachStorageAfterFailure();
    return Status::IOError(StrFormat(
        "checkpoint failed (%s); storage detached — the session continues "
        "in-memory only and the database directory keeps its last "
        "consistent state", st.ToString().c_str()));
  }
  return st;
}

void DatabaseCore::DetachStorageAfterFailure() {
  if (storage_ == nullptr) return;
  storage_->LoadAllForDetach();
  storage_.reset();
}

Status DatabaseCore::LogCommittedStatement(const std::string& source) {
  if (storage_ == nullptr || source.empty()) return Status::OK();
  Status logged = storage_->LogStatement(source);
  if (logged.ok()) return Status::OK();
  // The mutation is applied in memory but cannot be made durable, and a
  // retry would double-apply it. Detach the storage so the divergence is
  // explicit: the core keeps working in-memory, the directory stays at its
  // last consistent state (checkpoint + logged prefix).
  DetachStorageAfterFailure();
  return Status::IOError(StrFormat(
      "statement applied in memory but could not be logged for "
      "durability (%s); storage detached — the session continues "
      "in-memory only and the database directory keeps its last "
      "consistent state", logged.ToString().c_str()));
}

Status DatabaseCore::Close() {
  common::MutexLock lk(&writer_mu_);
  if (storage_ == nullptr) {
    return Status::InvalidArgument("no storage attached; use Open(dir) first");
  }
  Status st = storage_->Checkpoint();
  if (!st.ok()) {
    // Everything committed is already WAL-logged, so closing without the
    // checkpoint is still consistent: the next open replays the log.
    storage_.reset();
    cat_.Clear();
    return Status::IOError(StrFormat(
        "close could not checkpoint (%s); the directory keeps its last "
        "consistent state and the next open replays its WAL",
        st.ToString().c_str()));
  }
  storage_.reset();  // detaches the catalog loader
  cat_.Clear();
  return Status::OK();
}

}  // namespace engine
}  // namespace sciql
