#include "src/engine/session.h"

#include <chrono>
#include <utility>

#include "src/common/string_util.h"
#include "src/common/thread_annotations.h"
#include "src/engine/database_core.h"
#include "src/engine/executor.h"
#include "src/engine/mal_gen.h"
#include "src/mal/optimizer.h"
#include "src/mal/verify.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sql/parser.h"

namespace sciql {
namespace engine {

using gdk::ScalarValue;

namespace {

bool IsMutatingStatement(sql::Statement::Kind kind) {
  switch (kind) {
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateArray:
    case sql::Statement::Kind::kDrop:
    case sql::Statement::Kind::kAlterArray:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kUpdate:
    case sql::Statement::Kind::kDelete:
      return true;
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kExplain:
      return false;
  }
  return false;
}

using SteadyClock = std::chrono::steady_clock;

uint64_t MicrosSince(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - start)
          .count());
}

}  // namespace

Session::Session(DatabaseCore* core, bool counted, bool replay, uint64_t id)
    : core_(core), counted_(counted), replay_(replay), id_(id) {}

Session::~Session() {
  if (counted_) {
    core_->active_sessions_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Session::PinSnapshot() { pinned_ = core_->cat_.Pin(); }

void Session::Unpin() { pinned_.reset(); }

uint64_t Session::SnapshotVersionId() const {
  return pinned_ != nullptr ? pinned_->id() : core_->cat_.CurrentVersionId();
}

Result<ResultSet> Session::Execute(const std::string& text) {
  SteadyClock::time_point parse_start = SteadyClock::now();
  auto parsed = sql::Parse(text);
  last_parse_micros_ = MicrosSince(parse_start);
  SCIQL_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                         std::move(parsed));
  if (stmts.empty()) {
    return Status::InvalidArgument("no statement to execute");
  }
  ResultSet last;
  for (const auto& stmt : stmts) {
    SCIQL_ASSIGN_OR_RETURN(last, ExecuteStatement(*stmt));
  }
  return last;
}

Status Session::Run(const std::string& text) {
  SCIQL_ASSIGN_OR_RETURN([[maybe_unused]] ResultSet rs, Execute(text));
  return Status::OK();
}

Result<ResultSet> Session::ExecuteStatement(const sql::Statement& stmt) {
  // Per-statement observability wrapper: every statement is timed into the
  // latency/rows histograms; when the core's slow-query log is enabled a
  // StatementTrace rides along to collect spans and per-operator samples.
  int64_t slow_threshold = core_->SlowQueryThresholdMicros();
  obs::StatementTrace trace;
  cur_trace_ = slow_threshold >= 0 ? &trace : nullptr;
  if (cur_trace_ != nullptr) {
    trace.SetSpanMicros(obs::StatementTrace::kParse, last_parse_micros_);
  }
  SteadyClock::time_point start = SteadyClock::now();
  Result<ResultSet> rs = DispatchStatement(stmt);
  uint64_t micros = MicrosSince(start);
  cur_trace_ = nullptr;
  obs::StatementLatencyHistogram().Observe(micros);
  obs::EngineCounters& counters = obs::Counters();
  if (rs.ok()) {
    counters.statements_executed.fetch_add(1, std::memory_order_relaxed);
    obs::StatementRowsHistogram().Observe(
        static_cast<uint64_t>(rs->NumRows()));
  } else {
    counters.statements_failed.fetch_add(1, std::memory_order_relaxed);
  }
  if (slow_threshold >= 0) {
    // Total = measured wall time (includes lock wait + WAL logging, which
    // the compile/execute spans do not cover).
    trace.SetTotalMicros(last_parse_micros_ + micros);
    if (trace.TotalMicros() >= static_cast<uint64_t>(slow_threshold)) {
      core_->AppendSlowQueryLine(trace.RenderSlowLogLine(stmt.source, id_));
    }
  }
  return rs;
}

Result<ResultSet> Session::DispatchStatement(const sql::Statement& stmt) {
  if (!IsMutatingStatement(stmt.kind)) {
    // Reads never take the writer mutex: they pin a version and go.
    return ExecuteStatementNoLog(stmt);
  }
  if (pinned_ != nullptr) {
    return Status::InvalidArgument(
        "session holds a pinned snapshot; Unpin() before mutating");
  }
  if (replay_) {
    // The WAL replay session skips the writer lock — Open holds it on this
    // thread already — and never re-logs: storage_ is still null.
    return ExecuteStatementNoLog(stmt);
  }
  // One writer at a time across all sessions of the core. The statement
  // commits (applies to the catalog), then with storage attached it becomes
  // durable by logging its source text to the WAL; the next checkpoint
  // folds it into the heap files and resets the log.
  common::MutexLock write_lock(&core_->writer_mu_);
  SCIQL_ASSIGN_OR_RETURN(ResultSet rs, ExecuteStatementNoLog(stmt));
  SCIQL_RETURN_NOT_OK(core_->LogCommittedStatement(stmt.source));
  return rs;
}

Result<ResultSet> Session::ExecuteStatementNoLog(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kExplain: {
      if (stmt.analyze) return AnalyzeStatement(*stmt.inner);
      SCIQL_ASSIGN_OR_RETURN(std::string text, BuildExplain(*stmt.inner));
      ResultSet rs;
      auto col = gdk::BAT::Make(gdk::PhysType::kStr);
      for (const std::string& line : Split(text, '\n')) {
        if (line.empty()) continue;
        SCIQL_RETURN_NOT_OK(col->Append(ScalarValue::Str(line)));
      }
      rs.AddColumn("mal", false, std::move(col));
      return rs;
    }
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateArray:
      if (stmt.select == nullptr) return ExecuteDdl(stmt);
      break;  // AS SELECT goes through the compiler
    case sql::Statement::Kind::kDrop:
    case sql::Statement::Kind::kAlterArray:
      return ExecuteDdl(stmt);
    default:
      break;
  }

  return CompileAndRun(stmt, cur_trace_, nullptr);
}

Result<ResultSet> Session::CompileAndRun(const sql::Statement& stmt,
                                         obs::StatementTrace* trace,
                                         mal::MalProgram* prog_out) {
  // Pin the catalog version this statement sees (the session-held snapshot
  // when pinned). Compile and run lock-free against it; the executor drops
  // its copy of the pin before applying any write.
  catalog::CatalogVersionPtr pin =
      pinned_ != nullptr ? pinned_ : core_->cat_.Pin();
  StatementCompiler compiler(pin.get());
  SteadyClock::time_point t0 = SteadyClock::now();
  SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs, compiler.Compile(stmt));
  if (trace != nullptr) {
    trace->SetSpanMicros(obs::StatementTrace::kBind, MicrosSince(t0));
  }
  // Verify the raw program and the optimizer's rewrite separately, so a
  // malformed plan is attributed to the pass that produced it (on by
  // default in Debug builds; the fuzz oracle forces it on everywhere).
  const bool verify = mal::GetVerifyControls().enabled;
  if (verify) SCIQL_RETURN_NOT_OK(mal::VerifyProgram(cs.prog));
  SteadyClock::time_point t1 = SteadyClock::now();
  SCIQL_RETURN_NOT_OK(mal::Optimize(&cs.prog));
  if (trace != nullptr) {
    trace->SetSpanMicros(obs::StatementTrace::kOptimize, MicrosSince(t1));
  }
  if (verify) SCIQL_RETURN_NOT_OK(mal::VerifyProgram(cs.prog));
  Executor exec(&core_->cat_, std::move(pin));
  exec.SetTrace(trace);
  SteadyClock::time_point t2 = SteadyClock::now();
  Result<ResultSet> rs = exec.Execute(cs);
  if (trace != nullptr) {
    trace->SetSpanMicros(obs::StatementTrace::kExecute, MicrosSince(t2));
  }
  if (prog_out != nullptr) *prog_out = std::move(cs.prog);
  return rs;
}

Result<ResultSet> Session::AnalyzeStatement(const sql::Statement& stmt) {
  if (stmt.kind != sql::Statement::Kind::kSelect) {
    // Executing DDL/DML from here would bypass the writer lock and the WAL;
    // EXPLAIN ANALYZE is a read-only instrument.
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE supports SELECT statements only");
  }
  obs::StatementTrace trace;
  trace.SetSpanMicros(obs::StatementTrace::kParse, last_parse_micros_);
  mal::MalProgram prog;
  SCIQL_ASSIGN_OR_RETURN(ResultSet executed,
                         CompileAndRun(stmt, &trace, &prog));
  (void)executed;  // the annotated plan is the result, not the rows
  std::string text =
      trace.RenderAnalyze(prog, obs::GetTraceControls().redact_timings);
  ResultSet rs;
  auto col = gdk::BAT::Make(gdk::PhysType::kStr);
  for (const std::string& line : Split(text, '\n')) {
    if (line.empty()) continue;
    SCIQL_RETURN_NOT_OK(col->Append(ScalarValue::Str(line)));
  }
  rs.AddColumn("analyze", false, std::move(col));
  return rs;
}

Result<ResultSet> Session::ExecuteDdl(const sql::Statement& stmt) {
  catalog::Catalog& cat = core_->cat_;
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable: {
      std::vector<array::AttrDesc> cols;
      for (const auto& c : stmt.columns) {
        if (c.is_dimension) {
          return Status::InvalidArgument(
              "DIMENSION columns belong to arrays, not tables");
        }
        array::AttrDesc ad;
        ad.name = ToLower(c.name);
        ad.type = c.type;
        ad.default_value =
            c.has_default ? c.default_value : ScalarValue::Null(c.type);
        cols.push_back(std::move(ad));
      }
      SCIQL_RETURN_NOT_OK(cat.CreateTable(stmt.object_name, std::move(cols)));
      return ResultSet();
    }
    case sql::Statement::Kind::kCreateArray: {
      std::vector<array::DimDesc> dims;
      std::vector<array::AttrDesc> attrs;
      for (const auto& c : stmt.columns) {
        if (c.is_dimension) {
          if (c.type != gdk::PhysType::kInt &&
              c.type != gdk::PhysType::kLng) {
            return Status::NotSupported(
                "only integer dimensions are supported");
          }
          if (!c.has_range) {
            return Status::NotSupported(
                "unbounded dimensions arise from coercions; CREATE ARRAY "
                "requires fixed dimension ranges");
          }
          dims.push_back(array::DimDesc{ToLower(c.name), c.range, false});
        } else {
          array::AttrDesc ad;
          ad.name = ToLower(c.name);
          ad.type = c.type;
          ad.default_value =
              c.has_default ? c.default_value : ScalarValue::Null(c.type);
          attrs.push_back(std::move(ad));
        }
      }
      if (dims.empty()) {
        return Status::InvalidArgument(
            "an array needs at least one DIMENSION column");
      }
      SCIQL_RETURN_NOT_OK(cat.CreateArray(
          stmt.object_name,
          array::ArrayDesc(std::move(dims), std::move(attrs))));
      return ResultSet();
    }
    case sql::Statement::Kind::kDrop: {
      bool is_array = cat.IsArray(stmt.object_name);
      if (cat.Exists(stmt.object_name) && is_array != stmt.drop_is_array) {
        return Status::InvalidArgument(
            StrFormat("%s is a%s; use DROP %s", stmt.object_name.c_str(),
                      is_array ? "n array" : " table",
                      is_array ? "ARRAY" : "TABLE"));
      }
      SCIQL_RETURN_NOT_OK(cat.DropObject(stmt.object_name));
      return ResultSet();
    }
    case sql::Statement::Kind::kAlterArray: {
      SCIQL_ASSIGN_OR_RETURN(catalog::Catalog::WriteHandle h,
                             cat.BeginWrite(stmt.object_name));
      if (!h.is_array()) {
        return Status::NotFound(
            StrFormat("no such array: %s", stmt.object_name.c_str()));
      }
      catalog::ArrayObject* arr = h.array();
      int d = arr->desc.DimIndex(stmt.dim_name);
      if (d < 0) {
        return Status::NotFound(StrFormat("array %s has no dimension %s",
                                          stmt.object_name.c_str(),
                                          stmt.dim_name.c_str()));
      }
      SCIQL_RETURN_NOT_OK(
          arr->AlterDimension(static_cast<size_t>(d), stmt.new_range));
      SCIQL_RETURN_NOT_OK(h.Commit());
      return ResultSet();
    }
    default:
      return Status::Internal("not a DDL statement");
  }
}

Result<std::string> Session::BuildExplain(const sql::Statement& stmt) {
  catalog::CatalogVersionPtr pin =
      pinned_ != nullptr ? pinned_ : core_->cat_.Pin();
  StatementCompiler compiler(pin.get());
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable:
    case sql::Statement::Kind::kCreateArray:
      if (stmt.select == nullptr) {
        SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs,
                               compiler.CompileDdlDisplay(stmt));
        // DDL display programs are exempt from optimization: their results
        // are the materialised BATs themselves.
        SCIQL_RETURN_NOT_OK(mal::VerifyProgram(cs.prog));
        return cs.prog.ToString();
      }
      break;
    case sql::Statement::Kind::kDrop:
    case sql::Statement::Kind::kAlterArray: {
      SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs,
                             compiler.CompileDdlDisplay(stmt));
      SCIQL_RETURN_NOT_OK(mal::VerifyProgram(cs.prog));
      return cs.prog.ToString();
    }
    case sql::Statement::Kind::kExplain:
      return Status::InvalidArgument("cannot EXPLAIN an EXPLAIN");
    default:
      break;
  }
  SCIQL_ASSIGN_OR_RETURN(CompiledStatement cs, compiler.Compile(stmt));
  SCIQL_RETURN_NOT_OK(mal::Optimize(&cs.prog));
  // EXPLAIN verifies unconditionally: rendering a plan is exactly when a
  // malformed one should be loudest, and the cost is off the execution path.
  SCIQL_RETURN_NOT_OK(mal::VerifyProgram(cs.prog));
  return cs.prog.ToString();
}

Result<std::string> Session::ExplainText(const std::string& text) {
  SCIQL_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseOne(text));
  const sql::Statement* target = stmt.get();
  if (stmt->kind == sql::Statement::Kind::kExplain) target = stmt->inner.get();
  return BuildExplain(*target);
}

}  // namespace engine
}  // namespace sciql
