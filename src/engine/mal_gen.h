// Statement-level MAL generation: SELECT pipelines plus the read parts of
// DML statements. Writes (appends, scatters, deletes) are applied by the
// Executor from the evaluated result — mirroring MonetDB's handling of SQL
// updates through delta application after plan evaluation.

#ifndef SCIQL_ENGINE_MAL_GEN_H_
#define SCIQL_ENGINE_MAL_GEN_H_

#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/mal/program.h"
#include "src/sql/ast.h"

namespace sciql {
namespace engine {

/// \brief A compiled statement: the MAL read pipeline plus the action the
/// executor must apply to its result.
struct CompiledStatement {
  enum class Action {
    kQuery,          ///< plain SELECT: result returned to the caller
    kInsert,         ///< append/scatter result rows into `target`
    kUpdate,         ///< write __set columns at __pos positions of `target`
    kDelete,         ///< delete/NULL rows at __pos positions of `target`
    kCreateTableAs,  ///< materialise result as new table `target`
    kCreateArrayAs,  ///< coerce result to a new array `target`
    kDdlDisplay,     ///< DDL program for EXPLAIN only; never executed
  };

  Action action = Action::kQuery;
  mal::MalProgram prog;
  std::string target;
  std::vector<std::string> insert_columns;  ///< explicit INSERT column list
  std::vector<std::string> set_columns;     ///< UPDATE SET column names
};

/// \brief Compiles parsed statements into CompiledStatements. Reads only a
/// pinned, immutable catalog version: compilation never takes a lock and is
/// never invalidated by concurrent writers publishing newer versions.
class StatementCompiler {
 public:
  explicit StatementCompiler(const catalog::CatalogVersion* cat) : cat_(cat) {}

  /// \brief Compile any non-DDL statement (SELECT, INSERT, UPDATE, DELETE,
  /// CREATE ... AS SELECT). Plain DDL is executed directly by Database.
  Result<CompiledStatement> Compile(const sql::Statement& stmt);

  /// \brief Build the Figure-3 style array.series/array.filler program for a
  /// plain DDL statement, for EXPLAIN.
  Result<CompiledStatement> CompileDdlDisplay(const sql::Statement& stmt);

 private:
  Result<CompiledStatement> CompileSelect(const sql::Statement& stmt);
  Result<CompiledStatement> CompileInsert(const sql::Statement& stmt);
  Result<CompiledStatement> CompileUpdate(const sql::Statement& stmt);
  Result<CompiledStatement> CompileDelete(const sql::Statement& stmt);

  const catalog::CatalogVersion* cat_;
};

}  // namespace engine
}  // namespace sciql

#endif  // SCIQL_ENGINE_MAL_GEN_H_
