// Catalog-driven random query generation and a differential oracle that
// executes every generated query down each redundant physical path of the
// engine — thread counts, index-present vs index-dropped, firstn vs
// sort+slice, checkpoint+reopen vs in-memory — and diffs the results
// bit-for-bit. See docs/fuzzing.md for the grammar, the path matrix and the
// seed/shrink workflow.

#ifndef SCIQL_FUZZ_FUZZ_H_
#define SCIQL_FUZZ_FUZZ_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/gdk/kernels.h"

namespace sciql {
namespace fuzz {

/// \brief One SQL statement of a fuzz case.
struct FuzzStatement {
  enum class Kind {
    kSetup,       ///< DDL/DML; must succeed, outcome diffed across paths
    kSetupError,  ///< corpus replay: must fail with the same error everywhere
    kQuery,       ///< read-only; result rows diffed bit-for-bit across paths
  };
  Kind kind = Kind::kSetup;
  std::string sql;

  /// kQuery only: golden-format expected rows (RenderGoldenRow spelling),
  /// asserted in *every* path when set. `sort_expected` compares them as a
  /// sorted multiset ("query sorted" semantics).
  bool has_expected = false;
  bool sort_expected = true;
  std::vector<std::string> expected;

  /// kQuery only, generator-filled: output column indexes + descending flags
  /// of the top-level ORDER BY, for the per-path sortedness property check.
  std::vector<int> order_cols;
  std::vector<bool> order_desc;
};

/// \brief A self-contained workload: schema + data + queries, plus the
/// warming statements the index-present oracle path replays first so every
/// order-index cache is hot before the queries run.
struct FuzzCase {
  std::string name;
  uint64_t seed = 0;
  std::vector<FuzzStatement> stmts;
  std::vector<std::string> warm;
};

struct GeneratorOptions {
  size_t queries_per_case = 5;
  size_t max_rows = 120;  ///< upper bound on rows per generated table
  bool arrays = true;     ///< include SciQL array / tiling workloads
};

/// \brief Deterministic grammar-driven generation: same seed + options, same
/// case, on every platform (common/rng.h).
FuzzCase GenerateCase(uint64_t seed, const GeneratorOptions& opts = {});

/// \brief One execution strategy of the oracle matrix.
struct PathConfig {
  std::string name;
  int threads = 1;
  bool use_index_paths = true;  ///< gdk::Controls().use_index_paths
  bool fuse_firstn = true;      ///< engine::GetPlannerControls().fuse_firstn
  bool warm_indexes = false;    ///< replay FuzzCase::warm before the queries
  bool reopen = false;          ///< checkpoint + close + reopen before queries
  /// Run every statement through a freshly created Session on the shared
  /// DatabaseCore (multi-session lifecycle: pin-per-statement snapshots,
  /// sticky COW catalog) instead of the facade's default session.
  bool fresh_session = false;
};

/// \brief The standard path matrix: in-memory baseline at 1/2/8 threads,
/// index paths force-dropped, indexes pre-warmed, sort+slice instead of
/// fused firstn, a durable checkpoint + reopen round-trip, and a
/// fresh-session-per-statement run over the shared core.
std::vector<PathConfig> DefaultPaths();

/// \brief One cross-path disagreement (or per-path property violation).
struct Diff {
  size_t stmt_index = 0;
  std::string path;
  std::string detail;
  // Coarse failure class ("multiset", "schema", "setup-failed", ...). The
  // shrinker only accepts reductions that reproduce one of the original
  // case's kinds — dropping a CREATE TABLE makes every later statement fail,
  // which is *a* diff but not *the* diff.
  std::string kind;
};

struct CaseResult {
  std::vector<Diff> diffs;
  size_t queries_run = 0;
  /// Kernel telemetry delta (before/after snapshot diff) accumulated per
  /// path over the whole case.
  std::map<std::string, gdk::TelemetrySnapshot> telemetry;
};

struct OracleOptions {
  /// Scratch directory for the reopen path's storage; empty picks
  /// std::filesystem::temp_directory_path()/"sciql_fuzz".
  std::string scratch_dir;
};

/// \brief Execute `fc` down every path and diff the outcomes.
CaseResult RunCase(const FuzzCase& fc, const std::vector<PathConfig>& paths,
                   const OracleOptions& opts = {});

/// \brief Delta-debug a failing case to a minimal statement list that still
/// diffs. Returns `fc` unchanged if it does not fail.
FuzzCase ShrinkCase(const FuzzCase& fc, const std::vector<PathConfig>& paths,
                    const OracleOptions& opts = {});

/// \brief Render a (shrunken) case in the corpus file format
/// (tests/fuzz/corpus/*.sql — the golden-file dialect). Expected rows are
/// captured from the first path's current output.
std::string RenderCorpus(const FuzzCase& fc,
                         const std::vector<PathConfig>& paths,
                         const OracleOptions& opts = {});

/// \brief Load a corpus file back into a FuzzCase (statement ok / statement
/// error / query / query sorted records). Returns false with *error set on
/// malformed input.
bool LoadCorpus(const std::string& path, FuzzCase* fc, std::string* error);

struct SweepOptions {
  GeneratorOptions gen;
  OracleOptions oracle;
  size_t query_target = 200;  ///< stop once this many queries have been diffed
  size_t max_failures = 3;    ///< stop after shrinking this many failures
};

struct SweepReport {
  size_t cases = 0;
  size_t queries = 0;
  std::vector<uint64_t> failing_seeds;
  std::vector<std::string> repros;  ///< corpus-format shrunken repros
  std::map<std::string, gdk::TelemetrySnapshot> telemetry;  ///< per path, summed
};

/// \brief Generate-and-diff cases derived from `seed` until `query_target`
/// queries have been compared (or `max_failures` failures shrunk).
SweepReport RunSweep(uint64_t seed, const SweepOptions& opts,
                     const std::vector<PathConfig>& paths);

}  // namespace fuzz
}  // namespace sciql

#endif  // SCIQL_FUZZ_FUZZ_H_
