// The seeded grammar: catalog-driven random generation of schemas, data and
// queries (docs/fuzzing.md). Every draw comes from one common/rng.h stream,
// so a seed fully determines the case on every platform.
//
// The grammar deliberately steers toward the engine's redundant physical
// paths (equi-joins on indexable keys, ORDER BY + LIMIT, BETWEEN ranges,
// low-cardinality group keys) and toward numeric edge values (INT64_MIN /
// INT64_MAX literals, wraparound arithmetic). A few constructions are
// avoided on purpose because their cross-path difference is *specified*
// behavior, not a bug — see the comments at kJoinSafeAggs and the LIMIT /
// DISTINCT item rules.

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/fuzz/fuzz.h"

namespace sciql {
namespace fuzz {
namespace {

// Expression types the generator tracks: enough to keep comparisons and
// aggregates well-typed. kNum covers INT/BIGINT; kDbl is numeric too but
// flagged so order-sensitive float aggregation can be kept off join sources.
enum class ETy { kNum, kDbl, kStr, kBool };

struct GenExpr {
  std::string sql;
  ETy ty = ETy::kNum;
};

// Fixed column shape for every generated table: a low-cardinality INT join /
// group key, a BIGINT with extreme values, a DOUBLE, a VARCHAR and a
// BOOLEAN. Fixed names keep join and qualification logic simple; variety
// comes from the data and the query shapes.
struct TableInfo {
  std::string name;
  size_t rows = 0;
};

struct ArrayInfo {
  std::string name;
  int nx = 0;
  int ny = 0;
};

class Generator {
 public:
  Generator(uint64_t seed, const GeneratorOptions& opts)
      : rng_(seed), opts_(opts) {}

  FuzzCase Generate() {
    FuzzCase fc;
    fc.seed = rng_.Next();  // mixed; the raw seed is kept by the caller
    GenSchema(&fc);
    size_t nq = opts_.queries_per_case;
    for (size_t i = 0; i < nq; ++i) {
      FuzzStatement q;
      q.kind = FuzzStatement::Kind::kQuery;
      if (!arrays_.empty() && rng_.Chance(0.25)) {
        GenArrayQuery(&q);
      } else if (rng_.Chance(0.4)) {
        GenAggQuery(&q);
      } else {
        GenPlainQuery(&q);
      }
      fc.stmts.push_back(std::move(q));
    }
    return fc;
  }

 private:
  // ---------------------------------------------------------------- schema
  void GenSchema(FuzzCase* fc) {
    for (int t = 0; t < 2; ++t) {
      TableInfo ti;
      ti.name = StrFormat("t%d", t);
      ti.rows = static_cast<size_t>(rng_.Range(1, (int64_t)opts_.max_rows));
      Setup(fc, StrFormat("CREATE TABLE %s (k INT, a BIGINT, d DOUBLE, "
                          "s VARCHAR, p BOOLEAN)",
                          ti.name.c_str()));
      // Batched inserts; each batch is one statement (and one WAL record on
      // the reopen path).
      size_t done = 0;
      while (done < ti.rows) {
        size_t n = std::min<size_t>(ti.rows - done, 15);
        std::string sql = "INSERT INTO " + ti.name + " VALUES ";
        for (size_t r = 0; r < n; ++r) {
          if (r > 0) sql += ", ";
          sql += RowLiteral();
        }
        Setup(fc, sql);
        done += n;
      }
      if (rng_.Chance(0.4)) {
        Setup(fc, StrFormat("UPDATE %s SET a = a + %lld WHERE k = %lld",
                            ti.name.c_str(), (long long)rng_.Range(-3, 3),
                            (long long)rng_.Range(-5, 15)));
      }
      if (rng_.Chance(0.3)) {
        Setup(fc, StrFormat("DELETE FROM %s WHERE k = %lld", ti.name.c_str(),
                            (long long)rng_.Range(-5, 15)));
      }
      tables_.push_back(ti);
      // Warm statements: ORDER BY without LIMIT builds and caches the
      // order index for the column (and one multi-key spec), which the
      // warm-index oracle path replays ahead of the queries.
      for (const char* c : {"k", "a", "d", "s"}) {
        fc->warm.push_back(
            StrFormat("SELECT %s FROM %s ORDER BY %s", c, ti.name.c_str(), c));
      }
      fc->warm.push_back(
          StrFormat("SELECT k, a FROM %s ORDER BY k, a", ti.name.c_str()));
    }
    if (opts_.arrays && rng_.Chance(0.7)) {
      ArrayInfo ai;
      ai.name = "g0";
      ai.nx = static_cast<int>(rng_.Range(2, 6));
      ai.ny = static_cast<int>(rng_.Range(2, 6));
      Setup(fc, StrFormat("CREATE ARRAY %s (x INT DIMENSION[0:1:%d], "
                          "y INT DIMENSION[0:1:%d], v INT DEFAULT 0)",
                          ai.name.c_str(), ai.nx, ai.ny));
      const char* fills[] = {"x * 7 + y", "x - y", "(x + y) MOD 3",
                             "x * y - 2"};
      Setup(fc, StrFormat("UPDATE %s SET v = %s", ai.name.c_str(),
                          fills[rng_.Below(4)]));
      if (rng_.Chance(0.5)) {
        Setup(fc, StrFormat("UPDATE %s SET v = v + %lld WHERE x = %lld",
                            ai.name.c_str(), (long long)rng_.Range(1, 9),
                            (long long)rng_.Below((uint64_t)ai.nx)));
      }
      arrays_.push_back(ai);
    }
  }

  void Setup(FuzzCase* fc, std::string sql) {
    FuzzStatement st;
    st.kind = FuzzStatement::Kind::kSetup;
    st.sql = std::move(sql);
    fc->stmts.push_back(std::move(st));
  }

  // One `(k, a, d, s, p)` tuple. BIGINT values mix small integers with the
  // int64 extremes — including the INT64_MIN literal, which must round-trip
  // through the lexer (docs/fuzzing.md, integer-literal satellite).
  std::string RowLiteral() {
    std::string k =
        rng_.Chance(0.12) ? "NULL" : std::to_string(rng_.Range(-5, 15));
    std::string a = BigintLiteral();
    std::string d = rng_.Chance(0.15) ? "NULL" : DoubleLiteral();
    std::string s = rng_.Chance(0.12) ? "NULL" : "'" + StrValue() + "'";
    const char* pv[] = {"TRUE", "FALSE", "NULL"};
    std::string p = pv[rng_.Below(3)];
    return "(" + k + ", " + a + ", " + d + ", " + s + ", " + p + ")";
  }

  std::string BigintLiteral() {
    if (rng_.Chance(0.12)) return "NULL";
    if (rng_.Chance(0.25)) {
      static const char* kExtremes[] = {
          "9223372036854775807",  "-9223372036854775808", "2147483647",
          "-2147483648",          "4611686018427387904",  "-4611686018427387903",
          "9223372036854775806",
      };
      return kExtremes[rng_.Below(7)];
    }
    return std::to_string(rng_.Range(-1000, 1000));
  }

  // Short exact decimals only: no exponents (lexer-portable) and no 0.0/-0.0
  // pair — negative zero compares equal to zero but differs bitwise, which
  // would make ORDER BY ... LIMIT tie-breaking legitimately path-dependent.
  std::string DoubleLiteral() {
    static const char* kPool[] = {"0.5",   "-0.5",  "1.5",   "3.25",
                                  "100.25", "-2.75", "0.125", "12.5"};
    return kPool[rng_.Below(8)];
  }

  std::string StrValue() {
    static const char* kPool[] = {"a", "b", "c", "aa", "zz", "", "mango"};
    return kPool[rng_.Below(7)];
  }

  // ---------------------------------------------------------------- source
  struct Source {
    bool join = false;
    std::string sql;     // the FROM clause body
    std::string qual[2]; // column qualifiers ("" or "t0.")
    int ntabs = 1;
  };

  Source GenSource() {
    Source s;
    if (tables_.size() >= 2 && rng_.Chance(0.45)) {
      s.join = true;
      s.ntabs = 2;
      const char* keys[] = {"k", "a", "s"};
      const char* jc = keys[rng_.Below(3)];
      const std::string& l = tables_[0].name;
      const std::string& r = tables_[1].name;
      s.sql = StrFormat("%s JOIN %s ON %s.%s = %s.%s", l.c_str(), r.c_str(),
                        l.c_str(), jc, r.c_str(), jc);
      s.qual[0] = l + ".";
      s.qual[1] = r + ".";
    } else {
      const TableInfo& t = tables_[rng_.Below(tables_.size())];
      s.sql = t.name;
      s.qual[0] = "";
      s.ntabs = 1;
    }
    return s;
  }

  std::string Qual(const Source& src) {
    return src.qual[rng_.Below((uint64_t)src.ntabs)];
  }

  // ----------------------------------------------------------- expressions
  GenExpr ColRef(const Source& src) {
    struct {
      const char* name;
      ETy ty;
    } cols[] = {{"k", ETy::kNum}, {"a", ETy::kNum}, {"d", ETy::kDbl},
                {"s", ETy::kStr}, {"p", ETy::kBool}};
    auto& c = cols[rng_.Below(5)];
    return {Qual(src) + c.name, c.ty};
  }

  GenExpr NumColRef(const Source& src) {
    const char* names[] = {"k", "a", "d"};
    uint64_t i = rng_.Below(3);
    return {Qual(src) + names[i], i == 2 ? ETy::kDbl : ETy::kNum};
  }

  GenExpr NumLit() {
    if (rng_.Chance(0.2)) return {DoubleLiteral(), ETy::kDbl};
    if (rng_.Chance(0.2)) return {BigintLiteral(), ETy::kNum};  // may be NULL
    return {std::to_string(rng_.Range(-20, 20)), ETy::kNum};
  }

  GenExpr NumExpr(const Source& src, int depth) {
    if (depth <= 0 || rng_.Chance(0.35)) {
      return rng_.Chance(0.65) ? NumColRef(src) : NumLit();
    }
    switch (rng_.Below(8)) {
      case 0:
      case 1: {
        GenExpr a = NumExpr(src, depth - 1);
        GenExpr b = NumExpr(src, depth - 1);
        const char* ops[] = {"+", "-", "*"};
        ETy t = (a.ty == ETy::kDbl || b.ty == ETy::kDbl) ? ETy::kDbl
                                                         : ETy::kNum;
        return {"(" + a.sql + " " + ops[rng_.Below(3)] + " " + b.sql + ")", t};
      }
      case 2: {  // division / modulo by a nonzero literal (usually)
        GenExpr a = NumExpr(src, depth - 1);
        const char* op = rng_.Chance(0.5) ? "/" : "MOD";
        std::string b;
        ETy t = a.ty;
        if (rng_.Chance(0.85)) {
          static const char* kDivisors[] = {"2", "3", "7", "-1", "-3", "11"};
          b = kDivisors[rng_.Below(6)];
        } else {
          GenExpr bc = NumColRef(src);  // may be zero: a consistent ExecError
          b = bc.sql;
          if (bc.ty == ETy::kDbl) t = ETy::kDbl;
        }
        return {"(" + a.sql + " " + op + " " + b + ")", t};
      }
      case 3: {
        GenExpr a = NumExpr(src, depth - 1);
        return {"(-" + a.sql + ")", a.ty};
      }
      case 4: {
        GenExpr a = NumExpr(src, depth - 1);
        return {"ABS(" + a.sql + ")", a.ty};
      }
      case 5: {
        std::string pred = Pred(src, depth - 1);
        GenExpr a = NumExpr(src, depth - 1);
        GenExpr b = NumExpr(src, depth - 1);
        ETy t = (a.ty == ETy::kDbl || b.ty == ETy::kDbl) ? ETy::kDbl
                                                         : ETy::kNum;
        return {"CASE WHEN " + pred + " THEN " + a.sql + " ELSE " + b.sql +
                    " END",
                t};
      }
      default:
        return NumColRef(src);
    }
  }

  std::string Pred(const Source& src, int depth) {
    if (depth > 0 && rng_.Chance(0.35)) {
      std::string a = Pred(src, depth - 1);
      std::string b = Pred(src, depth - 1);
      const char* ops[] = {"AND", "OR"};
      std::string out = "(" + a + " " + ops[rng_.Below(2)] + " " + b + ")";
      if (rng_.Chance(0.2)) out = "NOT " + out;
      return out;
    }
    switch (rng_.Below(6)) {
      case 0: {  // numeric comparison
        GenExpr a = NumExpr(src, depth);
        GenExpr b = rng_.Chance(0.6) ? NumLit() : NumColRef(src);
        static const char* kCmp[] = {"=", "<>", "<", "<=", ">", ">="};
        return a.sql + " " + kCmp[rng_.Below(6)] + " " + b.sql;
      }
      case 1: {  // string comparison
        std::string c = Qual(src) + "s";
        static const char* kCmp[] = {"=", "<>", "<", ">="};
        return c + " " + kCmp[rng_.Below(4)] + " '" + StrValue() + "'";
      }
      case 2: {  // IS [NOT] NULL
        GenExpr c = ColRef(src);
        return c.sql + (rng_.Chance(0.5) ? " IS NULL" : " IS NOT NULL");
      }
      case 3: {  // BETWEEN steers RangeSelect (index window vs scan)
        GenExpr c = NumColRef(src);
        int64_t lo = rng_.Range(-10, 10);
        int64_t hi = lo + rng_.Range(0, 12);
        return c.sql + StrFormat(" BETWEEN %lld AND %lld", (long long)lo,
                                 (long long)hi);
      }
      case 4: {  // IN list
        if (rng_.Chance(0.5)) {
          std::string c = Qual(src) + "k";
          return c + StrFormat(" IN (%lld, %lld, %lld)",
                               (long long)rng_.Range(-5, 15),
                               (long long)rng_.Range(-5, 15),
                               (long long)rng_.Range(-5, 15));
        }
        std::string c = Qual(src) + "s";
        return c + " IN ('" + StrValue() + "', '" + StrValue() + "')";
      }
      default: {  // boolean column
        std::string c = Qual(src) + "p";
        return c + (rng_.Chance(0.5) ? " = TRUE" : " = FALSE");
      }
    }
  }

  // -------------------------------------------------------------- queries
  struct Item {
    std::string sql;
    ETy ty;
  };

  // ORDER BY / LIMIT tail over the aliased select list. The LIMIT rule: a
  // LIMIT is only attached when the ORDER BY covers *every* output column,
  // so the top-k multiset is uniquely determined and firstn vs sort+slice
  // vs index-window must agree exactly. `allow_limit` additionally requires
  // no double item (0.0 vs -0.0 ties are bitwise-distinct yet equal keys).
  void OrderLimitTail(const std::vector<Item>& items, bool allow_limit,
                      size_t source_rows, std::string* sql, FuzzStatement* q) {
    bool want_limit = allow_limit && rng_.Chance(0.4);
    if (!want_limit && !rng_.Chance(0.75)) return;
    std::vector<int> perm;
    for (size_t i = 0; i < items.size(); ++i) perm.push_back((int)i);
    // Fisher-Yates over the rng stream.
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng_.Below(i)]);
    }
    size_t n = want_limit ? perm.size()
                          : 1 + rng_.Below((uint64_t)perm.size());
    *sql += " ORDER BY ";
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) *sql += ", ";
      bool desc = rng_.Chance(0.4);
      *sql += StrFormat("c%d%s", perm[i], desc ? " DESC" : "");
      q->order_cols.push_back(perm[i]);
      q->order_desc.push_back(desc);
    }
    if (want_limit) {
      *sql += StrFormat(" LIMIT %lld",
                        (long long)rng_.Below((uint64_t)source_rows + 6));
    }
  }

  void GenPlainQuery(FuzzStatement* q) {
    Source src = GenSource();
    size_t n = 1 + rng_.Below(4);
    std::vector<Item> items;
    bool has_dbl = false;
    for (size_t i = 0; i < n; ++i) {
      GenExpr e;
      double roll = rng_.NextDouble();
      if (roll < 0.6) {
        e = NumExpr(src, 2);
      } else if (roll < 0.8) {
        e = ColRef(src);
      } else {
        e = {Qual(src) + "s", ETy::kStr};
      }
      has_dbl = has_dbl || e.ty == ETy::kDbl;
      items.push_back({e.sql, e.ty});
    }
    // DISTINCT only without double items: a computed -0.0 equals 0.0 as a
    // group key, so the surviving representative would depend on encounter
    // order — legitimately different after a reordering join path.
    bool distinct = !has_dbl && rng_.Chance(0.15);
    std::string sql = std::string("SELECT ") + (distinct ? "DISTINCT " : "");
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) sql += ", ";
      sql += items[i].sql + StrFormat(" AS c%d", (int)i);
    }
    sql += " FROM " + src.sql;
    if (rng_.Chance(0.7)) sql += " WHERE " + Pred(src, 2);
    OrderLimitTail(items, !has_dbl, MaxRows(src), &sql, q);
    q->sql = std::move(sql);
  }

  void GenAggQuery(FuzzStatement* q) {
    Source src = GenSource();
    // Low-cardinality group keys only (k, s, p): every path groups the same
    // multiset; double group keys are avoided entirely.
    const char* kGroupable[] = {"k", "s", "p"};
    size_t ng = 1 + rng_.Below(2);
    std::vector<std::string> gcols;
    for (size_t i = 0; i < ng; ++i) {
      std::string c = Qual(src) + kGroupable[rng_.Below(3)];
      bool dup = false;
      for (auto& g : gcols) dup = dup || g == c;
      if (!dup) gcols.push_back(c);
    }
    std::vector<Item> items;
    std::string sql = "SELECT ";
    for (size_t i = 0; i < gcols.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += gcols[i] + StrFormat(" AS c%d", (int)i);
      items.push_back({gcols[i], ETy::kNum});
    }
    // Float accumulation is order-sensitive, and the indexed-probe join
    // emits probe-side pair order (a *documented* difference) — so AVG and
    // SUM/aggregated doubles are only generated over single-table sources,
    // where candidate row order is path-invariant. Integer SUM wraps mod
    // 2^64 (associative), MIN/MAX/COUNT are order-free: safe after joins.
    bool join_safe_only = src.join;
    size_t na = 1 + rng_.Below(3);
    for (size_t i = 0; i < na; ++i) {
      std::string agg;
      uint64_t pick = rng_.Below(join_safe_only ? 4u : 6u);
      GenExpr arg = NumColRef(src);
      switch (pick) {
        case 0:
          agg = "COUNT(*)";
          break;
        case 1:
          agg = "COUNT(" + ColRef(src).sql + ")";
          break;
        case 2:
          agg = (rng_.Chance(0.5) ? "MIN(" : "MAX(") + ColRef(src).sql + ")";
          break;
        case 3: {  // integer SUM: wraparound, order-free
          const char* ic[] = {"k", "a"};
          agg = "SUM(" + Qual(src) + ic[rng_.Below(2)] + ")";
          break;
        }
        case 4:
          agg = "SUM(" + arg.sql + ")";
          break;
        default:
          agg = "AVG(" + arg.sql + ")";
          break;
      }
      size_t idx = items.size();
      sql += ", " + agg + StrFormat(" AS c%d", (int)idx);
      items.push_back({agg, ETy::kNum});
    }
    sql += " FROM " + src.sql;
    if (rng_.Chance(0.5)) sql += " WHERE " + Pred(src, 2);
    sql += " GROUP BY ";
    for (size_t i = 0; i < gcols.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += gcols[i];
    }
    if (rng_.Chance(0.3)) {
      sql += StrFormat(" HAVING COUNT(*) > %lld", (long long)rng_.Below(3));
    }
    OrderLimitTail(items, true, MaxRows(src), &sql, q);
    q->sql = std::move(sql);
  }

  void GenArrayQuery(FuzzStatement* q) {
    const ArrayInfo& a = arrays_[rng_.Below(arrays_.size())];
    if (rng_.Chance(0.6)) {
      // Structural (tiling) aggregation; the tile is anchored per cell, so
      // the result is cell-aligned and order-free across paths.
      static const char* kAggs[] = {"SUM", "MIN", "MAX", "COUNT", "AVG"};
      const char* agg = kAggs[rng_.Below(5)];
      int kx = (int)rng_.Range(1, 3);
      int ky = (int)rng_.Range(1, 3);
      bool anchored = rng_.Chance(0.4);  // [x-1:x+k] style neighbourhoods
      std::string tile =
          anchored ? StrFormat("%s[x-1:x+%d][y-1:y+%d]", a.name.c_str(), kx, ky)
                   : StrFormat("%s[x:x+%d][y:y+%d]", a.name.c_str(), kx, ky);
      std::string sql = StrFormat(
          "SELECT [x], [y], %s(v) AS c0 FROM %s GROUP BY %s", agg,
          a.name.c_str(), tile.c_str());
      if (rng_.Chance(0.6)) {
        switch (rng_.Below(3)) {
          case 0:
            sql += StrFormat(" HAVING x MOD 2 = %lld", (long long)rng_.Below(2));
            break;
          case 1:
            sql += StrFormat(" HAVING x = %lld AND y = %lld",
                             (long long)rng_.Below((uint64_t)a.nx),
                             (long long)rng_.Below((uint64_t)a.ny));
            break;
          default:
            sql += StrFormat(" HAVING y > %lld", (long long)rng_.Below(2));
            break;
        }
      }
      if (rng_.Chance(0.5)) {
        sql += rng_.Chance(0.5) ? " ORDER BY x DESC" : " ORDER BY x, y";
      }
      q->sql = std::move(sql);
    } else {
      // Relative cell references (shift-style neighbour access).
      std::string cell = rng_.Chance(0.5)
                             ? StrFormat("%s[x-1][y]", a.name.c_str())
                             : StrFormat("%s[x][y-1]", a.name.c_str());
      std::string sql = StrFormat(
          "SELECT [x], [y], v - %s AS c0 FROM %s WHERE x %s %lld",
          cell.c_str(), a.name.c_str(), rng_.Chance(0.5) ? ">" : "=",
          (long long)rng_.Below((uint64_t)a.nx));
      q->sql = std::move(sql);
    }
  }

  size_t MaxRows(const Source& src) {
    size_t n = 0;
    for (const auto& t : tables_) n = std::max(n, t.rows);
    return src.join ? n * n : n;
  }

  Rng rng_;
  GeneratorOptions opts_;
  std::vector<TableInfo> tables_;
  std::vector<ArrayInfo> arrays_;
};

}  // namespace

FuzzCase GenerateCase(uint64_t seed, const GeneratorOptions& opts) {
  Generator g(seed, opts);
  FuzzCase fc = g.Generate();
  fc.seed = seed;
  fc.name = StrFormat("fuzz_%llu", (unsigned long long)seed);
  return fc;
}

}  // namespace fuzz
}  // namespace sciql
