// The differential oracle: run one FuzzCase down every PathConfig and diff
// the outcomes bit-for-bit (docs/fuzzing.md). Rows are compared as sorted
// multisets of bit-exact cell renderings — join paths legitimately emit
// different row orders with the same multiset, while doubles must agree in
// their exact bit pattern (the pretty-printer's %.6g would mask real
// divergence). ORDER BY correctness is checked per path as a property
// (gdk::CompareKeyRows over the declared sort columns) instead of by
// comparing sequences.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/fuzz/fuzz.h"
#include "src/gdk/kernels.h"
#include "src/mal/verify.h"
#include "tests/support/golden_format.h"

namespace sciql {
namespace fuzz {
namespace {

namespace fs = std::filesystem;
using engine::Database;
using engine::ResultSet;

// The observable outcome of one statement in one path.
struct Outcome {
  bool ok = false;
  std::string error;
  std::string header;              // "name:type|..." of the result columns
  std::vector<std::string> bits;   // bit-exact rows, source order
  std::vector<std::string> golden; // RenderGoldenRow rows, for expected checks
  bool sorted_ok = true;           // declared ORDER BY actually held
  std::string sorted_detail;
};

// Bit-exact cell rendering: doubles as their raw bit pattern, everything
// else as type-tagged integers / strings. NULL renders per-type so a NULL
// that changes type across paths still diffs.
std::string BitCell(const gdk::ScalarValue& v) {
  const char* tn = gdk::PhysTypeName(v.type);
  if (v.is_null) return std::string(tn) + ":null";
  if (v.type == gdk::PhysType::kDbl) {
    uint64_t b = 0;
    std::memcpy(&b, &v.d, sizeof b);
    return StrFormat("dbl:%016llx", (unsigned long long)b);
  }
  if (v.type == gdk::PhysType::kStr) return std::string("str:") + v.s;
  return StrFormat("%s:%lld", tn, (long long)v.i);
}

// `Db` is engine::Database or engine::Session — anything with Query().
template <typename Db>
Outcome QueryOutcome(Db* db, const FuzzStatement& st) {
  Outcome out;
  auto rs = db->Query(st.sql);
  if (!rs.ok()) {
    out.ok = false;
    out.error = rs.status().ToString();
    return out;
  }
  out.ok = true;
  const ResultSet& r = rs.value();
  for (size_t c = 0; c < r.NumColumns(); ++c) {
    if (c > 0) out.header += '|';
    out.header += r.column(c).name;
    out.header += ':';
    out.header += gdk::PhysTypeName(r.column(c).data->type());
  }
  size_t rows = r.NumRows();
  for (size_t i = 0; i < rows; ++i) {
    std::string row;
    for (size_t c = 0; c < r.NumColumns(); ++c) {
      if (c > 0) row += '|';
      row += BitCell(r.Value(i, c));
    }
    out.bits.push_back(std::move(row));
    out.golden.push_back(testsupport::RenderGoldenRow(r, i));
  }
  // Sortedness property: adjacent rows must be non-descending under the
  // declared keys (descending keys are checked through negation).
  if (!st.order_cols.empty() && rows > 1) {
    std::vector<const gdk::BAT*> keys;
    std::vector<bool> desc;
    for (size_t k = 0; k < st.order_cols.size(); ++k) {
      int c = st.order_cols[k];
      if (c < 0 || (size_t)c >= r.NumColumns()) continue;
      keys.push_back(r.column((size_t)c).data.get());
      desc.push_back(st.order_desc[k]);
    }
    for (size_t i = 0; i + 1 < rows && out.sorted_ok; ++i) {
      for (size_t k = 0; k < keys.size(); ++k) {
        std::vector<const gdk::BAT*> one = {keys[k]};
        int cmp = gdk::CompareKeyRows(one, i, one, i + 1);
        if (desc[k]) cmp = -cmp;
        if (cmp < 0) break;  // strictly ordered by this key: done
        if (cmp > 0) {
          out.sorted_ok = false;
          out.sorted_detail = StrFormat(
              "ORDER BY violated between rows %zu and %zu (key %zu)", i,
              i + 1, k);
          break;
        }
      }
    }
  }
  return out;
}

// Scoped save/restore of every process-wide knob the oracle flips, so a
// failing path never leaks its configuration into later tests.
class PathScope {
 public:
  explicit PathScope(const PathConfig& p)
      : saved_threads_(Database::ExecutionThreads()),
        saved_kernel_(gdk::Controls()),
        saved_planner_(engine::GetPlannerControls()),
        saved_verify_(mal::GetVerifyControls()) {
    Database::SetExecutionThreads(p.threads);
    gdk::Controls().use_index_paths = p.use_index_paths;
    engine::GetPlannerControls().fuse_firstn = p.fuse_firstn;
    // The oracle always verifies every compiled plan, even in release
    // builds where the session default is off: a plan the verifier rejects
    // surfaces as a statement failure and therefore a divergence.
    mal::GetVerifyControls().enabled = true;
  }
  ~PathScope() {
    Database::SetExecutionThreads(saved_threads_);
    gdk::Controls() = saved_kernel_;
    engine::GetPlannerControls() = saved_planner_;
    mal::GetVerifyControls() = saved_verify_;
  }

 private:
  int saved_threads_;
  gdk::KernelControls saved_kernel_;
  engine::PlannerControls saved_planner_;
  mal::VerifyControls saved_verify_;
};

fs::path ScratchDir(const OracleOptions& opts, const std::string& path_name) {
  static std::atomic<uint64_t> counter{0};
  fs::path base = opts.scratch_dir.empty()
                      ? fs::temp_directory_path() / "sciql_fuzz"
                      : fs::path(opts.scratch_dir);
  // The pid keeps concurrently running oracle processes (e.g. parallel
  // ctest: the corpus and smoke suites) out of each other's directories;
  // the counter separates paths within one process.
  return base / StrFormat("p%ld_run%llu_%s", (long)::getpid(),
                          (unsigned long long)counter.fetch_add(1),
                          path_name.c_str());
}

// Execute the whole case down one path. Outcomes are produced for every
// statement; a storage-layer failure (reopen path) is reported via *fatal.
std::vector<Outcome> RunPath(const FuzzCase& fc, const PathConfig& p,
                             const OracleOptions& opts,
                             gdk::TelemetrySnapshot* telemetry,
                             std::string* fatal) {
  PathScope scope(p);
  // Snapshot-delta attribution: the process-global counters are monotonic
  // and shared with every concurrent session (and any metrics scrape), so
  // the oracle diffs before/after instead of zeroing them.
  gdk::TelemetryProbe probe;
  std::vector<Outcome> outs;
  Database db;
  fs::path dir;
  std::error_code ec;
  if (p.reopen) {
    dir = ScratchDir(opts, p.name);
    fs::create_directories(dir, ec);
    storage::OpenOptions oo;
    oo.durability = storage::DurabilityLevel::kNone;  // speed; crash safety
                                                      // is the storage
                                                      // suite's job
    Status st = db.Open(dir.string(), oo);
    if (!st.ok()) {
      *fatal = "open failed: " + st.ToString();
      return outs;
    }
  }
  bool warmed = false;
  bool setup_dirty = true;
  for (const FuzzStatement& st : fc.stmts) {
    if (st.kind == FuzzStatement::Kind::kQuery) {
      // Before the first query after new setup: warm the index caches
      // and/or push the session through a checkpoint + reopen cycle.
      // Warming runs first so the built indexes are persisted and the
      // reopened session exercises index *loading*, not just rebuilding.
      if (p.warm_indexes && (!warmed || setup_dirty)) {
        for (const std::string& w : fc.warm) db.Run(w);  // best-effort
        warmed = true;
      }
      if (p.reopen && setup_dirty) {
        Status cs = db.Close();
        if (cs.ok()) {
          storage::OpenOptions oo;
          oo.durability = storage::DurabilityLevel::kNone;
          cs = db.Open(dir.string(), oo);
        }
        if (!cs.ok()) {
          *fatal = "checkpoint/reopen failed: " + cs.ToString();
          break;
        }
      }
      setup_dirty = false;
      if (p.fresh_session) {
        // Each statement gets its own Session on the shared core: the
        // catalog runs in sticky shared (always-COW) mode and every query
        // pins its own snapshot. Results must still be bit-identical to
        // the single-session paths.
        std::unique_ptr<engine::Session> s = db.core().CreateSession();
        outs.push_back(QueryOutcome(s.get(), st));
      } else {
        outs.push_back(QueryOutcome(&db, st));
      }
      continue;
    }
    setup_dirty = true;
    Outcome o;
    Status st2 = p.fresh_session ? db.core().CreateSession()->Run(st.sql)
                                 : db.Run(st.sql);
    o.ok = st2.ok();
    if (!st2.ok()) o.error = st2.ToString();
    outs.push_back(std::move(o));
  }
  *telemetry = probe.delta();
  if (p.reopen) {
    db.Close();
    fs::remove_all(dir, ec);
  }
  return outs;
}

void AccumulateTelemetry(gdk::TelemetrySnapshot* into,
                         const gdk::TelemetrySnapshot& t) {
  for (const gdk::TelemetryField& f : gdk::TelemetryFields()) {
    into->*f.snap += t.*f.snap;
  }
}

std::string FirstLines(const std::vector<std::string>& rows, size_t n) {
  std::string out;
  for (size_t i = 0; i < rows.size() && i < n; ++i) {
    out += "\n      " + rows[i];
  }
  if (rows.size() > n) out += StrFormat("\n      ... (%zu rows)", rows.size());
  return out;
}

void DiffStatement(const FuzzCase& fc, size_t idx, const std::string& base_name,
                   const Outcome& base, const std::string& path_name,
                   const Outcome& other, std::vector<Diff>* diffs) {
  const FuzzStatement& st = fc.stmts[idx];
  auto add = [&](const char* kind, std::string detail) {
    diffs->push_back(
        {idx, path_name, detail + "\n    sql: " + st.sql, kind});
  };
  if (base.ok != other.ok) {
    std::string b = base.ok ? "succeeded" : "failed: " + base.error;
    std::string o = other.ok ? "succeeded" : "failed: " + other.error;
    add("ok-mismatch", base_name + " " + b + " but " + path_name + " " + o);
    return;
  }
  if (!base.ok) {
    if (base.error != other.error) {
      add("error-text",
          "error mismatch: [" + base.error + "] vs [" + other.error + "]");
    }
    return;
  }
  if (st.kind != FuzzStatement::Kind::kQuery) return;
  if (base.header != other.header) {
    add("schema",
        "schema mismatch: [" + base.header + "] vs [" + other.header + "]");
    return;
  }
  std::vector<std::string> a = base.bits, b = other.bits;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  if (a != b) {
    // Report the first differing multiset element for readability.
    size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
    add("multiset",
        StrFormat("row multiset mismatch (%zu vs %zu rows); first diff at "
                  "sorted position %zu:\n    %s: %s\n    %s: %s",
                  a.size(), b.size(), i, base_name.c_str(),
                  i < a.size() ? a[i].c_str() : "<none>", path_name.c_str(),
                  i < b.size() ? b[i].c_str() : "<none>"));
  }
}

void CheckStatementLocal(const FuzzCase& fc, size_t idx,
                         const std::string& path_name, const Outcome& o,
                         std::vector<Diff>* diffs) {
  const FuzzStatement& st = fc.stmts[idx];
  auto add = [&](const char* kind, std::string detail) {
    diffs->push_back({idx, path_name, detail + "\n    sql: " + st.sql, kind});
  };
  switch (st.kind) {
    case FuzzStatement::Kind::kSetup:
      if (!o.ok) add("setup-failed", "setup statement failed: " + o.error);
      return;
    case FuzzStatement::Kind::kSetupError:
      if (o.ok)
        add("expected-error-ok", "statement expected to fail but succeeded");
      return;
    case FuzzStatement::Kind::kQuery:
      break;
  }
  if (!o.sorted_ok) add("sortedness", o.sorted_detail);
  if (st.has_expected && o.ok) {
    std::vector<std::string> got = o.golden;
    std::vector<std::string> want = st.expected;
    if (st.sort_expected) {
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
    }
    if (got != want) {
      add("expected-rows",
          "expected rows mismatch:\n    want:" + FirstLines(want, 8) +
              "\n    got:" + FirstLines(got, 8));
    }
  }
}

}  // namespace

std::vector<PathConfig> DefaultPaths() {
  return {
      // The baseline: in-memory, single-threaded, planner defaults, index
      // caches populated only as the queries themselves build them.
      {"mem-1t", 1, true, true, false, false},
      {"mem-2t", 2, true, true, false, false},
      {"mem-8t", 8, true, true, false, false},
      // Index-aware kernels forced onto their scan/hash/heap fallbacks.
      {"noindex-1t", 1, false, true, false, false},
      // Every order index warmed before the queries: joins should go
      // merge/indexed-probe, FirstN through the index window, MIN/MAX from
      // the endpoints.
      {"warm-1t", 1, true, true, true, false},
      // ORDER BY + LIMIT compiled as orderidx + slice instead of firstn.
      {"sortslice-1t", 1, true, false, false, false},
      // Durable round-trip: warm (so indexes persist), checkpoint, reopen
      // from disk, then query.
      {"reopen-1t", 1, true, true, true, true},
      // Multi-session lifecycle: every statement through a fresh Session on
      // the shared core (sticky-COW catalog, pin-per-statement snapshots).
      {"session-1t", 1, true, true, false, false, true},
  };
}

CaseResult RunCase(const FuzzCase& fc, const std::vector<PathConfig>& paths,
                   const OracleOptions& opts) {
  CaseResult res;
  if (paths.empty()) return res;
  std::vector<std::vector<Outcome>> all;
  for (const PathConfig& p : paths) {
    gdk::TelemetrySnapshot t;
    std::string fatal;
    all.push_back(RunPath(fc, p, opts, &t, &fatal));
    res.telemetry[p.name] = t;
    if (!fatal.empty()) {
      res.diffs.push_back({all.back().size(), p.name, fatal, "fatal"});
    }
  }
  const std::vector<Outcome>& base = all[0];
  for (size_t i = 0; i < base.size(); ++i) {
    if (fc.stmts[i].kind == FuzzStatement::Kind::kQuery) ++res.queries_run;
    CheckStatementLocal(fc, i, paths[0].name, base[i], &res.diffs);
    for (size_t p = 1; p < paths.size(); ++p) {
      if (i >= all[p].size()) break;  // that path died early (reported above)
      DiffStatement(fc, i, paths[0].name, base[i], paths[p].name, all[p][i],
                    &res.diffs);
      CheckStatementLocal(fc, i, paths[p].name, all[p][i], &res.diffs);
    }
  }
  return res;
}

FuzzCase ShrinkCase(const FuzzCase& fc, const std::vector<PathConfig>& paths,
                    const OracleOptions& opts) {
  size_t budget = 200;  // RunCase invocations
  // The original failure's signatures: (kind, SQL of the failing
  // statement). A reduction only counts as "still failing" if it reproduces
  // one of them — dropping a CREATE TABLE makes every later statement fail
  // in every path, which is a diff on *different* statements, not the bug
  // we are isolating. Matching on the statement's SQL (stable across
  // deletions of other statements) instead of its index keeps the
  // signature valid while the case shrinks.
  auto signatures = [](const FuzzCase& c, const CaseResult& cr) {
    std::set<std::string> sigs;
    for (const Diff& d : cr.diffs) {
      std::string sql =
          d.stmt_index < c.stmts.size() ? c.stmts[d.stmt_index].sql : "";
      sigs.insert(d.kind + "\x01" + sql);
    }
    return sigs;
  };
  CaseResult r = RunCase(fc, paths, opts);
  --budget;
  if (r.diffs.empty()) return fc;
  const std::set<std::string> want = signatures(fc, r);
  auto failing = [&](const FuzzCase& c) -> bool {
    if (budget == 0) return false;
    --budget;
    for (const std::string& s : signatures(c, RunCase(c, paths, opts))) {
      if (want.count(s)) return true;
    }
    return false;
  };

  FuzzCase cur = fc;
  // Phase 1: truncate after the first failing statement and drop every
  // other query before it — queries are side-effect free.
  {
    size_t first = cur.stmts.size();
    for (const Diff& d : r.diffs) first = std::min(first, d.stmt_index);
    if (first < cur.stmts.size()) {
      FuzzCase trial = cur;
      trial.stmts.resize(first + 1);
      std::vector<FuzzStatement> kept;
      for (size_t i = 0; i < trial.stmts.size(); ++i) {
        if (i + 1 < trial.stmts.size() &&
            trial.stmts[i].kind == FuzzStatement::Kind::kQuery) {
          continue;
        }
        kept.push_back(trial.stmts[i]);
      }
      trial.stmts = std::move(kept);
      if (failing(trial)) cur = std::move(trial);
    }
  }
  // Phase 2: greedy one-at-a-time removal until a fixed point.
  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    for (size_t i = 0; i < cur.stmts.size(); ++i) {
      FuzzCase trial = cur;
      trial.stmts.erase(trial.stmts.begin() + (long)i);
      if (failing(trial)) {
        cur = std::move(trial);
        changed = true;
        break;
      }
    }
  }
  return cur;
}

std::string RenderCorpus(const FuzzCase& fc,
                         const std::vector<PathConfig>& paths,
                         const OracleOptions& opts) {
  // Capture the baseline path's current rows as the expected output.
  std::vector<Outcome> base;
  if (!paths.empty()) {
    gdk::TelemetrySnapshot t;
    std::string fatal;
    base = RunPath(fc, paths[0], opts, &t, &fatal);
  }
  std::string out = StrFormat("# %s (seed %llu)\n", fc.name.c_str(),
                              (unsigned long long)fc.seed);
  for (size_t i = 0; i < fc.stmts.size(); ++i) {
    const FuzzStatement& st = fc.stmts[i];
    out += '\n';
    switch (st.kind) {
      case FuzzStatement::Kind::kSetup:
        out += "statement ok\n" + st.sql + "\n";
        break;
      case FuzzStatement::Kind::kSetupError:
        out += "statement error\n" + st.sql + "\n";
        break;
      case FuzzStatement::Kind::kQuery: {
        bool ok = i < base.size() && base[i].ok;
        if (i < base.size() && !ok) {
          out += "statement error\n" + st.sql + "\n";
          break;
        }
        out += "query sorted\n" + st.sql + "\n----\n";
        if (i < base.size()) {
          std::vector<std::string> rows = base[i].golden;
          std::sort(rows.begin(), rows.end());
          for (const std::string& r : rows) out += r + "\n";
        }
        break;
      }
    }
  }
  return out;
}

bool LoadCorpus(const std::string& path, FuzzCase* fc, std::string* error) {
  std::vector<testsupport::GoldenRecord> recs;
  if (!testsupport::ParseGoldenFile(path, &recs, error)) return false;
  fc->name = path;
  for (const auto& rec : recs) {
    using K = testsupport::GoldenRecord::Kind;
    FuzzStatement st;
    switch (rec.kind) {
      case K::kStatementOk:
        st.kind = FuzzStatement::Kind::kSetup;
        break;
      case K::kStatementError:
        st.kind = FuzzStatement::Kind::kSetupError;
        break;
      case K::kQuery:
        st.kind = FuzzStatement::Kind::kQuery;
        st.has_expected = true;
        st.sort_expected = rec.sort_rows;
        st.expected = rec.expected;
        break;
      case K::kReset:
      case K::kThreads:
        *error = path + ": reset/threads directives are not supported in "
                        "fuzz corpus files (the oracle owns the matrix)";
        return false;
    }
    st.sql = rec.sql;
    fc->stmts.push_back(std::move(st));
  }
  return true;
}

SweepReport RunSweep(uint64_t seed, const SweepOptions& opts,
                     const std::vector<PathConfig>& paths) {
  SweepReport rep;
  Rng mixer(seed);
  while (rep.queries < opts.query_target) {
    uint64_t case_seed = mixer.Next();
    FuzzCase fc = GenerateCase(case_seed, opts.gen);
    CaseResult r = RunCase(fc, paths, opts.oracle);
    ++rep.cases;
    rep.queries += r.queries_run;
    for (const auto& kv : r.telemetry) {
      AccumulateTelemetry(&rep.telemetry[kv.first], kv.second);
    }
    if (!r.diffs.empty()) {
      rep.failing_seeds.push_back(case_seed);
      FuzzCase small = ShrinkCase(fc, paths, opts.oracle);
      std::string repro = RenderCorpus(small, paths, opts.oracle);
      CaseResult rr = RunCase(small, paths, opts.oracle);
      for (const Diff& d : rr.diffs) {
        repro += StrFormat("\n# DIFF stmt %zu path %s: %s\n", d.stmt_index,
                           d.path.c_str(), d.detail.c_str());
      }
      rep.repros.push_back(std::move(repro));
      if (rep.failing_seeds.size() >= opts.max_failures) break;
    }
  }
  return rep;
}

}  // namespace fuzz
}  // namespace sciql
