#include "src/storage/env.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define SCIQL_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sciql {
namespace storage {

namespace fs = std::filesystem;

const char* DurabilityLevelName(DurabilityLevel level) {
  switch (level) {
    case DurabilityLevel::kNone: return "none";
    case DurabilityLevel::kFlush: return "flush";
    case DurabilityLevel::kFsync: return "fsync";
  }
  return "?";
}

bool ParseDurabilityLevel(std::string_view text, DurabilityLevel* out) {
  std::string t(text);
  for (char& c : t) c = static_cast<char>(std::tolower(c));
  if (t == "none") { *out = DurabilityLevel::kNone; return true; }
  if (t == "flush") { *out = DurabilityLevel::kFlush; return true; }
  if (t == "fsync") { *out = DurabilityLevel::kFsync; return true; }
  return false;
}

IoStats& GetIoStats() {
  static IoStats stats;
  return stats;
}

const std::vector<IoStatsField>& IoStatsFields() {
  static const auto* fields = new std::vector<IoStatsField>{
      {"atomic_writes", "WriteFileAtomic commits", &IoStats::atomic_writes},
      {"file_fsyncs", "successful file fsyncs", &IoStats::file_fsyncs},
      {"dir_fsyncs", "successful directory fsyncs", &IoStats::dir_fsyncs},
      {"dir_fsync_failed", "best-effort directory fsyncs swallowed",
       &IoStats::dir_fsync_failed},
      {"wal_appends", "WAL records appended", &IoStats::wal_appends},
      {"wal_fsyncs", "WAL records fsync'd (kFsync durability)",
       &IoStats::wal_fsyncs},
  };
  return *fields;
}

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return StrFormat("%s %s: %s", what, path.c_str(), std::strerror(errno));
}

#ifdef SCIQL_HAVE_POSIX_IO

// fd-based so Sync can reach real fsync(2) — the std::ofstream path the WAL
// used before PR 6 could only flush to the OS, never to the platter.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (!status_.ok()) return status_;
    buf_.append(data.data(), data.size());
    if (buf_.size() >= kFlushThreshold) return Flush();
    return Status::OK();
  }

  Status Flush() override {
    if (!status_.ok()) return status_;
    size_t off = 0;
    while (off < buf_.size()) {
      ssize_t n = ::write(fd_, buf_.data() + off, buf_.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        status_ = Status::IOError(ErrnoMessage("write to", path_));
        return status_;
      }
      off += static_cast<size_t>(n);
    }
    buf_.clear();
    return Status::OK();
  }

  Status Sync() override {
    SCIQL_RETURN_NOT_OK(Flush());
    if (::fsync(fd_) != 0) {
      status_ = Status::IOError(ErrnoMessage("fsync of", path_));
      return status_;
    }
    GetIoStats().file_fsyncs++;
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return status_;
    Status flushed = Flush();
    if (::close(fd_) != 0 && flushed.ok()) {
      flushed = Status::IOError(ErrnoMessage("close of", path_));
    }
    fd_ = -1;
    if (!flushed.ok() && status_.ok()) status_ = flushed;
    return flushed;
  }

 private:
  static constexpr size_t kFlushThreshold = 1 << 20;

  int fd_;
  std::string path_;
  std::string buf_;
  Status status_;  // first error, sticky
};

#else  // portable fallback: stream-based, Sync degrades to Flush

class StreamWritableFile : public WritableFile {
 public:
  StreamWritableFile(std::ofstream out, std::string path)
      : out_(std::move(out)), path_(std::move(path)) {}
  ~StreamWritableFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (!status_.ok()) return status_;
    out_.write(data.data(), static_cast<std::streamsize>(data.size()));
    return Check("write to");
  }
  Status Flush() override {
    if (!status_.ok()) return status_;
    out_.flush();
    return Check("flush of");
  }
  Status Sync() override { return Flush(); }
  Status Close() override {
    if (!out_.is_open()) return status_;
    Status flushed = Flush();
    out_.close();
    return flushed;
  }

 private:
  Status Check(const char* what) {
    if (out_) return Status::OK();
    status_ = Status::IOError(StrFormat("%s %s failed", what, path_.c_str()));
    return status_;
  }

  std::ofstream out_;
  std::string path_;
  Status status_;
};

#endif

class PosixEnv : public Env {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError(StrFormat("cannot open %s", path.c_str()));
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
      return Status::IOError(StrFormat("read failed on %s", path.c_str()));
    }
    return ss.str();
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    fs::directory_iterator it(path, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot list %s: %s", path.c_str(),
                                       ec.message().c_str()));
    }
    std::vector<std::string> names;
    for (const auto& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
#ifdef SCIQL_HAVE_POSIX_IO
    int flags = O_WRONLY | O_CREAT |
                (mode == WriteMode::kTruncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for write", path));
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
#else
    std::ios::openmode m = std::ios::binary |
                           (mode == WriteMode::kTruncate ? std::ios::trunc
                                                         : std::ios::app);
    std::ofstream out(path, m);
    if (!out) {
      return Status::IOError(
          StrFormat("cannot open %s for write", path.c_str()));
    }
    return std::unique_ptr<WritableFile>(
        new StreamWritableFile(std::move(out), path));
#endif
  }

  Status Rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IOError(StrFormat("rename %s -> %s failed: %s",
                                       from.c_str(), to.c_str(),
                                       ec.message().c_str()));
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot truncate %s: %s", path.c_str(),
                                       ec.message().c_str()));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError(StrFormat("cannot remove %s: %s", path.c_str(),
                                       ec.message().c_str()));
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot create directory %s: %s",
                                       path.c_str(), ec.message().c_str()));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
#ifdef SCIQL_HAVE_POSIX_IO
    int dfd = ::open(path.c_str(), O_RDONLY);
    if (dfd < 0) return Status::IOError(ErrnoMessage("cannot open dir", path));
    int rc = ::fsync(dfd);
    ::close(dfd);
    if (rc != 0) return Status::IOError(ErrnoMessage("fsync of dir", path));
    GetIoStats().dir_fsyncs++;
    return Status::OK();
#else
    (void)path;
    return Status::NotSupported("directory fsync is POSIX-only");
#endif
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
}

}  // namespace storage
}  // namespace sciql
