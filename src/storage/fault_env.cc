#include "src/storage/fault_env.h"

#include "src/common/string_util.h"

namespace sciql {
namespace storage {

const char* FaultInjectingEnv::OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate: return "create";
    case OpKind::kWrite: return "write";
    case OpKind::kFsync: return "fsync";
    case OpKind::kRename: return "rename";
    case OpKind::kTruncate: return "truncate";
    case OpKind::kRemove: return "remove";
    case OpKind::kMkdir: return "mkdir";
    case OpKind::kSyncDir: return "syncdir";
  }
  return "?";
}

Status FaultInjectingEnv::FaultStatus(FaultKind kind,
                                      const std::string& path) const {
  switch (kind) {
    case FaultKind::kEIO:
      return Status::IOError(
          StrFormat("injected EIO on %s", path.c_str()));
    case FaultKind::kENOSPC:
      return Status::IOError(
          StrFormat("injected ENOSPC on %s: no space left on device",
                    path.c_str()));
    case FaultKind::kShortWrite:
      return Status::IOError(
          StrFormat("injected short write on %s", path.c_str()));
  }
  return Status::IOError("injected fault");
}

FaultInjectingEnv::Decision FaultInjectingEnv::NextOp(OpKind kind,
                                                      const std::string& path,
                                                      FaultKind* fault_out) {
  if (crashed_) return Decision::kCrash;
  uint64_t index = ops_.size();
  ops_.push_back(OpRecord{kind, path});
  if (crash_at_ >= 0 && index >= static_cast<uint64_t>(crash_at_)) {
    crashed_ = true;
    return Decision::kCrash;
  }
  auto it = faults_.find(index);
  if (it != faults_.end()) {
    faults_injected_++;
    *fault_out = it->second;
    return Decision::kFail;
  }
  return Decision::kProceed;
}

// Buffers appends; the flush is the counted write operation, so a crash or
// short write can land a controlled prefix of exactly the bytes one flush
// would have written.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}
  ~FaultWritableFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (!status_.ok()) return status_;
    pending_.append(data.data(), data.size());
    return Status::OK();
  }

  Status Flush() override {
    if (!status_.ok()) return status_;
    if (pending_.empty()) return Status::OK();  // no bytes to move: no syscall
    FaultInjectingEnv::FaultKind fault;
    switch (env_->NextOp(FaultInjectingEnv::OpKind::kWrite, path_, &fault)) {
      case FaultInjectingEnv::Decision::kProceed: {
        Status st = base_->Append(pending_);
        if (st.ok()) st = base_->Flush();
        if (!st.ok()) { status_ = st; return st; }
        pending_.clear();
        return Status::OK();
      }
      case FaultInjectingEnv::Decision::kFail: {
        if (fault == FaultInjectingEnv::FaultKind::kShortWrite) {
          // A prefix lands before the error — a torn write the recovery
          // machinery must detect via checksums.
          std::string_view half(pending_.data(), pending_.size() / 2);
          (void)base_->Append(half);
          (void)base_->Flush();
        }
        status_ = env_->FaultStatus(fault, path_);
        pending_.clear();
        return status_;
      }
      case FaultInjectingEnv::Decision::kCrash: {
        if (env_->crash_partial_ && !env_->crash_consumed_partial_) {
          env_->crash_consumed_partial_ = true;
          std::string_view half(pending_.data(), pending_.size() / 2);
          (void)base_->Append(half);
          (void)base_->Flush();
        }
        status_ = env_->CrashedStatus();
        pending_.clear();
        return status_;
      }
    }
    return Status::Internal("unreachable");
  }

  Status Sync() override {
    SCIQL_RETURN_NOT_OK(Flush());
    FaultInjectingEnv::FaultKind fault;
    switch (env_->NextOp(FaultInjectingEnv::OpKind::kFsync, path_, &fault)) {
      case FaultInjectingEnv::Decision::kProceed:
        return base_->Sync();
      case FaultInjectingEnv::Decision::kFail:
        status_ = env_->FaultStatus(fault, path_);
        return status_;
      case FaultInjectingEnv::Decision::kCrash:
        status_ = env_->CrashedStatus();
        return status_;
    }
    return Status::Internal("unreachable");
  }

  Status Close() override {
    if (closed_) return status_;
    closed_ = true;
    Status flushed = Flush();
    Status base_closed = base_->Close();
    if (flushed.ok() && !base_closed.ok()) flushed = base_closed;
    return flushed;
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
  std::string pending_;
  Status status_;  // sticky first error
  bool closed_ = false;
};

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, WriteMode mode) {
  // Creating or truncating a file mutates the directory; appending to an
  // existing file does not (the writes themselves are counted at flush time).
  bool mutates = mode == WriteMode::kTruncate || !base_->FileExists(path);
  if (mutates) {
    FaultKind fault;
    switch (NextOp(OpKind::kCreate, path, &fault)) {
      case Decision::kProceed:
        break;
      case Decision::kFail:
        return FaultStatus(fault, path);
      case Decision::kCrash:
        return CrashedStatus();
    }
  } else if (crashed_) {
    return CrashedStatus();
  }
  SCIQL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path, mode));
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(base), path));
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  FaultKind fault;
  switch (NextOp(OpKind::kRename, to, &fault)) {
    case Decision::kProceed: return base_->Rename(from, to);
    case Decision::kFail: return FaultStatus(fault, to);
    case Decision::kCrash: return CrashedStatus();
  }
  return Status::Internal("unreachable");
}

Status FaultInjectingEnv::Truncate(const std::string& path, uint64_t size) {
  FaultKind fault;
  switch (NextOp(OpKind::kTruncate, path, &fault)) {
    case Decision::kProceed: return base_->Truncate(path, size);
    case Decision::kFail: return FaultStatus(fault, path);
    case Decision::kCrash: return CrashedStatus();
  }
  return Status::Internal("unreachable");
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  FaultKind fault;
  switch (NextOp(OpKind::kRemove, path, &fault)) {
    case Decision::kProceed: return base_->RemoveFile(path);
    case Decision::kFail: return FaultStatus(fault, path);
    case Decision::kCrash: return CrashedStatus();
  }
  return Status::Internal("unreachable");
}

Status FaultInjectingEnv::CreateDirs(const std::string& path) {
  // Only count a directory that actually comes into existence.
  if (base_->FileExists(path)) {
    if (crashed_) return CrashedStatus();
    return base_->CreateDirs(path);
  }
  FaultKind fault;
  switch (NextOp(OpKind::kMkdir, path, &fault)) {
    case Decision::kProceed: return base_->CreateDirs(path);
    case Decision::kFail: return FaultStatus(fault, path);
    case Decision::kCrash: return CrashedStatus();
  }
  return Status::Internal("unreachable");
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  FaultKind fault;
  switch (NextOp(OpKind::kSyncDir, path, &fault)) {
    case Decision::kProceed: return base_->SyncDir(path);
    case Decision::kFail: return FaultStatus(fault, path);
    case Decision::kCrash: return CrashedStatus();
  }
  return Status::Internal("unreachable");
}

}  // namespace storage
}  // namespace sciql
