#include "src/storage/file_io.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/codec.h"
#include "src/common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define SCIQL_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sciql {
namespace storage {

Result<std::string> ReadWholeFile(Env* env, const std::string& path) {
  return env->ReadFile(path);
}

Status WriteFileAtomic(Env* env, const std::string& path,
                       std::string_view bytes) {
  std::string tmp = path + ".tmp";
  SCIQL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(tmp, Env::WriteMode::kTruncate));
  Status st = file->Append(bytes);
  // The rename below is the commit point, so the data must be durable
  // before the new name is: rename metadata can otherwise reach disk first
  // and a power loss would leave a committed name with torn contents.
  if (st.ok()) st = file->Sync();
  Status closed = file->Close();
  if (st.ok()) st = closed;
  if (!st.ok()) {
    (void)env->RemoveFile(tmp);  // best effort; GC sweeps leftovers too
    return st;
  }
  SCIQL_RETURN_NOT_OK(env->Rename(tmp, path));
  GetIoStats().atomic_writes++;
  // Persist the rename itself (the directory entry). Best effort — some
  // filesystems reject directory fsync — but never silent: swallowed
  // failures are counted so tests and operators can see them.
  std::string parent = std::filesystem::path(path).parent_path().string();
  if (!parent.empty()) {
    Status synced = env->SyncDir(parent);
    if (!synced.ok()) GetIoStats().dir_fsync_failed++;
  }
  return Status::OK();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#ifdef SCIQL_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, map_len_);
#endif
  base_ = other.base_;
  map_len_ = other.map_len_;
  fallback_ = std::move(other.fallback_);
  // A fallback view aliases the owned string, which just moved; a mapped view
  // aliases the mapping, which transferred verbatim.
  view_ = base_ != nullptr
              ? other.view_
              : std::string_view(fallback_.data(), fallback_.size());
  other.base_ = nullptr;
  other.map_len_ = 0;
  other.view_ = {};
  return *this;
}

MappedFile::~MappedFile() {
#ifdef SCIQL_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, map_len_);
#endif
}

Result<MappedFile> MappedFile::Open(const std::string& path, Env* env) {
  MappedFile f;
  if (env != nullptr && env != Env::Default()) {
    // An injected env must see every read, so mmap (which bypasses it) is off.
    SCIQL_ASSIGN_OR_RETURN(f.fallback_, env->ReadFile(path));
    f.view_ = std::string_view(f.fallback_.data(), f.fallback_.size());
    return f;
  }
#ifdef SCIQL_HAVE_MMAP
  const char* no_mmap = std::getenv("SCIQL_NO_MMAP");
  if (no_mmap == nullptr || no_mmap[0] == '\0' || no_mmap[0] == '0') {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError(StrFormat("cannot open %s", path.c_str()));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError(StrFormat("cannot stat %s", path.c_str()));
    }
    size_t len = static_cast<size_t>(st.st_size);
    if (len == 0) {
      ::close(fd);
      return f;  // empty file: empty view, no mapping needed
    }
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping survives the descriptor
    if (base != MAP_FAILED) {
      f.base_ = base;
      f.map_len_ = len;
      f.view_ = std::string_view(static_cast<const char*>(base), len);
      return f;
    }
    // mmap refused (e.g. filesystem without mapping support): fall through.
  }
#endif
  SCIQL_ASSIGN_OR_RETURN(f.fallback_, ReadWholeFile(path));
  f.view_ = std::string_view(f.fallback_.data(), f.fallback_.size());
  return f;
}

std::string EncodeBlock(uint32_t magic, uint32_t aux, uint64_t count,
                        std::string_view payload) {
  std::string out;
  out.reserve(24 + payload.size());
  ByteWriter w(&out);
  w.PutU32(magic);
  w.PutU32(aux);
  w.PutU64(count);
  w.PutU64(Checksum64(payload));
  out.append(payload.data(), payload.size());
  return out;
}

Result<Block> DecodeBlock(std::string_view bytes, uint32_t expect_magic) {
  ByteReader r(bytes);
  Block b;
  SCIQL_ASSIGN_OR_RETURN(b.magic, r.U32());
  if (b.magic != expect_magic) {
    return Status::IOError("storage block has the wrong magic (wrong or "
                           "corrupt file)");
  }
  SCIQL_ASSIGN_OR_RETURN(b.aux, r.U32());
  SCIQL_ASSIGN_OR_RETURN(b.count, r.U64());
  SCIQL_ASSIGN_OR_RETURN(uint64_t checksum, r.U64());
  SCIQL_ASSIGN_OR_RETURN(b.payload, r.Bytes(r.remaining()));
  if (Checksum64(b.payload) != checksum) {
    return Status::IOError("storage block checksum mismatch");
  }
  return b;
}

}  // namespace storage
}  // namespace sciql
