#include "src/storage/wal.h"

#include <filesystem>

#include "src/common/codec.h"
#include "src/common/string_util.h"
#include "src/storage/file_io.h"

namespace sciql {
namespace storage {

namespace {
constexpr uint32_t kRecordMagic = 0x314C4157;  // "WAL1"
constexpr size_t kRecordHeader = 24;
}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const ReplayFn& replay) {
  std::unique_ptr<Wal> wal(new Wal());
  wal->path_ = path;

  std::string bytes;
  if (std::filesystem::exists(path)) {
    SCIQL_ASSIGN_OR_RETURN(bytes, ReadWholeFile(path));
  }

  // Scan: every record that checks out is replayed; the first record that
  // does not (short header, bad magic, length past the end, checksum
  // mismatch) marks the torn tail, which is discarded by truncation below.
  size_t good_end = 0;
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    if (r.remaining() < kRecordHeader) break;
    size_t record_start = r.pos();
    uint32_t magic = *r.U32();
    (void)*r.U32();  // reserved
    uint64_t len = *r.U64();
    uint64_t checksum = *r.U64();
    if (magic != kRecordMagic || len > r.remaining()) break;
    Result<std::string_view> payload = r.Bytes(len);
    if (!payload.ok() || Checksum64(*payload) != checksum) break;
    if (replay) {
      Status st = replay(*payload);
      if (!st.ok()) {
        return Status::IOError(StrFormat(
            "WAL replay failed at record %llu (byte %zu of %s): %s",
            static_cast<unsigned long long>(wal->replayed_count_),
            record_start, path.c_str(), st.ToString().c_str()));
      }
    }
    wal->replayed_count_++;
    good_end = r.pos();
  }
  wal->record_count_ = wal->replayed_count_;
  wal->discarded_bytes_ = bytes.size() - good_end;

  if (good_end < bytes.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, good_end, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot truncate torn WAL tail of %s: %s",
                                       path.c_str(), ec.message().c_str()));
    }
  }

  wal->out_.open(path, std::ios::binary | std::ios::app);
  if (!wal->out_) {
    return Status::IOError(StrFormat("cannot open WAL %s for append",
                                     path.c_str()));
  }
  return wal;
}

Status Wal::Append(std::string_view payload) {
  std::string rec;
  rec.reserve(kRecordHeader + payload.size());
  ByteWriter w(&rec);
  w.PutU32(kRecordMagic);
  w.PutU32(0);
  w.PutU64(payload.size());
  w.PutU64(Checksum64(payload));
  rec.append(payload.data(), payload.size());

  out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  out_.flush();
  if (!out_) {
    return Status::IOError(StrFormat("WAL append to %s failed", path_.c_str()));
  }
  ++record_count_;
  return Status::OK();
}

Status Wal::Reset() {
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return Status::IOError(StrFormat("cannot truncate WAL %s", path_.c_str()));
  }
  out_.flush();
  // Reopen in append mode so later Appends and a concurrent reader agree.
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    return Status::IOError(StrFormat("cannot reopen WAL %s", path_.c_str()));
  }
  record_count_ = 0;
  return Status::OK();
}

}  // namespace storage
}  // namespace sciql
