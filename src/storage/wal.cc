#include "src/storage/wal.h"

#include "src/common/codec.h"
#include "src/common/string_util.h"
#include "src/storage/file_io.h"

namespace sciql {
namespace storage {

namespace {
constexpr uint32_t kRecordMagic = 0x314C4157;  // "WAL1"
constexpr size_t kRecordHeader = 24;
}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const ReplayFn& replay, Env* env,
                                       DurabilityLevel durability) {
  std::unique_ptr<Wal> wal(new Wal());
  wal->path_ = path;
  wal->env_ = env != nullptr ? env : Env::Default();
  wal->durability_ = durability;

  std::string bytes;
  if (wal->env_->FileExists(path)) {
    SCIQL_ASSIGN_OR_RETURN(bytes, ReadWholeFile(wal->env_, path));
  }

  // Scan: every record that checks out is replayed; the first record that
  // does not (short header, bad magic, length past the end, checksum
  // mismatch) marks the torn tail, which is discarded by truncation below.
  size_t good_end = 0;
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    if (r.remaining() < kRecordHeader) break;
    size_t record_start = r.pos();
    uint32_t magic = *r.U32();
    (void)*r.U32();  // reserved
    uint64_t len = *r.U64();
    uint64_t checksum = *r.U64();
    if (magic != kRecordMagic || len > r.remaining()) break;
    Result<std::string_view> payload = r.Bytes(len);
    if (!payload.ok() || Checksum64(*payload) != checksum) break;
    if (replay) {
      Status st = replay(*payload);
      if (!st.ok()) {
        return Status::IOError(StrFormat(
            "WAL replay failed at record %llu (byte %zu of %s): %s",
            static_cast<unsigned long long>(wal->replayed_count_),
            record_start, path.c_str(), st.ToString().c_str()));
      }
    }
    wal->replayed_count_++;
    good_end = r.pos();
  }
  wal->record_count_ = wal->replayed_count_;
  wal->discarded_bytes_ = bytes.size() - good_end;

  if (good_end < bytes.size()) {
    Status st = wal->env_->Truncate(path, good_end);
    if (!st.ok()) {
      return Status::IOError(StrFormat("cannot truncate torn WAL tail of %s: %s",
                                       path.c_str(), st.ToString().c_str()));
    }
  }

  SCIQL_ASSIGN_OR_RETURN(
      wal->out_, wal->env_->NewWritableFile(path, Env::WriteMode::kAppend));
  return wal;
}

Status Wal::Append(std::string_view payload) {
  std::string rec;
  rec.reserve(kRecordHeader + payload.size());
  ByteWriter w(&rec);
  w.PutU32(kRecordMagic);
  w.PutU32(0);
  w.PutU64(payload.size());
  w.PutU64(Checksum64(payload));
  rec.append(payload.data(), payload.size());

  Status st = out_->Append(rec);
  // The durability level decides how far the record is pushed before the
  // statement is acknowledged: kNone leaves it buffered (a crash may lose
  // it), kFlush reaches the OS, kFsync reaches the platter.
  if (st.ok() && durability_ != DurabilityLevel::kNone) {
    st = durability_ == DurabilityLevel::kFsync ? out_->Sync() : out_->Flush();
    if (st.ok() && durability_ == DurabilityLevel::kFsync) {
      GetIoStats().wal_fsyncs++;
    }
  }
  if (!st.ok()) {
    return Status::IOError(StrFormat("WAL append to %s failed: %s",
                                     path_.c_str(), st.ToString().c_str()));
  }
  GetIoStats().wal_appends++;
  ++record_count_;
  return Status::OK();
}

Status Wal::Reset() {
  // The old stream's close result is deliberately ignored: Reset discards
  // every buffered or half-appended byte by design (the file is truncated
  // right below), so a sticky error from an earlier failed append — already
  // reported to that append's caller — must not leave the WAL permanently
  // unusable. What a reset can never do is report success without a clean
  // truncated stream, so the reopen below is checked.
  if (out_ != nullptr) (void)out_->Close();
  out_.reset();
  auto fresh = env_->NewWritableFile(path_, Env::WriteMode::kTruncate);
  if (!fresh.ok()) {
    return Status::IOError(StrFormat("cannot truncate WAL %s: %s",
                                     path_.c_str(),
                                     fresh.status().ToString().c_str()));
  }
  out_ = std::move(*fresh);
  record_count_ = 0;
  return Status::OK();
}

}  // namespace storage
}  // namespace sciql
