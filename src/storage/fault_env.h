// A fault-injecting Env test double. It wraps a real Env, counts every
// *mutating* filesystem operation (file creation/truncation, buffered-write
// flush, fsync, rename, truncate, remove, mkdir, directory fsync) and can
//
//  (a) fail the Nth such operation with an injected error (EIO, ENOSPC, or a
//      short write that lands only a prefix of the bytes before erroring), or
//  (b) "crash" at the Nth operation: that operation has no effect (or, in the
//      partial flavor, a write lands only half its bytes — a torn write) and
//      every later mutating operation is a failing no-op, exactly as if the
//      machine lost power at that syscall. Reads keep working and observe the
//      on-disk state as the crash left it.
//
// Because the wrapped writes are deterministic, one counting pass over a
// workload yields the operation schedule, and replaying the workload with a
// crash at every k in [0, N) enumerates every reachable disk state — the
// crash-point matrix (tests/storage/crash_matrix_test.cpp).

#ifndef SCIQL_STORAGE_FAULT_ENV_H_
#define SCIQL_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/storage/env.h"

namespace sciql {
namespace storage {

class FaultInjectingEnv : public Env {
 public:
  enum class OpKind {
    kCreate,    ///< file created or truncated open
    kWrite,     ///< buffered bytes pushed to the file
    kFsync,     ///< file fsync
    kRename,
    kTruncate,
    kRemove,
    kMkdir,
    kSyncDir,   ///< directory fsync
  };
  enum class FaultKind {
    kEIO,        ///< the operation fails, nothing lands
    kENOSPC,     ///< the operation fails, nothing lands ("no space")
    kShortWrite, ///< a write lands only half its bytes, then fails
  };
  struct OpRecord {
    OpKind kind;
    std::string path;
  };

  static const char* OpKindName(OpKind kind);

  /// Wraps `base` (default: the real filesystem).
  explicit FaultInjectingEnv(Env* base = nullptr)
      : base_(base != nullptr ? base : Env::Default()) {}

  // -- schedule -------------------------------------------------------------

  /// The `index`-th mutating operation (0-based) fails with `kind`.
  void FailOperation(uint64_t index, FaultKind kind) {
    faults_[index] = kind;
  }
  /// Crash at the `index`-th mutating operation: it has no effect (with
  /// `partial_write`, a write op lands half its bytes first — a torn write)
  /// and all later mutating operations fail without effect.
  void CrashAtOperation(uint64_t index, bool partial_write = false) {
    crash_at_ = static_cast<int64_t>(index);
    crash_partial_ = partial_write;
  }
  /// Crash immediately: every mutating operation from now on is a failing
  /// no-op (models pulling the plug between operations).
  void HaltAllWrites() { crashed_ = true; }
  /// Forget the schedule and all counters (the env becomes a pure pass-through).
  void Reset() {
    faults_.clear();
    crash_at_ = -1;
    crash_partial_ = false;
    crash_consumed_partial_ = false;
    crashed_ = false;
    faults_injected_ = 0;
    ops_.clear();
  }

  // -- observation ----------------------------------------------------------

  /// Mutating operations attempted so far (the crash op, if any, included).
  uint64_t op_count() const { return ops_.size(); }
  const std::vector<OpRecord>& ops() const { return ops_; }
  bool crashed() const { return crashed_; }
  uint64_t faults_injected() const { return faults_injected_; }

  // -- Env ------------------------------------------------------------------

  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultWritableFile;

  enum class Decision { kProceed, kFail, kCrash };

  /// Count one mutating operation against the schedule. On kFail,
  /// `*fault_out` says how; on kCrash the env is halted (crashed() is true
  /// from here on). Once crashed, returns kCrash without counting.
  Decision NextOp(OpKind kind, const std::string& path, FaultKind* fault_out);

  Status CrashedStatus() const {
    return Status::IOError("simulated crash: writes halted");
  }
  Status FaultStatus(FaultKind kind, const std::string& path) const;

  Env* base_;
  std::map<uint64_t, FaultKind> faults_;
  int64_t crash_at_ = -1;
  bool crash_partial_ = false;
  bool crash_consumed_partial_ = false;
  bool crashed_ = false;
  uint64_t faults_injected_ = 0;
  std::vector<OpRecord> ops_;
};

}  // namespace storage
}  // namespace sciql

#endif  // SCIQL_STORAGE_FAULT_ENV_H_
