// The filesystem seam of the durable storage engine. Every byte the engine
// writes — WAL records, heap files, the manifest — and every directory-level
// mutation (rename, truncate, remove, mkdir, directory fsync) goes through an
// Env, so tests can substitute a FaultInjectingEnv (fault_env.h) that fails
// or "crashes" at any chosen operation and prove the recovery invariants hold
// at every single I/O point. Production uses the PosixEnv singleton
// (Env::Default()).

#ifndef SCIQL_STORAGE_ENV_H_
#define SCIQL_STORAGE_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace sciql {
namespace storage {

/// \brief How hard the WAL pushes an appended record toward the platter
/// before the statement is acknowledged as committed.
enum class DurabilityLevel {
  kNone,   ///< buffered only; a crash may lose acknowledged statements
  kFlush,  ///< pushed to the OS page cache; survives process crash, not power loss
  kFsync,  ///< fsync'd; survives power loss (the default)
};

const char* DurabilityLevelName(DurabilityLevel level);
/// Parse "none" / "flush" / "fsync" (case-insensitive); false if unknown.
bool ParseDurabilityLevel(std::string_view text, DurabilityLevel* out);

/// \brief A sequentially-written file. Append buffers in user space; Flush
/// pushes the buffer to the OS; Sync additionally fsyncs. Errors stick:
/// once a write fails the file is broken and every later call reports it.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  /// Flushes, then closes. Idempotent.
  virtual Status Close() = 0;
};

/// \brief The injectable filesystem abstraction. All paths are plain strings;
/// implementations never interpret them beyond passing them to the OS.
class Env {
 public:
  enum class WriteMode { kTruncate, kAppend };

  virtual ~Env() = default;

  /// The process-wide PosixEnv (never null, never destroyed).
  static Env* Default();

  // -- reads ---------------------------------------------------------------
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Entries (leaf names, not full paths) of `path`, sorted — deterministic
  /// order keeps fault-injection op sequences reproducible.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  // -- writes --------------------------------------------------------------
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  /// fsync the directory itself (persists renames/creates within it). Some
  /// filesystems reject this; callers decide whether that is fatal.
  virtual Status SyncDir(const std::string& path) = 0;
};

/// \brief Process-wide storage I/O counters, exposed so swallowed best-effort
/// failures (notably directory fsyncs) are visible to tests and operators
/// instead of disappearing silently. Mirrors the gdk::Telemetry() pattern.
struct IoStats {
  std::atomic<uint64_t> atomic_writes{0};     ///< WriteFileAtomic commits
  std::atomic<uint64_t> file_fsyncs{0};       ///< successful file fsyncs
  std::atomic<uint64_t> dir_fsyncs{0};        ///< successful directory fsyncs
  std::atomic<uint64_t> dir_fsync_failed{0};  ///< best-effort dir fsyncs swallowed
  std::atomic<uint64_t> wal_appends{0};       ///< WAL records appended
  std::atomic<uint64_t> wal_fsyncs{0};        ///< WAL records fsync'd (kFsync)
};

IoStats& GetIoStats();

/// \brief Counter catalog entry for IoStats: stable field name + member
/// pointer, so the metrics registry (src/obs/) and any snapshotting consumer
/// iterate one table. Mirrors gdk::TelemetryFields().
struct IoStatsField {
  const char* name;
  const char* help;
  std::atomic<uint64_t> IoStats::*member;
};

/// \brief The full IoStats counter catalog, in declaration order.
const std::vector<IoStatsField>& IoStatsFields();

}  // namespace storage
}  // namespace sciql

#endif  // SCIQL_STORAGE_ENV_H_
