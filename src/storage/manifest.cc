#include "src/storage/manifest.h"

#include "src/catalog/schema_io.h"
#include "src/common/codec.h"
#include "src/common/string_util.h"

namespace sciql {
namespace storage {

namespace {

constexpr uint32_t kManifestMagic = 0x4D4C5153;  // "SQLM"
constexpr uint32_t kManifestVersion = 1;

void PutColumnFiles(ByteWriter* w, const ColumnFiles& f) {
  w->PutStr(f.heap);
  w->PutStr(f.strheap);
  w->PutStr(f.oidx);
}

Result<ColumnFiles> GetColumnFiles(ByteReader* r) {
  ColumnFiles f;
  SCIQL_ASSIGN_OR_RETURN(f.heap, r->Str());
  SCIQL_ASSIGN_OR_RETURN(f.strheap, r->Str());
  SCIQL_ASSIGN_OR_RETURN(f.oidx, r->Str());
  return f;
}

}  // namespace

std::string Manifest::Encode() const {
  std::string payload;
  ByteWriter w(&payload);
  w.PutU64(next_epoch);
  w.PutStr(wal_file);
  w.PutU64(tables.size());
  w.PutU64(arrays.size());
  for (const TableManifest& t : tables) {
    w.PutStr(t.name);
    w.PutU64(t.row_count);
    w.PutU64(t.columns.size());
    for (const auto& c : t.columns) catalog::PutAttrDesc(&w, c);
    for (const auto& f : t.files) PutColumnFiles(&w, f);
  }
  for (const ArrayManifest& a : arrays) {
    w.PutStr(a.name);
    w.PutU64(a.dims.size());
    for (const auto& d : a.dims) catalog::PutDimDesc(&w, d);
    w.PutU64(a.attrs.size());
    for (const auto& at : a.attrs) catalog::PutAttrDesc(&w, at);
    for (const auto& f : a.files) PutColumnFiles(&w, f);
  }

  std::string out;
  ByteWriter h(&out);
  h.PutU32(kManifestMagic);
  h.PutU32(kManifestVersion);
  h.PutU64(Checksum64(payload));
  out += payload;
  return out;
}

Result<Manifest> Manifest::Decode(std::string_view bytes) {
  ByteReader r(bytes);
  SCIQL_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kManifestMagic) {
    return Status::IOError("not a sciql storage manifest");
  }
  SCIQL_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kManifestVersion) {
    return Status::IOError(
        StrFormat("unsupported manifest version %u", version));
  }
  SCIQL_ASSIGN_OR_RETURN(uint64_t checksum, r.U64());
  std::string_view payload(bytes.data() + r.pos(), bytes.size() - r.pos());
  if (Checksum64(payload) != checksum) {
    return Status::IOError("manifest checksum mismatch");
  }

  Manifest m;
  SCIQL_ASSIGN_OR_RETURN(m.next_epoch, r.U64());
  SCIQL_ASSIGN_OR_RETURN(m.wal_file, r.Str());
  SCIQL_ASSIGN_OR_RETURN(uint64_t ntables, r.U64());
  SCIQL_ASSIGN_OR_RETURN(uint64_t narrays, r.U64());
  for (uint64_t t = 0; t < ntables; ++t) {
    TableManifest tm;
    SCIQL_ASSIGN_OR_RETURN(tm.name, r.Str());
    SCIQL_ASSIGN_OR_RETURN(tm.row_count, r.U64());
    SCIQL_ASSIGN_OR_RETURN(uint64_t ncols, r.U64());
    if (ncols > r.remaining()) {
      return Status::IOError("truncated manifest: column count");
    }
    for (uint64_t c = 0; c < ncols; ++c) {
      SCIQL_ASSIGN_OR_RETURN(array::AttrDesc a, catalog::GetAttrDesc(&r));
      tm.columns.push_back(std::move(a));
    }
    for (uint64_t c = 0; c < ncols; ++c) {
      SCIQL_ASSIGN_OR_RETURN(ColumnFiles f, GetColumnFiles(&r));
      tm.files.push_back(std::move(f));
    }
    m.tables.push_back(std::move(tm));
  }
  for (uint64_t a = 0; a < narrays; ++a) {
    ArrayManifest am;
    SCIQL_ASSIGN_OR_RETURN(am.name, r.Str());
    SCIQL_ASSIGN_OR_RETURN(uint64_t ndims, r.U64());
    if (ndims > r.remaining()) {
      return Status::IOError("truncated manifest: dimension count");
    }
    for (uint64_t d = 0; d < ndims; ++d) {
      SCIQL_ASSIGN_OR_RETURN(array::DimDesc dim, catalog::GetDimDesc(&r));
      am.dims.push_back(std::move(dim));
    }
    SCIQL_ASSIGN_OR_RETURN(uint64_t nattrs, r.U64());
    if (nattrs > r.remaining()) {
      return Status::IOError("truncated manifest: attribute count");
    }
    for (uint64_t c = 0; c < nattrs; ++c) {
      SCIQL_ASSIGN_OR_RETURN(array::AttrDesc ad, catalog::GetAttrDesc(&r));
      am.attrs.push_back(std::move(ad));
    }
    for (uint64_t c = 0; c < nattrs; ++c) {
      SCIQL_ASSIGN_OR_RETURN(ColumnFiles f, GetColumnFiles(&r));
      am.files.push_back(std::move(f));
    }
    m.arrays.push_back(std::move(am));
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes in manifest");
  }
  return m;
}

}  // namespace storage
}  // namespace sciql
