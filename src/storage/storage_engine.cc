#include "src/storage/storage_engine.h"

#include <filesystem>
#include <set>

#include "src/common/codec.h"
#include "src/common/string_util.h"
#include "src/gdk/kernels.h"
#include "src/storage/file_io.h"

namespace sciql {
namespace storage {

namespace fs = std::filesystem;

using gdk::BAT;
using gdk::BATPtr;
using gdk::PhysType;

namespace {

constexpr const char* kManifestFile = "MANIFEST";
constexpr const char* kHeapDir = "heaps";

// Object/column names become file name components. Quoted SQL identifiers
// may contain arbitrary characters ('/', '.', '..'), so anything outside
// [a-z0-9_] is mapped to '_'; uniqueness comes from the epoch, never from
// the name, so collisions between sanitized names are harmless.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

std::string EpochName(const std::string& object, const std::string& column,
                      uint64_t epoch, const char* suffix) {
  return StrFormat("%s/%s.%s.%llu.%s", kHeapDir,
                   SanitizeName(object).c_str(), SanitizeName(column).c_str(),
                   static_cast<unsigned long long>(epoch), suffix);
}

}  // namespace

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& dir, catalog::Catalog* cat, const ReplayFn& replay,
    const OpenOptions& options) {
  if (!cat->TableNames().empty() || !cat->ArrayNames().empty()) {
    return Status::InvalidArgument(
        "storage can only attach to an empty catalog");
  }
  std::unique_ptr<StorageEngine> eng(new StorageEngine());
  eng->dir_ = dir;
  eng->env_ = options.env != nullptr ? options.env : Env::Default();
  eng->durability_ = options.durability;
  eng->cat_ = cat;

  Status made = eng->env_->CreateDirs((fs::path(dir) / kHeapDir).string());
  if (!made.ok()) {
    return Status::IOError(StrFormat("cannot create database directory %s: %s",
                                     dir.c_str(), made.ToString().c_str()));
  }

  std::string manifest_path = (fs::path(dir) / kManifestFile).string();
  if (eng->env_->FileExists(manifest_path)) {
    SCIQL_ASSIGN_OR_RETURN(std::string bytes,
                           ReadWholeFile(eng->env_, manifest_path));
    SCIQL_ASSIGN_OR_RETURN(eng->manifest_, Manifest::Decode(bytes));
  }
  eng->epoch_ = eng->manifest_.next_epoch;

  // Declare every manifest object: schema now, column data on first touch.
  for (const TableManifest& tm : eng->manifest_.tables) {
    SCIQL_RETURN_NOT_OK(cat->CreateTable(tm.name, tm.columns));
    cat->MarkUnloaded(tm.name);
  }
  for (const ArrayManifest& am : eng->manifest_.arrays) {
    SCIQL_RETURN_NOT_OK(
        cat->DeclareArray(am.name, array::ArrayDesc(am.dims, am.attrs)));
    cat->MarkUnloaded(am.name);
  }
  StorageEngine* raw = eng.get();
  cat->SetLoader([raw](const std::string& name) {
    return raw->LoadObject(name);
  });

  // Replay committed statements since the last checkpoint; a torn tail is
  // truncated. Replay triggers lazy loads of exactly the touched objects.
  // The manifest names the log it pairs with: a checkpoint that crashed
  // after its manifest commit left an old log behind, which is exactly the
  // one we must NOT replay (its statements are folded into the heaps).
  std::string wal_path = (fs::path(dir) / eng->manifest_.wal_file).string();
  Wal::ReplayFn replay_record;
  if (replay) {
    replay_record = [&replay](std::string_view payload) {
      return replay(std::string(payload));
    };
  }
  SCIQL_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                         Wal::Open(wal_path, replay_record, eng->env_,
                                   eng->durability_));
  eng->stats_.wal_replayed = wal->replayed_count();
  eng->stats_.wal_discarded_bytes = wal->discarded_bytes();
  {
    common::MutexLock lk(&eng->wal_mu_);
    eng->wal_ = std::move(wal);
  }
  return eng;
}

StorageEngine::~StorageEngine() { Detach(); }

void StorageEngine::Detach() {
  if (cat_ != nullptr) {
    cat_->SetLoader(nullptr);
    cat_ = nullptr;
  }
}

void StorageEngine::LoadAllForDetach() {
  if (cat_ == nullptr) return;
  for (const std::string& name : cat_->TableNames()) {
    if (cat_->IsUnloaded(name)) (void)cat_->GetTable(name);
  }
  for (const std::string& name : cat_->ArrayNames()) {
    if (cat_->IsUnloaded(name)) (void)cat_->GetArray(name);
  }
}

Status StorageEngine::LogStatement(const std::string& sql) {
  common::MutexLock lk(&wal_mu_);
  if (wal_ == nullptr) return Status::Internal("storage engine has no WAL");
  return wal_->Append(sql);
}

// ---------------------------------------------------------------------------
// Lazy loading
// ---------------------------------------------------------------------------

Status StorageEngine::LoadObject(const std::string& name) {
  for (const TableManifest& tm : manifest_.tables) {
    if (tm.name == name) return LoadTable(name, tm);
  }
  for (const ArrayManifest& am : manifest_.arrays) {
    if (am.name == name) return LoadArray(name, am);
  }
  return Status::Internal(
      StrFormat("object %s is not in the storage manifest", name.c_str()));
}

Status StorageEngine::LoadTable(const std::string& name,
                                const TableManifest& tm) {
  SCIQL_ASSIGN_OR_RETURN(auto tab, cat_->GetTable(name));
  ObjectState state;
  SiblingColumns siblings;
  for (size_t c = 0; c < tm.columns.size(); ++c) {
    SCIQL_ASSIGN_OR_RETURN(
        BATPtr b, LoadColumn(name, tm.columns[c].name, tm.columns[c].type,
                             tm.files[c], &state));
    if (b->Count() != tm.row_count) {
      return Status::IOError(StrFormat(
          "column %s.%s holds %zu rows, manifest says %llu", name.c_str(),
          tm.columns[c].name.c_str(), b->Count(),
          static_cast<unsigned long long>(tm.row_count)));
    }
    siblings.names.push_back(tm.columns[c].name);
    siblings.bats.push_back(b);
    tab->bats[c] = b;
  }
  // Persisted order indexes may reference sibling columns (multi-key
  // specs), so adoption waits until every column of the object exists.
  AdoptColumnIndexes(siblings, &state);
  {
    common::MutexLock lk(&state_mu_);
    state_[name] = std::move(state);
  }
  stats_.objects_loaded++;
  return Status::OK();
}

Status StorageEngine::LoadArray(const std::string& name,
                                const ArrayManifest& am) {
  SCIQL_ASSIGN_OR_RETURN(auto arr, cat_->GetArray(name));
  SCIQL_RETURN_NOT_OK(arr->MaterializeDims());
  size_t ncells = arr->CellCount();
  ObjectState state;
  SiblingColumns siblings;
  std::vector<BATPtr> attrs;
  for (size_t c = 0; c < am.attrs.size(); ++c) {
    SCIQL_ASSIGN_OR_RETURN(
        BATPtr b, LoadColumn(name, am.attrs[c].name, am.attrs[c].type,
                             am.files[c], &state));
    if (b->Count() != ncells) {
      return Status::IOError(StrFormat(
          "attribute %s.%s holds %zu cells, the array geometry needs %zu",
          name.c_str(), am.attrs[c].name.c_str(), b->Count(), ncells));
    }
    siblings.names.push_back(am.attrs[c].name);
    siblings.bats.push_back(b);
    attrs.push_back(std::move(b));
  }
  // Dimensions are valid secondary keys: they rematerialized above with
  // deterministic values, and revalidation re-proves every adopted spec.
  for (size_t d = 0; d < am.dims.size(); ++d) {
    siblings.names.push_back(am.dims[d].name);
    siblings.bats.push_back(arr->dim_bats[d]);
  }
  AdoptColumnIndexes(siblings, &state);
  arr->attr_bats = std::move(attrs);
  {
    common::MutexLock lk(&state_mu_);
    state_[name] = std::move(state);
  }
  stats_.objects_loaded++;
  return Status::OK();
}

Result<BATPtr> StorageEngine::LoadColumn(const std::string& object,
                                         const std::string& column,
                                         PhysType type,
                                         const ColumnFiles& files,
                                         ObjectState* state) {
  std::string heap_path = (fs::path(dir_) / files.heap).string();
  SCIQL_ASSIGN_OR_RETURN(MappedFile heap_file,
                         MappedFile::Open(heap_path, env_));
  SCIQL_ASSIGN_OR_RETURN(Block heap, DecodeBlock(heap_file.data(), kHeapMagic));
  if (heap.aux != static_cast<uint32_t>(type)) {
    return Status::IOError(StrFormat("heap %s stores type %u, schema says %s",
                                     files.heap.c_str(), heap.aux,
                                     PhysTypeName(type)));
  }

  BATPtr bat;
  if (type == PhysType::kStr) {
    if (files.strheap.empty()) {
      return Status::IOError(StrFormat("string column %s.%s has no string "
                                       "heap file", object.c_str(),
                                       column.c_str()));
    }
    std::string sh_path = (fs::path(dir_) / files.strheap).string();
    SCIQL_ASSIGN_OR_RETURN(MappedFile sh_file, MappedFile::Open(sh_path, env_));
    SCIQL_ASSIGN_OR_RETURN(Block sh, DecodeBlock(sh_file.data(), kStrHeapMagic));
    SCIQL_ASSIGN_OR_RETURN(auto strheap, gdk::StrHeap::FromBytes(sh.payload));
    SCIQL_ASSIGN_OR_RETURN(
        bat, BAT::ImportStrTail(std::move(strheap), heap.payload, heap.count));
  } else {
    SCIQL_ASSIGN_OR_RETURN(bat, BAT::ImportTail(type, heap.payload, heap.count));
  }

  ColumnState cs;
  cs.files = files;
  cs.bat = bat;
  cs.version = bat->data_version();
  state->cols.push_back(std::move(cs));
  return bat;
}

namespace {

// One persisted index spec parsed out of a container (or a legacy file).
struct ParsedSpec {
  std::vector<std::string> key_names;
  std::vector<bool> desc;
  std::vector<gdk::oid_t> idx;
};

// Parse the payload of an order-index block into its specs. Legacy files
// (aux == kOrderIdxLegacyAux) hold one raw single-ascending-key
// permutation; spec containers hold `count` keyed entries.
bool ParseIndexSpecs(const Block& block, const std::string& column,
                     std::vector<ParsedSpec>* out) {
  if (block.aux == kOrderIdxLegacyAux) {
    ParsedSpec spec;
    spec.key_names.push_back(column);
    spec.desc.push_back(false);
    ByteReader r(block.payload);
    if (!r.ReadVector(block.count, &spec.idx).ok() || !r.AtEnd()) return false;
    out->push_back(std::move(spec));
    return true;
  }
  if (block.aux != kOrderIdxSpecAux) return false;
  ByteReader r(block.payload);
  for (uint64_t s = 0; s < block.count; ++s) {
    ParsedSpec spec;
    Result<uint64_t> nkeys = r.U64();
    if (!nkeys.ok() || *nkeys == 0 || *nkeys > r.remaining()) return false;
    for (uint64_t k = 0; k < *nkeys; ++k) {
      Result<std::string> kname = r.Str();
      Result<uint64_t> d = r.U64();
      if (!kname.ok() || !d.ok()) return false;
      spec.key_names.push_back(std::move(*kname));
      spec.desc.push_back(*d != 0);
    }
    Result<uint64_t> nrows = r.U64();
    if (!nrows.ok() || !r.ReadVector(*nrows, &spec.idx).ok()) return false;
    out->push_back(std::move(spec));
  }
  return r.AtEnd();
}

}  // namespace

void StorageEngine::AdoptColumnIndexes(const SiblingColumns& siblings,
                                       ObjectState* state) {
  for (size_t c = 0; c < state->cols.size(); ++c) {
    ColumnState& cs = state->cols[c];
    if (cs.files.oidx.empty()) continue;
    const std::string& column = siblings.names[c];

    // Persisted order indexes are derived data: revalidate each spec
    // against the loaded columns and adopt it only if it is exactly the
    // permutation the sort would rebuild. Anything corrupt or stale is
    // dropped, never trusted.
    std::vector<ParsedSpec> specs;
    std::string ox_path = (fs::path(dir_) / cs.files.oidx).string();
    Result<MappedFile> ox_file = MappedFile::Open(ox_path, env_);
    bool parsed = false;
    if (ox_file.ok()) {
      Result<Block> ox = DecodeBlock(ox_file->data(), kOrderIdxMagic);
      parsed = ox.ok() && ParseIndexSpecs(*ox, column, &specs);
    }
    if (!parsed) {
      cs.files.oidx.clear();
      stats_.order_indexes_rejected++;
      continue;
    }

    for (ParsedSpec& spec : specs) {
      // Resolve key names within the object; the primary must be this
      // very column, and only canonical specs (primary ascending) exist.
      std::vector<BATPtr> keys;
      bool resolved = spec.key_names.size() == spec.desc.size() &&
                      !spec.desc.empty() && !spec.desc[0];
      for (const std::string& kname : spec.key_names) {
        if (!resolved) break;
        resolved = false;
        for (size_t i = 0; i < siblings.names.size(); ++i) {
          if (siblings.names[i] == kname) {
            keys.push_back(siblings.bats[i]);
            resolved = true;
            break;
          }
        }
      }
      resolved = resolved && keys[0].get() == cs.bat.get();
      bool valid = false;
      if (resolved) {
        std::vector<const BAT*> raw;
        for (const BATPtr& k : keys) raw.push_back(k.get());
        valid = gdk::ValidateOrderIndexSpec(raw, spec.desc, spec.idx);
      }
      if (!valid) {
        // Keep a sentinel so the identity sets can never match and the
        // next checkpoint rewrites the container without the bad spec.
        cs.oidx_ids.push_back(nullptr);
        stats_.order_indexes_rejected++;
        continue;
      }
      auto shared = std::make_shared<const std::vector<gdk::oid_t>>(
          std::move(spec.idx));
      cs.oidx_ids.push_back(shared.get());
      if (keys.size() == 1) {
        cs.bat->SetOrderIndex(std::move(shared));
      } else {
        cs.bat->CacheOrderIndexSpec(
            std::vector<BATPtr>(keys.begin() + 1, keys.end()), spec.desc,
            std::move(shared));
        gdk::Telemetry().order_index_loaded_multi++;
      }
      gdk::Telemetry().order_index_loaded++;
      stats_.order_indexes_loaded++;
    }
    std::sort(cs.oidx_ids.begin(), cs.oidx_ids.end());
  }
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

// Gather the column's live cached indexes that can be persisted: every
// secondary key column must be (identity-equal to) a sibling column of the
// same object, since specs are stored by column name and resolved within
// the object on load. Indexes keyed on columns of other objects or on
// temporaries are simply not persisted.
std::vector<StorageEngine::PersistableIndex> StorageEngine::GatherIndexes(
    const std::string& column, const gdk::BATPtr& bat,
    const SiblingColumns& siblings) {
  std::vector<PersistableIndex> out;
  for (const gdk::OrderIndexView& v : bat->LiveOrderIndexes()) {
    PersistableIndex p;
    p.key_names.push_back(column);
    p.desc = v.desc;
    p.idx = v.idx;
    bool ok = true;
    for (size_t i = 1; i < v.keys.size() && ok; ++i) {
      ok = false;
      for (size_t s = 0; s < siblings.bats.size(); ++s) {
        if (siblings.bats[s].get() == v.keys[i]) {
          p.key_names.push_back(siblings.names[s]);
          ok = true;
          break;
        }
      }
    }
    if (ok) out.push_back(std::move(p));
  }
  return out;
}

std::vector<const void*> StorageEngine::IndexIds(
    const std::vector<PersistableIndex>& idxs) {
  std::vector<const void*> ids;
  ids.reserve(idxs.size());
  for (const auto& p : idxs) ids.push_back(p.idx.get());
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status StorageEngine::WriteColumn(const std::string& object,
                                  const std::string& column,
                                  const BATPtr& bat,
                                  const SiblingColumns& siblings,
                                  ColumnState* cs) {
  uint64_t epoch = epoch_++;
  ColumnFiles files;
  files.heap = EpochName(object, column, epoch, "heap");
  std::string_view tail(static_cast<const char*>(bat->TailData()),
                        bat->TailByteSize());
  SCIQL_RETURN_NOT_OK(WriteFileAtomic(
      env_, (fs::path(dir_) / files.heap).string(),
      EncodeBlock(kHeapMagic, static_cast<uint32_t>(bat->type()), bat->Count(),
                  tail)));

  if (bat->type() == PhysType::kStr) {
    const std::vector<char>& raw = bat->heap()->raw();
    files.strheap = EpochName(object, column, epoch, "strheap");
    SCIQL_RETURN_NOT_OK(WriteFileAtomic(
        env_, (fs::path(dir_) / files.strheap).string(),
        EncodeBlock(kStrHeapMagic, 0, raw.size(),
                    std::string_view(raw.data(), raw.size()))));
  }

  cs->files = std::move(files);
  cs->bat = bat;
  cs->version = bat->data_version();
  cs->oidx_ids.clear();
  std::vector<PersistableIndex> live = GatherIndexes(column, bat, siblings);
  if (!live.empty()) {
    SCIQL_RETURN_NOT_OK(WriteIndexContainer(object, column, live, cs));
  }
  stats_.checkpoint_columns_written++;
  return Status::OK();
}

Status StorageEngine::WriteIndexContainer(
    const std::string& object, const std::string& column,
    const std::vector<PersistableIndex>& live, ColumnState* cs) {
  std::string payload;
  ByteWriter w(&payload);
  for (const PersistableIndex& p : live) {
    w.PutU64(p.key_names.size());
    for (size_t k = 0; k < p.key_names.size(); ++k) {
      w.PutStr(p.key_names[k]);
      w.PutU64(p.desc[k] ? 1 : 0);
    }
    w.PutU64(p.idx->size());
    w.PutBytes(p.idx->data(), p.idx->size() * sizeof(gdk::oid_t));
  }
  std::string file = EpochName(object, column, epoch_++, "oidx");
  SCIQL_RETURN_NOT_OK(WriteFileAtomic(
      env_, (fs::path(dir_) / file).string(),
      EncodeBlock(kOrderIdxMagic, kOrderIdxSpecAux, live.size(), payload)));
  cs->files.oidx = std::move(file);
  cs->oidx_ids = IndexIds(live);
  stats_.checkpoint_index_files_written++;
  return Status::OK();
}

Status StorageEngine::RefreshColumnIndexes(const std::string& object,
                                           const std::string& column,
                                           const BATPtr& bat,
                                           const SiblingColumns& siblings,
                                           ColumnState* cs) {
  std::vector<PersistableIndex> live = GatherIndexes(column, bat, siblings);
  if (IndexIds(live) == cs->oidx_ids) return Status::OK();  // already on disk
  if (live.empty()) {
    cs->files.oidx.clear();
    cs->oidx_ids.clear();
    return Status::OK();
  }
  // The column data is clean but the set of live index builds changed
  // since the last checkpoint (a new spec was built, or a persisted one
  // went stale): rewrite the spec container without touching the heap.
  return WriteIndexContainer(object, column, live, cs);
}

Status StorageEngine::Checkpoint(bool force_full) {
  if (cat_ == nullptr) return Status::Internal("storage engine is detached");
  // Hold the state map for the whole checkpoint: concurrent lazy loads block
  // at their final insertion until the manifest is committed. (The GetTable/
  // GetArray calls below only touch objects already loaded — IsUnloaded was
  // just checked and objects never transition back — so they cannot re-enter
  // the loader and self-deadlock on state_mu_.)
  common::MutexLock state_lock(&state_mu_);
  stats_.checkpoint_columns_written = 0;
  stats_.checkpoint_columns_clean = 0;
  stats_.checkpoint_index_files_written = 0;
  Manifest nm;

  for (const std::string& name : cat_->TableNames()) {
    if (cat_->IsUnloaded(name)) {
      // Never touched: its on-disk state is by definition current.
      bool found = false;
      for (const TableManifest& tm : manifest_.tables) {
        if (tm.name == name) {
          nm.tables.push_back(tm);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal(
            StrFormat("unloaded table %s missing from manifest", name.c_str()));
      }
      stats_.checkpoint_columns_clean += nm.tables.back().files.size();
      continue;
    }
    SCIQL_ASSIGN_OR_RETURN(auto tab, cat_->GetTable(name));
    ObjectState& state = state_[name];
    state.cols.resize(tab->columns.size());
    TableManifest tm;
    tm.name = name;
    tm.columns = tab->columns;
    tm.row_count = tab->RowCount();
    SiblingColumns siblings;
    for (size_t c = 0; c < tab->columns.size(); ++c) {
      siblings.names.push_back(tab->columns[c].name);
      siblings.bats.push_back(tab->bats[c]);
    }
    for (size_t c = 0; c < tab->columns.size(); ++c) {
      ColumnState& cs = state.cols[c];
      const BATPtr& bat = tab->bats[c];
      bool dirty = force_full || cs.files.heap.empty() ||
                   cs.bat.get() != bat.get() ||
                   cs.version != bat->data_version();
      if (dirty) {
        SCIQL_RETURN_NOT_OK(
            WriteColumn(name, tab->columns[c].name, bat, siblings, &cs));
      } else {
        SCIQL_RETURN_NOT_OK(RefreshColumnIndexes(
            name, tab->columns[c].name, bat, siblings, &cs));
        stats_.checkpoint_columns_clean++;
      }
      tm.files.push_back(cs.files);
    }
    nm.tables.push_back(std::move(tm));
  }

  for (const std::string& name : cat_->ArrayNames()) {
    if (cat_->IsUnloaded(name)) {
      bool found = false;
      for (const ArrayManifest& am : manifest_.arrays) {
        if (am.name == name) {
          nm.arrays.push_back(am);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal(
            StrFormat("unloaded array %s missing from manifest", name.c_str()));
      }
      stats_.checkpoint_columns_clean += nm.arrays.back().files.size();
      continue;
    }
    SCIQL_ASSIGN_OR_RETURN(auto arr, cat_->GetArray(name));
    ObjectState& state = state_[name];
    state.cols.resize(arr->attr_bats.size());
    ArrayManifest am;
    am.name = name;
    am.dims = arr->desc.dims();
    am.attrs = arr->desc.attrs();
    SiblingColumns siblings;
    for (size_t c = 0; c < arr->attr_bats.size(); ++c) {
      siblings.names.push_back(arr->desc.attrs()[c].name);
      siblings.bats.push_back(arr->attr_bats[c]);
    }
    for (size_t d = 0; d < arr->dim_bats.size(); ++d) {
      siblings.names.push_back(arr->desc.dims()[d].name);
      siblings.bats.push_back(arr->dim_bats[d]);
    }
    for (size_t c = 0; c < arr->attr_bats.size(); ++c) {
      ColumnState& cs = state.cols[c];
      const BATPtr& bat = arr->attr_bats[c];
      bool dirty = force_full || cs.files.heap.empty() ||
                   cs.bat.get() != bat.get() ||
                   cs.version != bat->data_version();
      if (dirty) {
        SCIQL_RETURN_NOT_OK(WriteColumn(name, arr->desc.attrs()[c].name, bat,
                                        siblings, &cs));
      } else {
        SCIQL_RETURN_NOT_OK(RefreshColumnIndexes(
            name, arr->desc.attrs()[c].name, bat, siblings, &cs));
        stats_.checkpoint_columns_clean++;
      }
      am.files.push_back(cs.files);
    }
    nm.arrays.push_back(std::move(am));
  }

  // Drop tracking state for objects that no longer exist.
  for (auto it = state_.begin(); it != state_.end();) {
    if (!cat_->Exists(it->first)) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }

  // Switch to a fresh epoch-stamped WAL and commit its name with the
  // manifest: the rename below atomically orphans the old log, so a crash
  // anywhere in this sequence either keeps the old manifest + old log
  // (checkpoint never happened) or the new manifest + empty new log —
  // already-folded statements can never be replayed twice.
  std::string new_wal = StrFormat(
      "wal.%llu.log", static_cast<unsigned long long>(epoch_++));
  SCIQL_ASSIGN_OR_RETURN(
      std::unique_ptr<Wal> fresh,
      Wal::Open((fs::path(dir_) / new_wal).string(), nullptr, env_,
                durability_));
  std::string old_wal = manifest_.wal_file;

  nm.next_epoch = epoch_;
  nm.wal_file = new_wal;
  manifest_ = std::move(nm);
  SCIQL_RETURN_NOT_OK(CommitManifest());
  {
    // state_mu_ is still held: wal_mu_ nests inside it (ACQUIRED_AFTER).
    common::MutexLock wal_lock(&wal_mu_);
    wal_ = std::move(fresh);
  }
  if (old_wal != new_wal) {
    // Best effort; GC sweeps orphaned logs too.
    (void)env_->RemoveFile((fs::path(dir_) / old_wal).string());
  }
  CollectGarbage();
  stats_.checkpoints++;
  return Status::OK();
}

Status StorageEngine::CommitManifest() {
  return WriteFileAtomic(env_, (fs::path(dir_) / kManifestFile).string(),
                         manifest_.Encode());
}

void StorageEngine::CollectGarbage() const {
  std::set<std::string> referenced;
  auto note = [&referenced](const ColumnFiles& f) {
    if (!f.heap.empty()) referenced.insert(f.heap);
    if (!f.strheap.empty()) referenced.insert(f.strheap);
    if (!f.oidx.empty()) referenced.insert(f.oidx);
  };
  for (const TableManifest& tm : manifest_.tables) {
    for (const ColumnFiles& f : tm.files) note(f);
  }
  for (const ArrayManifest& am : manifest_.arrays) {
    for (const ColumnFiles& f : am.files) note(f);
  }
  // Best effort throughout: GC never fails a checkpoint. ListDir returns
  // sorted names, so the op sequence stays deterministic under fault
  // injection.
  Result<std::vector<std::string>> heap_names =
      env_->ListDir((fs::path(dir_) / kHeapDir).string());
  if (heap_names.ok()) {
    for (const std::string& name : *heap_names) {
      std::string rel = std::string(kHeapDir) + "/" + name;
      if (referenced.count(rel) == 0) {
        (void)env_->RemoveFile((fs::path(dir_) / kHeapDir / name).string());
      }
    }
  }
  // Orphaned logs (a crash between the manifest commit and the old-log
  // removal leaves a wal.<epoch>.log no manifest references) and stray
  // .tmp files (an interrupted atomic write never renamed its temp away).
  Result<std::vector<std::string>> root_names = env_->ListDir(dir_);
  if (!root_names.ok()) return;
  for (const std::string& name : *root_names) {
    bool orphan_log = name.rfind("wal.", 0) == 0 && name != manifest_.wal_file;
    bool stray_tmp = name.size() > 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (orphan_log || stray_tmp) {
      (void)env_->RemoveFile((fs::path(dir_) / name).string());
    }
  }
}

}  // namespace storage
}  // namespace sciql
