// File-level primitives of the durable storage engine: whole-file reads,
// atomic (write-tmp-then-rename) writes, memory-mapped reads with a portable
// fallback, and the checksummed block-file envelope every heap / string-heap
// / order-index file uses on disk. See docs/storage.md for the layout.

#ifndef SCIQL_STORAGE_FILE_IO_H_
#define SCIQL_STORAGE_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/storage/env.h"

namespace sciql {
namespace storage {

/// \brief Read the entire file at `path` into a string.
Result<std::string> ReadWholeFile(Env* env, const std::string& path);
inline Result<std::string> ReadWholeFile(const std::string& path) {
  return ReadWholeFile(Env::Default(), path);
}

/// \brief Write `bytes` to `path` atomically: the data lands in `path`.tmp
/// first, is fsync'd, and is renamed over `path`, so a crash mid-write can
/// never leave a half-written file under the final name. The rename is
/// followed by a best-effort directory fsync; a swallowed failure there is
/// counted in IoStats::dir_fsync_failed (some filesystems reject it).
Status WriteFileAtomic(Env* env, const std::string& path,
                       std::string_view bytes);
inline Status WriteFileAtomic(const std::string& path,
                              std::string_view bytes) {
  return WriteFileAtomic(Env::Default(), path, bytes);
}

/// \brief A read-only view of a file, memory-mapped where the platform
/// supports it (POSIX mmap) and read into an owned buffer otherwise. Setting
/// SCIQL_NO_MMAP=1 in the environment forces the fallback path (used to test
/// both routes on one platform). Move-only; the view stays valid for the
/// lifetime of the object.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// With a non-default `env` the file is read whole through the env (no
  /// mmap), so test doubles intercept every byte the loaders consume.
  static Result<MappedFile> Open(const std::string& path, Env* env = nullptr);

  std::string_view data() const { return view_; }
  /// True if the view is backed by an actual memory mapping.
  bool mmapped() const { return base_ != nullptr; }

 private:
  void* base_ = nullptr;  // mmap base (non-null only on the mmap path)
  size_t map_len_ = 0;
  std::string fallback_;  // owned bytes on the read-whole-file path
  std::string_view view_;
};

// ---------------------------------------------------------------------------
// Block files
// ---------------------------------------------------------------------------
// Every storage file is one "block": a fixed header carrying a kind magic, a
// kind-specific aux word (e.g. the column's PhysType), a logical count and a
// checksum, followed by the raw payload. The checksum covers the payload, so
// truncation and bit flips are detected before any bytes are interpreted.

inline constexpr uint32_t kHeapMagic = 0x48515153;     // "SQQH"
inline constexpr uint32_t kStrHeapMagic = 0x53515153;  // "SQQS"
inline constexpr uint32_t kOrderIdxMagic = 0x58515153; // "SQQX"

// aux word of an order-index block: legacy files hold one raw
// single-ascending-key permutation (count = rows); spec containers hold
// `count` keyed indexes, each prefixed with its key spec (column names +
// per-key directions) — see StorageEngine::AdoptColumnIndexes.
inline constexpr uint32_t kOrderIdxLegacyAux = 0;
inline constexpr uint32_t kOrderIdxSpecAux = 1;

struct Block {
  uint32_t magic = 0;
  uint32_t aux = 0;
  uint64_t count = 0;
  std::string_view payload;
};

/// \brief Assemble a block file image (header + checksum + payload copy).
std::string EncodeBlock(uint32_t magic, uint32_t aux, uint64_t count,
                        std::string_view payload);

/// \brief Parse and verify a block file image; `expect_magic` guards against
/// pointing a loader at the wrong kind of file. The returned payload view
/// aliases `bytes`.
Result<Block> DecodeBlock(std::string_view bytes, uint32_t expect_magic);

}  // namespace storage
}  // namespace sciql

#endif  // SCIQL_STORAGE_FILE_IO_H_
