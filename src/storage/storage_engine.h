// The durable storage engine: turns a catalog into a database *directory*
// with a manifest, one heap file per column, persisted order indexes and a
// write-ahead log. See docs/storage.md for the full design; in short:
//
//  - Open loads the manifest eagerly, declares every object in the catalog,
//    and registers a lazy loader: column heaps are memory-mapped and
//    materialised into BATs only when a query first touches their object.
//  - Mutating statements are appended to the WAL by the engine's owner; Open
//    replays the WAL so work since the last checkpoint survives a crash.
//  - Checkpoint writes only dirty columns (tracked via BAT::data_version(),
//    the same hook that invalidates order indexes), commits the new manifest
//    atomically, resets the WAL and garbage-collects unreferenced heap files.

#ifndef SCIQL_STORAGE_STORAGE_ENGINE_H_
#define SCIQL_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/storage/env.h"
#include "src/storage/manifest.h"
#include "src/storage/wal.h"

namespace sciql {
namespace storage {

/// \brief Knobs of StorageEngine::Open (and engine::Database::Open).
struct OpenOptions {
  /// All I/O routes through this seam; nullptr means the real filesystem
  /// (Env::Default()). Tests inject a FaultInjectingEnv here.
  Env* env = nullptr;
  /// How far each WAL append is pushed before a statement commits.
  DurabilityLevel durability = DurabilityLevel::kFsync;
};

class StorageEngine {
 public:
  /// Executes one SQL statement during WAL recovery (supplied by the engine's
  /// owner, which knows how to run SQL without re-logging it).
  using ReplayFn = std::function<Status(const std::string& sql)>;

  /// \brief Open (creating if needed) the database directory `dir`, populate
  /// `cat` with lazily-loaded declarations of every manifest object, install
  /// the lazy loader on `cat`, and replay the WAL through `replay`. The
  /// catalog must be empty. `cat` must outlive the returned engine or call
  /// SetLoader(nullptr) first (engine::Database sequences this).
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& dir, catalog::Catalog* cat, const ReplayFn& replay,
      const OpenOptions& options = {});

  ~StorageEngine();
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// \brief Append one committed mutating statement to the WAL (flushes).
  Status LogStatement(const std::string& sql);

  /// \brief Write dirty objects + the new manifest (atomic rename), reset the
  /// WAL and delete heap files the new manifest no longer references. With
  /// `force_full`, every loaded column is rewritten regardless of dirtiness
  /// (benchmarks use this to compare dirty-only against full checkpoints).
  Status Checkpoint(bool force_full = false);

  /// \brief Detach from the catalog (clears the loader). Objects not yet
  /// loaded become inaccessible, so the owner should Clear() the catalog.
  void Detach();

  /// \brief Best-effort materialization of every still-unloaded object —
  /// called before a failure-driven detach so the in-memory session keeps
  /// serving all objects (reads usually still work when writes fail, e.g.
  /// on ENOSPC). Load errors are swallowed: the object simply stays
  /// unavailable, as it would have been anyway.
  void LoadAllForDetach();

  const std::string& dir() const { return dir_; }
  Env* env() const { return env_; }
  DurabilityLevel durability() const { return durability_; }

  /// Counters are atomic because lazy loads run on whichever reader session
  /// first touches an object, concurrently with other readers and with a
  /// checkpointing writer.
  struct Stats {
    std::atomic<uint64_t> objects_loaded{0};        ///< lazy loads performed
    std::atomic<uint64_t> order_indexes_loaded{0};  ///< persisted indexes adopted
    std::atomic<uint64_t> order_indexes_rejected{0};///< persisted indexes failing revalidation
    std::atomic<uint64_t> wal_replayed{0};          ///< WAL records replayed at open
    std::atomic<uint64_t> wal_discarded_bytes{0};   ///< torn tail bytes truncated at open
    std::atomic<uint64_t> checkpoint_columns_written{0};  ///< columns written, last checkpoint
    std::atomic<uint64_t> checkpoint_columns_clean{0};    ///< columns skipped, last checkpoint
    std::atomic<uint64_t> checkpoint_index_files_written{0};  ///< oidx containers written, last checkpoint
    std::atomic<uint64_t> checkpoints{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  // Dirty tracking for one loaded column: the BAT identity and data version
  // at the last load/checkpoint, plus which order index builds (if any) the
  // manifest's oidx file corresponds to. Holding the BATPtr keeps the
  // observed identity stable (no ABA through reallocation).
  struct ColumnState {
    ColumnFiles files;
    gdk::BATPtr bat;
    uint64_t version = 0;
    // Identities of the index builds inside the persisted spec container,
    // sorted; a nullptr sentinel marks an on-disk spec that failed
    // revalidation at load, forcing a rewrite at the next checkpoint.
    std::vector<const void*> oidx_ids;
  };
  struct ObjectState {
    std::vector<ColumnState> cols;
  };

  // The sibling columns of one object (name-aligned BATs): the namespace a
  // persisted index spec may reference — secondary key columns are stored
  // by name and resolved within the object on load. Arrays include their
  // dimension columns (as secondaries only; dims have no file slot).
  struct SiblingColumns {
    std::vector<std::string> names;
    std::vector<gdk::BATPtr> bats;
  };

  // One cached index that can be persisted with its column: every key
  // resolved to a sibling column name (primary first).
  struct PersistableIndex {
    std::vector<std::string> key_names;
    std::vector<bool> desc;
    gdk::OrderIndexPtr idx;
  };

  StorageEngine() = default;

  Status LoadObject(const std::string& name);
  Status LoadTable(const std::string& name, const TableManifest& tm);
  Status LoadArray(const std::string& name, const ArrayManifest& am);

  /// Load one column BAT (heap + optional string heap) and record its
  /// ColumnState in `state`. Index adoption happens later, once all of the
  /// object's columns exist (AdoptColumnIndexes).
  Result<gdk::BATPtr> LoadColumn(const std::string& object,
                                 const std::string& column,
                                 gdk::PhysType type, const ColumnFiles& files,
                                 ObjectState* state);

  /// Parse, revalidate and adopt every column's persisted order-index
  /// container (multi-key specs resolve their key columns in `siblings`).
  /// Rejected specs are dropped, never trusted.
  void AdoptColumnIndexes(const SiblingColumns& siblings, ObjectState* state);

  /// The column's live cached indexes that can persist with it (all
  /// secondary keys resolve to sibling columns of the same object).
  static std::vector<PersistableIndex> GatherIndexes(
      const std::string& column, const gdk::BATPtr& bat,
      const SiblingColumns& siblings);
  /// Sorted identity list of a set of index builds (dirty-tracking key).
  static std::vector<const void*> IndexIds(
      const std::vector<PersistableIndex>& idxs);
  /// Write the spec container for `live` under a fresh epoch name.
  Status WriteIndexContainer(const std::string& object,
                             const std::string& column,
                             const std::vector<PersistableIndex>& live,
                             ColumnState* cs);

  /// Write one column's files (fresh epoch-stamped names); updates `cs`.
  Status WriteColumn(const std::string& object, const std::string& column,
                     const gdk::BATPtr& bat, const SiblingColumns& siblings,
                     ColumnState* cs);
  /// Persist (or drop) the column's live order indexes without touching its
  /// heap: rewrites the spec container only when the set of live index
  /// builds differs from what the manifest already references.
  Status RefreshColumnIndexes(const std::string& object,
                              const std::string& column,
                              const gdk::BATPtr& bat,
                              const SiblingColumns& siblings, ColumnState* cs);

  Status CommitManifest();
  void CollectGarbage() const;

  std::string dir_;
  Env* env_ = nullptr;
  DurabilityLevel durability_ = DurabilityLevel::kFsync;
  catalog::Catalog* cat_ = nullptr;
  Manifest manifest_;
  /// Guards state_: lazy loads insert from whichever reader thread first
  /// touches an object, while Checkpoint (writer-side) iterates and mutates
  /// the whole map — it holds this mutex for its entire run. Loaders only
  /// take it for the final insertion, never while holding a BAT index lock,
  /// so the ordering state_mu_ → oidx_mu_ is acyclic.
  mutable common::Mutex state_mu_;
  std::map<std::string, ObjectState> state_ GUARDED_BY(state_mu_);
  /// The WAL is single-writer by protocol (DatabaseCore's writer mutex);
  /// this mutex makes the append path locally safe regardless, so a misuse
  /// corrupts no log records. Ordered after state_mu_: Checkpoint swaps in
  /// the fresh WAL while still holding the state map.
  common::Mutex wal_mu_ ACQUIRED_AFTER(state_mu_);
  std::unique_ptr<Wal> wal_ GUARDED_BY(wal_mu_);
  uint64_t epoch_ = 1;
  Stats stats_;
};

}  // namespace storage
}  // namespace sciql

#endif  // SCIQL_STORAGE_STORAGE_ENGINE_H_
