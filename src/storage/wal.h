// Write-ahead log: the durability gap-filler between checkpoints. Every
// committed mutating SQL statement is appended as one checksummed record and
// pushed toward disk as far as the configured DurabilityLevel demands;
// reopening the database replays the surviving records against the last
// checkpoint. A torn tail (crash mid-append) is detected by the record
// checksum and truncated away, so exactly the fully-written prefix — the
// committed statements — is recovered.
//
// Record layout (little-endian):
//   u32 magic "WAL1" | u32 reserved | u64 payload_len | u64 checksum | payload
//
// All I/O routes through a storage::Env, so the crash-point matrix
// (tests/storage/crash_matrix_test.cpp) can halt or fail any write or fsync.

#ifndef SCIQL_STORAGE_WAL_H_
#define SCIQL_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/storage/env.h"

namespace sciql {
namespace storage {

class Wal {
 public:
  /// Invoked for each intact record during recovery, in append order.
  using ReplayFn = std::function<Status(std::string_view payload)>;

  /// \brief Open (creating if absent) the log at `path`. Existing records are
  /// scanned front to back: each intact record is handed to `replay`; the
  /// first torn or corrupt record ends the scan and the file is truncated at
  /// that point, discarding the tail. The log is then ready for Append.
  static Result<std::unique_ptr<Wal>> Open(
      const std::string& path, const ReplayFn& replay, Env* env = nullptr,
      DurabilityLevel durability = DurabilityLevel::kFsync);

  /// \brief Append one record and push it toward disk per the durability
  /// level (kFlush: OS page cache; kFsync: fsync'd — the default). The
  /// record is considered committed once Append returns OK; any write or
  /// flush failure surfaces as IOError, never a silently broken stream.
  Status Append(std::string_view payload);

  /// \brief Discard all records (after a checkpoint made them redundant).
  Status Reset();

  /// \brief Records currently in the log (replayed + appended since open).
  uint64_t record_count() const { return record_count_; }
  /// \brief Records recovered by the Open scan.
  uint64_t replayed_count() const { return replayed_count_; }
  /// \brief Bytes the Open scan discarded as a torn/corrupt tail.
  uint64_t discarded_bytes() const { return discarded_bytes_; }

  DurabilityLevel durability() const { return durability_; }

 private:
  Wal() = default;

  std::string path_;
  Env* env_ = nullptr;
  DurabilityLevel durability_ = DurabilityLevel::kFsync;
  std::unique_ptr<WritableFile> out_;
  uint64_t record_count_ = 0;
  uint64_t replayed_count_ = 0;
  uint64_t discarded_bytes_ = 0;
};

}  // namespace storage
}  // namespace sciql

#endif  // SCIQL_STORAGE_WAL_H_
