// The database manifest: the small, eagerly-loaded root of a storage
// directory. It records every object's schema plus the names of the heap
// files holding each column's data, so opening a database reads one file and
// defers every column heap until a query touches its object.
//
// The manifest is rewritten atomically at each checkpoint (write MANIFEST.tmp,
// rename over MANIFEST); heap files are never overwritten in place — dirty
// columns get fresh file names (a per-manifest epoch counter), so the old
// manifest stays valid until the rename commits the new one.

#ifndef SCIQL_STORAGE_MANIFEST_H_
#define SCIQL_STORAGE_MANIFEST_H_

#include <string>
#include <vector>

#include "src/array/descriptor.h"
#include "src/common/result.h"

namespace sciql {
namespace storage {

/// \brief On-disk file names (relative to the database directory) backing one
/// column: its heap, its string heap (kStr columns only) and its persisted
/// order index (only while a valid index exists at checkpoint time).
struct ColumnFiles {
  std::string heap;
  std::string strheap;  // empty unless the column is kStr
  std::string oidx;     // empty unless an order index is persisted
};

struct TableManifest {
  std::string name;
  std::vector<array::AttrDesc> columns;
  std::vector<ColumnFiles> files;  // aligned with columns
  uint64_t row_count = 0;
};

struct ArrayManifest {
  std::string name;
  std::vector<array::DimDesc> dims;
  std::vector<array::AttrDesc> attrs;
  std::vector<ColumnFiles> files;  // aligned with attrs (dims rematerialize)
};

struct Manifest {
  /// File-name version counter: the next checkpoint stamps new heap files
  /// with epochs >= this, guaranteeing fresh names that never collide with
  /// files the current manifest still references.
  uint64_t next_epoch = 1;
  /// The write-ahead log this manifest pairs with. Checkpoints switch to a
  /// fresh epoch-stamped log and commit its name here, so the manifest
  /// rename atomically orphans the old log — a crash can never replay
  /// statements the new manifest already folded in (no double-apply).
  std::string wal_file = "wal.log";
  std::vector<TableManifest> tables;
  std::vector<ArrayManifest> arrays;

  /// \brief Serialize (versioned, checksummed).
  std::string Encode() const;
  /// \brief Parse and verify a manifest image.
  static Result<Manifest> Decode(std::string_view bytes);
};

}  // namespace storage
}  // namespace sciql

#endif  // SCIQL_STORAGE_MANIFEST_H_
