#include "src/vault/synth.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace sciql {
namespace vault {

namespace {

// Smooth 2-D value noise: bilinear interpolation of a coarse random lattice,
// summed over a few octaves. Deterministic per seed.
class ValueNoise {
 public:
  ValueNoise(size_t lattice, uint64_t seed) : n_(lattice) {
    Rng rng(seed);
    grid_.resize(n_ * n_);
    for (double& v : grid_) v = rng.NextDouble();
  }

  double Sample(double x, double y) const {
    double gx = x * static_cast<double>(n_ - 1);
    double gy = y * static_cast<double>(n_ - 1);
    size_t x0 = std::min(static_cast<size_t>(gx), n_ - 2);
    size_t y0 = std::min(static_cast<size_t>(gy), n_ - 2);
    double fx = gx - static_cast<double>(x0);
    double fy = gy - static_cast<double>(y0);
    // Smoothstep for C1 continuity.
    fx = fx * fx * (3 - 2 * fx);
    fy = fy * fy * (3 - 2 * fy);
    double v00 = At(x0, y0), v10 = At(x0 + 1, y0);
    double v01 = At(x0, y0 + 1), v11 = At(x0 + 1, y0 + 1);
    double a = v00 + (v10 - v00) * fx;
    double b = v01 + (v11 - v01) * fx;
    return a + (b - a) * fy;
  }

 private:
  double At(size_t x, size_t y) const { return grid_[y * n_ + x]; }
  size_t n_;
  std::vector<double> grid_;
};

}  // namespace

Image MakeGradientImage(size_t width, size_t height) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height);
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      img.Set(x, y, static_cast<int32_t>((x + y) * 255 / (width + height - 2)));
    }
  }
  return img;
}

Image MakeCheckerboardImage(size_t width, size_t height, size_t tile) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height);
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      bool on = ((x / tile) + (y / tile)) % 2 == 0;
      img.Set(x, y, on ? 230 : 25);
    }
  }
  return img;
}

Image MakeBuildingImage(size_t width, size_t height, uint64_t seed) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height);
  Rng rng(seed);

  size_t skyline = height / 5;             // sky above the facade
  size_t door_w = std::max<size_t>(4, width / 10);
  size_t door_h = std::max<size_t>(6, height / 5);

  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      int32_t v;
      if (y < skyline) {
        // Sky: bright gradient with slight dithering.
        v = 200 + static_cast<int32_t>(40.0 * y /
                                       std::max<size_t>(1, skyline)) +
            static_cast<int32_t>(rng.Below(8));
      } else {
        // Facade base tone.
        v = 120 + static_cast<int32_t>(rng.Below(6));
        // Window grid: dark rectangles every 8x10 pixels.
        size_t fy = y - skyline;
        bool in_window = (x % 8) >= 2 && (x % 8) <= 5 && (fy % 10) >= 2 &&
                         (fy % 10) <= 6;
        if (in_window) v = 30 + static_cast<int32_t>(rng.Below(10));
        // Door in the centre bottom.
        if (y >= height - door_h && x >= (width - door_w) / 2 &&
            x < (width + door_w) / 2) {
          v = 50;
        }
        // Roofline accent.
        if (y == skyline) v = 10;
      }
      img.Set(x, y, std::clamp(v, 0, 255));
    }
  }
  return img;
}

Image MakeTerrainImage(size_t width, size_t height, int water_level,
                       uint64_t seed) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height);
  ValueNoise coarse(9, seed);
  ValueNoise mid(17, seed ^ 0xABCDEF);
  ValueNoise fine(33, seed * 31 + 7);
  std::vector<double> elevation(width * height);
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      double u = static_cast<double>(x) / static_cast<double>(width - 1);
      double v = static_cast<double>(y) / static_cast<double>(height - 1);
      elevation[y * width + x] = 0.55 * coarse.Sample(u, v) +
                                 0.3 * mid.Sample(u, v) +
                                 0.15 * fine.Sample(u, v);
    }
  }
  // Sea level at the 25th elevation percentile: a quarter of the terrain
  // reads as water (below `water_level`), the rest spreads over the land
  // intensities — giving the histogram its characteristic two modes.
  std::vector<double> sorted = elevation;
  std::sort(sorted.begin(), sorted.end());
  double sea = sorted[sorted.size() / 4];
  double lo = sorted.front();
  double hi = sorted.back();
  for (size_t i = 0; i < elevation.size(); ++i) {
    double e = elevation[i];
    int32_t intensity;
    if (e < sea) {
      // Water: [0, water_level) scaled by depth.
      double depth = (e - lo) / std::max(1e-9, sea - lo);
      intensity = static_cast<int32_t>(depth * (water_level - 1));
    } else {
      // Land: [water_level, 255].
      double h = (e - sea) / std::max(1e-9, hi - sea);
      intensity = water_level + static_cast<int32_t>(h * (255 - water_level));
    }
    img.pixels[i] = std::clamp(intensity, 0, 255);
  }
  return img;
}

}  // namespace vault
}  // namespace sciql
