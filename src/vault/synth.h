// Deterministic synthetic image generators standing in for the demo's two
// GeoTIFF assets: a grey-scale "classic building" photograph and a remote
// sensing image of the earth with water areas.

#ifndef SCIQL_VAULT_SYNTH_H_
#define SCIQL_VAULT_SYNTH_H_

#include "src/vault/pgm.h"

namespace sciql {
namespace vault {

/// \brief Synthetic "building" image: a facade with window grid, door and
/// sky gradient — rich in edges for EdgeDetection, deterministic per seed.
Image MakeBuildingImage(size_t width, size_t height, uint64_t seed = 42);

/// \brief Synthetic "remote sensing" terrain: smooth value-noise elevation
/// mapped to intensities; low-lying cells (below `water_level`) read as
/// water, exercising the water-filter and histogram scenarios.
Image MakeTerrainImage(size_t width, size_t height, int water_level = 60,
                       uint64_t seed = 7);

/// \brief Simple diagnostic patterns.
Image MakeGradientImage(size_t width, size_t height);
Image MakeCheckerboardImage(size_t width, size_t height, size_t tile);

}  // namespace vault
}  // namespace sciql

#endif  // SCIQL_VAULT_SYNTH_H_
