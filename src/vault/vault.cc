#include "src/vault/vault.h"

#include "src/common/string_util.h"

namespace sciql {
namespace vault {

Status LoadImage(engine::Database* db, const std::string& name,
                 const Image& img) {
  SCIQL_RETURN_NOT_OK(db->Run(StrFormat(
      "CREATE ARRAY %s (x INT DIMENSION[0:1:%zu], y INT DIMENSION[0:1:%zu], "
      "v INT)",
      name.c_str(), img.width, img.height)));
  // Bulk load through the vault: write the attribute BAT directly, exactly
  // how MonetDB data vaults bypass tuple-at-a-time SQL ingestion.
  SCIQL_ASSIGN_OR_RETURN(auto arr, db->catalog()->GetArray(name));
  auto& v = arr->attr_bats[0]->ints();
  size_t h = img.height;
  for (size_t x = 0; x < img.width; ++x) {
    for (size_t y = 0; y < h; ++y) {
      v[x * h + y] = img.At(x, y);
    }
  }
  return Status::OK();
}

Status LoadPgmFile(engine::Database* db, const std::string& name,
                   const std::string& path) {
  SCIQL_ASSIGN_OR_RETURN(Image img, ReadPgm(path));
  return LoadImage(db, name, img);
}

Result<Image> StoreImage(engine::Database* db, const std::string& name) {
  SCIQL_ASSIGN_OR_RETURN(auto arr, db->catalog()->GetArray(name));
  if (arr->desc.ndims() != 2) {
    return Status::InvalidArgument(
        StrFormat("array %s is not two-dimensional", name.c_str()));
  }
  if (arr->desc.nattrs() < 1) {
    return Status::InvalidArgument(
        StrFormat("array %s has no attribute to export", name.c_str()));
  }
  size_t w = arr->desc.dims()[0].range.Size();
  size_t h = arr->desc.dims()[1].range.Size();
  Image img;
  img.width = w;
  img.height = h;
  img.pixels.assign(w * h, 0);
  const gdk::BAT& v = *arr->attr_bats[0];
  for (size_t x = 0; x < w; ++x) {
    for (size_t y = 0; y < h; ++y) {
      gdk::ScalarValue s = v.GetScalar(x * h + y);
      img.Set(x, y, s.is_null ? 0 : static_cast<int32_t>(s.AsInt64()));
    }
  }
  return img;
}

Status StorePgmFile(engine::Database* db, const std::string& name,
                    const std::string& path) {
  SCIQL_ASSIGN_OR_RETURN(Image img, StoreImage(db, name));
  return WritePgm(img, path);
}

}  // namespace vault
}  // namespace sciql
