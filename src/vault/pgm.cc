#include "src/vault/pgm.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace sciql {
namespace vault {

namespace {

// Skip whitespace and '#' comments in a PGM header.
void SkipSpaceAndComments(const std::string& s, size_t* i) {
  while (*i < s.size()) {
    if (std::isspace(static_cast<unsigned char>(s[*i]))) {
      ++*i;
    } else if (s[*i] == '#') {
      while (*i < s.size() && s[*i] != '\n') ++*i;
    } else {
      break;
    }
  }
}

Result<int64_t> ReadInt(const std::string& s, size_t* i) {
  SkipSpaceAndComments(s, i);
  size_t start = *i;
  while (*i < s.size() && std::isdigit(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
  if (*i == start) return Status::IOError("malformed PGM header");
  return std::strtoll(s.substr(start, *i - start).c_str(), nullptr, 10);
}

}  // namespace

Result<Image> ParsePgm(const std::string& bytes) {
  if (bytes.size() < 2 || bytes[0] != 'P' ||
      (bytes[1] != '2' && bytes[1] != '5')) {
    return Status::IOError("not a PGM file (expected P2 or P5 magic)");
  }
  bool binary = bytes[1] == '5';
  size_t i = 2;
  SCIQL_ASSIGN_OR_RETURN(int64_t w, ReadInt(bytes, &i));
  SCIQL_ASSIGN_OR_RETURN(int64_t h, ReadInt(bytes, &i));
  SCIQL_ASSIGN_OR_RETURN(int64_t maxval, ReadInt(bytes, &i));
  if (w <= 0 || h <= 0 || maxval <= 0 || maxval > 65535) {
    return Status::IOError("invalid PGM geometry");
  }
  Image img;
  img.width = static_cast<size_t>(w);
  img.height = static_cast<size_t>(h);
  img.maxval = static_cast<int>(maxval);
  size_t n = img.width * img.height;
  img.pixels.resize(n);
  if (binary) {
    ++i;  // single whitespace after maxval
    size_t bpp = maxval > 255 ? 2 : 1;
    if (bytes.size() - i < n * bpp) {
      return Status::IOError("truncated PGM pixel data");
    }
    for (size_t p = 0; p < n; ++p) {
      if (bpp == 1) {
        img.pixels[p] = static_cast<unsigned char>(bytes[i + p]);
      } else {
        img.pixels[p] =
            (static_cast<unsigned char>(bytes[i + 2 * p]) << 8) |
            static_cast<unsigned char>(bytes[i + 2 * p + 1]);
      }
    }
  } else {
    for (size_t p = 0; p < n; ++p) {
      SCIQL_ASSIGN_OR_RETURN(int64_t v, ReadInt(bytes, &i));
      img.pixels[p] = static_cast<int32_t>(v);
    }
  }
  return img;
}

Result<Image> ReadPgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParsePgm(ss.str());
}

std::string SerializePgm(const Image& img) {
  std::string out =
      StrFormat("P5\n%zu %zu\n%d\n", img.width, img.height, img.maxval);
  bool wide = img.maxval > 255;
  out.reserve(out.size() + img.pixels.size() * (wide ? 2 : 1));
  for (int32_t v : img.pixels) {
    int32_t c = std::clamp(v, 0, img.maxval);
    if (wide) {
      out.push_back(static_cast<char>((c >> 8) & 0xFF));
    }
    out.push_back(static_cast<char>(c & 0xFF));
  }
  return out;
}

Status WritePgm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError(StrFormat("cannot write %s", path.c_str()));
  }
  std::string bytes = SerializePgm(img);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return Status::IOError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace vault
}  // namespace sciql
