// PGM (portable graymap) image reader/writer.
//
// The paper loads GeoTIFF images through MonetDB's Data Vault [9]. GeoTIFF
// assets and libtiff are unavailable offline, so the vault substitutes PGM:
// structurally the same payload (a 2-D grid of integer grey-scale
// intensities), exercising the identical code path — bulk ingestion of a
// raster into a 2-D array with an INT attribute.

#ifndef SCIQL_VAULT_PGM_H_
#define SCIQL_VAULT_PGM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace sciql {
namespace vault {

/// \brief An in-memory grey-scale raster, row-major, origin at (0,0).
struct Image {
  size_t width = 0;
  size_t height = 0;
  int maxval = 255;
  std::vector<int32_t> pixels;  // size = width*height; pixels[y*width + x]

  int32_t At(size_t x, size_t y) const { return pixels[y * width + x]; }
  void Set(size_t x, size_t y, int32_t v) { pixels[y * width + x] = v; }
};

/// \brief Read a PGM file (binary P5 or ASCII P2).
Result<Image> ReadPgm(const std::string& path);

/// \brief Write a binary (P5) PGM file. Values are clamped to [0, maxval].
Status WritePgm(const Image& img, const std::string& path);

/// \brief Parse a PGM from memory (for tests).
Result<Image> ParsePgm(const std::string& bytes);

/// \brief Serialize as binary P5 (for tests).
std::string SerializePgm(const Image& img);

}  // namespace vault
}  // namespace sciql

#endif  // SCIQL_VAULT_PGM_H_
