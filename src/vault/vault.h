// The image Data Vault: attach raster images to the database as 2-D SciQL
// arrays and export arrays back to image files (paper Sec. 4, Scenario II:
// "images are loaded into MonetDB using its GeoTIFF Data Vault; each image
// is stored as a 2D array with x,y dimensions and an integer column v").

#ifndef SCIQL_VAULT_VAULT_H_
#define SCIQL_VAULT_VAULT_H_

#include <string>

#include "src/engine/database.h"
#include "src/vault/pgm.h"

namespace sciql {
namespace vault {

/// \brief Create array `name` (x INT DIMENSION[0:1:w], y INT
/// DIMENSION[0:1:h], v INT) and bulk-load the image pixels into it.
Status LoadImage(engine::Database* db, const std::string& name,
                 const Image& img);

/// \brief Load a PGM file into array `name`.
Status LoadPgmFile(engine::Database* db, const std::string& name,
                   const std::string& path);

/// \brief Materialise a 2-D single-attribute array as an Image. NULL cells
/// render as 0. The array's x dimension maps to image columns and y to rows.
Result<Image> StoreImage(engine::Database* db, const std::string& name);

/// \brief Export array `name` to a PGM file.
Status StorePgmFile(engine::Database* db, const std::string& name,
                    const std::string& path);

}  // namespace vault
}  // namespace sciql

#endif  // SCIQL_VAULT_VAULT_H_
