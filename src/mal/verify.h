// Static verifier for MAL programs: checks every planner-emitted (and
// optimizer-rewritten) program against a declarative per-`module.fn`
// signature table before it is executed, so a malformed plan fails with a
// diagnostic naming the offending instruction instead of a runtime error
// deep inside a kernel — or worse, a silently wrong result. This is the
// plan-construction-time counterpart to the compile-time lock-capability
// analysis (docs/static_analysis.md).
//
// Checked invariants:
//   - single assignment: every register is written by at most one
//     instruction, and constant/object registers are never written
//   - def-before-use: every argument is a constant, an object, or the
//     result of an earlier instruction
//   - signature consistency: known opcode, argument/return arity (including
//     the variadic shapes: bat.pack, algebra.sort/firstn/njoin/orderidx,
//     array.cellpos), and BAT-vs-scalar value kinds
//   - result-column validity: every `io.result` register is defined
//
// Wired in three places: Session::CompileAndRun verifies both the raw and
// the optimized program when `GetVerifyControls().enabled` (the default in
// Debug builds), EXPLAIN verifies unconditionally, and the fuzz oracle
// forces verification on for every path of every generated case.

#ifndef SCIQL_MAL_VERIFY_H_
#define SCIQL_MAL_VERIFY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/mal/program.h"

namespace sciql {
namespace mal {

/// \brief One verifier finding.
struct VerifyDiag {
  /// Named check that fired: "unknown-op", "bad-register", "const-assign",
  /// "double-assign", "use-before-def", "arity-mismatch", "type-mismatch"
  /// or "result-undefined".
  std::string check;
  /// Offending instruction index, or -1 for program-level findings (result
  /// columns).
  int instr = -1;
  /// Human-readable description, including the rendered instruction.
  std::string detail;

  /// \brief "verify[<check>] at #<instr>: <detail>".
  std::string ToString() const;
};

/// \brief Run every check over `prog`; empty means the program is valid.
std::vector<VerifyDiag> VerifyProgramDiags(const MalProgram& prog);

/// \brief VerifyProgramDiags reduced to a Status: OK, or Internal with
/// every diagnostic joined into the message. Bumps VerifyStats().
Status VerifyProgram(const MalProgram& prog);

/// \brief Process-wide verifier switches (same pattern as PlannerControls).
///
/// Verification is on by default in Debug builds and off in optimized
/// builds; EXPLAIN and the fuzz oracle verify regardless of this flag.
struct VerifyControls {
#ifdef NDEBUG
  bool enabled = false;
#else
  bool enabled = true;
#endif

  void Reset() { *this = VerifyControls(); }
};

VerifyControls& GetVerifyControls();

/// \brief Monotonic verifier telemetry, exported by the metrics registry as
/// sciql.mal.programs_verified / sciql.mal.programs_rejected.
struct VerifyCounters {
  std::atomic<uint64_t> programs_verified{0};
  std::atomic<uint64_t> programs_rejected{0};
};

VerifyCounters& VerifyStats();

}  // namespace mal
}  // namespace sciql

#endif  // SCIQL_MAL_VERIFY_H_
