#include "src/mal/interpreter.h"

#include "src/common/string_util.h"

namespace sciql {
namespace mal {

const MalEngine& MalEngine::Global() {
  static MalEngine* engine = [] {
    auto* e = new MalEngine();
    RegisterAllModules(e);
    return e;
  }();
  return *engine;
}

void MalEngine::Register(const std::string& name, MalFn fn, bool pure) {
  fns_[name] = std::move(fn);
  if (!pure) impure_.insert(name);
}

bool MalEngine::IsPure(const std::string& name) const {
  return impure_.count(name) == 0;
}

Status MalEngine::Run(const MalProgram& prog, MalContext* ctx) const {
  ctx->regs.assign(prog.regs().size(), MalValue::None());
  for (size_t i = 0; i < prog.regs().size(); ++i) {
    const MalProgram::Reg& r = prog.regs()[i];
    if (r.is_const) {
      ctx->regs[i] = MalValue::Of(r.cval);
    } else if (r.is_obj) {
      ctx->regs[i] = MalValue::Object(r.obj, r.obj_tag);
    }
  }
  for (const MalInstr& instr : prog.instrs()) {
    SCIQL_RETURN_NOT_OK(RunInstr(prog, instr, ctx));
  }
  return Status::OK();
}

Status MalEngine::RunInstr(const MalProgram& prog, const MalInstr& instr,
                           MalContext* ctx) const {
  auto it = fns_.find(instr.Name());
  if (it == fns_.end()) {
    return Status::Internal(
        StrFormat("unknown MAL operation: %s", instr.Name().c_str()));
  }
  Status st = it->second(ctx, prog, instr);
  if (!st.ok()) {
    return Status::ExecError(
        StrFormat("%s failed: %s", instr.Name().c_str(),
                  st.ToString().c_str()));
  }
  return Status::OK();
}

}  // namespace mal
}  // namespace sciql
