#include "src/mal/interpreter.h"

#include <chrono>

#include "src/common/string_util.h"
#include "src/obs/trace.h"

namespace sciql {
namespace mal {

namespace {

/// Summed row counts over a register list: BATs contribute their count;
/// result-side scalars count as one row (an aggregate's scalar output is
/// one value), input-side scalars as zero (constants are not flowing rows).
uint64_t SumRows(const MalContext& ctx, const std::vector<int>& regs,
                 bool scalar_is_row) {
  uint64_t rows = 0;
  for (int r : regs) {
    const MalValue& v = ctx.regs[static_cast<size_t>(r)];
    if (v.IsBat()) {
      rows += v.bat->Count();
    } else if (scalar_is_row && v.IsScalar()) {
      rows += 1;
    }
  }
  return rows;
}

}  // namespace

const MalEngine& MalEngine::Global() {
  static MalEngine* engine = [] {
    auto* e = new MalEngine();
    RegisterAllModules(e);
    return e;
  }();
  return *engine;
}

void MalEngine::Register(const std::string& name, MalFn fn, bool pure) {
  fns_[name] = std::move(fn);
  if (!pure) impure_.insert(name);
}

bool MalEngine::IsPure(const std::string& name) const {
  return impure_.count(name) == 0;
}

Status MalEngine::Run(const MalProgram& prog, MalContext* ctx) const {
  ctx->regs.assign(prog.regs().size(), MalValue::None());
  for (size_t i = 0; i < prog.regs().size(); ++i) {
    const MalProgram::Reg& r = prog.regs()[i];
    if (r.is_const) {
      ctx->regs[i] = MalValue::Of(r.cval);
    } else if (r.is_obj) {
      ctx->regs[i] = MalValue::Object(r.obj, r.obj_tag);
    }
  }
  if (ctx->trace == nullptr) {
    for (const MalInstr& instr : prog.instrs()) {
      SCIQL_RETURN_NOT_OK(RunInstr(prog, instr, ctx));
    }
    return Status::OK();
  }
  // Traced run: sample wall time, row counts and the kernel-telemetry
  // delta around every instruction. The delta is a before/after snapshot
  // diff of the process-wide counters, never a reset — concurrent sessions
  // keep their own attribution.
  for (size_t i = 0; i < prog.instrs().size(); ++i) {
    const MalInstr& instr = prog.instrs()[i];
    obs::InstrSample sample;
    sample.name = instr.Name();
    sample.in_rows = SumRows(*ctx, instr.args, /*scalar_is_row=*/false);
    gdk::TelemetrySnapshot before = gdk::CaptureTelemetry();
    auto start = std::chrono::steady_clock::now();
    SCIQL_RETURN_NOT_OK(RunInstr(prog, instr, ctx));
    sample.micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    sample.delta = gdk::DeltaSince(before);
    sample.out_rows = SumRows(*ctx, instr.rets, /*scalar_is_row=*/true);
    ctx->trace->RecordInstr(i, std::move(sample));
  }
  return Status::OK();
}

Status MalEngine::RunInstr(const MalProgram& prog, const MalInstr& instr,
                           MalContext* ctx) const {
  auto it = fns_.find(instr.Name());
  if (it == fns_.end()) {
    return Status::Internal(
        StrFormat("unknown MAL operation: %s", instr.Name().c_str()));
  }
  Status st = it->second(ctx, prog, instr);
  if (!st.ok()) {
    return Status::ExecError(
        StrFormat("%s failed: %s", instr.Name().c_str(),
                  st.ToString().c_str()));
  }
  return Status::OK();
}

}  // namespace mal
}  // namespace sciql
