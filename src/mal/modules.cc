// Registration of all MAL modules: algebra, batcalc, group, aggr, array, sql.
//
// The array module provides the paper's new primitives (array.series,
// array.filler — Sec. 3) plus the cell-addressing and tiling operations the
// SciQL compiler emits.

#include "src/array/series.h"
#include "src/array/tiling.h"
#include "src/common/string_util.h"
#include "src/gdk/kernels.h"
#include "src/mal/interpreter.h"

namespace sciql {
namespace mal {

using gdk::AggOp;
using gdk::BAT;
using gdk::BATPtr;
using gdk::BinOp;
using gdk::PhysType;
using gdk::ScalarValue;
using gdk::UnOp;

namespace {

Status CheckArity(const MalInstr& in, size_t nargs, size_t nrets) {
  if (in.args.size() != nargs || in.rets.size() != nrets) {
    return Status::Internal(
        StrFormat("%s: expected %zu args / %zu rets, got %zu / %zu",
                  in.Name().c_str(), nargs, nrets, in.args.size(),
                  in.rets.size()));
  }
  return Status::OK();
}

Result<BATPtr> BatArg(MalContext* ctx, const MalInstr& in, size_t i) {
  const MalValue& v = ctx->Reg(in.args[i]);
  if (!v.IsBat()) {
    return Status::Internal(
        StrFormat("%s: argument %zu is not a BAT", in.Name().c_str(), i));
  }
  return v.bat;
}

Result<ScalarValue> ScalarArg(MalContext* ctx, const MalInstr& in, size_t i) {
  const MalValue& v = ctx->Reg(in.args[i]);
  if (!v.IsScalar()) {
    return Status::Internal(
        StrFormat("%s: argument %zu is not a scalar", in.Name().c_str(), i));
  }
  return v.scalar;
}

Result<int64_t> LngArg(MalContext* ctx, const MalInstr& in, size_t i) {
  SCIQL_ASSIGN_OR_RETURN(ScalarValue v, ScalarArg(ctx, in, i));
  if (v.is_null || (!gdk::IsNumeric(v.type) && v.type != PhysType::kOid)) {
    return Status::Internal(
        StrFormat("%s: argument %zu is not an integer", in.Name().c_str(), i));
  }
  return v.AsInt64();
}

Result<std::string> StrArg(MalContext* ctx, const MalInstr& in, size_t i) {
  SCIQL_ASSIGN_OR_RETURN(ScalarValue v, ScalarArg(ctx, in, i));
  if (v.is_null || v.type != PhysType::kStr) {
    return Status::Internal(
        StrFormat("%s: argument %zu is not a string", in.Name().c_str(), i));
  }
  return v.s;
}

void SetRet(MalContext* ctx, const MalInstr& in, size_t i, MalValue v) {
  ctx->Reg(in.rets[i]) = std::move(v);
}

Result<AggOp> AggOpFromName(const std::string& s) {
  if (s == "sum") return AggOp::kSum;
  if (s == "avg") return AggOp::kAvg;
  if (s == "min") return AggOp::kMin;
  if (s == "max") return AggOp::kMax;
  if (s == "count") return AggOp::kCount;
  if (s == "count_star") return AggOp::kCountStar;
  return Status::Internal("unknown aggregate: " + s);
}

// ---------------------------------------------------------------------------
// algebra
// ---------------------------------------------------------------------------

void RegisterBat(MalEngine* e) {
  e->Register("bat.count",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 1));
                SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 0));
                SetRet(ctx, in, 0,
                       MalValue::Of(ScalarValue::Lng(
                           static_cast<int64_t>(b->Count()))));
                return Status::OK();
              });

  e->Register("bat.dense",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 1));
                SCIQL_ASSIGN_OR_RETURN(int64_t n, LngArg(ctx, in, 0));
                SetRet(ctx, in, 0,
                       MalValue::Of(BAT::MakeDense(0, static_cast<size_t>(n))));
                return Status::OK();
              });

  // bat.pack(v1, v2, ...) -> BAT of the scalars, typed by the *widest*
  // non-null value (bit < int < lng < dbl). Typing by the first value
  // loses later wider literals: INSERT ... VALUES (5), (9223372036854775807)
  // would pack an int BAT and reject the lng row even though the target
  // column is BIGINT. Non-numeric values keep the first non-null type and
  // let Append report the mismatch.
  e->Register("bat.pack",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                if (in.args.empty() || in.rets.size() != 1) {
                  return Status::Internal("bat.pack arity");
                }
                auto rank = [](PhysType t) {
                  switch (t) {
                    case PhysType::kBit: return 1;
                    case PhysType::kInt: return 2;
                    case PhysType::kLng: return 3;
                    case PhysType::kDbl: return 4;
                    default: return 0;  // non-numeric: no widening
                  }
                };
                PhysType t = PhysType::kInt;
                bool seen = false;
                for (int a : in.args) {
                  const MalValue& v = ctx->Reg(a);
                  if (!v.IsScalar()) {
                    return Status::Internal("bat.pack expects scalars");
                  }
                  if (v.scalar.is_null) continue;
                  if (!seen) {
                    t = v.scalar.type;
                    seen = true;
                  } else if (rank(v.scalar.type) > rank(t) && rank(t) > 0) {
                    t = v.scalar.type;
                  }
                }
                auto b = BAT::Make(t);
                for (int a : in.args) {
                  SCIQL_RETURN_NOT_OK(b->Append(ctx->Reg(a).scalar));
                }
                SetRet(ctx, in, 0, MalValue::Of(b));
                return Status::OK();
              });

  // bat.broadcast(v, ref) -> BAT of ref's length filled with the scalar v.
  // A BAT first argument passes through untouched, so the planner can emit
  // this unconditionally for select items it cannot prove are row-aligned.
  e->Register("bat.broadcast",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 1));
                const MalValue& v = ctx->Reg(in.args[0]);
                if (v.IsBat()) {
                  SetRet(ctx, in, 0, v);
                  return Status::OK();
                }
                if (!v.IsScalar()) {
                  return Status::Internal("bat.broadcast expects a scalar");
                }
                SCIQL_ASSIGN_OR_RETURN(BATPtr ref, BatArg(ctx, in, 1));
                auto b = BAT::Make(v.scalar.type);
                b->Reserve(ref->Count());
                for (size_t i = 0; i < ref->Count(); ++i) {
                  SCIQL_RETURN_NOT_OK(b->Append(v.scalar));
                }
                SetRet(ctx, in, 0, MalValue::Of(b));
                return Status::OK();
              });

  e->Register("bat.clone",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 1));
                SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 0));
                SetRet(ctx, in, 0, MalValue::Of(b->CloneData()));
                return Status::OK();
              });
}

void RegisterAlgebra(MalEngine* e) {
  e->Register("algebra.select",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                if (in.args.empty() || in.args.size() > 2 ||
                    in.rets.size() != 1) {
                  return Status::Internal("algebra.select arity");
                }
                SCIQL_ASSIGN_OR_RETURN(BATPtr bits, BatArg(ctx, in, 0));
                BATPtr cands;
                if (in.args.size() == 2) {
                  SCIQL_ASSIGN_OR_RETURN(cands, BatArg(ctx, in, 1));
                }
                SCIQL_ASSIGN_OR_RETURN(BATPtr out,
                                       gdk::BoolSelect(*bits, cands.get()));
                SetRet(ctx, in, 0, MalValue::Of(out));
                return Status::OK();
              });

  e->Register("algebra.thetaselect",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 3, 1));
                SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(std::string op, StrArg(ctx, in, 1));
                SCIQL_ASSIGN_OR_RETURN(ScalarValue v, ScalarArg(ctx, in, 2));
                gdk::CmpOp cmp;
                if (op == "==") cmp = gdk::CmpOp::kEq;
                else if (op == "!=") cmp = gdk::CmpOp::kNe;
                else if (op == "<") cmp = gdk::CmpOp::kLt;
                else if (op == "<=") cmp = gdk::CmpOp::kLe;
                else if (op == ">") cmp = gdk::CmpOp::kGt;
                else if (op == ">=") cmp = gdk::CmpOp::kGe;
                else return Status::Internal("bad theta op " + op);
                SCIQL_ASSIGN_OR_RETURN(
                    BATPtr out, gdk::ThetaSelect(*b, nullptr, cmp, v));
                SetRet(ctx, in, 0, MalValue::Of(out));
                return Status::OK();
              });

  e->Register("algebra.project",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 1));
                SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(BATPtr pos, BatArg(ctx, in, 1));
                SCIQL_ASSIGN_OR_RETURN(BATPtr out, gdk::Project(*b, *pos));
                SetRet(ctx, in, 0, MalValue::Of(out));
                return Status::OK();
              });

  e->Register("algebra.join",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 2));
                SCIQL_ASSIGN_OR_RETURN(BATPtr l, BatArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(BATPtr r, BatArg(ctx, in, 1));
                SCIQL_ASSIGN_OR_RETURN(gdk::JoinResult jr, gdk::HashJoin(*l, *r));
                SetRet(ctx, in, 0, MalValue::Of(jr.left));
                SetRet(ctx, in, 1, MalValue::Of(jr.right));
                return Status::OK();
              });

  // algebra.njoin(nkeys, l1..lk, r1..rk) -> (lo, ro)
  e->Register("algebra.njoin",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                if (in.args.size() < 3 || in.rets.size() != 2) {
                  return Status::Internal("algebra.njoin arity");
                }
                SCIQL_ASSIGN_OR_RETURN(int64_t nkeys, LngArg(ctx, in, 0));
                size_t k = static_cast<size_t>(nkeys);
                if (in.args.size() != 1 + 2 * k) {
                  return Status::Internal("algebra.njoin argument count");
                }
                std::vector<BATPtr> keep;
                std::vector<const BAT*> lk, rk;
                for (size_t i = 0; i < k; ++i) {
                  SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 1 + i));
                  keep.push_back(b);
                  lk.push_back(keep.back().get());
                }
                for (size_t i = 0; i < k; ++i) {
                  SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 1 + k + i));
                  keep.push_back(b);
                  rk.push_back(keep.back().get());
                }
                SCIQL_ASSIGN_OR_RETURN(gdk::JoinResult jr,
                                       gdk::HashJoinMulti(lk, rk));
                SetRet(ctx, in, 0, MalValue::Of(jr.left));
                SetRet(ctx, in, 1, MalValue::Of(jr.right));
                return Status::OK();
              });

  e->Register("algebra.crossjoin",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 2));
                SCIQL_ASSIGN_OR_RETURN(int64_t nl, LngArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(int64_t nr, LngArg(ctx, in, 1));
                gdk::JoinResult jr = gdk::CrossJoin(static_cast<size_t>(nl),
                                                    static_cast<size_t>(nr));
                SetRet(ctx, in, 0, MalValue::Of(jr.left));
                SetRet(ctx, in, 1, MalValue::Of(jr.right));
                return Status::OK();
              });

  e->Register("algebra.slice",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 3, 1));
                SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(int64_t lo, LngArg(ctx, in, 1));
                SCIQL_ASSIGN_OR_RETURN(int64_t hi, LngArg(ctx, in, 2));
                // A negative bound cast to size_t would wrap to a huge
                // offset; reject it here instead of relying on Slice's
                // clamping (which only bounds the upper end to Count()).
                if (lo < 0 || hi < 0) {
                  return Status::InvalidArgument(StrFormat(
                      "algebra.slice: negative bounds [%lld, %lld)",
                      static_cast<long long>(lo),
                      static_cast<long long>(hi)));
                }
                SetRet(ctx, in, 0,
                       MalValue::Of(b->Slice(static_cast<size_t>(lo),
                                             static_cast<size_t>(hi))));
                return Status::OK();
              });

  // algebra.sort(key0, desc0, key1, desc1, ...) -> order index
  e->Register("algebra.sort",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                if (in.args.empty() || in.args.size() % 2 != 0 ||
                    in.rets.size() != 1) {
                  return Status::Internal("algebra.sort arity");
                }
                std::vector<BATPtr> keep;
                std::vector<const BAT*> keys;
                std::vector<bool> desc;
                for (size_t i = 0; i < in.args.size(); i += 2) {
                  SCIQL_ASSIGN_OR_RETURN(BATPtr k, BatArg(ctx, in, i));
                  SCIQL_ASSIGN_OR_RETURN(int64_t d, LngArg(ctx, in, i + 1));
                  keep.push_back(k);
                  keys.push_back(keep.back().get());
                  desc.push_back(d != 0);
                }
                SCIQL_ASSIGN_OR_RETURN(BATPtr idx, gdk::OrderIndex(keys, desc));
                SetRet(ctx, in, 0, MalValue::Of(idx));
                return Status::OK();
              });

  // algebra.firstn(k, key0, desc0, key1, desc1, ...) -> the first k entries
  // of the stable order index, computed with bounded per-morsel heaps (an
  // existing persistent index short-circuits to a window copy). Emitted by
  // the planner for ORDER BY ... LIMIT k in place of a sort + slice pair.
  e->Register("algebra.firstn",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                if (in.args.size() < 3 || in.args.size() % 2 != 1 ||
                    in.rets.size() != 1) {
                  return Status::Internal("algebra.firstn arity");
                }
                SCIQL_ASSIGN_OR_RETURN(int64_t k, LngArg(ctx, in, 0));
                if (k < 0) {
                  return Status::InvalidArgument(StrFormat(
                      "algebra.firstn: negative row count %lld",
                      static_cast<long long>(k)));
                }
                std::vector<BATPtr> keep;
                std::vector<const BAT*> keys;
                std::vector<bool> desc;
                for (size_t i = 1; i < in.args.size(); i += 2) {
                  SCIQL_ASSIGN_OR_RETURN(BATPtr key, BatArg(ctx, in, i));
                  SCIQL_ASSIGN_OR_RETURN(int64_t d, LngArg(ctx, in, i + 1));
                  keep.push_back(key);
                  keys.push_back(keep.back().get());
                  desc.push_back(d != 0);
                }
                SCIQL_ASSIGN_OR_RETURN(
                    BATPtr idx,
                    gdk::FirstN(keys, desc, static_cast<size_t>(k)));
                SetRet(ctx, in, 0, MalValue::Of(idx));
                return Status::OK();
              });

  // algebra.orderidx(key) or algebra.orderidx(key0, desc0, key1, desc1, ...)
  // -> the stable order index for the spec, served from the keyed
  // persistent cache on the first key column: the canonical (primary
  // ascending) index is built once; exact specs reuse it, negated specs
  // (e.g. single-key DESC) derive from it by run reversal — no second sort.
  e->Register("algebra.orderidx",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                if (in.rets.size() != 1 ||
                    (in.args.size() != 1 && in.args.size() % 2 != 0)) {
                  return Status::Internal("algebra.orderidx arity");
                }
                std::vector<BATPtr> keys;
                std::vector<bool> desc;
                if (in.args.size() == 1) {
                  // Legacy single-ascending-key form.
                  SCIQL_ASSIGN_OR_RETURN(BATPtr k, BatArg(ctx, in, 0));
                  keys.push_back(std::move(k));
                  desc.push_back(false);
                } else {
                  for (size_t i = 0; i < in.args.size(); i += 2) {
                    SCIQL_ASSIGN_OR_RETURN(BATPtr k, BatArg(ctx, in, i));
                    SCIQL_ASSIGN_OR_RETURN(int64_t d, LngArg(ctx, in, i + 1));
                    keys.push_back(std::move(k));
                    desc.push_back(d != 0);
                  }
                }
                SCIQL_ASSIGN_OR_RETURN(gdk::OrderIndexPtr idx,
                                       gdk::EnsureOrderIndexSpec(keys, desc));
                auto out = BAT::Make(PhysType::kOid);
                out->oids() = *idx;
                SetRet(ctx, in, 0, MalValue::Of(std::move(out)));
                return Status::OK();
              });
}

// ---------------------------------------------------------------------------
// batcalc
// ---------------------------------------------------------------------------

Status RunBinary(BinOp op, MalContext* ctx, const MalInstr& in) {
  SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 1));
  const MalValue& l = ctx->Reg(in.args[0]);
  const MalValue& r = ctx->Reg(in.args[1]);
  if (l.IsScalar() && r.IsScalar()) {
    SCIQL_ASSIGN_OR_RETURN(ScalarValue out,
                           gdk::CalcBinaryScalar(op, l.scalar, r.scalar));
    SetRet(ctx, in, 0, MalValue::Of(out));
    return Status::OK();
  }
  const BAT* lb = l.IsBat() ? l.bat.get() : nullptr;
  const BAT* rb = r.IsBat() ? r.bat.get() : nullptr;
  const ScalarValue* ls = l.IsScalar() ? &l.scalar : nullptr;
  const ScalarValue* rs = r.IsScalar() ? &r.scalar : nullptr;
  if ((lb == nullptr && ls == nullptr) || (rb == nullptr && rs == nullptr)) {
    return Status::Internal("batcalc operand is neither BAT nor scalar");
  }
  SCIQL_ASSIGN_OR_RETURN(BATPtr out, gdk::CalcBinary(op, lb, ls, rb, rs));
  SetRet(ctx, in, 0, MalValue::Of(out));
  return Status::OK();
}

Status RunUnary(UnOp op, MalContext* ctx, const MalInstr& in) {
  SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 1));
  const MalValue& v = ctx->Reg(in.args[0]);
  if (v.IsScalar()) {
    SCIQL_ASSIGN_OR_RETURN(ScalarValue out, gdk::CalcUnaryScalar(op, v.scalar));
    SetRet(ctx, in, 0, MalValue::Of(out));
    return Status::OK();
  }
  if (!v.IsBat()) return Status::Internal("batcalc operand invalid");
  SCIQL_ASSIGN_OR_RETURN(BATPtr out, gdk::CalcUnary(op, *v.bat));
  SetRet(ctx, in, 0, MalValue::Of(out));
  return Status::OK();
}

void RegisterBatcalc(MalEngine* e) {
  const std::pair<const char*, BinOp> bins[] = {
      {"+", BinOp::kAdd},  {"-", BinOp::kSub},  {"*", BinOp::kMul},
      {"/", BinOp::kDiv},  {"%", BinOp::kMod},  {"==", BinOp::kEq},
      {"!=", BinOp::kNe},  {"<", BinOp::kLt},   {"<=", BinOp::kLe},
      {">", BinOp::kGt},   {">=", BinOp::kGe},  {"and", BinOp::kAnd},
      {"or", BinOp::kOr},
  };
  for (const auto& [name, op] : bins) {
    BinOp captured = op;
    e->Register(std::string("batcalc.") + name,
                [captured](MalContext* ctx, const MalProgram&,
                           const MalInstr& in) {
                  return RunBinary(captured, ctx, in);
                });
  }
  const std::pair<const char*, UnOp> uns[] = {
      {"not", UnOp::kNot},
      {"neg", UnOp::kNeg},
      {"abs", UnOp::kAbs},
      {"isnil", UnOp::kIsNull},
  };
  for (const auto& [name, op] : uns) {
    UnOp captured = op;
    e->Register(std::string("batcalc.") + name,
                [captured](MalContext* ctx, const MalProgram&,
                           const MalInstr& in) {
                  return RunUnary(captured, ctx, in);
                });
  }

  e->Register("batcalc.ifthenelse",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 3, 1));
                const MalValue& c = ctx->Reg(in.args[0]);
                const MalValue& t = ctx->Reg(in.args[1]);
                const MalValue& el = ctx->Reg(in.args[2]);
                if (c.IsScalar()) {
                  // Fully scalar condition: pick the arm directly.
                  SetRet(ctx, in, 0, c.scalar.IsTrue() ? t : el);
                  return Status::OK();
                }
                if (!c.IsBat()) return Status::Internal("bad CASE condition");
                SCIQL_ASSIGN_OR_RETURN(
                    BATPtr out,
                    gdk::IfThenElse(*c.bat, t.IsBat() ? t.bat.get() : nullptr,
                                    t.IsScalar() ? &t.scalar : nullptr,
                                    el.IsBat() ? el.bat.get() : nullptr,
                                    el.IsScalar() ? &el.scalar : nullptr));
                SetRet(ctx, in, 0, MalValue::Of(out));
                return Status::OK();
              });

  e->Register("batcalc.const",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 1));
                SCIQL_ASSIGN_OR_RETURN(ScalarValue v, ScalarArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(int64_t n, LngArg(ctx, in, 1));
                SetRet(ctx, in, 0,
                       MalValue::Of(BAT::MakeConst(v, static_cast<size_t>(n))));
                return Status::OK();
              });

  const std::pair<const char*, PhysType> casts[] = {
      {"cast_bit", PhysType::kBit},
      {"cast_int", PhysType::kInt},
      {"cast_lng", PhysType::kLng},
      {"cast_dbl", PhysType::kDbl},
  };
  for (const auto& [name, ty] : casts) {
    PhysType to = ty;
    e->Register(std::string("batcalc.") + name,
                [to](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                  SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 1));
                  const MalValue& v = ctx->Reg(in.args[0]);
                  if (v.IsScalar()) {
                    SCIQL_ASSIGN_OR_RETURN(ScalarValue out,
                                           gdk::CastScalar(v.scalar, to));
                    SetRet(ctx, in, 0, MalValue::Of(out));
                    return Status::OK();
                  }
                  if (!v.IsBat()) return Status::Internal("bad cast operand");
                  SCIQL_ASSIGN_OR_RETURN(BATPtr out, gdk::CastBat(*v.bat, to));
                  SetRet(ctx, in, 0, MalValue::Of(out));
                  return Status::OK();
                });
  }
}

// ---------------------------------------------------------------------------
// group / aggr
// ---------------------------------------------------------------------------

void RegisterGroupAggr(MalEngine* e) {
  e->Register("group.group",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 3));
                SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(gdk::GroupResult gr,
                                       gdk::Group(*b, nullptr, 0));
                SetRet(ctx, in, 0, MalValue::Of(gr.groups));
                SetRet(ctx, in, 1, MalValue::Of(gr.extents));
                SetRet(ctx, in, 2,
                       MalValue::Of(ScalarValue::Lng(
                           static_cast<int64_t>(gr.ngroups))));
                return Status::OK();
              });

  e->Register("group.subgroup",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 3, 3));
                SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(BATPtr prev, BatArg(ctx, in, 1));
                SCIQL_ASSIGN_OR_RETURN(int64_t ng, LngArg(ctx, in, 2));
                SCIQL_ASSIGN_OR_RETURN(
                    gdk::GroupResult gr,
                    gdk::Group(*b, prev.get(), static_cast<size_t>(ng)));
                SetRet(ctx, in, 0, MalValue::Of(gr.groups));
                SetRet(ctx, in, 1, MalValue::Of(gr.extents));
                SetRet(ctx, in, 2,
                       MalValue::Of(ScalarValue::Lng(
                           static_cast<int64_t>(gr.ngroups))));
                return Status::OK();
              });

  const char* grouped[] = {"sum", "avg", "min", "max", "count"};
  for (const char* name : grouped) {
    std::string n = name;
    e->Register("aggr." + n,
                [n](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                  SCIQL_RETURN_NOT_OK(CheckArity(in, 3, 1));
                  SCIQL_ASSIGN_OR_RETURN(BATPtr vals, BatArg(ctx, in, 0));
                  SCIQL_ASSIGN_OR_RETURN(BATPtr groups, BatArg(ctx, in, 1));
                  SCIQL_ASSIGN_OR_RETURN(int64_t ng, LngArg(ctx, in, 2));
                  SCIQL_ASSIGN_OR_RETURN(AggOp op, AggOpFromName(n));
                  SCIQL_ASSIGN_OR_RETURN(
                      BATPtr out,
                      gdk::GroupedAggregate(op, vals.get(), *groups,
                                            static_cast<size_t>(ng)));
                  SetRet(ctx, in, 0, MalValue::Of(out));
                  return Status::OK();
                });
  }

  e->Register("aggr.count_star",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 1));
                SCIQL_ASSIGN_OR_RETURN(BATPtr groups, BatArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(int64_t ng, LngArg(ctx, in, 1));
                SCIQL_ASSIGN_OR_RETURN(
                    BATPtr out,
                    gdk::GroupedAggregate(AggOp::kCountStar, nullptr, *groups,
                                          static_cast<size_t>(ng)));
                SetRet(ctx, in, 0, MalValue::Of(out));
                return Status::OK();
              });

  const char* whole[] = {"sum", "avg", "min", "max", "count"};
  for (const char* name : whole) {
    std::string n = name;
    e->Register("aggr." + n + "_all",
                [n](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                  SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 1));
                  SCIQL_ASSIGN_OR_RETURN(BATPtr vals, BatArg(ctx, in, 0));
                  SCIQL_ASSIGN_OR_RETURN(AggOp op, AggOpFromName(n));
                  SCIQL_ASSIGN_OR_RETURN(ScalarValue out,
                                         gdk::Aggregate(op, *vals));
                  SetRet(ctx, in, 0, MalValue::Of(out));
                  return Status::OK();
                });
  }
}

// ---------------------------------------------------------------------------
// array
// ---------------------------------------------------------------------------

void RegisterArray(MalEngine* e) {
  e->Register("array.series",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 5, 1));
                SCIQL_ASSIGN_OR_RETURN(int64_t start, LngArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(int64_t step, LngArg(ctx, in, 1));
                SCIQL_ASSIGN_OR_RETURN(int64_t stop, LngArg(ctx, in, 2));
                SCIQL_ASSIGN_OR_RETURN(int64_t n, LngArg(ctx, in, 3));
                SCIQL_ASSIGN_OR_RETURN(int64_t m, LngArg(ctx, in, 4));
                array::DimRange r(start, step, stop);
                SCIQL_RETURN_NOT_OK(r.Validate());
                SetRet(ctx, in, 0,
                       MalValue::Of(array::Series(r, static_cast<size_t>(n),
                                                  static_cast<size_t>(m))));
                return Status::OK();
              });

  e->Register("array.filler",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 1));
                SCIQL_ASSIGN_OR_RETURN(int64_t cnt, LngArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(ScalarValue v, ScalarArg(ctx, in, 1));
                SetRet(ctx, in, 0,
                       MalValue::Of(
                           array::Filler(static_cast<size_t>(cnt), v)));
                return Status::OK();
              });

  e->Register("array.cellpos",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                if (in.args.size() < 2 || in.rets.size() != 1) {
                  return Status::Internal("array.cellpos arity");
                }
                const auto* desc = ctx->Reg(in.args[0])
                                       .As<array::ArrayDesc>("arraydesc");
                if (desc == nullptr) {
                  return Status::Internal("array.cellpos: bad descriptor");
                }
                std::vector<BATPtr> keep;
                std::vector<const BAT*> dims;
                for (size_t i = 1; i < in.args.size(); ++i) {
                  SCIQL_ASSIGN_OR_RETURN(BATPtr b, BatArg(ctx, in, i));
                  keep.push_back(b);
                  dims.push_back(keep.back().get());
                }
                SCIQL_ASSIGN_OR_RETURN(BATPtr out,
                                       array::CellPositions(*desc, dims));
                SetRet(ctx, in, 0, MalValue::Of(out));
                return Status::OK();
              });

  e->Register("array.tileagg",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 4, 1));
                const auto* desc = ctx->Reg(in.args[0])
                                       .As<array::ArrayDesc>("arraydesc");
                const auto* spec =
                    ctx->Reg(in.args[1]).As<array::TileSpec>("tilespec");
                if (desc == nullptr || spec == nullptr) {
                  return Status::Internal("array.tileagg: bad plan objects");
                }
                SCIQL_ASSIGN_OR_RETURN(std::string opname, StrArg(ctx, in, 2));
                SCIQL_ASSIGN_OR_RETURN(AggOp op, AggOpFromName(opname));
                SCIQL_ASSIGN_OR_RETURN(BATPtr vals, BatArg(ctx, in, 3));
                SCIQL_ASSIGN_OR_RETURN(
                    BATPtr out, array::TileAggregate(*desc, *vals, *spec, op));
                SetRet(ctx, in, 0, MalValue::Of(out));
                return Status::OK();
              });

  e->Register(
      "array.scatter",
      [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
        SCIQL_RETURN_NOT_OK(CheckArity(in, 4, 0));
        SCIQL_ASSIGN_OR_RETURN(std::string arr, StrArg(ctx, in, 0));
        SCIQL_ASSIGN_OR_RETURN(std::string attr, StrArg(ctx, in, 1));
        SCIQL_ASSIGN_OR_RETURN(BATPtr pos, BatArg(ctx, in, 2));
        SCIQL_ASSIGN_OR_RETURN(auto obj, ctx->catalog->GetArray(arr));
        int ai = obj->desc.AttrIndex(attr);
        if (ai < 0) return Status::NotFound("no attribute " + attr);
        const MalValue& v = ctx->Reg(in.args[3]);
        if (v.IsScalar()) {
          return array::ScatterConstIntoAttr(
              obj->attr_bats[static_cast<size_t>(ai)].get(), *pos, v.scalar);
        }
        if (!v.IsBat()) return Status::Internal("scatter: bad values");
        return array::ScatterIntoAttr(
            obj->attr_bats[static_cast<size_t>(ai)].get(), *pos, *v.bat);
      },
      /*pure=*/false);
}

// ---------------------------------------------------------------------------
// sql (catalog access + table DML)
// ---------------------------------------------------------------------------

void RegisterSql(MalEngine* e) {
  e->Register("sql.bind",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 1));
                SCIQL_ASSIGN_OR_RETURN(std::string obj, StrArg(ctx, in, 0));
                SCIQL_ASSIGN_OR_RETURN(std::string col, StrArg(ctx, in, 1));
                if (ctx->catalog->IsArray(obj)) {
                  SCIQL_ASSIGN_OR_RETURN(auto arr, ctx->catalog->GetArray(obj));
                  int d = arr->desc.DimIndex(col);
                  if (d >= 0) {
                    SetRet(ctx, in, 0,
                           MalValue::Of(arr->dim_bats[static_cast<size_t>(d)]));
                    return Status::OK();
                  }
                  int a = arr->desc.AttrIndex(col);
                  if (a < 0) return Status::NotFound("no column " + col);
                  SetRet(ctx, in, 0,
                         MalValue::Of(arr->attr_bats[static_cast<size_t>(a)]));
                  return Status::OK();
                }
                SCIQL_ASSIGN_OR_RETURN(auto tab, ctx->catalog->GetTable(obj));
                int c = tab->ColumnIndex(col);
                if (c < 0) return Status::NotFound("no column " + col);
                SetRet(ctx, in, 0,
                       MalValue::Of(tab->bats[static_cast<size_t>(c)]));
                return Status::OK();
              });

  e->Register("sql.count",
              [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
                SCIQL_RETURN_NOT_OK(CheckArity(in, 1, 1));
                SCIQL_ASSIGN_OR_RETURN(std::string obj, StrArg(ctx, in, 0));
                size_t n;
                if (ctx->catalog->IsArray(obj)) {
                  SCIQL_ASSIGN_OR_RETURN(auto arr, ctx->catalog->GetArray(obj));
                  n = arr->CellCount();
                } else {
                  SCIQL_ASSIGN_OR_RETURN(auto tab, ctx->catalog->GetTable(obj));
                  n = tab->RowCount();
                }
                SetRet(ctx, in, 0,
                       MalValue::Of(ScalarValue::Lng(static_cast<int64_t>(n))));
                return Status::OK();
              });

  e->Register(
      "sql.append",
      [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
        SCIQL_RETURN_NOT_OK(CheckArity(in, 3, 0));
        SCIQL_ASSIGN_OR_RETURN(std::string obj, StrArg(ctx, in, 0));
        SCIQL_ASSIGN_OR_RETURN(std::string col, StrArg(ctx, in, 1));
        SCIQL_ASSIGN_OR_RETURN(BATPtr vals, BatArg(ctx, in, 2));
        SCIQL_ASSIGN_OR_RETURN(auto tab, ctx->catalog->GetTable(obj));
        int c = tab->ColumnIndex(col);
        if (c < 0) return Status::NotFound("no column " + col);
        return tab->bats[static_cast<size_t>(c)]->AppendBat(*vals);
      },
      /*pure=*/false);

  e->Register(
      "sql.replace",
      [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
        SCIQL_RETURN_NOT_OK(CheckArity(in, 4, 0));
        SCIQL_ASSIGN_OR_RETURN(std::string obj, StrArg(ctx, in, 0));
        SCIQL_ASSIGN_OR_RETURN(std::string col, StrArg(ctx, in, 1));
        SCIQL_ASSIGN_OR_RETURN(BATPtr pos, BatArg(ctx, in, 2));
        SCIQL_ASSIGN_OR_RETURN(auto tab, ctx->catalog->GetTable(obj));
        int c = tab->ColumnIndex(col);
        if (c < 0) return Status::NotFound("no column " + col);
        BAT* target = tab->bats[static_cast<size_t>(c)].get();
        const MalValue& v = ctx->Reg(in.args[3]);
        for (size_t i = 0; i < pos->Count(); ++i) {
          gdk::oid_t p = pos->oids()[i];
          if (p == gdk::kOidNil) continue;
          ScalarValue sv = v.IsBat() ? v.bat->GetScalar(i) : v.scalar;
          SCIQL_RETURN_NOT_OK(target->Set(p, sv));
        }
        return Status::OK();
      },
      /*pure=*/false);

  e->Register(
      "sql.delete_rows",
      [](MalContext* ctx, const MalProgram&, const MalInstr& in) {
        SCIQL_RETURN_NOT_OK(CheckArity(in, 2, 0));
        SCIQL_ASSIGN_OR_RETURN(std::string obj, StrArg(ctx, in, 0));
        SCIQL_ASSIGN_OR_RETURN(BATPtr pos, BatArg(ctx, in, 1));
        SCIQL_ASSIGN_OR_RETURN(auto tab, ctx->catalog->GetTable(obj));
        return tab->DeleteRows(*pos);
      },
      /*pure=*/false);
}

}  // namespace

void RegisterAllModules(MalEngine* engine) {
  RegisterBat(engine);
  RegisterAlgebra(engine);
  RegisterBatcalc(engine);
  RegisterGroupAggr(engine);
  RegisterArray(engine);
  RegisterSql(engine);
}

}  // namespace mal
}  // namespace sciql
