// Runtime values flowing through MAL registers: scalars, BATs, or opaque
// plan objects (array descriptors, tile specs).

#ifndef SCIQL_MAL_VALUE_H_
#define SCIQL_MAL_VALUE_H_

#include <memory>
#include <string>

#include "src/gdk/bat.h"

namespace sciql {
namespace mal {

/// \brief The content of one MAL register at runtime.
struct MalValue {
  enum class Kind { kNone, kScalar, kBat, kObj };

  Kind kind = Kind::kNone;
  gdk::ScalarValue scalar;
  gdk::BATPtr bat;
  std::shared_ptr<const void> obj;
  std::string obj_tag;

  static MalValue None() { return MalValue(); }
  static MalValue Of(gdk::ScalarValue v) {
    MalValue m;
    m.kind = Kind::kScalar;
    m.scalar = std::move(v);
    return m;
  }
  static MalValue Of(gdk::BATPtr b) {
    MalValue m;
    m.kind = Kind::kBat;
    m.bat = std::move(b);
    return m;
  }
  static MalValue Object(std::shared_ptr<const void> o, std::string tag) {
    MalValue m;
    m.kind = Kind::kObj;
    m.obj = std::move(o);
    m.obj_tag = std::move(tag);
    return m;
  }

  bool IsBat() const { return kind == Kind::kBat; }
  bool IsScalar() const { return kind == Kind::kScalar; }

  /// Typed access to an object payload.
  template <typename T>
  const T* As(const std::string& tag) const {
    if (kind != Kind::kObj || obj_tag != tag) return nullptr;
    return static_cast<const T*>(obj.get());
  }

  std::string ToString() const;
};

}  // namespace mal
}  // namespace sciql

#endif  // SCIQL_MAL_VALUE_H_
