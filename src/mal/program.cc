#include "src/mal/program.h"

#include "src/common/string_util.h"

namespace sciql {
namespace mal {

int MalProgram::NewReg(const std::string& hint) {
  Reg r;
  r.name = StrFormat("%s_%d", hint.empty() ? "t" : hint.c_str(),
                     name_counter_++);
  regs_.push_back(std::move(r));
  return static_cast<int>(regs_.size()) - 1;
}

int MalProgram::Const(gdk::ScalarValue v) {
  // Hash-cons: 'int:7' and 'int:7' share one register.
  std::string key =
      std::string(gdk::PhysTypeName(v.type)) + ":" + v.ToString();
  auto it = const_pool_.find(key);
  if (it != const_pool_.end()) return it->second;
  Reg r;
  r.is_const = true;
  r.cval = std::move(v);
  regs_.push_back(std::move(r));
  int idx = static_cast<int>(regs_.size()) - 1;
  const_pool_.emplace(std::move(key), idx);
  return idx;
}

int MalProgram::Obj(std::shared_ptr<const void> obj, const std::string& tag,
                    const std::string& display) {
  Reg r;
  r.is_obj = true;
  r.obj = std::move(obj);
  r.obj_tag = tag;
  r.obj_display = display;
  regs_.push_back(std::move(r));
  return static_cast<int>(regs_.size()) - 1;
}

void MalProgram::Emit(const std::string& module, const std::string& fn,
                      std::vector<int> rets, std::vector<int> args) {
  instrs_.push_back(MalInstr{module, fn, std::move(rets), std::move(args)});
}

int MalProgram::EmitR(const std::string& module, const std::string& fn,
                      std::vector<int> args, const std::string& hint) {
  int r = NewReg(hint);
  Emit(module, fn, {r}, std::move(args));
  return r;
}

void MalProgram::AddResult(const std::string& name, int reg, bool is_dim) {
  results_.push_back(ResultCol{name, reg, is_dim});
}

std::string MalProgram::RegName(int r) const {
  const Reg& reg = regs_[static_cast<size_t>(r)];
  if (reg.is_const) return reg.cval.ToString();
  if (reg.is_obj) return reg.obj_display;
  return reg.name;
}

std::string MalProgram::InstrToString(size_t i) const {
  const MalInstr& in = instrs_[i];
  std::string line;
  if (in.rets.size() == 1) {
    line += RegName(in.rets[0]) + " := ";
  } else if (in.rets.size() > 1) {
    std::vector<std::string> rets;
    for (int r : in.rets) rets.push_back(RegName(r));
    line += "(" + Join(rets, ", ") + ") := ";
  }
  line += in.Name() + "(";
  std::vector<std::string> args;
  for (int a : in.args) args.push_back(RegName(a));
  line += Join(args, ", ") + ");";
  return line;
}

std::string MalProgram::ResultLineToString() const {
  if (results_.empty()) return std::string();
  std::vector<std::string> cols;
  for (const auto& rc : results_) {
    std::string name = rc.is_dim ? "[" + rc.name + "]" : rc.name;
    cols.push_back(name + "=" + RegName(rc.reg));
  }
  return "io.result(" + Join(cols, ", ") + ");";
}

std::string MalProgram::ToString() const {
  std::string out;
  for (size_t i = 0; i < instrs_.size(); ++i) {
    out += InstrToString(i) + "\n";
  }
  std::string result_line = ResultLineToString();
  if (!result_line.empty()) out += result_line + "\n";
  return out;
}

}  // namespace mal
}  // namespace sciql
