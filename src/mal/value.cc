#include "src/mal/value.h"

namespace sciql {
namespace mal {

std::string MalValue::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "nil";
    case Kind::kScalar:
      return scalar.ToString();
    case Kind::kBat:
      return bat->ToString();
    case Kind::kObj:
      return "<" + obj_tag + ">";
  }
  return "?";
}

}  // namespace mal
}  // namespace sciql
