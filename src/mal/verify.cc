#include "src/mal/verify.h"

#include <map>
#include <utility>

#include "src/common/string_util.h"
#include "src/gdk/types.h"

namespace sciql {
namespace mal {

namespace {

/// What the signature table can demand of an argument (or promise of a
/// return). The verifier tracks values abstractly, so the kinds form a
/// small lattice rather than full physical types: `kVal` accepts any
/// runtime value (BAT or scalar), `kScalar` any scalar, `kNum`/`kStr`
/// specific scalar families, and the object kinds match opaque plan
/// objects by tag.
enum class AK {
  kVal,       // BAT or scalar
  kBat,       // BAT only
  kScalar,    // any scalar
  kNum,       // numeric scalar (bit/int/lng/dbl/oid)
  kStr,       // string scalar
  kObjArray,  // opaque object tagged "arraydesc"
  kObjTile,   // opaque object tagged "tilespec"
};

const char* AKName(AK k) {
  switch (k) {
    case AK::kVal: return "value";
    case AK::kBat: return "bat";
    case AK::kScalar: return "scalar";
    case AK::kNum: return "numeric scalar";
    case AK::kStr: return "string scalar";
    case AK::kObjArray: return "arraydesc object";
    case AK::kObjTile: return "tilespec object";
  }
  return "?";
}

/// Abstract kind of a defined register. `kPoly` is a batcalc result whose
/// BAT-vs-scalar shape could not be pinned down (mixed/poly operands); it
/// satisfies both BAT and scalar argument slots.
enum class RK { kBat, kNum, kStr, kScalar, kPoly, kObj };

struct RegState {
  bool defined = false;
  /// Instruction that defined the register, -1 for constants/objects.
  int def_instr = -1;
  RK kind = RK::kScalar;
  std::string obj_tag;
};

bool Matches(AK spec, const RegState& r) {
  switch (spec) {
    case AK::kVal:
      return r.kind != RK::kObj;
    case AK::kBat:
      return r.kind == RK::kBat || r.kind == RK::kPoly;
    case AK::kScalar:
      return r.kind == RK::kNum || r.kind == RK::kStr ||
             r.kind == RK::kScalar || r.kind == RK::kPoly;
    case AK::kNum:
      return r.kind == RK::kNum || r.kind == RK::kScalar ||
             r.kind == RK::kPoly;
    case AK::kStr:
      return r.kind == RK::kStr || r.kind == RK::kScalar ||
             r.kind == RK::kPoly;
    case AK::kObjArray:
      return r.kind == RK::kObj && r.obj_tag == "arraydesc";
    case AK::kObjTile:
      return r.kind == RK::kObj && r.obj_tag == "tilespec";
  }
  return false;
}

const char* RKName(RK k) {
  switch (k) {
    case RK::kBat: return "bat";
    case RK::kNum: return "numeric scalar";
    case RK::kStr: return "string scalar";
    case RK::kScalar: return "scalar";
    case RK::kPoly: return "bat-or-scalar";
    case RK::kObj: return "object";
  }
  return "?";
}

/// One acceptable shape of an opcode: `fixed` leading arguments followed by
/// zero or more repetitions of `group` (at least `min_groups`). Opcodes
/// with genuinely alternative shapes (algebra.select's optional candidate
/// list, algebra.orderidx's two spellings) list several OpSigs.
struct OpSig {
  std::vector<AK> fixed;
  std::vector<AK> group;
  int min_groups = 0;
  std::vector<AK> rets;
  /// Single return whose BAT-vs-scalar shape follows the value arguments
  /// (batcalc): all-scalar operands give a scalar, any BAT gives a BAT.
  bool poly_ret = false;

  size_t RetCount() const { return poly_ret ? 1 : rets.size(); }

  bool ArityOk(size_t nargs) const {
    if (group.empty()) return nargs == fixed.size();
    if (nargs < fixed.size() + group.size() * min_groups) return false;
    return (nargs - fixed.size()) % group.size() == 0;
  }

  std::string ArityString() const {
    std::string out = StrFormat("%zu", fixed.size());
    if (!group.empty()) {
      out += StrFormat("+%zuk", group.size());
      if (min_groups > 0) out += StrFormat(" (k>=%d)", min_groups);
    }
    return out;
  }

  AK ArgSpec(size_t i) const {
    if (i < fixed.size()) return fixed[i];
    return group[(i - fixed.size()) % group.size()];
  }
};

using SigTable = std::map<std::string, std::vector<OpSig>>;

/// The declarative opcode inventory. Mirrors src/mal/modules.cc (every op
/// RegisterBuiltinModules installs) plus the display-only `sql.ddl`
/// pseudo-instruction CompileDdlDisplay emits for EXPLAIN of DDL. Adding an
/// op to the engine means adding its row here, or every Debug-build
/// execution of it fails with unknown-op (docs/static_analysis.md).
SigTable BuildTable() {
  SigTable t;
  auto add = [&t](const std::string& name, OpSig sig) {
    t[name].push_back(std::move(sig));
  };

  // bat.*
  add("bat.count", {{AK::kBat}, {}, 0, {AK::kNum}});
  add("bat.dense", {{AK::kNum}, {}, 0, {AK::kBat}});
  add("bat.pack", {{}, {AK::kScalar}, 1, {AK::kBat}});
  add("bat.broadcast", {{AK::kVal, AK::kBat}, {}, 0, {AK::kBat}});
  add("bat.clone", {{AK::kBat}, {}, 0, {AK::kBat}});

  // algebra.*
  add("algebra.select", {{AK::kBat}, {}, 0, {AK::kBat}});
  add("algebra.select", {{AK::kBat, AK::kBat}, {}, 0, {AK::kBat}});
  add("algebra.thetaselect",
      {{AK::kBat, AK::kStr, AK::kScalar}, {}, 0, {AK::kBat}});
  add("algebra.project", {{AK::kBat, AK::kBat}, {}, 0, {AK::kBat}});
  add("algebra.join", {{AK::kBat, AK::kBat}, {}, 0, {AK::kBat, AK::kBat}});
  add("algebra.njoin",
      {{AK::kNum}, {AK::kBat, AK::kBat}, 1, {AK::kBat, AK::kBat}});
  add("algebra.crossjoin",
      {{AK::kNum, AK::kNum}, {}, 0, {AK::kBat, AK::kBat}});
  add("algebra.slice", {{AK::kBat, AK::kNum, AK::kNum}, {}, 0, {AK::kBat}});
  add("algebra.sort", {{}, {AK::kBat, AK::kNum}, 1, {AK::kBat}});
  add("algebra.firstn", {{AK::kNum}, {AK::kBat, AK::kNum}, 1, {AK::kBat}});
  add("algebra.orderidx", {{AK::kBat}, {}, 0, {AK::kBat}});
  add("algebra.orderidx", {{}, {AK::kBat, AK::kNum}, 1, {AK::kBat}});

  // batcalc.* — shape-polymorphic over scalars and BATs.
  for (const char* op : {"+", "-", "*", "/", "%", "==", "!=", "<", "<=",
                         ">", ">=", "and", "or"}) {
    add(std::string("batcalc.") + op,
        {{AK::kVal, AK::kVal}, {}, 0, {}, true});
  }
  for (const char* op : {"not", "neg", "abs", "isnil"}) {
    add(std::string("batcalc.") + op, {{AK::kVal}, {}, 0, {}, true});
  }
  add("batcalc.ifthenelse",
      {{AK::kVal, AK::kVal, AK::kVal}, {}, 0, {}, true});
  add("batcalc.const", {{AK::kScalar, AK::kNum}, {}, 0, {AK::kBat}});
  for (const char* ty : {"bit", "int", "lng", "dbl"}) {
    add(std::string("batcalc.cast_") + ty, {{AK::kVal}, {}, 0, {}, true});
  }

  // group.* / aggr.*
  add("group.group", {{AK::kBat}, {}, 0, {AK::kBat, AK::kBat, AK::kNum}});
  add("group.subgroup",
      {{AK::kBat, AK::kBat, AK::kNum}, {}, 0,
       {AK::kBat, AK::kBat, AK::kNum}});
  for (const char* op : {"sum", "avg", "min", "max", "count"}) {
    add(std::string("aggr.") + op,
        {{AK::kBat, AK::kBat, AK::kNum}, {}, 0, {AK::kBat}});
    add(std::string("aggr.") + op + "_all", {{AK::kBat}, {}, 0, {AK::kScalar}});
  }
  add("aggr.count_star", {{AK::kBat, AK::kNum}, {}, 0, {AK::kBat}});

  // array.*
  add("array.series",
      {{AK::kNum, AK::kNum, AK::kNum, AK::kNum, AK::kNum}, {}, 0, {AK::kBat}});
  add("array.filler", {{AK::kNum, AK::kScalar}, {}, 0, {AK::kBat}});
  add("array.cellpos", {{AK::kObjArray}, {AK::kBat}, 1, {AK::kBat}});
  add("array.tileagg",
      {{AK::kObjArray, AK::kObjTile, AK::kStr, AK::kBat}, {}, 0, {AK::kBat}});
  add("array.scatter", {{AK::kStr, AK::kStr, AK::kBat, AK::kVal}, {}, 0, {}});

  // sql.* — `sql.ddl` is the display-only pseudo-op EXPLAIN emits for DDL.
  add("sql.bind", {{AK::kStr, AK::kStr}, {}, 0, {AK::kBat}});
  add("sql.count", {{AK::kStr}, {}, 0, {AK::kNum}});
  add("sql.append", {{AK::kStr, AK::kStr, AK::kBat}, {}, 0, {}});
  add("sql.replace", {{AK::kStr, AK::kStr, AK::kBat, AK::kVal}, {}, 0, {}});
  add("sql.delete_rows", {{AK::kStr, AK::kBat}, {}, 0, {}});
  add("sql.ddl", {{AK::kStr}, {}, 0, {}});

  return t;
}

const SigTable& Table() {
  static const SigTable* t = new SigTable(BuildTable());
  return *t;
}

RK RetKind(AK spec) {
  switch (spec) {
    case AK::kBat: return RK::kBat;
    case AK::kNum: return RK::kNum;
    case AK::kStr: return RK::kStr;
    default: return RK::kScalar;
  }
}

}  // namespace

std::string VerifyDiag::ToString() const {
  if (instr < 0) return "verify[" + check + "]: " + detail;
  return StrFormat("verify[%s] at #%d: ", check.c_str(), instr) + detail;
}

std::vector<VerifyDiag> VerifyProgramDiags(const MalProgram& prog) {
  std::vector<VerifyDiag> diags;
  const auto& regs = prog.regs();
  const auto& instrs = prog.instrs();
  const int nregs = static_cast<int>(regs.size());

  std::vector<RegState> state(regs.size());
  for (int r = 0; r < nregs; ++r) {
    if (regs[r].is_const) {
      state[r].defined = true;
      state[r].kind =
          regs[r].cval.type == gdk::PhysType::kStr ? RK::kStr : RK::kNum;
    } else if (regs[r].is_obj) {
      state[r].defined = true;
      state[r].kind = RK::kObj;
      state[r].obj_tag = regs[r].obj_tag;
    }
  }

  auto diag = [&diags](const std::string& check, int instr,
                       std::string detail) {
    diags.push_back(VerifyDiag{check, instr, std::move(detail)});
  };

  for (size_t i = 0; i < instrs.size(); ++i) {
    const MalInstr& in = instrs[i];
    const int ii = static_cast<int>(i);

    // Register indexes must be valid before anything else can be said —
    // including rendering: InstrToString dereferences the register file,
    // so it must not run on a corrupted instruction.
    bool regs_ok = true;
    for (int a : in.args) {
      if (a < 0 || a >= nregs) {
        diag("bad-register", ii,
             StrFormat("argument register %d out of range (program has %d "
                       "registers) in `%s(...)`",
                       a, nregs, in.Name().c_str()));
        regs_ok = false;
      }
    }
    for (int r : in.rets) {
      if (r < 0 || r >= nregs) {
        diag("bad-register", ii,
             StrFormat("return register %d out of range (program has %d "
                       "registers) in `%s(...)`",
                       r, nregs, in.Name().c_str()));
        regs_ok = false;
      }
    }
    if (!regs_ok) continue;
    const std::string line = prog.InstrToString(i);

    // Def-before-use over the already-processed prefix.
    for (size_t a = 0; a < in.args.size(); ++a) {
      if (!state[in.args[a]].defined) {
        diag("use-before-def", ii,
             "argument " + StrFormat("%zu", a) + " (" +
                 regs[in.args[a]].name + ") is not a constant and has no "
                 "defining instruction before `" + line + "`");
      }
    }

    const auto it = Table().find(in.Name());
    const std::vector<OpSig>* sigs =
        it == Table().end() ? nullptr : &it->second;
    if (sigs == nullptr) {
      diag("unknown-op", ii,
           "`" + in.Name() + "` is not in the MAL signature table: `" + line +
               "`");
    }

    const OpSig* matched = nullptr;
    if (sigs != nullptr) {
      // Shape first: find the alternatives this arity/ret-count fits, then
      // demand the argument kinds of one of them.
      std::vector<const OpSig*> shape_ok;
      for (const OpSig& s : *sigs) {
        if (s.ArityOk(in.args.size()) && s.RetCount() == in.rets.size()) {
          shape_ok.push_back(&s);
        }
      }
      if (shape_ok.empty()) {
        const OpSig& s = (*sigs)[0];
        diag("arity-mismatch", ii,
             "`" + in.Name() + "` expects " + s.ArityString() +
                 StrFormat(" args and %zu rets, got %zu args and %zu rets "
                           "in `",
                           s.RetCount(), in.args.size(), in.rets.size()) +
                 line + "`");
      } else {
        std::string first_mismatch;
        for (const OpSig* s : shape_ok) {
          bool all = true;
          for (size_t a = 0; a < in.args.size(); ++a) {
            const RegState& rs = state[in.args[a]];
            if (!rs.defined) continue;  // already reported use-before-def
            if (!Matches(s->ArgSpec(a), rs)) {
              all = false;
              if (first_mismatch.empty()) {
                first_mismatch =
                    "argument " + StrFormat("%zu", a) + " (" +
                    regs[in.args[a]].name + ") is " + RKName(rs.kind) +
                    ", `" + in.Name() + "` needs " + AKName(s->ArgSpec(a)) +
                    " in `" + line + "`";
              }
              break;
            }
          }
          if (all) {
            matched = s;
            break;
          }
        }
        if (matched == nullptr) {
          diag("type-mismatch", ii, first_mismatch);
        }
      }
    }

    // Returns: single assignment into plain variable registers only.
    for (size_t r = 0; r < in.rets.size(); ++r) {
      const int reg = in.rets[r];
      if (regs[reg].is_const || regs[reg].is_obj) {
        diag("const-assign", ii,
             "return " + StrFormat("%zu", r) + " writes " +
                 (regs[reg].is_obj ? "object" : "constant") + " register " +
                 regs[reg].name + " in `" + line + "`");
        continue;
      }
      if (state[reg].defined) {
        diag("double-assign", ii,
             "register " + regs[reg].name +
                 (state[reg].def_instr >= 0
                      ? StrFormat(" already assigned by #%d",
                                  state[reg].def_instr)
                      : std::string(" assigned twice")) +
                 ", reassigned in `" + line + "`");
        continue;
      }
      RegState& rs = state[reg];
      rs.defined = true;
      rs.def_instr = ii;
      if (matched == nullptr) {
        rs.kind = RK::kPoly;  // unknown op / failed match: stay permissive
      } else if (matched->poly_ret) {
        // batcalc shape propagation: any BAT operand makes the result a
        // BAT, all-scalar operands a scalar, anything unresolved stays
        // polymorphic.
        bool any_bat = false, any_poly = false;
        for (int a : in.args) {
          if (state[a].kind == RK::kBat) any_bat = true;
          if (state[a].kind == RK::kPoly) any_poly = true;
        }
        rs.kind = any_bat ? RK::kBat : (any_poly ? RK::kPoly : RK::kScalar);
      } else {
        rs.kind = RetKind(matched->rets[r]);
      }
    }
  }

  // Result columns must name defined registers.
  for (const MalProgram::ResultCol& rc : prog.results()) {
    if (rc.reg < 0 || rc.reg >= nregs) {
      diag("bad-register", -1,
           StrFormat("result column `%s` names register %d, out of range "
                     "(program has %d registers)",
                     rc.name.c_str(), rc.reg, nregs));
      continue;
    }
    if (!state[rc.reg].defined) {
      diag("result-undefined", -1,
           "result column `" + rc.name + "` names register " +
               regs[rc.reg].name + ", which no instruction defines");
    }
  }

  return diags;
}

Status VerifyProgram(const MalProgram& prog) {
  std::vector<VerifyDiag> diags = VerifyProgramDiags(prog);
  if (diags.empty()) {
    VerifyStats().programs_verified.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  VerifyStats().programs_rejected.fetch_add(1, std::memory_order_relaxed);
  std::string msg = "MAL program failed verification";
  for (const VerifyDiag& d : diags) msg += "\n  " + d.ToString();
  return Status::Internal(std::move(msg));
}

VerifyControls& GetVerifyControls() {
  static VerifyControls c;
  return c;
}

VerifyCounters& VerifyStats() {
  static VerifyCounters c;
  return c;
}

}  // namespace mal
}  // namespace sciql
