// MAL optimizer passes (paper Fig. 2, "MAL Optimizers"): common
// subexpression elimination, constant folding and dead-code elimination over
// the generated MAL program.

#ifndef SCIQL_MAL_OPTIMIZER_H_
#define SCIQL_MAL_OPTIMIZER_H_

#include "src/common/result.h"
#include "src/mal/program.h"

namespace sciql {
namespace mal {

/// \brief Per-pass statistics, used by tests and EXPLAIN diagnostics.
struct OptimizerStats {
  size_t cse_removed = 0;
  size_t folded = 0;
  size_t dead_removed = 0;
};

/// \brief Deduplicate pure instructions with identical opcodes and arguments.
Status CommonSubexpressionElimination(MalProgram* prog, OptimizerStats* stats);

/// \brief Evaluate pure single-result instructions whose arguments are all
/// scalar constants; replaces the result register with an inline constant.
Status ConstantFold(MalProgram* prog, OptimizerStats* stats);

/// \brief Remove pure instructions none of whose results are used.
Status DeadCodeElimination(MalProgram* prog, OptimizerStats* stats);

/// \brief The standard pipeline: CSE, folding, DCE (to fixpoint).
Status Optimize(MalProgram* prog, OptimizerStats* stats = nullptr);

}  // namespace mal
}  // namespace sciql

#endif  // SCIQL_MAL_OPTIMIZER_H_
