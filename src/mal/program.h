// MAL programs: the register-based instruction sequences produced by the
// SQL/SciQL compiler and executed by the MAL interpreter (paper Sec. 3:
// "MAL is the target language for all MonetDB query compiler front-ends").

#ifndef SCIQL_MAL_PROGRAM_H_
#define SCIQL_MAL_PROGRAM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/gdk/types.h"
#include "src/mal/value.h"

namespace sciql {
namespace mal {

/// \brief One MAL instruction: rets := module.fn(args).
struct MalInstr {
  std::string module;
  std::string fn;
  std::vector<int> rets;
  std::vector<int> args;

  std::string Name() const { return module + "." + fn; }
};

/// \brief A compiled MAL program plus its register metadata.
///
/// Registers are either variables (produced by instructions), inline scalar
/// constants, or opaque plan objects. The builder API (NewReg/Const/Emit) is
/// used by the MAL generator; ToString() renders the program in MonetDB's
/// textual MAL style, e.g.
///     x := array.series(0,1,4,4,1);
class MalProgram {
 public:
  struct Reg {
    std::string name;
    bool is_const = false;
    gdk::ScalarValue cval;
    bool is_obj = false;
    std::shared_ptr<const void> obj;
    std::string obj_tag;
    std::string obj_display;
  };

  /// \brief Fresh variable register with a display name hint.
  int NewReg(const std::string& hint);
  /// \brief Register holding an inline scalar constant. Equal constants
  /// share one register (hash-consed), which lets CSE merge duplicate
  /// instructions over equal literals.
  int Const(gdk::ScalarValue v);
  /// \brief Register holding an opaque object (tile spec, array descriptor).
  int Obj(std::shared_ptr<const void> obj, const std::string& tag,
          const std::string& display);

  /// \brief Emit rets := module.fn(args).
  void Emit(const std::string& module, const std::string& fn,
            std::vector<int> rets, std::vector<int> args);

  /// \brief Emit a single-result instruction; returns the new register.
  int EmitR(const std::string& module, const std::string& fn,
            std::vector<int> args, const std::string& hint);

  /// \brief Mark a register as a named result column.
  void AddResult(const std::string& name, int reg, bool is_dim);

  const std::vector<MalInstr>& instrs() const { return instrs_; }
  std::vector<MalInstr>* mutable_instrs() { return &instrs_; }
  const std::vector<Reg>& regs() const { return regs_; }
  std::vector<Reg>* mutable_regs() { return &regs_; }

  struct ResultCol {
    std::string name;
    int reg;
    bool is_dim;
  };
  const std::vector<ResultCol>& results() const { return results_; }
  std::vector<ResultCol>* mutable_results() { return &results_; }

  /// \brief Textual MAL rendering of the whole program.
  std::string ToString() const;

  /// \brief One instruction rendered as `rets := module.fn(args);` (no
  /// trailing newline) — the unit EXPLAIN ANALYZE annotates per line.
  std::string InstrToString(size_t i) const;

  /// \brief The trailing `io.result(...);` line, or "" without results.
  std::string ResultLineToString() const;

 private:
  std::string RegName(int r) const;

  std::vector<MalInstr> instrs_;
  std::vector<Reg> regs_;
  std::vector<ResultCol> results_;
  std::map<std::string, int> const_pool_;  // rendered constant -> register
  int name_counter_ = 0;
};

}  // namespace mal
}  // namespace sciql

#endif  // SCIQL_MAL_PROGRAM_H_
