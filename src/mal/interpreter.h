// The MAL interpreter: dispatches module.fn instructions to registered
// kernel implementations over a register file (paper Fig. 2, "MAL
// Interpreter" -> "GDK Kernel").

#ifndef SCIQL_MAL_INTERPRETER_H_
#define SCIQL_MAL_INTERPRETER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/mal/program.h"
#include "src/mal/value.h"

namespace sciql {
namespace obs {
class StatementTrace;
}  // namespace obs

namespace mal {

/// \brief Execution state of one MAL program run. Binds a pinned, immutable
/// catalog version (or null for catalog-free programs): runtime binding ops
/// resolve against the same snapshot the program was compiled from.
struct MalContext {
  explicit MalContext(const catalog::CatalogVersion* cat) : catalog(cat) {}

  const catalog::CatalogVersion* catalog;
  std::vector<MalValue> regs;

  /// When non-null, Run() records one obs::InstrSample per instruction
  /// (wall time, row counts, telemetry delta) into this trace.
  obs::StatementTrace* trace = nullptr;

  MalValue& Reg(int r) { return regs[static_cast<size_t>(r)]; }
};

/// \brief Signature of a registered MAL operation.
using MalFn =
    std::function<Status(MalContext*, const MalProgram&, const MalInstr&)>;

/// \brief Registry + dispatcher of MAL operations.
///
/// All modules (algebra, batcalc, group, aggr, array, sql) register their
/// operations once into the global engine.
class MalEngine {
 public:
  /// \brief The process-wide engine with every module registered.
  static const MalEngine& Global();

  /// \brief Register `module.fn`. Impure ops (catalog writers) must say so;
  /// the optimizer never folds or eliminates them.
  void Register(const std::string& name, MalFn fn, bool pure = true);

  /// \brief True if the op has no side effects (safe for DCE/CSE/folding).
  bool IsPure(const std::string& name) const;

  bool Has(const std::string& name) const { return fns_.count(name) > 0; }

  /// \brief Execute the whole program: loads constants, then runs every
  /// instruction in order.
  Status Run(const MalProgram& prog, MalContext* ctx) const;

  /// \brief Execute a single instruction against an existing context.
  Status RunInstr(const MalProgram& prog, const MalInstr& instr,
                  MalContext* ctx) const;

 private:
  std::unordered_map<std::string, MalFn> fns_;
  std::unordered_set<std::string> impure_;
};

/// \brief Called by MalEngine::Global() to install all operations; defined in
/// modules.cc.
void RegisterAllModules(MalEngine* engine);

}  // namespace mal
}  // namespace sciql

#endif  // SCIQL_MAL_INTERPRETER_H_
