#include "src/mal/optimizer.h"

#include <map>
#include <vector>

#include "src/common/string_util.h"
#include "src/mal/interpreter.h"

namespace sciql {
namespace mal {

namespace {

// Apply a register aliasing map to all instruction arguments and results.
void ApplyAliases(MalProgram* prog, const std::vector<int>& alias) {
  for (MalInstr& in : *prog->mutable_instrs()) {
    for (int& a : in.args) a = alias[static_cast<size_t>(a)];
  }
  for (auto& rc : *prog->mutable_results()) {
    rc.reg = alias[static_cast<size_t>(rc.reg)];
  }
}

std::vector<int> IdentityAliases(const MalProgram& prog) {
  std::vector<int> alias(prog.regs().size());
  for (size_t i = 0; i < alias.size(); ++i) alias[i] = static_cast<int>(i);
  return alias;
}

}  // namespace

Status CommonSubexpressionElimination(MalProgram* prog,
                                      OptimizerStats* stats) {
  const MalEngine& engine = MalEngine::Global();
  std::vector<int> alias = IdentityAliases(*prog);
  // Key: opcode + canonicalised argument registers.
  std::map<std::pair<std::string, std::vector<int>>, std::vector<int>> seen;
  std::vector<MalInstr> kept;
  for (MalInstr in : prog->instrs()) {
    for (int& a : in.args) a = alias[static_cast<size_t>(a)];
    if (!engine.IsPure(in.Name())) {
      kept.push_back(std::move(in));
      continue;
    }
    auto key = std::make_pair(in.Name(), in.args);
    auto it = seen.find(key);
    if (it == seen.end()) {
      seen.emplace(std::move(key), in.rets);
      kept.push_back(std::move(in));
      continue;
    }
    // Duplicate: alias this instruction's results to the first occurrence.
    for (size_t r = 0; r < in.rets.size(); ++r) {
      alias[static_cast<size_t>(in.rets[r])] = it->second[r];
    }
    if (stats != nullptr) stats->cse_removed++;
  }
  *prog->mutable_instrs() = std::move(kept);
  ApplyAliases(prog, alias);
  return Status::OK();
}

Status ConstantFold(MalProgram* prog, OptimizerStats* stats) {
  const MalEngine& engine = MalEngine::Global();
  // Only fold side-effect-free scalar computations in the batcalc module;
  // anything touching the catalog or BATs stays.
  MalContext ctx(nullptr);
  ctx.regs.assign(prog->regs().size(), MalValue::None());
  for (size_t i = 0; i < prog->regs().size(); ++i) {
    const MalProgram::Reg& r = prog->regs()[i];
    if (r.is_const) ctx.regs[i] = MalValue::Of(r.cval);
  }
  std::vector<MalInstr> kept;
  for (const MalInstr& in : prog->instrs()) {
    bool foldable = in.module == "batcalc" && in.rets.size() == 1 &&
                    engine.IsPure(in.Name());
    if (foldable) {
      for (int a : in.args) {
        if (!prog->regs()[static_cast<size_t>(a)].is_const &&
            !ctx.regs[static_cast<size_t>(a)].IsScalar()) {
          foldable = false;
          break;
        }
      }
    }
    if (!foldable) {
      kept.push_back(in);
      continue;
    }
    Status st = engine.RunInstr(*prog, in, &ctx);
    if (!st.ok() || !ctx.regs[static_cast<size_t>(in.rets[0])].IsScalar()) {
      // E.g. division by zero: keep the instruction so the error surfaces
      // at execution time with proper context.
      kept.push_back(in);
      continue;
    }
    MalProgram::Reg& r = (*prog->mutable_regs())[static_cast<size_t>(in.rets[0])];
    r.is_const = true;
    r.cval = ctx.regs[static_cast<size_t>(in.rets[0])].scalar;
    if (stats != nullptr) stats->folded++;
  }
  *prog->mutable_instrs() = std::move(kept);
  return Status::OK();
}

Status DeadCodeElimination(MalProgram* prog, OptimizerStats* stats) {
  const MalEngine& engine = MalEngine::Global();
  std::vector<bool> used(prog->regs().size(), false);
  for (const auto& rc : prog->results()) {
    used[static_cast<size_t>(rc.reg)] = true;
  }
  // Backward sweep: an instruction is live if impure or any result is used.
  std::vector<bool> live(prog->instrs().size(), false);
  for (size_t i = prog->instrs().size(); i-- > 0;) {
    const MalInstr& in = prog->instrs()[i];
    bool needed = !engine.IsPure(in.Name());
    for (int r : in.rets) {
      if (used[static_cast<size_t>(r)]) needed = true;
    }
    if (!needed) continue;
    live[i] = true;
    for (int a : in.args) used[static_cast<size_t>(a)] = true;
  }
  std::vector<MalInstr> kept;
  for (size_t i = 0; i < prog->instrs().size(); ++i) {
    if (live[i]) {
      kept.push_back(prog->instrs()[i]);
    } else if (stats != nullptr) {
      stats->dead_removed++;
    }
  }
  *prog->mutable_instrs() = std::move(kept);
  return Status::OK();
}

Status Optimize(MalProgram* prog, OptimizerStats* stats) {
  // Two rounds reach a fixpoint for the plans our compiler emits.
  for (int round = 0; round < 2; ++round) {
    SCIQL_RETURN_NOT_OK(CommonSubexpressionElimination(prog, stats));
    SCIQL_RETURN_NOT_OK(ConstantFold(prog, stats));
    SCIQL_RETURN_NOT_OK(DeadCodeElimination(prog, stats));
  }
  return Status::OK();
}

}  // namespace mal
}  // namespace sciql
