#include "src/common/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace sciql {

namespace {

// True while the current thread is executing morsels of some job; nested
// ParallelFor calls from kernel code then degrade to sequential inline
// execution instead of deadlocking or oversubscribing.
thread_local bool t_in_worker = false;

int DefaultThreadCount() {
  const char* env = std::getenv("SCIQL_THREADS");
  long v = 0;
  if (env != nullptr) v = std::strtol(env, nullptr, 10);
  if (v <= 0) v = static_cast<long>(std::thread::hardware_concurrency());
  if (v <= 0) v = 1;
  if (v > 256) v = 256;
  return static_cast<int>(v);
}

}  // namespace

struct ThreadPool::Job {
  size_t n = 0;
  size_t grain = 1;
  size_t nmorsels = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
  common::Mutex mu;
  common::CondVar done_cv;
};

ThreadPool& ThreadPool::Get() {
  // Leaked singleton: workers may still be parked in WorkerLoop at process
  // exit and must not race a destructor.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::ThreadPool() : thread_count_(DefaultThreadCount()) {}

int ThreadPool::thread_count() const {
  common::MutexLock lock(&mu_);
  return thread_count_;
}

void ThreadPool::SetThreadCount(int n) {
  common::MutexLock lock(&mu_);
  thread_count_ = n < 1 ? 1 : (n > 256 ? 256 : n);
}

void ThreadPool::EnsureWorkers(int needed) {
  while (static_cast<int>(workers_.size()) < needed) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      common::MutexLock lock(&mu_);
      while (jobs_.empty()) work_cv_.Wait(mu_);
      job = jobs_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->nmorsels) {
        // Fully claimed; retire it and look again.
        jobs_.pop_front();
        continue;
      }
    }
    RunJob(*job);
  }
}

void ThreadPool::RunJob(Job& job) {
  size_t m;
  while ((m = job.next.fetch_add(1, std::memory_order_relaxed)) <
         job.nmorsels) {
    size_t begin = m * job.grain;
    size_t end = begin + job.grain;
    if (end > job.n) end = job.n;
    (*job.fn)(m, begin, end);
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.nmorsels) {
      common::MutexLock lock(&job.mu);
      job.done_cv.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  size_t nmorsels = MorselCount(n, grain);

  int threads;
  {
    common::MutexLock lock(&mu_);
    threads = thread_count_;
  }
  if (threads <= 1 || nmorsels <= 1 || t_in_worker) {
    // Sequential fallback: identical morsel boundaries, same call pattern.
    for (size_t m = 0; m < nmorsels; ++m) {
      size_t begin = m * grain;
      size_t end = begin + grain;
      if (end > n) end = n;
      fn(m, begin, end);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->grain = grain;
  job->nmorsels = nmorsels;
  job->fn = &fn;

  size_t helpers = static_cast<size_t>(threads) - 1;
  if (helpers > nmorsels - 1) helpers = nmorsels - 1;
  {
    common::MutexLock lock(&mu_);
    EnsureWorkers(static_cast<int>(helpers));
    jobs_.push_back(job);
  }
  work_cv_.NotifyAll();

  // The caller claims morsels too, then waits for stragglers.
  bool was_in_worker = t_in_worker;
  t_in_worker = true;
  RunJob(*job);
  t_in_worker = was_in_worker;

  {
    common::MutexLock lock(&job->mu);
    while (job->done.load(std::memory_order_acquire) < job->nmorsels) {
      job->done_cv.Wait(job->mu);
    }
  }
  {
    // Retire the job so parked workers don't touch its (stack-held) fn.
    common::MutexLock lock(&mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
}

}  // namespace sciql
