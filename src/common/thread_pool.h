// Shared morsel-driven thread pool for the GDK kernels.
//
// Kernels split their input rows into fixed-size morsels and hand each morsel
// to ParallelFor. Morsel boundaries depend only on (n, grain) — never on the
// thread count — so a kernel that accumulates per-morsel partial results and
// merges them in morsel order computes bit-identical output at any thread
// count (including floating-point aggregates, whose summation tree is fixed
// by the morsel layout).
//
// The pool is created lazily on first use. Thread count comes from the
// SCIQL_THREADS environment variable; unset or 0 means
// std::thread::hardware_concurrency(). A count of 1 (or a single morsel)
// runs the morsels inline on the caller with no synchronization at all, so
// the sequential path pays nothing for the abstraction.

#ifndef SCIQL_COMMON_THREAD_POOL_H_
#define SCIQL_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace sciql {

/// Default rows per morsel for row-partitioned kernels.
inline constexpr size_t kMorselRows = 65536;

/// \brief Number of morsels [0,n) splits into at the given grain.
inline size_t MorselCount(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// \brief Lazily-initialized shared worker pool with a parallel-for
/// primitive over fixed morsel boundaries.
class ThreadPool {
 public:
  /// The process-wide pool (created on first call).
  static ThreadPool& Get();

  /// Current target thread count (>= 1).
  int thread_count() const;

  /// \brief Override the thread count (testing / benchmarking). Workers are
  /// spawned lazily as needed; lowering the count simply stops handing work
  /// to the extra workers.
  void SetThreadCount(int n);

  /// \brief Invoke `fn(morsel, begin, end)` for every morsel
  /// [begin, end) = [m*grain, min(n, (m+1)*grain)) of [0, n).
  ///
  /// Morsels run concurrently in unspecified order; `fn` must only touch
  /// morsel-local state or disjoint output ranges. Calls from inside a worker
  /// (nested parallelism) run sequentially inline. `fn` must not throw.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  struct Job;

  ThreadPool();
  ~ThreadPool() = delete;  // the singleton leaks by design (see Get())

  void EnsureWorkers(int needed) REQUIRES(mu_);
  void WorkerLoop();
  static void RunJob(Job& job);

  mutable common::Mutex mu_;
  common::CondVar work_cv_;
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
  std::deque<std::shared_ptr<Job>> jobs_ GUARDED_BY(mu_);
  int thread_count_ GUARDED_BY(mu_) = 1;
};

/// \brief Morsel-parallel loop for fallible row kernels: runs
/// `body(begin, end) -> Status` over fixed morsels of [0, n) and returns the
/// first failing morsel's Status (in morsel order). Because morsels
/// partition the rows in order, the reported error is the same one a
/// sequential row scan would hit first.
template <typename Body>
Status ParallelRows(size_t n, size_t grain, Body body) {
  size_t nmorsels = MorselCount(n, grain);
  if (nmorsels <= 1) return body(0, n);
  std::vector<Status> errs(nmorsels);
  ThreadPool::Get().ParallelFor(n, grain,
                                [&](size_t m, size_t begin, size_t end) {
                                  errs[m] = body(begin, end);
                                });
  for (Status& st : errs) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace sciql

#endif  // SCIQL_COMMON_THREAD_POOL_H_
