// Small string helpers shared across the code base.

#ifndef SCIQL_COMMON_STRING_UTIL_H_
#define SCIQL_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace sciql {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief ASCII lower-casing (SQL identifiers are case-insensitive).
std::string ToLower(const std::string& s);

/// \brief ASCII upper-casing.
std::string ToUpper(const std::string& s);

/// \brief Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// \brief Split `s` on character `sep` (no trimming, keeps empty fields).
std::vector<std::string> Split(const std::string& s, char sep);

/// \brief Strip leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// \brief True if `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// \brief Render a double the way a result grid should show it: integers
/// without a decimal point, otherwise shortest round-trip representation.
std::string FormatDouble(double v);

}  // namespace sciql

#endif  // SCIQL_COMMON_STRING_UTIL_H_
