// Result<T>: a Status plus a value on success (arrow::Result / StatusOr
// idiom). Used wherever an operation produces both a value and may fail.

#ifndef SCIQL_COMMON_RESULT_H_
#define SCIQL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace sciql {

/// \brief Either an error Status or a value of type T.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value; undefined if !ok().
  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sciql

/// Evaluate `expr` (a Result<T>); on error return the Status, else bind the
/// value into `lhs`.
#define SCIQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).take();

#define SCIQL_ASSIGN_OR_RETURN(lhs, expr) \
  SCIQL_ASSIGN_OR_RETURN_IMPL(            \
      SCIQL_CONCAT_(_result_, __LINE__), lhs, expr)

#define SCIQL_CONCAT_INNER_(a, b) a##b
#define SCIQL_CONCAT_(a, b) SCIQL_CONCAT_INNER_(a, b)

#endif  // SCIQL_COMMON_RESULT_H_
