// Clang thread-safety capability annotations plus the annotated mutex
// types the engine's locked classes are written against.
//
// Under Clang the macros expand to the thread-safety attributes, so a build
// with `-Wthread-safety` (CI pins `-Werror=thread-safety`) statically proves
// that every GUARDED_BY field is only touched with its mutex held, that
// REQUIRES contracts hold at every call site, and — with
// `-Wthread-safety-beta` — that same-class ACQUIRED_BEFORE/ACQUIRED_AFTER
// orderings are respected. Under GCC (the local toolchain) they expand to
// nothing; the annotations are documentation there and enforcement happens
// in the CI `static-analysis` job. docs/static_analysis.md describes the
// conventions; the negative-compile harness under tests/negative_compile/
// proves the enforcement is real.
//
// The std mutex types in libstdc++ are not annotated, so GUARDED_BY needs a
// CAPABILITY-wrapped mutex: use `common::Mutex` + `common::MutexLock` (and
// `common::CondVar` instead of std::condition_variable) anywhere a lock
// guards shared state. `std::unique_lock<common::Mutex>` still works when a
// lock must be movable or conditionally held — the analysis cannot track
// it, so such functions carry NO_THREAD_SAFETY_ANALYSIS with a comment.

#ifndef SCIQL_COMMON_THREAD_ANNOTATIONS_H_
#define SCIQL_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SCIQL_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SCIQL_THREAD_ANNOTATION_
#define SCIQL_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) SCIQL_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY SCIQL_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) SCIQL_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) SCIQL_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  SCIQL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SCIQL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  SCIQL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SCIQL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SCIQL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) SCIQL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SCIQL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SCIQL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SCIQL_THREAD_ANNOTATION_(assert_capability(x))
#define RETURN_CAPABILITY(x) SCIQL_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SCIQL_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace sciql {
namespace common {

/// \brief std::mutex wrapped as a Clang thread-safety capability.
///
/// BasicLockable (lock/unlock/try_lock), so std::unique_lock and
/// std::condition_variable_any accept it where movable ownership is needed.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII guard over Mutex — the annotated std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable usable with Mutex.
///
/// Wait takes the Mutex directly (condition_variable_any unlocks/relocks it
/// around the block), so the REQUIRES contract stays visible to the
/// analysis: the caller holds the mutex before and after the wait, exactly
/// as with std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One blocking wait; always re-check the condition in a while loop. A
  /// predicate overload is deliberately absent: the analysis treats a
  /// predicate lambda as a separate unannotated function, so reading
  /// GUARDED_BY state from one would (rightly) fail the build.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace common
}  // namespace sciql

#endif  // SCIQL_COMMON_THREAD_ANNOTATIONS_H_
