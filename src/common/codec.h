// Bounds-checked binary encoding primitives shared by the catalog image
// codec (src/catalog/persist.cc) and the durable storage engine
// (src/storage/). Little-endian fixed-width integers, length-prefixed
// strings, and a 64-bit content checksum.
//
// Every read is overflow-safe: a hostile length prefix can never advance the
// cursor past the end of the buffer or wrap the arithmetic, so corrupt or
// truncated input yields a clean Status instead of undefined behaviour.

#ifndef SCIQL_COMMON_CODEC_H_
#define SCIQL_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace sciql {

/// \brief 64-bit content checksum (FNV-1a folded through a splitmix64-style
/// finalizer). Not cryptographic; detects truncation and bit flips.
inline uint64_t Checksum64(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// \brief Appends fixed-width primitives to a std::string buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutStr(std::string_view s) {
    PutU64(s.size());
    out_->append(s.data(), s.size());
  }
  void PutBytes(const void* p, size_t n) { PutRaw(p, n); }

 private:
  void PutRaw(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }
  std::string* out_;
};

/// \brief Cursor over a byte buffer; every accessor bounds-checks before it
/// advances and fails with IOError on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// \brief Fail unless `n` more bytes are available (overflow-safe).
  Status Need(uint64_t n) const {
    if (n > remaining()) {
      return Status::IOError("truncated input: record extends past the end");
    }
    return Status::OK();
  }

  Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  Result<uint64_t> U64() { return Fixed<uint64_t>(); }
  Result<int64_t> I64() { return Fixed<int64_t>(); }
  Result<double> F64() { return Fixed<double>(); }

  Result<std::string> Str() {
    SCIQL_ASSIGN_OR_RETURN(uint64_t n, U64());
    SCIQL_RETURN_NOT_OK(Need(n));
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// \brief A view of the next `n` bytes (no copy).
  Result<std::string_view> Bytes(uint64_t n) {
    SCIQL_RETURN_NOT_OK(Need(n));
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  /// \brief Read `count` fixed-width values into a vector. The element count
  /// is validated before any multiplication so a hostile count cannot wrap.
  template <typename T>
  Status ReadVector(uint64_t count, std::vector<T>* out) {
    if (count > remaining() / sizeof(T)) {
      return Status::IOError("truncated input: vector extends past the end");
    }
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_.data() + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return Status::OK();
  }

 private:
  template <typename T>
  Result<T> Fixed() {
    SCIQL_RETURN_NOT_OK(Need(sizeof(T)));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sciql

#endif  // SCIQL_COMMON_CODEC_H_
