// Deterministic pseudo-random number generation for workloads and tests.
//
// A small xoshiro256** implementation so that benchmark workloads and
// property tests are reproducible across platforms and standard libraries
// (std::mt19937 distributions are not portable across implementations).

#ifndef SCIQL_COMMON_RNG_H_
#define SCIQL_COMMON_RNG_H_

#include <cstdint>

namespace sciql {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5C1E20130622ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace sciql

#endif  // SCIQL_COMMON_RNG_H_
