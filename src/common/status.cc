#include "src/common/status.h"

namespace sciql {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kTypeMismatch:
      return "TypeMismatch";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kBindError:
      return "BindError";
    case Status::Code::kExecError:
      return "ExecError";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace sciql
