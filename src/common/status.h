// Status: RocksDB-style error handling without exceptions.
//
// Every fallible operation in the engine returns a Status (or a Result<T>,
// see result.h). Statuses carry a coarse error code plus a human-readable
// message assembled at the failure site.

#ifndef SCIQL_COMMON_STATUS_H_
#define SCIQL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace sciql {

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. The class is cheap to copy in the error-free case (empty string).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kTypeMismatch,
    kOutOfRange,
    kParseError,
    kBindError,
    kExecError,
    kIOError,
    kNotSupported,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(Code::kTypeMismatch, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(Code::kBindError, std::move(msg));
  }
  static Status ExecError(std::string msg) {
    return Status(Code::kExecError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// \brief Human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(Status::Code code);

}  // namespace sciql

/// Propagate a non-OK Status to the caller.
#define SCIQL_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::sciql::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // SCIQL_COMMON_STATUS_H_
