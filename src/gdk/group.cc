// Grouping: map every row to a dense group id in first-encounter row order.
//
// Large inputs run a partitioned parallel build: each fixed morsel builds a
// local first-encounter dictionary concurrently, the per-morsel dictionaries
// are merged sequentially in morsel order (assigning the global group ids),
// and a final parallel pass renumbers the per-row local ids through the
// per-morsel local->global maps. Because morsel boundaries are fixed and the
// dictionaries merge in morsel order, global ids are assigned in exactly the
// first-encounter row order of a sequential scan — the output is
// bit-identical at any thread count.

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/hash.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Canonical key bits per row: NULLs share one fixed pattern so that SQL
// GROUP BY places all NULLs in a single group.
template <typename T>
uint64_t RowKey(const std::vector<T>& v, size_t i) {
  if (TypeTraits<T>::IsNil(v[i])) return 0xF1F1F1F1F1F1F1F1ULL;
  return KeyBits(v[i]);
}

uint64_t KeyerAt(const BAT& b, size_t i) {
  switch (b.type()) {
    case PhysType::kBit:
      return RowKey(b.bits(), i);
    case PhysType::kInt:
      return RowKey(b.ints(), i);
    case PhysType::kLng:
      return RowKey(b.lngs(), i);
    case PhysType::kDbl:
      return RowKey(b.dbls(), i);
    case PhysType::kOid:
    case PhysType::kStr:
      // Str offsets are canonical within a heap (deduplicated).
      return RowKey(b.oids(), i);
  }
  return 0;
}

inline uint64_t GroupHash(oid_t prev_gid, uint64_t key_bits) {
  return Fingerprint64(HashCombine(Fingerprint64(prev_gid), key_bits));
}

// Sequential first-encounter pass (small inputs / single-threaded pool).
GroupResult SequentialGroup(const BAT& b, const BAT* prev, size_t n) {
  GroupResult res;
  res.groups = BAT::Make(PhysType::kOid);
  res.extents = BAT::Make(PhysType::kOid);
  auto& gids = res.groups->oids();
  gids.resize(n);
  res.extents->Reserve(n / 4 + 16);

  // Open-addressing first-encounter table: entries are group ids chained
  // through the shared bucket+next arrays; each group remembers its
  // (previous-group, key-bits) pair for the equality re-check.
  OidHashTable table(n);
  std::vector<oid_t> grp_prev;
  std::vector<uint64_t> grp_key;
  grp_prev.reserve(n / 4 + 16);
  grp_key.reserve(n / 4 + 16);

  auto& extents = res.extents->oids();
  for (size_t i = 0; i < n; ++i) {
    oid_t prev_gid = prev == nullptr ? 0 : prev->oids()[i];
    uint64_t kb = KeyerAt(b, i);
    uint64_t h = GroupHash(prev_gid, kb);
    oid_t gid = table.FindFirst(h, [&](oid_t g) {
      return grp_prev[g] == prev_gid && grp_key[g] == kb;
    });
    if (gid == kOidNil) {
      gid = static_cast<oid_t>(res.ngroups++);
      grp_prev.push_back(prev_gid);
      grp_key.push_back(kb);
      table.Insert(h, gid);
      extents.push_back(static_cast<oid_t>(i));
    }
    gids[i] = gid;
  }
  return res;
}

// One morsel's first-encounter dictionary: parallel arrays indexed by local
// group id, in local first-encounter (= row) order.
struct MorselDict {
  std::vector<oid_t> prev_gid;
  std::vector<uint64_t> key;
  std::vector<oid_t> first_row;
  std::vector<oid_t> to_global;  // filled by the merge pass
};

GroupResult PartitionedGroup(const BAT& b, const BAT* prev, size_t n,
                             size_t nmorsels) {
  GroupResult res;
  res.groups = BAT::Make(PhysType::kOid);
  res.extents = BAT::Make(PhysType::kOid);
  auto& gids = res.groups->oids();
  gids.resize(n);

  // Pass 1 (parallel): per-morsel local dictionaries; gids temporarily
  // holds each row's local group id.
  std::vector<MorselDict> dicts(nmorsels);
  ThreadPool::Get().ParallelFor(
      n, kMorselRows, [&](size_t m, size_t begin, size_t end) {
        MorselDict& d = dicts[m];
        size_t rows = end - begin;
        OidHashTable table(rows);
        d.prev_gid.reserve(rows / 4 + 16);
        d.key.reserve(rows / 4 + 16);
        d.first_row.reserve(rows / 4 + 16);
        for (size_t i = begin; i < end; ++i) {
          oid_t prev_gid = prev == nullptr ? 0 : prev->oids()[i];
          uint64_t kb = KeyerAt(b, i);
          uint64_t h = GroupHash(prev_gid, kb);
          oid_t lg = table.FindFirst(h, [&](oid_t g) {
            return d.prev_gid[g] == prev_gid && d.key[g] == kb;
          });
          if (lg == kOidNil) {
            lg = static_cast<oid_t>(d.prev_gid.size());
            d.prev_gid.push_back(prev_gid);
            d.key.push_back(kb);
            d.first_row.push_back(static_cast<oid_t>(i));
            // Entry ids are local to this morsel's table.
            table.Insert(h, lg);
          }
          gids[i] = lg;
        }
      });

  // Pass 2 (sequential): merge the dictionaries in morsel order. Scanning
  // morsels in order and each dictionary in local first-encounter order
  // visits distinct keys exactly in global first-encounter row order, so the
  // assigned ids (and extents) match the sequential pass bit for bit.
  size_t total_locals = 0;
  for (const MorselDict& d : dicts) total_locals += d.prev_gid.size();
  OidHashTable table(total_locals);
  std::vector<oid_t> grp_prev;
  std::vector<uint64_t> grp_key;
  grp_prev.reserve(total_locals);
  grp_key.reserve(total_locals);
  auto& extents = res.extents->oids();
  extents.reserve(total_locals);
  for (MorselDict& d : dicts) {
    size_t nlocal = d.prev_gid.size();
    d.to_global.resize(nlocal);
    for (size_t g = 0; g < nlocal; ++g) {
      uint64_t h = GroupHash(d.prev_gid[g], d.key[g]);
      oid_t gid = table.FindFirst(h, [&](oid_t e) {
        return grp_prev[e] == d.prev_gid[g] && grp_key[e] == d.key[g];
      });
      if (gid == kOidNil) {
        gid = static_cast<oid_t>(res.ngroups++);
        grp_prev.push_back(d.prev_gid[g]);
        grp_key.push_back(d.key[g]);
        table.Insert(h, gid);
        extents.push_back(d.first_row[g]);
      }
      d.to_global[g] = gid;
    }
  }

  // Pass 3 (parallel): renumber local ids through the per-morsel maps.
  ThreadPool::Get().ParallelFor(
      n, kMorselRows, [&](size_t m, size_t begin, size_t end) {
        const std::vector<oid_t>& to_global = dicts[m].to_global;
        for (size_t i = begin; i < end; ++i) {
          gids[i] = to_global[gids[i]];
        }
      });
  return res;
}

}  // namespace

Result<GroupResult> Group(const BAT& b, const BAT* prev, size_t prev_ngroups) {
  size_t n = b.Count();
  if (prev != nullptr && prev->Count() != n) {
    return Status::Internal("Group: refinement grouping misaligned");
  }
  (void)prev_ngroups;
  size_t nmorsels = MorselCount(n, kMorselRows);
  if (nmorsels <= 1 || ThreadPool::Get().thread_count() <= 1) {
    return SequentialGroup(b, prev, n);
  }
  return PartitionedGroup(b, prev, n, nmorsels);
}

}  // namespace gdk
}  // namespace sciql
