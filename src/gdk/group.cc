#include "src/common/string_util.h"
#include "src/gdk/hash.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Canonical key bits per row: NULLs share one fixed pattern so that SQL
// GROUP BY places all NULLs in a single group.
template <typename T>
uint64_t RowKey(const std::vector<T>& v, size_t i) {
  if (TypeTraits<T>::IsNil(v[i])) return 0xF1F1F1F1F1F1F1F1ULL;
  return KeyBits(v[i]);
}

}  // namespace

Result<GroupResult> Group(const BAT& b, const BAT* prev, size_t prev_ngroups) {
  size_t n = b.Count();
  if (prev != nullptr && prev->Count() != n) {
    return Status::Internal("Group: refinement grouping misaligned");
  }
  (void)prev_ngroups;

  GroupResult res;
  res.groups = BAT::Make(PhysType::kOid);
  res.extents = BAT::Make(PhysType::kOid);
  auto& gids = res.groups->oids();
  gids.resize(n);
  res.extents->Reserve(n / 4 + 16);

  auto keyer = [&](size_t i) -> uint64_t {
    switch (b.type()) {
      case PhysType::kBit:
        return RowKey(b.bits(), i);
      case PhysType::kInt:
        return RowKey(b.ints(), i);
      case PhysType::kLng:
        return RowKey(b.lngs(), i);
      case PhysType::kDbl:
        return RowKey(b.dbls(), i);
      case PhysType::kOid:
      case PhysType::kStr:
        // Str offsets are canonical within a heap (deduplicated).
        return RowKey(b.oids(), i);
    }
    return 0;
  };

  // Open-addressing first-encounter table: entries are group ids chained
  // through the shared bucket+next arrays; each group remembers its
  // (previous-group, key-bits) pair for the equality re-check.
  OidHashTable table(n);
  std::vector<oid_t> grp_prev;
  std::vector<uint64_t> grp_key;
  grp_prev.reserve(n / 4 + 16);
  grp_key.reserve(n / 4 + 16);

  for (size_t i = 0; i < n; ++i) {
    oid_t prev_gid = prev == nullptr ? 0 : prev->oids()[i];
    uint64_t kb = keyer(i);
    uint64_t h = Fingerprint64(HashCombine(Fingerprint64(prev_gid), kb));
    oid_t gid = table.FindFirst(h, [&](oid_t g) {
      return grp_prev[g] == prev_gid && grp_key[g] == kb;
    });
    if (gid == kOidNil) {
      gid = static_cast<oid_t>(res.ngroups++);
      grp_prev.push_back(prev_gid);
      grp_key.push_back(kb);
      table.Insert(h, gid);
      res.extents->oids().push_back(static_cast<oid_t>(i));
    }
    gids[i] = gid;
  }
  return res;
}

}  // namespace gdk
}  // namespace sciql
