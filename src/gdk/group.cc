#include <cstring>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

struct PairHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
    uint64_t h = p.first * 0x9e3779b97f4a7c15ULL;
    h ^= p.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

// Canonical key bits per row: NULLs share one fixed pattern so that SQL
// GROUP BY places all NULLs in a single group.
template <typename T>
uint64_t RowKey(const std::vector<T>& v, size_t i) {
  if (TypeTraits<T>::IsNil(v[i])) return 0xF1F1F1F1F1F1F1F1ULL;
  if constexpr (std::is_same_v<T, double>) {
    double d = v[i] == 0.0 ? 0.0 : v[i];
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  } else {
    return static_cast<uint64_t>(v[i]);
  }
}

}  // namespace

Result<GroupResult> Group(const BAT& b, const BAT* prev, size_t prev_ngroups) {
  size_t n = b.Count();
  if (prev != nullptr && prev->Count() != n) {
    return Status::Internal("Group: refinement grouping misaligned");
  }

  GroupResult res;
  res.groups = BAT::Make(PhysType::kOid);
  res.extents = BAT::Make(PhysType::kOid);
  auto& gids = res.groups->oids();
  gids.resize(n);

  std::unordered_map<std::pair<uint64_t, uint64_t>, oid_t, PairHash> seen;
  seen.reserve(n / 4 + 16);

  auto keyer = [&](size_t i) -> uint64_t {
    switch (b.type()) {
      case PhysType::kBit:
        return RowKey(b.bits(), i);
      case PhysType::kInt:
        return RowKey(b.ints(), i);
      case PhysType::kLng:
        return RowKey(b.lngs(), i);
      case PhysType::kDbl:
        return RowKey(b.dbls(), i);
      case PhysType::kOid:
      case PhysType::kStr:
        // Str offsets are canonical within a heap (deduplicated).
        return RowKey(b.oids(), i);
    }
    return 0;
  };

  for (size_t i = 0; i < n; ++i) {
    uint64_t prev_gid = prev == nullptr ? 0 : prev->oids()[i];
    auto key = std::make_pair(prev_gid, keyer(i));
    auto it = seen.find(key);
    if (it == seen.end()) {
      oid_t gid = res.ngroups++;
      seen.emplace(key, gid);
      res.extents->oids().push_back(static_cast<oid_t>(i));
      gids[i] = gid;
    } else {
      gids[i] = it->second;
    }
  }
  return res;
}

}  // namespace gdk
}  // namespace sciql
