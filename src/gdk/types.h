// Physical types of the GDK kernel.
//
// monetlite follows MonetDB's convention of encoding NULL ("nil") as a
// sentinel value inside the dense C array of each column rather than with a
// separate validity bitmap: INT32_MIN / INT64_MIN for integers, NaN for
// doubles, the maximal oid for oids, offset 0 of the string heap for strings
// and 0x80 for the three-valued bit type.

#ifndef SCIQL_GDK_TYPES_H_
#define SCIQL_GDK_TYPES_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#include "src/common/result.h"
#include "src/common/status.h"

namespace sciql {
namespace gdk {

/// Row identifier (position in a BAT). `kOidNil` encodes NULL.
using oid_t = uint64_t;

inline constexpr oid_t kOidNil = std::numeric_limits<oid_t>::max();
inline constexpr int32_t kIntNil = std::numeric_limits<int32_t>::min();
inline constexpr int64_t kLngNil = std::numeric_limits<int64_t>::min();
inline constexpr uint8_t kBitNil = 0x80;
inline constexpr uint64_t kStrNilOffset = 0;

/// \brief Physical column types stored in BATs.
enum class PhysType : uint8_t {
  kBit = 0,  ///< three-valued boolean: 0, 1, 0x80 (nil)
  kInt,      ///< 32-bit signed integer
  kLng,      ///< 64-bit signed integer
  kDbl,      ///< IEEE double
  kOid,      ///< row identifier
  kStr,      ///< offset into a string heap
};

/// \brief Name of a physical type ("int", "lng", ...), as MAL prints it.
const char* PhysTypeName(PhysType t);

/// \brief True for bit/int/lng/dbl.
inline bool IsNumeric(PhysType t) {
  return t == PhysType::kBit || t == PhysType::kInt || t == PhysType::kLng ||
         t == PhysType::kDbl;
}

/// \brief Common type two numeric operands promote to (bit < int < lng < dbl).
PhysType PromoteNumeric(PhysType a, PhysType b);

// ---------------------------------------------------------------------------
// Two's-complement wrapping arithmetic.
//
// Signed overflow is undefined behaviour in C++, so every kernel that adds,
// subtracts, multiplies or negates signed integers routes through these
// helpers: the operation runs in the unsigned domain (where wraparound is
// defined) and the result is cast back. This fixes the engine's integer
// overflow semantics as *wraparound modulo 2^N* — deterministic at any
// thread count and identical down every physical path, which the
// differential fuzzer (src/fuzz/) relies on. Note that a wrapped result
// equal to the type's nil sentinel (INT32_MIN / INT64_MIN) reads back as
// SQL NULL; in particular INT64_MAX + 1 and -INT64_MIN are NULL. Division
// and modulo cannot wrap (the hardware traps); their single overflow case
// (minimum value / -1) raises an execution error instead (see calc.cc).
// ---------------------------------------------------------------------------

template <typename T>
inline T WrapAdd(T a, T b) {
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
}
template <typename T>
inline T WrapSub(T a, T b) {
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
}
template <typename T>
inline T WrapMul(T a, T b) {
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
}
template <typename T>
inline T WrapNeg(T a) {
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(U(0) - static_cast<U>(a));
}

inline double DblNil() { return std::numeric_limits<double>::quiet_NaN(); }
inline bool IsDblNil(double v) { return std::isnan(v); }

/// \brief Compile-time traits mapping C++ storage types to PhysType and nil.
template <typename T>
struct TypeTraits;

template <>
struct TypeTraits<uint8_t> {
  static constexpr PhysType kType = PhysType::kBit;
  static uint8_t Nil() { return kBitNil; }
  static bool IsNil(uint8_t v) { return v == kBitNil; }
};
template <>
struct TypeTraits<int32_t> {
  static constexpr PhysType kType = PhysType::kInt;
  static int32_t Nil() { return kIntNil; }
  static bool IsNil(int32_t v) { return v == kIntNil; }
};
template <>
struct TypeTraits<int64_t> {
  static constexpr PhysType kType = PhysType::kLng;
  static int64_t Nil() { return kLngNil; }
  static bool IsNil(int64_t v) { return v == kLngNil; }
};
template <>
struct TypeTraits<double> {
  static constexpr PhysType kType = PhysType::kDbl;
  static double Nil() { return DblNil(); }
  static bool IsNil(double v) { return std::isnan(v); }
};
template <>
struct TypeTraits<uint64_t> {
  static constexpr PhysType kType = PhysType::kOid;
  static uint64_t Nil() { return kOidNil; }
  static bool IsNil(uint64_t v) { return v == kOidNil; }
};

/// \brief A typed scalar constant (literal, parameter, or single query
/// result), with explicit NULL flag.
///
/// Scalars flow between the parser (literals), the MAL constant pool, the
/// vectorized kernels (BAT-scalar operations) and result sets.
struct ScalarValue {
  PhysType type = PhysType::kInt;
  bool is_null = true;
  int64_t i = 0;    ///< payload for kBit/kInt/kLng/kOid
  double d = 0.0;   ///< payload for kDbl
  std::string s;    ///< payload for kStr

  ScalarValue() = default;

  static ScalarValue Null(PhysType t) {
    ScalarValue v;
    v.type = t;
    v.is_null = true;
    return v;
  }
  static ScalarValue Bit(bool b) {
    ScalarValue v;
    v.type = PhysType::kBit;
    v.is_null = false;
    v.i = b ? 1 : 0;
    return v;
  }
  static ScalarValue Int(int32_t x) {
    ScalarValue v;
    v.type = PhysType::kInt;
    v.is_null = false;
    v.i = x;
    return v;
  }
  static ScalarValue Lng(int64_t x) {
    ScalarValue v;
    v.type = PhysType::kLng;
    v.is_null = false;
    v.i = x;
    return v;
  }
  static ScalarValue Dbl(double x) {
    ScalarValue v;
    v.type = PhysType::kDbl;
    v.is_null = false;
    v.d = x;
    return v;
  }
  static ScalarValue Oid(oid_t x) {
    ScalarValue v;
    v.type = PhysType::kOid;
    v.is_null = false;
    v.i = static_cast<int64_t>(x);
    return v;
  }
  static ScalarValue Str(std::string x) {
    ScalarValue v;
    v.type = PhysType::kStr;
    v.is_null = false;
    v.s = std::move(x);
    return v;
  }

  /// Numeric payload widened to double; NULL yields NaN.
  double AsDouble() const;
  /// Numeric payload as int64; doubles truncate; NULL yields kLngNil.
  int64_t AsInt64() const;
  /// True iff type is kBit and value is 1.
  bool IsTrue() const { return !is_null && type == PhysType::kBit && i == 1; }

  /// SQL-style rendering ("null", 42, 1.5, 'text').
  std::string ToString() const;

  bool Equals(const ScalarValue& other) const;
};

/// \brief Convert a scalar to another physical type (numeric widening /
/// narrowing; NULL maps to NULL). Fails for unsupported conversions.
Result<ScalarValue> CastScalar(const ScalarValue& v, PhysType to);

}  // namespace gdk
}  // namespace sciql

#endif  // SCIQL_GDK_TYPES_H_
