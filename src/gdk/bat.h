// BAT: Binary Association Table, the storage unit of the GDK kernel.
//
// As in MonetDB, a BAT conceptually maps a void head column (dense row
// identifiers 0..n-1) to a typed tail column stored as one consecutive C
// array [3]. monetlite keeps the head implicit and stores the tail in a
// std::vector of the physical type; strings store heap offsets plus a shared
// StrHeap.

#ifndef SCIQL_GDK_BAT_H_
#define SCIQL_GDK_BAT_H_

#include <atomic>
#include <cassert>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/gdk/strheap.h"
#include "src/gdk/types.h"

namespace sciql {
namespace gdk {

class BAT;
using BATPtr = std::shared_ptr<BAT>;

/// Shared, immutable stable order index: the ascending (nil-first)
/// permutation of a BAT's rows. Shared so the cached copy on the BAT, the
/// kernels that consume it and any cloned BATs all reference one build.
using OrderIndexPtr = std::shared_ptr<const std::vector<oid_t>>;

/// \brief One live cached order index, viewed with its full key spec:
/// `keys[0]` is the BAT the index is cached on (the primary key), `keys[1..]`
/// are the secondary key columns, and `desc[i]` is key i's direction. The
/// cache stores only canonical specs (desc[0] == false), so the primary key
/// of every view is ascending, nils first.
struct OrderIndexView {
  std::vector<const BAT*> keys;
  std::vector<bool> desc;
  OrderIndexPtr idx;
};

/// \brief A single typed column with an implicit dense void head.
///
/// Concurrency / immutability contract (docs/architecture.md): the engine
/// serialises all mutation — a BAT reachable from a published catalog
/// version is only ever written by the single writer thread, and only while
/// no snapshot can observe it (the catalog either clones the object first
/// or excludes readers for the statement). Between mutations the value is
/// immutable, so any number of threads may read one BAT concurrently. The
/// only state mutated on the *read* path is the order-index cache
/// (`SetOrderIndex`/`CacheOrderIndexSpec` are const), which is therefore
/// guarded by its own mutex; everything else relies on the writer-exclusion
/// protocol, asserted by `data_version()` staying constant under readers.
class BAT {
 public:
  /// \brief Create an empty BAT with tail type `t`.
  static BATPtr Make(PhysType t);

  /// \brief Create an empty string BAT sharing an existing heap.
  static BATPtr MakeStr(std::shared_ptr<StrHeap> heap);

  /// \brief Create an oid BAT holding the dense sequence [seq, seq+count).
  static BATPtr MakeDense(oid_t seq, size_t count);

  /// \brief Create a BAT of `count` copies of scalar `v`.
  static BATPtr MakeConst(const ScalarValue& v, size_t count);

  explicit BAT(PhysType t);

  PhysType type() const { return type_; }
  size_t Count() const;
  bool Empty() const { return Count() == 0; }

  /// Typed access to the tail vector. The requested type must match type().
  /// The mutable overloads drop the cached order index: any handle that can
  /// rewrite the tail invalidates it (see order_index()).
  std::vector<uint8_t>& bits() { InvalidateOrderIndex(); return std::get<std::vector<uint8_t>>(tail_); }
  std::vector<int32_t>& ints() { InvalidateOrderIndex(); return std::get<std::vector<int32_t>>(tail_); }
  std::vector<int64_t>& lngs() { InvalidateOrderIndex(); return std::get<std::vector<int64_t>>(tail_); }
  std::vector<double>& dbls() { InvalidateOrderIndex(); return std::get<std::vector<double>>(tail_); }
  std::vector<uint64_t>& oids() { InvalidateOrderIndex(); return std::get<std::vector<uint64_t>>(tail_); }
  const std::vector<uint8_t>& bits() const { return std::get<std::vector<uint8_t>>(tail_); }
  const std::vector<int32_t>& ints() const { return std::get<std::vector<int32_t>>(tail_); }
  const std::vector<int64_t>& lngs() const { return std::get<std::vector<int64_t>>(tail_); }
  const std::vector<double>& dbls() const { return std::get<std::vector<double>>(tail_); }
  const std::vector<uint64_t>& oids() const { return std::get<std::vector<uint64_t>>(tail_); }

  /// Generic typed vector access for template kernels. The mutable overload
  /// drops the cached order index, like the typed accessors above.
  template <typename T>
  std::vector<T>& Data() {
    InvalidateOrderIndex();
    return std::get<std::vector<T>>(tail_);
  }
  template <typename T>
  const std::vector<T>& Data() const {
    return std::get<std::vector<T>>(tail_);
  }

  /// String heap (only for kStr BATs).
  const std::shared_ptr<StrHeap>& heap() const { return heap_; }
  StrHeap* mutable_heap() { return heap_.get(); }

  /// \brief The string value at row `i` (kStr only).
  std::string_view GetStr(size_t i) const { return heap_->Get(oids()[i]); }

  /// \brief Read row `i` as a scalar (NULL decoded from the sentinel).
  ScalarValue GetScalar(size_t i) const;

  /// \brief Append a scalar; it must be of (or castable to) the tail type.
  Status Append(const ScalarValue& v);

  /// \brief Overwrite row `i` with scalar `v` (same typing rule as Append).
  Status Set(size_t i, const ScalarValue& v);

  /// \brief Append all rows of `other` (must have the same tail type).
  Status AppendBat(const BAT& other);

  /// \brief True if row `i` holds the nil sentinel.
  bool IsNullAt(size_t i) const;

  /// \brief Number of nil rows (O(n) scan).
  size_t CountNulls() const;

  void Reserve(size_t n);
  void Resize(size_t n);  ///< grows with nil sentinels

  /// \brief Empty BAT of the same type (string BATs share this heap).
  BATPtr CloneStructure() const;

  /// \brief Deep copy of the tail (string heap is shared).
  BATPtr CloneData() const;

  /// \brief Deep copy that shares NO mutable state with the source: string
  /// values re-intern into a fresh private heap (StrHeap::Put reallocates
  /// its arena, so a clone that will be mutated must not share one with a
  /// published column). Carries the single-key order index (the clone is
  /// value-identical) but not multi-key spec entries, whose secondary
  /// columns belong to the source object. Used for catalog copy-on-write.
  BATPtr CloneDataPrivate() const;

  /// \brief Rows [lo, hi) as a new BAT.
  BATPtr Slice(size_t lo, size_t hi) const;

  // -------------------------------------------------------------------------
  // Heap export/import (durable storage; see docs/storage.md)
  // -------------------------------------------------------------------------

  /// \brief The tail as one contiguous byte span (the on-disk heap payload).
  /// For kStr this is the offset array; the string bytes live in the heap.
  const void* TailData() const;
  size_t TailByteSize() const;

  /// \brief Rebuild a non-string BAT from a raw tail payload previously
  /// produced by TailData(). Validates that `bytes` holds exactly `count`
  /// values of `t`'s width.
  static Result<BATPtr> ImportTail(PhysType t, std::string_view bytes,
                                   uint64_t count);

  /// \brief Rebuild a string BAT from a raw offset payload plus its heap.
  /// Every offset is validated against the heap's interned set, so a corrupt
  /// offset array fails cleanly instead of reading garbage.
  static Result<BATPtr> ImportStrTail(std::shared_ptr<StrHeap> heap,
                                      std::string_view bytes, uint64_t count);

  /// \brief Monotonic mutation counter: bumped by every hook that can change
  /// the tail's value (the same hooks that drop the cached order index).
  /// Storage-layer dirty tracking compares this against the version it last
  /// persisted; building an order index does NOT bump it (no value change).
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_relaxed);
  }

  /// \brief The cached stable ascending (nil-first) order index, or null if
  /// none has been built. Built lazily by gdk::EnsureOrderIndex and reused by
  /// ORDER BY, range-selects and merge-join-style probes.
  ///
  /// Lifecycle: the cache is dropped by every mutating member (Append, Set,
  /// AppendBat, Resize). Kernels that fill a fresh BAT through the raw tail
  /// vectors never see a stale index because a fresh BAT has none. CloneData
  /// carries the index over (the clone is value-identical); Slice drops it.
  /// Returned by value under the cache mutex: concurrent reader sessions may
  /// build/cache indexes on the same shared column at the same time.
  OrderIndexPtr order_index() const;

  /// \brief Install `idx` (size must equal Count()) as the cached order
  /// index. `const` on purpose: building an index does not change the value
  /// of the BAT, so read-only kernels may cache on const inputs.
  void SetOrderIndex(OrderIndexPtr idx) const;

  // -------------------------------------------------------------------------
  // Keyed order-index cache (multi-key specs)
  // -------------------------------------------------------------------------
  // Beyond the single-key ascending index above, a BAT caches order indexes
  // for multi-key specs whose *primary* key it is. Secondary key columns are
  // referenced weakly and pinned to the data version they held at build
  // time: an entry whose secondary mutated or died is stale and pruned on
  // the next lookup (a mutation of this BAT itself clears the whole cache).
  // Only canonical specs (desc[0] == false) are stored — the negated spec is
  // served from the canonical index by run reversal (see gdk::OrderIndex).

  /// \brief The cached index for the exact multi-key spec `keys`/`desc`, or
  /// null. `keys[0]` must be this BAT; secondary keys match by identity.
  OrderIndexPtr FindOrderIndexSpec(const std::vector<const BAT*>& keys,
                                   const std::vector<bool>& desc) const;

  /// \brief Cache `idx` for the multi-key spec whose primary key is this BAT
  /// and whose secondary key columns are `extras` (= keys[1..], held weakly
  /// at their current data versions). Replaces an existing entry for the
  /// same spec.
  void CacheOrderIndexSpec(const std::vector<BATPtr>& extras,
                           const std::vector<bool>& desc,
                           OrderIndexPtr idx) const;

  /// \brief Every live cached index whose primary key is this BAT: the
  /// single-key ascending index (first, if present) plus the validated
  /// multi-key entries. Stale entries are pruned as a side effect.
  std::vector<OrderIndexView> LiveOrderIndexes() const;

  /// \brief Drop the cached order indexes (any mutation invalidates them).
  /// Doubles as the storage dirty hook: the data version advances with every
  /// call. The writer-exclusion protocol allows one *logical* writer, but a
  /// morsel-parallel kernel is many worker threads taking mutable accessors
  /// on disjoint ranges of the same BAT — so the version counter is atomic
  /// and the fast path reads an atomic presence flag, not the cache itself.
  void InvalidateOrderIndex() {
    data_version_.fetch_add(1, std::memory_order_relaxed);
    if (oidx_present_.load(std::memory_order_acquire)) {
      common::MutexLock lk(&oidx_mu_);
      order_index_.reset();
      spec_indexes_.clear();
      oidx_present_.store(false, std::memory_order_release);
    }
  }

  /// \brief Debug rendering: "[ 0, 1, nil, ... ]".
  std::string ToString(size_t max_rows = 32) const;

 private:
  // Secondary key column of a cached multi-key index: weak so the cache can
  // never keep a dead column alive (or cycle), raw for identity compares
  // (valid only while the weak ref locks), version-pinned so a mutated
  // secondary invalidates the entry.
  struct SpecKey {
    std::weak_ptr<const BAT> ref;
    const BAT* raw = nullptr;
    uint64_t version = 0;
  };
  struct SpecEntry {
    std::vector<bool> desc;        // 1 + extras.size() flags; desc[0] == false
    std::vector<SpecKey> extras;   // secondary key columns (keys[1..])
    OrderIndexPtr idx;
  };

  bool SpecEntryLive(const SpecEntry& e) const;
  void PruneSpecEntries() const REQUIRES(oidx_mu_);

  PhysType type_;
  std::variant<std::vector<uint8_t>, std::vector<int32_t>, std::vector<int64_t>,
               std::vector<double>, std::vector<uint64_t>>
      tail_;
  std::shared_ptr<StrHeap> heap_;  // only for kStr
  // The order-index cache is the one piece of BAT state mutated from const
  // (read-path) methods, so concurrent readers guard it with its own mutex.
  // Per-object and innermost in the documented lock order: nothing else is
  // acquired while it is held (cross-instance nesting happens only in
  // CloneData/CloneDataPrivate, where the second instance is a private,
  // not-yet-shared clone).
  mutable common::Mutex oidx_mu_;
  mutable OrderIndexPtr order_index_ GUARDED_BY(oidx_mu_);
  mutable std::vector<SpecEntry> spec_indexes_ GUARDED_BY(oidx_mu_);
  // True whenever order_index_ or spec_indexes_ is non-empty; lets the
  // invalidation fast path skip the mutex without reading either.
  mutable std::atomic<bool> oidx_present_{false};
  std::atomic<uint64_t> data_version_{0};  // bumped by every mutation hook
};

/// \brief Materialize `count` dense oids starting at `seq` into `out`.
void FillDense(std::vector<oid_t>* out, oid_t seq, size_t count);

}  // namespace gdk
}  // namespace sciql

#endif  // SCIQL_GDK_BAT_H_
