#include <cmath>
#include <cstring>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

const char* UnOpName(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kNot: return "not";
    case UnOp::kIsNull: return "isnil";
    case UnOp::kAbs: return "abs";
  }
  return "?";
}

namespace {

bool IsArith(BinOp op) {
  return op == BinOp::kAdd || op == BinOp::kSub || op == BinOp::kMul ||
         op == BinOp::kDiv || op == BinOp::kMod;
}
bool IsCompare(BinOp op) {
  return op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kLt ||
         op == BinOp::kLe || op == BinOp::kGt || op == BinOp::kGe;
}

// Reads either a vector element or a broadcast constant.
template <typename T>
struct Acc {
  const T* vec = nullptr;
  T cval = TypeTraits<T>::Nil();
  T operator[](size_t i) const { return vec != nullptr ? vec[i] : cval; }
};

template <typename T>
Result<BATPtr> ArithLoop(BinOp op, size_t n, Acc<T> la, Acc<T> ra) {
  auto out = BAT::Make(TypeTraits<T>::kType);
  auto& o = out->template Data<T>();
  o.resize(n);
  Status st = ParallelRows(n, kMorselRows, [&](size_t begin, size_t end) -> Status {
    for (size_t i = begin; i < end; ++i) {
      T a = la[i];
      T b = ra[i];
      if (TypeTraits<T>::IsNil(a) || TypeTraits<T>::IsNil(b)) {
        o[i] = TypeTraits<T>::Nil();
        continue;
      }
      switch (op) {
        case BinOp::kAdd:
          if constexpr (std::is_integral_v<T>) {
            o[i] = WrapAdd(a, b);  // overflow wraps mod 2^N (see types.h)
          } else {
            o[i] = a + b;
          }
          break;
        case BinOp::kSub:
          if constexpr (std::is_integral_v<T>) {
            o[i] = WrapSub(a, b);
          } else {
            o[i] = a - b;
          }
          break;
        case BinOp::kMul:
          if constexpr (std::is_integral_v<T>) {
            o[i] = WrapMul(a, b);
          } else {
            o[i] = a * b;
          }
          break;
        case BinOp::kDiv:
          if constexpr (std::is_same_v<T, double>) {
            if (b == 0.0) return Status::ExecError("division by zero");
            o[i] = a / b;
          } else {
            if (b == 0) return Status::ExecError("division by zero");
            // MIN / -1 is the one quotient that does not fit the type;
            // the hardware traps (SIGFPE), so surface it as the same kind
            // of execution error as division by zero.
            if constexpr (std::is_signed_v<T>) {
              if (b == T(-1) && a == std::numeric_limits<T>::min()) {
                return Status::ExecError("integer overflow in division");
              }
            }
            o[i] = static_cast<T>(a / b);
          }
          break;
        case BinOp::kMod:
          if constexpr (std::is_same_v<T, double>) {
            if (b == 0.0) return Status::ExecError("modulo by zero");
            o[i] = std::fmod(a, b);
          } else {
            if (b == 0) return Status::ExecError("modulo by zero");
            // MIN % -1 is mathematically 0, but the hardware computes the
            // quotient first and traps; rejected like MIN / -1 so the two
            // stay consistent.
            if constexpr (std::is_signed_v<T>) {
              if (b == T(-1) && a == std::numeric_limits<T>::min()) {
                return Status::ExecError("integer overflow in modulo");
              }
            }
            // SQL MOD follows the sign of the divisor-free C semantics here;
            // dimension arithmetic in SciQL only uses non-negative operands.
            o[i] = static_cast<T>(a % b);
          }
          break;
        default:
          return Status::Internal("non-arithmetic op in ArithLoop");
      }
    }
    return Status::OK();
  });
  SCIQL_RETURN_NOT_OK(st);
  return out;
}

template <typename T>
BATPtr CmpLoop(BinOp op, size_t n, Acc<T> la, Acc<T> ra) {
  auto out = BAT::Make(PhysType::kBit);
  auto& o = out->bits();
  o.resize(n);
  ThreadPool::Get().ParallelFor(
      n, kMorselRows, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          T a = la[i];
          T b = ra[i];
          if (TypeTraits<T>::IsNil(a) || TypeTraits<T>::IsNil(b)) {
            o[i] = kBitNil;
            continue;
          }
          bool r = false;
          switch (op) {
            case BinOp::kEq: r = a == b; break;
            case BinOp::kNe: r = a != b; break;
            case BinOp::kLt: r = a < b; break;
            case BinOp::kLe: r = a <= b; break;
            case BinOp::kGt: r = a > b; break;
            case BinOp::kGe: r = a >= b; break;
            default: break;
          }
          o[i] = r ? 1 : 0;
        }
      });
  return out;
}

// Three-valued AND/OR.
BATPtr BoolLoop(BinOp op, size_t n, Acc<uint8_t> la, Acc<uint8_t> ra) {
  auto out = BAT::Make(PhysType::kBit);
  auto& o = out->bits();
  o.resize(n);
  ThreadPool::Get().ParallelFor(
      n, kMorselRows, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          uint8_t a = la[i];
          uint8_t b = ra[i];
          if (op == BinOp::kAnd) {
            if (a == 0 || b == 0) {
              o[i] = 0;
            } else if (a == kBitNil || b == kBitNil) {
              o[i] = kBitNil;
            } else {
              o[i] = 1;
            }
          } else {  // kOr
            if (a == 1 || b == 1) {
              o[i] = 1;
            } else if (a == kBitNil || b == kBitNil) {
              o[i] = kBitNil;
            } else {
              o[i] = 0;
            }
          }
        }
      });
  return out;
}

struct StrAcc {
  const BAT* bat = nullptr;
  const ScalarValue* scalar = nullptr;
  std::pair<std::string_view, bool> Get(size_t i) const {
    if (bat != nullptr) {
      if (bat->IsNullAt(i)) return {{}, true};
      return {bat->GetStr(i), false};
    }
    if (scalar->is_null) return {{}, true};
    return {std::string_view(scalar->s), false};
  }
};

BATPtr StrCmpLoop(BinOp op, size_t n, const StrAcc& la, const StrAcc& ra) {
  auto out = BAT::Make(PhysType::kBit);
  auto& o = out->bits();
  o.resize(n);
  ThreadPool::Get().ParallelFor(
      n, kMorselRows, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          auto [a, an] = la.Get(i);
          auto [b, bn] = ra.Get(i);
          if (an || bn) {
            o[i] = kBitNil;
            continue;
          }
          bool r = false;
          switch (op) {
            case BinOp::kEq: r = a == b; break;
            case BinOp::kNe: r = a != b; break;
            case BinOp::kLt: r = a < b; break;
            case BinOp::kLe: r = a <= b; break;
            case BinOp::kGt: r = a > b; break;
            case BinOp::kGe: r = a >= b; break;
            default: break;
          }
          o[i] = r ? 1 : 0;
        }
      });
  return out;
}

template <typename T>
Acc<T> MakeAcc(const BAT* b, const ScalarValue* s) {
  Acc<T> a;
  if (b != nullptr) {
    a.vec = b->template Data<T>().data();
  } else if (!s->is_null) {
    if constexpr (std::is_same_v<T, double>) {
      a.cval = s->AsDouble();
    } else {
      a.cval = static_cast<T>(s->i);
    }
  }
  return a;
}

// Typed numeric cast src -> dst, replicating CastScalar semantics (including
// its error messages) without the per-row ScalarValue round trip.
template <typename From, typename To>
Result<BATPtr> CastLoop(const BAT& b, PhysType to) {
  const auto& src = b.template Data<From>();
  size_t n = src.size();
  auto out = BAT::Make(to);
  auto& dst = out->template Data<To>();
  dst.resize(n);
  Status st = ParallelRows(n, kMorselRows, [&](size_t begin, size_t end) -> Status {
    for (size_t i = begin; i < end; ++i) {
      From v = src[i];
      if (TypeTraits<From>::IsNil(v)) {
        dst[i] = TypeTraits<To>::Nil();
        continue;
      }
      if constexpr (std::is_same_v<To, uint8_t>) {
        dst[i] = v != From(0) ? 1 : 0;
      } else if constexpr (std::is_same_v<To, int32_t>) {
        int64_t x = static_cast<int64_t>(v);
        if (x < std::numeric_limits<int32_t>::min() ||
            x > std::numeric_limits<int32_t>::max()) {
          return Status::OutOfRange(StrFormat("value %lld overflows int",
                                              static_cast<long long>(x)));
        }
        dst[i] = static_cast<int32_t>(x);
      } else if constexpr (std::is_same_v<To, uint64_t>) {
        if (v < From(0)) {
          return Status::OutOfRange("negative value cannot be cast to oid");
        }
        dst[i] = static_cast<uint64_t>(v);
      } else {
        dst[i] = static_cast<To>(v);
      }
    }
    return Status::OK();
  });
  SCIQL_RETURN_NOT_OK(st);
  return out;
}

template <typename From>
Result<BATPtr> CastFrom(const BAT& b, PhysType to) {
  switch (to) {
    case PhysType::kBit:
      return CastLoop<From, uint8_t>(b, to);
    case PhysType::kInt:
      return CastLoop<From, int32_t>(b, to);
    case PhysType::kLng:
      return CastLoop<From, int64_t>(b, to);
    case PhysType::kDbl:
      return CastLoop<From, double>(b, to);
    case PhysType::kOid:
      return CastLoop<From, uint64_t>(b, to);
    default:
      return Status::Internal("unreachable cast target");
  }
}

}  // namespace

Result<BATPtr> CastBat(const BAT& b, PhysType to) {
  if (b.type() == to) return b.CloneData();
  if (!IsNumeric(to) && to != PhysType::kOid && to != PhysType::kLng) {
    return Status::TypeMismatch(
        StrFormat("cannot cast BAT of %s to %s", PhysTypeName(b.type()),
                  PhysTypeName(to)));
  }
  // Typed fast paths mirroring CastScalar: numeric -> numeric, and
  // int/lng -> oid.
  if (IsNumeric(b.type()) &&
      (IsNumeric(to) ||
       (to == PhysType::kOid &&
        (b.type() == PhysType::kInt || b.type() == PhysType::kLng)))) {
    switch (b.type()) {
      case PhysType::kBit:
        return CastFrom<uint8_t>(b, to);
      case PhysType::kInt:
        return CastFrom<int32_t>(b, to);
      case PhysType::kLng:
        return CastFrom<int64_t>(b, to);
      case PhysType::kDbl:
        return CastFrom<double>(b, to);
      default:
        break;
    }
  }
  // Cold path (oid/str sources): row-at-a-time through CastScalar, which
  // produces the canonical type-mismatch errors.
  auto out = BAT::Make(to);
  out->Reserve(b.Count());
  for (size_t i = 0; i < b.Count(); ++i) {
    SCIQL_ASSIGN_OR_RETURN(ScalarValue v, CastScalar(b.GetScalar(i), to));
    SCIQL_RETURN_NOT_OK(out->Append(v));
  }
  return out;
}

Result<BATPtr> CalcBinary(BinOp op, const BAT* lb, const ScalarValue* ls,
                          const BAT* rb, const ScalarValue* rs) {
  if ((lb == nullptr) == (ls == nullptr) ||
      (rb == nullptr) == (rs == nullptr)) {
    return Status::Internal("CalcBinary: exactly one operand form per side");
  }
  if (lb == nullptr && rb == nullptr) {
    return Status::Internal("CalcBinary: at least one BAT operand required");
  }
  size_t n = lb != nullptr ? lb->Count() : rb->Count();
  if (lb != nullptr && rb != nullptr && lb->Count() != rb->Count()) {
    return Status::Internal(StrFormat("CalcBinary: length mismatch %zu vs %zu",
                                      lb->Count(), rb->Count()));
  }

  PhysType lt = lb != nullptr ? lb->type() : ls->type;
  PhysType rt = rb != nullptr ? rb->type() : rs->type;

  // String comparisons.
  if (IsCompare(op) && (lt == PhysType::kStr || rt == PhysType::kStr)) {
    if (lt != PhysType::kStr || rt != PhysType::kStr) {
      return Status::TypeMismatch("comparison between str and non-str");
    }
    StrAcc la{lb, ls};
    StrAcc ra{rb, rs};
    return StrCmpLoop(op, n, la, ra);
  }

  if (op == BinOp::kAnd || op == BinOp::kOr) {
    if (lt != PhysType::kBit || rt != PhysType::kBit) {
      return Status::TypeMismatch("AND/OR require boolean operands");
    }
    return BoolLoop(op, n, MakeAcc<uint8_t>(lb, ls), MakeAcc<uint8_t>(rb, rs));
  }

  if (!IsNumeric(lt) || !IsNumeric(rt)) {
    if (!(lt == PhysType::kOid && rt == PhysType::kOid && IsCompare(op))) {
      return Status::TypeMismatch(
          StrFormat("operator %s on %s and %s", BinOpName(op),
                    PhysTypeName(lt), PhysTypeName(rt)));
    }
  }

  PhysType ct = lt == PhysType::kOid ? PhysType::kOid : PromoteNumeric(lt, rt);
  // Comparison of two bit operands can stay in bit space.
  if (IsCompare(op) && lt == PhysType::kBit && rt == PhysType::kBit) {
    ct = PhysType::kBit;
  }

  // Promote sides to the common type.
  BATPtr lcast, rcast;
  ScalarValue lsv, rsv;
  if (lb != nullptr && lb->type() != ct) {
    SCIQL_ASSIGN_OR_RETURN(lcast, CastBat(*lb, ct));
    lb = lcast.get();
  }
  if (rb != nullptr && rb->type() != ct) {
    SCIQL_ASSIGN_OR_RETURN(rcast, CastBat(*rb, ct));
    rb = rcast.get();
  }
  if (ls != nullptr && ls->type != ct) {
    SCIQL_ASSIGN_OR_RETURN(lsv, CastScalar(*ls, ct));
    ls = &lsv;
  }
  if (rs != nullptr && rs->type != ct) {
    SCIQL_ASSIGN_OR_RETURN(rsv, CastScalar(*rs, ct));
    rs = &rsv;
  }

  auto run = [&]<typename T>() -> Result<BATPtr> {
    Acc<T> la = MakeAcc<T>(lb, ls);
    Acc<T> ra = MakeAcc<T>(rb, rs);
    if (IsArith(op)) return ArithLoop<T>(op, n, la, ra);
    return CmpLoop<T>(op, n, la, ra);
  };

  switch (ct) {
    case PhysType::kBit:
      return run.template operator()<uint8_t>();
    case PhysType::kInt:
      return run.template operator()<int32_t>();
    case PhysType::kLng:
      return run.template operator()<int64_t>();
    case PhysType::kDbl:
      return run.template operator()<double>();
    case PhysType::kOid:
      return run.template operator()<uint64_t>();
    default:
      return Status::Internal("unreachable calc type");
  }
}

Result<ScalarValue> CalcBinaryScalar(BinOp op, const ScalarValue& l,
                                     const ScalarValue& r) {
  // Route through a 1-row BAT; scalar expressions are not hot paths.
  auto lb = BAT::Make(l.type);
  SCIQL_RETURN_NOT_OK(lb->Append(l));
  SCIQL_ASSIGN_OR_RETURN(BATPtr out, CalcBinary(op, lb.get(), nullptr,
                                                nullptr, &r));
  return out->GetScalar(0);
}

Result<BATPtr> CalcUnary(UnOp op, const BAT& b) {
  size_t n = b.Count();
  switch (op) {
    case UnOp::kIsNull: {
      auto out = BAT::Make(PhysType::kBit);
      auto& o = out->bits();
      o.resize(n);
      ThreadPool::Get().ParallelFor(
          n, kMorselRows, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              o[i] = b.IsNullAt(i) ? 1 : 0;
            }
          });
      return out;
    }
    case UnOp::kNot: {
      if (b.type() != PhysType::kBit) {
        return Status::TypeMismatch("NOT requires a boolean operand");
      }
      auto out = BAT::Make(PhysType::kBit);
      auto& o = out->bits();
      const auto& v = b.bits();
      o.resize(n);
      ThreadPool::Get().ParallelFor(
          n, kMorselRows, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              o[i] = v[i] == kBitNil ? kBitNil
                                     : static_cast<uint8_t>(v[i] == 0);
            }
          });
      return out;
    }
    case UnOp::kNeg:
    case UnOp::kAbs: {
      if (!IsNumeric(b.type())) {
        return Status::TypeMismatch(
            StrFormat("%s requires a numeric operand", UnOpName(op)));
      }
      PhysType ot = b.type() == PhysType::kBit ? PhysType::kInt : b.type();
      const BAT* src = &b;
      BATPtr cast;
      if (ot != b.type()) {
        SCIQL_ASSIGN_OR_RETURN(cast, CastBat(b, ot));
        src = cast.get();
      }
      auto apply = [&]<typename T>() -> BATPtr {
        auto out = BAT::Make(ot);
        auto& o = out->template Data<T>();
        const auto& v = src->template Data<T>();
        o.resize(n);
        ThreadPool::Get().ParallelFor(
            n, kMorselRows, [&](size_t, size_t begin, size_t end) {
              for (size_t i = begin; i < end; ++i) {
                if (TypeTraits<T>::IsNil(v[i])) {
                  o[i] = TypeTraits<T>::Nil();
                  continue;
                }
                // Negating the minimum value overflows; wrap (types.h) keeps
                // it defined. The wrapped result is the nil sentinel, so
                // -INT64_MIN and ABS(INT64_MIN) read back as NULL.
                T neg;
                if constexpr (std::is_integral_v<T>) {
                  neg = WrapNeg(v[i]);
                } else {
                  neg = -v[i];
                }
                if (op == UnOp::kNeg) {
                  o[i] = neg;
                } else {
                  o[i] = v[i] < 0 ? neg : v[i];
                }
              }
            });
        return out;
      };
      switch (ot) {
        case PhysType::kInt:
          return apply.template operator()<int32_t>();
        case PhysType::kLng:
          return apply.template operator()<int64_t>();
        case PhysType::kDbl:
          return apply.template operator()<double>();
        default:
          return Status::Internal("unreachable unary type");
      }
    }
  }
  return Status::Internal("unreachable unary op");
}

Result<ScalarValue> CalcUnaryScalar(UnOp op, const ScalarValue& v) {
  auto b = BAT::Make(v.type);
  SCIQL_RETURN_NOT_OK(b->Append(v));
  SCIQL_ASSIGN_OR_RETURN(BATPtr out, CalcUnary(op, *b));
  return out->GetScalar(0);
}

Result<BATPtr> IfThenElse(const BAT& cond, const BAT* tb, const ScalarValue* ts,
                          const BAT* eb, const ScalarValue* es) {
  if (cond.type() != PhysType::kBit) {
    return Status::TypeMismatch("IfThenElse condition must be boolean");
  }
  size_t n = cond.Count();
  if ((tb != nullptr && tb->Count() != n) ||
      (eb != nullptr && eb->Count() != n)) {
    return Status::Internal("IfThenElse: arm length mismatch");
  }
  PhysType tt = tb != nullptr ? tb->type() : ts->type;
  PhysType et = eb != nullptr ? eb->type() : es->type;

  PhysType ot;
  if (tt == PhysType::kStr || et == PhysType::kStr) {
    if (tt != et) return Status::TypeMismatch("CASE arms mix str and non-str");
    ot = PhysType::kStr;
  } else if (IsNumeric(tt) && IsNumeric(et)) {
    ot = tt == et ? tt : PromoteNumeric(tt, et);
  } else if (tt == et) {
    ot = tt;
  } else {
    return Status::TypeMismatch(
        StrFormat("CASE arms have incompatible types %s and %s",
                  PhysTypeName(tt), PhysTypeName(et)));
  }

  // Typed fast path for numeric outputs: promote both arms to the output
  // type once, then run one branch-per-row loop over dense vectors.
  if (IsNumeric(ot)) {
    BATPtr tcast, ecast;
    ScalarValue tsv, esv;
    if (tb != nullptr && tb->type() != ot) {
      SCIQL_ASSIGN_OR_RETURN(tcast, CastBat(*tb, ot));
      tb = tcast.get();
    }
    if (eb != nullptr && eb->type() != ot) {
      SCIQL_ASSIGN_OR_RETURN(ecast, CastBat(*eb, ot));
      eb = ecast.get();
    }
    if (ts != nullptr && ts->type != ot) {
      SCIQL_ASSIGN_OR_RETURN(tsv, CastScalar(*ts, ot));
      ts = &tsv;
    }
    if (es != nullptr && es->type != ot) {
      SCIQL_ASSIGN_OR_RETURN(esv, CastScalar(*es, ot));
      es = &esv;
    }
    auto run = [&]<typename T>() -> BATPtr {
      auto out = BAT::Make(ot);
      auto& o = out->template Data<T>();
      o.resize(n);
      Acc<T> ta = MakeAcc<T>(tb, ts);
      Acc<T> ea = MakeAcc<T>(eb, es);
      const auto& c = cond.bits();
      ThreadPool::Get().ParallelFor(
          n, kMorselRows, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              o[i] = c[i] == 1 ? ta[i] : ea[i];  // nil condition selects ELSE
            }
          });
      return out;
    };
    switch (ot) {
      case PhysType::kBit:
        return run.template operator()<uint8_t>();
      case PhysType::kInt:
        return run.template operator()<int32_t>();
      case PhysType::kLng:
        return run.template operator()<int64_t>();
      case PhysType::kDbl:
        return run.template operator()<double>();
      default:
        break;
    }
  }

  // Generic (row-at-a-time) path for strings and mixed cases.
  std::shared_ptr<StrHeap> heap;
  if (ot == PhysType::kStr) {
    if (tb != nullptr) heap = tb->heap();
    else if (eb != nullptr) heap = eb->heap();
  }
  BATPtr out = ot == PhysType::kStr && heap != nullptr ? BAT::MakeStr(heap)
                                                       : BAT::Make(ot);
  out->Reserve(n);
  const auto& c = cond.bits();
  for (size_t i = 0; i < n; ++i) {
    bool take_then = c[i] == 1;  // nil condition selects the ELSE arm
    ScalarValue v;
    if (take_then) {
      v = tb != nullptr ? tb->GetScalar(i) : *ts;
    } else {
      v = eb != nullptr ? eb->GetScalar(i) : *es;
    }
    SCIQL_RETURN_NOT_OK(out->Append(v));
  }
  return out;
}

}  // namespace gdk
}  // namespace sciql
