#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Emit the absolute oid for aligned position i: either i itself or an
// indirect lookup through the candidate list.
inline oid_t ResolveOid(const BAT* cands, size_t i) {
  return cands == nullptr ? static_cast<oid_t>(i) : cands->oids()[i];
}

// Morsel-parallel filter: emit ResolveOid(cands, i) for every row i in
// [0, n) where pred(i) holds. Each morsel collects into a local vector;
// the locals are concatenated in morsel order, so the output is identical
// to a sequential scan at any thread count. A single-threaded pool takes
// the direct single-pass path (same oids, no intermediate copies).
template <typename RowPred>
BATPtr FilterSelect(size_t n, const BAT* cands, RowPred pred) {
  auto out = BAT::Make(PhysType::kOid);
  size_t nmorsels = MorselCount(n, kMorselRows);
  if (nmorsels <= 1 || ThreadPool::Get().thread_count() <= 1) {
    out->Reserve(n / 4);
    auto& oids = out->oids();
    for (size_t i = 0; i < n; ++i) {
      if (pred(i)) oids.push_back(ResolveOid(cands, i));
    }
    return out;
  }
  std::vector<std::vector<oid_t>> parts(nmorsels);
  ThreadPool::Get().ParallelFor(
      n, kMorselRows, [&](size_t m, size_t begin, size_t end) {
        auto& p = parts[m];
        p.reserve((end - begin) / 4);
        for (size_t i = begin; i < end; ++i) {
          if (pred(i)) p.push_back(ResolveOid(cands, i));
        }
      });
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out->Reserve(total);
  auto& oids = out->oids();
  for (const auto& p : parts) oids.insert(oids.end(), p.begin(), p.end());
  return out;
}

template <typename T, typename Pred>
BATPtr ScanSelect(const std::vector<T>& data, const BAT* cands, Pred pred) {
  return FilterSelect(data.size(), cands, [&data, pred](size_t i) {
    const T& v = data[i];
    return !TypeTraits<T>::IsNil(v) && pred(v);
  });
}

template <typename T>
bool ApplyCmp(CmpOp op, const T& a, const T& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<BATPtr> BoolSelect(const BAT& bits, const BAT* cands) {
  if (bits.type() != PhysType::kBit) {
    return Status::TypeMismatch("BoolSelect expects a bit BAT");
  }
  if (cands != nullptr && cands->Count() != bits.Count()) {
    return Status::Internal(
        StrFormat("BoolSelect: candidate count %zu != bits count %zu",
                  cands->Count(), bits.Count()));
  }
  const auto& v = bits.bits();
  return FilterSelect(v.size(), cands, [&v](size_t i) { return v[i] == 1; });
}

Result<BATPtr> ThetaSelect(const BAT& b, const BAT* cands, CmpOp op,
                           const ScalarValue& sv) {
  if (cands != nullptr && cands->Count() != b.Count()) {
    return Status::Internal("ThetaSelect: candidates misaligned with input");
  }
  if (sv.is_null) {
    // Comparison with NULL never matches.
    return BAT::Make(PhysType::kOid);
  }
  switch (b.type()) {
    case PhysType::kInt: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kInt));
      int32_t x = static_cast<int32_t>(c.i);
      return ScanSelect(b.ints(), cands,
                        [op, x](int32_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kLng: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kLng));
      int64_t x = c.i;
      return ScanSelect(b.lngs(), cands,
                        [op, x](int64_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kDbl: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kDbl));
      double x = c.d;
      return ScanSelect(b.dbls(), cands,
                        [op, x](double v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kBit: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kBit));
      uint8_t x = static_cast<uint8_t>(c.i);
      return ScanSelect(b.bits(), cands,
                        [op, x](uint8_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kOid: {
      oid_t x = static_cast<oid_t>(sv.i);
      return ScanSelect(b.oids(), cands,
                        [op, x](oid_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kStr: {
      if (sv.type != PhysType::kStr) {
        return Status::TypeMismatch("string theta-select needs a str scalar");
      }
      const ScalarValue* pv = &sv;
      return FilterSelect(b.Count(), cands, [&b, op, pv](size_t i) {
        if (b.IsNullAt(i)) return false;
        return ApplyCmp(op, b.GetStr(i), std::string_view(pv->s));
      });
    }
  }
  return Status::Internal("unreachable theta-select type");
}

namespace {

// Binary-search the value window over a live order index (any cached spec
// whose primary key is the column: its primary direction is always
// ascending, nils first) and emit the matching row ids re-sorted ascending —
// the same oid set in the same row order a full scan produces, in
// O(log n + k log k). `below_lo` / `within_hi` are *typed* predicates on the
// tail values (never a double round-trip), each monotone along the index so
// partition_point applies; nil rows sit in the index prefix and never match.
// Returns null when the window is so wide that re-sorting k ≈ n oids would
// cost more than the O(n) scan; the caller falls through to the scan path.
template <typename T, typename BelowLo, typename WithinHi>
BATPtr RangeSelectViaIndex(const std::vector<T>& data,
                           const std::vector<oid_t>& ord, BelowLo below_lo,
                           WithinHi within_hi) {
  auto lb = std::partition_point(ord.begin(), ord.end(), [&](oid_t row) {
    const T& v = data[row];
    return TypeTraits<T>::IsNil(v) || below_lo(v);
  });
  auto ub = std::partition_point(ord.begin(), ord.end(), [&](oid_t row) {
    const T& v = data[row];
    return TypeTraits<T>::IsNil(v) || within_hi(v);
  });
  size_t k = ub > lb ? static_cast<size_t>(ub - lb) : 0;
  if (k * 8 > ord.size()) return nullptr;  // unselective: scan is cheaper
  auto out = BAT::Make(PhysType::kOid);
  if (k > 0) {
    out->oids().assign(lb, ub);
    std::sort(out->oids().begin(), out->oids().end());
  }
  return out;
}

// 2^63 as a double (exactly representable). Doubles at or beyond this lie
// outside the int64 range.
constexpr double kTwo63 = 9223372036854775808.0;

// The smallest int64 `v` with `v >= bound` (inclusive) or `v > bound`.
// Computed exactly: integer-typed bounds never pass through a double, and
// double bounds round with ceil before the cast, so 64-bit columns compare
// precisely even beyond 2^53. Returns false when no int64 qualifies.
bool LowerBoundLng(const ScalarValue& bound, bool incl, int64_t* out) {
  if (bound.type != PhysType::kDbl) {
    int64_t v = bound.AsInt64();
    if (incl) {
      *out = v;
      return true;
    }
    if (v == std::numeric_limits<int64_t>::max()) return false;
    *out = v + 1;
    return true;
  }
  double d = bound.d;
  if (std::isnan(d)) return false;  // NaN bound matches nothing
  if (d >= kTwo63) return false;    // above every int64
  if (d < -kTwo63) {
    *out = std::numeric_limits<int64_t>::min();
    return true;
  }
  // d in [-2^63, 2^63): ceil(d) is an exact double strictly below 2^63
  // (doubles this close to the range edge are >= 1024 apart), so the cast
  // cannot overflow.
  double c = std::ceil(d);
  int64_t v = static_cast<int64_t>(c);
  if (!incl && c == d) {
    if (v == std::numeric_limits<int64_t>::max()) return false;
    ++v;
  }
  *out = v;
  return true;
}

// The largest int64 `v` with `v <= bound` (inclusive) or `v < bound`;
// mirror of LowerBoundLng with floor.
bool UpperBoundLng(const ScalarValue& bound, bool incl, int64_t* out) {
  if (bound.type != PhysType::kDbl) {
    int64_t v = bound.AsInt64();
    if (incl) {
      *out = v;
      return true;
    }
    if (v == std::numeric_limits<int64_t>::min()) return false;
    *out = v - 1;
    return true;
  }
  double d = bound.d;
  if (std::isnan(d)) return false;
  if (d < -kTwo63) return false;  // below every int64
  if (d >= kTwo63) {
    *out = std::numeric_limits<int64_t>::max();
    return true;
  }
  double f = std::floor(d);
  int64_t v = static_cast<int64_t>(f);
  if (!incl && f == d) {
    if (v == std::numeric_limits<int64_t>::min()) return false;
    --v;
  }
  *out = v;
  return true;
}

}  // namespace

Result<BATPtr> RangeSelect(const BAT& b, const BAT* cands,
                           const ScalarValue& lo, const ScalarValue& hi,
                           bool lo_incl, bool hi_incl) {
  if (!IsNumeric(b.type())) {
    return Status::TypeMismatch("RangeSelect expects a numeric BAT");
  }
  if (lo.is_null || hi.is_null) return BAT::Make(PhysType::kOid);

  // Index route: any cached spec led by this column serves the window.
  OrderIndexPtr ord = cands == nullptr && Controls().use_index_paths
                          ? FindPrimaryOrderIndex(b)
                          : nullptr;

  if (b.type() == PhysType::kDbl) {
    double l = lo.AsDouble();
    double h = hi.AsDouble();
    auto below_lo = [l, lo_incl](double v) { return lo_incl ? v < l : v <= l; };
    auto within_hi = [h, hi_incl](double v) { return hi_incl ? v <= h : v < h; };
    if (ord != nullptr) {
      BATPtr via = RangeSelectViaIndex(b.dbls(), *ord, below_lo, within_hi);
      if (via != nullptr) return via;
    }
    return ScanSelect(b.dbls(), cands, [below_lo, within_hi](double v) {
      return !below_lo(v) && within_hi(v);
    });
  }

  // Integer family (bit/int/lng): normalize to exact inclusive int64 bounds
  // once, then compare values as int64 — no precision loss for kLng values
  // beyond 2^53.
  int64_t l64, h64;
  if (!LowerBoundLng(lo, lo_incl, &l64) || !UpperBoundLng(hi, hi_incl, &h64) ||
      l64 > h64) {
    return BAT::Make(PhysType::kOid);
  }
  auto below_lo = [l64](int64_t v) { return v < l64; };
  auto within_hi = [h64](int64_t v) { return v <= h64; };
  auto match = [l64, h64](int64_t v) { return v >= l64 && v <= h64; };
  switch (b.type()) {
    case PhysType::kInt: {
      if (ord != nullptr) {
        BATPtr via = RangeSelectViaIndex(
            b.ints(), *ord,
            [&](int32_t v) { return below_lo(v); },
            [&](int32_t v) { return within_hi(v); });
        if (via != nullptr) return via;
      }
      return ScanSelect(b.ints(), cands,
                        [match](int32_t v) { return match(v); });
    }
    case PhysType::kLng: {
      if (ord != nullptr) {
        BATPtr via =
            RangeSelectViaIndex(b.lngs(), *ord, below_lo, within_hi);
        if (via != nullptr) return via;
      }
      return ScanSelect(b.lngs(), cands, match);
    }
    case PhysType::kBit: {
      if (ord != nullptr) {
        BATPtr via = RangeSelectViaIndex(
            b.bits(), *ord,
            [&](uint8_t v) { return below_lo(v); },
            [&](uint8_t v) { return within_hi(v); });
        if (via != nullptr) return via;
      }
      return ScanSelect(b.bits(), cands,
                        [match](uint8_t v) { return match(v); });
    }
    default:
      return Status::TypeMismatch("RangeSelect: unsupported type");
  }
}

Result<BATPtr> NullSelect(const BAT& b, const BAT* cands, bool select_null) {
  if (cands != nullptr && cands->Count() != b.Count()) {
    return Status::Internal("NullSelect: candidates misaligned with input");
  }
  return FilterSelect(b.Count(), cands, [&b, select_null](size_t i) {
    return b.IsNullAt(i) == select_null;
  });
}

}  // namespace gdk
}  // namespace sciql
