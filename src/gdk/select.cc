#include <algorithm>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Emit the absolute oid for aligned position i: either i itself or an
// indirect lookup through the candidate list.
inline oid_t ResolveOid(const BAT* cands, size_t i) {
  return cands == nullptr ? static_cast<oid_t>(i) : cands->oids()[i];
}

// Morsel-parallel filter: emit ResolveOid(cands, i) for every row i in
// [0, n) where pred(i) holds. Each morsel collects into a local vector;
// the locals are concatenated in morsel order, so the output is identical
// to a sequential scan at any thread count. A single-threaded pool takes
// the direct single-pass path (same oids, no intermediate copies).
template <typename RowPred>
BATPtr FilterSelect(size_t n, const BAT* cands, RowPred pred) {
  auto out = BAT::Make(PhysType::kOid);
  size_t nmorsels = MorselCount(n, kMorselRows);
  if (nmorsels <= 1 || ThreadPool::Get().thread_count() <= 1) {
    out->Reserve(n / 4);
    auto& oids = out->oids();
    for (size_t i = 0; i < n; ++i) {
      if (pred(i)) oids.push_back(ResolveOid(cands, i));
    }
    return out;
  }
  std::vector<std::vector<oid_t>> parts(nmorsels);
  ThreadPool::Get().ParallelFor(
      n, kMorselRows, [&](size_t m, size_t begin, size_t end) {
        auto& p = parts[m];
        p.reserve((end - begin) / 4);
        for (size_t i = begin; i < end; ++i) {
          if (pred(i)) p.push_back(ResolveOid(cands, i));
        }
      });
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out->Reserve(total);
  auto& oids = out->oids();
  for (const auto& p : parts) oids.insert(oids.end(), p.begin(), p.end());
  return out;
}

template <typename T, typename Pred>
BATPtr ScanSelect(const std::vector<T>& data, const BAT* cands, Pred pred) {
  return FilterSelect(data.size(), cands, [&data, pred](size_t i) {
    const T& v = data[i];
    return !TypeTraits<T>::IsNil(v) && pred(v);
  });
}

template <typename T>
bool ApplyCmp(CmpOp op, const T& a, const T& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<BATPtr> BoolSelect(const BAT& bits, const BAT* cands) {
  if (bits.type() != PhysType::kBit) {
    return Status::TypeMismatch("BoolSelect expects a bit BAT");
  }
  if (cands != nullptr && cands->Count() != bits.Count()) {
    return Status::Internal(
        StrFormat("BoolSelect: candidate count %zu != bits count %zu",
                  cands->Count(), bits.Count()));
  }
  const auto& v = bits.bits();
  return FilterSelect(v.size(), cands, [&v](size_t i) { return v[i] == 1; });
}

Result<BATPtr> ThetaSelect(const BAT& b, const BAT* cands, CmpOp op,
                           const ScalarValue& sv) {
  if (cands != nullptr && cands->Count() != b.Count()) {
    return Status::Internal("ThetaSelect: candidates misaligned with input");
  }
  if (sv.is_null) {
    // Comparison with NULL never matches.
    return BAT::Make(PhysType::kOid);
  }
  switch (b.type()) {
    case PhysType::kInt: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kInt));
      int32_t x = static_cast<int32_t>(c.i);
      return ScanSelect(b.ints(), cands,
                        [op, x](int32_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kLng: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kLng));
      int64_t x = c.i;
      return ScanSelect(b.lngs(), cands,
                        [op, x](int64_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kDbl: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kDbl));
      double x = c.d;
      return ScanSelect(b.dbls(), cands,
                        [op, x](double v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kBit: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kBit));
      uint8_t x = static_cast<uint8_t>(c.i);
      return ScanSelect(b.bits(), cands,
                        [op, x](uint8_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kOid: {
      oid_t x = static_cast<oid_t>(sv.i);
      return ScanSelect(b.oids(), cands,
                        [op, x](oid_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kStr: {
      if (sv.type != PhysType::kStr) {
        return Status::TypeMismatch("string theta-select needs a str scalar");
      }
      const ScalarValue* pv = &sv;
      return FilterSelect(b.Count(), cands, [&b, op, pv](size_t i) {
        if (b.IsNullAt(i)) return false;
        return ApplyCmp(op, b.GetStr(i), std::string_view(pv->s));
      });
    }
  }
  return Status::Internal("unreachable theta-select type");
}

namespace {

// Binary-search the [l, h] value window over the persistent order index and
// emit the matching row ids re-sorted ascending — the same oid set in the
// same row order a full scan produces, in O(log n + k log k). Returns null
// when the window is so wide that re-sorting k ≈ n oids would cost more
// than the O(n) scan; the caller falls through to the scan path.
BATPtr RangeSelectViaIndex(const BAT& b, const std::vector<oid_t>& ord,
                           double l, double h, bool lo_incl, bool hi_incl) {
  // The index is ascending with nils first, so both predicates below hold
  // for a prefix of `ord` and partition_point applies.
  auto below_lo = [&](oid_t row) {
    if (b.IsNullAt(row)) return true;  // nil prefix; nil never matches
    double v = b.GetScalar(row).AsDouble();
    return lo_incl ? v < l : v <= l;
  };
  auto within_hi = [&](oid_t row) {
    if (b.IsNullAt(row)) return true;
    double v = b.GetScalar(row).AsDouble();
    return hi_incl ? v <= h : v < h;
  };
  auto lb = std::partition_point(ord.begin(), ord.end(), below_lo);
  auto ub = std::partition_point(ord.begin(), ord.end(), within_hi);
  size_t k = ub > lb ? static_cast<size_t>(ub - lb) : 0;
  if (k * 8 > ord.size()) return nullptr;  // unselective: scan is cheaper
  auto out = BAT::Make(PhysType::kOid);
  if (k > 0) {
    out->oids().assign(lb, ub);
    std::sort(out->oids().begin(), out->oids().end());
  }
  return out;
}

}  // namespace

Result<BATPtr> RangeSelect(const BAT& b, const BAT* cands,
                           const ScalarValue& lo, const ScalarValue& hi,
                           bool lo_incl, bool hi_incl) {
  if (!IsNumeric(b.type())) {
    return Status::TypeMismatch("RangeSelect expects a numeric BAT");
  }
  if (lo.is_null || hi.is_null) return BAT::Make(PhysType::kOid);
  double l = lo.AsDouble();
  double h = hi.AsDouble();
  if (cands == nullptr && b.order_index() != nullptr) {
    BATPtr via_index =
        RangeSelectViaIndex(b, *b.order_index(), l, h, lo_incl, hi_incl);
    if (via_index != nullptr) return via_index;
  }
  auto pred = [l, h, lo_incl, hi_incl](double v) {
    bool ge = lo_incl ? v >= l : v > l;
    bool le = hi_incl ? v <= h : v < h;
    return ge && le;
  };
  switch (b.type()) {
    case PhysType::kInt:
      return ScanSelect(b.ints(), cands,
                        [&](int32_t v) { return pred(static_cast<double>(v)); });
    case PhysType::kLng:
      return ScanSelect(b.lngs(), cands,
                        [&](int64_t v) { return pred(static_cast<double>(v)); });
    case PhysType::kDbl:
      return ScanSelect(b.dbls(), cands, pred);
    case PhysType::kBit:
      return ScanSelect(b.bits(), cands,
                        [&](uint8_t v) { return pred(static_cast<double>(v)); });
    default:
      return Status::TypeMismatch("RangeSelect: unsupported type");
  }
}

Result<BATPtr> NullSelect(const BAT& b, const BAT* cands, bool select_null) {
  if (cands != nullptr && cands->Count() != b.Count()) {
    return Status::Internal("NullSelect: candidates misaligned with input");
  }
  return FilterSelect(b.Count(), cands, [&b, select_null](size_t i) {
    return b.IsNullAt(i) == select_null;
  });
}

}  // namespace gdk
}  // namespace sciql
