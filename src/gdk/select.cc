#include "src/common/string_util.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Emit the absolute oid for aligned position i: either i itself or an
// indirect lookup through the candidate list.
inline oid_t ResolveOid(const BAT* cands, size_t i) {
  return cands == nullptr ? static_cast<oid_t>(i) : cands->oids()[i];
}

template <typename T, typename Pred>
BATPtr ScanSelect(const std::vector<T>& data, const BAT* cands, Pred pred) {
  auto out = BAT::Make(PhysType::kOid);
  size_t n = data.size();
  out->Reserve(n / 4);
  for (size_t i = 0; i < n; ++i) {
    const T& v = data[i];
    if (TypeTraits<T>::IsNil(v)) continue;
    if (pred(v)) out->oids().push_back(ResolveOid(cands, i));
  }
  return out;
}

template <typename T>
bool ApplyCmp(CmpOp op, const T& a, const T& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<BATPtr> BoolSelect(const BAT& bits, const BAT* cands) {
  if (bits.type() != PhysType::kBit) {
    return Status::TypeMismatch("BoolSelect expects a bit BAT");
  }
  if (cands != nullptr && cands->Count() != bits.Count()) {
    return Status::Internal(
        StrFormat("BoolSelect: candidate count %zu != bits count %zu",
                  cands->Count(), bits.Count()));
  }
  auto out = BAT::Make(PhysType::kOid);
  const auto& v = bits.bits();
  out->Reserve(v.size() / 4);
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == 1) out->oids().push_back(ResolveOid(cands, i));
  }
  return out;
}

Result<BATPtr> ThetaSelect(const BAT& b, const BAT* cands, CmpOp op,
                           const ScalarValue& sv) {
  if (cands != nullptr && cands->Count() != b.Count()) {
    return Status::Internal("ThetaSelect: candidates misaligned with input");
  }
  if (sv.is_null) {
    // Comparison with NULL never matches.
    return BAT::Make(PhysType::kOid);
  }
  switch (b.type()) {
    case PhysType::kInt: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kInt));
      int32_t x = static_cast<int32_t>(c.i);
      return ScanSelect(b.ints(), cands,
                        [op, x](int32_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kLng: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kLng));
      int64_t x = c.i;
      return ScanSelect(b.lngs(), cands,
                        [op, x](int64_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kDbl: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kDbl));
      double x = c.d;
      return ScanSelect(b.dbls(), cands,
                        [op, x](double v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kBit: {
      SCIQL_ASSIGN_OR_RETURN(ScalarValue c, CastScalar(sv, PhysType::kBit));
      uint8_t x = static_cast<uint8_t>(c.i);
      return ScanSelect(b.bits(), cands,
                        [op, x](uint8_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kOid: {
      oid_t x = static_cast<oid_t>(sv.i);
      return ScanSelect(b.oids(), cands,
                        [op, x](oid_t v) { return ApplyCmp(op, v, x); });
    }
    case PhysType::kStr: {
      if (sv.type != PhysType::kStr) {
        return Status::TypeMismatch("string theta-select needs a str scalar");
      }
      auto out = BAT::Make(PhysType::kOid);
      for (size_t i = 0; i < b.Count(); ++i) {
        if (b.IsNullAt(i)) continue;
        std::string_view v = b.GetStr(i);
        bool match = false;
        switch (op) {
          case CmpOp::kEq:
            match = v == sv.s;
            break;
          case CmpOp::kNe:
            match = v != sv.s;
            break;
          case CmpOp::kLt:
            match = v < sv.s;
            break;
          case CmpOp::kLe:
            match = v <= sv.s;
            break;
          case CmpOp::kGt:
            match = v > sv.s;
            break;
          case CmpOp::kGe:
            match = v >= sv.s;
            break;
        }
        if (match) out->oids().push_back(ResolveOid(cands, i));
      }
      return out;
    }
  }
  return Status::Internal("unreachable theta-select type");
}

Result<BATPtr> RangeSelect(const BAT& b, const BAT* cands,
                           const ScalarValue& lo, const ScalarValue& hi,
                           bool lo_incl, bool hi_incl) {
  if (!IsNumeric(b.type())) {
    return Status::TypeMismatch("RangeSelect expects a numeric BAT");
  }
  if (lo.is_null || hi.is_null) return BAT::Make(PhysType::kOid);
  double l = lo.AsDouble();
  double h = hi.AsDouble();
  auto pred = [l, h, lo_incl, hi_incl](double v) {
    bool ge = lo_incl ? v >= l : v > l;
    bool le = hi_incl ? v <= h : v < h;
    return ge && le;
  };
  switch (b.type()) {
    case PhysType::kInt:
      return ScanSelect(b.ints(), cands,
                        [&](int32_t v) { return pred(static_cast<double>(v)); });
    case PhysType::kLng:
      return ScanSelect(b.lngs(), cands,
                        [&](int64_t v) { return pred(static_cast<double>(v)); });
    case PhysType::kDbl:
      return ScanSelect(b.dbls(), cands, pred);
    case PhysType::kBit:
      return ScanSelect(b.bits(), cands,
                        [&](uint8_t v) { return pred(static_cast<double>(v)); });
    default:
      return Status::TypeMismatch("RangeSelect: unsupported type");
  }
}

Result<BATPtr> NullSelect(const BAT& b, const BAT* cands, bool select_null) {
  if (cands != nullptr && cands->Count() != b.Count()) {
    return Status::Internal("NullSelect: candidates misaligned with input");
  }
  auto out = BAT::Make(PhysType::kOid);
  for (size_t i = 0; i < b.Count(); ++i) {
    if (b.IsNullAt(i) == select_null) {
      out->oids().push_back(ResolveOid(cands, i));
    }
  }
  return out;
}

}  // namespace gdk
}  // namespace sciql
