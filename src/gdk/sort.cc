#include <algorithm>
#include <numeric>

#include "src/common/string_util.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Three-way compare of rows i and j of one key column; nil sorts smallest.
int CompareAt(const BAT& b, size_t i, size_t j) {
  bool ni = b.IsNullAt(i);
  bool nj = b.IsNullAt(j);
  if (ni || nj) return (ni ? 0 : 1) - (nj ? 0 : 1);
  switch (b.type()) {
    case PhysType::kBit: {
      uint8_t a = b.bits()[i], c = b.bits()[j];
      return (a > c) - (a < c);
    }
    case PhysType::kInt: {
      int32_t a = b.ints()[i], c = b.ints()[j];
      return (a > c) - (a < c);
    }
    case PhysType::kLng: {
      int64_t a = b.lngs()[i], c = b.lngs()[j];
      return (a > c) - (a < c);
    }
    case PhysType::kDbl: {
      double a = b.dbls()[i], c = b.dbls()[j];
      return (a > c) - (a < c);
    }
    case PhysType::kOid: {
      oid_t a = b.oids()[i], c = b.oids()[j];
      return (a > c) - (a < c);
    }
    case PhysType::kStr: {
      auto a = b.GetStr(i);
      auto c = b.GetStr(j);
      return a.compare(c) > 0 ? 1 : (a == c ? 0 : -1);
    }
  }
  return 0;
}

}  // namespace

Result<BATPtr> OrderIndex(const std::vector<const BAT*>& keys,
                          const std::vector<bool>& desc) {
  if (keys.empty()) return Status::InvalidArgument("OrderIndex: no keys");
  if (keys.size() != desc.size()) {
    return Status::Internal("OrderIndex: keys/desc size mismatch");
  }
  size_t n = keys[0]->Count();
  for (const BAT* k : keys) {
    if (k->Count() != n) {
      return Status::Internal("OrderIndex: key columns misaligned");
    }
  }
  auto out = BAT::Make(PhysType::kOid);
  auto& idx = out->oids();
  idx.resize(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](oid_t a, oid_t c) {
    for (size_t k = 0; k < keys.size(); ++k) {
      int cmp = CompareAt(*keys[k], a, c);
      if (cmp != 0) return desc[k] ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  return out;
}

}  // namespace gdk
}  // namespace sciql
