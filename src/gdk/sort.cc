// Parallel sort & order-index subsystem.
//
// OrderIndex partitions the row ids into fixed morsels, sorts every morsel
// concurrently and combines the sorted runs with a binary merge tree whose
// shape depends only on (n, grain). Because the comparator is a total order
// (the row id breaks every tie), the result is the unique stable sort
// permutation, so any combination order — and therefore any thread count —
// produces bit-identical output (the same contract as the other
// morsel-parallel kernels; see docs/execution.md).
//
// Typed fast paths avoid per-comparison type dispatch: each numeric key
// column is pre-encoded into an order-preserving uint64 sort key (nil maps
// below every value, matching MonetDB's "nil is smallest"), and string
// columns are pre-decoded into string_views with a nil flag.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string_view>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Order-preserving uint64 encodings. Nil maps to 0 and every non-nil value
// maps strictly above it. Doubles collapse -0.0 onto 0.0 so key equality
// matches operator== (ties stay ties and stability decides, exactly like a
// three-way value compare would).
inline uint64_t SortKey(uint8_t v) {
  return v == kBitNil ? 0 : 1 + static_cast<uint64_t>(v);
}
inline uint64_t SortKey(int32_t v) {
  // kIntNil (INT32_MIN) lands below every other int32 after the sign flip.
  return static_cast<uint64_t>(static_cast<int64_t>(v)) ^ (1ull << 63);
}
inline uint64_t SortKey(int64_t v) {
  // kLngNil (INT64_MIN) maps to 0.
  return static_cast<uint64_t>(v) ^ (1ull << 63);
}
inline uint64_t SortKey(double v) {
  if (IsDblNil(v)) return 0;
  double d = v == 0.0 ? 0.0 : v;  // -0.0 ties with 0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  // Flip negatives entirely, set the sign bit on non-negatives: total order
  // matching double <. No non-nil value can map to 0 (that would be a NaN).
  return (bits & (1ull << 63)) ? ~bits : bits | (1ull << 63);
}
inline uint64_t SortKey(uint64_t v) {
  return v == kOidNil ? 0 : v + 1;  // non-nil oids are < kOidNil, no overflow
}

// One prepared key column: numeric columns carry pre-encoded sort keys,
// string columns carry decoded views plus a nil flag.
struct SortCol {
  bool desc = false;
  bool is_str = false;
  std::vector<uint64_t> keys;            // numeric encoding (empty for str)
  std::vector<std::string_view> strs;    // decoded string payloads
  std::vector<uint8_t> nils;             // str nil flags

  // Three-way compare of rows a and b in this column's ascending order.
  int Compare(oid_t a, oid_t b) const {
    if (!is_str) {
      uint64_t ka = keys[a], kb = keys[b];
      return (ka > kb) - (ka < kb);
    }
    int na = nils[a] ? 0 : 1;
    int nb = nils[b] ? 0 : 1;
    if (na == 0 || nb == 0) return na - nb;
    int cmp = strs[a].compare(strs[b]);
    return (cmp > 0) - (cmp < 0);
  }
};

template <typename T>
void EncodeKeys(const std::vector<T>& v, std::vector<uint64_t>* keys) {
  keys->resize(v.size());
  ParallelRows(v.size(), kMorselRows, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) (*keys)[i] = SortKey(v[i]);
    return Status::OK();
  });
}

SortCol PrepareCol(const BAT& b, bool desc) {
  SortCol col;
  col.desc = desc;
  switch (b.type()) {
    case PhysType::kBit:
      EncodeKeys(b.bits(), &col.keys);
      break;
    case PhysType::kInt:
      EncodeKeys(b.ints(), &col.keys);
      break;
    case PhysType::kLng:
      EncodeKeys(b.lngs(), &col.keys);
      break;
    case PhysType::kDbl:
      EncodeKeys(b.dbls(), &col.keys);
      break;
    case PhysType::kOid:
      EncodeKeys(b.oids(), &col.keys);
      break;
    case PhysType::kStr: {
      col.is_str = true;
      size_t n = b.Count();
      col.strs.resize(n);
      col.nils.resize(n);
      ParallelRows(n, kMorselRows, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          col.nils[i] = b.IsNullAt(i) ? 1 : 0;
          col.strs[i] = col.nils[i] ? std::string_view() : b.GetStr(i);
        }
        return Status::OK();
      });
      break;
    }
  }
  return col;
}

// Sort the permutation `idx` with the total order `less`: parallel
// morsel-local sorts, then a binary merge tree over the runs. Both the
// morsel boundaries and the tree shape depend only on (n, grain), and
// `less` is total, so the result equals a sequential std::sort.
template <typename Less>
void ParallelSortPermutation(std::vector<oid_t>* idx, const Less& less) {
  size_t n = idx->size();
  size_t nmorsels = MorselCount(n, kMorselRows);
  auto first = idx->begin();
  if (nmorsels <= 1 || ThreadPool::Get().thread_count() <= 1) {
    std::sort(first, idx->end(), less);
    return;
  }
  auto& pool = ThreadPool::Get();
  pool.ParallelFor(n, kMorselRows, [&](size_t, size_t begin, size_t end) {
    std::sort(first + begin, first + end, less);
  });
  for (size_t width = kMorselRows; width < n; width *= 2) {
    size_t npairs = (n + 2 * width - 1) / (2 * width);
    pool.ParallelFor(npairs, 1, [&](size_t, size_t pb, size_t pe) {
      for (size_t p = pb; p < pe; ++p) {
        size_t lo = p * 2 * width;
        size_t mid = std::min(n, lo + width);
        size_t hi = std::min(n, lo + 2 * width);
        if (mid < hi) {
          std::inplace_merge(first + lo, first + mid, first + hi, less);
        }
      }
    });
  }
}

// Invoke `fn` with the total-order comparator for the prepared key columns:
// a single numeric key compares its uint64 encodings directly, everything
// else walks the column list; the row id breaks every tie. The one factory
// serves both the full sort and FirstN, so the top-k contract ("FirstN ==
// sort + slice, bit for bit") cannot drift between two comparator copies.
template <typename Fn>
auto WithComparator(const std::vector<SortCol>& cols, Fn fn) {
  if (cols.size() == 1 && !cols[0].is_str) {
    const std::vector<uint64_t>& k = cols[0].keys;
    if (!cols[0].desc) {
      return fn([&k](oid_t a, oid_t b) {
        return k[a] != k[b] ? k[a] < k[b] : a < b;
      });
    }
    return fn([&k](oid_t a, oid_t b) {
      return k[a] != k[b] ? k[a] > k[b] : a < b;
    });
  }
  return fn([&cols](oid_t a, oid_t b) {
    for (const SortCol& c : cols) {
      int cmp = c.Compare(a, b);
      if (cmp != 0) return c.desc ? cmp > 0 : cmp < 0;
    }
    return a < b;
  });
}

// Sort [0, n) by the prepared key columns, stable (row id breaks ties).
std::vector<oid_t> SortedPermutation(size_t n,
                                     const std::vector<SortCol>& cols) {
  std::vector<oid_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  WithComparator(cols, [&idx](const auto& less) {
    ParallelSortPermutation(&idx, less);
  });
  return idx;
}

// Append the rows of [begin, end) that belong to the k smallest under
// `less`, maintained as a max-heap (heap top = worst retained row, evicted
// when a better row arrives). The retained set is exactly the morsel's
// first k under the total order, so it does not depend on scheduling.
template <typename Less>
void BoundedTopK(size_t begin, size_t end, size_t k, const Less& less,
                 std::vector<oid_t>* heap) {
  std::vector<oid_t>& h = *heap;
  for (size_t i = begin; i < end; ++i) {
    oid_t row = static_cast<oid_t>(i);
    if (h.size() < k) {
      h.push_back(row);
      std::push_heap(h.begin(), h.end(), less);
    } else if (less(row, h.front())) {
      std::pop_heap(h.begin(), h.end(), less);
      h.back() = row;
      std::push_heap(h.begin(), h.end(), less);
    }
  }
}

// First k rows of the stable sort order over [0, n): per-morsel bounded
// heaps, then one sort of the candidate union (<= k rows per morsel, and
// every global top-k row is some morsel's top-k row). Morsel boundaries are
// fixed by (n, grain) and `less` is total, so the candidate set and the
// final first-k are unique — bit-identical at any thread count.
template <typename Less>
std::vector<oid_t> FirstNPermutation(size_t n, size_t k, const Less& less) {
  size_t nmorsels = MorselCount(n, kMorselRows);
  std::vector<oid_t> cand;
  if (nmorsels <= 1 || ThreadPool::Get().thread_count() <= 1) {
    cand.reserve(std::min(n, k));
    BoundedTopK(0, n, k, less, &cand);
  } else {
    std::vector<std::vector<oid_t>> parts(nmorsels);
    ThreadPool::Get().ParallelFor(
        n, kMorselRows, [&](size_t m, size_t begin, size_t end) {
          parts[m].reserve(std::min(end - begin, k));
          BoundedTopK(begin, end, k, less, &parts[m]);
        });
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    cand.reserve(total);
    for (const auto& p : parts) cand.insert(cand.end(), p.begin(), p.end());
  }
  std::sort(cand.begin(), cand.end(), less);
  if (cand.size() > k) cand.resize(k);
  return cand;
}

// First k of the prepared key columns, through the shared comparator
// factory (the exact order SortedPermutation uses).
std::vector<oid_t> FirstNOfCols(size_t n, size_t k,
                                const std::vector<SortCol>& cols) {
  return WithComparator(cols, [n, k](const auto& less) {
    return FirstNPermutation(n, k, less);
  });
}

// Key-tuple equality of rows a and b: the sort's tie relation, through the
// shared nil-first tuple comparator.
bool RowsTie(const std::vector<const BAT*>& keys, oid_t a, oid_t b) {
  return CompareKeyRows(keys, a, keys, b) == 0;
}

// The stable permutation of the negated spec, derived from the canonical
// index `asc` in O(n) without sorting: equal-key runs reverse as blocks
// while keeping ascending row ids inside each run (ties keep first-arrival
// order under either direction, because flipping every key negates the
// order of distinct key classes but leaves the row-id tie-break alone). In
// particular the nil block — nil is smallest — relocates from the head to
// the tail, so a descending sort emits nils last. Emission stops once
// `limit` rows are out (whole runs are emitted, then truncated).
std::vector<oid_t> ReversedRuns(const std::vector<const BAT*>& keys,
                                const std::vector<oid_t>& asc,
                                size_t limit = SIZE_MAX) {
  std::vector<oid_t> out;
  out.reserve(std::min(asc.size(), limit));
  size_t end = asc.size();
  while (end > 0 && out.size() < limit) {
    size_t start = end - 1;
    while (start > 0 && RowsTie(keys, asc[start - 1], asc[start])) --start;
    out.insert(out.end(), asc.begin() + static_cast<ptrdiff_t>(start),
               asc.begin() + static_cast<ptrdiff_t>(end));
    end = start;
  }
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<bool> NegateSpec(const std::vector<bool>& desc) {
  std::vector<bool> out(desc.size());
  for (size_t i = 0; i < desc.size(); ++i) out[i] = !desc[i];
  return out;
}

// Look up the cached index serving `keys`/`desc`: the canonical spec's
// entry (single-key ascending lives on BAT::order_index, multi-key in the
// keyed cache). Sets *negated when the caller must run-reverse it.
OrderIndexPtr LookupCachedSpec(const std::vector<const BAT*>& keys,
                               const std::vector<bool>& desc, bool* negated) {
  *negated = desc[0];
  const std::vector<bool> canon = desc[0] ? NegateSpec(desc) : desc;
  if (keys.size() == 1) return keys[0]->order_index();
  return keys[0]->FindOrderIndexSpec(keys, canon);
}

void CountSpecEvent(std::atomic<uint64_t> KernelTelemetry::*total,
                    std::atomic<uint64_t> KernelTelemetry::*multi,
                    size_t nkeys) {
  Telemetry().*total += 1;
  if (nkeys > 1) Telemetry().*multi += 1;
}

}  // namespace

KernelTelemetry& Telemetry() {
  static KernelTelemetry t;
  return t;
}

const std::vector<TelemetryField>& TelemetryFields() {
  static const auto* fields = new std::vector<TelemetryField>{
      {"joins_hash", "hash build + probe joins",
       &KernelTelemetry::joins_hash, &TelemetrySnapshot::joins_hash},
      {"joins_indexed_probe", "one-sided index joins",
       &KernelTelemetry::joins_indexed_probe,
       &TelemetrySnapshot::joins_indexed_probe},
      {"joins_merge", "both-sides-indexed merge joins",
       &KernelTelemetry::joins_merge, &TelemetrySnapshot::joins_merge},
      {"joins_merge_str", "merge joins that were string-keyed",
       &KernelTelemetry::joins_merge_str, &TelemetrySnapshot::joins_merge_str},
      {"joins_merge_multi", "merge joins that were multi-key",
       &KernelTelemetry::joins_merge_multi,
       &TelemetrySnapshot::joins_merge_multi},
      {"firstn_index_window", "top-k served by an index head copy",
       &KernelTelemetry::firstn_index_window,
       &TelemetrySnapshot::firstn_index_window},
      {"firstn_heap", "top-k via per-morsel heaps",
       &KernelTelemetry::firstn_heap, &TelemetrySnapshot::firstn_heap},
      {"firstn_sort_fallback", "top-k via full sort (k >= n/2)",
       &KernelTelemetry::firstn_sort_fallback,
       &TelemetrySnapshot::firstn_sort_fallback},
      {"minmax_index", "MIN/MAX answered from index endpoints",
       &KernelTelemetry::minmax_index, &TelemetrySnapshot::minmax_index},
      {"order_index_built", "order indexes sorted anew",
       &KernelTelemetry::order_index_built,
       &TelemetrySnapshot::order_index_built},
      {"order_index_built_multi", "order index builds that were multi-key",
       &KernelTelemetry::order_index_built_multi,
       &TelemetrySnapshot::order_index_built_multi},
      {"order_index_loaded", "order indexes adopted from disk",
       &KernelTelemetry::order_index_loaded,
       &TelemetrySnapshot::order_index_loaded},
      {"order_index_loaded_multi", "order index loads that were multi-key",
       &KernelTelemetry::order_index_loaded_multi,
       &TelemetrySnapshot::order_index_loaded_multi},
      {"order_index_reused", "exact-spec order-index cache hits",
       &KernelTelemetry::order_index_reused,
       &TelemetrySnapshot::order_index_reused},
      {"order_index_reused_multi", "order index reuses that were multi-key",
       &KernelTelemetry::order_index_reused_multi,
       &TelemetrySnapshot::order_index_reused_multi},
      {"order_index_reversed", "ORDER BY served by run reversal",
       &KernelTelemetry::order_index_reversed,
       &TelemetrySnapshot::order_index_reversed},
      {"order_index_reversed_multi", "run reversals that were multi-key",
       &KernelTelemetry::order_index_reversed_multi,
       &TelemetrySnapshot::order_index_reversed_multi},
  };
  return *fields;
}

TelemetrySnapshot CaptureTelemetry() {
  TelemetrySnapshot s;
  const KernelTelemetry& t = Telemetry();
  for (const TelemetryField& f : TelemetryFields()) {
    s.*f.snap = (t.*f.live).load(std::memory_order_relaxed);
  }
  return s;
}

TelemetrySnapshot DeltaSince(const TelemetrySnapshot& base) {
  TelemetrySnapshot s = CaptureTelemetry();
  for (const TelemetryField& f : TelemetryFields()) {
    s.*f.snap -= base.*f.snap;
  }
  return s;
}

KernelControls& Controls() {
  static KernelControls c;
  return c;
}

namespace {

// Nil-first three-way compare of one key cell across two BATs of the same
// type (-0.0 ties 0.0 through plain double compares — NaN rows are caught
// by the nil checks first; string content compares through the decoded
// views, never heap offsets).
int CompareKeyCell(const BAT& a, oid_t ai, const BAT& b, oid_t bi) {
  bool an = a.IsNullAt(ai);
  bool bn = b.IsNullAt(bi);
  if (an || bn) return (an ? 0 : 1) - (bn ? 0 : 1);
  switch (a.type()) {
    case PhysType::kBit: {
      uint8_t av = a.bits()[ai], bv = b.bits()[bi];
      return (av > bv) - (av < bv);
    }
    case PhysType::kInt: {
      int32_t av = a.ints()[ai], bv = b.ints()[bi];
      return (av > bv) - (av < bv);
    }
    case PhysType::kLng: {
      int64_t av = a.lngs()[ai], bv = b.lngs()[bi];
      return (av > bv) - (av < bv);
    }
    case PhysType::kDbl: {
      double av = a.dbls()[ai], bv = b.dbls()[bi];
      return (av > bv) - (av < bv);
    }
    case PhysType::kOid: {
      uint64_t av = a.oids()[ai], bv = b.oids()[bi];
      return (av > bv) - (av < bv);
    }
    case PhysType::kStr:
      return a.GetStr(ai).compare(b.GetStr(bi));
  }
  return 0;
}

}  // namespace

int CompareKeyRows(const std::vector<const BAT*>& akeys, oid_t ai,
                   const std::vector<const BAT*>& bkeys, oid_t bi) {
  for (size_t k = 0; k < akeys.size(); ++k) {
    int c = CompareKeyCell(*akeys[k], ai, *bkeys[k], bi);
    if (c != 0) return c;
  }
  return 0;
}

Result<BATPtr> FirstN(const std::vector<const BAT*>& keys,
                      const std::vector<bool>& desc, size_t k) {
  if (keys.empty()) return Status::InvalidArgument("FirstN: no keys");
  if (keys.size() != desc.size()) {
    return Status::Internal("FirstN: keys/desc size mismatch");
  }
  size_t n = keys[0]->Count();
  for (const BAT* key : keys) {
    if (key->Count() != n) {
      return Status::Internal("FirstN: key columns misaligned");
    }
  }
  auto out = BAT::Make(PhysType::kOid);
  if (k == 0 || n == 0) return out;

  // A live persistent index for the spec (or its negation) already holds
  // the answer: copy its head — O(k) for an exact hit, O(n) run reversal
  // for the negated spec, never a sort. (Only a cached index is used —
  // building one here would be the full sort this kernel exists to avoid.)
  if (Controls().use_index_paths) {
    bool negated = false;
    OrderIndexPtr cached = LookupCachedSpec(keys, desc, &negated);
    if (cached != nullptr) {
      if (negated) {
        out->oids() = ReversedRuns(keys, *cached, k);
      } else {
        out->oids().assign(
            cached->begin(),
            cached->begin() + static_cast<ptrdiff_t>(std::min(k, n)));
      }
      Telemetry().firstn_index_window++;
      return out;
    }
  }

  // Large k degenerates to the full sort: at k >= n/2 the heaps would
  // retain most rows while adding per-row maintenance, and on multi-morsel
  // inputs a k approaching the morsel grain makes every morsel keep nearly
  // all of its rows — the candidate union stops shrinking the problem and
  // its final sort runs sequentially. Data-shape gates, so the chosen path
  // (and thus the bit pattern) never depends on threads. (The result is
  // the unique first-k either way; the gates only pick the cheaper route.)
  if (k >= (n + 1) / 2 ||
      (MorselCount(n, kMorselRows) > 1 && k >= kMorselRows / 4)) {
    Telemetry().firstn_sort_fallback++;
    SCIQL_ASSIGN_OR_RETURN(BATPtr idx, OrderIndex(keys, desc));
    if (idx->Count() <= k) return idx;
    out->oids().assign(idx->oids().begin(),
                       idx->oids().begin() + static_cast<ptrdiff_t>(k));
    return out;
  }

  std::vector<SortCol> cols;
  cols.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    cols.push_back(PrepareCol(*keys[i], desc[i]));
  }
  out->oids() = FirstNOfCols(n, k, cols);
  Telemetry().firstn_heap++;
  return out;
}

Result<OrderIndexPtr> EnsureOrderIndex(const BAT& b) {
  if (b.order_index() != nullptr) {
    Telemetry().order_index_reused++;
    return b.order_index();
  }
  std::vector<SortCol> cols;
  cols.push_back(PrepareCol(b, /*desc=*/false));
  auto idx = std::make_shared<std::vector<oid_t>>(
      SortedPermutation(b.Count(), cols));
  Telemetry().order_index_built++;
  b.SetOrderIndex(idx);
  return OrderIndexPtr(std::move(idx));
}

Result<OrderIndexPtr> EnsureOrderIndexSpec(const std::vector<BATPtr>& keys,
                                           const std::vector<bool>& desc) {
  if (keys.empty()) {
    return Status::InvalidArgument("EnsureOrderIndexSpec: no keys");
  }
  if (keys.size() != desc.size()) {
    return Status::Internal("EnsureOrderIndexSpec: keys/desc size mismatch");
  }
  size_t n = keys[0]->Count();
  std::vector<const BAT*> raw;
  raw.reserve(keys.size());
  for (const BATPtr& k : keys) {
    if (k == nullptr || k->Count() != n) {
      return Status::Internal("EnsureOrderIndexSpec: key columns misaligned");
    }
    raw.push_back(k.get());
  }
  // Only the canonical spec (primary ascending) is built and cached; the
  // negated spec is derived from it by run reversal below.
  const bool negate = desc[0];
  const std::vector<bool> canon = negate ? NegateSpec(desc) : desc;
  OrderIndexPtr idx;
  if (keys.size() == 1) {
    SCIQL_ASSIGN_OR_RETURN(idx, EnsureOrderIndex(*keys[0]));
  } else {
    idx = keys[0]->FindOrderIndexSpec(raw, canon);
    if (idx != nullptr) {
      CountSpecEvent(&KernelTelemetry::order_index_reused,
                     &KernelTelemetry::order_index_reused_multi, keys.size());
    } else {
      std::vector<SortCol> cols;
      cols.reserve(keys.size());
      for (size_t k = 0; k < keys.size(); ++k) {
        cols.push_back(PrepareCol(*raw[k], canon[k]));
      }
      idx = std::make_shared<const std::vector<oid_t>>(
          SortedPermutation(n, cols));
      keys[0]->CacheOrderIndexSpec(
          std::vector<BATPtr>(keys.begin() + 1, keys.end()), canon, idx);
      CountSpecEvent(&KernelTelemetry::order_index_built,
                     &KernelTelemetry::order_index_built_multi, keys.size());
    }
  }
  if (!negate) return idx;
  CountSpecEvent(&KernelTelemetry::order_index_reversed,
                 &KernelTelemetry::order_index_reversed_multi, keys.size());
  return std::make_shared<const std::vector<oid_t>>(ReversedRuns(raw, *idx));
}

OrderIndexPtr FindPrimaryOrderIndex(const BAT& b, bool* multi_key) {
  if (multi_key != nullptr) *multi_key = false;
  if (b.order_index() != nullptr) return b.order_index();
  for (const OrderIndexView& v : b.LiveOrderIndexes()) {
    // Canonical entries only: primary is ascending, nil-first.
    if (multi_key != nullptr) *multi_key = v.keys.size() > 1;
    return v.idx;
  }
  return nullptr;
}

bool ValidateOrderIndexSpec(const std::vector<const BAT*>& keys,
                            const std::vector<bool>& desc,
                            const std::vector<oid_t>& idx) {
  if (keys.empty() || keys.size() != desc.size()) return false;
  size_t n = keys[0]->Count();
  for (const BAT* k : keys) {
    if (k->Count() != n) return false;
  }
  if (idx.size() != n) return false;
  // Permutation check first so the comparator below only sees in-range rows.
  std::vector<bool> seen(n, false);
  for (oid_t o : idx) {
    if (o >= n || seen[o]) return false;
    seen[o] = true;
  }
  if (n < 2) return true;
  // The total order (row id breaks ties) admits exactly one sorted
  // permutation, so adjacent strict ordering proves idx is it.
  std::vector<SortCol> cols;
  cols.reserve(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    cols.push_back(PrepareCol(*keys[k], desc[k]));
  }
  return WithComparator(cols, [&idx, n](const auto& less) {
    for (size_t i = 1; i < n; ++i) {
      if (!less(idx[i - 1], idx[i])) return false;
    }
    return true;
  });
}

bool ValidateOrderIndex(const BAT& b, const std::vector<oid_t>& idx) {
  return ValidateOrderIndexSpec({&b}, {false}, idx);
}

Result<BATPtr> OrderIndex(const std::vector<const BAT*>& keys,
                          const std::vector<bool>& desc) {
  if (keys.empty()) return Status::InvalidArgument("OrderIndex: no keys");
  if (keys.size() != desc.size()) {
    return Status::Internal("OrderIndex: keys/desc size mismatch");
  }
  size_t n = keys[0]->Count();
  for (const BAT* k : keys) {
    if (k->Count() != n) {
      return Status::Internal("OrderIndex: key columns misaligned");
    }
  }
  auto out = BAT::Make(PhysType::kOid);
  if (keys.size() == 1) {
    // Single key: the persistent order index is the canonical (ascending)
    // permutation — reuse or build-and-cache it; a descending spec derives
    // from it by run reversal instead of a second sort.
    SCIQL_ASSIGN_OR_RETURN(OrderIndexPtr idx, EnsureOrderIndex(*keys[0]));
    if (desc[0]) {
      Telemetry().order_index_reversed++;
      out->oids() = ReversedRuns(keys, *idx);
    } else {
      out->oids() = *idx;
    }
    return out;
  }
  // Multi-key: serve from a live keyed cache entry when one matches the
  // spec (exactly, or as its negation — run reversal). Misses sort without
  // caching: only the BATPtr-based EnsureOrderIndexSpec can safely retain
  // references to the secondary key columns.
  {
    bool negated = false;
    OrderIndexPtr cached = LookupCachedSpec(keys, desc, &negated);
    if (cached != nullptr) {
      if (negated) {
        CountSpecEvent(&KernelTelemetry::order_index_reversed,
                       &KernelTelemetry::order_index_reversed_multi,
                       keys.size());
        out->oids() = ReversedRuns(keys, *cached);
      } else {
        CountSpecEvent(&KernelTelemetry::order_index_reused,
                       &KernelTelemetry::order_index_reused_multi,
                       keys.size());
        out->oids() = *cached;
      }
      return out;
    }
  }
  std::vector<SortCol> cols;
  cols.reserve(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    cols.push_back(PrepareCol(*keys[k], desc[k]));
  }
  out->oids() = SortedPermutation(n, cols);
  return out;
}

Result<BATPtr> SortBat(const BAT& b, bool desc) {
  SCIQL_ASSIGN_OR_RETURN(BATPtr idx, OrderIndex({&b}, {desc}));
  return Project(b, *idx);
}

}  // namespace gdk
}  // namespace sciql
