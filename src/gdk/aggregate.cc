#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return "count";
    case AggOp::kCountStar:
      return "count_star";
    case AggOp::kSum:
      return "sum";
    case AggOp::kAvg:
      return "avg";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
  }
  return "?";
}

namespace {

// Parallel grouped accumulation keeps one accumulator array per morsel;
// above this group count the per-morsel arrays would dominate, so the kernel
// falls back to one sequential pass. Both gates depend only on the data
// shape (never the thread count), so results stay deterministic.
constexpr size_t kMaxParallelGroups = 8192;

// Cap on partial-accumulator arrays: the grain grows with n so that at most
// this many per-morsel partials exist, bounding the extra memory and merge
// work at O(kMaxAggPartials * ngroups) regardless of input size.
constexpr size_t kMaxAggPartials = 64;

// Value-order compare of two non-nil rows of the same BAT, matching the
// sort-key order (-0.0 ties 0.0 via plain double <). Used to locate tie-run
// boundaries along an order index; exact for every type (no widening).
bool RowValueLess(const BAT& v, oid_t a, oid_t b) {
  switch (v.type()) {
    case PhysType::kBit:
      return v.bits()[a] < v.bits()[b];
    case PhysType::kInt:
      return v.ints()[a] < v.ints()[b];
    case PhysType::kLng:
      return v.lngs()[a] < v.lngs()[b];
    case PhysType::kDbl:
      return v.dbls()[a] < v.dbls()[b];
    case PhysType::kOid:
      return v.oids()[a] < v.oids()[b];
    case PhysType::kStr:
      return v.GetStr(a) < v.GetStr(b);
  }
  return false;
}

size_t AggGrain(size_t n) {
  size_t grain = kMorselRows;
  if (n / grain >= kMaxAggPartials) {
    grain = (n + kMaxAggPartials - 1) / kMaxAggPartials;
  }
  return grain;
}

// Total order on doubles for MIN/MAX selection, matching the sort-key
// encoding in sort.cc: NaN (the dbl nil) below every value, -0.0 tying with
// 0.0. The accumulation loops filter nil rows, so no NaN should reach these
// compares — but a plain `<` would make the result depend on where a stray
// NaN sits (a first-arriving NaN poisons the accumulator forever, a later
// one is never selected). Routing every min/max compare through a total
// order keeps the aggregate a pure function of the value multiset.
inline bool DblTotalLess(double a, double b) {
  if (std::isnan(a)) return !std::isnan(b);
  if (std::isnan(b)) return false;
  return a < b;
}

// Accumulators per group: sums in double and int64 (exact for integers),
// counts, and typed min/max tracked as ScalarValue-free primitives.
struct Accum {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  double dmin = 0.0;
  double dmax = 0.0;
  int64_t imin = 0;
  int64_t imax = 0;
  bool any = false;
};

template <typename T>
void AccumulateRange(const std::vector<T>& vals,
                     const std::vector<oid_t>& gids, size_t begin, size_t end,
                     std::vector<Accum>* accs) {
  for (size_t i = begin; i < end; ++i) {
    const T& v = vals[i];
    if (TypeTraits<T>::IsNil(v)) continue;
    Accum& a = (*accs)[gids[i]];
    a.count++;
    if constexpr (std::is_same_v<T, double>) {
      a.dsum += v;
      if (!a.any || DblTotalLess(v, a.dmin)) a.dmin = v;
      if (!a.any || DblTotalLess(a.dmax, v)) a.dmax = v;
    } else {
      int64_t x = static_cast<int64_t>(v);
      // Integer SUM wraps mod 2^64 (types.h): wraparound is associative, so
      // per-morsel partials merged in any grouping give the same total —
      // the property that keeps SUM bit-identical at every thread count.
      a.isum = WrapAdd(a.isum, x);
      a.dsum += static_cast<double>(x);
      if (!a.any || x < a.imin) a.imin = x;
      if (!a.any || x > a.imax) a.imax = x;
    }
    a.any = true;
  }
}

void MergeAccum(Accum* into, const Accum& from) {
  if (!from.any) return;
  if (!into->any) {
    *into = from;
    return;
  }
  into->count += from.count;
  into->isum = WrapAdd(into->isum, from.isum);
  into->dsum += from.dsum;  // merge order is fixed (morsel order)
  if (DblTotalLess(from.dmin, into->dmin)) into->dmin = from.dmin;
  if (DblTotalLess(into->dmax, from.dmax)) into->dmax = from.dmax;
  if (from.imin < into->imin) into->imin = from.imin;
  if (from.imax > into->imax) into->imax = from.imax;
}

// Fill per-group accumulators, splitting the rows into morsels when the
// group count is small enough for per-morsel accumulator arrays. Partials
// are merged in morsel order, so floating-point sums are bit-identical at
// any thread count.
template <typename T>
void Accumulate(const std::vector<T>& vals, const std::vector<oid_t>& gids,
                std::vector<Accum>* accs) {
  size_t n = vals.size();
  size_t ngroups = accs->size();
  size_t grain = AggGrain(n);
  size_t nmorsels = MorselCount(n, grain);
  if (nmorsels <= 1 || ngroups > kMaxParallelGroups) {
    AccumulateRange(vals, gids, 0, n, accs);
    return;
  }
  std::vector<std::vector<Accum>> parts(nmorsels);
  ThreadPool::Get().ParallelFor(n, grain,
                                [&](size_t m, size_t begin, size_t end) {
                                  parts[m].resize(ngroups);
                                  AccumulateRange(vals, gids, begin, end,
                                                  &parts[m]);
                                });
  for (const auto& part : parts) {
    for (size_t g = 0; g < ngroups; ++g) {
      MergeAccum(&(*accs)[g], part[g]);
    }
  }
}

// Per-group row counts (optionally skipping NULL values), morsel-parallel.
std::vector<int64_t> CountPerGroup(const std::vector<oid_t>& gids,
                                   size_t ngroups, const BAT* vals) {
  std::vector<int64_t> counts(ngroups, 0);
  size_t n = gids.size();
  size_t grain = AggGrain(n);
  size_t nmorsels = MorselCount(n, grain);
  auto count_range = [&](std::vector<int64_t>* c, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (vals != nullptr && vals->IsNullAt(i)) continue;
      (*c)[gids[i]]++;
    }
  };
  if (nmorsels <= 1 || ngroups > kMaxParallelGroups) {
    count_range(&counts, 0, n);
    return counts;
  }
  std::vector<std::vector<int64_t>> parts(nmorsels);
  ThreadPool::Get().ParallelFor(n, grain,
                                [&](size_t m, size_t begin, size_t end) {
                                  parts[m].assign(ngroups, 0);
                                  count_range(&parts[m], begin, end);
                                });
  for (const auto& part : parts) {
    for (size_t g = 0; g < ngroups; ++g) counts[g] += part[g];
  }
  return counts;
}

}  // namespace

Result<BATPtr> GroupedAggregate(AggOp op, const BAT* vals, const BAT& groups,
                                size_t ngroups) {
  if (groups.type() != PhysType::kOid) {
    return Status::TypeMismatch("GroupedAggregate expects oid groups");
  }
  const auto& gids = groups.oids();

  if (op == AggOp::kCountStar) {
    auto out = BAT::Make(PhysType::kLng);
    out->lngs() = CountPerGroup(gids, ngroups, nullptr);
    return out;
  }

  if (vals == nullptr) {
    return Status::InvalidArgument("aggregate requires a value column");
  }
  if (vals->Count() != gids.size()) {
    return Status::Internal("GroupedAggregate: values misaligned with groups");
  }

  if (op == AggOp::kCount) {
    auto out = BAT::Make(PhysType::kLng);
    out->lngs() = CountPerGroup(gids, ngroups, vals);
    return out;
  }

  if (!IsNumeric(vals->type())) {
    if (op == AggOp::kMin || op == AggOp::kMax) {
      // String min/max: scan with lexicographic compare.
      auto out = vals->CloneStructure();
      out->Reserve(ngroups);
      std::vector<int64_t> best(ngroups, -1);
      for (size_t i = 0; i < gids.size(); ++i) {
        if (vals->IsNullAt(i)) continue;
        int64_t& b = best[gids[i]];
        if (b < 0) {
          b = static_cast<int64_t>(i);
          continue;
        }
        bool lt = vals->GetStr(i) < vals->GetStr(static_cast<size_t>(b));
        if ((op == AggOp::kMin) == lt) b = static_cast<int64_t>(i);
      }
      for (size_t g = 0; g < ngroups; ++g) {
        ScalarValue v = best[g] < 0
                            ? ScalarValue::Null(vals->type())
                            : vals->GetScalar(static_cast<size_t>(best[g]));
        SCIQL_RETURN_NOT_OK(out->Append(v));
      }
      return out;
    }
    return Status::TypeMismatch(
        StrFormat("%s over non-numeric column", AggOpName(op)));
  }

  std::vector<Accum> accs(ngroups);
  switch (vals->type()) {
    case PhysType::kBit:
      Accumulate(vals->bits(), gids, &accs);
      break;
    case PhysType::kInt:
      Accumulate(vals->ints(), gids, &accs);
      break;
    case PhysType::kLng:
      Accumulate(vals->lngs(), gids, &accs);
      break;
    case PhysType::kDbl:
      Accumulate(vals->dbls(), gids, &accs);
      break;
    default:
      return Status::Internal("unreachable aggregate type");
  }

  bool is_dbl = vals->type() == PhysType::kDbl;
  switch (op) {
    case AggOp::kSum: {
      // Integer sums widen to lng (MonetDB promotes on aggregation).
      auto out = BAT::Make(is_dbl ? PhysType::kDbl : PhysType::kLng);
      out->Reserve(ngroups);
      for (const Accum& a : accs) {
        if (!a.any) {
          SCIQL_RETURN_NOT_OK(out->Append(ScalarValue::Null(out->type())));
        } else if (is_dbl) {
          SCIQL_RETURN_NOT_OK(out->Append(ScalarValue::Dbl(a.dsum)));
        } else {
          SCIQL_RETURN_NOT_OK(out->Append(ScalarValue::Lng(a.isum)));
        }
      }
      return out;
    }
    case AggOp::kAvg: {
      auto out = BAT::Make(PhysType::kDbl);
      out->Reserve(ngroups);
      for (const Accum& a : accs) {
        if (!a.any) {
          SCIQL_RETURN_NOT_OK(out->Append(ScalarValue::Null(PhysType::kDbl)));
        } else {
          SCIQL_RETURN_NOT_OK(out->Append(
              ScalarValue::Dbl(a.dsum / static_cast<double>(a.count))));
        }
      }
      return out;
    }
    case AggOp::kMin:
    case AggOp::kMax: {
      auto out = vals->CloneStructure();
      out->Reserve(ngroups);
      for (const Accum& a : accs) {
        if (!a.any) {
          SCIQL_RETURN_NOT_OK(out->Append(ScalarValue::Null(vals->type())));
          continue;
        }
        ScalarValue v;
        if (is_dbl) {
          v = ScalarValue::Dbl(op == AggOp::kMin ? a.dmin : a.dmax);
        } else {
          v = ScalarValue::Lng(op == AggOp::kMin ? a.imin : a.imax);
        }
        SCIQL_RETURN_NOT_OK(out->Append(v));
      }
      return out;
    }
    default:
      return Status::Internal("unreachable aggregate op");
  }
}

Result<ScalarValue> Aggregate(AggOp op, const BAT& vals) {
  // Ungrouped MIN/MAX on a column with a live order index reads the index
  // endpoints instead of scanning. Any cached spec led by the column
  // qualifies (single-key, or multi-key with this column as its primary —
  // the cache stores canonical specs, so the primary direction is always
  // ascending): nils sort first, so the minimum is the first non-nil entry
  // (the nil prefix boundary is binary-searched — IsNullAt is monotone
  // along the index, even under secondary keys) and the maximum sits in
  // the last tie run. Only a cached index is used; building one would cost
  // a full sort where the scan is O(n).
  if ((op == AggOp::kMin || op == AggOp::kMax) && Controls().use_index_paths &&
      (IsNumeric(vals.type()) || vals.type() == PhysType::kStr)) {
    bool multi_key = false;
    OrderIndexPtr ord_ptr = FindPrimaryOrderIndex(vals, &multi_key);
    if (ord_ptr != nullptr) {
      const std::vector<oid_t>& ord = *ord_ptr;
      auto first_non_nil = std::partition_point(
          ord.begin(), ord.end(),
          [&vals](oid_t row) { return vals.IsNullAt(row); });
      if (first_non_nil == ord.end()) return ScalarValue::Null(vals.type());
      Telemetry().minmax_index++;
      // The scan path keeps the *first-arriving* row among value ties —
      // observable when -0.0 and 0.0 tie. Single-key tie runs are ascending
      // row id (stable sort), so MIN is the first non-nil entry and MAX the
      // first entry of the last run; under a multi-key index the tie run is
      // ordered by the secondary keys instead, so locate the run with
      // partition_point and take its smallest row id.
      if (op == AggOp::kMin) {
        if (!multi_key) return vals.GetScalar(*first_non_nil);
        oid_t min_row = *first_non_nil;
        auto run_hi = std::partition_point(
            first_non_nil, ord.end(), [&vals, min_row](oid_t row) {
              return !RowValueLess(vals, min_row, row);
            });
        return vals.GetScalar(*std::min_element(first_non_nil, run_hi));
      }
      oid_t max_row = ord.back();
      auto run_lo = std::partition_point(
          first_non_nil, ord.end(), [&vals, max_row](oid_t row) {
            return RowValueLess(vals, row, max_row);
          });
      if (!multi_key) return vals.GetScalar(*run_lo);
      return vals.GetScalar(*std::min_element(run_lo, ord.end()));
    }
  }
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids().assign(vals.Count(), 0);
  SCIQL_ASSIGN_OR_RETURN(BATPtr one,
                         GroupedAggregate(op, &vals, *groups, 1));
  return one->GetScalar(0);
}

}  // namespace gdk
}  // namespace sciql
