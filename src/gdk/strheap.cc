// StrHeap is header-only; this file anchors the translation unit.
#include "src/gdk/strheap.h"
