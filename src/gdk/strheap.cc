#include "src/gdk/strheap.h"

namespace sciql {
namespace gdk {

Result<std::shared_ptr<StrHeap>> StrHeap::FromBytes(std::string_view bytes) {
  if (bytes.empty() || bytes[0] != '\0') {
    return Status::IOError("string heap payload lacks the nil prologue");
  }
  if (bytes.back() != '\0') {
    return Status::IOError("string heap payload is not NUL-terminated");
  }
  auto heap = std::make_shared<StrHeap>();
  heap->data_.assign(bytes.begin(), bytes.end());
  // Walk the arena and rebuild the dedup index. Offset 0 is the reserved nil
  // entry; every subsequent string starts right after the previous NUL.
  size_t off = 1;
  while (off < heap->data_.size()) {
    std::string s(heap->data_.data() + off);
    size_t len = s.size();
    // First writer wins, matching Put(): only the canonical (first) offset
    // of a string counts as interned.
    if (heap->index_.emplace(std::move(s), off).second) {
      heap->offsets_.insert(off);
    }
    off += len + 1;
  }
  return heap;
}

}  // namespace gdk
}  // namespace sciql
