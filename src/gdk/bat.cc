#include "src/gdk/bat.h"

#include <algorithm>
#include <cstring>

#include "src/common/string_util.h"

namespace sciql {
namespace gdk {

BAT::BAT(PhysType t) : type_(t) {
  switch (t) {
    case PhysType::kBit:
      tail_ = std::vector<uint8_t>();
      break;
    case PhysType::kInt:
      tail_ = std::vector<int32_t>();
      break;
    case PhysType::kLng:
      tail_ = std::vector<int64_t>();
      break;
    case PhysType::kDbl:
      tail_ = std::vector<double>();
      break;
    case PhysType::kOid:
    case PhysType::kStr:
      tail_ = std::vector<uint64_t>();
      break;
  }
  if (t == PhysType::kStr) heap_ = std::make_shared<StrHeap>();
}

BATPtr BAT::Make(PhysType t) { return std::make_shared<BAT>(t); }

BATPtr BAT::MakeStr(std::shared_ptr<StrHeap> heap) {
  auto b = std::make_shared<BAT>(PhysType::kStr);
  b->heap_ = std::move(heap);
  return b;
}

BATPtr BAT::MakeDense(oid_t seq, size_t count) {
  auto b = Make(PhysType::kOid);
  FillDense(&b->oids(), seq, count);
  return b;
}

BATPtr BAT::MakeConst(const ScalarValue& v, size_t count) {
  auto b = Make(v.type);
  b->Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Status st = b->Append(v);
    (void)st;  // Append of a same-typed scalar cannot fail.
  }
  return b;
}

size_t BAT::Count() const {
  return std::visit([](const auto& v) { return v.size(); }, tail_);
}

ScalarValue BAT::GetScalar(size_t i) const {
  switch (type_) {
    case PhysType::kBit: {
      uint8_t v = bits()[i];
      return v == kBitNil ? ScalarValue::Null(type_) : ScalarValue::Bit(v != 0);
    }
    case PhysType::kInt: {
      int32_t v = ints()[i];
      return v == kIntNil ? ScalarValue::Null(type_) : ScalarValue::Int(v);
    }
    case PhysType::kLng: {
      int64_t v = lngs()[i];
      return v == kLngNil ? ScalarValue::Null(type_) : ScalarValue::Lng(v);
    }
    case PhysType::kDbl: {
      double v = dbls()[i];
      return IsDblNil(v) ? ScalarValue::Null(type_) : ScalarValue::Dbl(v);
    }
    case PhysType::kOid: {
      oid_t v = oids()[i];
      return v == kOidNil ? ScalarValue::Null(type_) : ScalarValue::Oid(v);
    }
    case PhysType::kStr: {
      uint64_t off = oids()[i];
      if (heap_->IsNil(off)) return ScalarValue::Null(type_);
      return ScalarValue::Str(std::string(heap_->Get(off)));
    }
  }
  return ScalarValue::Null(type_);
}

OrderIndexPtr BAT::order_index() const {
  common::MutexLock lk(&oidx_mu_);
  return order_index_;
}

void BAT::SetOrderIndex(OrderIndexPtr idx) const {
  assert(idx == nullptr || idx->size() == Count());
  common::MutexLock lk(&oidx_mu_);
  order_index_ = std::move(idx);
  if (order_index_ != nullptr) {
    oidx_present_.store(true, std::memory_order_release);
  }
}

bool BAT::SpecEntryLive(const SpecEntry& e) const {
  if (e.idx == nullptr || e.idx->size() != Count()) return false;
  for (const SpecKey& k : e.extras) {
    std::shared_ptr<const BAT> locked = k.ref.lock();
    if (locked == nullptr || locked.get() != k.raw ||
        locked->data_version() != k.version) {
      return false;
    }
  }
  return true;
}

void BAT::PruneSpecEntries() const {
  spec_indexes_.erase(
      std::remove_if(spec_indexes_.begin(), spec_indexes_.end(),
                     [this](const SpecEntry& e) { return !SpecEntryLive(e); }),
      spec_indexes_.end());
}

OrderIndexPtr BAT::FindOrderIndexSpec(const std::vector<const BAT*>& keys,
                                      const std::vector<bool>& desc) const {
  if (keys.empty() || keys[0] != this || keys.size() != desc.size()) {
    return nullptr;
  }
  common::MutexLock lk(&oidx_mu_);
  PruneSpecEntries();
  for (const SpecEntry& e : spec_indexes_) {
    if (e.desc != desc || e.extras.size() + 1 != keys.size()) continue;
    bool match = true;
    for (size_t i = 0; i < e.extras.size(); ++i) {
      if (e.extras[i].raw != keys[i + 1]) {
        match = false;
        break;
      }
    }
    if (match) return e.idx;
  }
  return nullptr;
}

void BAT::CacheOrderIndexSpec(const std::vector<BATPtr>& extras,
                              const std::vector<bool>& desc,
                              OrderIndexPtr idx) const {
  assert(desc.size() == extras.size() + 1);
  assert(!desc.empty() && !desc[0]);  // only canonical specs are stored
  assert(idx != nullptr && idx->size() == Count());
  SpecEntry entry;
  entry.desc = desc;
  entry.extras.reserve(extras.size());
  for (const BATPtr& b : extras) {
    SpecKey k;
    k.ref = b;
    k.raw = b.get();
    k.version = b->data_version();
    entry.extras.push_back(std::move(k));
  }
  entry.idx = std::move(idx);
  common::MutexLock lk(&oidx_mu_);
  // Replace an existing entry for the same spec instead of accumulating.
  for (SpecEntry& e : spec_indexes_) {
    if (e.desc != entry.desc || e.extras.size() != entry.extras.size()) {
      continue;
    }
    bool same = true;
    for (size_t i = 0; i < e.extras.size(); ++i) {
      if (e.extras[i].raw != entry.extras[i].raw) {
        same = false;
        break;
      }
    }
    if (same) {
      e = std::move(entry);
      oidx_present_.store(true, std::memory_order_release);
      return;
    }
  }
  // Bound the cache: each entry holds an n-element permutation, so a
  // workload sweeping many distinct specs led by one column must not grow
  // memory (and checkpoint containers) without limit. Oldest entry evicts
  // first; it can always be rebuilt.
  constexpr size_t kMaxSpecEntries = 8;
  if (spec_indexes_.size() >= kMaxSpecEntries) {
    spec_indexes_.erase(spec_indexes_.begin());
  }
  spec_indexes_.push_back(std::move(entry));
  oidx_present_.store(true, std::memory_order_release);
}

std::vector<OrderIndexView> BAT::LiveOrderIndexes() const {
  std::vector<OrderIndexView> out;
  common::MutexLock lk(&oidx_mu_);
  if (order_index_ != nullptr) {
    out.push_back(OrderIndexView{{this}, {false}, order_index_});
  }
  PruneSpecEntries();
  for (const SpecEntry& e : spec_indexes_) {
    OrderIndexView v;
    v.keys.push_back(this);
    for (const SpecKey& k : e.extras) v.keys.push_back(k.raw);
    v.desc = e.desc;
    v.idx = e.idx;
    out.push_back(std::move(v));
  }
  return out;
}

Status BAT::Append(const ScalarValue& in) {
  ScalarValue v = in;
  if (v.type != type_) {
    SCIQL_ASSIGN_OR_RETURN(v, CastScalar(in, type_));
  }
  switch (type_) {
    case PhysType::kBit:
      bits().push_back(v.is_null ? kBitNil : static_cast<uint8_t>(v.i != 0));
      break;
    case PhysType::kInt:
      ints().push_back(v.is_null ? kIntNil : static_cast<int32_t>(v.i));
      break;
    case PhysType::kLng:
      lngs().push_back(v.is_null ? kLngNil : v.i);
      break;
    case PhysType::kDbl:
      dbls().push_back(v.is_null ? DblNil() : v.d);
      break;
    case PhysType::kOid:
      oids().push_back(v.is_null ? kOidNil : static_cast<oid_t>(v.i));
      break;
    case PhysType::kStr:
      oids().push_back(v.is_null ? kStrNilOffset : heap_->Put(v.s));
      break;
  }
  return Status::OK();
}

Status BAT::Set(size_t i, const ScalarValue& in) {
  if (i >= Count()) {
    return Status::OutOfRange(StrFormat("BAT::Set position %zu >= count %zu",
                                        i, Count()));
  }
  ScalarValue v = in;
  if (v.type != type_) {
    SCIQL_ASSIGN_OR_RETURN(v, CastScalar(in, type_));
  }
  switch (type_) {
    case PhysType::kBit:
      bits()[i] = v.is_null ? kBitNil : static_cast<uint8_t>(v.i != 0);
      break;
    case PhysType::kInt:
      ints()[i] = v.is_null ? kIntNil : static_cast<int32_t>(v.i);
      break;
    case PhysType::kLng:
      lngs()[i] = v.is_null ? kLngNil : v.i;
      break;
    case PhysType::kDbl:
      dbls()[i] = v.is_null ? DblNil() : v.d;
      break;
    case PhysType::kOid:
      oids()[i] = v.is_null ? kOidNil : static_cast<oid_t>(v.i);
      break;
    case PhysType::kStr:
      oids()[i] = v.is_null ? kStrNilOffset : heap_->Put(v.s);
      break;
  }
  return Status::OK();
}

Status BAT::AppendBat(const BAT& other) {
  // The scalar path below invalidates via the accessors; the std::visit path
  // touches tail_ directly, so drop the cached index here.
  InvalidateOrderIndex();
  if (other.type() != type_) {
    return Status::TypeMismatch(
        StrFormat("append %s BAT to %s BAT", PhysTypeName(other.type()),
                  PhysTypeName(type_)));
  }
  if (type_ == PhysType::kStr && heap_ != other.heap_) {
    // Re-intern through the scalar path so offsets stay heap-local.
    Reserve(Count() + other.Count());
    for (size_t i = 0; i < other.Count(); ++i) {
      SCIQL_RETURN_NOT_OK(Append(other.GetScalar(i)));
    }
    return Status::OK();
  }
  std::visit(
      [&other](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& src = std::get<Vec>(other.tail_);
        dst.insert(dst.end(), src.begin(), src.end());
      },
      tail_);
  return Status::OK();
}

bool BAT::IsNullAt(size_t i) const {
  switch (type_) {
    case PhysType::kBit:
      return bits()[i] == kBitNil;
    case PhysType::kInt:
      return ints()[i] == kIntNil;
    case PhysType::kLng:
      return lngs()[i] == kLngNil;
    case PhysType::kDbl:
      return IsDblNil(dbls()[i]);
    case PhysType::kOid:
      return oids()[i] == kOidNil;
    case PhysType::kStr:
      return oids()[i] == kStrNilOffset;
  }
  return false;
}

size_t BAT::CountNulls() const {
  size_t n = 0;
  for (size_t i = 0; i < Count(); ++i) n += IsNullAt(i) ? 1 : 0;
  return n;
}

void BAT::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, tail_);
}

void BAT::Resize(size_t n) {
  switch (type_) {
    case PhysType::kBit:
      bits().resize(n, kBitNil);
      break;
    case PhysType::kInt:
      ints().resize(n, kIntNil);
      break;
    case PhysType::kLng:
      lngs().resize(n, kLngNil);
      break;
    case PhysType::kDbl:
      dbls().resize(n, DblNil());
      break;
    case PhysType::kOid:
      oids().resize(n, kOidNil);
      break;
    case PhysType::kStr:
      oids().resize(n, kStrNilOffset);
      break;
  }
}

BATPtr BAT::CloneStructure() const {
  if (type_ == PhysType::kStr) return MakeStr(heap_);
  return Make(type_);
}

BATPtr BAT::CloneData() const {
  auto b = CloneStructure();
  b->tail_ = tail_;
  // The clone is value-identical, so built order indexes stay valid for it
  // (multi-key entries keep referencing the original secondary columns,
  // whose values the specs were built against). The clone's mutex is locked
  // too for the analysis; it is private to this thread, so there is no
  // contention and no ordering concern.
  common::MutexLock lk(&oidx_mu_);
  common::MutexLock lk_clone(&b->oidx_mu_);
  b->order_index_ = order_index_;
  PruneSpecEntries();
  b->spec_indexes_ = spec_indexes_;
  if (b->order_index_ != nullptr || !b->spec_indexes_.empty()) {
    b->oidx_present_.store(true, std::memory_order_release);
  }
  return b;
}

BATPtr BAT::CloneDataPrivate() const {
  if (type_ != PhysType::kStr) {
    auto b = Make(type_);
    b->tail_ = tail_;
    common::MutexLock lk(&oidx_mu_);
    common::MutexLock lk_clone(&b->oidx_mu_);
    b->order_index_ = order_index_;
    if (b->order_index_ != nullptr) {
      b->oidx_present_.store(true, std::memory_order_release);
    }
    return b;
  }
  // Re-intern every string into the clone's fresh heap so the clone shares
  // no mutable arena with the source (see header comment).
  auto b = Make(PhysType::kStr);
  const auto& src = std::get<std::vector<uint64_t>>(tail_);
  auto& dst = std::get<std::vector<uint64_t>>(b->tail_);
  dst.reserve(src.size());
  for (uint64_t off : src) {
    dst.push_back(off == kStrNilOffset ? kStrNilOffset
                                       : b->heap_->Put(heap_->Get(off)));
  }
  common::MutexLock lk(&oidx_mu_);
  common::MutexLock lk_clone(&b->oidx_mu_);
  b->order_index_ = order_index_;
  if (b->order_index_ != nullptr) {
    b->oidx_present_.store(true, std::memory_order_release);
  }
  return b;
}

BATPtr BAT::Slice(size_t lo, size_t hi) const {
  auto b = CloneStructure();
  size_t n = Count();
  if (lo > n) lo = n;
  if (hi > n) hi = n;
  if (hi < lo) hi = lo;
  std::visit(
      [&](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& src = std::get<Vec>(tail_);
        dst.assign(src.begin() + lo, src.begin() + hi);
      },
      b->tail_);
  return b;
}

const void* BAT::TailData() const {
  return std::visit(
      [](const auto& v) { return static_cast<const void*>(v.data()); }, tail_);
}

size_t BAT::TailByteSize() const {
  return std::visit(
      [](const auto& v) {
        return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
      },
      tail_);
}

Result<BATPtr> BAT::ImportTail(PhysType t, std::string_view bytes,
                               uint64_t count) {
  if (t == PhysType::kStr) {
    return Status::Internal("ImportTail: use ImportStrTail for string BATs");
  }
  auto b = Make(t);
  Status st = std::visit(
      [&](auto& vec) -> Status {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        if (count > bytes.size() / sizeof(T) ||
            count * sizeof(T) != bytes.size()) {
          return Status::IOError(
              StrFormat("heap payload holds %zu bytes, expected %llu %s rows",
                        bytes.size(), static_cast<unsigned long long>(count),
                        PhysTypeName(t)));
        }
        vec.resize(count);
        if (count > 0) std::memcpy(vec.data(), bytes.data(), bytes.size());
        return Status::OK();
      },
      b->tail_);
  SCIQL_RETURN_NOT_OK(st);
  return b;
}

Result<BATPtr> BAT::ImportStrTail(std::shared_ptr<StrHeap> heap,
                                  std::string_view bytes, uint64_t count) {
  if (heap == nullptr) return Status::Internal("ImportStrTail: null heap");
  if (count > bytes.size() / sizeof(uint64_t) ||
      count * sizeof(uint64_t) != bytes.size()) {
    return Status::IOError(
        StrFormat("string offset payload holds %zu bytes, expected %llu rows",
                  bytes.size(), static_cast<unsigned long long>(count)));
  }
  auto b = MakeStr(std::move(heap));
  std::vector<uint64_t>& offs = std::get<std::vector<uint64_t>>(b->tail_);
  offs.resize(count);
  if (count > 0) std::memcpy(offs.data(), bytes.data(), bytes.size());
  for (uint64_t off : offs) {
    if (off != kStrNilOffset && !b->heap_->IsInterned(off)) {
      return Status::IOError(
          StrFormat("string offset %llu does not start an interned string",
                    static_cast<unsigned long long>(off)));
    }
  }
  return b;
}

std::string BAT::ToString(size_t max_rows) const {
  std::string out = StrFormat("[:%s, %zu rows] [", PhysTypeName(type_), Count());
  size_t n = std::min(Count(), max_rows);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += GetScalar(i).ToString();
  }
  if (Count() > max_rows) out += ", ...";
  out += "]";
  return out;
}

void FillDense(std::vector<oid_t>* out, oid_t seq, size_t count) {
  out->resize(count);
  for (size_t i = 0; i < count; ++i) (*out)[i] = seq + i;
}

}  // namespace gdk
}  // namespace sciql
