#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

Result<BATPtr> Project(const BAT& b, const BAT& positions) {
  if (positions.type() != PhysType::kOid) {
    return Status::TypeMismatch("Project expects oid positions");
  }
  auto out = b.CloneStructure();
  const auto& pos = positions.oids();
  size_t n = pos.size();
  size_t limit = b.Count();

  // Morsel-parallel gather into disjoint ranges of the pre-sized output.
  auto gather = [&](auto& dst, const auto& src) -> Status {
    using T = std::decay_t<decltype(dst[0])>;
    dst.resize(n);
    return ParallelRows(n, kMorselRows, [&](size_t begin, size_t end) -> Status {
      for (size_t i = begin; i < end; ++i) {
        oid_t p = pos[i];
        if (p == kOidNil) {
          dst[i] = TypeTraits<T>::Nil();
          continue;
        }
        if (p >= limit) {
          return Status::OutOfRange(
              StrFormat("Project: position %llu out of range (count %zu)",
                        static_cast<unsigned long long>(p), limit));
        }
        dst[i] = src[p];
      }
      return Status::OK();
    });
  };

  Status st;
  switch (b.type()) {
    case PhysType::kBit:
      st = gather(out->bits(), b.bits());
      break;
    case PhysType::kInt:
      st = gather(out->ints(), b.ints());
      break;
    case PhysType::kLng:
      st = gather(out->lngs(), b.lngs());
      break;
    case PhysType::kDbl:
      st = gather(out->dbls(), b.dbls());
      break;
    case PhysType::kOid:
    case PhysType::kStr: {
      // For strings a nil position must yield the nil offset, not kOidNil.
      auto& dst = out->oids();
      const auto& src = b.oids();
      dst.resize(n);
      bool is_str = b.type() == PhysType::kStr;
      st = ParallelRows(n, kMorselRows, [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          oid_t p = pos[i];
          if (p == kOidNil) {
            dst[i] = is_str ? kStrNilOffset : kOidNil;
            continue;
          }
          if (p >= limit) {
            return Status::OutOfRange(
                StrFormat("Project: position %llu out of range (count %zu)",
                          static_cast<unsigned long long>(p), limit));
          }
          dst[i] = src[p];
        }
        return Status::OK();
      });
      break;
    }
  }
  SCIQL_RETURN_NOT_OK(st);
  return out;
}

}  // namespace gdk
}  // namespace sciql
