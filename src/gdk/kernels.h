// Vectorized kernel operations over BATs: selection, projection, joins,
// grouping, aggregation, elementwise calculation and sorting.
//
// These are the GDK-level primitives the MAL interpreter dispatches to; they
// correspond to MonetDB's algebra.*, batcalc.*, group.* and aggr.* modules.

#ifndef SCIQL_GDK_KERNELS_H_
#define SCIQL_GDK_KERNELS_H_

#include <atomic>
#include <vector>

#include "src/common/result.h"
#include "src/gdk/bat.h"

namespace sciql {
namespace gdk {

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

/// \brief Comparison operators used by theta-selects and calc.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief Positions (candidates) where the bit BAT holds true (1).
///
/// `cands`, if non-null, restricts and indirects: `bits` is aligned with
/// `cands` and the emitted oids come from `cands`' tail.
Result<BATPtr> BoolSelect(const BAT& bits, const BAT* cands);

/// \brief Positions where `b[i] op v` holds (NULLs never match).
Result<BATPtr> ThetaSelect(const BAT& b, const BAT* cands, CmpOp op,
                           const ScalarValue& v);

/// \brief Positions in [lo, hi] / [lo, hi) etc. of `b` (numeric only).
Result<BATPtr> RangeSelect(const BAT& b, const BAT* cands,
                           const ScalarValue& lo, const ScalarValue& hi,
                           bool lo_incl, bool hi_incl);

/// \brief Positions where b is (not) nil.
Result<BATPtr> NullSelect(const BAT& b, const BAT* cands, bool select_null);

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

/// \brief Gather: out[i] = b[positions[i]]. A nil position yields NULL.
///
/// This is MonetDB's algebra.projection (positional fetch-join).
Result<BATPtr> Project(const BAT& b, const BAT& positions);

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// \brief Matching row-id pairs of an equi-join (hash join; NULLs never match).
struct JoinResult {
  BATPtr left;
  BATPtr right;
};

Result<JoinResult> HashJoin(const BAT& l, const BAT& r);

/// \brief Multi-key equi-join: rows match when all key columns match
/// pairwise (NULL never matches). `lkeys[i]` joins against `rkeys[i]`.
Result<JoinResult> HashJoinMulti(const std::vector<const BAT*>& lkeys,
                                 const std::vector<const BAT*>& rkeys);

/// \brief All nl*nr pairs, left-major.
JoinResult CrossJoin(size_t nl, size_t nr);

// ---------------------------------------------------------------------------
// Grouping
// ---------------------------------------------------------------------------

/// \brief Result of (refining) a grouping: per-row group ids, one
/// representative row per group, and the group count.
struct GroupResult {
  BATPtr groups;   ///< oid BAT: row -> group id (0..ngroups-1)
  BATPtr extents;  ///< oid BAT: group id -> first row of the group
  size_t ngroups = 0;
};

/// \brief Group rows of `b` by tail value, optionally refining an existing
/// grouping (`prev`, with `prev_ngroups` groups). NULLs form a group.
Result<GroupResult> Group(const BAT& b, const BAT* prev, size_t prev_ngroups);

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

enum class AggOp { kCount, kCountStar, kSum, kAvg, kMin, kMax };

const char* AggOpName(AggOp op);

/// \brief Grouped aggregate: one output row per group id in [0, ngroups).
///
/// `vals` must be aligned with `groups` (ignored for kCountStar). NULLs are
/// skipped; empty/all-NULL groups yield NULL (COUNT yields 0).
Result<BATPtr> GroupedAggregate(AggOp op, const BAT* vals, const BAT& groups,
                                size_t ngroups);

/// \brief Ungrouped aggregate over the whole BAT.
Result<ScalarValue> Aggregate(AggOp op, const BAT& vals);

// ---------------------------------------------------------------------------
// Elementwise calculation (batcalc)
// ---------------------------------------------------------------------------

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};
enum class UnOp { kNeg, kNot, kIsNull, kAbs };

const char* BinOpName(BinOp op);
const char* UnOpName(UnOp op);

/// \brief Elementwise binary operation. Exactly one of {lb,ls} and one of
/// {rb,rs} must be set; BAT operands must have equal length.
///
/// Arithmetic promotes bit<int<lng<dbl and propagates NULL. Comparisons yield
/// bit with NULL for NULL inputs; kAnd/kOr use SQL three-valued logic.
/// Integer division/modulo by zero is an execution error.
Result<BATPtr> CalcBinary(BinOp op, const BAT* lb, const ScalarValue* ls,
                          const BAT* rb, const ScalarValue* rs);

/// \brief Scalar-scalar variant of CalcBinary.
Result<ScalarValue> CalcBinaryScalar(BinOp op, const ScalarValue& l,
                                     const ScalarValue& r);

Result<BATPtr> CalcUnary(UnOp op, const BAT& b);
Result<ScalarValue> CalcUnaryScalar(UnOp op, const ScalarValue& v);

/// \brief out[i] = cond[i]==true ? then[i] : else[i] (NULL cond selects else).
/// Arms may be scalars (broadcast) or BATs aligned with `cond`.
Result<BATPtr> IfThenElse(const BAT& cond, const BAT* tb, const ScalarValue* ts,
                          const BAT* eb, const ScalarValue* es);

/// \brief Cast every row to `to` (numeric conversions only).
Result<BATPtr> CastBat(const BAT& b, PhysType to);

// ---------------------------------------------------------------------------
// Sorting
// ---------------------------------------------------------------------------

/// \brief Stable order index over one or more aligned key columns.
/// NULLs sort first on ascending keys (MonetDB: nil is smallest).
///
/// Runs morsel-parallel: fixed ranges are sorted concurrently and combined
/// by a deterministic merge tree, and the comparator is a total order
/// (row id breaks ties), so the result is the unique stable permutation —
/// bit-identical at any thread count. A single ascending key reuses (and
/// populates) the key BAT's persistent order index.
Result<BATPtr> OrderIndex(const std::vector<const BAT*>& keys,
                          const std::vector<bool>& desc);

/// \brief Materialized stable sort of `b` (OrderIndex + Project).
Result<BATPtr> SortBat(const BAT& b, bool desc);

/// \brief Top-k: the first `k` entries of the stable order index over the
/// key columns, without materializing the full sort.
///
/// Output is bit-identical to OrderIndex(keys, desc) truncated to k rows, at
/// any thread count: per-morsel bounded heaps keep each morsel's k best rows
/// under the total order (row id breaks ties), and the deterministic merge of
/// the candidate sets yields the unique global first-k. A single ascending
/// key with a live persistent order index short-circuits to an O(k) window
/// copy of the index head; k >= n/2 (or k near the morsel grain on
/// multi-morsel inputs) falls back to the full sort — the heaps would
/// retain nearly every row anyway. All gates depend only on data shape,
/// never the thread count.
Result<BATPtr> FirstN(const std::vector<const BAT*>& keys,
                      const std::vector<bool>& desc, size_t k);

/// \brief The persistent ascending (nil-first) stable order index of `b`:
/// returns the cached index or builds and caches it (see BAT::order_index
/// for the invalidation lifecycle). Reused by ORDER BY, RangeSelect and the
/// ordered join probe.
Result<OrderIndexPtr> EnsureOrderIndex(const BAT& b);

/// \brief Spec-aware index cache entry point: the stable order index for
/// `keys`/`desc`, served from the keyed persistent cache on keys[0].
///
/// Only the *canonical* spec (primary key ascending) is ever built and
/// cached — a spec with desc[0] set is served from the canonical index of
/// the fully negated spec by run reversal: equal-key runs reverse as blocks
/// while keeping ascending row ids inside each run, so the result is the
/// negated spec's unique stable permutation (in particular the nil block —
/// nil is smallest — relocates to the tail: DESC emits nils last). No
/// second sort, ever. Exact cache hits count order_index_reused, reversals
/// order_index_reversed, fresh sorts order_index_built.
Result<OrderIndexPtr> EnsureOrderIndexSpec(const std::vector<BATPtr>& keys,
                                           const std::vector<bool>& desc);

/// \brief Any live cached order index whose primary key is `b`: the
/// single-key ascending index if present, else a multi-key entry (canonical,
/// so the primary direction is always ascending, nils first). Used by
/// RangeSelect and ungrouped MIN/MAX, which only need the primary ordering.
/// `multi_key`, if non-null, reports whether the returned index carries
/// secondary keys (its tie runs are then secondary-ordered, not row-id
/// ordered).
OrderIndexPtr FindPrimaryOrderIndex(const BAT& b, bool* multi_key = nullptr);

/// \brief Nil-first lexicographic tuple compare of row `ai` of `akeys`
/// against row `bi` of `bkeys` (key types must match pairwise): the
/// per-column order the sort's key encodings induce — nil below every
/// value, nil equal to nil, -0.0 tying 0.0, strings by content. Shared by
/// the merge-join run machinery and the run-reversal of cached indexes so
/// the two tie relations can never drift apart.
int CompareKeyRows(const std::vector<const BAT*>& akeys, oid_t ai,
                   const std::vector<const BAT*>& bkeys, oid_t bi);

/// \brief True iff `idx` is exactly the stable ascending (nil-first) order
/// permutation of `b` — the permutation EnsureOrderIndex would build. Used to
/// revalidate order indexes loaded from disk: the total order (row id breaks
/// ties) makes the valid index unique, so an O(n) permutation-plus-adjacency
/// check suffices.
bool ValidateOrderIndex(const BAT& b, const std::vector<oid_t>& idx);

/// \brief Spec generalization of ValidateOrderIndex: true iff `idx` is the
/// stable order permutation of the aligned key columns under `desc`.
bool ValidateOrderIndexSpec(const std::vector<const BAT*>& keys,
                            const std::vector<bool>& desc,
                            const std::vector<oid_t>& idx);

// ---------------------------------------------------------------------------
// Execution introspection
// ---------------------------------------------------------------------------

/// \brief Counters recording which physical strategy the index-aware kernels
/// chose. Atomic and strictly monotonic: concurrent reader sessions all bump
/// the same process-wide instance, and nothing may ever zero it — a scrape or
/// a second session would observe the reset. Consumers that need per-scope
/// attribution (tests, the fuzz oracle, per-instruction statement traces)
/// capture a TelemetrySnapshot before and diff with DeltaSince after.
struct KernelTelemetry {
  std::atomic<uint64_t> joins_hash{0};  ///< hash build + probe joins
  std::atomic<uint64_t> joins_indexed_probe{0};  ///< one-sided index joins
  std::atomic<uint64_t> joins_merge{0};  ///< both-sides-indexed merge joins
  std::atomic<uint64_t> joins_merge_str{0};    ///< ... of which string-keyed
  std::atomic<uint64_t> joins_merge_multi{0};  ///< ... of which multi-key
  std::atomic<uint64_t> firstn_index_window{0};  ///< index head copy
  std::atomic<uint64_t> firstn_heap{0};  ///< FirstN via per-morsel heaps
  std::atomic<uint64_t> firstn_sort_fallback{0};  ///< full sort (k >= n/2)
  std::atomic<uint64_t> minmax_index{0};  ///< MIN/MAX from index endpoints
  // Per-spec cache counters: every build/load/reuse also counts in the
  // *_multi variant when the spec has more than one key column.
  std::atomic<uint64_t> order_index_built{0};  ///< indexes sorted anew
  std::atomic<uint64_t> order_index_built_multi{0};
  std::atomic<uint64_t> order_index_loaded{0};  ///< adopted from disk
  std::atomic<uint64_t> order_index_loaded_multi{0};
  std::atomic<uint64_t> order_index_reused{0};  ///< exact-spec cache hits
  std::atomic<uint64_t> order_index_reused_multi{0};
  std::atomic<uint64_t> order_index_reversed{0};  ///< run-reversal serves
  std::atomic<uint64_t> order_index_reversed_multi{0};

  KernelTelemetry() = default;
  KernelTelemetry(const KernelTelemetry&) = delete;
  KernelTelemetry& operator=(const KernelTelemetry&) = delete;
};

/// \brief The process-wide telemetry counters.
KernelTelemetry& Telemetry();

/// \brief A plain-integer copy of KernelTelemetry, field for field. Either an
/// absolute capture (CaptureTelemetry) or a delta between two captures
/// (DeltaSince / TelemetryProbe::delta). Freely copyable; this is what tests
/// and the fuzz oracle store in maps.
struct TelemetrySnapshot {
  uint64_t joins_hash = 0;
  uint64_t joins_indexed_probe = 0;
  uint64_t joins_merge = 0;
  uint64_t joins_merge_str = 0;
  uint64_t joins_merge_multi = 0;
  uint64_t firstn_index_window = 0;
  uint64_t firstn_heap = 0;
  uint64_t firstn_sort_fallback = 0;
  uint64_t minmax_index = 0;
  uint64_t order_index_built = 0;
  uint64_t order_index_built_multi = 0;
  uint64_t order_index_loaded = 0;
  uint64_t order_index_loaded_multi = 0;
  uint64_t order_index_reused = 0;
  uint64_t order_index_reused_multi = 0;
  uint64_t order_index_reversed = 0;
  uint64_t order_index_reversed_multi = 0;
};

/// \brief One entry of the counter catalog: the stable field name plus
/// member pointers into both the live struct and the snapshot, so capture,
/// accumulation and metric registration all iterate one table instead of
/// hand-listing 17 fields.
struct TelemetryField {
  const char* name;
  const char* help;
  std::atomic<uint64_t> KernelTelemetry::*live;
  uint64_t TelemetrySnapshot::*snap;
};

/// \brief The full counter catalog, in declaration order.
const std::vector<TelemetryField>& TelemetryFields();

/// \brief Relaxed capture of the process-wide counters.
TelemetrySnapshot CaptureTelemetry();

/// \brief Field-wise `CaptureTelemetry() - base` (counters are monotonic, so
/// every field of the result is the activity since `base` was captured —
/// plus whatever concurrent sessions did meanwhile; single-threaded scopes
/// attribute exactly).
TelemetrySnapshot DeltaSince(const TelemetrySnapshot& base);

/// \brief Scoped attribution helper: captures a baseline at construction (or
/// Rebase()), reports the activity since then via delta(). The replacement
/// for the removed KernelTelemetry::Reset() — probes never touch the global.
class TelemetryProbe {
 public:
  TelemetryProbe() : base_(CaptureTelemetry()) {}

  /// \brief Move the baseline to "now".
  void Rebase() { base_ = CaptureTelemetry(); }

  /// \brief Counter activity since construction / the last Rebase().
  TelemetrySnapshot delta() const { return DeltaSince(base_); }

 private:
  TelemetrySnapshot base_;
};

/// \brief Process-wide switches steering physical-path selection. The
/// differential fuzzer (src/fuzz/, docs/fuzzing.md) flips these to drive the
/// same query down redundant paths and diff the results bit-for-bit; tests
/// combine them with KernelTelemetry to *verify* the intended path fired.
/// The engine drives kernels from one thread, so plain bools suffice.
struct KernelControls {
  /// When false, the index-aware consumers — join probe/merge paths,
  /// FirstN's index-window copy, RangeSelect's binary-searched window and
  /// ungrouped MIN/MAX endpoint reads — ignore cached order indexes and
  /// take their scan/hash/heap fallbacks, as if every index were dropped.
  /// Index *building* (algebra.orderidx / EnsureOrderIndexSpec) is
  /// unaffected: ORDER BY itself still works and still populates the cache.
  bool use_index_paths = true;

  void Reset() { *this = KernelControls{}; }
};

/// \brief The process-wide kernel controls.
KernelControls& Controls();

}  // namespace gdk
}  // namespace sciql

#endif  // SCIQL_GDK_KERNELS_H_
