#include "src/gdk/types.h"

#include "src/common/string_util.h"

namespace sciql {
namespace gdk {

const char* PhysTypeName(PhysType t) {
  switch (t) {
    case PhysType::kBit:
      return "bit";
    case PhysType::kInt:
      return "int";
    case PhysType::kLng:
      return "lng";
    case PhysType::kDbl:
      return "dbl";
    case PhysType::kOid:
      return "oid";
    case PhysType::kStr:
      return "str";
  }
  return "?";
}

PhysType PromoteNumeric(PhysType a, PhysType b) {
  auto rank = [](PhysType t) {
    switch (t) {
      case PhysType::kBit:
        return 0;
      case PhysType::kInt:
        return 1;
      case PhysType::kLng:
        return 2;
      case PhysType::kDbl:
        return 3;
      default:
        return 4;
    }
  };
  PhysType widest = rank(a) >= rank(b) ? a : b;
  // Arithmetic on bare bits happens in int space.
  if (widest == PhysType::kBit) return PhysType::kInt;
  return widest;
}

double ScalarValue::AsDouble() const {
  if (is_null) return DblNil();
  if (type == PhysType::kDbl) return d;
  return static_cast<double>(i);
}

int64_t ScalarValue::AsInt64() const {
  if (is_null) return kLngNil;
  if (type == PhysType::kDbl) return static_cast<int64_t>(d);
  return i;
}

std::string ScalarValue::ToString() const {
  if (is_null) return "null";
  switch (type) {
    case PhysType::kBit:
      return i ? "true" : "false";
    case PhysType::kInt:
    case PhysType::kLng:
      return std::to_string(i);
    case PhysType::kOid:
      return std::to_string(static_cast<uint64_t>(i)) + "@0";
    case PhysType::kDbl:
      return FormatDouble(d);
    case PhysType::kStr:
      return "'" + s + "'";
  }
  return "?";
}

bool ScalarValue::Equals(const ScalarValue& other) const {
  if (type != other.type) return false;
  if (is_null || other.is_null) return is_null == other.is_null;
  switch (type) {
    case PhysType::kDbl:
      return d == other.d;
    case PhysType::kStr:
      return s == other.s;
    default:
      return i == other.i;
  }
}

Result<ScalarValue> CastScalar(const ScalarValue& v, PhysType to) {
  if (v.type == to) return v;
  if (v.is_null) return ScalarValue::Null(to);
  ScalarValue out;
  out.type = to;
  out.is_null = false;
  switch (to) {
    case PhysType::kBit:
      if (!IsNumeric(v.type)) {
        return Status::TypeMismatch(
            StrFormat("cannot cast %s to bit", PhysTypeName(v.type)));
      }
      out.i = (v.type == PhysType::kDbl ? v.d != 0.0 : v.i != 0) ? 1 : 0;
      return out;
    case PhysType::kInt: {
      if (!IsNumeric(v.type)) {
        return Status::TypeMismatch(
            StrFormat("cannot cast %s to int", PhysTypeName(v.type)));
      }
      int64_t x = v.type == PhysType::kDbl ? static_cast<int64_t>(v.d) : v.i;
      if (x < std::numeric_limits<int32_t>::min() ||
          x > std::numeric_limits<int32_t>::max()) {
        return Status::OutOfRange(StrFormat("value %lld overflows int",
                                            static_cast<long long>(x)));
      }
      out.i = x;
      return out;
    }
    case PhysType::kLng:
      if (!IsNumeric(v.type)) {
        return Status::TypeMismatch(
            StrFormat("cannot cast %s to lng", PhysTypeName(v.type)));
      }
      out.i = v.type == PhysType::kDbl ? static_cast<int64_t>(v.d) : v.i;
      return out;
    case PhysType::kDbl:
      if (!IsNumeric(v.type)) {
        return Status::TypeMismatch(
            StrFormat("cannot cast %s to dbl", PhysTypeName(v.type)));
      }
      out.d = v.type == PhysType::kDbl ? v.d : static_cast<double>(v.i);
      return out;
    case PhysType::kOid:
      if (v.type != PhysType::kInt && v.type != PhysType::kLng) {
        return Status::TypeMismatch(
            StrFormat("cannot cast %s to oid", PhysTypeName(v.type)));
      }
      if (v.i < 0) {
        return Status::OutOfRange("negative value cannot be cast to oid");
      }
      out.i = v.i;
      return out;
    case PhysType::kStr:
      return Status::TypeMismatch(
          StrFormat("cannot cast %s to str", PhysTypeName(v.type)));
  }
  return Status::Internal("unreachable cast");
}

}  // namespace gdk
}  // namespace sciql
