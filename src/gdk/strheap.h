// String heap: append-only, duplicate-eliminating string storage.
//
// String BATs store fixed-width offsets into a shared StrHeap, mirroring
// MonetDB's string heaps with double elimination. Because equal strings are
// guaranteed to share an offset within one heap, equality within a heap is an
// O(1) offset comparison.

#ifndef SCIQL_GDK_STRHEAP_H_
#define SCIQL_GDK_STRHEAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sciql {
namespace gdk {

/// \brief Append-only deduplicated string arena.
///
/// Offset 0 is reserved for the nil string (SQL NULL).
class StrHeap {
 public:
  StrHeap() {
    // Reserve offset 0 for nil: a single NUL byte.
    data_.push_back('\0');
  }

  /// \brief Intern `s`, returning its offset. Equal strings get equal offsets.
  uint64_t Put(std::string_view s) {
    auto it = index_.find(std::string(s));
    if (it != index_.end()) return it->second;
    uint64_t off = data_.size();
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back('\0');
    index_.emplace(std::string(s), off);
    return off;
  }

  /// \brief The string at `off`. Offset 0 yields the empty nil string.
  std::string_view Get(uint64_t off) const {
    const char* p = data_.data() + off;
    return std::string_view(p);
  }

  bool IsNil(uint64_t off) const { return off == 0; }

  size_t ByteSize() const { return data_.size(); }
  size_t UniqueCount() const { return index_.size(); }

 private:
  std::vector<char> data_;
  std::unordered_map<std::string, uint64_t> index_;
};

}  // namespace gdk
}  // namespace sciql

#endif  // SCIQL_GDK_STRHEAP_H_
