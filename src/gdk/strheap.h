// String heap: append-only, duplicate-eliminating string storage.
//
// String BATs store fixed-width offsets into a shared StrHeap, mirroring
// MonetDB's string heaps with double elimination. Because equal strings are
// guaranteed to share an offset within one heap, equality within a heap is an
// O(1) offset comparison.

#ifndef SCIQL_GDK_STRHEAP_H_
#define SCIQL_GDK_STRHEAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/result.h"

namespace sciql {
namespace gdk {

/// \brief Append-only deduplicated string arena.
///
/// Offset 0 is reserved for the nil string (SQL NULL).
class StrHeap {
 public:
  StrHeap() {
    // Reserve offset 0 for nil: a single NUL byte.
    data_.push_back('\0');
  }

  /// \brief Intern `s`, returning its offset. Equal strings get equal offsets.
  uint64_t Put(std::string_view s) {
    auto it = index_.find(std::string(s));
    if (it != index_.end()) return it->second;
    uint64_t off = data_.size();
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back('\0');
    index_.emplace(std::string(s), off);
    offsets_.insert(off);
    return off;
  }

  /// \brief The string at `off`. Offset 0 yields the empty nil string.
  std::string_view Get(uint64_t off) const {
    const char* p = data_.data() + off;
    return std::string_view(p);
  }

  bool IsNil(uint64_t off) const { return off == 0; }

  /// \brief True if `off` is the start of an interned string (or nil). Used
  /// to validate string BAT offsets loaded from disk; O(1) so the lazy-load
  /// path can afford a check per row.
  bool IsInterned(uint64_t off) const {
    return off == 0 || offsets_.count(off) > 0;
  }

  size_t ByteSize() const { return data_.size(); }
  size_t UniqueCount() const { return index_.size(); }

  // -------------------------------------------------------------------------
  // Heap export/import (durable storage; see docs/storage.md)
  // -------------------------------------------------------------------------

  /// \brief The raw arena bytes (NUL-terminated strings back to back,
  /// starting with the reserved nil byte). This is the on-disk payload.
  const std::vector<char>& raw() const { return data_; }

  /// \brief Rebuild a heap from raw arena bytes, re-deriving the dedup index
  /// by walking the NUL-terminated strings. Validates the nil prologue and
  /// the terminating NUL, so truncated or shifted payloads fail cleanly.
  static Result<std::shared_ptr<StrHeap>> FromBytes(std::string_view bytes);

 private:
  std::vector<char> data_;
  std::unordered_map<std::string, uint64_t> index_;
  std::unordered_set<uint64_t> offsets_;  // canonical start offsets
};

}  // namespace gdk
}  // namespace sciql

#endif  // SCIQL_GDK_STRHEAP_H_
