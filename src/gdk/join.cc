#include <algorithm>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/hash.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Per-probe-morsel match lists; `b` holds build-side oids, `p` probe-side
// oids. Morsels are concatenated in order, so the final result is sorted by
// probe row with matches per probe row in ascending build-oid order —
// independent of the thread count.
struct MatchPart {
  std::vector<oid_t> b;
  std::vector<oid_t> p;
};

JoinResult AssemblePairs(const std::vector<MatchPart>& parts,
                         bool build_left) {
  size_t total = 0;
  for (const auto& part : parts) total += part.b.size();
  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  out.left->Reserve(total);
  out.right->Reserve(total);
  auto& lo = out.left->oids();
  auto& ro = out.right->oids();
  for (const auto& part : parts) {
    const auto& l = build_left ? part.b : part.p;
    const auto& r = build_left ? part.p : part.b;
    lo.insert(lo.end(), l.begin(), l.end());
    ro.insert(ro.end(), r.begin(), r.end());
  }
  return out;
}

// Probe driver shared by the join kernels: probe_row(i, bvec, pvec) appends
// the build/probe oids matching probe row i. Multi-threaded pools partition
// the probe rows into morsels and concatenate per-morsel matches in morsel
// order; single-threaded pools emit straight into the output (same pairs,
// no intermediate copies).
template <typename ProbeFn>
JoinResult ProbeJoin(size_t np, size_t est_matches, bool build_left,
                     ProbeFn probe_row) {
  size_t nmorsels = MorselCount(np, kMorselRows);
  if (nmorsels <= 1 || ThreadPool::Get().thread_count() <= 1) {
    JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
    out.left->Reserve(est_matches);
    out.right->Reserve(est_matches);
    auto* b = build_left ? &out.left->oids() : &out.right->oids();
    auto* p = build_left ? &out.right->oids() : &out.left->oids();
    for (size_t i = 0; i < np; ++i) probe_row(i, b, p);
    return out;
  }
  std::vector<MatchPart> parts(nmorsels);
  ThreadPool::Get().ParallelFor(
      np, kMorselRows, [&](size_t m, size_t begin, size_t end) {
        MatchPart& part = parts[m];
        for (size_t i = begin; i < end; ++i) {
          probe_row(i, &part.b, &part.p);
        }
      });
  return AssemblePairs(parts, build_left);
}

// Merge-join-style probe reusing the build side's persistent order index:
// every probe row binary-searches its run of equal build values. Runs in
// the sorted index are ascending row id (stable sort), so per-probe matches
// come out in ascending build oid, and pairs are ordered by probe row —
// HashJoin's output shape, with the roles possibly flipped (see below).
template <typename T>
JoinResult OrderedProbeJoin(const std::vector<T>& build,
                            const std::vector<T>& probe,
                            const std::vector<oid_t>& ord, bool build_left) {
  return ProbeJoin(
      probe.size(), build.size(), build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        const T v = probe[i];
        if (TypeTraits<T>::IsNil(v)) return;
        // Nils sort below every value, so they sit strictly before the run.
        auto it = std::lower_bound(
            ord.begin(), ord.end(), v, [&build](oid_t row, const T& x) {
              const T& bv = build[row];
              return TypeTraits<T>::IsNil(bv) || bv < x;
            });
        for (; it != ord.end() && build[*it] == v; ++it) {
          bvec->push_back(*it);
          pvec->push_back(static_cast<oid_t>(i));
        }
      });
}

// True merge join for two indexed inputs: one linear pass over both sorted
// permutations records, for every probe row, its run [begin, end) of equal
// keys in the build side's sorted index; the shared probe driver then
// emits the pairs. No hash table, no binary searches — O(nb + np + pairs).
// Build/probe roles and output shape are exactly the hash path's (pairs
// ordered by probe row; within a row ascending build oid, because equal-key
// runs of the stable sort are ascending row id), so the result is
// bit-identical to the hash join, not merely the same multiset.
//
// The key shape is abstracted behind four callables so one pass serves
// single numeric keys, string keys (content compares — heap offsets are
// never compared across heaps) and multi-key tuples: `build_nil`/`probe_nil`
// mark unjoinable rows (any nil key — with multi-key tuples those are NOT a
// prefix of the index, nil secondaries nest inside earlier keys' runs, so
// they are skipped inline as the cursors pass them), `cmp(b_row, p_row)`
// three-way-compares a build row against a probe row under the same
// nil-first order the indexes use, and `build_eq` tests build-side key
// equality for run extension.
template <typename BNil, typename PNil, typename Cmp, typename BEq>
JoinResult MergeJoinRuns(size_t nb, size_t np, const std::vector<oid_t>& bord,
                         const std::vector<oid_t>& pord, bool build_left,
                         BNil build_nil, PNil probe_nil, Cmp cmp,
                         BEq build_eq) {
  std::vector<size_t> run_begin(np, 0);
  std::vector<size_t> run_end(np, 0);
  size_t bi = 0;
  size_t pi = 0;
  size_t matches = 0;
  while (bi < nb && pi < np) {
    if (build_nil(bord[bi])) {
      ++bi;
      continue;
    }
    if (probe_nil(pord[pi])) {
      ++pi;
      continue;
    }
    int c = cmp(bord[bi], pord[pi]);
    if (c < 0) {
      ++bi;
    } else if (c > 0) {
      ++pi;
    } else {
      size_t be = bi + 1;
      while (be < nb && build_eq(bord[bi], bord[be])) ++be;
      const oid_t pivot = bord[bi];
      // A row equal to the nil-free pivot is itself nil-free, so the run
      // extension needs no extra nil checks.
      while (pi < np && cmp(pivot, pord[pi]) == 0) {
        run_begin[pord[pi]] = bi;
        run_end[pord[pi]] = be;
        matches += be - bi;
        ++pi;
      }
      bi = be;
    }
  }
  return ProbeJoin(
      np, matches, build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        for (size_t j = run_begin[i]; j < run_end[i]; ++j) {
          bvec->push_back(bord[j]);
          pvec->push_back(static_cast<oid_t>(i));
        }
      });
}

template <typename T>
JoinResult MergeJoinTyped(const std::vector<T>& build,
                          const std::vector<T>& probe,
                          const std::vector<oid_t>& bord,
                          const std::vector<oid_t>& pord, bool build_left) {
  return MergeJoinRuns(
      build.size(), probe.size(), bord, pord, build_left,
      [&](oid_t row) { return TypeTraits<T>::IsNil(build[row]); },
      [&](oid_t row) { return TypeTraits<T>::IsNil(probe[row]); },
      [&](oid_t b, oid_t p) {
        // -0.0 and 0.0 compare equal here, exactly as the sort keys (and
        // the hash path's KeyBits normalization) collapse them.
        const T& bv = build[b];
        const T& pv = probe[p];
        return (pv < bv) - (bv < pv);
      },
      [&](oid_t a, oid_t b) { return build[a] == build[b]; });
}

template <typename T>
Result<JoinResult> HashJoinTyped(const BAT& l, const BAT& r) {
  const auto& lv = l.Data<T>();
  const auto& rv = r.Data<T>();
  // Build on the smaller side.
  const bool build_left = lv.size() <= rv.size();
  const auto& build = build_left ? lv : rv;
  const auto& probe = build_left ? rv : lv;
  size_t nb = build.size();
  size_t np = probe.size();

  const bool use_index = Controls().use_index_paths;
  const OrderIndexPtr bidx = use_index ? (build_left ? l : r).order_index()
                                       : nullptr;
  const OrderIndexPtr pidx = use_index ? (build_left ? r : l).order_index()
                                       : nullptr;

  // Merge-join-style flip: when the side that would be *probed* (the larger
  // one) carries a persistent order index and the other side is small
  // enough, take the indexed side as build and binary-search it per probe
  // row. That skips scanning/hashing the large side entirely: cost is
  // np_small * log2(n_large) against the hash path's n_small + n_large.
  // (An index on the smaller side is never used — with build = smaller
  // side, log-factor probes always cost more than the hash build they'd
  // avoid.) Pairs stay ordered by probe row, which under the flip is the
  // non-indexed side; SQL join output is unordered and the choice depends
  // only on database state, not thread count, so results stay deterministic.
  if (pidx != nullptr && np > 0) {
    size_t log2np = 1;
    while ((size_t(1) << log2np) < np) ++log2np;
    if (nb * (log2np + 1) < nb + np) {
      Telemetry().joins_indexed_probe++;
      return OrderedProbeJoin(probe, build, *pidx, !build_left);
    }
  }

  // Both sides indexed and the one-sided probe gate above did not fire
  // (the sides are within a log factor of each other, so O(nb + np) work
  // is unavoidable): take the merge path. In that regime it dominates the
  // hash path — same linear pass, but no hash table and no re-hashing —
  // while for a tiny build side the gate above stays strictly better
  // (log-factor probes instead of walking the large index, and no O(np)
  // run bookkeeping).
  if (bidx != nullptr && pidx != nullptr) {
    Telemetry().joins_merge++;
    return MergeJoinTyped(build, probe, *bidx, *pidx, build_left);
  }

  Telemetry().joins_hash++;
  OidHashTable table(nb);
  // Descending insertion makes every chain traverse in ascending build oid.
  for (size_t i = nb; i-- > 0;) {
    if (TypeTraits<T>::IsNil(build[i])) continue;
    table.Insert(Fingerprint64(KeyBits(build[i])), static_cast<oid_t>(i));
  }

  return ProbeJoin(
      np, nb, build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        if (TypeTraits<T>::IsNil(probe[i])) return;
        uint64_t h = Fingerprint64(KeyBits(probe[i]));
        table.ForEachCandidate(h, [&](oid_t bi) {
          // Hash collision guard: re-check actual equality.
          if (build[bi] != probe[i]) return;
          bvec->push_back(bi);
          pvec->push_back(static_cast<oid_t>(i));
        });
      });
}

Result<JoinResult> HashJoinStr(const BAT& l, const BAT& r) {
  // Strings hash by content; offsets are only comparable within one heap.
  size_t nb = l.Count();
  size_t np = r.Count();
  const bool same_heap = l.heap() == r.heap();

  // Both sides indexed: merge instead of hashing. Build/probe roles stay
  // the hash path's fixed ones (build = left), so the output is
  // bit-identical to the hash join. Runs compare through the decoded
  // string views — the same comparator the sort used — never raw heap
  // offsets across heaps; build-side run extension may compare offsets
  // because one BAT interns into one deduplicated heap.
  if (Controls().use_index_paths && l.order_index() != nullptr &&
      r.order_index() != nullptr) {
    Telemetry().joins_merge++;
    Telemetry().joins_merge_str++;
    return MergeJoinRuns(
        nb, np, *l.order_index(), *r.order_index(), /*build_left=*/true,
        [&](oid_t row) { return l.IsNullAt(row); },
        [&](oid_t row) { return r.IsNullAt(row); },
        [&](oid_t b, oid_t p) { return l.GetStr(b).compare(r.GetStr(p)); },
        [&](oid_t a, oid_t b) { return l.oids()[a] == l.oids()[b]; });
  }

  Telemetry().joins_hash++;
  OidHashTable table(nb);
  for (size_t i = nb; i-- > 0;) {
    if (l.IsNullAt(i)) continue;
    table.Insert(Fingerprint64(l.GetStr(i)), static_cast<oid_t>(i));
  }

  return ProbeJoin(
      np, std::min(nb, np), /*build_left=*/true,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        if (r.IsNullAt(i)) return;
        std::string_view s = r.GetStr(i);
        uint64_t h = Fingerprint64(s);
        table.ForEachCandidate(h, [&](oid_t bi) {
          // Within one deduplicated heap, offset equality is string
          // equality; across heaps compare content.
          bool eq =
              same_heap ? l.oids()[bi] == r.oids()[i] : l.GetStr(bi) == s;
          if (!eq) return;
          bvec->push_back(bi);
          pvec->push_back(static_cast<oid_t>(i));
        });
      });
}

}  // namespace

Result<JoinResult> HashJoin(const BAT& l, const BAT& r) {
  if (l.type() != r.type()) {
    // Promote numerics to a common type, then join.
    if (IsNumeric(l.type()) && IsNumeric(r.type())) {
      PhysType ct = PromoteNumeric(l.type(), r.type());
      SCIQL_ASSIGN_OR_RETURN(BATPtr lc, CastBat(l, ct));
      SCIQL_ASSIGN_OR_RETURN(BATPtr rc, CastBat(r, ct));
      return HashJoin(*lc, *rc);
    }
    return Status::TypeMismatch(
        StrFormat("join on %s vs %s", PhysTypeName(l.type()),
                  PhysTypeName(r.type())));
  }
  switch (l.type()) {
    case PhysType::kBit:
      return HashJoinTyped<uint8_t>(l, r);
    case PhysType::kInt:
      return HashJoinTyped<int32_t>(l, r);
    case PhysType::kLng:
      return HashJoinTyped<int64_t>(l, r);
    case PhysType::kDbl:
      return HashJoinTyped<double>(l, r);
    case PhysType::kOid:
      return HashJoinTyped<uint64_t>(l, r);
    case PhysType::kStr:
      return HashJoinStr(l, r);
  }
  return Status::Internal("unreachable join type");
}

namespace {

// Canonical per-row key bits for multi-key hashing; NULL rows are marked
// unjoinable by the caller.
uint64_t RowKeyBits(const BAT& b, size_t i, bool* is_null) {
  *is_null = b.IsNullAt(i);
  if (*is_null) return 0;
  switch (b.type()) {
    case PhysType::kBit:
      return static_cast<uint64_t>(b.bits()[i]);
    case PhysType::kInt:
      return static_cast<uint64_t>(static_cast<int64_t>(b.ints()[i]));
    case PhysType::kLng:
      return static_cast<uint64_t>(b.lngs()[i]);
    case PhysType::kDbl:
      return KeyBits(b.dbls()[i]);
    case PhysType::kOid:
      return b.oids()[i];
    case PhysType::kStr:
      return Fingerprint64(b.GetStr(i));
  }
  return 0;
}

// Combined row hash over all key columns; NULL in any column makes the row
// unjoinable.
uint64_t HashRow(const std::vector<const BAT*>& keys, size_t i,
                 bool* is_null) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const BAT* b : keys) {
    bool null_part = false;
    uint64_t bits = RowKeyBits(*b, i, &null_part);
    if (null_part) {
      *is_null = true;
      return 0;
    }
    h = HashCombine(h, bits);
  }
  *is_null = false;
  return Fingerprint64(h);
}

bool AnyKeyNull(const std::vector<const BAT*>& keys, oid_t row) {
  for (const BAT* b : keys) {
    if (b->IsNullAt(row)) return true;
  }
  return false;
}

bool RowsEqual(const std::vector<const BAT*>& lkeys, size_t li,
               const std::vector<const BAT*>& rkeys, size_t ri) {
  for (size_t k = 0; k < lkeys.size(); ++k) {
    const BAT& l = *lkeys[k];
    const BAT& r = *rkeys[k];
    if (l.IsNullAt(li) || r.IsNullAt(ri)) return false;
    if (l.type() == PhysType::kStr || r.type() == PhysType::kStr) {
      if (l.type() != r.type()) return false;
      if (l.GetStr(li) != r.GetStr(ri)) return false;
      continue;
    }
    // Numeric comparison in double space is exact for our value ranges.
    double lv = l.GetScalar(li).AsDouble();
    double rv = r.GetScalar(ri).AsDouble();
    if (lv != rv) return false;
  }
  return true;
}

}  // namespace

Result<JoinResult> HashJoinMulti(const std::vector<const BAT*>& lkeys,
                                 const std::vector<const BAT*>& rkeys) {
  if (lkeys.empty() || lkeys.size() != rkeys.size()) {
    return Status::Internal("HashJoinMulti: bad key arity");
  }
  if (lkeys.size() == 1) {
    // Single-key joins use the typed fast path (with numeric promotion).
    return HashJoin(*lkeys[0], *rkeys[0]);
  }
  size_t nl = lkeys[0]->Count();
  size_t nr = rkeys[0]->Count();
  for (const BAT* b : lkeys) {
    if (b->Count() != nl) return Status::Internal("left keys misaligned");
  }
  for (const BAT* b : rkeys) {
    if (b->Count() != nr) return Status::Internal("right keys misaligned");
  }
  // Promote numeric key pairs to a common type so 1 (int) == 1 (lng).
  std::vector<BATPtr> casts;
  std::vector<const BAT*> lk = lkeys;
  std::vector<const BAT*> rk = rkeys;
  for (size_t k = 0; k < lk.size(); ++k) {
    if (lk[k]->type() != rk[k]->type() && IsNumeric(lk[k]->type()) &&
        IsNumeric(rk[k]->type())) {
      PhysType ct = PromoteNumeric(lk[k]->type(), rk[k]->type());
      if (lk[k]->type() != ct) {
        SCIQL_ASSIGN_OR_RETURN(BATPtr c, CastBat(*lk[k], ct));
        casts.push_back(c);
        lk[k] = casts.back().get();
      }
      if (rk[k]->type() != ct) {
        SCIQL_ASSIGN_OR_RETURN(BATPtr c, CastBat(*rk[k], ct));
        casts.push_back(c);
        rk[k] = casts.back().get();
      }
    }
  }

  const bool build_left = nl <= nr;
  const auto& build = build_left ? lk : rk;
  const auto& probe = build_left ? rk : lk;
  size_t nb = build_left ? nl : nr;
  size_t np = build_left ? nr : nl;

  // Merge path: when both sides carry a live index for the all-ascending
  // multi-key spec (cached on the first key column, secondary keys matched
  // by identity), one linear pass over the two sorted permutations replaces
  // the hash build + probe. Key pairs must share a type — mismatched
  // numerics were cast above, and a cast is a fresh BAT with no index, so
  // the spec lookup fails naturally and the join stays on the hash path.
  // Build/probe roles are the hash path's (build = smaller side) and runs
  // of the stable sort are ascending row id, so the output is bit-identical
  // to the hash join. Tuples with a nil in ANY key column are unjoinable
  // and are skipped inline (they are not a prefix of a multi-key index).
  {
    bool types_match = true;
    for (size_t c = 0; c < lk.size(); ++c) {
      if (lk[c]->type() != rk[c]->type()) {
        types_match = false;
        break;
      }
    }
    if (types_match && Controls().use_index_paths) {
      const std::vector<bool> all_asc(lk.size(), false);
      gdk::OrderIndexPtr bidx = build[0]->FindOrderIndexSpec(build, all_asc);
      gdk::OrderIndexPtr pidx = probe[0]->FindOrderIndexSpec(probe, all_asc);
      if (bidx != nullptr && pidx != nullptr) {
        Telemetry().joins_merge++;
        Telemetry().joins_merge_multi++;
        return MergeJoinRuns(
            nb, np, *bidx, *pidx, build_left,
            [&](oid_t row) { return AnyKeyNull(build, row); },
            [&](oid_t row) { return AnyKeyNull(probe, row); },
            [&](oid_t b, oid_t p) { return CompareKeyRows(build, b, probe, p); },
            [&](oid_t a, oid_t b) {
              return CompareKeyRows(build, a, build, b) == 0;
            });
      }
    }
  }

  Telemetry().joins_hash++;
  OidHashTable table(nb);
  for (size_t i = nb; i-- > 0;) {
    bool is_null = false;
    uint64_t h = HashRow(build, i, &is_null);
    if (is_null) continue;
    table.Insert(h, static_cast<oid_t>(i));
  }

  return ProbeJoin(
      np, std::min(nb, np), build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        bool is_null = false;
        uint64_t h = HashRow(probe, i, &is_null);
        if (is_null) return;
        table.ForEachCandidate(h, [&](oid_t bi) {
          bool eq = build_left ? RowsEqual(lk, bi, rk, i)
                               : RowsEqual(lk, i, rk, bi);
          if (!eq) return;
          bvec->push_back(bi);
          pvec->push_back(static_cast<oid_t>(i));
        });
      });
}

JoinResult CrossJoin(size_t nl, size_t nr) {
  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  out.left->Reserve(nl * nr);
  out.right->Reserve(nl * nr);
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nr; ++j) {
      out.left->oids().push_back(i);
      out.right->oids().push_back(j);
    }
  }
  return out;
}

}  // namespace gdk
}  // namespace sciql
