#include <algorithm>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gdk/hash.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Per-probe-morsel match lists; `b` holds build-side oids, `p` probe-side
// oids. Morsels are concatenated in order, so the final result is sorted by
// probe row with matches per probe row in ascending build-oid order —
// independent of the thread count.
struct MatchPart {
  std::vector<oid_t> b;
  std::vector<oid_t> p;
};

JoinResult AssemblePairs(const std::vector<MatchPart>& parts,
                         bool build_left) {
  size_t total = 0;
  for (const auto& part : parts) total += part.b.size();
  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  out.left->Reserve(total);
  out.right->Reserve(total);
  auto& lo = out.left->oids();
  auto& ro = out.right->oids();
  for (const auto& part : parts) {
    const auto& l = build_left ? part.b : part.p;
    const auto& r = build_left ? part.p : part.b;
    lo.insert(lo.end(), l.begin(), l.end());
    ro.insert(ro.end(), r.begin(), r.end());
  }
  return out;
}

// Probe driver shared by the join kernels: probe_row(i, bvec, pvec) appends
// the build/probe oids matching probe row i. Multi-threaded pools partition
// the probe rows into morsels and concatenate per-morsel matches in morsel
// order; single-threaded pools emit straight into the output (same pairs,
// no intermediate copies).
template <typename ProbeFn>
JoinResult ProbeJoin(size_t np, size_t est_matches, bool build_left,
                     ProbeFn probe_row) {
  size_t nmorsels = MorselCount(np, kMorselRows);
  if (nmorsels <= 1 || ThreadPool::Get().thread_count() <= 1) {
    JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
    out.left->Reserve(est_matches);
    out.right->Reserve(est_matches);
    auto* b = build_left ? &out.left->oids() : &out.right->oids();
    auto* p = build_left ? &out.right->oids() : &out.left->oids();
    for (size_t i = 0; i < np; ++i) probe_row(i, b, p);
    return out;
  }
  std::vector<MatchPart> parts(nmorsels);
  ThreadPool::Get().ParallelFor(
      np, kMorselRows, [&](size_t m, size_t begin, size_t end) {
        MatchPart& part = parts[m];
        for (size_t i = begin; i < end; ++i) {
          probe_row(i, &part.b, &part.p);
        }
      });
  return AssemblePairs(parts, build_left);
}

// Merge-join-style probe reusing the build side's persistent order index:
// every probe row binary-searches its run of equal build values. Runs in
// the sorted index are ascending row id (stable sort), so per-probe matches
// come out in ascending build oid, and pairs are ordered by probe row —
// HashJoin's output shape, with the roles possibly flipped (see below).
template <typename T>
JoinResult OrderedProbeJoin(const std::vector<T>& build,
                            const std::vector<T>& probe,
                            const std::vector<oid_t>& ord, bool build_left) {
  return ProbeJoin(
      probe.size(), build.size(), build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        const T v = probe[i];
        if (TypeTraits<T>::IsNil(v)) return;
        // Nils sort below every value, so they sit strictly before the run.
        auto it = std::lower_bound(
            ord.begin(), ord.end(), v, [&build](oid_t row, const T& x) {
              const T& bv = build[row];
              return TypeTraits<T>::IsNil(bv) || bv < x;
            });
        for (; it != ord.end() && build[*it] == v; ++it) {
          bvec->push_back(*it);
          pvec->push_back(static_cast<oid_t>(i));
        }
      });
}

// True merge join for two indexed inputs: one linear pass over both sorted
// permutations records, for every probe row, its run [begin, end) of equal
// values in the build side's sorted index; the shared probe driver then
// emits the pairs. No hash table, no binary searches — O(nb + np + pairs).
// Build/probe roles and output shape are exactly the hash path's (pairs
// ordered by probe row; within a row ascending build oid, because equal-key
// runs of the stable sort are ascending row id), so the result is
// bit-identical to the hash join, not merely the same multiset.
template <typename T>
JoinResult MergeJoinTyped(const std::vector<T>& build,
                          const std::vector<T>& probe,
                          const std::vector<oid_t>& bord,
                          const std::vector<oid_t>& pord, bool build_left) {
  const size_t nb = build.size();
  const size_t np = probe.size();
  std::vector<size_t> run_begin(np, 0);
  std::vector<size_t> run_end(np, 0);
  // Nils sort first on both sides and never match: skip both prefixes.
  size_t bi = 0;
  while (bi < nb && TypeTraits<T>::IsNil(build[bord[bi]])) ++bi;
  size_t pi = 0;
  while (pi < np && TypeTraits<T>::IsNil(probe[pord[pi]])) ++pi;
  size_t matches = 0;
  while (pi < np && bi < nb) {
    const T pv = probe[pord[pi]];
    const T bv = build[bord[bi]];
    if (bv < pv) {
      ++bi;
    } else if (pv < bv) {
      ++pi;
    } else {
      size_t be = bi;
      while (be < nb && build[bord[be]] == pv) ++be;
      while (pi < np && probe[pord[pi]] == pv) {
        run_begin[pord[pi]] = bi;
        run_end[pord[pi]] = be;
        matches += be - bi;
        ++pi;
      }
      bi = be;
    }
  }
  return ProbeJoin(
      np, matches, build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        for (size_t j = run_begin[i]; j < run_end[i]; ++j) {
          bvec->push_back(bord[j]);
          pvec->push_back(static_cast<oid_t>(i));
        }
      });
}

template <typename T>
Result<JoinResult> HashJoinTyped(const BAT& l, const BAT& r) {
  const auto& lv = l.Data<T>();
  const auto& rv = r.Data<T>();
  // Build on the smaller side.
  const bool build_left = lv.size() <= rv.size();
  const auto& build = build_left ? lv : rv;
  const auto& probe = build_left ? rv : lv;
  size_t nb = build.size();
  size_t np = probe.size();

  const OrderIndexPtr bidx = (build_left ? l : r).order_index();
  const OrderIndexPtr pidx = (build_left ? r : l).order_index();

  // Merge-join-style flip: when the side that would be *probed* (the larger
  // one) carries a persistent order index and the other side is small
  // enough, take the indexed side as build and binary-search it per probe
  // row. That skips scanning/hashing the large side entirely: cost is
  // np_small * log2(n_large) against the hash path's n_small + n_large.
  // (An index on the smaller side is never used — with build = smaller
  // side, log-factor probes always cost more than the hash build they'd
  // avoid.) Pairs stay ordered by probe row, which under the flip is the
  // non-indexed side; SQL join output is unordered and the choice depends
  // only on database state, not thread count, so results stay deterministic.
  if (pidx != nullptr && np > 0) {
    size_t log2np = 1;
    while ((size_t(1) << log2np) < np) ++log2np;
    if (nb * (log2np + 1) < nb + np) {
      Telemetry().joins_indexed_probe++;
      return OrderedProbeJoin(probe, build, *pidx, !build_left);
    }
  }

  // Both sides indexed and the one-sided probe gate above did not fire
  // (the sides are within a log factor of each other, so O(nb + np) work
  // is unavoidable): take the merge path. In that regime it dominates the
  // hash path — same linear pass, but no hash table and no re-hashing —
  // while for a tiny build side the gate above stays strictly better
  // (log-factor probes instead of walking the large index, and no O(np)
  // run bookkeeping).
  if (bidx != nullptr && pidx != nullptr) {
    Telemetry().joins_merge++;
    return MergeJoinTyped(build, probe, *bidx, *pidx, build_left);
  }

  Telemetry().joins_hash++;
  OidHashTable table(nb);
  // Descending insertion makes every chain traverse in ascending build oid.
  for (size_t i = nb; i-- > 0;) {
    if (TypeTraits<T>::IsNil(build[i])) continue;
    table.Insert(Fingerprint64(KeyBits(build[i])), static_cast<oid_t>(i));
  }

  return ProbeJoin(
      np, nb, build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        if (TypeTraits<T>::IsNil(probe[i])) return;
        uint64_t h = Fingerprint64(KeyBits(probe[i]));
        table.ForEachCandidate(h, [&](oid_t bi) {
          // Hash collision guard: re-check actual equality.
          if (build[bi] != probe[i]) return;
          bvec->push_back(bi);
          pvec->push_back(static_cast<oid_t>(i));
        });
      });
}

Result<JoinResult> HashJoinStr(const BAT& l, const BAT& r) {
  // Strings hash by content; offsets are only comparable within one heap.
  size_t nb = l.Count();
  size_t np = r.Count();
  const bool same_heap = l.heap() == r.heap();

  Telemetry().joins_hash++;
  OidHashTable table(nb);
  for (size_t i = nb; i-- > 0;) {
    if (l.IsNullAt(i)) continue;
    table.Insert(Fingerprint64(l.GetStr(i)), static_cast<oid_t>(i));
  }

  return ProbeJoin(
      np, std::min(nb, np), /*build_left=*/true,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        if (r.IsNullAt(i)) return;
        std::string_view s = r.GetStr(i);
        uint64_t h = Fingerprint64(s);
        table.ForEachCandidate(h, [&](oid_t bi) {
          // Within one deduplicated heap, offset equality is string
          // equality; across heaps compare content.
          bool eq =
              same_heap ? l.oids()[bi] == r.oids()[i] : l.GetStr(bi) == s;
          if (!eq) return;
          bvec->push_back(bi);
          pvec->push_back(static_cast<oid_t>(i));
        });
      });
}

}  // namespace

Result<JoinResult> HashJoin(const BAT& l, const BAT& r) {
  if (l.type() != r.type()) {
    // Promote numerics to a common type, then join.
    if (IsNumeric(l.type()) && IsNumeric(r.type())) {
      PhysType ct = PromoteNumeric(l.type(), r.type());
      SCIQL_ASSIGN_OR_RETURN(BATPtr lc, CastBat(l, ct));
      SCIQL_ASSIGN_OR_RETURN(BATPtr rc, CastBat(r, ct));
      return HashJoin(*lc, *rc);
    }
    return Status::TypeMismatch(
        StrFormat("join on %s vs %s", PhysTypeName(l.type()),
                  PhysTypeName(r.type())));
  }
  switch (l.type()) {
    case PhysType::kBit:
      return HashJoinTyped<uint8_t>(l, r);
    case PhysType::kInt:
      return HashJoinTyped<int32_t>(l, r);
    case PhysType::kLng:
      return HashJoinTyped<int64_t>(l, r);
    case PhysType::kDbl:
      return HashJoinTyped<double>(l, r);
    case PhysType::kOid:
      return HashJoinTyped<uint64_t>(l, r);
    case PhysType::kStr:
      return HashJoinStr(l, r);
  }
  return Status::Internal("unreachable join type");
}

namespace {

// Canonical per-row key bits for multi-key hashing; NULL rows are marked
// unjoinable by the caller.
uint64_t RowKeyBits(const BAT& b, size_t i, bool* is_null) {
  *is_null = b.IsNullAt(i);
  if (*is_null) return 0;
  switch (b.type()) {
    case PhysType::kBit:
      return static_cast<uint64_t>(b.bits()[i]);
    case PhysType::kInt:
      return static_cast<uint64_t>(static_cast<int64_t>(b.ints()[i]));
    case PhysType::kLng:
      return static_cast<uint64_t>(b.lngs()[i]);
    case PhysType::kDbl:
      return KeyBits(b.dbls()[i]);
    case PhysType::kOid:
      return b.oids()[i];
    case PhysType::kStr:
      return Fingerprint64(b.GetStr(i));
  }
  return 0;
}

// Combined row hash over all key columns; NULL in any column makes the row
// unjoinable.
uint64_t HashRow(const std::vector<const BAT*>& keys, size_t i,
                 bool* is_null) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const BAT* b : keys) {
    bool null_part = false;
    uint64_t bits = RowKeyBits(*b, i, &null_part);
    if (null_part) {
      *is_null = true;
      return 0;
    }
    h = HashCombine(h, bits);
  }
  *is_null = false;
  return Fingerprint64(h);
}

bool RowsEqual(const std::vector<const BAT*>& lkeys, size_t li,
               const std::vector<const BAT*>& rkeys, size_t ri) {
  for (size_t k = 0; k < lkeys.size(); ++k) {
    const BAT& l = *lkeys[k];
    const BAT& r = *rkeys[k];
    if (l.IsNullAt(li) || r.IsNullAt(ri)) return false;
    if (l.type() == PhysType::kStr || r.type() == PhysType::kStr) {
      if (l.type() != r.type()) return false;
      if (l.GetStr(li) != r.GetStr(ri)) return false;
      continue;
    }
    // Numeric comparison in double space is exact for our value ranges.
    double lv = l.GetScalar(li).AsDouble();
    double rv = r.GetScalar(ri).AsDouble();
    if (lv != rv) return false;
  }
  return true;
}

}  // namespace

Result<JoinResult> HashJoinMulti(const std::vector<const BAT*>& lkeys,
                                 const std::vector<const BAT*>& rkeys) {
  if (lkeys.empty() || lkeys.size() != rkeys.size()) {
    return Status::Internal("HashJoinMulti: bad key arity");
  }
  if (lkeys.size() == 1) {
    // Single-key joins use the typed fast path (with numeric promotion).
    return HashJoin(*lkeys[0], *rkeys[0]);
  }
  size_t nl = lkeys[0]->Count();
  size_t nr = rkeys[0]->Count();
  for (const BAT* b : lkeys) {
    if (b->Count() != nl) return Status::Internal("left keys misaligned");
  }
  for (const BAT* b : rkeys) {
    if (b->Count() != nr) return Status::Internal("right keys misaligned");
  }
  // Promote numeric key pairs to a common type so 1 (int) == 1 (lng).
  std::vector<BATPtr> casts;
  std::vector<const BAT*> lk = lkeys;
  std::vector<const BAT*> rk = rkeys;
  for (size_t k = 0; k < lk.size(); ++k) {
    if (lk[k]->type() != rk[k]->type() && IsNumeric(lk[k]->type()) &&
        IsNumeric(rk[k]->type())) {
      PhysType ct = PromoteNumeric(lk[k]->type(), rk[k]->type());
      if (lk[k]->type() != ct) {
        SCIQL_ASSIGN_OR_RETURN(BATPtr c, CastBat(*lk[k], ct));
        casts.push_back(c);
        lk[k] = casts.back().get();
      }
      if (rk[k]->type() != ct) {
        SCIQL_ASSIGN_OR_RETURN(BATPtr c, CastBat(*rk[k], ct));
        casts.push_back(c);
        rk[k] = casts.back().get();
      }
    }
  }

  const bool build_left = nl <= nr;
  const auto& build = build_left ? lk : rk;
  const auto& probe = build_left ? rk : lk;
  size_t nb = build_left ? nl : nr;
  size_t np = build_left ? nr : nl;

  Telemetry().joins_hash++;
  OidHashTable table(nb);
  for (size_t i = nb; i-- > 0;) {
    bool is_null = false;
    uint64_t h = HashRow(build, i, &is_null);
    if (is_null) continue;
    table.Insert(h, static_cast<oid_t>(i));
  }

  return ProbeJoin(
      np, std::min(nb, np), build_left,
      [&](size_t i, std::vector<oid_t>* bvec, std::vector<oid_t>* pvec) {
        bool is_null = false;
        uint64_t h = HashRow(probe, i, &is_null);
        if (is_null) return;
        table.ForEachCandidate(h, [&](oid_t bi) {
          bool eq = build_left ? RowsEqual(lk, bi, rk, i)
                               : RowsEqual(lk, i, rk, bi);
          if (!eq) return;
          bvec->push_back(bi);
          pvec->push_back(static_cast<oid_t>(i));
        });
      });
}

JoinResult CrossJoin(size_t nl, size_t nr) {
  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  out.left->Reserve(nl * nr);
  out.right->Reserve(nl * nr);
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nr; ++j) {
      out.left->oids().push_back(i);
      out.right->oids().push_back(j);
    }
  }
  return out;
}

}  // namespace gdk
}  // namespace sciql
