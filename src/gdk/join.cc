#include <cstring>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {

namespace {

// Canonical 64-bit key for hashing a value of any physical type. NULLs are
// filtered by callers before keying.
template <typename T>
uint64_t KeyBits(const T& v) {
  if constexpr (std::is_same_v<T, double>) {
    // Normalize -0.0 == 0.0 so hash matches operator==.
    double d = v == 0.0 ? 0.0 : v;
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  } else {
    return static_cast<uint64_t>(v);
  }
}

template <typename T>
Result<JoinResult> HashJoinTyped(const BAT& l, const BAT& r) {
  const auto& lv = l.Data<T>();
  const auto& rv = r.Data<T>();
  // Build on the smaller side.
  const bool build_left = lv.size() <= rv.size();
  const auto& build = build_left ? lv : rv;
  const auto& probe = build_left ? rv : lv;

  std::unordered_multimap<uint64_t, oid_t> table;
  table.reserve(build.size());
  for (size_t i = 0; i < build.size(); ++i) {
    if (TypeTraits<T>::IsNil(build[i])) continue;
    table.emplace(KeyBits(build[i]), static_cast<oid_t>(i));
  }

  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  auto& lo = out.left->oids();
  auto& ro = out.right->oids();
  for (size_t i = 0; i < probe.size(); ++i) {
    if (TypeTraits<T>::IsNil(probe[i])) continue;
    auto [lo_it, hi_it] = table.equal_range(KeyBits(probe[i]));
    for (auto it = lo_it; it != hi_it; ++it) {
      // Hash collision guard: re-check actual equality.
      if (build[it->second] != probe[i]) continue;
      if (build_left) {
        lo.push_back(it->second);
        ro.push_back(static_cast<oid_t>(i));
      } else {
        lo.push_back(static_cast<oid_t>(i));
        ro.push_back(it->second);
      }
    }
  }
  return out;
}

Result<JoinResult> HashJoinStr(const BAT& l, const BAT& r) {
  // Strings hash by content; offsets are only comparable within one heap.
  std::unordered_multimap<std::string_view, oid_t> table;
  table.reserve(l.Count());
  for (size_t i = 0; i < l.Count(); ++i) {
    if (l.IsNullAt(i)) continue;
    table.emplace(l.GetStr(i), static_cast<oid_t>(i));
  }
  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  for (size_t i = 0; i < r.Count(); ++i) {
    if (r.IsNullAt(i)) continue;
    auto [lo_it, hi_it] = table.equal_range(r.GetStr(i));
    for (auto it = lo_it; it != hi_it; ++it) {
      out.left->oids().push_back(it->second);
      out.right->oids().push_back(static_cast<oid_t>(i));
    }
  }
  return out;
}

}  // namespace

Result<JoinResult> HashJoin(const BAT& l, const BAT& r) {
  if (l.type() != r.type()) {
    // Promote numerics to a common type, then join.
    if (IsNumeric(l.type()) && IsNumeric(r.type())) {
      PhysType ct = PromoteNumeric(l.type(), r.type());
      SCIQL_ASSIGN_OR_RETURN(BATPtr lc, CastBat(l, ct));
      SCIQL_ASSIGN_OR_RETURN(BATPtr rc, CastBat(r, ct));
      return HashJoin(*lc, *rc);
    }
    return Status::TypeMismatch(
        StrFormat("join on %s vs %s", PhysTypeName(l.type()),
                  PhysTypeName(r.type())));
  }
  switch (l.type()) {
    case PhysType::kBit:
      return HashJoinTyped<uint8_t>(l, r);
    case PhysType::kInt:
      return HashJoinTyped<int32_t>(l, r);
    case PhysType::kLng:
      return HashJoinTyped<int64_t>(l, r);
    case PhysType::kDbl:
      return HashJoinTyped<double>(l, r);
    case PhysType::kOid:
      return HashJoinTyped<uint64_t>(l, r);
    case PhysType::kStr:
      return HashJoinStr(l, r);
  }
  return Status::Internal("unreachable join type");
}

namespace {

// Canonical per-row key bits for multi-key hashing; NULL rows are marked
// unjoinable by the caller.
Result<uint64_t> RowKeyBits(const BAT& b, size_t i, bool* is_null) {
  *is_null = b.IsNullAt(i);
  if (*is_null) return uint64_t{0};
  switch (b.type()) {
    case PhysType::kBit:
      return static_cast<uint64_t>(b.bits()[i]);
    case PhysType::kInt:
      return static_cast<uint64_t>(static_cast<int64_t>(b.ints()[i]));
    case PhysType::kLng:
      return static_cast<uint64_t>(b.lngs()[i]);
    case PhysType::kDbl:
      return KeyBits(b.dbls()[i]);
    case PhysType::kOid:
      return b.oids()[i];
    case PhysType::kStr: {
      std::string_view s = b.GetStr(i);
      uint64_t h = 1469598103934665603ULL;
      for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      return h;
    }
  }
  return Status::Internal("unreachable key type");
}

bool RowsEqual(const std::vector<const BAT*>& lkeys, size_t li,
               const std::vector<const BAT*>& rkeys, size_t ri) {
  for (size_t k = 0; k < lkeys.size(); ++k) {
    const BAT& l = *lkeys[k];
    const BAT& r = *rkeys[k];
    if (l.IsNullAt(li) || r.IsNullAt(ri)) return false;
    if (l.type() == PhysType::kStr || r.type() == PhysType::kStr) {
      if (l.type() != r.type()) return false;
      if (l.GetStr(li) != r.GetStr(ri)) return false;
      continue;
    }
    // Numeric comparison in double space is exact for our value ranges.
    double lv = l.GetScalar(li).AsDouble();
    double rv = r.GetScalar(ri).AsDouble();
    if (lv != rv) return false;
  }
  return true;
}

}  // namespace

Result<JoinResult> HashJoinMulti(const std::vector<const BAT*>& lkeys,
                                 const std::vector<const BAT*>& rkeys) {
  if (lkeys.empty() || lkeys.size() != rkeys.size()) {
    return Status::Internal("HashJoinMulti: bad key arity");
  }
  if (lkeys.size() == 1) {
    // Single-key joins use the typed fast path (with numeric promotion).
    return HashJoin(*lkeys[0], *rkeys[0]);
  }
  size_t nl = lkeys[0]->Count();
  size_t nr = rkeys[0]->Count();
  for (const BAT* b : lkeys) {
    if (b->Count() != nl) return Status::Internal("left keys misaligned");
  }
  for (const BAT* b : rkeys) {
    if (b->Count() != nr) return Status::Internal("right keys misaligned");
  }
  // Promote numeric key pairs to a common type so 1 (int) == 1 (lng).
  std::vector<BATPtr> casts;
  std::vector<const BAT*> lk = lkeys;
  std::vector<const BAT*> rk = rkeys;
  for (size_t k = 0; k < lk.size(); ++k) {
    if (lk[k]->type() != rk[k]->type() && IsNumeric(lk[k]->type()) &&
        IsNumeric(rk[k]->type())) {
      PhysType ct = PromoteNumeric(lk[k]->type(), rk[k]->type());
      if (lk[k]->type() != ct) {
        SCIQL_ASSIGN_OR_RETURN(BATPtr c, CastBat(*lk[k], ct));
        casts.push_back(c);
        lk[k] = casts.back().get();
      }
      if (rk[k]->type() != ct) {
        SCIQL_ASSIGN_OR_RETURN(BATPtr c, CastBat(*rk[k], ct));
        casts.push_back(c);
        rk[k] = casts.back().get();
      }
    }
  }

  auto hash_row = [](const std::vector<const BAT*>& keys, size_t i,
                     bool* is_null) -> Result<uint64_t> {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const BAT* b : keys) {
      bool null_part = false;
      SCIQL_ASSIGN_OR_RETURN(uint64_t bits, RowKeyBits(*b, i, &null_part));
      if (null_part) {
        *is_null = true;
        return uint64_t{0};
      }
      h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    *is_null = false;
    return h;
  };

  const bool build_left = nl <= nr;
  const auto& build = build_left ? lk : rk;
  const auto& probe = build_left ? rk : lk;
  size_t nb = build_left ? nl : nr;
  size_t np = build_left ? nr : nl;

  std::unordered_multimap<uint64_t, oid_t> table;
  table.reserve(nb);
  for (size_t i = 0; i < nb; ++i) {
    bool is_null = false;
    SCIQL_ASSIGN_OR_RETURN(uint64_t h, hash_row(build, i, &is_null));
    if (is_null) continue;
    table.emplace(h, static_cast<oid_t>(i));
  }

  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  for (size_t i = 0; i < np; ++i) {
    bool is_null = false;
    SCIQL_ASSIGN_OR_RETURN(uint64_t h, hash_row(probe, i, &is_null));
    if (is_null) continue;
    auto [lo_it, hi_it] = table.equal_range(h);
    for (auto it = lo_it; it != hi_it; ++it) {
      size_t bi = it->second;
      bool eq = build_left ? RowsEqual(lk, bi, rk, i)
                           : RowsEqual(lk, i, rk, bi);
      if (!eq) continue;
      if (build_left) {
        out.left->oids().push_back(bi);
        out.right->oids().push_back(static_cast<oid_t>(i));
      } else {
        out.left->oids().push_back(static_cast<oid_t>(i));
        out.right->oids().push_back(bi);
      }
    }
  }
  return out;
}

JoinResult CrossJoin(size_t nl, size_t nr) {
  JoinResult out{BAT::Make(PhysType::kOid), BAT::Make(PhysType::kOid)};
  out.left->Reserve(nl * nr);
  out.right->Reserve(nl * nr);
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nr; ++j) {
      out.left->oids().push_back(i);
      out.right->oids().push_back(j);
    }
  }
  return out;
}

}  // namespace gdk
}  // namespace sciql
