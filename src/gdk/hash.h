// Shared hashing utilities and the open-addressing hash table used by the
// join and grouping kernels.
//
// Mirrors MonetDB's GDK hash layout: a power-of-two bucket array of chain
// heads plus a per-row `next` link array. Collision chains thread through the
// link array, so the whole table is two flat allocations with no per-node
// heap traffic (unlike std::unordered_multimap, which the seed used).

#ifndef SCIQL_GDK_HASH_H_
#define SCIQL_GDK_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/gdk/types.h"

namespace sciql {
namespace gdk {

/// \brief Canonical 64-bit key for a value of any physical type. Normalizes
/// -0.0 to 0.0 so the key matches operator== for doubles. NULLs must be
/// filtered by the caller.
template <typename T>
inline uint64_t KeyBits(const T& v) {
  if constexpr (std::is_same_v<T, double>) {
    double d = v == 0.0 ? 0.0 : v;
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  } else {
    return static_cast<uint64_t>(v);
  }
}

/// \brief 64-bit finalizing mixer (splitmix64); turns canonical key bits into
/// a well-distributed hash so power-of-two bucket masking is safe even for
/// dense integer keys.
inline uint64_t Fingerprint64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// \brief Content hash of a string (FNV-1a folded through the mixer).
inline uint64_t Fingerprint64(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return Fingerprint64(h);
}

/// \brief Order-dependent combiner for multi-key row hashes.
inline uint64_t HashCombine(uint64_t h, uint64_t bits) {
  return h ^ (bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// \brief Open-addressing bucket + next-chain multimap from 64-bit hashes to
/// oids. The caller verifies real key equality on each candidate (the table
/// only stores chain structure, not keys).
class OidHashTable {
 public:
  /// \brief Table sized for up to `n` entries (bucket count is the next
  /// power of two >= n, at least 8).
  explicit OidHashTable(size_t n) {
    size_t nbuckets = 8;
    while (nbuckets < n) nbuckets <<= 1;
    mask_ = nbuckets - 1;
    buckets_.assign(nbuckets, kOidNil);
    next_.assign(n, kOidNil);
  }

  /// \brief Push entry `i` (must be < n) onto the front of its chain.
  ///
  /// Chains are LIFO: inserting build rows in *descending* oid order makes
  /// every chain traverse in ascending oid order, which is the match order
  /// the join kernels guarantee per probe row.
  void Insert(uint64_t hash, oid_t i) {
    oid_t& head = buckets_[hash & mask_];
    next_[i] = head;
    head = i;
  }

  /// \brief Invoke `f(oid)` for every candidate in the chain of `hash`.
  /// Candidates are hash-bucket collisions; `f` must re-check equality.
  template <typename F>
  void ForEachCandidate(uint64_t hash, F&& f) const {
    for (oid_t i = buckets_[hash & mask_]; i != kOidNil; i = next_[i]) {
      f(i);
    }
  }

  /// \brief First chain entry for which `pred(oid)` is true, or kOidNil.
  template <typename Pred>
  oid_t FindFirst(uint64_t hash, Pred&& pred) const {
    for (oid_t i = buckets_[hash & mask_]; i != kOidNil; i = next_[i]) {
      if (pred(i)) return i;
    }
    return kOidNil;
  }

 private:
  uint64_t mask_ = 0;
  std::vector<oid_t> buckets_;  // chain heads per bucket, kOidNil = empty
  std::vector<oid_t> next_;     // per-entry chain link, kOidNil = end
};

}  // namespace gdk
}  // namespace sciql

#endif  // SCIQL_GDK_HASH_H_
