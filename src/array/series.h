// The paper's two new MAL primitives that materialise arrays (Sec. 3):
//
//   command array.series(start,step,stop,N,M) :bat[:oid,:int]
//   pattern array.filler(cnt, v:any_1)        :bat[:oid,:any_1]
//
// plus the positional helpers used to address cells (cell positions from
// dimension values, scatter of row data into cell positions).

#ifndef SCIQL_ARRAY_SERIES_H_
#define SCIQL_ARRAY_SERIES_H_

#include <vector>

#include "src/array/descriptor.h"
#include "src/common/result.h"
#include "src/gdk/bat.h"

namespace sciql {
namespace array {

/// \brief Materialise a dimension column: the values of `range`, each value
/// repeated `repeat_each` times consecutively, the whole sequence tiled
/// `repeat_group` times (the N and M of the paper's array.series).
gdk::BATPtr Series(const DimRange& range, size_t repeat_each,
                   size_t repeat_group);

/// \brief Materialise an attribute column: `count` copies of `v`
/// (the paper's array.filler).
gdk::BATPtr Filler(size_t count, const gdk::ScalarValue& v);

/// \brief Materialise dimension BAT `d` of the array: repetition factors are
/// derived from the position of the dimension, exactly as in Figure 3.
gdk::BATPtr MaterializeDim(const ArrayDesc& desc, size_t d);

/// \brief Linear cell positions for per-row dimension values.
///
/// `dim_vals[d]` holds the value column for dimension d; all columns must be
/// aligned. Rows whose values fall outside the array (or are NULL) yield the
/// nil oid, which downstream Project() turns into NULL — this implements the
/// paper's "cells outside the array dimension ranges are ignored" rule for
/// relative cell addressing.
Result<gdk::BATPtr> CellPositions(const ArrayDesc& desc,
                                  const std::vector<const gdk::BAT*>& dim_vals);

/// \brief Scatter row values into an attribute BAT at given cell positions
/// (nil positions are skipped). Implements array INSERT-as-overwrite and
/// UPDATE semantics.
Status ScatterIntoAttr(gdk::BAT* attr, const gdk::BAT& positions,
                       const gdk::BAT& values);

/// \brief Scatter one scalar into an attribute BAT at given cell positions.
Status ScatterConstIntoAttr(gdk::BAT* attr, const gdk::BAT& positions,
                            const gdk::ScalarValue& v);

}  // namespace array
}  // namespace sciql

#endif  // SCIQL_ARRAY_SERIES_H_
