// Array/table coercions (paper Sec. 2, "Array and Table Coercions").
//
// Array -> table is free in monetlite: the dimension and attribute BATs of an
// array *are* its table representation (dimensions form the compound key).
// Table -> array derives an unbounded array from the data: each dimension
// column's actual range is inferred, cells not present in the input become
// holes (or attribute defaults).

#ifndef SCIQL_ARRAY_COERCE_H_
#define SCIQL_ARRAY_COERCE_H_

#include <vector>

#include "src/array/descriptor.h"
#include "src/common/result.h"
#include "src/gdk/bat.h"

namespace sciql {
namespace array {

/// \brief A fully materialised array: descriptor plus one BAT per dimension
/// and one BAT per attribute, all cell-aligned.
struct MaterializedArray {
  ArrayDesc desc;
  std::vector<gdk::BATPtr> dim_bats;
  std::vector<gdk::BATPtr> attr_bats;
};

/// \brief Derive a dimension range from a column of observed values: the
/// range covers [min, max] with the step set to the gcd of the distinct
/// value gaps (1 if a single value).
Result<DimRange> DeriveRange(const gdk::BAT& dim_vals);

/// \brief Coerce row data to an array (SELECT [c1], [c2], v FROM t).
///
/// `dim_cols` are the bracketed columns, `attr_cols` the remaining ones.
/// The result is an unbounded array whose actual size is derived from the
/// data; cells without an input row keep the attribute defaults from
/// `attr_defaults` (pass NULL scalars to get holes). On duplicate
/// coordinates, the later row wins (INSERT-as-overwrite semantics).
Result<MaterializedArray> TableToArray(
    const std::vector<const gdk::BAT*>& dim_cols,
    const std::vector<std::string>& dim_names,
    const std::vector<const gdk::BAT*>& attr_cols,
    const std::vector<std::string>& attr_names,
    const std::vector<gdk::ScalarValue>& attr_defaults);

}  // namespace array
}  // namespace sciql

#endif  // SCIQL_ARRAY_COERCE_H_
