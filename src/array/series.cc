#include "src/array/series.h"

#include "src/common/string_util.h"

namespace sciql {
namespace array {

using gdk::BAT;
using gdk::BATPtr;
using gdk::PhysType;
using gdk::ScalarValue;

BATPtr Series(const DimRange& range, size_t repeat_each, size_t repeat_group) {
  auto out = BAT::Make(PhysType::kInt);
  size_t nvals = range.Size();
  auto& v = out->ints();
  v.reserve(nvals * repeat_each * repeat_group);
  for (size_t g = 0; g < repeat_group; ++g) {
    for (size_t i = 0; i < nvals; ++i) {
      int32_t val = static_cast<int32_t>(range.ValueAt(i));
      v.insert(v.end(), repeat_each, val);
    }
  }
  return out;
}

BATPtr Filler(size_t count, const ScalarValue& v) {
  return BAT::MakeConst(v, count);
}

BATPtr MaterializeDim(const ArrayDesc& desc, size_t d) {
  // N = product of the sizes of the dimensions declared after d,
  // M = product of the sizes of the dimensions declared before d.
  size_t repeat_each = 1;
  for (size_t i = d + 1; i < desc.ndims(); ++i) {
    repeat_each *= desc.dims()[i].range.Size();
  }
  size_t repeat_group = 1;
  for (size_t i = 0; i < d; ++i) {
    repeat_group *= desc.dims()[i].range.Size();
  }
  return Series(desc.dims()[d].range, repeat_each, repeat_group);
}

Result<gdk::BATPtr> CellPositions(
    const ArrayDesc& desc, const std::vector<const gdk::BAT*>& dim_vals) {
  if (dim_vals.size() != desc.ndims()) {
    return Status::Internal(
        StrFormat("CellPositions: %zu value columns for %zu dimensions",
                  dim_vals.size(), desc.ndims()));
  }
  size_t n = desc.ndims() == 0 ? 0 : dim_vals[0]->Count();
  for (const gdk::BAT* b : dim_vals) {
    if (b->Count() != n) {
      return Status::Internal("CellPositions: misaligned dimension columns");
    }
    if (b->type() != PhysType::kInt && b->type() != PhysType::kLng) {
      return Status::TypeMismatch("dimension values must be integers");
    }
  }
  std::vector<size_t> strides = desc.Strides();
  auto out = BAT::Make(PhysType::kOid);
  auto& pos = out->oids();
  pos.assign(n, gdk::kOidNil);
  for (size_t r = 0; r < n; ++r) {
    int64_t p = 0;
    bool ok = true;
    for (size_t d = 0; d < desc.ndims(); ++d) {
      const gdk::BAT* b = dim_vals[d];
      int64_t v;
      if (b->type() == PhysType::kInt) {
        int32_t x = b->ints()[r];
        if (x == gdk::kIntNil) {
          ok = false;
          break;
        }
        v = x;
      } else {
        int64_t x = b->lngs()[r];
        if (x == gdk::kLngNil) {
          ok = false;
          break;
        }
        v = x;
      }
      int64_t idx = desc.dims()[d].range.IndexOfOrNeg(v);
      if (idx < 0) {
        ok = false;
        break;
      }
      p += idx * static_cast<int64_t>(strides[d]);
    }
    if (ok) pos[r] = static_cast<gdk::oid_t>(p);
  }
  return out;
}

namespace {

// Typed scatter: same physical type on both sides writes directly into the
// dense array, skipping per-row scalar boxing.
template <typename T>
Status ScatterTyped(gdk::BAT* attr, const gdk::BAT& positions,
                    const gdk::BAT& values) {
  auto& dst = attr->Data<T>();
  const auto& src = values.Data<T>();
  const auto& pos = positions.oids();
  size_t limit = dst.size();
  for (size_t i = 0; i < pos.size(); ++i) {
    gdk::oid_t p = pos[i];
    if (p == gdk::kOidNil) continue;
    if (p >= limit) {
      return Status::OutOfRange(
          StrFormat("scatter position %llu beyond array size %zu",
                    static_cast<unsigned long long>(p), limit));
    }
    dst[p] = src[i];
  }
  return Status::OK();
}

}  // namespace

Status ScatterIntoAttr(gdk::BAT* attr, const gdk::BAT& positions,
                       const gdk::BAT& values) {
  if (positions.type() != PhysType::kOid) {
    return Status::TypeMismatch("scatter expects oid positions");
  }
  if (positions.Count() != values.Count()) {
    return Status::Internal("scatter: positions misaligned with values");
  }
  if (attr->type() == values.type() && attr->type() != PhysType::kStr) {
    switch (attr->type()) {
      case PhysType::kBit:
        return ScatterTyped<uint8_t>(attr, positions, values);
      case PhysType::kInt:
        return ScatterTyped<int32_t>(attr, positions, values);
      case PhysType::kLng:
        return ScatterTyped<int64_t>(attr, positions, values);
      case PhysType::kDbl:
        return ScatterTyped<double>(attr, positions, values);
      case PhysType::kOid:
        return ScatterTyped<uint64_t>(attr, positions, values);
      default:
        break;
    }
  }
  size_t limit = attr->Count();
  for (size_t i = 0; i < positions.Count(); ++i) {
    gdk::oid_t p = positions.oids()[i];
    if (p == gdk::kOidNil) continue;
    if (p >= limit) {
      return Status::OutOfRange(
          StrFormat("scatter position %llu beyond array size %zu",
                    static_cast<unsigned long long>(p), limit));
    }
    SCIQL_RETURN_NOT_OK(attr->Set(p, values.GetScalar(i)));
  }
  return Status::OK();
}

Status ScatterConstIntoAttr(gdk::BAT* attr, const gdk::BAT& positions,
                            const gdk::ScalarValue& v) {
  size_t limit = attr->Count();
  for (size_t i = 0; i < positions.Count(); ++i) {
    gdk::oid_t p = positions.oids()[i];
    if (p == gdk::kOidNil) continue;
    if (p >= limit) {
      return Status::OutOfRange("scatter position beyond array size");
    }
    SCIQL_RETURN_NOT_OK(attr->Set(p, v));
  }
  return Status::OK();
}

}  // namespace array
}  // namespace sciql
