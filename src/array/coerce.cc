#include "src/array/coerce.h"

#include <algorithm>
#include <numeric>

#include "src/array/series.h"
#include "src/common/string_util.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace array {

using gdk::BAT;
using gdk::BATPtr;
using gdk::PhysType;
using gdk::ScalarValue;

Result<DimRange> DeriveRange(const gdk::BAT& dim_vals) {
  if (dim_vals.type() != PhysType::kInt && dim_vals.type() != PhysType::kLng) {
    return Status::TypeMismatch("dimension columns must be integers");
  }
  std::vector<int64_t> vals;
  vals.reserve(dim_vals.Count());
  for (size_t i = 0; i < dim_vals.Count(); ++i) {
    if (dim_vals.IsNullAt(i)) {
      return Status::InvalidArgument("NULL in a dimension column");
    }
    vals.push_back(dim_vals.type() == PhysType::kInt ? dim_vals.ints()[i]
                                                     : dim_vals.lngs()[i]);
  }
  if (vals.empty()) {
    return Status::InvalidArgument(
        "cannot derive a dimension range from an empty column");
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  int64_t lo = vals.front();
  int64_t hi = vals.back();
  if (vals.size() == 1) return DimRange(lo, 1, lo + 1);
  int64_t step = 0;
  for (size_t i = 1; i < vals.size(); ++i) {
    step = std::gcd(step, vals[i] - vals[i - 1]);
  }
  if (step == 0) step = 1;
  return DimRange(lo, step, hi + step);
}

Result<MaterializedArray> TableToArray(
    const std::vector<const gdk::BAT*>& dim_cols,
    const std::vector<std::string>& dim_names,
    const std::vector<const gdk::BAT*>& attr_cols,
    const std::vector<std::string>& attr_names,
    const std::vector<gdk::ScalarValue>& attr_defaults) {
  if (dim_cols.empty()) {
    return Status::InvalidArgument("an array needs at least one dimension");
  }
  if (dim_cols.size() != dim_names.size() ||
      attr_cols.size() != attr_names.size() ||
      attr_cols.size() != attr_defaults.size()) {
    return Status::Internal("TableToArray: argument arity mismatch");
  }
  size_t nrows = dim_cols[0]->Count();
  for (const gdk::BAT* b : dim_cols) {
    if (b->Count() != nrows) {
      return Status::Internal("TableToArray: misaligned dimension columns");
    }
  }
  for (const gdk::BAT* b : attr_cols) {
    if (b->Count() != nrows) {
      return Status::Internal("TableToArray: misaligned attribute columns");
    }
  }

  MaterializedArray out;
  for (size_t d = 0; d < dim_cols.size(); ++d) {
    SCIQL_ASSIGN_OR_RETURN(DimRange r, DeriveRange(*dim_cols[d]));
    out.desc.mutable_dims()->push_back(DimDesc{dim_names[d], r, true});
  }
  for (size_t a = 0; a < attr_cols.size(); ++a) {
    AttrDesc ad;
    ad.name = attr_names[a];
    ad.type = attr_cols[a]->type();
    ad.default_value = attr_defaults[a];
    out.desc.mutable_attrs()->push_back(ad);
  }

  size_t ncells = out.desc.CellCount();
  if (ncells > (1ull << 28)) {
    return Status::OutOfRange(
        StrFormat("derived array would have %zu cells", ncells));
  }
  for (size_t d = 0; d < out.desc.ndims(); ++d) {
    out.dim_bats.push_back(MaterializeDim(out.desc, d));
  }
  SCIQL_ASSIGN_OR_RETURN(BATPtr pos, CellPositions(out.desc, dim_cols));
  for (size_t a = 0; a < attr_cols.size(); ++a) {
    BATPtr attr = Filler(ncells, attr_defaults[a].is_null
                                     ? ScalarValue::Null(attr_cols[a]->type())
                                     : attr_defaults[a]);
    // Defaults may be typed differently (e.g. int default for a dbl column).
    if (attr->type() != attr_cols[a]->type()) {
      SCIQL_ASSIGN_OR_RETURN(attr, gdk::CastBat(*attr, attr_cols[a]->type()));
    }
    SCIQL_RETURN_NOT_OK(ScatterIntoAttr(attr.get(), *pos, *attr_cols[a]));
    out.attr_bats.push_back(attr);
  }
  return out;
}

}  // namespace array
}  // namespace sciql
