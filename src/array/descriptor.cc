#include "src/array/descriptor.h"

#include "src/common/string_util.h"

namespace sciql {
namespace array {

int ArrayDesc::DimIndex(const std::string& name) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (EqualsIgnoreCase(dims_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

int ArrayDesc::AttrIndex(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (EqualsIgnoreCase(attrs_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

size_t ArrayDesc::CellCount() const {
  size_t n = 1;
  for (const DimDesc& d : dims_) n *= d.range.Size();
  return dims_.empty() ? 0 : n;
}

std::vector<size_t> ArrayDesc::Strides() const {
  std::vector<size_t> strides(dims_.size(), 1);
  for (size_t i = dims_.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * dims_[i].range.Size();
  }
  return strides;
}

size_t ArrayDesc::LinearIndex(const std::vector<size_t>& idxs) const {
  std::vector<size_t> strides = Strides();
  size_t pos = 0;
  for (size_t i = 0; i < dims_.size(); ++i) pos += idxs[i] * strides[i];
  return pos;
}

std::vector<size_t> ArrayDesc::CoordsOf(size_t pos) const {
  std::vector<size_t> strides = Strides();
  std::vector<size_t> idxs(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    idxs[i] = pos / strides[i];
    pos %= strides[i];
  }
  return idxs;
}

int64_t ArrayDesc::CellPosOfValues(const std::vector<int64_t>& values) const {
  std::vector<size_t> strides = Strides();
  int64_t pos = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    int64_t idx = dims_[i].range.IndexOfOrNeg(values[i]);
    if (idx < 0) return -1;
    pos += idx * static_cast<int64_t>(strides[i]);
  }
  return pos;
}

std::string ArrayDesc::ToString() const {
  std::vector<std::string> parts;
  for (const DimDesc& d : dims_) {
    parts.push_back(StrFormat("%s INT DIMENSION%s", d.name.c_str(),
                              d.range.ToString().c_str()));
  }
  for (const AttrDesc& a : attrs_) {
    std::string s =
        StrFormat("%s %s", a.name.c_str(), gdk::PhysTypeName(a.type));
    if (!a.default_value.is_null) {
      s += " DEFAULT " + a.default_value.ToString();
    }
    parts.push_back(s);
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace array
}  // namespace sciql
