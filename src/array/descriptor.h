// Array descriptors: dimensions plus non-dimensional attributes, and the
// linearisation of multi-dimensional cell coordinates onto the dense void
// head of the underlying BATs.

#ifndef SCIQL_ARRAY_DESCRIPTOR_H_
#define SCIQL_ARRAY_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "src/array/dimension.h"
#include "src/common/result.h"
#include "src/gdk/types.h"

namespace sciql {
namespace array {

/// \brief A named dimension with its range constraint.
struct DimDesc {
  std::string name;
  DimRange range;
  /// Unbounded dimensions get their actual range derived from data (paper
  /// Sec. 2, array/table coercions); `range` then holds the derived extent.
  bool unbounded = false;
};

/// \brief A non-dimensional attribute (cell value column).
struct AttrDesc {
  std::string name;
  gdk::PhysType type = gdk::PhysType::kInt;
  /// DEFAULT value; "omitting the default implies a NULL" (paper Sec. 2).
  gdk::ScalarValue default_value = gdk::ScalarValue::Null(gdk::PhysType::kInt);
};

/// \brief Shape + schema of a SciQL array.
///
/// Cells are linearised with the FIRST declared dimension varying SLOWEST,
/// matching the paper's Figure 3 (x: series(0,1,4,4,1), y: series(0,1,4,1,4)).
class ArrayDesc {
 public:
  ArrayDesc() = default;
  ArrayDesc(std::vector<DimDesc> dims, std::vector<AttrDesc> attrs)
      : dims_(std::move(dims)), attrs_(std::move(attrs)) {}

  const std::vector<DimDesc>& dims() const { return dims_; }
  const std::vector<AttrDesc>& attrs() const { return attrs_; }
  std::vector<DimDesc>* mutable_dims() { return &dims_; }
  std::vector<AttrDesc>* mutable_attrs() { return &attrs_; }

  size_t ndims() const { return dims_.size(); }
  size_t nattrs() const { return attrs_.size(); }

  /// \brief Index of the dimension named `name` (case-insensitive), or -1.
  int DimIndex(const std::string& name) const;
  /// \brief Index of the attribute named `name` (case-insensitive), or -1.
  int AttrIndex(const std::string& name) const;

  /// \brief Total number of cells (product of dimension sizes).
  size_t CellCount() const;

  /// \brief Per-dimension strides for linearisation (first dim slowest).
  std::vector<size_t> Strides() const;

  /// \brief Linear cell position of per-dimension indices. No bounds check.
  size_t LinearIndex(const std::vector<size_t>& idxs) const;

  /// \brief Per-dimension indices of linear position `pos`.
  std::vector<size_t> CoordsOf(size_t pos) const;

  /// \brief Linear position of per-dimension *values*, or -1 if any value is
  /// outside its dimension range.
  int64_t CellPosOfValues(const std::vector<int64_t>& values) const;

  /// \brief DDL-style rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<DimDesc> dims_;
  std::vector<AttrDesc> attrs_;
};

}  // namespace array
}  // namespace sciql

#endif  // SCIQL_ARRAY_DESCRIPTOR_H_
