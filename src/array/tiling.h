// Structural grouping ("array tiling"), the key language innovation of SciQL
// (paper Sec. 2, "Array Tiling"): break an array into possibly overlapping
// tiles anchored at every valid cell, then aggregate each tile.
//
// Two execution engines implement the same semantics:
//  * NaiveTileAggregate   — gathers the tile cells for every anchor; works
//                           for any tile shape (explicit cell lists).
//  * SlidingTileAggregate — for contiguous rectangular tiles; separable
//                           per-axis sliding-window passes (prefix sums for
//                           SUM/COUNT/AVG, monotonic deques for MIN/MAX).
// Their equivalence is property-tested; bench/bench_tiling_ablation measures
// the difference.

#ifndef SCIQL_ARRAY_TILING_H_
#define SCIQL_ARRAY_TILING_H_

#include <string>
#include <vector>

#include "src/array/descriptor.h"
#include "src/common/result.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace array {

/// \brief The shape of a tile: anchor-relative cell offsets in *index* space.
///
/// `GROUP BY a[x:x+2][y:y+2]` becomes per-dimension offset ranges [0,2)x[0,2);
/// `GROUP BY a[x][y], a[x-1][y], a[x][y-1]` becomes an explicit offset list.
/// Cells outside the array's dimension ranges and holes (NULLs) are ignored
/// by the aggregation functions (paper Sec. 2).
struct TileSpec {
  /// Every cell of the tile as per-dimension index offsets from the anchor.
  std::vector<std::vector<int64_t>> offsets;
  /// If the offsets form a dense axis-aligned box, its per-dimension
  /// [lo, hi) bounds; enables the sliding engine.
  std::vector<std::pair<int64_t, int64_t>> box;
  bool rectangular = false;

  /// \brief Build a rectangular tile from per-dimension [lo, hi) offsets.
  static Result<TileSpec> FromRanges(
      const std::vector<std::pair<int64_t, int64_t>>& ranges);

  /// \brief Build from explicit offset cells; detects rectangularity.
  static Result<TileSpec> FromCells(std::vector<std::vector<int64_t>> cells);

  size_t ndims() const {
    return rectangular ? box.size() : (offsets.empty() ? 0 : offsets[0].size());
  }
  size_t CellsPerTile() const { return offsets.size(); }

  /// \brief "[x+0:x+2][y+0:y+2]" (rectangular) or cell-list rendering.
  std::string ToString(const ArrayDesc& desc) const;
};

/// \brief Tiled aggregation: one output row per anchor cell, aligned with the
/// array's cell order. `vals` must be cell-aligned (Count == CellCount).
///
/// Output types follow the value-based aggregation rules: SUM over integers
/// widens to lng, AVG is dbl, COUNT is lng, MIN/MAX keep the input type.
/// Anchors whose tile contains no non-NULL cell yield NULL (COUNT yields 0).
Result<gdk::BATPtr> NaiveTileAggregate(const ArrayDesc& desc,
                                       const gdk::BAT& vals,
                                       const TileSpec& spec, gdk::AggOp op);

/// \brief Sliding-window implementation; requires spec.rectangular.
Result<gdk::BATPtr> SlidingTileAggregate(const ArrayDesc& desc,
                                         const gdk::BAT& vals,
                                         const TileSpec& spec, gdk::AggOp op);

/// \brief Dispatch: sliding for rectangular tiles, naive otherwise.
Result<gdk::BATPtr> TileAggregate(const ArrayDesc& desc, const gdk::BAT& vals,
                                  const TileSpec& spec, gdk::AggOp op);

}  // namespace array
}  // namespace sciql

#endif  // SCIQL_ARRAY_TILING_H_
