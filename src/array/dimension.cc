#include "src/array/dimension.h"

#include "src/common/string_util.h"

namespace sciql {
namespace array {

Status DimRange::Validate() const {
  if (step == 0) {
    return Status::InvalidArgument("dimension step must not be zero");
  }
  return Status::OK();
}

size_t DimRange::Size() const {
  if (step > 0) {
    if (stop <= start) return 0;
    return static_cast<size_t>((stop - start + step - 1) / step);
  }
  if (stop >= start) return 0;
  int64_t up = start - stop;
  int64_t st = -step;
  return static_cast<size_t>((up + st - 1) / st);
}

bool DimRange::Contains(int64_t v) const { return IndexOfOrNeg(v) >= 0; }

int64_t DimRange::IndexOfOrNeg(int64_t v) const {
  int64_t delta = v - start;
  if (step > 0) {
    if (v < start || v >= stop) return -1;
    if (delta % step != 0) return -1;
    return delta / step;
  }
  if (v > start || v <= stop) return -1;
  if (delta % step != 0) return -1;
  return delta / step;
}

Result<size_t> DimRange::IndexOf(int64_t v) const {
  int64_t idx = IndexOfOrNeg(v);
  if (idx < 0) {
    return Status::OutOfRange(
        StrFormat("value %lld not in dimension range %s",
                  static_cast<long long>(v), ToString().c_str()));
  }
  return static_cast<size_t>(idx);
}

std::string DimRange::ToString() const {
  return StrFormat("[%lld:%lld:%lld]", static_cast<long long>(start),
                   static_cast<long long>(step), static_cast<long long>(stop));
}

}  // namespace array
}  // namespace sciql
