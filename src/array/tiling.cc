#include "src/array/tiling.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"

namespace sciql {
namespace array {

using gdk::AggOp;
using gdk::BAT;
using gdk::BATPtr;
using gdk::PhysType;
using gdk::ScalarValue;

Result<TileSpec> TileSpec::FromRanges(
    const std::vector<std::pair<int64_t, int64_t>>& ranges) {
  TileSpec spec;
  spec.box = ranges;
  spec.rectangular = true;
  size_t cells = 1;
  for (const auto& [lo, hi] : ranges) {
    if (hi <= lo) {
      return Status::InvalidArgument(
          StrFormat("empty tile slice [%lld:%lld)", static_cast<long long>(lo),
                    static_cast<long long>(hi)));
    }
    cells *= static_cast<size_t>(hi - lo);
  }
  if (cells > (1u << 22)) {
    return Status::InvalidArgument("tile has too many cells (> 4M)");
  }
  // Enumerate the box as explicit offsets (odometer walk).
  std::vector<int64_t> cur;
  cur.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) cur.push_back(lo);
  spec.offsets.reserve(cells);
  for (size_t c = 0; c < cells; ++c) {
    spec.offsets.push_back(cur);
    for (size_t d = ranges.size(); d-- > 0;) {
      if (++cur[d] < ranges[d].second) break;
      cur[d] = ranges[d].first;
    }
  }
  return spec;
}

Result<TileSpec> TileSpec::FromCells(std::vector<std::vector<int64_t>> cells) {
  if (cells.empty()) {
    return Status::InvalidArgument("tile must contain at least one cell");
  }
  size_t nd = cells[0].size();
  std::set<std::vector<int64_t>> uniq;
  for (const auto& c : cells) {
    if (c.size() != nd) {
      return Status::InvalidArgument("tile cells with mixed dimensionality");
    }
    uniq.insert(c);
  }
  TileSpec spec;
  spec.offsets.assign(uniq.begin(), uniq.end());
  // Rectangularity: the bounding box has exactly as many cells as the set.
  spec.box.assign(nd, {0, 0});
  for (size_t d = 0; d < nd; ++d) {
    int64_t lo = spec.offsets[0][d];
    int64_t hi = spec.offsets[0][d];
    for (const auto& c : spec.offsets) {
      lo = std::min(lo, c[d]);
      hi = std::max(hi, c[d]);
    }
    spec.box[d] = {lo, hi + 1};
  }
  size_t box_cells = 1;
  for (const auto& [lo, hi] : spec.box) {
    box_cells *= static_cast<size_t>(hi - lo);
  }
  spec.rectangular = box_cells == spec.offsets.size();
  return spec;
}

std::string TileSpec::ToString(const ArrayDesc& desc) const {
  auto dim_name = [&](size_t d) {
    return d < desc.ndims() ? desc.dims()[d].name : StrFormat("d%zu", d);
  };
  if (rectangular) {
    std::string out;
    for (size_t d = 0; d < box.size(); ++d) {
      out += StrFormat("[%s%+lld:%s%+lld]", dim_name(d).c_str(),
                       static_cast<long long>(box[d].first),
                       dim_name(d).c_str(),
                       static_cast<long long>(box[d].second));
    }
    return out;
  }
  std::vector<std::string> cells;
  for (const auto& c : offsets) {
    std::string s;
    for (size_t d = 0; d < c.size(); ++d) {
      s += StrFormat("[%s%+lld]", dim_name(d).c_str(),
                     static_cast<long long>(c[d]));
    }
    cells.push_back(s);
  }
  return Join(cells, ",");
}

namespace {

// Shared accumulator; integer inputs track exact int64 sums.
struct Accum {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  double dmin = 0.0;
  double dmax = 0.0;
  int64_t imin = 0;
  int64_t imax = 0;
  bool any = false;
};

PhysType AggOutputType(AggOp op, PhysType in, bool is_dbl) {
  switch (op) {
    case AggOp::kCount:
    case AggOp::kCountStar:
      return PhysType::kLng;
    case AggOp::kAvg:
      return PhysType::kDbl;
    case AggOp::kSum:
      return is_dbl ? PhysType::kDbl : PhysType::kLng;
    case AggOp::kMin:
    case AggOp::kMax:
      return in;  // value-based MIN/MAX also keep the input type
  }
  return in;
}

// Write one aggregate result into row `pos` of the pre-sized numeric output
// (nil sentinel for NULL). Equivalent to appending the ScalarValue the
// sequential engine produced, but writable from parallel morsels.
void StoreNumeric(BAT* out, size_t pos, bool is_null, int64_t iv, double dv) {
  switch (out->type()) {
    case PhysType::kBit:
      out->bits()[pos] = is_null ? gdk::kBitNil : static_cast<uint8_t>(iv);
      break;
    case PhysType::kInt:
      out->ints()[pos] = is_null ? gdk::kIntNil : static_cast<int32_t>(iv);
      break;
    case PhysType::kLng:
      out->lngs()[pos] = is_null ? gdk::kLngNil : iv;
      break;
    case PhysType::kDbl:
      out->dbls()[pos] = is_null ? gdk::DblNil() : dv;
      break;
    default:
      break;
  }
}

void StoreAgg(AggOp op, const Accum& a, bool is_dbl, BAT* out, size_t pos) {
  switch (op) {
    case AggOp::kCount:
    case AggOp::kCountStar:
      StoreNumeric(out, pos, false, a.count, 0.0);
      return;
    case AggOp::kSum:
      StoreNumeric(out, pos, !a.any, a.isum, a.dsum);
      return;
    case AggOp::kAvg:
      StoreNumeric(out, pos, !a.any, 0,
                   a.any ? a.dsum / static_cast<double>(a.count) : 0.0);
      return;
    case AggOp::kMin:
      StoreNumeric(out, pos, !a.any, a.imin, a.dmin);
      return;
    case AggOp::kMax:
      StoreNumeric(out, pos, !a.any, a.imax, a.dmax);
      return;
  }
  (void)is_dbl;
}

// Reads cell r of `vals` as (double, int64, valid).
struct CellReader {
  const BAT* vals;
  bool is_dbl;
  bool Read(size_t r, double* d, int64_t* i) const {
    switch (vals->type()) {
      case PhysType::kBit: {
        uint8_t v = vals->bits()[r];
        if (v == gdk::kBitNil) return false;
        *i = v;
        *d = v;
        return true;
      }
      case PhysType::kInt: {
        int32_t v = vals->ints()[r];
        if (v == gdk::kIntNil) return false;
        *i = v;
        *d = v;
        return true;
      }
      case PhysType::kLng: {
        int64_t v = vals->lngs()[r];
        if (v == gdk::kLngNil) return false;
        *i = v;
        *d = static_cast<double>(v);
        return true;
      }
      case PhysType::kDbl: {
        double v = vals->dbls()[r];
        if (gdk::IsDblNil(v)) return false;
        *i = static_cast<int64_t>(v);
        *d = v;
        return true;
      }
      default:
        return false;
    }
  }
};

}  // namespace

Result<BATPtr> NaiveTileAggregate(const ArrayDesc& desc, const BAT& vals,
                                  const TileSpec& spec, AggOp op) {
  size_t ncells = desc.CellCount();
  if (vals.Count() != ncells) {
    return Status::Internal(
        StrFormat("tile aggregate: %zu values for %zu cells", vals.Count(),
                  ncells));
  }
  if (!gdk::IsNumeric(vals.type())) {
    return Status::TypeMismatch("tile aggregation over non-numeric values");
  }
  if (spec.ndims() != desc.ndims()) {
    return Status::Internal("tile spec dimensionality mismatch");
  }
  bool is_dbl = vals.type() == PhysType::kDbl;
  CellReader reader{&vals, is_dbl};

  size_t nd = desc.ndims();
  std::vector<size_t> sizes(nd);
  for (size_t d = 0; d < nd; ++d) sizes[d] = desc.dims()[d].range.Size();
  std::vector<size_t> strides = desc.Strides();

  auto out = BAT::Make(AggOutputType(op, vals.type(), is_dbl));
  out->Resize(ncells);

  // Every anchor cell is independent: each morsel re-derives its starting
  // odometer coordinates from the linear anchor index and walks forward.
  // Scale the grain down with the tile area so morsels stay similar-cost.
  size_t tile_cells = spec.offsets.size();
  size_t grain = kMorselRows / std::max<size_t>(1, tile_cells);
  if (grain < 256) grain = 256;
  ThreadPool::Get().ParallelFor(
      ncells, grain, [&](size_t, size_t begin, size_t end) {
        std::vector<int64_t> coord(nd);
        size_t rem = begin;
        for (size_t d = 0; d < nd; ++d) {
          coord[d] = static_cast<int64_t>(rem / strides[d]);
          rem %= strides[d];
        }
        for (size_t pos = begin; pos < end; ++pos) {
          Accum a;
          for (const auto& off : spec.offsets) {
            int64_t p = 0;
            bool inside = true;
            for (size_t d = 0; d < nd; ++d) {
              int64_t c = coord[d] + off[d];
              if (c < 0 || c >= static_cast<int64_t>(sizes[d])) {
                inside = false;
                break;
              }
              p += c * static_cast<int64_t>(strides[d]);
            }
            if (!inside) continue;  // out-of-range cells are ignored
            double dv;
            int64_t iv;
            if (!reader.Read(static_cast<size_t>(p), &dv, &iv)) {
              continue;  // hole
            }
            a.count++;
            a.isum += iv;
            a.dsum += dv;
            if (!a.any || dv < a.dmin) a.dmin = dv;
            if (!a.any || dv > a.dmax) a.dmax = dv;
            if (!a.any || iv < a.imin) a.imin = iv;
            if (!a.any || iv > a.imax) a.imax = iv;
            a.any = true;
          }
          StoreAgg(op, a, is_dbl, out.get(), pos);
          for (size_t d = nd; d-- > 0;) {
            if (++coord[d] < static_cast<int64_t>(sizes[d])) break;
            coord[d] = 0;
          }
        }
      });
  return out;
}

namespace {

// Base offset of line `j` along `axis`: lines are the sets of positions that
// differ only in their axis coordinate; bases are all positions with axis
// coordinate 0, in increasing address order.
inline size_t LineBase(size_t j, size_t n, size_t stride) {
  return (j / stride) * (stride * n) + (j % stride);
}

// One sliding pass along `axis`: out[i] = reduce of in[i+lo .. i+hi) clamped
// to the axis extent. Operates in-place on the dense grid `g` (and, for
// sum/count, nothing else is needed since box reductions are separable).
// Lines are independent, so they are processed morsel-parallel; every line
// touches only its own positions and uses morsel-local scratch.
template <typename T>
void AxisBoxSum(std::vector<T>* g, const std::vector<size_t>& sizes,
                const std::vector<size_t>& strides, size_t axis, int64_t lo,
                int64_t hi) {
  size_t n = sizes[axis];
  size_t stride = strides[axis];
  size_t total = g->size();
  if (n == 0 || total == 0) return;
  size_t nlines = total / n;
  size_t grain = kMorselRows / std::max<size_t>(1, n);
  if (grain < 16) grain = 16;
  ThreadPool::Get().ParallelFor(
      nlines, grain, [&](size_t, size_t jbegin, size_t jend) {
        std::vector<T> prefix(n + 1);
        std::vector<T> line(n);
        for (size_t j = jbegin; j < jend; ++j) {
          size_t base = LineBase(j, n, stride);
          for (size_t i = 0; i < n; ++i) line[i] = (*g)[base + i * stride];
          prefix[0] = 0;
          for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + line[i];
          for (size_t i = 0; i < n; ++i) {
            int64_t w_lo = std::max<int64_t>(0, static_cast<int64_t>(i) + lo);
            int64_t w_hi = std::min<int64_t>(static_cast<int64_t>(n),
                                             static_cast<int64_t>(i) + hi);
            (*g)[base + i * stride] =
                w_hi > w_lo ? prefix[w_hi] - prefix[w_lo] : T(0);
          }
        }
      });
}

// Sliding min/max along one axis with a monotonic deque; cells holding the
// identity carry no value.
void AxisBoxMinMax(std::vector<double>* g, const std::vector<size_t>& sizes,
                   const std::vector<size_t>& strides, size_t axis, int64_t lo,
                   int64_t hi, bool want_min) {
  size_t n = sizes[axis];
  size_t stride = strides[axis];
  size_t total = g->size();
  if (n == 0 || total == 0) return;
  size_t nlines = total / n;
  const double identity = want_min ? std::numeric_limits<double>::infinity()
                                   : -std::numeric_limits<double>::infinity();
  size_t grain = kMorselRows / std::max<size_t>(1, n);
  if (grain < 16) grain = 16;
  ThreadPool::Get().ParallelFor(
      nlines, grain, [&](size_t, size_t jbegin, size_t jend) {
        std::vector<double> line(n);
        std::vector<double> out_line(n);
        for (size_t j = jbegin; j < jend; ++j) {
          size_t base = LineBase(j, n, stride);
          for (size_t i = 0; i < n; ++i) line[i] = (*g)[base + i * stride];
          // Monotonic deque of indices; windows [i+lo, i+hi) advance with i.
          std::deque<size_t> dq;
          int64_t next_enter = lo;  // first index not yet pushed for i=0
          for (size_t i = 0; i < n; ++i) {
            int64_t w_lo = static_cast<int64_t>(i) + lo;
            int64_t w_hi = static_cast<int64_t>(i) + hi;  // exclusive
            // Push entering elements.
            for (int64_t j2 = std::max(next_enter, static_cast<int64_t>(0));
                 j2 < std::min(w_hi, static_cast<int64_t>(n)); ++j2) {
              double v = line[static_cast<size_t>(j2)];
              while (!dq.empty()) {
                double b = line[dq.back()];
                if (want_min ? b >= v : b <= v) {
                  dq.pop_back();
                } else {
                  break;
                }
              }
              dq.push_back(static_cast<size_t>(j2));
            }
            next_enter = std::max(next_enter,
                                  std::min(w_hi, static_cast<int64_t>(n)));
            // Pop leaving elements.
            while (!dq.empty() && static_cast<int64_t>(dq.front()) < w_lo) {
              dq.pop_front();
            }
            out_line[i] = dq.empty() ? identity : line[dq.front()];
          }
          for (size_t i = 0; i < n; ++i) {
            (*g)[base + i * stride] = out_line[i];
          }
        }
      });
}

}  // namespace

Result<BATPtr> SlidingTileAggregate(const ArrayDesc& desc, const BAT& vals,
                                    const TileSpec& spec, AggOp op) {
  if (!spec.rectangular) {
    return Status::InvalidArgument(
        "sliding tile aggregation requires a rectangular tile");
  }
  size_t ncells = desc.CellCount();
  if (vals.Count() != ncells) {
    return Status::Internal("tile aggregate: values misaligned with cells");
  }
  if (!gdk::IsNumeric(vals.type())) {
    return Status::TypeMismatch("tile aggregation over non-numeric values");
  }
  size_t nd = desc.ndims();
  if (spec.box.size() != nd) {
    return Status::Internal("tile spec dimensionality mismatch");
  }
  bool is_dbl = vals.type() == PhysType::kDbl;
  CellReader reader{&vals, is_dbl};

  std::vector<size_t> sizes(nd);
  for (size_t d = 0; d < nd; ++d) sizes[d] = desc.dims()[d].range.Size();
  std::vector<size_t> strides = desc.Strides();

  auto& pool = ThreadPool::Get();

  // Count of valid (non-hole) cells per window — needed by every aggregate.
  std::vector<int64_t> cnt(ncells);
  pool.ParallelFor(ncells, kMorselRows, [&](size_t, size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      double dv;
      int64_t iv;
      cnt[r] = reader.Read(r, &dv, &iv) ? 1 : 0;
    }
  });
  for (size_t d = 0; d < nd; ++d) {
    AxisBoxSum(&cnt, sizes, strides, d, spec.box[d].first, spec.box[d].second);
  }

  auto out = BAT::Make(AggOutputType(op, vals.type(), is_dbl));
  out->Resize(ncells);

  if (op == AggOp::kCount || op == AggOp::kCountStar) {
    auto& o = out->lngs();
    pool.ParallelFor(ncells, kMorselRows,
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t r = begin; r < end; ++r) o[r] = cnt[r];
                     });
    return out;
  }

  if (op == AggOp::kSum || op == AggOp::kAvg) {
    if (is_dbl) {
      std::vector<double> sum(ncells);
      pool.ParallelFor(ncells, kMorselRows,
                       [&](size_t, size_t begin, size_t end) {
                         for (size_t r = begin; r < end; ++r) {
                           double dv;
                           int64_t iv;
                           sum[r] = reader.Read(r, &dv, &iv) ? dv : 0.0;
                         }
                       });
      for (size_t d = 0; d < nd; ++d) {
        AxisBoxSum(&sum, sizes, strides, d, spec.box[d].first,
                   spec.box[d].second);
      }
      pool.ParallelFor(
          ncells, kMorselRows, [&](size_t, size_t begin, size_t end) {
            for (size_t r = begin; r < end; ++r) {
              bool null = cnt[r] == 0;
              double v = op == AggOp::kSum
                             ? sum[r]
                             : (null ? 0.0
                                     : sum[r] / static_cast<double>(cnt[r]));
              StoreNumeric(out.get(), r, null, 0, v);
            }
          });
    } else {
      std::vector<int64_t> sum(ncells);
      pool.ParallelFor(ncells, kMorselRows,
                       [&](size_t, size_t begin, size_t end) {
                         for (size_t r = begin; r < end; ++r) {
                           double dv;
                           int64_t iv;
                           sum[r] = reader.Read(r, &dv, &iv) ? iv : 0;
                         }
                       });
      for (size_t d = 0; d < nd; ++d) {
        AxisBoxSum(&sum, sizes, strides, d, spec.box[d].first,
                   spec.box[d].second);
      }
      pool.ParallelFor(
          ncells, kMorselRows, [&](size_t, size_t begin, size_t end) {
            for (size_t r = begin; r < end; ++r) {
              bool null = cnt[r] == 0;
              if (op == AggOp::kSum) {
                StoreNumeric(out.get(), r, null, sum[r], 0.0);
              } else {
                double v = null ? 0.0
                                : static_cast<double>(sum[r]) /
                                      static_cast<double>(cnt[r]);
                StoreNumeric(out.get(), r, null, 0, v);
              }
            }
          });
    }
    return out;
  }

  // MIN / MAX via separable sliding extrema on a double grid (exact for
  // integers up to 2^53).
  bool want_min = op == AggOp::kMin;
  std::vector<double> ext(ncells);
  const double identity = want_min ? std::numeric_limits<double>::infinity()
                                   : -std::numeric_limits<double>::infinity();
  pool.ParallelFor(ncells, kMorselRows,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t r = begin; r < end; ++r) {
                       double dv;
                       int64_t iv;
                       ext[r] = reader.Read(r, &dv, &iv) ? dv : identity;
                     }
                   });
  for (size_t d = 0; d < nd; ++d) {
    AxisBoxMinMax(&ext, sizes, strides, d, spec.box[d].first,
                  spec.box[d].second, want_min);
  }
  pool.ParallelFor(ncells, kMorselRows,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t r = begin; r < end; ++r) {
                       StoreNumeric(out.get(), r, cnt[r] == 0,
                                    static_cast<int64_t>(ext[r]), ext[r]);
                     }
                   });
  return out;
}

Result<BATPtr> TileAggregate(const ArrayDesc& desc, const BAT& vals,
                             const TileSpec& spec, AggOp op) {
  if (spec.rectangular) return SlidingTileAggregate(desc, vals, spec, op);
  return NaiveTileAggregate(desc, vals, spec, op);
}

}  // namespace array
}  // namespace sciql
