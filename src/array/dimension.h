// Dimension ranges: the [start:step:stop) constraint of a SciQL dimension.
//
// A SciQL dimension is "a measurement of the size of the array in a
// particular named direction" with an optional range constraint
// [<start>:<step>:<stop>], the interval being right-open (paper Sec. 2).

#ifndef SCIQL_ARRAY_DIMENSION_H_
#define SCIQL_ARRAY_DIMENSION_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"

namespace sciql {
namespace array {

/// \brief A right-open arithmetic progression [start, stop) with stride step.
///
/// `step` may be negative (the progression then descends and `stop < start`);
/// it must never be zero. Valid dimension values are
/// start, start+step, ..., the last one strictly before stop.
struct DimRange {
  int64_t start = 0;
  int64_t step = 1;
  int64_t stop = 0;

  DimRange() = default;
  DimRange(int64_t start_in, int64_t step_in, int64_t stop_in)
      : start(start_in), step(step_in), stop(stop_in) {}

  /// \brief Validate step != 0.
  Status Validate() const;

  /// \brief Number of valid dimension values.
  size_t Size() const;

  /// \brief The dimension value at position `idx` (0-based). No bounds check.
  int64_t ValueAt(size_t idx) const {
    return start + static_cast<int64_t>(idx) * step;
  }

  /// \brief True if `v` is a valid dimension value (inside the range and on
  /// the stride grid).
  bool Contains(int64_t v) const;

  /// \brief Position of dimension value `v`, or OutOfRange.
  Result<size_t> IndexOf(int64_t v) const;

  /// \brief Position of `v` if valid, otherwise -1 (no Status overhead; used
  /// by hot cell-addressing loops).
  int64_t IndexOfOrNeg(int64_t v) const;

  /// \brief "[start:step:stop]" as written in SciQL DDL.
  std::string ToString() const;

  bool operator==(const DimRange& o) const {
    return start == o.start && step == o.step && stop == o.stop;
  }
};

}  // namespace array
}  // namespace sciql

#endif  // SCIQL_ARRAY_DIMENSION_H_
