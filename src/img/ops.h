// In-database image processing operations (demo Scenario II), each expressed
// as a concise SciQL query, plus native in-memory baselines used both for
// correctness checks and as the "BLOB round-trip" comparison point (export
// whole image -> process in the application -> re-import).

#ifndef SCIQL_IMG_OPS_H_
#define SCIQL_IMG_OPS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"
#include "src/vault/pgm.h"

namespace sciql {
namespace img {

/// \brief A rectangular region of interest [x0, x1) x [y0, y1).
struct Box {
  int64_t x0, x1, y0, y1;
};

// -- SciQL (in-database) operations. `src` names an existing 2-D image
//    array with attribute v; most create a new array `dst`. ------------------

/// \brief Intensity inversion: v' = maxval - v.
Status Invert(engine::Database* db, const std::string& src,
              const std::string& dst, int maxval = 255);

/// \brief EdgeDetection (TELEIOS use case): differences in colour intensity
/// of each pixel and its upper and left neighbours, via relative cell
/// addressing. Border pixels (no neighbour) become holes.
Status EdgeDetect(engine::Database* db, const std::string& src,
                  const std::string& dst);

/// \brief Smoothing: 3x3 structural-grouping average.
Status Smooth(engine::Database* db, const std::string& src,
              const std::string& dst);

/// \brief Resolution reduction: 2x2 tiles averaged, reindexed to half size.
Status Reduce2x(engine::Database* db, const std::string& src,
                const std::string& dst);

/// \brief Rotation by 90 degrees clockwise via dimension reindexing.
Status Rotate90(engine::Database* db, const std::string& src,
                const std::string& dst);

/// \brief Filter out water areas: intensities below `level` become 0.
Status FilterWater(engine::Database* db, const std::string& src,
                   const std::string& dst, int level);

/// \brief Intensity histogram: value-based GROUP BY over the coerced array.
Result<std::vector<std::pair<int32_t, int64_t>>> Histogram(
    engine::Database* db, const std::string& src);

/// \brief Zoom: nearest-neighbour 2x upsample of the region anchored at
/// (x0, y0) with extent w x h, driven by the target array's own dimensions.
Status Zoom2x(engine::Database* db, const std::string& src,
              const std::string& dst, int64_t x0, int64_t y0, int64_t w,
              int64_t h);

/// \brief Increase intensity by `delta`, saturating at `maxval`.
Status Brighten(engine::Database* db, const std::string& src,
                const std::string& dst, int delta, int maxval = 255);

/// \brief AreasOfInterest: join the image array with a bounding-box table;
/// ships only the selected pixels (the paper's array-table symbiosis demo).
Result<engine::ResultSet> AreasOfInterest(engine::Database* db,
                                          const std::string& src,
                                          const std::vector<Box>& boxes);

/// \brief AreasOfInterest via a bit-mask image array: pixels where
/// mask[x][y] = 1.
Result<engine::ResultSet> MaskedSelect(engine::Database* db,
                                       const std::string& src,
                                       const std::string& mask);

// -- Native in-memory baselines (ground truth / BLOB round-trip). ------------

namespace native {

vault::Image Invert(const vault::Image& in, int maxval = 255);
vault::Image EdgeDetect(const vault::Image& in);  // borders produce 0
vault::Image Smooth(const vault::Image& in);
vault::Image Reduce2x(const vault::Image& in);
vault::Image Rotate90(const vault::Image& in);
vault::Image FilterWater(const vault::Image& in, int level);
std::vector<std::pair<int32_t, int64_t>> Histogram(const vault::Image& in);
vault::Image Zoom2x(const vault::Image& in, int64_t x0, int64_t y0, int64_t w,
                    int64_t h);
vault::Image Brighten(const vault::Image& in, int delta, int maxval = 255);
std::vector<std::pair<int64_t, int64_t>> AreasOfInterest(
    const vault::Image& in, const std::vector<Box>& boxes);

}  // namespace native

}  // namespace img
}  // namespace sciql

#endif  // SCIQL_IMG_OPS_H_
