#include "src/img/ops.h"

#include <algorithm>
#include <map>

#include "src/common/string_util.h"

namespace sciql {
namespace img {

using engine::ResultSet;

Status Invert(engine::Database* db, const std::string& src,
              const std::string& dst, int maxval) {
  return db->Run(StrFormat(
      "CREATE ARRAY %s AS SELECT [x], [y], %d - v AS v FROM %s",
      dst.c_str(), maxval, src.c_str()));
}

Status EdgeDetect(engine::Database* db, const std::string& src,
                  const std::string& dst) {
  // Relative cell addressing: out-of-range neighbours yield NULL, so the
  // borders of the result are holes (paper Sec. 4: "computing the
  // differences in colour intensities of each pixel and its upper and left
  // neighbouring pixels").
  return db->Run(StrFormat(
      "CREATE ARRAY %s AS SELECT [x], [y], "
      "ABS(%s[x][y] - %s[x-1][y]) + ABS(%s[x][y] - %s[x][y-1]) AS v FROM %s",
      dst.c_str(), src.c_str(), src.c_str(), src.c_str(), src.c_str(),
      src.c_str()));
}

Status Smooth(engine::Database* db, const std::string& src,
              const std::string& dst) {
  return db->Run(StrFormat(
      "CREATE ARRAY %s AS SELECT [x], [y], AVG(v) AS v FROM %s "
      "GROUP BY %s[x-1:x+2][y-1:y+2]",
      dst.c_str(), src.c_str(), src.c_str()));
}

Status Reduce2x(engine::Database* db, const std::string& src,
                const std::string& dst) {
  return db->Run(StrFormat(
      "CREATE ARRAY %s AS SELECT [x / 2] AS x, [y / 2] AS y, AVG(v) AS v "
      "FROM %s GROUP BY %s[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 0 AND y MOD 2 = 0",
      dst.c_str(), src.c_str(), src.c_str()));
}

Status Rotate90(engine::Database* db, const std::string& src,
                const std::string& dst) {
  SCIQL_ASSIGN_OR_RETURN(auto arr, db->catalog()->GetArray(src));
  size_t h = arr->desc.dims()[1].range.Size();
  // Clockwise: (x, y) -> (H-1-y, x).
  return db->Run(StrFormat(
      "CREATE ARRAY %s AS SELECT [%zu - y] AS x, [x] AS y, v AS v FROM %s",
      dst.c_str(), h - 1, src.c_str()));
}

Status FilterWater(engine::Database* db, const std::string& src,
                   const std::string& dst, int level) {
  return db->Run(StrFormat(
      "CREATE ARRAY %s AS SELECT [x], [y], "
      "CASE WHEN v < %d THEN 0 ELSE v END AS v FROM %s",
      dst.c_str(), level, src.c_str()));
}

Result<std::vector<std::pair<int32_t, int64_t>>> Histogram(
    engine::Database* db, const std::string& src) {
  SCIQL_ASSIGN_OR_RETURN(
      ResultSet rs,
      db->Query(StrFormat(
          "SELECT v, COUNT(*) AS cnt FROM %s GROUP BY v ORDER BY v",
          src.c_str())));
  std::vector<std::pair<int32_t, int64_t>> out;
  for (size_t r = 0; r < rs.NumRows(); ++r) {
    gdk::ScalarValue v = rs.Value(r, 0);
    gdk::ScalarValue c = rs.Value(r, 1);
    if (v.is_null) continue;
    out.emplace_back(static_cast<int32_t>(v.AsInt64()), c.AsInt64());
  }
  return out;
}

Status Zoom2x(engine::Database* db, const std::string& src,
              const std::string& dst, int64_t x0, int64_t y0, int64_t w,
              int64_t h) {
  // The zoomed array's own dimensions drive the nearest-neighbour gather
  // from the source region.
  SCIQL_RETURN_NOT_OK(db->Run(StrFormat(
      "CREATE ARRAY %s (x INT DIMENSION[0:1:%lld], y INT DIMENSION[0:1:%lld], "
      "v INT)",
      dst.c_str(), static_cast<long long>(2 * w),
      static_cast<long long>(2 * h))));
  return db->Run(StrFormat(
      "INSERT INTO %s (SELECT [x], [y], %s[%lld + x / 2][%lld + y / 2] "
      "FROM %s)",
      dst.c_str(), src.c_str(), static_cast<long long>(x0),
      static_cast<long long>(y0), dst.c_str()));
}

Status Brighten(engine::Database* db, const std::string& src,
                const std::string& dst, int delta, int maxval) {
  return db->Run(StrFormat(
      "CREATE ARRAY %s AS SELECT [x], [y], "
      "CASE WHEN v + %d > %d THEN %d ELSE v + %d END AS v FROM %s",
      dst.c_str(), delta, maxval, maxval, delta, src.c_str()));
}

Result<ResultSet> AreasOfInterest(engine::Database* db, const std::string& src,
                                  const std::vector<Box>& boxes) {
  // The bounding boxes live in an ordinary SQL table; the query joins the
  // image array with the table — the combined use of arrays and tables.
  (void)db->Run("DROP TABLE maskt");
  SCIQL_RETURN_NOT_OK(
      db->Run("CREATE TABLE maskt (x1 INT, x2 INT, y1 INT, y2 INT)"));
  if (!boxes.empty()) {
    std::vector<std::string> rows;
    for (const Box& b : boxes) {
      rows.push_back(StrFormat(
          "(%lld, %lld, %lld, %lld)", static_cast<long long>(b.x0),
          static_cast<long long>(b.x1), static_cast<long long>(b.y0),
          static_cast<long long>(b.y1)));
    }
    SCIQL_RETURN_NOT_OK(db->Run(
        StrFormat("INSERT INTO maskt VALUES %s", Join(rows, ", ").c_str())));
  }
  return db->Query(StrFormat(
      "SELECT x, y, v FROM %s, maskt "
      "WHERE x >= x1 AND x < x2 AND y >= y1 AND y < y2",
      src.c_str()));
}

Result<ResultSet> MaskedSelect(engine::Database* db, const std::string& src,
                               const std::string& mask) {
  return db->Query(StrFormat(
      "SELECT x, y, v FROM %s WHERE %s[x][y] = 1", src.c_str(),
      mask.c_str()));
}

namespace native {

using vault::Image;

Image Invert(const Image& in, int maxval) {
  Image out = in;
  for (auto& p : out.pixels) p = maxval - p;
  return out;
}

Image EdgeDetect(const Image& in) {
  Image out = in;
  for (size_t y = 0; y < in.height; ++y) {
    for (size_t x = 0; x < in.width; ++x) {
      if (x == 0 || y == 0) {
        out.Set(x, y, 0);  // the SciQL result has holes here
        continue;
      }
      int32_t v = in.At(x, y);
      out.Set(x, y, std::abs(v - in.At(x - 1, y)) + std::abs(v - in.At(x, y - 1)));
    }
  }
  return out;
}

Image Smooth(const Image& in) {
  Image out = in;
  for (size_t y = 0; y < in.height; ++y) {
    for (size_t x = 0; x < in.width; ++x) {
      int64_t sum = 0;
      int cnt = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          int64_t cx = static_cast<int64_t>(x) + dx;
          int64_t cy = static_cast<int64_t>(y) + dy;
          if (cx < 0 || cy < 0 || cx >= static_cast<int64_t>(in.width) ||
              cy >= static_cast<int64_t>(in.height)) {
            continue;
          }
          sum += in.At(static_cast<size_t>(cx), static_cast<size_t>(cy));
          ++cnt;
        }
      }
      // Match SQL AVG (double) truncated on export to integer pixels.
      out.Set(x, y, static_cast<int32_t>(static_cast<double>(sum) / cnt));
    }
  }
  return out;
}

Image Reduce2x(const Image& in) {
  Image out;
  out.width = (in.width + 1) / 2;
  out.height = (in.height + 1) / 2;
  out.maxval = in.maxval;
  out.pixels.assign(out.width * out.height, 0);
  for (size_t y = 0; y < out.height; ++y) {
    for (size_t x = 0; x < out.width; ++x) {
      int64_t sum = 0;
      int cnt = 0;
      for (size_t dy = 0; dy < 2; ++dy) {
        for (size_t dx = 0; dx < 2; ++dx) {
          size_t cx = 2 * x + dx;
          size_t cy = 2 * y + dy;
          if (cx >= in.width || cy >= in.height) continue;
          sum += in.At(cx, cy);
          ++cnt;
        }
      }
      out.Set(x, y, static_cast<int32_t>(static_cast<double>(sum) / cnt));
    }
  }
  return out;
}

Image Rotate90(const Image& in) {
  Image out;
  out.width = in.height;
  out.height = in.width;
  out.maxval = in.maxval;
  out.pixels.assign(out.width * out.height, 0);
  for (size_t y = 0; y < in.height; ++y) {
    for (size_t x = 0; x < in.width; ++x) {
      out.Set(in.height - 1 - y, x, in.At(x, y));
    }
  }
  return out;
}

Image FilterWater(const Image& in, int level) {
  Image out = in;
  for (auto& p : out.pixels) {
    if (p < level) p = 0;
  }
  return out;
}

std::vector<std::pair<int32_t, int64_t>> Histogram(const Image& in) {
  std::map<int32_t, int64_t> h;
  for (int32_t p : in.pixels) h[p]++;
  return {h.begin(), h.end()};
}

Image Zoom2x(const Image& in, int64_t x0, int64_t y0, int64_t w, int64_t h) {
  Image out;
  out.width = static_cast<size_t>(2 * w);
  out.height = static_cast<size_t>(2 * h);
  out.maxval = in.maxval;
  out.pixels.assign(out.width * out.height, 0);
  for (size_t y = 0; y < out.height; ++y) {
    for (size_t x = 0; x < out.width; ++x) {
      size_t sx = static_cast<size_t>(x0 + static_cast<int64_t>(x) / 2);
      size_t sy = static_cast<size_t>(y0 + static_cast<int64_t>(y) / 2);
      if (sx < in.width && sy < in.height) out.Set(x, y, in.At(sx, sy));
    }
  }
  return out;
}

Image Brighten(const Image& in, int delta, int maxval) {
  Image out = in;
  for (auto& p : out.pixels) p = std::min(p + delta, maxval);
  return out;
}

std::vector<std::pair<int64_t, int64_t>> AreasOfInterest(
    const Image& in, const std::vector<Box>& boxes) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (size_t y = 0; y < in.height; ++y) {
    for (size_t x = 0; x < in.width; ++x) {
      for (const Box& b : boxes) {
        if (static_cast<int64_t>(x) >= b.x0 && static_cast<int64_t>(x) < b.x1 &&
            static_cast<int64_t>(y) >= b.y0 && static_cast<int64_t>(y) < b.y1) {
          out.emplace_back(static_cast<int64_t>(x), static_cast<int64_t>(y));
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace native

}  // namespace img
}  // namespace sciql
