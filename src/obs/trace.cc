#include "src/obs/trace.h"

#include <algorithm>
#include <map>

#include "src/common/string_util.h"
#include "src/mal/program.h"
#include "src/obs/metrics.h"

namespace sciql {
namespace obs {

TraceControls& GetTraceControls() {
  static TraceControls c;
  return c;
}

const char* StatementTrace::SpanName(Span s) {
  switch (s) {
    case kParse: return "parse";
    case kBind: return "bind";
    case kOptimize: return "optimize";
    case kExecute: return "execute";
    case kSpanCount: break;
  }
  return "?";
}

uint64_t StatementTrace::TotalMicros() const {
  if (total_micros_ != 0) return total_micros_;
  uint64_t total = 0;
  for (uint64_t us : spans_) total += us;
  return total;
}

void StatementTrace::RecordInstr(size_t index, InstrSample s) {
  if (samples_.size() <= index) samples_.resize(index + 1);
  samples_[index] = std::move(s);
}

namespace {

std::string Micros(uint64_t us, bool redact) {
  if (redact) return "*";
  return StrFormat("%lluus", static_cast<unsigned long long>(us));
}

/// The chosen-path annotation: every telemetry counter this instruction
/// bumped, in catalog order, e.g. "[order_index_built,order_index_reused]".
std::string PathAnnotation(const gdk::TelemetrySnapshot& delta) {
  std::string out;
  for (const gdk::TelemetryField& f : gdk::TelemetryFields()) {
    if (delta.*f.snap == 0) continue;
    if (!out.empty()) out += ',';
    out += f.name;
    uint64_t n = delta.*f.snap;
    if (n > 1) out += StrFormat("x%llu", static_cast<unsigned long long>(n));
  }
  return out.empty() ? out : " [" + out + "]";
}

}  // namespace

std::string StatementTrace::RenderAnalyze(const mal::MalProgram& prog,
                                          bool redact) const {
  std::string out = "# EXPLAIN ANALYZE\n# spans:";
  for (int s = 0; s < kSpanCount; ++s) {
    out += StrFormat(" %s=%s", SpanName(static_cast<Span>(s)),
                     Micros(spans_[static_cast<size_t>(s)], redact).c_str());
  }
  out += StrFormat(" total=%s\n", Micros(TotalMicros(), redact).c_str());
  out += StrFormat("# rows returned: %llu\n",
                   static_cast<unsigned long long>(rows_returned_));
  for (size_t i = 0; i < prog.instrs().size(); ++i) {
    out += prog.InstrToString(i);
    if (i < samples_.size()) {
      const InstrSample& s = samples_[i];
      out += StrFormat(" # in=%llu out=%llu time=%s",
                       static_cast<unsigned long long>(s.in_rows),
                       static_cast<unsigned long long>(s.out_rows),
                       Micros(s.micros, redact).c_str());
      out += PathAnnotation(s.delta);
    }
    out += '\n';
  }
  std::string result_line = prog.ResultLineToString();
  if (!result_line.empty()) out += result_line + "\n";
  return out;
}

std::vector<std::pair<std::string, uint64_t>> StatementTrace::TopOperators(
    size_t k) const {
  std::map<std::string, uint64_t> by_op;
  for (const InstrSample& s : samples_) {
    if (!s.name.empty()) by_op[s.name] += s.micros;
  }
  std::vector<std::pair<std::string, uint64_t>> ops(by_op.begin(),
                                                    by_op.end());
  std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ops.size() > k) ops.resize(k);
  return ops;
}

std::string StatementTrace::RenderSlowLogLine(const std::string& sql,
                                              uint64_t session_id) const {
  std::string out = "{\"sql\":\"" + JsonEscape(sql) + "\"";
  out += StrFormat(",\"session\":%llu",
                   static_cast<unsigned long long>(session_id));
  out += StrFormat(",\"total_us\":%llu",
                   static_cast<unsigned long long>(TotalMicros()));
  out += StrFormat(",\"rows\":%llu",
                   static_cast<unsigned long long>(rows_returned_));
  out += ",\"spans\":{";
  for (int s = 0; s < kSpanCount; ++s) {
    if (s > 0) out += ',';
    out += StrFormat(
        "\"%s_us\":%llu", SpanName(static_cast<Span>(s)),
        static_cast<unsigned long long>(spans_[static_cast<size_t>(s)]));
  }
  out += "},\"top_ops\":[";
  bool first = true;
  for (const auto& op : TopOperators(3)) {
    if (!first) out += ',';
    first = false;
    out += "{\"op\":\"" + JsonEscape(op.first) + "\"";
    out += StrFormat(",\"us\":%llu}",
                     static_cast<unsigned long long>(op.second));
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace sciql
