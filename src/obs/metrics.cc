#include "src/obs/metrics.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/gdk/kernels.h"
#include "src/mal/verify.h"
#include "src/storage/env.h"

namespace sciql {
namespace obs {

size_t Histogram::BucketIndex(uint64_t v) {
  for (size_t i = 0; i < kFiniteBuckets; ++i) {
    if (v <= BucketBound(i)) return i;
  }
  return kFiniteBuckets;  // +Inf
}

void Histogram::Observe(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map '.' (and anything else) to '_'.
std::string SanitizeName(const std::string& dotted) {
  std::string out = dotted;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

void RegisterBuiltins(MetricsRegistry* reg) {
  for (const gdk::TelemetryField& f : gdk::TelemetryFields()) {
    auto member = f.live;
    reg->RegisterCounter(
        std::string("sciql.gdk.") + f.name, f.help,
        [member]() {
          return (gdk::Telemetry().*member).load(std::memory_order_relaxed);
        });
  }
  for (const storage::IoStatsField& f : storage::IoStatsFields()) {
    auto member = f.member;
    reg->RegisterCounter(
        std::string("sciql.io.") + f.name, f.help,
        [member]() {
          return (storage::GetIoStats().*member)
              .load(std::memory_order_relaxed);
        });
  }
  EngineCounters& c = Counters();
  reg->RegisterCounter("sciql.statement.executed",
                       "statements executed successfully",
                       [&c]() { return c.statements_executed.load(); });
  reg->RegisterCounter("sciql.statement.failed",
                       "statements that returned an error",
                       [&c]() { return c.statements_failed.load(); });
  reg->RegisterCounter("sciql.slowlog.lines",
                       "slow-query log lines written",
                       [&c]() { return c.slow_queries_logged.load(); });
  reg->RegisterCounter("sciql.slowlog.write_failed",
                       "slow-query log appends that failed (best-effort)",
                       [&c]() { return c.slow_query_log_write_failed.load(); });
  mal::VerifyCounters& v = mal::VerifyStats();
  reg->RegisterCounter("sciql.mal.programs_verified",
                       "MAL programs checked by the plan verifier",
                       [&v]() { return v.programs_verified.load(); });
  reg->RegisterCounter("sciql.mal.programs_rejected",
                       "MAL programs the plan verifier rejected",
                       [&v]() { return v.programs_rejected.load(); });
  // Eager registration so a scrape of an idle process already shows the
  // empty histograms; StatementLatencyHistogram()/StatementRowsHistogram()
  // find and reuse these entries (RegisterHistogram is idempotent).
  reg->RegisterHistogram("sciql.statement.latency_us",
                         "wall latency per executed statement, microseconds");
  reg->RegisterHistogram("sciql.statement.rows",
                         "rows returned per statement");
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *reg;
}

void MetricsRegistry::Register(const std::string& name,
                               const std::string& labels, Type type,
                               const std::string& help, ReadFn read) {
  common::MutexLock lk(&mu_);
  Entry& e = entries_[{name, labels}];
  e.help = help;
  e.type = type;
  e.read = std::move(read);
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const std::string& help, ReadFn read,
                                      const std::string& labels) {
  Register(name, labels, Type::kCounter, help, std::move(read));
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const std::string& help, ReadFn read,
                                    const std::string& labels) {
  Register(name, labels, Type::kGauge, help, std::move(read));
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help) {
  common::MutexLock lk(&mu_);
  Entry& e = entries_[{name, std::string()}];
  e.help = help;
  e.type = Type::kHistogram;
  if (e.hist == nullptr) e.hist = std::make_unique<Histogram>();
  return e.hist.get();
}

void MetricsRegistry::Unregister(const std::string& name,
                                 const std::string& labels) {
  common::MutexLock lk(&mu_);
  entries_.erase({name, labels});
}

std::string MetricsRegistry::RenderPrometheus() const {
  common::MutexLock lk(&mu_);
  std::string out;
  const std::string* prev_name = nullptr;
  for (const auto& kv : entries_) {
    const std::string& name = kv.first.first;
    const std::string& labels = kv.first.second;
    const Entry& e = kv.second;
    std::string pname = SanitizeName(name);
    // One HELP/TYPE header per family; label variants follow their first
    // series (entries_ is sorted, so same-name series are adjacent).
    if (prev_name == nullptr || *prev_name != name) {
      const char* type = e.type == Type::kCounter   ? "counter"
                         : e.type == Type::kGauge   ? "gauge"
                                                    : "histogram";
      out += "# HELP " + pname + " " + e.help + "\n";
      out += "# TYPE " + pname + " " + type + "\n";
      prev_name = &name;
    }
    std::string braced = labels.empty() ? "" : "{" + labels + "}";
    if (e.type == Type::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
        cumulative += e.hist->bucket(i);
        out += pname + "_bucket{le=\"" +
               StrFormat("%llu", static_cast<unsigned long long>(
                                     Histogram::BucketBound(i))) +
               "\"} " +
               StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
               "\n";
      }
      cumulative += e.hist->bucket(Histogram::kFiniteBuckets);
      out += pname + "_bucket{le=\"+Inf\"} " +
             StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
             "\n";
      out += pname + "_sum " +
             StrFormat("%llu",
                       static_cast<unsigned long long>(e.hist->sum())) +
             "\n";
      out += pname + "_count " +
             StrFormat("%llu",
                       static_cast<unsigned long long>(e.hist->count())) +
             "\n";
    } else {
      out += pname + braced + " " +
             StrFormat("%llu", static_cast<unsigned long long>(e.read())) +
             "\n";
    }
  }
  return out;
}

std::string RenderPrometheus() { return Metrics().RenderPrometheus(); }

Histogram& StatementLatencyHistogram() {
  static Histogram* h = Metrics().RegisterHistogram(
      "sciql.statement.latency_us",
      "wall latency per executed statement, microseconds");
  return *h;
}

Histogram& StatementRowsHistogram() {
  static Histogram* h = Metrics().RegisterHistogram(
      "sciql.statement.rows", "rows returned per statement");
  return *h;
}

EngineCounters& Counters() {
  static EngineCounters c;
  return c;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += raw;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace sciql
