// The unified metrics registry: one process-wide catalog of named counters,
// gauges and fixed-bucket histograms, rendered as Prometheus text exposition.
//
// Counters and gauges are *read-through*: registration stores a closure over
// the live atomic (gdk::Telemetry(), storage::GetIoStats(), DatabaseCore
// gauges, ...), so a scrape always sees the current value and registration
// costs nothing on the hot path. Histograms are owned by the registry and
// observed directly (lock-free atomic buckets). RenderPrometheus() output is
// deterministically ordered — sorted by (name, labels) — so golden tests and
// diff-based monitoring can rely on the shape. See docs/observability.md.

#ifndef SCIQL_OBS_METRICS_H_
#define SCIQL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "src/common/thread_annotations.h"

namespace sciql {
namespace obs {

/// \brief Fixed-bucket log2-scale histogram of non-negative integer
/// observations (microseconds, row counts). Bucket upper bounds are
/// 1, 2, 4, ..., 2^26, +Inf — fixed at compile time so two histograms (or
/// two runs) always bucket identically, which keeps golden tests and
/// cross-run comparisons deterministic. Observe() is lock-free; concurrent
/// scrapes read each bucket atomically (the set of buckets is not read as
/// one atomic snapshot — acceptable for monitoring, where _count may run
/// slightly ahead of a bucket mid-scrape).
class Histogram {
 public:
  /// 27 finite buckets (le=1 .. le=2^26) + the +Inf bucket.
  static constexpr size_t kFiniteBuckets = 27;
  static constexpr size_t kBuckets = kFiniteBuckets + 1;

  /// \brief Upper bound of finite bucket `i`: 2^i.
  static uint64_t BucketBound(size_t i) { return uint64_t{1} << i; }

  /// \brief Index of the bucket that counts `v` (the first bucket whose
  /// bound is >= v; values above 2^26 land in +Inf).
  static size_t BucketIndex(uint64_t v);

  void Observe(uint64_t v);

  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// \brief The registry. Metric names are stable dotted paths
/// ("sciql.gdk.joins_hash"); rendering sanitises '.' to '_' for Prometheus.
/// `labels`, when non-empty, is a preformatted Prometheus label list without
/// braces (e.g. `core="3"`) — entries with the same name but different
/// labels are one metric family with several series.
class MetricsRegistry {
 public:
  using ReadFn = std::function<uint64_t()>;

  /// \brief The process-wide registry, with every builtin metric (gdk
  /// kernel telemetry, storage I/O counters, statement histograms)
  /// registered on first use.
  static MetricsRegistry& Global();

  /// Counters must be monotonic; gauges may go up and down. `read` is
  /// called under the registry mutex during a scrape — it must not call
  /// back into the registry, and must stay valid until Unregister.
  void RegisterCounter(const std::string& name, const std::string& help,
                       ReadFn read, const std::string& labels = "");
  void RegisterGauge(const std::string& name, const std::string& help,
                     ReadFn read, const std::string& labels = "");

  /// \brief Registry-owned histogram; the pointer stays valid for the
  /// process lifetime (histograms are never unregistered, so statement
  /// latency distributions survive core close/reopen).
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help);

  /// \brief Drop one (name, labels) series; required before a ReadFn's
  /// captured object dies (DatabaseCore unregisters its gauges on
  /// destruction). Safe against concurrent scrapes: once this returns, no
  /// scrape will call the closure again.
  void Unregister(const std::string& name, const std::string& labels = "");

  /// \brief Prometheus text exposition (# HELP / # TYPE / samples),
  /// deterministically ordered by (name, labels).
  std::string RenderPrometheus() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string help;
    Type type = Type::kCounter;
    ReadFn read;
    std::unique_ptr<Histogram> hist;
  };

  void Register(const std::string& name, const std::string& labels,
                Type type, const std::string& help, ReadFn read);

  /// Leaf lock: nothing else is acquired while mu_ is held (ReadFns run
  /// under it but only touch atomics), so it cannot participate in a cycle.
  mutable common::Mutex mu_;
  /// (dotted name, labels) -> entry; std::map keeps the scrape order
  /// deterministic without a sort at render time. Scrape-safety of
  /// Unregister follows from the guard: erase and the closure calls in
  /// RenderPrometheus are serialized on mu_.
  std::map<std::pair<std::string, std::string>, Entry> entries_
      GUARDED_BY(mu_);
};

/// \brief Shorthand for MetricsRegistry::Global().
inline MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

/// \brief Shorthand for Metrics().RenderPrometheus().
std::string RenderPrometheus();

/// \brief Builtin histogram: wall latency of every executed statement, in
/// microseconds ("sciql.statement.latency_us").
Histogram& StatementLatencyHistogram();

/// \brief Builtin histogram: rows returned per statement
/// ("sciql.statement.rows").
Histogram& StatementRowsHistogram();

/// \brief Engine-level counters owned by obs (bumped by engine::Session):
/// statements executed/failed and slow-query-log activity.
struct EngineCounters {
  std::atomic<uint64_t> statements_executed{0};
  std::atomic<uint64_t> statements_failed{0};
  std::atomic<uint64_t> slow_queries_logged{0};
  std::atomic<uint64_t> slow_query_log_write_failed{0};
};

EngineCounters& Counters();

/// \brief Minimal JSON string escaping (quotes, backslashes, control
/// characters) for the slow-query log's structured lines.
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace sciql

#endif  // SCIQL_OBS_METRICS_H_
