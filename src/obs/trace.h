// Per-statement execution tracing: lifecycle spans (parse/bind/optimize/
// execute) plus, when the MAL interpreter runs with a trace attached, one
// sample per instruction — wall time, input/output row counts, and the
// kernel-telemetry delta captured as a before/after snapshot diff so
// concurrent sessions attribute physical-path counters to *their own*
// instructions instead of reading the shared global. Rendered by
// EXPLAIN ANALYZE and summarised into the slow-query log.
// See docs/observability.md.

#ifndef SCIQL_OBS_TRACE_H_
#define SCIQL_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/gdk/kernels.h"

namespace sciql {
namespace mal {
class MalProgram;
}  // namespace mal

namespace obs {

/// \brief Process-wide trace rendering switches, mirroring the
/// gdk::Controls() / engine::GetPlannerControls() pattern.
struct TraceControls {
  /// When true, EXPLAIN ANALYZE renders every duration as '*' so golden
  /// tests can pin the plan shape, row counts and chosen-path annotations
  /// without depending on wall-clock noise.
  bool redact_timings = false;
};

TraceControls& GetTraceControls();

/// \brief One traced MAL instruction.
struct InstrSample {
  std::string name;      ///< module.fn, captured so the sample outlives the program
  uint64_t in_rows = 0;  ///< summed rows of BAT arguments
  uint64_t out_rows = 0; ///< summed rows of BAT results (scalars count as 1)
  uint64_t micros = 0;   ///< wall time of this instruction
  /// Kernel-telemetry delta across this instruction (this thread's bumps
  /// plus any concurrent session's — exact when the statement runs alone).
  gdk::TelemetrySnapshot delta;
};

/// \brief The trace of one statement. Not thread-safe: one trace belongs to
/// the one session thread executing the statement (the morsel pool's worker
/// threads never touch it — instruction boundaries are sequential).
class StatementTrace {
 public:
  enum Span { kParse = 0, kBind, kOptimize, kExecute, kSpanCount };

  static const char* SpanName(Span s);

  void SetSpanMicros(Span s, uint64_t us) {
    spans_[static_cast<size_t>(s)] = us;
  }
  uint64_t span_micros(Span s) const {
    return spans_[static_cast<size_t>(s)];
  }

  /// \brief Pin the statement's total wall time (which may exceed the span
  /// sum: writer-lock wait and WAL logging are outside every span).
  void SetTotalMicros(uint64_t us) { total_micros_ = us; }

  /// \brief The explicit total when set, else the sum of all spans.
  uint64_t TotalMicros() const;

  /// \brief Record the sample of instruction `index` (its position in
  /// MalProgram::instrs(), so RenderAnalyze can zip samples with lines).
  void RecordInstr(size_t index, InstrSample s);
  const std::vector<InstrSample>& samples() const { return samples_; }

  void SetRowsReturned(uint64_t n) { rows_returned_ = n; }
  uint64_t rows_returned() const { return rows_returned_; }

  /// \brief The MAL program rendered line by line, each instruction
  /// annotated with actual rows, wall time and the physical-path counters
  /// it fired, preceded by a span/rows summary header. `redact` replaces
  /// every duration with '*' (see TraceControls::redact_timings).
  std::string RenderAnalyze(const mal::MalProgram& prog, bool redact) const;

  /// \brief The `k` most expensive operators by summed self time, as
  /// (module.fn, micros) pairs — ties broken by name so the slow-query log
  /// is deterministic under equal timings.
  std::vector<std::pair<std::string, uint64_t>> TopOperators(size_t k) const;

  /// \brief One structured slow-query-log line (no trailing newline):
  /// {"sql":...,"session":...,"total_us":...,"rows":...,
  ///  "spans":{...},"top_ops":[{"op":...,"us":...},...]}.
  std::string RenderSlowLogLine(const std::string& sql,
                                uint64_t session_id) const;

 private:
  std::array<uint64_t, kSpanCount> spans_{};
  std::vector<InstrSample> samples_;
  uint64_t rows_returned_ = 0;
  uint64_t total_micros_ = 0;
};

}  // namespace obs
}  // namespace sciql

#endif  // SCIQL_OBS_TRACE_H_
