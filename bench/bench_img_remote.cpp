// S2b (Scenario II, remote-sensing column of Figure 5): water filtering,
// intensity histogram, zoom, brightening, and AreasOfInterest. The
// AreasOfInterest benchmarks contrast shipping only the selected region
// (SciQL array-table join) with retrieving the whole image — the paper's
// first claimed advantage of in-database image processing.

#include <benchmark/benchmark.h>

#include "src/common/string_util.h"
#include "src/engine/database.h"
#include "src/img/ops.h"
#include "src/vault/synth.h"
#include "src/vault/vault.h"

using sciql::StrFormat;
using sciql::engine::Database;
using sciql::vault::Image;

namespace {

struct Setup {
  Database db;
  Image img;
  explicit Setup(size_t n) : img(sciql::vault::MakeTerrainImage(n, n)) {
    (void)sciql::vault::LoadImage(&db, "earth", img);
  }
};

#define REMOTE_SIZES Arg(128)->Arg(256)->Arg(512)

void BM_FilterWater_Sciql(benchmark::State& state) {
  Setup s(static_cast<size_t>(state.range(0)));
  int round = 0;
  for (auto _ : state) {
    auto st = sciql::img::FilterWater(&s.db, "earth",
                                      StrFormat("land%d", round++), 60);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_FilterWater_Sciql)->REMOTE_SIZES->Unit(benchmark::kMillisecond);

void BM_FilterWater_BlobRoundTrip(benchmark::State& state) {
  Setup s(static_cast<size_t>(state.range(0)));
  int round = 0;
  for (auto _ : state) {
    // BLOB workflow: fetch encoded bytes, parse, process, re-encode, load.
    auto stored = sciql::vault::StoreImage(&s.db, "earth");
    if (!stored.ok()) {
      state.SkipWithError("export failed");
      return;
    }
    auto img = sciql::vault::ParsePgm(sciql::vault::SerializePgm(*stored));
    if (!img.ok()) {
      state.SkipWithError("blob parse failed");
      return;
    }
    Image out = sciql::img::native::FilterWater(*img, 60);
    auto back = sciql::vault::ParsePgm(sciql::vault::SerializePgm(out));
    if (!back.ok()) {
      state.SkipWithError("blob reimport failed");
      return;
    }
    auto st = sciql::vault::LoadImage(&s.db, StrFormat("land%d", round++),
                                      *back);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_FilterWater_BlobRoundTrip)
    ->REMOTE_SIZES->Unit(benchmark::kMillisecond);

void BM_Histogram_Sciql(benchmark::State& state) {
  Setup s(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto hist = sciql::img::Histogram(&s.db, "earth");
    if (!hist.ok()) state.SkipWithError(hist.status().ToString().c_str());
    benchmark::DoNotOptimize(hist->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Histogram_Sciql)->REMOTE_SIZES->Unit(benchmark::kMillisecond);

void BM_Histogram_BlobRoundTrip(benchmark::State& state) {
  Setup s(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto stored = sciql::vault::StoreImage(&s.db, "earth");
    if (!stored.ok()) {
      state.SkipWithError("export failed");
      return;
    }
    auto img = sciql::vault::ParsePgm(sciql::vault::SerializePgm(*stored));
    if (!img.ok()) {
      state.SkipWithError("blob parse failed");
      return;
    }
    auto hist = sciql::img::native::Histogram(*img);
    benchmark::DoNotOptimize(hist.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Histogram_BlobRoundTrip)
    ->REMOTE_SIZES->Unit(benchmark::kMillisecond);

void BM_Zoom_Sciql(benchmark::State& state) {
  Setup s(static_cast<size_t>(state.range(0)));
  int64_t q = state.range(0) / 4;
  int round = 0;
  for (auto _ : state) {
    auto st = sciql::img::Zoom2x(&s.db, "earth",
                                 StrFormat("zoom%d", round++), q, q, q, q);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * q * q * 4);
}
BENCHMARK(BM_Zoom_Sciql)->REMOTE_SIZES->Unit(benchmark::kMillisecond);

void BM_Brighten_Sciql(benchmark::State& state) {
  Setup s(static_cast<size_t>(state.range(0)));
  int round = 0;
  for (auto _ : state) {
    auto st = sciql::img::Brighten(&s.db, "earth",
                                   StrFormat("bright%d", round++), 40);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Brighten_Sciql)->REMOTE_SIZES->Unit(benchmark::kMillisecond);

// AreasOfInterest: ship only the selected pixels (SciQL) ...
void BM_AreasOfInterest_Sciql(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Setup s(n);
  std::vector<sciql::img::Box> boxes = {
      {static_cast<int64_t>(n / 8), static_cast<int64_t>(n / 8 + 16),
       static_cast<int64_t>(n / 8), static_cast<int64_t>(n / 8 + 16)},
      {static_cast<int64_t>(n / 2), static_cast<int64_t>(n / 2 + 16),
       static_cast<int64_t>(n / 2), static_cast<int64_t>(n / 2 + 16)},
  };
  for (auto _ : state) {
    auto rs = sciql::img::AreasOfInterest(&s.db, "earth", boxes);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 16);
}
BENCHMARK(BM_AreasOfInterest_Sciql)
    ->REMOTE_SIZES->Unit(benchmark::kMillisecond);

// ... versus retrieving the whole image and filtering in the application.
void BM_AreasOfInterest_WholeImageRetrieval(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Setup s(n);
  std::vector<sciql::img::Box> boxes = {
      {static_cast<int64_t>(n / 8), static_cast<int64_t>(n / 8 + 16),
       static_cast<int64_t>(n / 8), static_cast<int64_t>(n / 8 + 16)},
      {static_cast<int64_t>(n / 2), static_cast<int64_t>(n / 2 + 16),
       static_cast<int64_t>(n / 2), static_cast<int64_t>(n / 2 + 16)},
  };
  for (auto _ : state) {
    // The whole image leaves the DBMS as an encoded BLOB before the
    // application can select the two small regions.
    auto stored = sciql::vault::StoreImage(&s.db, "earth");
    if (!stored.ok()) {
      state.SkipWithError("export failed");
      return;
    }
    auto img = sciql::vault::ParsePgm(sciql::vault::SerializePgm(*stored));
    if (!img.ok()) {
      state.SkipWithError("blob parse failed");
      return;
    }
    auto sel = sciql::img::native::AreasOfInterest(*img, boxes);
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 16);
}
BENCHMARK(BM_AreasOfInterest_WholeImageRetrieval)
    ->REMOTE_SIZES->Unit(benchmark::kMillisecond);

void BM_MaskedSelect_Sciql(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Setup s(n);
  (void)s.db.Run(StrFormat(
      "CREATE ARRAY m (x INT DIMENSION[0:1:%zu], y INT DIMENSION[0:1:%zu], "
      "v INT DEFAULT 0)",
      n, n));
  (void)s.db.Run(StrFormat("UPDATE m SET v = 1 WHERE y = %zu", n / 2));
  for (auto _ : state) {
    auto rs = sciql::img::MaskedSelect(&s.db, "earth", "m");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MaskedSelect_Sciql)->REMOTE_SIZES->Unit(benchmark::kMillisecond);

}  // namespace
