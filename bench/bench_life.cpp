// S1 (Scenario I / Figure 4): one Game-of-Life generation, three ways.
//   * SciQL structural grouping (3x3 tile, one query) — the paper's design;
//   * plain SQL with the eight-way self-join the paper cites as the
//     relational formulation;
//   * native C++ (floor).
// Expected shape: SciQL beats the self-join by a large factor and scales
// near-linearly in cells; native is the floor.

#include <benchmark/benchmark.h>

#include "src/engine/database.h"
#include "src/life/life.h"

using sciql::engine::Database;
using sciql::life::LifeBoard;
using sciql::life::Pattern;

namespace {

void BM_LifeStepSciql(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db;
  auto board = LifeBoard::Create(&db, "life", n);
  if (!board.ok() || !board->Seed(Pattern::kRandom, 0, 0, 0.3, 42).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = board->StepSciql();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_LifeStepSciql)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_LifeStepSqlSelfJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db;
  auto board = LifeBoard::Create(&db, "life", n);
  if (!board.ok() || !board->Seed(Pattern::kRandom, 0, 0, 0.3, 42).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = board->StepSqlSelfJoin();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_LifeStepSqlSelfJoin)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_LifeStepNative(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db;
  auto board = LifeBoard::Create(&db, "life", n);
  if (!board.ok() || !board->Seed(Pattern::kRandom, 0, 0, 0.3, 42).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = board->StepNative();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_LifeStepNative)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
