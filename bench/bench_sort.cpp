// Thread-count sweep over the parallel sort / order-index / partitioned
// group kernels, at 4M rows. Run with --benchmark_filter=Threads; the
// bench_parallel CMake target merges the JSON report into
// BENCH_parallel.json alongside the select/calc/join/tiling sweeps.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"
#include "src/obs/metrics.h"

using sciql::Rng;
using sciql::ThreadPool;
using namespace sciql::gdk;

namespace {

// Attributes kernel work to each benchmark: a TelemetryProbe pins the
// kernel-telemetry delta across the timed loop (so the report says which
// physical path each op actually took — e.g. order_index_built vs
// order_index_reused) and a fixed log2 histogram records per-iteration
// latency. Both land in the JSON report as counters ("telemetry.<field>"
// per iteration, "lat_us.le_<bound>" cumulative, "lat_us.count"/".sum")
// that merge_parallel_bench.py folds into BENCH_parallel.json.
class KernelObserver {
 public:
  void BeginIter() { iter_start_ = std::chrono::steady_clock::now(); }
  void EndIter() {
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - iter_start_)
                  .count();
    hist_.Observe(static_cast<uint64_t>(us));
  }
  void Flush(benchmark::State& state) {
    const TelemetrySnapshot delta = probe_.delta();
    for (const TelemetryField& f : TelemetryFields()) {
      uint64_t v = delta.*(f.snap);
      if (v == 0) continue;
      state.counters[std::string("telemetry.") + f.name] = benchmark::Counter(
          static_cast<double>(v), benchmark::Counter::kAvgIterations);
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i < sciql::obs::Histogram::kFiniteBuckets; ++i) {
      if (hist_.bucket(i) == 0) {
        cumulative += hist_.bucket(i);
        continue;
      }
      cumulative += hist_.bucket(i);
      state.counters["lat_us.le_" + std::to_string(
                         sciql::obs::Histogram::BucketBound(i))] =
          static_cast<double>(cumulative);
    }
    if (hist_.bucket(sciql::obs::Histogram::kFiniteBuckets) != 0) {
      state.counters["lat_us.le_inf"] = static_cast<double>(hist_.count());
    }
    state.counters["lat_us.count"] = static_cast<double>(hist_.count());
    state.counters["lat_us.sum"] = static_cast<double>(hist_.sum());
  }

 private:
  TelemetryProbe probe_;
  sciql::obs::Histogram hist_;
  std::chrono::steady_clock::time_point iter_start_;
};

/// One iteration of the timed loop, latency-observed end to end.
class IterTimer {
 public:
  explicit IterTimer(KernelObserver* o) : o_(o) { o_->BeginIter(); }
  ~IterTimer() { o_->EndIter(); }

 private:
  KernelObserver* o_;
};

void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) b->Arg(hw);
}

constexpr size_t kSweepRows = 4 * 1024 * 1024;

BATPtr SweepIntColumn(uint64_t seed, uint64_t domain) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kInt);
  b->ints().resize(kSweepRows);
  for (auto& v : b->ints()) v = static_cast<int32_t>(rng.Below(domain));
  return b;
}

BATPtr SweepDblColumn(uint64_t seed) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kDbl);
  b->dbls().resize(kSweepRows);
  for (auto& v : b->dbls()) {
    v = static_cast<double>(rng.Below(1000000)) / 997.0 - 300.0;
  }
  return b;
}

void BM_SortIntSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto b = SweepIntColumn(1, 1u << 30);
  for (auto _ : state) {
    IterTimer it(&kobs);
    b->InvalidateOrderIndex();  // time the build, not the cache hit
    auto r = OrderIndex({b.get()}, {false});
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_SortIntSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_SortDblDescSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto b = SweepDblColumn(2);
  for (auto _ : state) {
    IterTimer it(&kobs);
    auto r = OrderIndex({b.get()}, {true});
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_SortDblDescSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_SortMultiKeySweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto k1 = SweepIntColumn(3, 1000);  // duplicate-heavy primary key
  auto k2 = SweepDblColumn(4);
  for (auto _ : state) {
    IterTimer it(&kobs);
    auto r = OrderIndex({k1.get(), k2.get()}, {false, true});
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_SortMultiKeySweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_SortMaterializeSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto b = SweepIntColumn(5, 1u << 30);
  for (auto _ : state) {
    IterTimer it(&kobs);
    b->InvalidateOrderIndex();
    auto r = SortBat(*b, /*desc=*/false);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_SortMaterializeSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

// firstn-vs-sort: top-100 of 1M rows via the bounded-heap FirstN kernel
// against the full sort it replaces (OrderIndex + head slice). Same rows,
// same thread counts, adjacent in the merged BENCH_parallel.json report.
constexpr size_t kTopKRows = 1024 * 1024;
constexpr size_t kTopK = 100;

void BM_FirstN100of1M_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  Rng rng(7);
  auto b = BAT::Make(PhysType::kInt);
  b->ints().resize(kTopKRows);
  for (auto& v : b->ints()) v = static_cast<int32_t>(rng.Below(1u << 30));
  for (auto _ : state) {
    IterTimer it(&kobs);
    b->InvalidateOrderIndex();  // time the heap path, not the index window
    auto r = FirstN({b.get()}, {false}, kTopK);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kTopKRows);
}
BENCHMARK(BM_FirstN100of1M_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_SortSlice100of1M_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  Rng rng(7);  // identical rows to the FirstN sweep
  auto b = BAT::Make(PhysType::kInt);
  b->ints().resize(kTopKRows);
  for (auto& v : b->ints()) v = static_cast<int32_t>(rng.Below(1u << 30));
  for (auto _ : state) {
    IterTimer it(&kobs);
    b->InvalidateOrderIndex();
    auto r = OrderIndex({b.get()}, {false});
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Slice(0, kTopK)->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kTopKRows);
}
BENCHMARK(BM_SortSlice100of1M_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

// DESC served from the cached ascending index: the O(n) run reversal that
// replaces a second O(n log n) sort. The ascending build happens once,
// outside the timed loop.
void BM_DescFromAscIndexSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto b = SweepIntColumn(8, 1000);  // duplicate-heavy: long tie runs
  if (!EnsureOrderIndex(*b).ok()) {
    state.SkipWithError("index build failed");
    return;
  }
  for (auto _ : state) {
    IterTimer it(&kobs);
    auto r = OrderIndex({b.get()}, {true});  // reversal, never a sort
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_DescFromAscIndexSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

// Multi-key spec reuse: the first EnsureOrderIndexSpec sorts and caches;
// the timed loop hits the keyed cache (compare against
// BM_SortMultiKeySweep, the cache-free build of the same spec).
void BM_MultiKeySpecReuseSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto k1 = SweepIntColumn(9, 1000);
  auto k2 = SweepDblColumn(10);
  const std::vector<BATPtr> keys = {k1, k2};
  if (!EnsureOrderIndexSpec(keys, {false, true}).ok()) {
    state.SkipWithError("spec build failed");
    return;
  }
  for (auto _ : state) {
    IterTimer it(&kobs);
    auto r = EnsureOrderIndexSpec(keys, {false, true});
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->size());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_MultiKeySpecReuseSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

// String join pair: the hash path against the both-sides-indexed merge
// path on identical data (1M x 1M rows, 64K distinct strings). Adjacent in
// the merged report; the merge builds no hash table.
constexpr size_t kStrJoinRows = 1024 * 1024;

BATPtr SweepStrColumn(uint64_t seed) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kStr);
  for (size_t i = 0; i < kStrJoinRows; ++i) {
    auto st = b->Append(
        ScalarValue::Str("k" + std::to_string(rng.Below(1u << 16))));
    (void)st;
  }
  return b;
}

void BM_HashJoinStrSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto l = SweepStrColumn(11);
  auto r = SweepStrColumn(12);
  for (auto _ : state) {
    IterTimer it(&kobs);
    l->InvalidateOrderIndex();  // keep the hash path
    r->InvalidateOrderIndex();
    auto jr = HashJoin(*l, *r);
    if (!jr.ok()) {
      state.SkipWithError(jr.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(jr->left->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kStrJoinRows);
}
BENCHMARK(BM_HashJoinStrSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_MergeJoinStrSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto l = SweepStrColumn(11);  // identical rows to the hash sweep
  auto r = SweepStrColumn(12);
  if (!EnsureOrderIndex(*l).ok() || !EnsureOrderIndex(*r).ok()) {
    state.SkipWithError("index build failed");
    return;
  }
  for (auto _ : state) {
    IterTimer it(&kobs);
    auto jr = HashJoin(*l, *r);  // both indexed: string merge path
    if (!jr.ok()) {
      state.SkipWithError(jr.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(jr->left->Count());
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kStrJoinRows);
}
BENCHMARK(BM_MergeJoinStrSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_GroupBuildSweep_Threads(benchmark::State& state) {
  ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  KernelObserver kobs;
  auto b = SweepIntColumn(6, 4096);  // partitioned build, modest dictionary
  for (auto _ : state) {
    IterTimer it(&kobs);
    auto r = Group(*b, nullptr, 0);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r->ngroups);
  }
  ThreadPool::Get().SetThreadCount(1);
  kobs.Flush(state);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_GroupBuildSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
