#!/usr/bin/env python3
"""Merge Google Benchmark JSON reports from the thread-count sweeps into a
single BENCH_parallel.json with per-op speedups relative to 1 thread.

Usage: merge_parallel_bench.py report1.json [report2.json ...] -o OUT.json
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("reports", nargs="+")
    parser.add_argument("-o", "--output", required=True)
    args = parser.parse_args()

    results = []
    context = {}
    for path in args.reports:
        with open(path) as f:
            data = json.load(f)
        context = data.get("context", context)
        for b in data.get("benchmarks", []):
            name = b.get("name", "")
            if "Threads/" not in name or b.get("run_type") == "aggregate":
                continue
            op, _, threads = name.rpartition("/")
            try:
                threads = int(threads)
            except ValueError:
                continue
            record = {
                "op": op,
                "threads": threads,
                "real_time_ns": b.get("real_time"),
                "cpu_time_ns": b.get("cpu_time"),
                "items_per_second": b.get("items_per_second"),
            }
            # Benchmarks instrumented with a KernelObserver (bench_sort)
            # emit extra counters: per-iteration kernel-telemetry deltas
            # ("telemetry.<field>" — which physical path the op took) and a
            # cumulative log2 latency histogram ("lat_us.le_<bound>", plus
            # count/sum). Fold them into structured sub-objects.
            telemetry = {
                key[len("telemetry."):]: value
                for key, value in b.items()
                if key.startswith("telemetry.")
            }
            if telemetry:
                record["telemetry"] = dict(sorted(telemetry.items()))
            latency = {
                key[len("lat_us."):]: value
                for key, value in b.items()
                if key.startswith("lat_us.")
            }
            if latency:
                record["latency_hist_us"] = dict(sorted(latency.items()))
            results.append(record)

    speedups = {}
    by_op = {}
    for r in results:
        by_op.setdefault(r["op"], {})[r["threads"]] = r["real_time_ns"]
    for op, times in sorted(by_op.items()):
        base = times.get(1)
        if not base:
            continue
        speedups[op] = {
            str(t): round(base / times[t], 3)
            for t in sorted(times)
            if times[t]
        }

    out = {
        "description": "Thread-count sweep over the morsel-parallel GDK "
                       "kernels and tiling engines (1/2/4/N threads; "
                       "speedup is real time at 1 thread divided by real "
                       "time at N threads). Instrumented ops also carry "
                       "per-iteration kernel-telemetry deltas (the chosen "
                       "physical path) and a log2 latency histogram.",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "date": context.get("date"),
        },
        "results": results,
        "speedups": speedups,
    }
    with open(args.output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}: {len(results)} sweep points, "
          f"{len(speedups)} ops", file=sys.stderr)


if __name__ == "__main__":
    main()
