// A2 (ablation): the cost of the table/array symbiosis — coercions in both
// directions and the array-table join behind AreasOfInterest.

#include <benchmark/benchmark.h>

#include "src/common/string_util.h"
#include "src/engine/database.h"

using sciql::StrFormat;
using sciql::engine::Database;

namespace {

void PrepareArray(Database* db, int64_t n) {
  (void)db->Run(StrFormat(
      "CREATE ARRAY a (x INT DIMENSION[0:1:%lld], y INT DIMENSION[0:1:%lld], "
      "v INT DEFAULT 0)",
      static_cast<long long>(n), static_cast<long long>(n)));
  (void)db->Run("UPDATE a SET v = x * 31 + y");
}

void BM_ArrayToTable(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  PrepareArray(&db, n);
  int round = 0;
  for (auto _ : state) {
    auto st = db.Run(StrFormat(
        "CREATE TABLE t%d AS SELECT x, y, v FROM a", round++));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ArrayToTable)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_TableToArray(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  PrepareArray(&db, n);
  if (!db.Run("CREATE TABLE t AS SELECT x, y, v FROM a").ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  int round = 0;
  for (auto _ : state) {
    auto st = db.Run(StrFormat(
        "CREATE ARRAY a%d AS SELECT [x], [y], v FROM t", round++));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TableToArray)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_ArrayTableJoin(benchmark::State& state) {
  // The AreasOfInterest join: image array x bounding-box table.
  int64_t n = state.range(0);
  Database db;
  PrepareArray(&db, n);
  (void)db.Run("CREATE TABLE boxes (x1 INT, x2 INT, y1 INT, y2 INT)");
  (void)db.Run(StrFormat("INSERT INTO boxes VALUES (0, 16, 0, 16), "
                         "(%lld, %lld, %lld, %lld)",
                         static_cast<long long>(n / 2),
                         static_cast<long long>(n / 2 + 16),
                         static_cast<long long>(n / 2),
                         static_cast<long long>(n / 2 + 16)));
  for (auto _ : state) {
    auto rs = db.Query(
        "SELECT x, y, v FROM a, boxes "
        "WHERE x >= x1 AND x < x2 AND y >= y1 AND y < y2");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ArrayTableJoin)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_EquiJoinArrayWithTable(benchmark::State& state) {
  // Equi-join between array dimension values and a table key.
  int64_t n = state.range(0);
  Database db;
  PrepareArray(&db, n);
  (void)db.Run("CREATE TABLE labels (y INT, tag INT)");
  std::string rows;
  for (int64_t y = 0; y < n; ++y) {
    rows += rows.empty() ? "" : ", ";
    rows += StrFormat("(%lld, %lld)", static_cast<long long>(y),
                      static_cast<long long>(y % 7));
  }
  (void)db.Run("INSERT INTO labels VALUES " + rows);
  for (auto _ : state) {
    auto rs = db.Query(
        "SELECT a.v, labels.tag FROM a JOIN labels ON a.y = labels.y "
        "WHERE labels.tag = 3");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_EquiJoinArrayWithTable)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_ValueGroupHistogram(benchmark::State& state) {
  // Value-based grouping on array attributes (the histogram path).
  int64_t n = state.range(0);
  Database db;
  (void)db.Run(StrFormat(
      "CREATE ARRAY a (x INT DIMENSION[0:1:%lld], y INT DIMENSION[0:1:%lld], "
      "v INT DEFAULT 0)",
      static_cast<long long>(n), static_cast<long long>(n)));
  (void)db.Run("UPDATE a SET v = (x * 31 + y) % 256");
  for (auto _ : state) {
    auto rs = db.Query("SELECT v, COUNT(*) AS c FROM a GROUP BY v");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ValueGroupHistogram)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
