// F3: array storage and creation (Figure 3) plus the ingestion claim of the
// introduction ("ingestion of terabytes of data is too slow" with
// tuple-at-a-time interfaces). Compares:
//   * array.series / array.filler materialisation (the paper's primitives),
//   * vault-style bulk column load,
//   * tuple-at-a-time SQL INSERT into a table.

#include <benchmark/benchmark.h>

#include "src/array/series.h"
#include "src/common/string_util.h"
#include "src/engine/database.h"
#include "src/vault/synth.h"
#include "src/vault/vault.h"

using sciql::StrFormat;
using sciql::engine::Database;

namespace {

void BM_SeriesMaterialise(benchmark::State& state) {
  // x-style series: each value repeated n times (Figure 3, dim 0).
  int64_t n = state.range(0);
  sciql::array::DimRange r(0, 1, n);
  for (auto _ : state) {
    auto bat = sciql::array::Series(r, static_cast<size_t>(n), 1);
    benchmark::DoNotOptimize(bat->Count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
  state.SetBytesProcessed(state.iterations() * n * n * sizeof(int32_t));
}
BENCHMARK(BM_SeriesMaterialise)->Arg(256)->Arg(1024)->Arg(2048);

void BM_FillerMaterialise(benchmark::State& state) {
  int64_t cells = state.range(0) * state.range(0);
  for (auto _ : state) {
    auto bat = sciql::array::Filler(static_cast<size_t>(cells),
                                    sciql::gdk::ScalarValue::Int(0));
    benchmark::DoNotOptimize(bat->Count());
  }
  state.SetItemsProcessed(state.iterations() * cells);
  state.SetBytesProcessed(state.iterations() * cells * sizeof(int32_t));
}
BENCHMARK(BM_FillerMaterialise)->Arg(256)->Arg(1024)->Arg(2048);

void BM_VaultBulkLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  sciql::vault::Image img = sciql::vault::MakeTerrainImage(n, n);
  int round = 0;
  for (auto _ : state) {
    Database db;
    auto st = sciql::vault::LoadImage(
        &db, StrFormat("img%d", round++), img);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_VaultBulkLoad)->Arg(256)->Arg(512)->Arg(1024);

void BM_TupleAtATimeInsert(benchmark::State& state) {
  // The counterfactual the paper complains about: one INSERT per pixel row.
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    if (!db.Run("CREATE TABLE pix (x INT, y INT, v INT)").ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    state.ResumeTiming();
    for (size_t x = 0; x < n; ++x) {
      for (size_t y = 0; y < n; ++y) {
        auto st = db.Run(StrFormat("INSERT INTO pix VALUES (%zu, %zu, %zu)",
                                   x, y, (x * y) % 251));
        if (!st.ok()) {
          state.SkipWithError(st.ToString().c_str());
          return;
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TupleAtATimeInsert)->Arg(16)->Arg(32)->Arg(64);

void BM_MultiRowInsert(benchmark::State& state) {
  // Middle ground: batched VALUES lists of 256 rows.
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    if (!db.Run("CREATE TABLE pix (x INT, y INT, v INT)").ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    state.ResumeTiming();
    std::string batch;
    size_t in_batch = 0;
    for (size_t x = 0; x < n; ++x) {
      for (size_t y = 0; y < n; ++y) {
        batch += batch.empty() ? "" : ", ";
        batch += StrFormat("(%zu, %zu, %zu)", x, y, (x * y) % 251);
        if (++in_batch == 256) {
          auto st = db.Run("INSERT INTO pix VALUES " + batch);
          if (!st.ok()) {
            state.SkipWithError(st.ToString().c_str());
            return;
          }
          batch.clear();
          in_batch = 0;
        }
      }
    }
    if (!batch.empty()) {
      benchmark::DoNotOptimize(db.Run("INSERT INTO pix VALUES " + batch));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MultiRowInsert)->Arg(16)->Arg(32)->Arg(64);

void BM_CreateArrayThroughSql(benchmark::State& state) {
  // End-to-end CREATE ARRAY: parser + catalog + series/filler.
  int64_t n = state.range(0);
  std::string sql = StrFormat(
      "CREATE ARRAY a (x INT DIMENSION[0:1:%lld], y INT DIMENSION[0:1:%lld], "
      "v INT DEFAULT 0)",
      static_cast<long long>(n), static_cast<long long>(n));
  for (auto _ : state) {
    Database db;
    auto st = db.Run(sql);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CreateArrayThroughSql)->Arg(256)->Arg(1024);

}  // namespace
