// A1 (ablation): the tiling engine design choice. Same structural-grouping
// semantics computed by the naive gather-per-anchor engine versus the
// separable sliding-window engine, across tile sizes and aggregates.
// Expected shape: naive cost grows with tile area; sliding is (nearly)
// independent of it.

#include <benchmark/benchmark.h>

#include <thread>

#include "src/array/tiling.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"

using sciql::array::ArrayDesc;
using sciql::array::AttrDesc;
using sciql::array::DimDesc;
using sciql::array::DimRange;
using sciql::array::TileSpec;
using sciql::gdk::AggOp;
using sciql::gdk::BAT;
using sciql::gdk::BATPtr;
using sciql::gdk::PhysType;
using sciql::gdk::ScalarValue;

namespace {

struct Grid {
  ArrayDesc desc;
  BATPtr vals;
};

Grid MakeGrid(size_t n) {
  Grid g;
  g.desc = ArrayDesc({DimDesc{"x", DimRange(0, 1, static_cast<int64_t>(n)), false},
                      DimDesc{"y", DimRange(0, 1, static_cast<int64_t>(n)), false}},
                     {AttrDesc{"v", PhysType::kInt, ScalarValue::Int(0)}});
  g.vals = BAT::Make(PhysType::kInt);
  g.vals->Resize(n * n);
  sciql::Rng rng(n);
  for (auto& c : g.vals->ints()) {
    c = static_cast<int32_t>(rng.Below(256));
  }
  return g;
}

TileSpec MakeTile(int64_t k) {
  auto spec = TileSpec::FromRanges({{0, k}, {0, k}});
  return spec.ok() ? *spec : TileSpec{};
}

void BM_TileSum_Naive(benchmark::State& state) {
  size_t n = 256;
  Grid g = MakeGrid(n);
  TileSpec spec = MakeTile(state.range(0));
  for (auto _ : state) {
    auto r = NaiveTileAggregate(g.desc, *g.vals, spec, AggOp::kSum);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize((*r)->Count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileSum_Naive)->Arg(2)->Arg(3)->Arg(5)->Arg(9)->Arg(15)
    ->Unit(benchmark::kMillisecond);

void BM_TileSum_Sliding(benchmark::State& state) {
  size_t n = 256;
  Grid g = MakeGrid(n);
  TileSpec spec = MakeTile(state.range(0));
  for (auto _ : state) {
    auto r = SlidingTileAggregate(g.desc, *g.vals, spec, AggOp::kSum);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize((*r)->Count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileSum_Sliding)->Arg(2)->Arg(3)->Arg(5)->Arg(9)->Arg(15)
    ->Unit(benchmark::kMillisecond);

void BM_TileMin_Naive(benchmark::State& state) {
  size_t n = 256;
  Grid g = MakeGrid(n);
  TileSpec spec = MakeTile(state.range(0));
  for (auto _ : state) {
    auto r = NaiveTileAggregate(g.desc, *g.vals, spec, AggOp::kMin);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize((*r)->Count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileMin_Naive)->Arg(3)->Arg(9)->Unit(benchmark::kMillisecond);

void BM_TileMin_Sliding(benchmark::State& state) {
  size_t n = 256;
  Grid g = MakeGrid(n);
  TileSpec spec = MakeTile(state.range(0));
  for (auto _ : state) {
    auto r = SlidingTileAggregate(g.desc, *g.vals, spec, AggOp::kMin);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize((*r)->Count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileMin_Sliding)->Arg(3)->Arg(9)->Unit(benchmark::kMillisecond);

void BM_TileAvg_GridScaling_Sliding(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Grid g = MakeGrid(n);
  TileSpec spec = MakeTile(3);
  for (auto _ : state) {
    auto r = SlidingTileAggregate(g.desc, *g.vals, spec, AggOp::kAvg);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize((*r)->Count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileAvg_GridScaling_Sliding)->Arg(128)->Arg(256)->Arg(512)
    ->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_NonRectangularTile_Naive(benchmark::State& state) {
  size_t n = 256;
  Grid g = MakeGrid(n);
  // EdgeDetection-style anchor+upper+left shape (no sliding fast path).
  auto spec = TileSpec::FromCells({{0, 0}, {-1, 0}, {0, -1}});
  if (!spec.ok()) {
    state.SkipWithError("bad spec");
    return;
  }
  for (auto _ : state) {
    auto r = TileAggregate(g.desc, *g.vals, *spec, AggOp::kSum);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize((*r)->Count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_NonRectangularTile_Naive)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Thread-count sweep over the tiling engines on a 1024x1024 grid (1M+
// cells). Run with --benchmark_filter=Threads; the bench_parallel CMake
// target merges the JSON reports into BENCH_parallel.json.
// ---------------------------------------------------------------------------

void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) b->Arg(hw);
}

void BM_TileSumNaiveSweep_Threads(benchmark::State& state) {
  sciql::ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  size_t n = 1024;
  Grid g = MakeGrid(n);
  TileSpec spec = MakeTile(3);
  for (auto _ : state) {
    auto r = NaiveTileAggregate(g.desc, *g.vals, spec, AggOp::kSum);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  sciql::ThreadPool::Get().SetThreadCount(1);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileSumNaiveSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_TileSumSlidingSweep_Threads(benchmark::State& state) {
  sciql::ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  size_t n = 1024;
  Grid g = MakeGrid(n);
  TileSpec spec = MakeTile(9);
  for (auto _ : state) {
    auto r = SlidingTileAggregate(g.desc, *g.vals, spec, AggOp::kSum);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  sciql::ThreadPool::Get().SetThreadCount(1);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileSumSlidingSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
