// F1: the basic array operations of Figure 1 — creation, guarded update,
// insert/delete-as-update, tiling, dimension expansion — timed across array
// sizes. Regenerates the semantic pipeline of the paper's running example
// at scale.

#include <benchmark/benchmark.h>

#include <thread>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/engine/database.h"
#include "src/gdk/kernels.h"

using sciql::StrFormat;
using sciql::engine::Database;

namespace {

std::string CreateSql(int64_t n) {
  return StrFormat(
      "CREATE ARRAY matrix (x INT DIMENSION[0:1:%lld], "
      "y INT DIMENSION[0:1:%lld], v INT DEFAULT 0)",
      static_cast<long long>(n), static_cast<long long>(n));
}

void BM_CreateArray(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    Database db;
    benchmark::DoNotOptimize(db.Run(CreateSql(n)));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CreateArray)->Arg(64)->Arg(256)->Arg(1024);

void BM_GuardedUpdate(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = db.Run(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y "
        "WHEN x < y THEN x - y ELSE 0 END");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_GuardedUpdate)->Arg(64)->Arg(256)->Arg(1024);

void BM_InsertDiagonal(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = db.Run(
        "INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InsertDiagonal)->Arg(64)->Arg(256)->Arg(1024);

void BM_DeleteHalf(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = db.Run("DELETE FROM matrix WHERE x > y");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n / 2);
}
BENCHMARK(BM_DeleteHalf)->Arg(64)->Arg(256)->Arg(1024);

void BM_TilingQueryFig1e(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok() ||
      !db.Run("UPDATE matrix SET v = x + y").ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto rs = db.Query(
        "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2] "
        "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TilingQueryFig1e)->Arg(64)->Arg(256)->Arg(1024);

void BM_AlterExpand(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    if (!db.Run(CreateSql(n)).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    state.ResumeTiming();
    auto st = db.Run(StrFormat(
        "ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:%lld]",
        static_cast<long long>(n + 1)));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_AlterExpand)->Arg(64)->Arg(256);

void BM_PointQuery(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok() ||
      !db.Run("UPDATE matrix SET v = x * 7 + y").ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  std::string q = StrFormat("SELECT v FROM matrix WHERE x = %lld AND y = %lld",
                            static_cast<long long>(n / 2),
                            static_cast<long long>(n / 3));
  for (auto _ : state) {
    auto rs = db.Query(q);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->Value(0, 0));
  }
}
BENCHMARK(BM_PointQuery)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// Thread-count sweep over the morsel-parallel GDK kernels (the select/calc
// hot paths behind the Figure 1 statements), at 4M rows. Run with
// --benchmark_filter=Threads; the bench_parallel CMake target merges the
// JSON reports into BENCH_parallel.json.
// ---------------------------------------------------------------------------

void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) b->Arg(hw);
}

constexpr size_t kSweepRows = 4 * 1024 * 1024;

sciql::gdk::BATPtr SweepIntColumn() {
  sciql::Rng rng(42);
  auto b = sciql::gdk::BAT::Make(sciql::gdk::PhysType::kInt);
  b->ints().resize(kSweepRows);
  for (auto& v : b->ints()) v = static_cast<int32_t>(rng.Below(1000000));
  return b;
}

sciql::gdk::BATPtr SweepDblColumn(uint64_t seed) {
  sciql::Rng rng(seed);
  auto b = sciql::gdk::BAT::Make(sciql::gdk::PhysType::kDbl);
  b->dbls().resize(kSweepRows);
  for (auto& v : b->dbls()) {
    v = static_cast<double>(rng.Below(1000000)) / 997.0;
  }
  return b;
}

void BM_SelectSweep_Threads(benchmark::State& state) {
  sciql::ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  auto b = SweepIntColumn();
  for (auto _ : state) {
    auto r = sciql::gdk::ThetaSelect(*b, nullptr, sciql::gdk::CmpOp::kLt,
                                     sciql::gdk::ScalarValue::Int(250000));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  sciql::ThreadPool::Get().SetThreadCount(1);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_SelectSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_CalcSweep_Threads(benchmark::State& state) {
  sciql::ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  auto l = SweepDblColumn(7);
  auto r = SweepDblColumn(8);
  for (auto _ : state) {
    auto out = sciql::gdk::CalcBinary(sciql::gdk::BinOp::kMul, l.get(),
                                      nullptr, r.get(), nullptr);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*out)->Count());
  }
  sciql::ThreadPool::Get().SetThreadCount(1);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_CalcSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_JoinSweep_Threads(benchmark::State& state) {
  sciql::ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  sciql::Rng rng(9);
  auto build = sciql::gdk::BAT::Make(sciql::gdk::PhysType::kInt);
  build->ints().resize(kSweepRows / 8);
  for (auto& v : build->ints()) v = static_cast<int32_t>(rng.Below(1u << 20));
  auto probe = sciql::gdk::BAT::Make(sciql::gdk::PhysType::kInt);
  probe->ints().resize(kSweepRows);
  for (auto& v : probe->ints()) v = static_cast<int32_t>(rng.Below(1u << 20));
  for (auto _ : state) {
    auto r = sciql::gdk::HashJoin(*build, *probe);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r->left->Count());
  }
  sciql::ThreadPool::Get().SetThreadCount(1);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_JoinSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

void BM_GroupAggSweep_Threads(benchmark::State& state) {
  sciql::ThreadPool::Get().SetThreadCount(static_cast<int>(state.range(0)));
  sciql::Rng rng(10);
  auto vals = SweepDblColumn(11);
  auto groups = sciql::gdk::BAT::Make(sciql::gdk::PhysType::kOid);
  groups->oids().resize(kSweepRows);
  for (auto& g : groups->oids()) g = rng.Below(512);
  for (auto _ : state) {
    auto r = sciql::gdk::GroupedAggregate(sciql::gdk::AggOp::kSum, vals.get(),
                                          *groups, 512);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize((*r)->Count());
  }
  sciql::ThreadPool::Get().SetThreadCount(1);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}
BENCHMARK(BM_GroupAggSweep_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
