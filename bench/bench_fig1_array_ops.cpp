// F1: the basic array operations of Figure 1 — creation, guarded update,
// insert/delete-as-update, tiling, dimension expansion — timed across array
// sizes. Regenerates the semantic pipeline of the paper's running example
// at scale.

#include <benchmark/benchmark.h>

#include "src/common/string_util.h"
#include "src/engine/database.h"

using sciql::StrFormat;
using sciql::engine::Database;

namespace {

std::string CreateSql(int64_t n) {
  return StrFormat(
      "CREATE ARRAY matrix (x INT DIMENSION[0:1:%lld], "
      "y INT DIMENSION[0:1:%lld], v INT DEFAULT 0)",
      static_cast<long long>(n), static_cast<long long>(n));
}

void BM_CreateArray(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    Database db;
    benchmark::DoNotOptimize(db.Run(CreateSql(n)));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CreateArray)->Arg(64)->Arg(256)->Arg(1024);

void BM_GuardedUpdate(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = db.Run(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y "
        "WHEN x < y THEN x - y ELSE 0 END");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_GuardedUpdate)->Arg(64)->Arg(256)->Arg(1024);

void BM_InsertDiagonal(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = db.Run(
        "INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InsertDiagonal)->Arg(64)->Arg(256)->Arg(1024);

void BM_DeleteHalf(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = db.Run("DELETE FROM matrix WHERE x > y");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n / 2);
}
BENCHMARK(BM_DeleteHalf)->Arg(64)->Arg(256)->Arg(1024);

void BM_TilingQueryFig1e(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok() ||
      !db.Run("UPDATE matrix SET v = x + y").ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto rs = db.Query(
        "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2] "
        "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TilingQueryFig1e)->Arg(64)->Arg(256)->Arg(1024);

void BM_AlterExpand(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    if (!db.Run(CreateSql(n)).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    state.ResumeTiming();
    auto st = db.Run(StrFormat(
        "ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:%lld]",
        static_cast<long long>(n + 1)));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_AlterExpand)->Arg(64)->Arg(256);

void BM_PointQuery(benchmark::State& state) {
  int64_t n = state.range(0);
  Database db;
  if (!db.Run(CreateSql(n)).ok() ||
      !db.Run("UPDATE matrix SET v = x * 7 + y").ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  std::string q = StrFormat("SELECT v FROM matrix WHERE x = %lld AND y = %lld",
                            static_cast<long long>(n / 2),
                            static_cast<long long>(n / 3));
  for (auto _ : state) {
    auto rs = db.Query(q);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs->Value(0, 0));
  }
}
BENCHMARK(BM_PointQuery)->Arg(256)->Arg(1024);

}  // namespace
