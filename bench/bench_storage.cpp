// Storage engine benchmarks at 1M rows: checkpoint cost (dirty-only vs
// full), cold reopen (manifest-only, lazy columns), and the first query
// after a reopen (pays the lazy column load). Names carry the Threads/N
// suffix so the bench_parallel target merges them into BENCH_parallel.json
// alongside the kernel sweeps (storage I/O itself is single-threaded; the
// thread arg only feeds the shared merge format).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/engine/database.h"

namespace {

namespace fs = std::filesystem;

using sciql::Rng;
using sciql::engine::Database;

constexpr size_t kRows = 1'000'000;

std::string BenchDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "sciql_bench_storage" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Create big(k INT, v DOUBLE) with kRows deterministic rows. The columns are
// filled through the BAT tails directly (a statement per row would dominate
// the setup); the mutable accessors mark them dirty like any DML would.
void FillBigTable(Database* db) {
  if (!db->Run("CREATE TABLE big (k INT, v DOUBLE)").ok()) std::abort();
  auto tab = *db->catalog()->GetTable("big");
  Rng rng(20130622);
  auto& ks = tab->bats[0]->ints();
  ks.resize(kRows);
  for (auto& k : ks) k = static_cast<int32_t>(rng.Below(1u << 30));
  auto& vs = tab->bats[1]->dbls();
  vs.resize(kRows);
  for (auto& v : vs) v = rng.NextDouble() * 1000.0;
}

void BM_StorageCheckpointFull1M_Threads(benchmark::State& state) {
  std::string dir = BenchDir("checkpoint_full");
  Database db;
  if (!db.Open(dir).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  FillBigTable(&db);
  for (auto _ : state) {
    auto st = db.storage_engine()->Checkpoint(/*force_full=*/true);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_StorageCheckpointFull1M_Threads)->Arg(1);

void BM_StorageCheckpointClean1M_Threads(benchmark::State& state) {
  std::string dir = BenchDir("checkpoint_clean");
  Database db;
  if (!db.Open(dir).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  FillBigTable(&db);
  if (!db.Checkpoint().ok()) {
    state.SkipWithError("initial checkpoint failed");
    return;
  }
  // Nothing dirty: each checkpoint writes only the manifest. This is the
  // floor a dirty-tracking bug would blow up (a rewrite-everything regression
  // shows as ~checkpoint_full time here).
  for (auto _ : state) {
    auto st = db.Checkpoint();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_StorageCheckpointClean1M_Threads)->Arg(1);

void BM_StorageCheckpointOneDirtyColumn1M_Threads(benchmark::State& state) {
  std::string dir = BenchDir("checkpoint_dirty_one");
  Database db;
  if (!db.Open(dir).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  FillBigTable(&db);
  if (!db.Checkpoint().ok()) {
    state.SkipWithError("initial checkpoint failed");
    return;
  }
  auto tab = *db.catalog()->GetTable("big");
  int32_t tick = 0;
  for (auto _ : state) {
    tab->bats[0]->ints()[0] = ++tick;  // dirty exactly one column
    auto st = db.Checkpoint();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_StorageCheckpointOneDirtyColumn1M_Threads)->Arg(1);

// Shared read-only 1M-row database directory for the reopen benchmarks.
const std::string& ReopenDir() {
  static const std::string dir = [] {
    std::string d = BenchDir("reopen");
    Database db;
    if (!db.Open(d).ok()) std::abort();
    FillBigTable(&db);
    if (!db.Checkpoint().ok()) std::abort();
    return d;
  }();
  return dir;
}

void BM_StorageColdReopen1M_Threads(benchmark::State& state) {
  const std::string& dir = ReopenDir();
  for (auto _ : state) {
    Database db;
    auto st = db.Open(dir);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(db.HasStorage());
    // No query: the manifest loads, the 1M-row columns do not.
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_StorageColdReopen1M_Threads)->Arg(1);

void BM_StorageFirstQueryAfterReopen1M_Threads(benchmark::State& state) {
  const std::string& dir = ReopenDir();
  for (auto _ : state) {
    Database db;
    if (!db.Open(dir).ok()) {
      state.SkipWithError("open failed");
      break;
    }
    auto rs = db.Query("SELECT COUNT(*) FROM big");
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_StorageFirstQueryAfterReopen1M_Threads)->Arg(1);

}  // namespace
