// S2a (Scenario II, grey-scale column of Figure 5): the six operations on
// the "building" image — load, invert, edge detection, smoothing, reduction,
// rotation. Each op is measured two ways:
//   * SciQL: executed inside the database;
//   * BLOB round-trip: export the whole image to the application, process
//     natively, re-import — the workflow the paper's introduction argues
//     against for BLOB-stored arrays.

#include <benchmark/benchmark.h>

#include "src/common/string_util.h"
#include "src/engine/database.h"
#include "src/img/ops.h"
#include "src/vault/synth.h"
#include "src/vault/vault.h"

using sciql::Status;
using sciql::StrFormat;
using sciql::engine::Database;
using sciql::vault::Image;

namespace {

struct Setup {
  Database db;
  Image img;
  explicit Setup(size_t n) : img(sciql::vault::MakeBuildingImage(n, n)) {
    (void)sciql::vault::LoadImage(&db, "img", img);
  }
};

template <typename SciqlOp>
void RunSciqlOp(benchmark::State& state, SciqlOp op) {
  size_t n = static_cast<size_t>(state.range(0));
  Setup s(n);
  int round = 0;
  for (auto _ : state) {
    std::string dst = StrFormat("out%d", round++);
    Status st = op(&s.db, "img", dst);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}

template <typename NativeOp>
void RunBlobRoundTrip(benchmark::State& state, NativeOp op) {
  size_t n = static_cast<size_t>(state.range(0));
  Setup s(n);
  int round = 0;
  for (auto _ : state) {
    // A BLOB is an opaque byte string: the application receives the encoded
    // image, must parse it, process it, re-encode it, and the DBMS
    // re-ingests the bytes. (With arrays as first-class citizens none of
    // the encode/decode steps exist.)
    auto stored = sciql::vault::StoreImage(&s.db, "img");
    if (!stored.ok()) {
      state.SkipWithError("export failed");
      return;
    }
    std::string blob = sciql::vault::SerializePgm(*stored);
    auto img = sciql::vault::ParsePgm(blob);
    if (!img.ok()) {
      state.SkipWithError("blob parse failed");
      return;
    }
    Image out = op(*img);
    std::string blob_out = sciql::vault::SerializePgm(out);
    auto reimported = sciql::vault::ParsePgm(blob_out);
    if (!reimported.ok()) {
      state.SkipWithError("blob reimport failed");
      return;
    }
    Status st = sciql::vault::LoadImage(&s.db, StrFormat("out%d", round++),
                                        *reimported);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}

#define GREY_SIZES Arg(128)->Arg(256)->Arg(512)

void BM_Load_Sciql(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Image img = sciql::vault::MakeBuildingImage(n, n);
  int round = 0;
  for (auto _ : state) {
    Database db;
    Status st =
        sciql::vault::LoadImage(&db, StrFormat("img%d", round++), img);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Load_Sciql)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Invert_Sciql(benchmark::State& state) {
  RunSciqlOp(state, [](Database* db, const std::string& s,
                       const std::string& d) {
    return sciql::img::Invert(db, s, d);
  });
}
BENCHMARK(BM_Invert_Sciql)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Invert_BlobRoundTrip(benchmark::State& state) {
  RunBlobRoundTrip(state,
                   [](const Image& i) { return sciql::img::native::Invert(i); });
}
BENCHMARK(BM_Invert_BlobRoundTrip)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_EdgeDetect_Sciql(benchmark::State& state) {
  RunSciqlOp(state, [](Database* db, const std::string& s,
                       const std::string& d) {
    return sciql::img::EdgeDetect(db, s, d);
  });
}
BENCHMARK(BM_EdgeDetect_Sciql)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_EdgeDetect_BlobRoundTrip(benchmark::State& state) {
  RunBlobRoundTrip(state, [](const Image& i) {
    return sciql::img::native::EdgeDetect(i);
  });
}
BENCHMARK(BM_EdgeDetect_BlobRoundTrip)
    ->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Smooth_Sciql(benchmark::State& state) {
  RunSciqlOp(state, [](Database* db, const std::string& s,
                       const std::string& d) {
    return sciql::img::Smooth(db, s, d);
  });
}
BENCHMARK(BM_Smooth_Sciql)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Smooth_BlobRoundTrip(benchmark::State& state) {
  RunBlobRoundTrip(state,
                   [](const Image& i) { return sciql::img::native::Smooth(i); });
}
BENCHMARK(BM_Smooth_BlobRoundTrip)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Reduce_Sciql(benchmark::State& state) {
  RunSciqlOp(state, [](Database* db, const std::string& s,
                       const std::string& d) {
    return sciql::img::Reduce2x(db, s, d);
  });
}
BENCHMARK(BM_Reduce_Sciql)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Reduce_BlobRoundTrip(benchmark::State& state) {
  RunBlobRoundTrip(state, [](const Image& i) {
    return sciql::img::native::Reduce2x(i);
  });
}
BENCHMARK(BM_Reduce_BlobRoundTrip)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Rotate_Sciql(benchmark::State& state) {
  RunSciqlOp(state, [](Database* db, const std::string& s,
                       const std::string& d) {
    return sciql::img::Rotate90(db, s, d);
  });
}
BENCHMARK(BM_Rotate_Sciql)->GREY_SIZES->Unit(benchmark::kMillisecond);

void BM_Rotate_BlobRoundTrip(benchmark::State& state) {
  RunBlobRoundTrip(state, [](const Image& i) {
    return sciql::img::native::Rotate90(i);
  });
}
BENCHMARK(BM_Rotate_BlobRoundTrip)->GREY_SIZES->Unit(benchmark::kMillisecond);

}  // namespace
