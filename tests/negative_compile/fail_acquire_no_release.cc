// MUST NOT COMPILE with -Werror=thread-safety: returns with the mutex
// still held (a plain function may not leak a capability it acquired).

#include "src/common/thread_annotations.h"

namespace {

class Account {
 public:
  void Leak() {
    mu_.lock();
    balance_ = 0;
    // error: mu_ is still held when the function returns
  }

 private:
  sciql::common::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void NegativeCompileProbe() {
  Account a;
  a.Leak();
}
