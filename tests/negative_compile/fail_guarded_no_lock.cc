// MUST NOT COMPILE with -Werror=thread-safety: touches a GUARDED_BY field
// without holding its mutex.

#include "src/common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // error: writing balance_ requires holding mu_
  }

 private:
  sciql::common::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void NegativeCompileProbe() {
  Account a;
  a.Deposit(1);
}
