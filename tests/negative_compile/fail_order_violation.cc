// MUST NOT COMPILE with -Werror=thread-safety -Wthread-safety-beta:
// acquires two mutexes against their declared ACQUIRED_AFTER ordering —
// the same way the engine declares wal_mu_ after state_mu_
// (src/storage/storage_engine.h).

#include "src/common/thread_annotations.h"

namespace {

class Engine {
 public:
  void Backwards() {
    sciql::common::MutexLock inner(&wal_mu_);
    sciql::common::MutexLock outer(&state_mu_);  // error: wrong order
  }

 private:
  sciql::common::Mutex state_mu_;
  sciql::common::Mutex wal_mu_ ACQUIRED_AFTER(state_mu_);
};

}  // namespace

void NegativeCompileProbe() {
  Engine e;
  e.Backwards();
}
