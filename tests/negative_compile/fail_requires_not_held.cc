// MUST NOT COMPILE with -Werror=thread-safety: calls a REQUIRES(mu_)
// function without holding the mutex.

#include "src/common/thread_annotations.h"

namespace {

class Account {
 public:
  void DepositLocked(int amount) REQUIRES(mu_) { balance_ += amount; }

  void Deposit(int amount) {
    DepositLocked(amount);  // error: calling requires holding mu_
  }

 private:
  sciql::common::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void NegativeCompileProbe() {
  Account a;
  a.Deposit(1);
}
