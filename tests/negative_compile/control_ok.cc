// Positive control: the same capability types used *correctly* MUST
// compile cleanly with -Werror=thread-safety -Wthread-safety-beta. If this
// file ever fails, the harness is broken (and every fail_*.cc result is
// meaningless).

#include "src/common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    sciql::common::MutexLock lock(&mu_);
    DepositLocked(amount);
  }

  int WaitForFunds(int minimum) {
    sciql::common::MutexLock lock(&mu_);
    while (balance_ < minimum) cv_.Wait(mu_);
    return balance_;
  }

 private:
  void DepositLocked(int amount) REQUIRES(mu_) {
    balance_ += amount;
    cv_.NotifyAll();
  }

  sciql::common::Mutex mu_;
  sciql::common::CondVar cv_;
  int balance_ GUARDED_BY(mu_) = 0;
};

class Engine {
 public:
  void Ordered() {
    sciql::common::MutexLock outer(&state_mu_);
    sciql::common::MutexLock inner(&wal_mu_);
  }

 private:
  sciql::common::Mutex state_mu_;
  sciql::common::Mutex wal_mu_ ACQUIRED_AFTER(state_mu_);
};

}  // namespace

void NegativeCompileControl() {
  Account a;
  a.Deposit(5);
  (void)a.WaitForFunds(1);
  Engine e;
  e.Ordered();
}
