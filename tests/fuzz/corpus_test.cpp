// Replays every shrunken repro under tests/fuzz/corpus/*.sql through the
// full differential-oracle path matrix (src/fuzz/, docs/fuzzing.md). Each
// corpus file is one regression: a bug the fuzzer (or a satellite fix)
// found, cut down to a minimal statement list. The oracle asserts three
// things per file: `statement ok` / `statement error` expectations hold in
// every path, query rows match the recorded expected rows in every path,
// and all paths agree with each other bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/fuzz/fuzz.h"

#ifndef SCIQL_SOURCE_DIR
#error "SCIQL_SOURCE_DIR must point at the repository root"
#endif

namespace sciql {
namespace fuzz {
namespace {

namespace fs = std::filesystem;

class CorpusFileTest : public ::testing::Test {
 public:
  explicit CorpusFileTest(std::string path) : path_(std::move(path)) {}

  void TestBody() override {
    FuzzCase fc;
    std::string error;
    ASSERT_TRUE(LoadCorpus(path_, &fc, &error)) << error;
    ASSERT_FALSE(fc.stmts.empty()) << path_ << " is empty";
    CaseResult r = RunCase(fc, DefaultPaths());
    for (const Diff& d : r.diffs) {
      ADD_FAILURE() << path_ << ": stmt " << d.stmt_index << " ["
                    << d.path << "]: " << d.detail;
    }
  }

 private:
  std::string path_;
};

bool RegisterCorpusTests() {
  fs::path dir = fs::path(SCIQL_SOURCE_DIR) / "tests" / "fuzz" / "corpus";
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".sql") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    // A missing corpus dir is a failing test, not a silent zero-test pass.
    ::testing::RegisterTest(
        "FuzzCorpus", "MissingCorpusDir", nullptr, nullptr, __FILE__,
        __LINE__, [dir]() -> ::testing::Test* {
          return new CorpusFileTest((dir / "<missing>").string());
        });
    return false;
  }
  for (const fs::path& f : files) {
    std::string name = f.stem().string();
    ::testing::RegisterTest(
        "FuzzCorpus", name.c_str(), nullptr, nullptr, __FILE__, __LINE__,
        [f]() -> ::testing::Test* { return new CorpusFileTest(f.string()); });
  }
  return true;
}

[[maybe_unused]] const bool kRegistered = RegisterCorpusTests();

}  // namespace
}  // namespace fuzz
}  // namespace sciql
