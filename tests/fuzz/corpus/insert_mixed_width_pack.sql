# Found by the fuzzer (smoke seed 20130622): bat.pack typed each VALUES
# column by its *first* non-null literal. A small literal followed by a
# BIGINT-range one then rejected the whole INSERT ("value
# 9223372036854775807 overflows int") even though the destination column
# is BIGINT — and worse, an integer literal followed by a fractional one
# packed an int column and silently truncated 0.5 to 0 before the cast
# back to DOUBLE. pack now widens to the largest numeric type present
# (bit < int < lng < dbl); the insert path still coerces to the table
# schema afterwards.

statement ok
CREATE TABLE t (k INT, a BIGINT, d DOUBLE)

statement ok
INSERT INTO t VALUES (1, 5, 0.5), (2, 9223372036854775807, 1.5), (3, NULL, 0.125)

query sorted
SELECT a FROM t
----
5
9223372036854775807
null

# Integer literal in a DOUBLE column: pack must widen to dbl, not truncate
# the later fractional literal through an int BAT.
statement ok
CREATE TABLE u (d DOUBLE)

statement ok
INSERT INTO u VALUES (1), (0.5)

query sorted
SELECT d FROM u
----
0.5
1

query
SELECT SUM(d) AS s FROM u
----
1.5
