# Signed integer +, -, *, unary negation and ABS wrap mod 2^64 (two's
# complement, one documented semantics — docs/execution.md). A wrapped
# value that lands on the BIGINT nil sentinel (INT64_MIN) reads back as
# NULL; an input slot holding the sentinel *is* NULL and propagates.
# Wrapping keeps integer SUM associative, so every oracle path and thread
# count must agree bit-for-bit.

statement ok
CREATE TABLE t (a BIGINT)

statement ok
INSERT INTO t VALUES (9223372036854775807), (-9223372036854775808), (1)

# INT64_MAX + 1 wraps onto the sentinel -> NULL; the INT64_MIN row was
# already NULL on input.
query sorted
SELECT a + 1 AS c0 FROM t
----
2
null
null

query sorted
SELECT -a AS c0 FROM t
----
-1
-9223372036854775807
null

query sorted
SELECT ABS(a) AS c0 FROM t
----
1
9223372036854775807
null

query sorted
SELECT a * 2 AS c0 FROM t
----
-2
2
null

# SUM skips the NULL row, then INT64_MAX + 1 wraps onto the sentinel: the
# aggregate itself reads back as NULL.
query
SELECT SUM(a) AS c0 FROM t
----
null

query
SELECT COUNT(a) AS c0 FROM t
----
2

query
SELECT SUM(a) AS c0 FROM t WHERE a < 100
----
1
