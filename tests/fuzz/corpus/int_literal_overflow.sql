# Out-of-range integer literals used to saturate silently (strtoll with no
# errno check): 9223372036854775808 parsed as 9223372036854775807. They
# must be clear parse errors — except the magnitude of 2^63 directly under
# a unary minus, which is exactly INT64_MIN and must round-trip through the
# lexer. INT64_MIN is the BIGINT nil sentinel, so the *value* stores as
# NULL (MonetDB-style: the smallest integer is reserved for nil).

statement error
SELECT 9223372036854775808 AS c0

statement error
SELECT 99999999999999999999 AS c0

statement error
SELECT -9223372036854775809 AS c0

statement ok
CREATE TABLE t (a BIGINT)

statement error
INSERT INTO t VALUES (9223372036854775808)

statement ok
INSERT INTO t VALUES (-9223372036854775808), (42)

query sorted
SELECT a FROM t
----
42
null

query sorted
SELECT a FROM t WHERE a = -9223372036854775808
----

query sorted
SELECT a FROM t WHERE a IS NULL
----
null
