# Found by the fuzzer (smoke seed 20130622): a constant select item
# compiled to a scalar register and never materialized — SELECT 14 AS c0
# FROM t returned one row regardless of the table's row count, and ORDER
# BY c0 (or ORDER BY c0 LIMIT n) failed with "argument is not a BAT",
# with *different* error text in the fused (algebra.firstn) and unfused
# (algebra.orderidx) plans. Constant items are now broadcast to a
# row-aligned BAT whenever the select has a row source.

statement ok
CREATE TABLE t (k INT, s VARCHAR)

statement ok
INSERT INTO t VALUES (2, 'b'), (1, 'a'), (3, NULL)

query sorted
SELECT 14 AS c0 FROM t
----
14
14
14

query
SELECT -14 AS c0, k AS c1 FROM t ORDER BY c0, c1
----
-14|1
-14|2
-14|3

# NULLs sort first ascending (nil is smallest, as in MonetDB).
query
SELECT 7 AS c0, s AS c1 FROM t ORDER BY c0, c1 LIMIT 2
----
7|null
7|a

# Constant expression items broadcast too, and NULL constants keep their
# type through the broadcast.
query sorted
SELECT 2 + 3 AS c0, NULL AS c1 FROM t
----
5|null
5|null
5|null

# Without a row source the scalar is the single-row answer, unchanged.
query
SELECT 14 AS c0, SUM(k) AS c1 FROM t
----
14|6
