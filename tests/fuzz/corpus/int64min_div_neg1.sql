# INT64_MIN / -1 is the one quotient the hardware traps on (SIGFPE). The
# engine is shielded twice: INT64_MIN is the BIGINT nil sentinel, so any
# slot holding it is NULL and never reaches the divide (NULL in, NULL out),
# and the kernel additionally guards the quotient defensively
# (src/gdk/calc.cc). This pins the observable semantics: no crash, NULL
# propagation, on every path and thread count.

statement ok
CREATE TABLE t (a BIGINT)

statement ok
INSERT INTO t VALUES (-9223372036854775808), (5), (NULL)

query sorted
SELECT a / -1 AS c0 FROM t
----
-5
null
null

query sorted
SELECT a / -1 AS c0 FROM t WHERE a IS NOT NULL
----
-5
