# INT64_MIN % -1: the modulo twin of the division trap (the hardware
# computes the quotient first). As with division, the nil sentinel shields
# the kernel — an INT64_MIN slot is NULL — and a defensive guard backs it
# up. Both spellings (% and MOD) hit the same kernel.

statement ok
CREATE TABLE t (a BIGINT)

statement ok
INSERT INTO t VALUES (-9223372036854775808), (7)

query sorted
SELECT a MOD -1 AS c0 FROM t
----
0
null

query sorted
SELECT a % -1 AS c0 FROM t
----
0
null

query
SELECT a MOD -1 AS c0 FROM t WHERE a > 0
----
0
