// Tier-1 smoke sweep of the differential fuzzer (src/fuzz/,
// docs/fuzzing.md): a fixed seed, ~200 generated queries, every query run
// down all seven oracle paths with zero tolerated diffs. The accumulated
// kernel telemetry is then asserted per path, so this test also *proves*
// the path matrix exercises what it claims to: the noindex path must never
// touch an index-aware kernel, the sortslice path must never run firstn,
// the warm path must actually take merge/probe joins, and the reopen path
// must adopt persisted order indexes from disk.
//
// The seed is fixed: a failure here is deterministic, and the printed
// repro(s) can be replayed with `fuzz_runner --replay`.

#include <gtest/gtest.h>

#include "src/fuzz/fuzz.h"

namespace sciql {
namespace fuzz {
namespace {

constexpr uint64_t kSmokeSeed = 20130622;  // fixed: SIGMOD'13 vintage

TEST(FuzzSmoke, TwoHundredQueriesZeroDiffs) {
  SweepOptions opts;
  opts.query_target = 200;
  opts.gen.queries_per_case = 5;
  opts.gen.max_rows = 60;  // keep tier-1 wall time bounded

  SweepReport rep = RunSweep(kSmokeSeed, opts, DefaultPaths());
  EXPECT_GE(rep.queries, opts.query_target);
  if (!rep.failing_seeds.empty()) {
    std::string seeds;
    for (uint64_t s : rep.failing_seeds) seeds += " " + std::to_string(s);
    ADD_FAILURE() << "cross-path diffs for case seed(s):" << seeds;
    for (const std::string& r : rep.repros) {
      ADD_FAILURE() << "shrunken repro:\n" << r;
    }
  }

  // Path-coverage proofs over the summed telemetry.
  const gdk::TelemetrySnapshot& noindex = rep.telemetry["noindex-1t"];
  EXPECT_EQ(noindex.joins_merge, 0u) << "kill switch leaked a merge join";
  EXPECT_EQ(noindex.joins_indexed_probe, 0u);
  EXPECT_EQ(noindex.firstn_index_window, 0u);
  EXPECT_EQ(noindex.minmax_index, 0u);
  EXPECT_GT(noindex.joins_hash, 0u) << "sweep generated no joins at all?";

  const gdk::TelemetrySnapshot& sortslice = rep.telemetry["sortslice-1t"];
  EXPECT_EQ(sortslice.firstn_heap, 0u)
      << "fuse_firstn=false still compiled a firstn";
  EXPECT_EQ(sortslice.firstn_index_window, 0u);
  EXPECT_EQ(sortslice.firstn_sort_fallback, 0u);

  const gdk::TelemetrySnapshot& base = rep.telemetry["mem-1t"];
  EXPECT_GT(base.firstn_heap + base.firstn_sort_fallback +
                base.firstn_index_window,
            0u)
      << "sweep generated no LIMIT queries?";

  const gdk::TelemetrySnapshot& warm = rep.telemetry["warm-1t"];
  EXPECT_GT(warm.joins_merge + warm.joins_indexed_probe, 0u)
      << "warmed indexes never steered a join off the hash path";
  EXPECT_GT(warm.order_index_built, 0u);

  const gdk::TelemetrySnapshot& reopen = rep.telemetry["reopen-1t"];
  EXPECT_GT(reopen.order_index_loaded, 0u)
      << "reopen path never adopted a persisted order index";
}

// The generator is a pure function of (seed, options): byte-identical SQL
// on every platform, which is what makes `fuzz_runner --seed N` repro lines
// from CI meaningful locally.
TEST(FuzzSmoke, GeneratorIsDeterministic) {
  GeneratorOptions opts;
  FuzzCase a = GenerateCase(12345, opts);
  FuzzCase b = GenerateCase(12345, opts);
  ASSERT_EQ(a.stmts.size(), b.stmts.size());
  for (size_t i = 0; i < a.stmts.size(); ++i) {
    EXPECT_EQ(a.stmts[i].sql, b.stmts[i].sql) << "statement " << i;
  }
  ASSERT_EQ(a.warm, b.warm);
  FuzzCase c = GenerateCase(54321, opts);
  bool any_differs = a.stmts.size() != c.stmts.size();
  for (size_t i = 0; !any_differs && i < a.stmts.size(); ++i) {
    any_differs = a.stmts[i].sql != c.stmts[i].sql;
  }
  EXPECT_TRUE(any_differs) << "different seeds produced identical cases";
}

// ShrinkCase on a hand-made failing case (an expected-rows mismatch) must
// cut it down to the failing query plus the setup it depends on.
TEST(FuzzSmoke, ShrinkReducesToMinimalStatements) {
  FuzzCase fc;
  fc.name = "shrink_probe";
  auto setup = [&](const char* sql) {
    FuzzStatement st;
    st.kind = FuzzStatement::Kind::kSetup;
    st.sql = sql;
    fc.stmts.push_back(st);
  };
  setup("CREATE TABLE keep (k INT)");
  setup("CREATE TABLE noise (z INT)");
  setup("INSERT INTO keep VALUES (1), (2)");
  setup("INSERT INTO noise VALUES (9)");
  FuzzStatement good;
  good.kind = FuzzStatement::Kind::kQuery;
  good.sql = "SELECT z AS c0 FROM noise";
  fc.stmts.push_back(good);
  FuzzStatement bad;
  bad.kind = FuzzStatement::Kind::kQuery;
  bad.sql = "SELECT k AS c0 FROM keep";
  bad.has_expected = true;
  bad.sort_expected = true;
  bad.expected = {"1", "2", "3"};  // wrong on purpose: 3 never exists
  fc.stmts.push_back(bad);

  std::vector<PathConfig> paths = {{"mem-1t", 1, true, true, false, false}};
  ASSERT_FALSE(RunCase(fc, paths).diffs.empty());
  FuzzCase small = ShrinkCase(fc, paths);
  ASSERT_FALSE(RunCase(small, paths).diffs.empty());
  // Minimal: CREATE keep + the failing query. Even the INSERT goes — an
  // empty table still mismatches the expected rows — and the noise table
  // and passing query certainly do.
  EXPECT_EQ(small.stmts.size(), 2u);
  for (const FuzzStatement& st : small.stmts) {
    EXPECT_EQ(st.sql.find("noise"), std::string::npos) << st.sql;
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace sciql
