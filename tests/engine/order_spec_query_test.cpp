// SQL-level behavior of the keyed order-index cache: a descending ORDER BY
// after an ascending one (and repeated multi-key sorts) must be served from
// the one canonical index build — zero additional sorts, pinned through
// gdk::KernelTelemetry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/gdk/kernels.h"

#include "tests/support/telemetry_probe.h"
#include "tests/support/golden_format.h"

namespace sciql {
namespace engine {
namespace {

std::vector<std::string> QueryRows(Database* db, const std::string& sql) {
  auto rs = db->Query(sql);
  EXPECT_TRUE(rs.ok()) << sql << ": " << rs.status().ToString();
  std::vector<std::string> rows;
  if (!rs.ok()) return rows;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    rows.push_back(testsupport::RenderGoldenRow(*rs, r));
  }
  return rows;
}

class OrderSpecQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE TABLE t (k INT, v INT, s VARCHAR)").ok());
    ASSERT_TRUE(db_.Run("INSERT INTO t VALUES "
                        "(3, 30, 'c'), (1, 10, 'a'), (2, 21, 'b'), "
                        "(2, 20, 'bb'), (NULL, 50, NULL), (1, 11, 'aa')")
                    .ok());
  }
  Database db_;
};

TEST_F(OrderSpecQueryTest, DescOrderByAfterAscBuildsNothing) {
  testsupport::TestProbe().Rebase();
  std::vector<std::string> asc = QueryRows(&db_, "SELECT k FROM t ORDER BY k");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);

  testsupport::TestProbe().Rebase();
  std::vector<std::string> desc =
      QueryRows(&db_, "SELECT k, v FROM t ORDER BY k DESC");
  // Served by run reversal of the live ascending index: zero sorts.
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_GE(testsupport::TestProbe().delta().order_index_reversed, 1u);
  // Stable DESC with nils (smallest) last; ties keep insertion order.
  EXPECT_EQ(desc, (std::vector<std::string>{"3|30", "2|21", "2|20", "1|10",
                                            "1|11", "null|50"}));
  ASSERT_EQ(asc.front(), "null");
}

TEST_F(OrderSpecQueryTest, MultiKeyOrderByCachesAndReuses) {
  testsupport::TestProbe().Rebase();
  std::vector<std::string> first =
      QueryRows(&db_, "SELECT k, v FROM t ORDER BY k, v DESC");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built_multi, 1u);
  EXPECT_EQ(first, (std::vector<std::string>{"null|50", "1|11", "1|10",
                                             "2|21", "2|20", "3|30"}));

  testsupport::TestProbe().Rebase();
  std::vector<std::string> again =
      QueryRows(&db_, "SELECT k, v FROM t ORDER BY k, v DESC");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_GE(testsupport::TestProbe().delta().order_index_reused_multi, 1u);
  EXPECT_EQ(again, first);

  // The fully negated spec reverses the same build — still zero sorts.
  testsupport::TestProbe().Rebase();
  std::vector<std::string> neg =
      QueryRows(&db_, "SELECT k, v FROM t ORDER BY k DESC, v");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_GE(testsupport::TestProbe().delta().order_index_reversed_multi, 1u);
  EXPECT_EQ(neg, (std::vector<std::string>{"3|30", "2|20", "2|21", "1|10",
                                           "1|11", "null|50"}));
}

TEST_F(OrderSpecQueryTest, DescLimitRidesTheAscendingIndexWindow) {
  QueryRows(&db_, "SELECT k FROM t ORDER BY k");  // builds + caches
  testsupport::TestProbe().Rebase();
  std::vector<std::string> top =
      QueryRows(&db_, "SELECT k FROM t ORDER BY k DESC LIMIT 2");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_index_window, 1u);
  EXPECT_EQ(top, (std::vector<std::string>{"3", "2"}));
}

TEST_F(OrderSpecQueryTest, StringDescOrderByReversesCachedIndex) {
  testsupport::TestProbe().Rebase();
  QueryRows(&db_, "SELECT s FROM t ORDER BY s");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  testsupport::TestProbe().Rebase();
  std::vector<std::string> desc =
      QueryRows(&db_, "SELECT s FROM t ORDER BY s DESC");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_GE(testsupport::TestProbe().delta().order_index_reversed, 1u);
  EXPECT_EQ(desc, (std::vector<std::string>{"c", "bb", "b", "aa", "a",
                                            "null"}));
}

TEST_F(OrderSpecQueryTest, MutationInvalidatesTheWholeSpecCache) {
  QueryRows(&db_, "SELECT k, v FROM t ORDER BY k, v DESC");
  ASSERT_TRUE(db_.Run("UPDATE t SET v = 99 WHERE k = 3").ok());
  testsupport::TestProbe().Rebase();
  std::vector<std::string> rows =
      QueryRows(&db_, "SELECT k, v FROM t ORDER BY k, v DESC");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);  // rebuilt, not stale
  EXPECT_EQ(rows, (std::vector<std::string>{"null|50", "1|11", "1|10",
                                            "2|21", "2|20", "3|99"}));
}

}  // namespace
}  // namespace engine
}  // namespace sciql
