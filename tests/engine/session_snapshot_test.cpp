// Multi-session snapshot semantics on one DatabaseCore: a pinned reader
// sees its catalog version bit-identically no matter what writers commit
// meanwhile; N readers and one writer run concurrently without torn reads;
// a cold (lazily loaded) object racing many sessions materialises once.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

using gdk::ScalarValue;

std::string MustText(Session* s, const std::string& q) {
  auto r = s->Query(q);
  EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
  return r.ok() ? r->ToString(1 << 20) : std::string();
}

TEST(SessionSnapshotTest, PinnedReaderSeesDmlSnapshotBitIdentically) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1, 10), (2, 20)").ok());

  std::unique_ptr<Session> reader = db.core().CreateSession();
  reader->PinSnapshot();
  uint64_t pinned_version = reader->SnapshotVersionId();
  std::string before = MustText(reader.get(), "SELECT a, b FROM t");

  // The writer keeps committing; the pinned reader must not notice.
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES (3, 30)").ok());
  ASSERT_TRUE(db.Run("UPDATE t SET b = 999 WHERE a = 1").ok());
  ASSERT_TRUE(db.Run("DELETE FROM t WHERE a = 2").ok());

  EXPECT_EQ(reader->SnapshotVersionId(), pinned_version);
  EXPECT_EQ(MustText(reader.get(), "SELECT a, b FROM t"), before);
  // Repeat: a snapshot read is stable, not merely lagging.
  EXPECT_EQ(MustText(reader.get(), "SELECT a, b FROM t"), before);

  reader->Unpin();
  EXPECT_GT(reader->SnapshotVersionId(), pinned_version);
  std::string after = MustText(reader.get(), "SELECT a, b FROM t");
  EXPECT_NE(after, before);
  EXPECT_NE(after.find("999"), std::string::npos);
}

TEST(SessionSnapshotTest, PinnedReaderSurvivesDdlOnItsObjects) {
  Database db;
  ASSERT_TRUE(
      db.Run("CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 7)").ok());

  std::unique_ptr<Session> reader = db.core().CreateSession();
  reader->PinSnapshot();
  std::string before = MustText(reader.get(), "SELECT [x], v FROM a");

  // Drop and recreate with a different shape; the pinned reader keeps the
  // original array.
  ASSERT_TRUE(db.Run("DROP ARRAY a").ok());
  ASSERT_TRUE(
      db.Run("CREATE ARRAY a (x INT DIMENSION[0:1:2], v INT DEFAULT 1)").ok());

  EXPECT_EQ(MustText(reader.get(), "SELECT [x], v FROM a"), before);

  reader->Unpin();
  ResultSet rs = *reader->Query("SELECT [x], v FROM a");
  EXPECT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 1);
}

TEST(SessionSnapshotTest, PinnedSessionRefusesMutations) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (a INT)").ok());
  std::unique_ptr<Session> s = db.core().CreateSession();
  s->PinSnapshot();
  Status st = s->Run("INSERT INTO t VALUES (1)");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("pinned"), std::string::npos);
  s->Unpin();
  EXPECT_TRUE(s->Run("INSERT INTO t VALUES (1)").ok());
}

TEST(SessionSnapshotTest, CoreGaugesTrackSessionsAndVersions) {
  Database db;  // the facade's default session is counted
  EXPECT_EQ(db.core().ActiveSessions(), 1);
  EXPECT_EQ(db.core().SessionsCreated(), 1u);
  uint64_t v0 = db.core().CatalogVersionId();
  {
    std::unique_ptr<Session> s = db.core().CreateSession();
    EXPECT_EQ(db.core().ActiveSessions(), 2);
    EXPECT_EQ(db.core().SessionsCreated(), 2u);
  }
  EXPECT_EQ(db.core().ActiveSessions(), 1);
  EXPECT_EQ(db.core().SessionsCreated(), 2u);
  ASSERT_TRUE(db.Run("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1)").ok());
  EXPECT_GE(db.core().CatalogVersionId(), v0 + 2);
}

TEST(SessionSnapshotTest, ManyReadersOneWriterStress) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES (0, 0)").ok());

  constexpr int kReaders = 4;
  constexpr int kWrites = 60;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Invariant maintained by every committed version: b == 10 * a on every
  // row, and the row count only grows. A torn read (a mutation observed
  // half-applied) breaks one of the two.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &stop, &failures] {
      std::unique_ptr<Session> s = db.core().CreateSession();
      size_t last_rows = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto rs = s->Query("SELECT a, b FROM t");
        if (!rs.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (rs->NumRows() < last_rows) failures.fetch_add(1);
        last_rows = rs->NumRows();
        for (size_t i = 0; i < rs->NumRows(); ++i) {
          if (rs->Value(i, 1).AsInt64() != 10 * rs->Value(i, 0).AsInt64()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }

  for (int k = 1; k <= kWrites; ++k) {
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (" + std::to_string(k) + ", " +
                       std::to_string(10 * k) + ")")
                    .ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  ResultSet rs = *db.Query("SELECT a FROM t");
  EXPECT_EQ(rs.NumRows(), static_cast<size_t>(kWrites + 1));
}

TEST(SessionSnapshotTest, ColdObjectRacedByManySessionsLoadsOnce) {
  catalog::Catalog cat;
  array::ArrayDesc desc(
      {array::DimDesc{"x", array::DimRange(0, 1, 8), false}},
      {array::AttrDesc{"v", gdk::PhysType::kInt, ScalarValue::Int(5)}});
  ASSERT_TRUE(cat.DeclareArray("a", desc).ok());
  cat.MarkUnloaded("a");

  std::atomic<int> loads{0};
  cat.SetLoader([&cat, &loads](const std::string& name) -> Status {
    loads.fetch_add(1);
    // Widen the race window: every straggler session must block on the
    // object's load mutex, not start a second load.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    auto arr = cat.GetArray(name);  // re-entrant self-access while loading
    SCIQL_RETURN_NOT_OK(arr.status());
    return (*arr)->Materialize();
  });

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cat, &failures] {
      auto arr = cat.GetArray("a");
      if (!arr.ok() || (*arr)->attr_bats.size() != 1 ||
          (*arr)->attr_bats[0]->Count() != 8 ||
          (*arr)->attr_bats[0]->GetScalar(0).AsInt64() != 5) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(failures.load(), 0);
}

TEST(SessionSnapshotTest, DroppedColdObjectCannotLoadIntoStaleSnapshot) {
  catalog::Catalog cat;
  array::ArrayDesc desc(
      {array::DimDesc{"x", array::DimRange(0, 1, 2), false}},
      {array::AttrDesc{"v", gdk::PhysType::kInt, ScalarValue::Int(0)}});
  ASSERT_TRUE(cat.DeclareArray("a", desc).ok());
  cat.MarkUnloaded("a");
  cat.SetLoader([](const std::string&) { return Status::OK(); });

  catalog::CatalogVersionPtr snap = cat.Pin();
  ASSERT_TRUE(cat.DropObject("a").ok());

  // The name-keyed loader would now fill a different (or no) object; the
  // stale snapshot must get a clean error, never someone else's data.
  auto arr = snap->GetArray("a");
  ASSERT_FALSE(arr.ok());
  EXPECT_NE(arr.status().ToString().find("dropped or replaced"),
            std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace sciql
