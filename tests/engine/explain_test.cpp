// EXPLAIN and the MAL optimizer observed through the engine: generated
// plans contain the expected operators, constants fold, duplicate work is
// eliminated, and 3-dimensional arrays compile correctly.

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  std::string Explain(const std::string& q) {
    auto r = db_.ExplainText(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? *r : "";
  }
  size_t CountLines(const std::string& text, const std::string& needle) {
    size_t count = 0;
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      ++count;
      pos += needle.size();
    }
    return count;
  }
  Database db_;
};

TEST_F(ExplainTest, TilingPlanUsesArrayModule) {
  ASSERT_TRUE(db_.Run("CREATE ARRAY g (x INT DIMENSION[0:1:8], "
                      "y INT DIMENSION[0:1:8], v INT DEFAULT 0)")
                  .ok());
  std::string plan = Explain(
      "SELECT [x], [y], AVG(v) FROM g GROUP BY g[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
  EXPECT_NE(plan.find("array.tileagg"), std::string::npos);
  EXPECT_NE(plan.find("algebra.select"), std::string::npos);
  EXPECT_NE(plan.find("batcalc.%"), std::string::npos);
  // The tile spec is printed in the paper's bracket notation.
  EXPECT_NE(plan.find("[x+0:x+2][y+0:y+2]"), std::string::npos);
}

TEST_F(ExplainTest, ConstantsFoldInPlans) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (v INT)").ok());
  std::string plan = Explain("SELECT v + (1 + 2 + 3) FROM t");
  // The constant subtree collapses: exactly one batcalc.+ remains (v + 6).
  EXPECT_EQ(CountLines(plan, "batcalc.+"), 1u);
  EXPECT_NE(plan.find("6"), std::string::npos);
}

TEST_F(ExplainTest, CommonSubexpressionsShareWork) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (v INT)").ok());
  // v * 7 appears twice in the query but once in the optimized plan.
  std::string plan = Explain("SELECT v * 7 AS a, v * 7 + 1 AS b FROM t");
  EXPECT_EQ(CountLines(plan, "batcalc.*"), 1u);
}

TEST_F(ExplainTest, DeadColumnsAreNotBound) {
  ASSERT_TRUE(
      db_.Run("CREATE TABLE wide (a INT, b INT, c INT, d INT)").ok());
  std::string plan = Explain("SELECT a FROM wide");
  // Only the referenced column is bound after DCE.
  EXPECT_EQ(CountLines(plan, "sql.bind"), 1u);
}

TEST_F(ExplainTest, JoinPlanUsesNJoin) {
  ASSERT_TRUE(db_.Run("CREATE TABLE l (k INT)").ok());
  ASSERT_TRUE(db_.Run("CREATE TABLE r (k INT)").ok());
  std::string plan = Explain("SELECT l.k FROM l JOIN r ON l.k = r.k");
  EXPECT_NE(plan.find("algebra.njoin"), std::string::npos);
  std::string cross =
      Explain("SELECT l.k FROM l, r WHERE l.k < r.k");
  EXPECT_NE(cross.find("algebra.crossjoin"), std::string::npos);
}

TEST_F(ExplainTest, OrderByLimitFusesIntoFirstN) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (k INT, v INT)").ok());
  // ORDER BY + LIMIT compiles to one algebra.firstn — no full sort, no
  // slice pair left in the plan.
  std::string plan = Explain("SELECT k FROM t ORDER BY k LIMIT 5");
  EXPECT_NE(plan.find("algebra.firstn"), std::string::npos);
  EXPECT_EQ(plan.find("algebra.slice"), std::string::npos);
  EXPECT_EQ(plan.find("algebra.sort"), std::string::npos);
  EXPECT_EQ(plan.find("algebra.orderidx"), std::string::npos);
  // Descending and multi-key sorts fuse too.
  std::string desc = Explain("SELECT k, v FROM t ORDER BY k DESC, v LIMIT 3");
  EXPECT_NE(desc.find("algebra.firstn"), std::string::npos);
  EXPECT_EQ(desc.find("algebra.sort"), std::string::npos);
  // Without LIMIT every ORDER BY orders through the keyed persistent index
  // cache — single or multi-key, either direction — never a plain sort.
  std::string plain = Explain("SELECT k FROM t ORDER BY k");
  EXPECT_NE(plain.find("algebra.orderidx"), std::string::npos);
  EXPECT_EQ(plain.find("algebra.firstn"), std::string::npos);
  std::string desc_plain = Explain("SELECT k FROM t ORDER BY k DESC");
  EXPECT_NE(desc_plain.find("algebra.orderidx"), std::string::npos);
  EXPECT_EQ(desc_plain.find("algebra.sort"), std::string::npos);
  std::string multi = Explain("SELECT k, v FROM t ORDER BY k, v DESC");
  EXPECT_NE(multi.find("algebra.orderidx"), std::string::npos);
  EXPECT_EQ(multi.find("algebra.sort"), std::string::npos);
  // LIMIT without ORDER BY stays a plain row-order slice.
  std::string sliced = Explain("SELECT k FROM t LIMIT 5");
  EXPECT_NE(sliced.find("algebra.slice"), std::string::npos);
  EXPECT_EQ(sliced.find("algebra.firstn"), std::string::npos);
}

TEST_F(ExplainTest, CellRefPlanGathersThroughPositions) {
  ASSERT_TRUE(db_.Run("CREATE ARRAY g (x INT DIMENSION[0:1:4], "
                      "y INT DIMENSION[0:1:4], v INT DEFAULT 0)")
                  .ok());
  std::string plan = Explain("SELECT [x], [y], g[x-1][y] FROM g");
  EXPECT_NE(plan.find("array.cellpos"), std::string::npos);
  EXPECT_NE(plan.find("algebra.project"), std::string::npos);
}

TEST_F(ExplainTest, ThreeDimensionalArrays) {
  ASSERT_TRUE(db_.Run("CREATE ARRAY cube (x INT DIMENSION[0:1:3], "
                      "y INT DIMENSION[0:1:4], z INT DIMENSION[0:1:5], "
                      "v INT DEFAULT 1)")
                  .ok());
  auto rs = db_.Query("SELECT COUNT(*) AS n FROM cube");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), 60);

  // 3-D tiling: a 2x2x2 cube tile.
  rs = db_.Query(
      "SELECT [x], [y], [z], SUM(v) AS s FROM cube "
      "GROUP BY cube[x:x+2][y:y+2][z:z+2] HAVING x = 0 AND y = 0 AND z = 0");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->Value(0, 3).AsInt64(), 8);

  // 3-D cell addressing.
  rs = db_.Query(
      "SELECT cube[x][y][z+1] AS up FROM cube "
      "WHERE x = 0 AND y = 0 AND z = 4");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->Value(0, 0).is_null);  // z+1 out of range

  // Update along a plane, then verify a slab count.
  ASSERT_TRUE(db_.Run("UPDATE cube SET v = 0 WHERE z = 2").ok());
  rs = db_.Query("SELECT SUM(v) AS s FROM cube");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), 48);  // 60 - 12 zeroed
}

TEST_F(ExplainTest, ExplainDdlShowsMaterialisation) {
  std::string plan = Explain(
      "CREATE ARRAY cube (a INT DIMENSION[0:1:2], b INT DIMENSION[0:1:3], "
      "c INT DIMENSION[0:1:4], v DOUBLE DEFAULT 0.5)");
  // Repetition factors follow Figure 3's rule generalized to 3-D:
  // a repeats each value 12x, b 4x within 2 groups, c 1x within 6 groups.
  EXPECT_NE(plan.find("array.series(0, 1, 2, 12, 1)"), std::string::npos);
  EXPECT_NE(plan.find("array.series(0, 1, 3, 4, 2)"), std::string::npos);
  EXPECT_NE(plan.find("array.series(0, 1, 4, 1, 6)"), std::string::npos);
  EXPECT_NE(plan.find("array.filler(24, 0.5)"), std::string::npos);
}

TEST_F(ExplainTest, ImpureWritesSurviveOptimization) {
  ASSERT_TRUE(db_.Run("CREATE ARRAY g (x INT DIMENSION[0:1:4], "
                      "v INT DEFAULT 0)")
                  .ok());
  std::string plan = Explain("UPDATE g SET v = x * 2 WHERE x > 1");
  EXPECT_NE(plan.find("algebra.select"), std::string::npos);
  EXPECT_NE(plan.find("batcalc.*"), std::string::npos);
  EXPECT_NE(plan.find("__pos"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace sciql
