// Array DML semantics: INSERT-as-overwrite, DELETE-as-holes, guarded
// updates, ALTER ARRAY, and error paths.

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

class ArrayDmlTest : public ::testing::Test {
 protected:
  void MustRun(const std::string& q) {
    Status st = db_.Run(q);
    ASSERT_TRUE(st.ok()) << q << " -> " << st.ToString();
  }
  ResultSet MustQuery(const std::string& q) {
    auto r = db_.Query(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? std::move(r.value()) : ResultSet();
  }
  Database db_;
};

TEST_F(ArrayDmlTest, InsertValuesOverwritesCells) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:3], v INT DEFAULT 0)");
  MustRun("INSERT INTO a (x, v) VALUES (1, 42)");
  ResultSet rs = MustQuery("SELECT v FROM a ORDER BY x");
  ASSERT_EQ(rs.NumRows(), 3u);  // INSERT never adds cells
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 0);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 42);
}

TEST_F(ArrayDmlTest, InsertTwiceLastWins) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:3], v INT DEFAULT 0)");
  MustRun("INSERT INTO a (x, v) VALUES (1, 5)");
  MustRun("INSERT INTO a (x, v) VALUES (1, 7)");
  ResultSet rs = MustQuery("SELECT v FROM a WHERE x = 1");
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 7);
}

TEST_F(ArrayDmlTest, DeleteCreatesHolesKeepsCells) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 9)");
  MustRun("DELETE FROM a WHERE x >= 2");
  ResultSet rs = MustQuery("SELECT x, v FROM a");
  ASSERT_EQ(rs.NumRows(), 4u);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 9);
  EXPECT_TRUE(rs.Value(2, 1).is_null);
  EXPECT_TRUE(rs.Value(3, 1).is_null);
}

TEST_F(ArrayDmlTest, UpdateWithDimensionVariables) {
  MustRun(
      "CREATE ARRAY a (x INT DIMENSION[0:1:3], y INT DIMENSION[0:1:3], "
      "v INT DEFAULT 0)");
  MustRun("UPDATE a SET v = x * 10 + y WHERE x <= y");
  ResultSet rs = MustQuery("SELECT v FROM a WHERE x = 1 AND y = 2");
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 12);
  rs = MustQuery("SELECT v FROM a WHERE x = 2 AND y = 0");
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 0);
}

TEST_F(ArrayDmlTest, UpdateDimensionRejected) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:3], v INT)");
  auto st = db_.Run("UPDATE a SET x = 1");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("ALTER ARRAY"), std::string::npos);
}

TEST_F(ArrayDmlTest, MultipleAttributes) {
  MustRun(
      "CREATE ARRAY a (x INT DIMENSION[0:1:2], p INT DEFAULT 1, "
      "q DOUBLE DEFAULT 0.5)");
  MustRun("UPDATE a SET p = 10, q = 2.5 WHERE x = 1");
  ResultSet rs = MustQuery("SELECT p, q FROM a ORDER BY x");
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 1);
  EXPECT_DOUBLE_EQ(rs.Value(1, 1).d, 2.5);
  // DELETE punches holes in all attributes.
  MustRun("DELETE FROM a WHERE x = 0");
  rs = MustQuery("SELECT p, q FROM a WHERE x = 0");
  EXPECT_TRUE(rs.Value(0, 0).is_null);
  EXPECT_TRUE(rs.Value(0, 1).is_null);
}

TEST_F(ArrayDmlTest, InsertSelectCoercesRowsToCells) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 0)");
  MustRun("CREATE TABLE src (x INT, v INT)");
  MustRun("INSERT INTO src VALUES (0, 100), (2, 300)");
  MustRun("INSERT INTO a SELECT [x], v FROM src");
  ResultSet rs = MustQuery("SELECT v FROM a ORDER BY x");
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 100);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 0);  // untouched
  EXPECT_EQ(rs.Value(2, 0).AsInt64(), 300);
}

TEST_F(ArrayDmlTest, AlterShrinkDropsCells) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 0)");
  MustRun("UPDATE a SET v = x + 1");
  MustRun("ALTER ARRAY a ALTER DIMENSION x SET RANGE [1:1:3]");
  ResultSet rs = MustQuery("SELECT x, v FROM a ORDER BY x");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 1);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 2);
  EXPECT_EQ(rs.Value(1, 1).AsInt64(), 3);
}

TEST_F(ArrayDmlTest, AlterChangesStep) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:6], v INT DEFAULT -1)");
  MustRun("UPDATE a SET v = x");
  MustRun("ALTER ARRAY a ALTER DIMENSION x SET RANGE [0:2:6]");
  ResultSet rs = MustQuery("SELECT x, v FROM a ORDER BY x");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 2);
  EXPECT_EQ(rs.Value(1, 1).AsInt64(), 2);  // value survived
}

TEST_F(ArrayDmlTest, DropArrayRequiresKindMatch) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:2], v INT)");
  EXPECT_FALSE(db_.Run("DROP TABLE a").ok());
  MustRun("DROP ARRAY a");
  EXPECT_FALSE(db_.Query("SELECT v FROM a").ok());
}

TEST_F(ArrayDmlTest, CreateArrayValidation) {
  EXPECT_FALSE(db_.Run("CREATE ARRAY bad (v INT)").ok());  // no dimension
  EXPECT_FALSE(
      db_.Run("CREATE ARRAY bad (x DOUBLE DIMENSION[0:1:2], v INT)").ok());
  EXPECT_FALSE(db_.Run("CREATE ARRAY bad (x INT DIMENSION, v INT)").ok());
  EXPECT_FALSE(
      db_.Run("CREATE ARRAY bad (x INT DIMENSION[0:0:4], v INT)").ok());
}

TEST_F(ArrayDmlTest, RowsAffectedReported) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:5], v INT DEFAULT 0)");
  auto r = db_.Execute("UPDATE a SET v = 1 WHERE x > 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Value(0, 0).AsInt64(), 2);
}

TEST_F(ArrayDmlTest, DefaultNullAttribute) {
  MustRun("CREATE ARRAY a (x INT DIMENSION[0:1:2], v DOUBLE)");
  ResultSet rs = MustQuery("SELECT v FROM a");
  EXPECT_TRUE(rs.Value(0, 0).is_null);
  EXPECT_TRUE(rs.Value(1, 0).is_null);
}

}  // namespace
}  // namespace engine
}  // namespace sciql
