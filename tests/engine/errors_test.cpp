// Failure injection: every layer must reject malformed input with the right
// status code and a usable message, never crash.

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

class ErrorsTest : public ::testing::Test {
 protected:
  Status::Code CodeOf(const std::string& q) {
    auto r = db_.Execute(q);
    return r.ok() ? Status::Code::kOk : r.status().code();
  }
  Database db_;
};

TEST_F(ErrorsTest, ParseErrors) {
  EXPECT_EQ(CodeOf("SELEC 1"), Status::Code::kParseError);
  EXPECT_EQ(CodeOf("SELECT FROM t"), Status::Code::kParseError);
  EXPECT_EQ(CodeOf("SELECT 1 +"), Status::Code::kParseError);
  EXPECT_EQ(CodeOf("CREATE ARRAY a (x INT DIMENSION[0:1:4)"),
            Status::Code::kParseError);
  EXPECT_EQ(CodeOf("SELECT CASE WHEN 1 = 1 THEN 2"),
            Status::Code::kParseError);  // missing END
  EXPECT_EQ(CodeOf("SELECT 'unterminated"), Status::Code::kParseError);
  EXPECT_EQ(CodeOf("INSERT INTO t"), Status::Code::kParseError);
  EXPECT_EQ(CodeOf(""), Status::Code::kInvalidArgument);
}

TEST_F(ErrorsTest, BindErrors) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (a INT)").ok());
  EXPECT_EQ(CodeOf("SELECT b FROM t"), Status::Code::kBindError);
  EXPECT_EQ(CodeOf("SELECT t.b FROM t"), Status::Code::kBindError);
  EXPECT_EQ(CodeOf("SELECT nosuchfunc(a) FROM t"), Status::Code::kBindError);
  EXPECT_EQ(CodeOf("SELECT a FROM nosuch"), Status::Code::kNotFound);
  EXPECT_EQ(CodeOf("SELECT SUM(a) + a FROM t"), Status::Code::kBindError);
  EXPECT_EQ(CodeOf("SELECT * FROM t WHERE SUM(a) = 1"),
            Status::Code::kBindError);
  EXPECT_EQ(CodeOf("SELECT a FROM t HAVING a > 1"),
            Status::Code::kNotSupported);
}

TEST_F(ErrorsTest, ArrayErrors) {
  ASSERT_TRUE(
      db_.Run("CREATE ARRAY g (x INT DIMENSION[0:1:4], v INT DEFAULT 0)")
          .ok());
  // Wrong number of index expressions.
  EXPECT_EQ(CodeOf("SELECT g[x][x] FROM g"), Status::Code::kBindError);
  // Cell access on a table.
  ASSERT_TRUE(db_.Run("CREATE TABLE t (a INT)").ok());
  EXPECT_EQ(CodeOf("SELECT t[a] FROM t"), Status::Code::kNotFound);
  // ALTER on a missing dimension.
  EXPECT_EQ(CodeOf("ALTER ARRAY g ALTER DIMENSION z SET RANGE [0:1:2]"),
            Status::Code::kNotFound);
  // ALTER on a table.
  EXPECT_EQ(CodeOf("ALTER ARRAY t ALTER DIMENSION a SET RANGE [0:1:2]"),
            Status::Code::kNotFound);
  // UPDATE of a dimension.
  EXPECT_EQ(CodeOf("UPDATE g SET x = 0"), Status::Code::kInvalidArgument);
  // CREATE ARRAY AS SELECT without [dim] projections.
  EXPECT_EQ(CodeOf("CREATE ARRAY g2 AS SELECT v FROM g"),
            Status::Code::kInvalidArgument);
}

TEST_F(ErrorsTest, InsertArityErrors) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (a INT, b INT)").ok());
  EXPECT_EQ(CodeOf("INSERT INTO t VALUES (1)"),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(CodeOf("INSERT INTO t (a) VALUES (1, 2)"),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(CodeOf("INSERT INTO t (a, nosuch) VALUES (1, 2)"),
            Status::Code::kBindError);
  EXPECT_EQ(CodeOf("INSERT INTO nosuch VALUES (1)"),
            Status::Code::kNotFound);
  // VALUES rows of differing arity.
  EXPECT_EQ(CodeOf("INSERT INTO t VALUES (1, 2), (3)"),
            Status::Code::kInvalidArgument);
}

TEST_F(ErrorsTest, ExecErrors) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Run("INSERT INTO t VALUES (2), (0)").ok());
  EXPECT_EQ(CodeOf("SELECT 10 / a FROM t"), Status::Code::kExecError);
  EXPECT_EQ(CodeOf("SELECT 10 % a FROM t"), Status::Code::kExecError);
}

TEST_F(ErrorsTest, TypeErrors) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (a INT, s VARCHAR)").ok());
  ASSERT_TRUE(db_.Run("INSERT INTO t VALUES (1, 'x')").ok());
  EXPECT_EQ(CodeOf("SELECT a + s FROM t"), Status::Code::kExecError);
  EXPECT_EQ(CodeOf("SELECT a = s FROM t"), Status::Code::kExecError);
  EXPECT_EQ(CodeOf("SELECT SUM(s) FROM t"), Status::Code::kExecError);
}

TEST_F(ErrorsTest, DdlErrors) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (a INT)").ok());
  EXPECT_EQ(CodeOf("CREATE TABLE t (b INT)"), Status::Code::kAlreadyExists);
  EXPECT_EQ(CodeOf("CREATE ARRAY t (x INT DIMENSION[0:1:2], v INT)"),
            Status::Code::kAlreadyExists);
  EXPECT_EQ(CodeOf("DROP TABLE nosuch"), Status::Code::kNotFound);
  EXPECT_EQ(CodeOf("CREATE TABLE bad (x INT DIMENSION[0:1:2])"),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(CodeOf("CREATE ARRAY bad (x INT DIMENSION[0:1:2])"),
            Status::Code::kOk);  // arrays may have zero attributes
}

TEST_F(ErrorsTest, StatementsAfterErrorDoNotRun) {
  ASSERT_TRUE(db_.Run("CREATE TABLE t (a INT)").ok());
  // The second statement fails; the third must not have executed.
  auto r = db_.Execute(
      "INSERT INTO t VALUES (1); SELECT nosuch FROM t; "
      "INSERT INTO t VALUES (2)");
  EXPECT_FALSE(r.ok());
  auto count = db_.Query("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->Value(0, 0).AsInt64(), 1);
}

TEST_F(ErrorsTest, ErrorsCarryContext) {
  auto r = db_.Execute("SELECT x FROM missing_table");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("missing_table"), std::string::npos);

  auto r2 = db_.Execute("SELECT unknown_col FROM (SELECT 1 AS one) AS s");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("unknown_col"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace sciql
