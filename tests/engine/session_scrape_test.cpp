// Concurrent metrics scrapes racing live sessions. The registry's counters
// and gauges are read-through closures over atomics owned by the engine, so
// a scrape may run at any moment — including mid-statement, mid-histogram
// observation, or while a DatabaseCore is being created or destroyed. This
// binary is named engine_session_* so the TSan CI job picks it up: the
// interesting assertions are the ones the race detector makes.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/database.h"
#include "src/obs/metrics.h"

namespace sciql {
namespace engine {
namespace {

TEST(SessionScrapeTest, ScrapeWhileSessionsQuery) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (k INT, v INT)").ok());
  ASSERT_TRUE(
      db.Run("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 5), "
             "(5, 20), (6, 1)")
          .ok());
  ASSERT_TRUE(db.Run("CREATE TABLE u (k INT, w INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO u VALUES (2, 200), (3, 300)").ok());

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 40;
  const std::string queries[] = {
      "SELECT k, v FROM t ORDER BY v DESC LIMIT 2",
      "SELECT t.k, u.w FROM t JOIN u ON t.k = u.k",
      "SELECT v, COUNT(*) AS c FROM t GROUP BY v",
  };

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  // The scraper hammers RenderPrometheus() for the whole run; every render
  // reads the engine's live atomics while the sessions below mutate them.
  std::thread scraper([&]() {
    while (!done.load(std::memory_order_acquire)) {
      std::string text = obs::RenderPrometheus();
      if (text.find("sciql_statement_executed") == std::string::npos) {
        failures.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kQueryThreads; ++w) {
    workers.emplace_back([&, w]() {
      std::unique_ptr<Session> session = db.core().CreateSession();
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto rs = session->Query(queries[(w + i) % 3]);
        if (!rs.ok() || rs->NumRows() == 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  // Cores registering/unregistering labeled gauges must also be safe
  // against an in-flight scrape.
  for (int i = 0; i < 8; ++i) {
    Database ephemeral;
    ASSERT_TRUE(ephemeral.Run("CREATE TABLE e (v INT)").ok());
  }

  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(failures.load(), 0);

  std::string final_text = obs::RenderPrometheus();
  EXPECT_NE(final_text.find("sciql_statement_latency_us_count"),
            std::string::npos);
  EXPECT_NE(final_text.find("sciql_gdk_joins_hash"), std::string::npos);
}

TEST(SessionScrapeTest, ScrapeWhileSlowLogAppends) {
  std::string path = ::testing::TempDir() + "sciql_scrape_slow.jsonl";
  std::remove(path.c_str());

  Database db;
  DatabaseCore::SlowQueryLogOptions options;
  options.path = path;
  options.threshold_micros = 0;  // every statement appends a line
  ASSERT_TRUE(db.core().EnableSlowQueryLog(options).ok());
  ASSERT_TRUE(db.Run("CREATE TABLE s (v INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO s VALUES (3), (1), (2)").ok());

  std::atomic<bool> done{false};
  std::thread scraper([&]() {
    while (!done.load(std::memory_order_acquire)) {
      (void)obs::RenderPrometheus();
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&]() {
      std::unique_ptr<Session> session = db.core().CreateSession();
      for (int i = 0; i < 30; ++i) {
        auto rs = session->Query("SELECT v FROM s ORDER BY v");
        EXPECT_TRUE(rs.ok());
      }
    });
  }
  for (std::thread& t : workers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  db.core().DisableSlowQueryLog();
  EXPECT_GE(obs::Counters().slow_queries_logged.load(), 90u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace engine
}  // namespace sciql
