// Property tests: the SQL engine against straightforward native oracles on
// randomized inputs — filters, aggregates, joins, tiling queries and the
// Game-of-Life step across board geometries.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

// ---------------------------------------------------------------------------
// Filter + aggregate vs oracle on a random table
// ---------------------------------------------------------------------------

struct TableParam {
  size_t rows;
  double null_rate;
  uint64_t seed;
};

class FilterAggregateProperty : public ::testing::TestWithParam<TableParam> {};

TEST_P(FilterAggregateProperty, MatchesOracle) {
  const TableParam& p = GetParam();
  Rng rng(p.seed);
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (k INT, v INT)").ok());

  std::vector<std::pair<int32_t, std::optional<int32_t>>> rows;
  std::string values;
  for (size_t i = 0; i < p.rows; ++i) {
    int32_t k = static_cast<int32_t>(rng.Below(10));
    std::optional<int32_t> v;
    if (!rng.Chance(p.null_rate)) {
      v = static_cast<int32_t>(rng.Range(-100, 100));
    }
    rows.emplace_back(k, v);
    values += values.empty() ? "" : ", ";
    values += StrFormat("(%d, %s)", k,
                        v.has_value() ? std::to_string(*v).c_str() : "NULL");
  }
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES " + values).ok());

  // WHERE v > 0: oracle count.
  size_t expect_pos = 0;
  for (const auto& [k, v] : rows) {
    if (v.has_value() && *v > 0) ++expect_pos;
  }
  auto rs = db.Query("SELECT k FROM t WHERE v > 0");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), expect_pos);

  // GROUP BY k with SUM/COUNT/MIN/MAX.
  std::map<int32_t, std::tuple<int64_t, int64_t, int32_t, int32_t, bool>> want;
  for (const auto& [k, v] : rows) {
    auto& [sum, cnt, lo, hi, any] = want[k];
    if (!v.has_value()) continue;
    sum += *v;
    cnt += 1;
    if (!any || *v < lo) lo = *v;
    if (!any || *v > hi) hi = *v;
    any = true;
  }
  rs = db.Query(
      "SELECT k, SUM(v) AS s, COUNT(v) AS c, MIN(v) AS lo, MAX(v) AS hi "
      "FROM t GROUP BY k ORDER BY k");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), want.size());
  size_t r = 0;
  for (const auto& [k, agg] : want) {
    const auto& [sum, cnt, lo, hi, any] = agg;
    EXPECT_EQ(rs->Value(r, 0).AsInt64(), k);
    if (any) {
      EXPECT_EQ(rs->Value(r, 1).AsInt64(), sum) << "k=" << k;
      EXPECT_EQ(rs->Value(r, 3).AsInt64(), lo);
      EXPECT_EQ(rs->Value(r, 4).AsInt64(), hi);
    } else {
      EXPECT_TRUE(rs->Value(r, 1).is_null);
    }
    EXPECT_EQ(rs->Value(r, 2).AsInt64(), cnt);
    ++r;
  }

  // ORDER BY v DESC is a permutation sorted by v (nulls last when DESC).
  rs = db.Query("SELECT v FROM t ORDER BY v DESC");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), rows.size());
  for (size_t i = 1; i < rs->NumRows(); ++i) {
    gdk::ScalarValue a = rs->Value(i - 1, 0);
    gdk::ScalarValue b = rs->Value(i, 0);
    if (a.is_null) {
      EXPECT_TRUE(b.is_null);  // nulls sort last in DESC
    } else if (!b.is_null) {
      EXPECT_GE(a.AsInt64(), b.AsInt64());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FilterAggregateProperty,
    ::testing::Values(TableParam{50, 0.0, 1}, TableParam{200, 0.2, 2},
                      TableParam{500, 0.5, 3}, TableParam{100, 0.9, 4},
                      TableParam{1000, 0.1, 5}));

// ---------------------------------------------------------------------------
// Join vs nested-loop oracle
// ---------------------------------------------------------------------------

struct JoinParam {
  size_t nl, nr;
  uint64_t seed;
};

class JoinProperty : public ::testing::TestWithParam<JoinParam> {};

TEST_P(JoinProperty, EquiJoinMatchesNestedLoop) {
  const JoinParam& p = GetParam();
  Rng rng(p.seed);
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE l (k INT, a INT)").ok());
  ASSERT_TRUE(db.Run("CREATE TABLE r (k INT, b INT)").ok());

  std::vector<int32_t> lk(p.nl), rk(p.nr);
  std::string lvals, rvals;
  for (size_t i = 0; i < p.nl; ++i) {
    lk[i] = static_cast<int32_t>(rng.Below(20));
    lvals += lvals.empty() ? "" : ", ";
    lvals += StrFormat("(%d, %zu)", lk[i], i);
  }
  for (size_t i = 0; i < p.nr; ++i) {
    rk[i] = static_cast<int32_t>(rng.Below(20));
    rvals += rvals.empty() ? "" : ", ";
    rvals += StrFormat("(%d, %zu)", rk[i], i);
  }
  ASSERT_TRUE(db.Run("INSERT INTO l VALUES " + lvals).ok());
  ASSERT_TRUE(db.Run("INSERT INTO r VALUES " + rvals).ok());

  size_t expect = 0;
  for (int32_t a : lk) {
    for (int32_t b : rk) {
      if (a == b) ++expect;
    }
  }
  auto rs = db.Query("SELECT l.a, r.b FROM l JOIN r ON l.k = r.k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinProperty,
                         ::testing::Values(JoinParam{10, 10, 11},
                                           JoinParam{100, 7, 12},
                                           JoinParam{7, 100, 13},
                                           JoinParam{300, 300, 14}));

// ---------------------------------------------------------------------------
// Tiling query vs native sliding window
// ---------------------------------------------------------------------------

struct TilingParam {
  size_t n;
  int64_t lo, hi;  // window offsets per dimension
  uint64_t seed;
};

class TilingQueryProperty : public ::testing::TestWithParam<TilingParam> {};

TEST_P(TilingQueryProperty, SumMatchesOracle) {
  const TilingParam& p = GetParam();
  Rng rng(p.seed);
  Database db;
  ASSERT_TRUE(db.Run(StrFormat(
                        "CREATE ARRAY g (x INT DIMENSION[0:1:%zu], "
                        "y INT DIMENSION[0:1:%zu], v INT DEFAULT 0)",
                        p.n, p.n))
                  .ok());
  // Random contents through the storage layer for speed.
  auto arr = db.catalog()->GetArray("g");
  ASSERT_TRUE(arr.ok());
  std::vector<int32_t>& v = (*arr)->attr_bats[0]->ints();
  for (auto& c : v) c = static_cast<int32_t>(rng.Range(-9, 9));

  auto rs = db.Query(StrFormat(
      "SELECT [x], [y], SUM(v) AS s FROM g GROUP BY "
      "g[x%+lld:x%+lld][y%+lld:y%+lld]",
      static_cast<long long>(p.lo), static_cast<long long>(p.hi),
      static_cast<long long>(p.lo), static_cast<long long>(p.hi)));
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), p.n * p.n);

  for (size_t row = 0; row < rs->NumRows(); ++row) {
    int64_t x = rs->Value(row, 0).AsInt64();
    int64_t y = rs->Value(row, 1).AsInt64();
    int64_t sum = 0;
    for (int64_t dx = p.lo; dx < p.hi; ++dx) {
      for (int64_t dy = p.lo; dy < p.hi; ++dy) {
        int64_t cx = x + dx;
        int64_t cy = y + dy;
        if (cx < 0 || cy < 0 || cx >= static_cast<int64_t>(p.n) ||
            cy >= static_cast<int64_t>(p.n)) {
          continue;
        }
        sum += v[static_cast<size_t>(cx * static_cast<int64_t>(p.n) + cy)];
      }
    }
    EXPECT_EQ(rs->Value(row, 2).AsInt64(), sum)
        << "anchor (" << x << "," << y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TilingQueryProperty,
                         ::testing::Values(TilingParam{6, 0, 2, 21},
                                           TilingParam{9, -1, 2, 22},
                                           TilingParam{12, -2, 3, 23},
                                           TilingParam{5, 0, 5, 24}));

// ---------------------------------------------------------------------------
// Coercion round trip property
// ---------------------------------------------------------------------------

class CoercionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoercionProperty, ArrayTableArrayIsIdentity) {
  Rng rng(GetParam());
  Database db;
  ASSERT_TRUE(db.Run("CREATE ARRAY a (x INT DIMENSION[0:1:6], "
                     "y INT DIMENSION[0:1:5], v INT DEFAULT 0)")
                  .ok());
  auto arr = db.catalog()->GetArray("a");
  ASSERT_TRUE(arr.ok());
  for (auto& c : (*arr)->attr_bats[0]->ints()) {
    c = static_cast<int32_t>(rng.Range(-50, 50));
  }
  ASSERT_TRUE(db.Run("CREATE TABLE t AS SELECT x, y, v FROM a").ok());
  ASSERT_TRUE(db.Run("CREATE ARRAY b AS SELECT [x], [y], v FROM t").ok());

  auto back = db.catalog()->GetArray("b");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->CellCount(), (*arr)->CellCount());
  EXPECT_EQ((*back)->attr_bats[0]->ints(), (*arr)->attr_bats[0]->ints());
  EXPECT_EQ((*back)->dim_bats[0]->ints(), (*arr)->dim_bats[0]->ints());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoercionProperty,
                         ::testing::Values(31, 32, 33));

// ---------------------------------------------------------------------------
// Game of Life: SciQL == native across geometries and densities
// ---------------------------------------------------------------------------

struct LifeParam {
  size_t n;
  double density;
  int generations;
  uint64_t seed;
};

class LifeProperty : public ::testing::TestWithParam<LifeParam> {};

TEST_P(LifeProperty, SciqlAgreesWithNative) {
  const LifeParam& p = GetParam();
  Database db;
  ASSERT_TRUE(db.Run(StrFormat(
                        "CREATE ARRAY life (x INT DIMENSION[0:1:%zu], "
                        "y INT DIMENSION[0:1:%zu], v INT DEFAULT 0)",
                        p.n, p.n))
                  .ok());
  auto arr = db.catalog()->GetArray("life");
  ASSERT_TRUE(arr.ok());
  Rng rng(p.seed);
  std::vector<int32_t>& cells = (*arr)->attr_bats[0]->ints();
  for (auto& c : cells) c = rng.Chance(p.density) ? 1 : 0;
  std::vector<int32_t> shadow = cells;

  const std::string step = StrFormat(
      "INSERT INTO life (SELECT [x], [y], "
      "CASE WHEN SUM(v) - v = 3 THEN 1 "
      "WHEN v = 1 AND SUM(v) - v = 2 THEN 1 ELSE 0 END "
      "FROM life GROUP BY life[x-1:x+2][y-1:y+2])");

  int64_t n = static_cast<int64_t>(p.n);
  for (int gen = 0; gen < p.generations; ++gen) {
    ASSERT_TRUE(db.Run(step).ok());
    std::vector<int32_t> next(shadow.size());
    for (int64_t x = 0; x < n; ++x) {
      for (int64_t y = 0; y < n; ++y) {
        int neigh = 0;
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            if (dx == 0 && dy == 0) continue;
            int64_t cx = x + dx, cy = y + dy;
            if (cx < 0 || cy < 0 || cx >= n || cy >= n) continue;
            neigh += shadow[static_cast<size_t>(cx * n + cy)];
          }
        }
        int32_t cur = shadow[static_cast<size_t>(x * n + y)];
        next[static_cast<size_t>(x * n + y)] =
            neigh == 3 || (cur == 1 && neigh == 2) ? 1 : 0;
      }
    }
    shadow = std::move(next);
    ASSERT_EQ(cells, shadow) << "generation " << gen;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LifeProperty,
    ::testing::Values(LifeParam{4, 0.5, 6, 41}, LifeParam{9, 0.3, 4, 42},
                      LifeParam{16, 0.2, 3, 43}, LifeParam{25, 0.4, 2, 44},
                      LifeParam{33, 0.35, 2, 45}));

}  // namespace
}  // namespace engine
}  // namespace sciql
